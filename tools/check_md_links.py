#!/usr/bin/env python3
"""Fail on broken intra-repo links in the repo's markdown files.

Scans every tracked *.md file for inline links/images `[text](target)`
and checks that relative targets exist on disk (anchors stripped).
External schemes (http/https/mailto) are ignored. Exit code 1 with a
report if anything is broken; 0 otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def md_files(root: Path) -> list[Path]:
    out = []
    for p in root.rglob("*.md"):
        if any(part in {".git", "build", "build-bench"} for part in p.parts):
            continue
        out.append(p)
    return sorted(out)


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path.cwd()
    broken: list[str] = []
    checked = 0
    for md in md_files(root):
        text = md.read_text(encoding="utf-8")
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            checked += 1
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                line = text[: match.start()].count("\n") + 1
                broken.append(f"{md.relative_to(root)}:{line}: {target}")
    if broken:
        print(f"{len(broken)} broken intra-repo markdown link(s):")
        for b in broken:
            print(f"  {b}")
        return 1
    print(f"OK: {checked} intra-repo links resolve across {len(md_files(root))} markdown files")
    return 0


if __name__ == "__main__":
    sys.exit(main())
