#!/usr/bin/env python3
"""Validate exported Chrome trace-event JSON (src/obs/export.h).

Checks, per file given on the command line:

  * the file parses as JSON with a top-level ``traceEvents`` array and
    ``displayTimeUnit`` of ``ms``;
  * every event carries the required keys for its phase (``X`` complete
    spans need ``ts``/``dur``, ``i`` instants need ``ts``, ``M`` metadata
    needs ``args.name``), with numeric ``ts``/``dur`` >= 0;
  * timed events carry the deterministic ``args`` payload the exporter
    stamps (``round``/``seq``/``code``);
  * within each (pid, tid) lane, ``ts`` is monotone non-decreasing — the
    exported contract tests/test_obs.cpp pins from C++.

Exit code 1 with a report if any file violates the contract; 0 otherwise.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REQUIRED_TIMED_ARGS = ("round", "seq", "code")


def check_file(path: Path) -> list[str]:
    errors: list[str] = []

    def err(msg: str) -> None:
        errors.append(f"{path}: {msg}")

    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable or malformed JSON: {exc}"]

    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return [f"{path}: missing top-level traceEvents array"]
    if doc.get("displayTimeUnit") != "ms":
        err(f"displayTimeUnit is {doc.get('displayTimeUnit')!r}, want 'ms'")

    last_ts: dict[tuple[int, int], float] = {}
    timed = 0
    for i, ev in enumerate(doc["traceEvents"]):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            err(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in ("X", "i", "M"):
            err(f"{where}: unexpected phase {ph!r}")
            continue
        if not isinstance(ev.get("pid"), int) or not isinstance(
            ev.get("tid"), int
        ):
            err(f"{where}: pid/tid must be integers")
            continue
        if ph == "M":
            args = ev.get("args")
            if not isinstance(args, dict) or "name" not in args:
                err(f"{where}: metadata event without args.name")
            continue

        timed += 1
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            err(f"{where}: bad ts {ts!r}")
            continue
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                err(f"{where}: complete span with bad dur {dur!r}")
        args = ev.get("args")
        if not isinstance(args, dict) or any(
            k not in args for k in REQUIRED_TIMED_ARGS
        ):
            err(f"{where}: timed event missing args {REQUIRED_TIMED_ARGS}")

        lane = (ev["pid"], ev["tid"])
        prev = last_ts.get(lane)
        if prev is not None and ts < prev:
            err(f"{where}: ts {ts} < {prev} in lane pid={lane[0]} tid={lane[1]}")
        last_ts[lane] = ts

    if timed == 0:
        err("no timed events (empty trace?)")
    return errors


def main() -> int:
    paths = [Path(a) for a in sys.argv[1:]]
    if not paths:
        print("usage: check_trace_json.py TRACE.json [TRACE.json ...]",
              file=sys.stderr)
        return 2
    failed = False
    for path in paths:
        errors = check_file(path)
        if errors:
            failed = True
            for e in errors:
                print(e, file=sys.stderr)
        else:
            print(f"{path}: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
