// Example: online capacity estimation of a lossy link while an ON/OFF
// interferer runs (the paper's Section 5 machinery, stand-alone).
//
//   $ ./example_capacity_probing
//
// Shows the raw probe loss rate, the collision-filtered channel loss
// estimate, and the resulting Eq. 6 capacity versus the directly measured
// maxUDP throughput.

#include <cstdio>
#include <functional>

#include "estimation/capacity.h"
#include "probe/probe_system.h"
#include "scenario/topologies.h"
#include "scenario/workbench.h"
#include "transport/udp.h"

using namespace meshopt;

int main() {
  Workbench wb(7);
  wb.add_nodes(4);
  TwoLinkParams params;
  params.cls = TopologyClass::kIA;   // interferer hidden from our sender
  params.interference_dbm = -58.0;
  params.p_ch_a = 0.2;               // genuine channel loss on our link
  auto [link, interferer_link] =
      build_two_link(wb, params, Rate::kR1Mbps, Rate::kR1Mbps);

  const double maxudp = wb.measure_backlogged({link}, 10.0)[0];
  std::printf("ground truth maxUDP (alone, backlogged): %.0f kb/s\n",
              maxudp / 1e3);

  // Probing system on both endpoints.
  ProbeAgent agent(wb.net(), link.src, RngStream(7, "agent"));
  ProbeAgent agent_rev(wb.net(), link.dst, RngStream(7, "agent-rev"));
  agent.configure(0.1, {link.rate});
  agent_rev.configure(0.1, {link.rate});
  ProbeMonitor mon_dst(wb.net(), link.dst);
  ProbeMonitor mon_src(wb.net(), link.src);
  agent.start();
  agent_rev.start();

  // ON/OFF interfering traffic on the hidden link.
  wb.net().node(interferer_link.src).set_route(interferer_link.dst,
                                               interferer_link.dst);
  const int iflow = wb.net().open_flow(interferer_link.src,
                                       interferer_link.dst, Protocol::kUdp,
                                       1470);
  UdpSource interferer(wb.net(), iflow, UdpMode::kBacklogged, 0.0,
                       RngStream(7, "intf"));
  std::function<void(bool)> toggle = [&](bool on) {
    if (on) {
      interferer.start();
    } else {
      interferer.stop();
    }
    wb.sim().schedule(seconds(on ? 3.0 : 10.0), [&toggle, on] { toggle(!on); });
  };
  toggle(true);

  std::printf("probing for 130 s alongside ON/OFF interference...\n");
  wb.run_for(130.0);
  agent.stop();
  agent_rev.stop();
  interferer.stop();

  const auto* rec =
      mon_dst.stream({link.src, link.rate, ProbeKind::kDataProbe});
  const auto pattern =
      rec->pattern(agent.sent(link.rate, ProbeKind::kDataProbe));
  const auto loss = estimate_channel_loss(pattern);
  std::printf("\nprobe stream: %zu probes\n", pattern.size());
  std::printf("  measured loss rate p         : %.3f (channel + collisions)\n",
              loss.p);
  std::printf("  estimated channel loss p_ch  : %.3f (planted 0.2)\n",
              loss.p_ch);
  std::printf("  estimator case               : %s (W* = %d)\n",
              loss.median_case ? "1 (uniform)" : "2 (collision filtering)",
              loss.w_star);

  const auto cap = estimate_link_capacity(
      MacTimings{}, 1470, link.rate, mon_dst, link.src, mon_src, link.dst,
      agent.sent(link.rate, ProbeKind::kDataProbe),
      agent_rev.sent(Rate::kR1Mbps, ProbeKind::kAckProbe));
  std::printf("\nEq. 6 capacity estimate        : %.0f kb/s\n",
              cap.capacity_bps / 1e3);
  std::printf("direct maxUDP measurement      : %.0f kb/s\n", maxudp / 1e3);
  std::printf("relative error                 : %.1f%%\n",
              100.0 * (cap.capacity_bps - maxudp) / maxudp);
  return 0;
}
