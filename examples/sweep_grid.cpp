// Example: parallel scenario sweep over a testbed parameter grid.
//
//   $ ./example_sweep_grid [threads]
//
// Sweeps the synthetic 18-node testbed over a grid of wall attenuations
// (how isolated the four clusters are) x topology seeds, and reports per
// cell how the usable-link count, conflict density and number of maximal
// independent sets respond. Every cell is an independent simulation with
// its own derived RNG seed, so the grid runs on all cores via SweepRunner
// and the output is identical whatever the thread count — run with
// `./example_sweep_grid 1` to check.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "model/conflict_graph.h"
#include "scenario/testbed.h"
#include "scenario/workbench.h"
#include "sweep/sweep_runner.h"
#include "util/stats.h"

using namespace meshopt;

namespace {

struct CellResult {
  double wall_db = 0.0;
  std::uint64_t topo_seed = 0;
  int links = 0;
  int conflicts = 0;
  int mis_count = 0;
  double mean_capacity_bps = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 0;
  const std::vector<double> walls = {0.0, 10.0, 20.0};
  const std::vector<std::uint64_t> topo_seeds = {3, 17};
  const int cells = static_cast<int>(walls.size() * topo_seeds.size());

  SweepRunner runner(threads);
  std::printf("sweeping %d cells on %d threads\n", cells, runner.threads());

  const auto results = runner.run(cells, /*master_seed=*/2024,
                                  [&](const SweepJob& job) {
    const std::size_t wi = static_cast<std::size_t>(job.index) %
                           walls.size();
    const std::size_t si = static_cast<std::size_t>(job.index) /
                           walls.size();
    TestbedConfig cfg;
    cfg.seed = topo_seeds[si];
    cfg.wall_attenuation_db = walls[wi];

    Workbench wb(job.seed);  // per-run stream: traffic/fading independent
    Testbed tb(wb, cfg);
    const auto links = tb.usable_links(Rate::kR11Mbps);

    CellResult r;
    r.wall_db = walls[wi];
    r.topo_seed = topo_seeds[si];
    r.links = static_cast<int>(links.size());
    const ConflictGraph g = build_two_hop_conflict_graph(
        links, [&tb](NodeId a, NodeId b) { return tb.neighbors(a, b); });
    r.conflicts = g.edge_count();
    r.mis_count = static_cast<int>(g.maximal_independent_sets().size());

    // Single-link capacities for a handful of links (paper's primary
    // extreme points), averaged.
    OnlineStats cap;
    const int probe = std::min<int>(4, r.links);
    for (int i = 0; i < probe; ++i) {
      const auto thr = wb.measure_backlogged({links[std::size_t(i)]}, 2.0);
      cap.add(thr[0]);
    }
    r.mean_capacity_bps = cap.count() ? cap.mean() : 0.0;
    return r;
  });

  std::printf("\n%8s %10s %7s %10s %8s %14s\n", "wall dB", "topo seed",
              "links", "conflicts", "MIS", "mean cap (Mb/s)");
  for (const CellResult& r : results) {
    std::printf("%8.0f %10llu %7d %10d %8d %14.3f\n", r.wall_db,
                static_cast<unsigned long long>(r.topo_seed), r.links,
                r.conflicts, r.mis_count, r.mean_capacity_bps / 1e6);
  }
  return 0;
}
