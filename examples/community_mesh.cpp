// Example: fairness-objective sweep on the 18-node synthetic testbed —
// the "community mesh" use case from the paper's introduction: the same
// online model supports a whole family of throughput/fairness tradeoffs.
//
//   $ ./example_community_mesh
//
// Builds the testbed, picks multi-hop UDP flows by ETT routing, and runs
// the optimizer under max-throughput, alpha-fair (several alpha) and
// max-min objectives, printing the per-flow allocations, aggregate, and
// Jain fairness index for each.

#include <cstdio>
#include <vector>

#include "model/feasibility.h"
#include "opt/network_optimizer.h"
#include "routing/ett.h"
#include "scenario/testbed.h"
#include "scenario/workbench.h"
#include "util/stats.h"

using namespace meshopt;

int main() {
  Workbench wb(9);
  Testbed tb(wb, TestbedConfig{.seed = 9});

  // Route three multi-hop flows via ETT over the true link qualities.
  TopologyDb db;
  const auto& err = wb.channel().error_model();
  for (const LinkRef& l : tb.usable_links(Rate::kR11Mbps)) {
    LinkState ls;
    ls.src = l.src;
    ls.dst = l.dst;
    ls.rate = Rate::kR11Mbps;
    ls.p_fwd = err.per(l.src, l.dst, Rate::kR11Mbps, FrameType::kData);
    ls.p_rev = err.per(l.dst, l.src, Rate::kR1Mbps, FrameType::kAck);
    db.update_link(ls);
  }
  std::vector<std::vector<NodeId>> paths;
  RngStream rng(9, "flows");
  while (paths.size() < 4) {
    const NodeId s = rng.uniform_int(0, 17);
    const NodeId d = rng.uniform_int(0, 17);
    if (s == d) continue;
    const auto p = db.shortest_path(s, d);
    if (p.size() >= 3 && p.size() <= 5) paths.push_back(p);
  }

  // Links and measured capacities (primary extreme points).
  std::vector<LinkRef> links;
  auto link_index = [&](NodeId a, NodeId b) {
    for (std::size_t i = 0; i < links.size(); ++i)
      if (links[i].src == a && links[i].dst == b) return static_cast<int>(i);
    return -1;
  };
  for (const auto& p : paths)
    for (std::size_t h = 0; h + 1 < p.size(); ++h)
      if (link_index(p[h], p[h + 1]) < 0)
        links.push_back(LinkRef{p[h], p[h + 1], Rate::kR11Mbps});

  std::printf("flows:\n");
  for (const auto& p : paths) {
    std::printf("  ");
    for (std::size_t i = 0; i < p.size(); ++i)
      std::printf("%d%s", p[i], i + 1 < p.size() ? " -> " : "\n");
  }
  std::printf("%zu links under management\n\n", links.size());

  std::vector<double> capacities;
  for (const LinkRef& l : links)
    capacities.push_back(wb.measure_backlogged({l}, 4.0)[0]);

  OptimizerInput in;
  in.extreme_points = build_extreme_point_matrix(
      capacities, build_two_hop_conflict_graph(
                      links, [&](NodeId a, NodeId b) {
                        return tb.neighbors(a, b);
                      }));
  in.routing = DenseMatrix(static_cast<int>(links.size()),
                           static_cast<int>(paths.size()));
  for (std::size_t s = 0; s < paths.size(); ++s)
    for (std::size_t h = 0; h + 1 < paths[s].size(); ++h) {
      const int li = link_index(paths[s][h], paths[s][h + 1]);
      if (li >= 0) in.routing(li, static_cast<int>(s)) = 1.0;
    }

  std::printf("%-22s", "objective");
  for (std::size_t s = 0; s < paths.size(); ++s)
    std::printf("  flow%zu kb/s", s);
  std::printf("   total     JFI\n");

  const auto report = [&](const char* name, const OptimizerConfig& cfg) {
    const OptimizerResult r = optimize_rates(in, cfg);
    if (!r.ok) return;
    std::printf("%-22s", name);
    double total = 0.0;
    for (double y : r.y) {
      std::printf("  %10.0f", y / 1e3);
      total += y;
    }
    std::printf("  %6.0f  %6.3f\n", total / 1e3, jain_fairness_index(r.y));
  };

  report("max throughput", {.objective = Objective::kMaxThroughput});
  report("alpha-fair a=0.5",
         {.objective = Objective::kAlphaFair, .alpha = 0.5});
  report("proportional (a=1)", {.objective = Objective::kProportionalFair});
  report("alpha-fair a=2", {.objective = Objective::kAlphaFair, .alpha = 2});
  report("alpha-fair a=4", {.objective = Objective::kAlphaFair, .alpha = 4});
  report("max-min", {.objective = Objective::kMaxMin});

  std::printf(
      "\nExpectation: aggregate falls and JFI rises monotonically from "
      "max-throughput toward max-min\n");
  return 0;
}
