// Quickstart: build a small mesh, run one online optimization round, and
// print the optimized rates.
//
//   $ ./example_quickstart
//
// What happens:
//  1. a 4-node gateway topology is built (2-hop chain + a 1-hop cross
//     flow),
//  2. two UDP flows start unshaped,
//  3. the controller probes the links online, estimates channel losses and
//     capacities (Eq. 6), builds the two-hop conflict graph and extreme
//     points, solves the proportional-fair problem, and programs the
//     sources' rate limits.

#include <cstdio>
#include <memory>

#include "core/controller.h"
#include "scenario/workbench.h"
#include "transport/udp.h"

using namespace meshopt;

int main() {
  Workbench wb(/*seed=*/1);
  wb.add_nodes(4);

  // Radio map: 0-1-2 chain plus 3 near the gateway 2; 0 and 3 hidden.
  Channel& ch = wb.channel();
  for (NodeId a = 0; a < 4; ++a)
    for (NodeId b = 0; b < 4; ++b)
      if (a != b) ch.set_rss_dbm(a, b, -120.0);
  ch.set_rss_symmetric_dbm(0, 1, -58.0);
  ch.set_rss_symmetric_dbm(1, 2, -58.0);
  ch.set_rss_symmetric_dbm(3, 2, -56.0);
  ch.set_rss_symmetric_dbm(1, 3, -70.0);

  // Two UDP flows, initially rate-limited far too conservatively (the
  // "static rate limiter rule of thumb" the paper wants to replace).
  const int f_long = wb.net().open_flow(0, 2, Protocol::kUdp, 1470);
  const int f_short = wb.net().open_flow(3, 2, Protocol::kUdp, 1470);
  wb.net().set_path_routes({0, 1, 2}, Rate::kR1Mbps);
  wb.net().set_path_routes({3, 2}, Rate::kR1Mbps);
  UdpSource long_src(wb.net(), f_long, UdpMode::kCbr, 50e3,
                     RngStream(1, "long"));
  UdpSource short_src(wb.net(), f_short, UdpMode::kCbr, 50e3,
                      RngStream(1, "short"));
  long_src.start();
  short_src.start();

  // Online optimization round.
  ControllerConfig cfg;
  cfg.probe_period_s = 0.5;
  cfg.probe_window = 100;  // 50 s estimation window
  cfg.optimizer.objective = Objective::kProportionalFair;
  MeshController ctl(wb.net(), cfg, /*seed=*/1);

  ManagedFlow mf_long;
  mf_long.flow_id = f_long;
  mf_long.path = {0, 1, 2};
  mf_long.apply_rate = [&](double x) { long_src.set_rate_bps(x); };
  ctl.manage_flow(mf_long);
  ManagedFlow mf_short;
  mf_short.flow_id = f_short;
  mf_short.path = {3, 2};
  mf_short.apply_rate = [&](double x) { short_src.set_rate_bps(x); };
  ctl.manage_flow(mf_short);

  std::printf("probing for %.0f s of simulated time...\n",
              ctl.probing_window_seconds());
  const RoundResult round = ctl.run_round(wb);
  if (!round.ok) {
    std::printf("optimization round failed\n");
    return 1;
  }

  std::printf("\nlink estimates:\n");
  for (const auto& row : round.links) {
    std::printf("  %d -> %d : p_link=%.3f capacity=%.0f kb/s\n",
                row.link.src, row.link.dst, row.estimate.p_link,
                row.estimate.capacity_bps / 1e3);
  }
  std::printf("\noptimized rates (proportional fairness, %d extreme "
              "points):\n",
              round.extreme_points);
  std::printf("  2-hop flow: y=%.0f kb/s, applied x=%.0f kb/s\n",
              round.y[0] / 1e3, round.x[0] / 1e3);
  std::printf("  1-hop flow: y=%.0f kb/s, applied x=%.0f kb/s\n",
              round.y[1] / 1e3, round.x[1] / 1e3);

  // Let the shaped network run and verify the targets are achieved.
  wb.run_for(2.0);
  wb.net().reset_flow_counters();
  wb.run_for(20.0);
  std::printf("\nachieved over 20 s:\n");
  std::printf("  2-hop flow: %.0f kb/s\n",
              wb.net().flow(f_long).throughput_bps(20.0) / 1e3);
  std::printf("  1-hop flow: %.0f kb/s\n",
              wb.net().flow(f_short).throughput_bps(20.0) / 1e3);
  return 0;
}
