// Example: multi-tenant plan serving — one PlanService multiplexing
// thousands of mesh instances over the work-stealing pool.
//
//   $ ./example_serve_study [tenants] [rounds] [metrics-json-path]
//
// Each tenant is an independent mesh controller client: it registers its
// flow set, plan tier, and guard mode once, then submits measurement
// snapshots as rounds of a staggered replay schedule (all randomness
// drawn at schedule generation, so the run replays bit-identically).
// Tenants cycle through four profiles:
//
//   exact        — exact-tier planning, no guard (the reference client)
//   fast         — column-generation tier with cross-round warm starts
//   guarded      — exact tier behind snapshot validation + plan guardrails
//   fast-fifo    — fast tier with coalescing OFF (a queueing client)
//
// Every fourth round of the guarded profile submits a snapshot with a
// poisoned link, so the repair tier and the uncacheable-plan path see
// real traffic. The service batches pending rounds across tenants each
// tick, serves them on the pool, and accounts everything into the
// metrics plane, which this example prints as a table and (optionally)
// writes as one JSON document — the same dump a monitoring endpoint
// would serve.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "core/rate_plan.h"
#include "core/snapshot.h"
#include "serve/plan_service.h"
#include "util/rng.h"

using namespace meshopt;

namespace {

constexpr std::uint64_t kSeed = 20260807;

/// A 9-link LIR mesh snapshot with per-round capacity jitter: big enough
/// that planning does real work, small enough that thousands of tenants
/// serve in seconds.
MeasurementSnapshot mesh_snapshot(int round, bool poisoned) {
  constexpr int kLinks = 9;
  MeasurementSnapshot snap;
  RngStream rng(kSeed, "serve-study-topology");  // topology: round-stable
  RngStream cap(RngStream::mix(kSeed, static_cast<std::uint64_t>(round)),
                "serve-study-caps");
  for (int i = 0; i < kLinks; ++i) {
    SnapshotLink l;
    l.src = i;
    l.dst = i + 1;
    l.rate = Rate::kR11Mbps;
    l.estimate.capacity_bps = cap.uniform(1.5e6, 5e6);
    l.estimate.p_link = 0.02;
    snap.links.push_back(l);
  }
  snap.lir.resize(kLinks, kLinks, 1.0);
  for (int i = 0; i < kLinks; ++i)
    for (int j = i + 1; j < kLinks; ++j)
      if (rng.bernoulli(0.4)) snap.lir(i, j) = snap.lir(j, i) = 0.4;
  snap.lir_threshold = 0.95;
  if (poisoned)  // repair tier drops this link (it carries no flow)
    snap.links.back().estimate.capacity_bps =
        std::numeric_limits<double>::quiet_NaN();
  return snap;
}

std::vector<FlowSpec> mesh_flows() {
  std::vector<FlowSpec> flows(3);
  flows[0].flow_id = 0;
  flows[0].path = {0, 1, 2, 3};
  flows[1].flow_id = 1;
  flows[1].path = {3, 4, 5};
  flows[2].flow_id = 2;
  flows[2].path = {6, 7, 8};
  return flows;
}

const char* kProfiles[] = {"exact", "fast", "guarded", "fast-fifo"};

TenantConfig profile_config(std::uint32_t tenant) {
  TenantConfig cfg;
  cfg.flows = mesh_flows();
  switch (tenant % 4) {
    case 0:
      break;  // exact, unguarded, coalescing
    case 1:
      cfg.plan.tier = PlanTier::kFast;
      break;
    case 2:
      cfg.guarded = true;
      break;
    case 3:
      cfg.plan.tier = PlanTier::kFast;
      cfg.coalesce = false;
      cfg.queue_limit = 2;
      break;
  }
  return cfg;
}

void print_sketch_row(const char* name, const QuantileSketch& s,
                      const char* unit) {
  std::printf("  %-16s %8llu %10.3f %10.3f %10.3f %10.3f %s\n", name,
              static_cast<unsigned long long>(s.count()), s.quantile(0.50),
              s.quantile(0.95), s.quantile(0.99), s.max(), unit);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t tenants =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 2000;
  const int rounds = argc > 2 ? std::atoi(argv[2]) : 3;
  const char* json_path = argc > 3 ? argv[3] : nullptr;

  // The snapshot pool the schedule references: per-round capacity jitter,
  // and for each round a poisoned variant the guarded profile draws every
  // fourth round.
  std::vector<MeasurementSnapshot> pool;
  for (int r = 0; r < rounds; ++r) {
    pool.push_back(mesh_snapshot(r, /*poisoned=*/false));
    pool.push_back(mesh_snapshot(r, /*poisoned=*/true));
  }

  PlanService svc;  // default pool: hardware concurrency
  for (std::uint32_t t = 0; t < tenants; ++t)
    svc.add_tenant(profile_config(t));

  // Staggered schedule, then steer guarded tenants onto the poisoned pool
  // entry every fourth round (snapshot_ref r -> pool index 2r [+1]).
  ServeScript script = staggered_replay_script(
      tenants, rounds, rounds, /*ticks_per_round=*/4, kSeed,
      /*burst_every=*/7);
  for (ServeEvent& ev : script.events) {
    const bool poison = ev.tenant % 4 == 2 && ev.snapshot_ref % 2 == 1;
    ev.snapshot_ref = 2 * ev.snapshot_ref + (poison ? 1 : 0);
  }

  std::printf("serve study: %u tenants x %d rounds, %zu submissions\n\n",
              tenants, rounds, script.events.size());
  const auto t0 = std::chrono::steady_clock::now();
  const ServeReport report = svc.run_script(script, pool);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const ServeCounters& g = svc.metrics().global();
  std::printf("served %llu plans in %.2f s  (%.0f plans/s, %llu batches, "
              "max batch %llu)\n\n",
              static_cast<unsigned long long>(g.totals.plans_served), secs,
              static_cast<double>(g.totals.plans_served) / secs,
              static_cast<unsigned long long>(g.batches),
              static_cast<unsigned long long>(g.max_batch));

  std::printf("admission:\n");
  std::printf("  submitted %llu  accepted %llu  coalesced %llu  shed "
              "(tenant %llu, global %llu, stale %llu, unknown %llu)\n\n",
              static_cast<unsigned long long>(g.totals.submitted),
              static_cast<unsigned long long>(g.totals.accepted),
              static_cast<unsigned long long>(g.totals.coalesced),
              static_cast<unsigned long long>(g.totals.shed_queue_full),
              static_cast<unsigned long long>(g.totals.shed_global_full),
              static_cast<unsigned long long>(g.totals.shed_stale_round),
              static_cast<unsigned long long>(g.shed_unknown_tenant));

  std::printf("guard + planner cache:\n");
  std::printf("  snapshots clean %llu / repaired %llu / rejected %llu   "
              "plans ok %llu / failed %llu\n",
              static_cast<unsigned long long>(g.totals.snapshots_clean),
              static_cast<unsigned long long>(g.totals.snapshots_repaired),
              static_cast<unsigned long long>(g.totals.snapshots_rejected),
              static_cast<unsigned long long>(g.totals.plans_served),
              static_cast<unsigned long long>(g.totals.plans_failed));
  std::printf("  cache hits %llu / misses %llu / uncacheable %llu\n\n",
              static_cast<unsigned long long>(g.totals.cache_hits),
              static_cast<unsigned long long>(g.totals.cache_misses),
              static_cast<unsigned long long>(g.totals.uncacheable_plans));

  std::printf("latency (enqueue -> served):\n");
  std::printf("  %-16s %8s %10s %10s %10s %10s\n", "histogram", "count",
              "p50", "p95", "p99", "max");
  print_sketch_row("ticks", svc.metrics().tick_latency(), "ticks");
  {
    // Wall latency in milliseconds for readability.
    const QuantileSketch& w = svc.metrics().wall_latency_s();
    std::printf("  %-16s %8llu %10.3f %10.3f %10.3f %10.3f ms\n", "wall",
                static_cast<unsigned long long>(w.count()),
                1e3 * w.quantile(0.50), 1e3 * w.quantile(0.95),
                1e3 * w.quantile(0.99), 1e3 * w.max());
  }

  // Per-profile rollup: merge the per-tenant counters of each profile.
  std::printf("\nper-profile (tenants cycle through %zu profiles):\n",
              std::size(kProfiles));
  std::printf("  %-10s %9s %9s %9s %9s %9s\n", "profile", "served",
              "failed", "coalesced", "shed", "cache-hit");
  for (std::uint32_t p = 0; p < std::size(kProfiles); ++p) {
    TenantCounters acc;
    for (std::uint32_t t = p; t < tenants; t += 4) {
      const TenantCounters& c = svc.metrics().tenant(t);
      acc.plans_served += c.plans_served;
      acc.plans_failed += c.plans_failed;
      acc.coalesced += c.coalesced;
      acc.shed_queue_full += c.shed_queue_full + c.shed_global_full +
                             c.shed_stale_round;
      acc.cache_hits += c.cache_hits;
    }
    std::printf("  %-10s %9llu %9llu %9llu %9llu %9llu\n", kProfiles[p],
                static_cast<unsigned long long>(acc.plans_served),
                static_cast<unsigned long long>(acc.plans_failed),
                static_cast<unsigned long long>(acc.coalesced),
                static_cast<unsigned long long>(acc.shed_queue_full),
                static_cast<unsigned long long>(acc.cache_hits));
  }

  if (json_path != nullptr) {
    std::ofstream out(json_path);
    out << svc.metrics_json();
    std::printf("\nmetrics JSON written to %s\n", json_path);
  }

  // Sanity for scripted use: the study must actually have served every
  // accepted round.
  if (report.served.size() != g.totals.accepted - g.totals.coalesced) {
    std::fprintf(stderr, "serve study: served/accepted mismatch\n");
    return 1;
  }
  return 0;
}
