// Example: dynamic-scenario churn study — record once under churn, replay
// the churn many times.
//
//   $ ./example_churn_study [rounds] [trace-path]
//
// Phase 1 (expensive, once): run a live gateway-topology controller for
// `rounds` probing windows while a DynamicsScript varies the network under
// it — the cross node leaves a third of the way in and rejoins at two
// thirds, an external interferer flaps on/off as a Markov process, and the
// chain's first hop suffers random-walk loss drift. Every sensed window is
// appended to a binary trace. The controller's planner cache rides the
// churn: it re-enumerates MIS rows only at the rounds where the topology
// fingerprint actually moved (the join/leave boundaries), and keeps
// re-planning from cached rows while only load drifts.
//
// Phase 2 (cheap, repeatable): replay the recorded churn over a grid of
// utility objectives with ControllerFleet::replay — trace-segment sharding
// keeps every pool worker busy on the one long trace — and report per-phase
// throughput and Jain fairness, so the objectives can be compared on
// literally identical churn.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/controller.h"
#include "core/planner.h"
#include "probe/live_source.h"
#include "scenario/dynamics.h"
#include "scenario/topologies.h"
#include "scenario/workbench.h"
#include "sweep/controller_fleet.h"
#include "util/trace_codec.h"

using namespace meshopt;

namespace {

double jain_fairness(const std::vector<double>& y) {
  double sum = 0.0, sq = 0.0;
  for (double v : y) {
    sum += v;
    sq += v * v;
  }
  if (sq <= 0.0) return 0.0;
  return sum * sum / (static_cast<double>(y.size()) * sq);
}

}  // namespace

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::max(3, std::atoi(argv[1])) : 200;
  const std::string path =
      argc > 2 ? argv[2] : std::string("churn_study.trace");

  // ---- Phase 1: record a live run under churn ------------------------
  Workbench wb(20260731);
  build_gateway_chain(wb);
  // External interferer: a passive channel node hidden from the chain's
  // transmitters but loud at the gateway receiver (hidden-terminal jam).
  const NodeId jammer = wb.channel().add_node(nullptr);
  wb.channel().set_rss_dbm(jammer, 2, -62.0);

  ControllerConfig cfg;
  cfg.probe_period_s = 0.25;
  cfg.probe_window = 40;
  cfg.optimizer.objective = Objective::kProportionalFair;
  MeshController ctl(wb.net(), cfg, 20260731);
  ManagedFlow far;
  far.flow_id = wb.net().open_flow(0, 2, Protocol::kUdp, 1470);
  far.path = {0, 1, 2};
  ctl.manage_flow(far);
  ManagedFlow near;
  near.flow_id = wb.net().open_flow(3, 2, Protocol::kUdp, 1470);
  near.path = {3, 2};
  ctl.manage_flow(near);

  const double window_s = ctl.probing_window_seconds();
  const int leave_round = rounds / 3;
  const int rejoin_round = 2 * rounds / 3;
  const double horizon_s = rounds * window_s;

  DynamicsScript script = node_flap(3, (leave_round + 0.5) * window_s,
                                    (rejoin_round + 0.5) * window_s);
  script.merge(markov_interferer(jammer, /*mean_on_s=*/2.5 * window_s,
                                 /*mean_off_s=*/4.0 * window_s, horizon_s,
                                 RngStream(20260731, "jam")));
  script.merge(random_walk_loss_drift(0, 1, Rate::kR1Mbps, /*p0=*/0.02,
                                      /*sigma=*/0.015, 2.0 * window_s,
                                      horizon_s,
                                      RngStream(20260731, "drift")));
  DynamicsEngine dynamics(wb, std::move(script));
  dynamics.arm();

  TraceWriter writer(path);
  ctl.record_to(&writer);
  LiveSource live(wb, ctl, rounds);
  MeasurementSnapshot snap;
  int done = 0;
  while (live.next(snap)) {
    (void)ctl.optimize_and_apply();  // keep re-planning under the churn
    ++done;
  }
  ctl.record_to(nullptr);
  writer.close();

  const PlannerStats& stats = ctl.planner().stats();
  std::printf(
      "recorded %d churn rounds (%.0f simulated s, %d dynamics events) to "
      "%s\n",
      writer.rounds(), done * window_s, dynamics.applied(), path.c_str());
  std::printf(
      "planner cache over the live run: %llu hits / %llu misses "
      "(re-enumerated only at topology epochs)\n\n",
      static_cast<unsigned long long>(stats.hits),
      static_cast<unsigned long long>(stats.misses));

  // ---- Phase 2: replay the churn over an objective grid --------------
  const std::vector<MeasurementSnapshot> trace = read_trace(path);

  struct Variant {
    const char* name;
    Objective objective;
  };
  const std::vector<Variant> variants = {
      {"max-throughput", Objective::kMaxThroughput},
      {"proportional", Objective::kProportionalFair},
      {"max-min", Objective::kMaxMin},
  };
  std::vector<ReplayCell> cells;
  for (const Variant& v : variants) {
    ReplayCell cell;
    cell.flows = ctl.flow_specs();
    cell.plan.optimizer.objective = v.objective;
    cells.push_back(std::move(cell));
  }

  ControllerFleet fleet;
  ReplayOptions opts;
  opts.segment_rounds = std::max(8, rounds / 8);  // shard the long trace
  const std::vector<ReplayResult> results = fleet.replay(cells, trace, opts);

  struct Phase {
    const char* name;
    int lo;
    int hi;
  };
  const std::vector<Phase> phases = {
      {"baseline", 0, leave_round},
      {"node-3 gone", leave_round + 1, rejoin_round},
      {"recovered", rejoin_round + 1, rounds},
  };

  std::printf("replayed %zu rounds x %zu objectives (segments of %d)\n\n",
              trace.size(), cells.size(), opts.segment_rounds);
  std::printf("%16s %14s %12s %12s %10s\n", "objective", "phase",
              "sum y (Mb/s)", "Jain index", "rounds ok");
  for (std::size_t i = 0; i < results.size(); ++i) {
    for (const Phase& ph : phases) {
      std::vector<double> mean_y(cells[i].flows.size(), 0.0);
      int ok = 0;
      for (int r = ph.lo; r < std::min(ph.hi, rounds); ++r) {
        const RatePlan& plan = results[i].plans[static_cast<std::size_t>(r)];
        if (!plan.ok) continue;
        ++ok;
        for (std::size_t s = 0; s < plan.y.size(); ++s) mean_y[s] += plan.y[s];
      }
      const double denom = ok > 0 ? static_cast<double>(ok) : 1.0;
      double total = 0.0;
      for (double& v : mean_y) {
        v /= denom;
        total += v;
      }
      std::printf("%16s %14s %12.3f %12.3f %7d/%d\n", variants[i].name,
                  ph.name, total / 1e6, jain_fairness(mean_y), ok,
                  std::max(ph.hi - ph.lo, 0));
    }
  }
  return 0;
}
