// Example: fault-injection study — a guarded controller riding churn AND
// scripted measurement faults for 200 rounds without falling over.
//
//   $ ./example_fault_study [rounds] [trace-path] [incidents-path]
//
// The scenario stacks the dynamic-churn timeline of example_churn_study
// (node flap, Markov interferer, random-walk loss drift) with a
// FaultScript of measurement-plane failures: whole probe windows dropped,
// NaN/Inf/negative loss estimates, capacity outliers, stale-snapshot
// replay bursts, and partial snapshots. Every fault is drawn at script
// generation time from a seeded RngStream, so the run — including every
// health transition — replays bit-identically.
//
// The guarded control loop (core/guard.h + MeshController::guarded_round)
// validates each snapshot, repairs what it can (clamp/drop), plans under
// decayed trust on repaired rounds, and holds the last-known-good plan
// with exponential backoff when a round is unusable. The example prints
// every health transition as it happens, then a per-phase table (the
// churn phases: full mesh, cross node gone, rejoined) of objective and
// health counters, and the final HealthStats tally.
//
// The sensed windows are also recorded to a binary trace, so the exact
// faulted run can be replayed offline (see example_trace_study). A
// TraceRecorder rides along as flight recorder: every FALLBACK entry
// snapshots the last rounds of trace context into an IncidentReport, and
// the reports are written out as JSON. The example cross-checks the
// recorder against the observed run — it exits nonzero if any incident's
// round index disagrees with the transition round the loop saw.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/controller.h"
#include "core/guard.h"
#include "core/planner.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "probe/live_source.h"
#include "scenario/dynamics.h"
#include "scenario/faults.h"
#include "scenario/topologies.h"
#include "scenario/workbench.h"
#include "util/rng.h"
#include "util/trace_codec.h"

using namespace meshopt;

namespace {

constexpr std::uint64_t kSeed = 20260807;

/// Proportional-fair objective of one round's output rates (Mbit/s), the
/// quantity the optimizer maximizes; NaN when the round produced no plan.
double pf_objective(const std::vector<double>& y) {
  if (y.empty()) return std::nan("");
  double obj = 0.0;
  for (double v : y) {
    if (v <= 0.0) return std::nan("");
    obj += std::log(v / 1e6);
  }
  return obj;
}

struct PhaseTally {
  const char* name = "";
  int rounds = 0;
  int healthy = 0;
  int degraded = 0;
  int fallback = 0;
  double obj_sum = 0.0;
  int obj_rounds = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::max(9, std::atoi(argv[1])) : 200;
  const std::string path =
      argc > 2 ? argv[2] : std::string("fault_study.trace");
  const std::string incidents_path =
      argc > 3 ? argv[3] : std::string("fault_study_incidents.json");

  Workbench wb(kSeed);
  build_gateway_chain(wb);
  const NodeId jammer = wb.channel().add_node(nullptr);
  wb.channel().set_rss_dbm(jammer, 2, -62.0);

  ControllerConfig cfg;
  cfg.probe_period_s = 0.25;
  cfg.probe_window = 20;
  cfg.optimizer.objective = Objective::kProportionalFair;
  MeshController ctl(wb.net(), cfg, kSeed);
  ctl.set_guard(GuardConfig{});
  ManagedFlow far;
  far.flow_id = wb.net().open_flow(0, 2, Protocol::kUdp, 1470);
  far.path = {0, 1, 2};
  ctl.manage_flow(far);
  ManagedFlow near;
  near.flow_id = wb.net().open_flow(3, 2, Protocol::kUdp, 1470);
  near.path = {3, 2};
  ctl.manage_flow(near);

  // ---- churn timeline (network-plane dynamics) -----------------------
  const double window_s = ctl.probing_window_seconds();
  const int leave_round = rounds / 3;
  const int rejoin_round = 2 * rounds / 3;
  const double horizon_s = rounds * window_s;
  DynamicsScript churn = node_flap(3, (leave_round + 0.5) * window_s,
                                   (rejoin_round + 0.5) * window_s);
  churn.merge(markov_interferer(jammer, /*mean_on_s=*/2.5 * window_s,
                                /*mean_off_s=*/4.0 * window_s, horizon_s,
                                RngStream(kSeed, "jam")));
  churn.merge(random_walk_loss_drift(0, 1, Rate::kR1Mbps, /*p0=*/0.02,
                                     /*sigma=*/0.015, 2.0 * window_s,
                                     horizon_s, RngStream(kSeed, "drift")));
  DynamicsEngine dynamics(wb, std::move(churn));
  dynamics.arm();

  // ---- fault timeline (measurement-plane failures) -------------------
  FaultScript faults =
      window_dropout_faults(rounds, 0.05, RngStream(kSeed, "drop"));
  faults.merge(
      loss_corruption_faults(rounds, 0.08, 4, RngStream(kSeed, "loss")));
  faults.merge(
      capacity_outlier_faults(rounds, 0.04, 4, RngStream(kSeed, "cap")));
  faults.merge(stale_replay_faults(rounds, 0.03, 2, RngStream(kSeed, "stale")));
  faults.merge(
      partial_snapshot_faults(rounds, 0.04, 2, RngStream(kSeed, "part")));
  std::printf("fault script: %zu events over %d rounds\n",
              faults.events.size(), rounds);

  TraceWriter writer(path);
  ctl.record_to(&writer);
  LiveSource live(wb, ctl, rounds);
  FaultEngine source(&live, std::move(faults));

  // Flight recorder: FALLBACK entries and guardrail rejects snapshot the
  // surrounding rounds into IncidentReports (max_incidents caps storage;
  // the overflow is still counted).
  ObsConfig obs_cfg;
  obs_cfg.max_incidents = 64;
  TraceRecorder obs(obs_cfg);
  ctl.set_observer(&obs);

  // ---- guarded run: print transitions, tally per churn phase ---------
  PhaseTally phases[3] = {{"full mesh"}, {"node 3 gone"}, {"rejoined"}};
  HealthState state = ctl.health();
  std::vector<std::uint64_t> observed_fallback_rounds;
  std::printf("\nhealth transitions:\n");
  for (int r = 0; r < rounds; ++r) {
    const RoundResult round = ctl.guarded_round(source);
    if (round.exhausted) break;
    if (round.health != state) {
      std::printf("  round %3d: %-8s -> %-8s%s\n", r, to_string(state),
                  to_string(round.health),
                  round.held ? "  (holding last-known-good plan)" : "");
      if (round.health == HealthState::kFallback)
        observed_fallback_rounds.push_back(static_cast<std::uint64_t>(r));
      state = round.health;
    }
    PhaseTally& phase =
        phases[r < leave_round ? 0 : (r < rejoin_round ? 1 : 2)];
    ++phase.rounds;
    if (round.health == HealthState::kHealthy) ++phase.healthy;
    if (round.health == HealthState::kDegraded) ++phase.degraded;
    if (round.health == HealthState::kFallback) ++phase.fallback;
    const double obj = pf_objective(round.y);
    if (std::isfinite(obj)) {
      phase.obj_sum += obj;
      ++phase.obj_rounds;
    }
  }
  ctl.record_to(nullptr);
  writer.close();

  std::printf("\nper-phase summary (proportional-fair objective, sum log "
              "y/Mbps):\n");
  std::printf("  %-12s %7s %8s %9s %9s %10s\n", "phase", "rounds", "healthy",
              "degraded", "fallback", "mean obj");
  for (const PhaseTally& phase : phases) {
    const double mean = phase.obj_rounds > 0
                            ? phase.obj_sum / phase.obj_rounds
                            : std::nan("");
    std::printf("  %-12s %7d %8d %9d %9d %10.3f\n", phase.name, phase.rounds,
                phase.healthy, phase.degraded, phase.fallback, mean);
  }

  const HealthStats& hs = ctl.health_stats();
  std::printf("\nhealth stats over %llu guarded rounds:\n",
              static_cast<unsigned long long>(hs.rounds));
  std::printf("  snapshots: %llu clean / %llu repaired / %llu rejected\n",
              static_cast<unsigned long long>(hs.snapshots_clean),
              static_cast<unsigned long long>(hs.snapshots_repaired),
              static_cast<unsigned long long>(hs.snapshots_rejected));
  std::printf("  repair tier: %llu losses clamped, %llu links dropped\n",
              static_cast<unsigned long long>(hs.links_clamped),
              static_cast<unsigned long long>(hs.links_dropped));
  std::printf(
      "  fallback: %llu entries, %llu recoveries, %llu backoff skips\n",
      static_cast<unsigned long long>(hs.fallback_entries),
      static_cast<unsigned long long>(hs.recoveries),
      static_cast<unsigned long long>(hs.backoff_skips));
  std::printf("  faults injected by the engine: %d\n",
              source.faults_injected());
  std::printf("  final state: %s\n", to_string(ctl.health()));
  std::printf("\nrecorded %d sensed windows to %s\n", writer.rounds(),
              path.c_str());

  // ---- flight recorder: dump incidents, cross-check round indices ----
  {
    std::string doc = "[";
    for (std::size_t i = 0; i < obs.incidents().size(); ++i) {
      if (i > 0) doc += ",\n ";
      doc += obs.incidents()[i].to_json();
    }
    doc += "]\n";
    std::FILE* f = std::fopen(incidents_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", incidents_path.c_str());
      return 2;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
  }
  std::printf("flight recorder: %zu incidents (+%llu beyond cap) -> %s\n",
              obs.incidents().size(),
              static_cast<unsigned long long>(obs.incidents_dropped()),
              incidents_path.c_str());

  // Every FALLBACK-entry report must carry exactly the round index at
  // which the loop observed the transition, in order. The recorder's
  // rounds are 0-based from attachment, same as the loop counter.
  std::vector<std::uint64_t> report_rounds;
  for (const IncidentReport& inc : obs.incidents())
    if (inc.code == ObsCode::kFallbackEntry) report_rounds.push_back(inc.round);
  if (report_rounds != observed_fallback_rounds) {
    std::fprintf(stderr,
                 "FAIL: incident rounds disagree with observed FALLBACK "
                 "transitions (%zu reports vs %zu observed)\n",
                 report_rounds.size(), observed_fallback_rounds.size());
    for (std::size_t i = 0;
         i < std::max(report_rounds.size(), observed_fallback_rounds.size());
         ++i)
      std::fprintf(
          stderr, "  [%zu] report=%lld observed=%lld\n", i,
          i < report_rounds.size()
              ? static_cast<long long>(report_rounds[i])
              : -1LL,
          i < observed_fallback_rounds.size()
              ? static_cast<long long>(observed_fallback_rounds[i])
              : -1LL);
    return 2;
  }
  std::printf("flight recorder agrees with the run: %zu FALLBACK entries at "
              "matching rounds\n",
              report_rounds.size());
  return ctl.health() == HealthState::kFallback ? 1 : 0;
}
