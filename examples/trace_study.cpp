// Example: record once, replay many — the trace-driven study workflow.
//
//   $ ./example_trace_study [rounds] [trace-path]
//
// Phase 1 (expensive, once): run a live gateway-topology controller with
// record mode on, so every sensed measurement window is appended to a
// binary trace file.
//
// Phase 2 (cheap, repeatable): reload the trace and sweep a grid of
// utility objectives x interference models over the SAME recorded rounds
// with ControllerFleet::replay — pure optimizer work, no simulator. This
// is how fairness comparisons over one measured workload are done: every
// objective sees literally identical channel conditions, so differences
// in the resulting allocations are attributable to the objective alone.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/controller.h"
#include "core/snapshot_source.h"
#include "probe/live_source.h"
#include "scenario/topologies.h"
#include "scenario/workbench.h"
#include "sim/simulator.h"
#include "sweep/controller_fleet.h"
#include "util/trace_codec.h"

using namespace meshopt;

int main(int argc, char** argv) {
  // Clamp to >= 1: a negative count would make LiveSource unbounded and
  // the recording loop endless.
  const int rounds = argc > 1 ? std::max(1, std::atoi(argv[1])) : 4;
  const std::string path =
      argc > 2 ? argv[2] : std::string("trace_study.trace");

  // ---- Phase 1: record a live run ------------------------------------
  Workbench wb(4242);
  build_gateway_chain(wb);  // the canonical starvation-gateway scenario

  ControllerConfig cfg;
  cfg.probe_period_s = 0.25;
  cfg.probe_window = 40;
  MeshController ctl(wb.net(), cfg, 4242);
  ManagedFlow far;
  far.flow_id = wb.net().open_flow(0, 2, Protocol::kUdp, 1470);
  far.path = {0, 1, 2};
  ctl.manage_flow(far);
  ManagedFlow near;
  near.flow_id = wb.net().open_flow(3, 2, Protocol::kUdp, 1470);
  near.path = {3, 2};
  ctl.manage_flow(near);

  TraceWriter writer(path);
  ctl.record_to(&writer);
  LiveSource live(wb, ctl, rounds);
  MeasurementSnapshot snap;
  while (live.next(snap)) {
  }
  ctl.record_to(nullptr);
  writer.close();
  std::printf("recorded %d rounds (%.1f simulated seconds) to %s\n",
              writer.rounds(), rounds * ctl.probing_window_seconds(),
              path.c_str());

  // ---- Phase 2: replay the trace under many objectives ---------------
  const std::vector<MeasurementSnapshot> trace = read_trace(path);
  const std::uint64_t sims_before = Simulator::constructed();

  // Each objective replays on both plan tiers (ARCHITECTURE.md, "Plan
  // tiers"): kExact is the bit-identical reference, kFast the
  // column-generation path whose objective tracks exact to <= 1e-6
  // relative — at gateway scale (tiny K) the tiers cost about the same;
  // at MIS/80-class K the fast tier is the difference between a replay
  // grid taking minutes and taking seconds (BM_ReplayColumnGen).
  struct Variant {
    const char* name;
    Objective objective;
    PlanTier tier;
  };
  std::vector<Variant> variants;
  for (const auto& [name, obj] :
       {std::pair{"max-throughput", Objective::kMaxThroughput},
        std::pair{"proportional", Objective::kProportionalFair},
        std::pair{"max-min", Objective::kMaxMin}}) {
    variants.push_back({name, obj, PlanTier::kExact});
    variants.push_back({name, obj, PlanTier::kFast});
  }
  std::vector<ReplayCell> cells;
  for (const Variant& v : variants) {
    ReplayCell cell;
    cell.flows = ctl.flow_specs();
    cell.plan.optimizer.objective = v.objective;
    cell.plan.tier = v.tier;
    cells.push_back(std::move(cell));
  }

  ControllerFleet fleet;
  const std::vector<ReplayResult> results = fleet.replay(cells, trace);

  std::printf("\nreplayed %zu rounds x %zu objectives (%llu simulators "
              "constructed)\n\n",
              trace.size(), cells.size(),
              static_cast<unsigned long long>(Simulator::constructed() -
                                              sims_before));
  std::printf("%16s %6s %14s %14s %10s\n", "objective", "tier",
              "mean y0 (Mb/s)", "mean y1 (Mb/s)", "rounds ok");
  for (std::size_t i = 0; i < results.size(); ++i) {
    double y0 = 0.0, y1 = 0.0;
    int ok = 0;
    for (const RatePlan& plan : results[i].plans) {
      if (!plan.ok) continue;
      ++ok;
      y0 += plan.y[0];
      y1 += plan.y[1];
    }
    const double denom = ok > 0 ? static_cast<double>(ok) : 1.0;
    std::printf("%16s %6s %14.3f %14.3f %7d/%zu\n", variants[i].name,
                variants[i].tier == PlanTier::kFast ? "fast" : "exact",
                y0 / denom / 1e6, y1 / denom / 1e6, ok,
                results[i].plans.size());
  }
  return 0;
}
