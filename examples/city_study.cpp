// Example: city-scale decomposed planning under localized churn.
//
//   $ ./example_city_study [rounds] [trace-json-path]
//
// A city deployment is four gateway-cluster cliques stitched by RF-silent
// bridge links: the interference (conflict) graph splits into seven
// connected components (4 cluster cliques + 3 bridge singletons), so the
// planning problem is block-separable and DecomposedPlanner solves each
// component independently, stitching a plan that matches the monolithic
// solve to 1e-9 relative objective.
//
// Each round, link capacities drift (cache-neutral: the topology
// fingerprint ignores load), and every few rounds ONE cluster's measured
// LIR values churn (conflicts persist, values move). A monolithic planner
// must re-enumerate its whole model at every churn epoch; the decomposed
// planner re-keys only the churned component's slot and keeps the other
// clusters' cached models and warm column state hot. The study prints the
// per-component cache-epoch table and plans/s for both planners, and
// exits nonzero if the decomposed objective ever drifts from the
// monolithic one beyond 1e-9 relative tolerance.
//
// The decomposed run is traced (src/obs): per-component solve spans,
// cache events, and decomposition fallbacks land in a TraceRecorder, and
// the run exports a Chrome trace-event JSON loadable in Perfetto
// (ui.perfetto.dev) with one lane per component.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/planner.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "opt/decompose.h"
#include "scenario/topologies.h"

using namespace meshopt;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::max(4, std::atoi(argv[1])) : 48;
  const std::string trace_path =
      argc > 2 ? argv[2] : std::string("city_study_trace.json");
  const int churn_every = 6;

  const CityParams p;  // 4 clusters x 12 links + 3 bridges = 51 links
  const std::vector<FlowSpec> flows = city_flows(p);
  PlanConfig cfg;
  cfg.optimizer.objective = Objective::kProportionalFair;
  cfg.tier = PlanTier::kFast;

  Planner mono(8);
  DecomposedPlanner decomposed;
  ObsConfig obs_cfg;
  obs_cfg.wall_clock = true;  // enrich spans; determinism not needed here
  TraceRecorder obs(obs_cfg);
  decomposed.set_observer(&obs);

  std::vector<int> epoch(static_cast<std::size_t>(p.clusters), 0);
  double mono_s = 0.0;
  double dec_s = 0.0;
  double worst_rel = 0.0;
  int worst_round = -1;

  for (int r = 0; r < rounds; ++r) {
    // Localized churn: one cluster's LIR measurements move (conflicts
    // persist — the partition is stable) on a rotating schedule.
    if (r > 0 && r % churn_every == 0)
      ++epoch[static_cast<std::size_t>((r / churn_every - 1) % p.clusters)];

    MeasurementSnapshot snap = build_city_snapshot(p);
    for (SnapshotLink& l : snap.links)
      l.estimate.capacity_bps *= 1.0 + 0.01 * (r % 5);  // cache-neutral drift
    for (int c = 0; c < p.clusters; ++c) {
      const double lir =
          p.conflict_lir - 0.02 * (epoch[static_cast<std::size_t>(c)] % 4);
      for (int i : city_cluster_links(p, c))
        for (int j : city_cluster_links(p, c))
          if (i != j) snap.lir(i, j) = lir;
    }

    auto t0 = std::chrono::steady_clock::now();
    const RatePlan pm =
        mono.plan(snap, InterferenceModelKind::kLirTable, flows, cfg);
    mono_s += seconds_since(t0);
    t0 = std::chrono::steady_clock::now();
    obs.set_context(0, static_cast<std::uint64_t>(r));
    const RatePlan pd =
        decomposed.plan(snap, InterferenceModelKind::kLirTable, flows, cfg);
    dec_s += seconds_since(t0);

    if (!pm.ok || !pd.ok) {
      std::fprintf(stderr, "round %d: plan failed (mono=%d dec=%d)\n", r,
                   pm.ok, pd.ok);
      return 1;
    }
    const double rel = std::abs(pd.objective_value - pm.objective_value) /
                       (std::abs(pm.objective_value) + 1.0);
    if (rel > worst_rel) {
      worst_rel = rel;
      worst_round = r;
    }
  }

  const DecomposeStats& ds = decomposed.stats();
  std::printf("city: %d links, %d components, %zu flows, %d rounds "
              "(cluster churn every %d)\n\n",
              51, decomposed.partition().count(), flows.size(), rounds,
              churn_every);

  std::printf("per-component cache epochs (misses = model re-keys):\n");
  std::printf("%10s %6s %8s %8s\n", "component", "links", "misses", "hits");
  for (int c = 0; c < decomposed.partition().count(); ++c) {
    const PlannerStats& s = decomposed.component_planner_stats(c);
    std::printf("%10d %6zu %8llu %8llu\n", c,
                decomposed.partition().members[static_cast<std::size_t>(c)]
                    .size(),
                static_cast<unsigned long long>(s.misses),
                static_cast<unsigned long long>(s.hits));
  }
  const PlannerStats& ms = mono.stats();
  std::printf("%10s %6d %8llu %8llu   (every churn epoch re-keys all)\n\n",
              "monolith", 51, static_cast<unsigned long long>(ms.misses),
              static_cast<unsigned long long>(ms.hits));

  std::printf("%12s %10s %10s\n", "planner", "plans/s", "total s");
  std::printf("%12s %10.1f %10.3f\n", "monolithic", rounds / mono_s, mono_s);
  std::printf("%12s %10.1f %10.3f   (%.2fx)\n", "decomposed", rounds / dec_s,
              dec_s, mono_s / dec_s);
  std::printf("\ndecomposed rounds %llu, components planned %llu, "
              "fallbacks %llu\n",
              static_cast<unsigned long long>(ds.decomposed_rounds),
              static_cast<unsigned long long>(ds.components_planned),
              static_cast<unsigned long long>(ds.fallback_rounds));
  std::printf("worst objective drift vs monolithic: %.3e (round %d)\n",
              worst_rel, worst_round);

  // Export the decomposed run's trace for Perfetto (one lane per
  // component; synthesized deterministic timestamps keep rounds aligned).
  {
    const std::string json = chrome_trace_json(obs);
    std::FILE* f = std::fopen(trace_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\ntraced %llu records (%llu dropped) -> %s "
                "(load in ui.perfetto.dev)\n",
                static_cast<unsigned long long>(obs.records_emitted()),
                static_cast<unsigned long long>(obs.records_dropped()),
                trace_path.c_str());
  }

  if (worst_rel > 1e-9) {
    std::fprintf(stderr,
                 "FAIL: decomposed objective drifted beyond 1e-9 relative\n");
    return 1;
  }
  std::printf("OK: decomposed == monolithic within 1e-9 relative on every "
              "round\n");
  return 0;
}
