// Example: fleet-scale controller runs + offline snapshot replay.
//
//   $ ./example_fleet_replay [threads]
//
// Runs a grid of independent controller loops (gateway topology variants
// × utility objectives) on the work-stealing pool via ControllerFleet,
// then takes one cell's MeasurementSnapshot, round-trips it through its
// JSON serialization, and re-plans offline — demonstrating that the
// replayed plan is bit-identical to what the live controller computed.
// Run with `./example_fleet_replay 1` to confirm the fleet output is
// independent of the thread count.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/interference.h"
#include "core/rate_plan.h"
#include "core/snapshot.h"
#include "sweep/controller_fleet.h"

using namespace meshopt;

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 0;

  // The grid: cross-link quality x optimization objective.
  const std::vector<double> cross_rss = {-56.0, -62.0};
  const std::vector<Objective> objectives = {Objective::kProportionalFair,
                                             Objective::kMaxThroughput,
                                             Objective::kMaxMin};
  std::vector<FleetCell> cells;
  for (const double rss : cross_rss) {
    for (const Objective obj : objectives) {
      FleetCell cell;
      cell.build_topology = [rss](Workbench& wb) {
        wb.add_nodes(4);
        Channel& ch = wb.channel();
        for (NodeId a = 0; a < 4; ++a)
          for (NodeId b = 0; b < 4; ++b)
            if (a != b) ch.set_rss_dbm(a, b, -120.0);
        ch.set_rss_symmetric_dbm(0, 1, -58.0);
        ch.set_rss_symmetric_dbm(1, 2, -58.0);
        ch.set_rss_symmetric_dbm(3, 2, rss);
        ch.set_rss_symmetric_dbm(1, 3, -70.0);
      };
      cell.flows = {FleetFlow{{0, 1, 2}}, FleetFlow{{3, 2}}};
      cell.controller.probe_period_s = 0.25;
      cell.controller.probe_window = 60;
      cell.controller.optimizer.objective = obj;
      cells.push_back(std::move(cell));
    }
  }

  ControllerFleet fleet(threads);
  std::printf("running %zu controller loops on %d threads\n", cells.size(),
              fleet.threads());
  const auto results = fleet.run(cells, /*master_seed=*/2025);

  std::printf("\n%10s %18s %14s %14s %6s\n", "cross dBm", "objective",
              "y0 (Mb/s)", "y1 (Mb/s)", "K");
  const char* names[] = {"max-throughput", "proportional", "alpha", "max-min"};
  for (std::size_t i = 0; i < results.size(); ++i) {
    const FleetResult& r = results[i];
    const Objective obj = cells[i].controller.optimizer.objective;
    std::printf("%10.0f %18s %14.3f %14.3f %6d\n",
                cross_rss[i / objectives.size()],
                names[static_cast<int>(obj)],
                r.plan.y.empty() ? 0.0 : r.plan.y[0] / 1e6,
                r.plan.y.size() < 2 ? 0.0 : r.plan.y[1] / 1e6,
                r.plan.extreme_points);
  }

  // Offline replay: cell 0's snapshot through JSON and back.
  const FleetResult& live = results.front();
  const std::string json = live.snapshot.to_json();
  const MeasurementSnapshot replayed = MeasurementSnapshot::from_json(json);
  const InterferenceModel model =
      InterferenceModel::build(replayed, InterferenceModelKind::kTwoHop);
  std::vector<FlowSpec> flows(2);
  flows[0].flow_id = 0;
  flows[0].path = {0, 1, 2};
  flows[1].flow_id = 1;
  flows[1].path = {3, 2};
  PlanConfig plan_cfg;
  plan_cfg.optimizer = cells.front().controller.optimizer;
  const RatePlan replay = plan_rates(replayed, model, flows, plan_cfg);

  const bool identical = replay.ok && replay.y == live.plan.y &&
                         replay.x == live.plan.x;
  std::printf("\nsnapshot JSON: %zu bytes; replayed plan %s the live plan\n",
              json.size(), identical ? "bit-identical to" : "DIFFERS from");
  return identical ? 0 : 1;
}
