// Example: rescuing a starved multi-hop TCP flow (the paper's Fig. 13
// scenario) with online proportional-fair rate control.
//
//   $ ./example_starvation_rescue
//
// A 2-hop TCP flow and a 1-hop TCP flow share a gateway; their sources
// are hidden from each other. Unmanaged, the 1-hop flow takes everything.
// One controller round revives the 2-hop flow.

#include <cstdio>

#include "core/controller.h"
#include "scenario/workbench.h"
#include "transport/tcp.h"

using namespace meshopt;

int main() {
  Workbench wb(42);
  wb.add_nodes(4);
  Channel& ch = wb.channel();
  for (NodeId a = 0; a < 4; ++a)
    for (NodeId b = 0; b < 4; ++b)
      if (a != b) ch.set_rss_dbm(a, b, -120.0);
  ch.set_rss_symmetric_dbm(0, 1, -58.0);
  ch.set_rss_symmetric_dbm(1, 2, -58.0);
  ch.set_rss_symmetric_dbm(3, 2, -56.0);
  ch.set_rss_symmetric_dbm(1, 3, -70.0);
  wb.net().set_path_routes({0, 1, 2}, Rate::kR1Mbps);
  wb.net().set_path_routes({3, 2}, Rate::kR1Mbps);

  TcpFlow far(wb.net(), 0, 2, TcpParams{}, RngStream(42, "far"));
  TcpFlow near(wb.net(), 3, 2, TcpParams{}, RngStream(42, "near"));
  far.start();
  near.start();

  wb.run_for(10.0);
  far.reset_goodput();
  near.reset_goodput();
  wb.run_for(20.0);
  std::printf("without rate control:\n");
  std::printf("  2-hop flow: %7.1f kb/s\n", far.goodput_bps(20.0) / 1e3);
  std::printf("  1-hop flow: %7.1f kb/s   <- starves the 2-hop flow\n",
              near.goodput_bps(20.0) / 1e3);

  ControllerConfig cfg;
  cfg.probe_period_s = 0.5;
  cfg.probe_window = 120;
  cfg.optimizer.objective = Objective::kProportionalFair;
  cfg.headroom = 0.7;
  MeshController ctl(wb.net(), cfg, 42);

  ManagedFlow mf;
  mf.flow_id = far.data_flow_id();
  mf.path = {0, 1, 2};
  mf.is_tcp = true;
  mf.apply_rate = [&](double x) { far.set_rate_limit_bps(x); };
  ctl.manage_flow(mf);
  ManagedFlow mn;
  mn.flow_id = near.data_flow_id();
  mn.path = {3, 2};
  mn.is_tcp = true;
  mn.apply_rate = [&](double x) { near.set_rate_limit_bps(x); };
  ctl.manage_flow(mn);

  std::printf("\nrunning one online optimization round (%.0f s probing)\n",
              ctl.probing_window_seconds());
  const RoundResult round = ctl.run_round(wb);
  ctl.stop_probing();
  if (!round.ok) {
    std::printf("round failed\n");
    return 1;
  }
  std::printf("  optimized y = (%.0f, %.0f) kb/s, applied x = (%.0f, %.0f)\n",
              round.y[0] / 1e3, round.y[1] / 1e3, round.x[0] / 1e3,
              round.x[1] / 1e3);

  wb.run_for(5.0);
  far.reset_goodput();
  near.reset_goodput();
  wb.run_for(20.0);
  std::printf("\nwith proportional-fair rate control:\n");
  std::printf("  2-hop flow: %7.1f kb/s   <- revived\n",
              far.goodput_bps(20.0) / 1e3);
  std::printf("  1-hop flow: %7.1f kb/s\n", near.goodput_bps(20.0) / 1e3);
  return 0;
}
