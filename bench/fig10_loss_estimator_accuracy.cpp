// Figure 10 reproduction: channel-loss estimator accuracy across many
// links, with ON/OFF interference, measured on live probe streams.
//
//  (a) CDF of |estimate - ground truth| for a large probing window;
//  (b) RMSE as the probing window S shrinks (robust down to S ~ 200).
//
// Paper shape: error < 5% for ~70% of runs, RMSE ~0.05 at S=1280 rising
// only slightly (~0.06) at S=200.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "estimation/loss_estimator.h"
#include "probe/probe_system.h"
#include "scenario/topologies.h"
#include "scenario/workbench.h"
#include "transport/udp.h"
#include "util/stats.h"

using namespace meshopt;

namespace {

struct RunSample {
  double truth = 0.0;
  std::vector<std::uint8_t> pattern;  // full window with interference
};

/// One link experiment: phase 1 measures ground-truth channel loss with
/// probes alone; phase 2 probes under ON/OFF interference.
RunSample run_link(double p_ch, Rate rate, double interference_dbm,
                   std::uint64_t seed) {
  RunSample out;
  Workbench wb(seed);
  wb.add_nodes(4);
  TwoLinkParams params;
  params.cls = TopologyClass::kIA;
  params.interference_dbm = interference_dbm;
  params.p_ch_a = p_ch;
  auto [a, b] = build_two_link(wb, params, rate, rate);

  // Phase 1: ground truth (probes alone).
  {
    ProbeAgent agent(wb.net(), a.src, RngStream(seed, "gt-agent"));
    agent.configure(0.05, {rate});
    ProbeMonitor mon(wb.net(), a.dst);
    agent.start();
    wb.run_for(0.05 * 820);
    agent.stop();
    const auto* rec = mon.stream({a.src, rate, ProbeKind::kDataProbe});
    out.truth = rec ? rec->loss_rate(agent.sent(rate, ProbeKind::kDataProbe))
                    : 1.0;
    wb.run_for(0.5);
  }

  // Phase 2: probing with ON/OFF interference.
  {
    ProbeAgent agent(wb.net(), a.src, RngStream(seed, "p2-agent"));
    agent.configure(0.1, {rate});
    ProbeMonitor mon(wb.net(), a.dst);
    const std::uint64_t base = agent.sent(rate, ProbeKind::kDataProbe);
    mon.stream_mut({a.src, rate, ProbeKind::kDataProbe})->begin_window(base);
    agent.start();

    wb.net().node(b.src).set_route(b.dst, b.dst);
    wb.net().node(b.src).set_link_rate(b.dst, b.rate);
    const int bflow = wb.net().open_flow(b.src, b.dst, Protocol::kUdp, 1470);
    UdpSource interferer(wb.net(), bflow, UdpMode::kBacklogged, 0.0,
                         RngStream(seed, "intf"));
    // Interference epochs of seconds-to-tens-of-seconds, as in deployed
    // meshes (the paper's 640 s windows span several such epochs). The
    // OFF gaps must span enough probes for clean-segment statistics.
    RngStream sched(seed, "onoff");
    std::function<void(bool)> toggle = [&](bool on) {
      if (on) {
        interferer.start();
      } else {
        interferer.stop();
      }
      const double dwell =
          on ? sched.uniform(2.0, 5.0) : sched.uniform(8.0, 16.0);
      wb.sim().schedule(seconds(dwell), [&toggle, on] { toggle(!on); });
    };
    toggle(true);

    wb.run_for(0.1 * 1300);
    agent.stop();
    interferer.stop();
    const auto* rec = mon.stream({a.src, rate, ProbeKind::kDataProbe});
    if (rec != nullptr) out.pattern = rec->pattern(1280);
  }
  return out;
}

}  // namespace

int main() {
  benchutil::header(
      "Figure 10 - channel-loss estimator accuracy over many links",
      "(a) error < 0.05 for ~70% of runs, RMSE ~0.05 at S=1280; (b) RMSE "
      "stays ~<0.08 down to S=200");

  std::vector<RunSample> samples;
  std::uint64_t seed = 400;
  for (Rate rate : {Rate::kR1Mbps, Rate::kR11Mbps}) {
    for (double p_ch : {0.0, 0.05, 0.1, 0.2, 0.35}) {
      for (double interf : {-58.0, -63.0}) {
        for (int rep = 0; rep < 2; ++rep) {
          samples.push_back(run_link(p_ch, rate, interf, seed++));
        }
      }
    }
  }

  // (a) error CDF at S=1280.
  Cdf err_cdf;
  {
    std::vector<double> est, truth;
    for (const auto& s : samples) {
      if (s.pattern.empty()) continue;
      const auto e = estimate_channel_loss(s.pattern);
      est.push_back(e.p_ch);
      truth.push_back(s.truth);
      err_cdf.add(std::abs(e.p_ch - s.truth));
    }
    std::printf("\n(a) S = 1280 probes, %zu link runs\n", est.size());
    benchutil::print_cdf("|estimation error|", err_cdf, 9);
    benchutil::kv("fraction with error < 0.05", err_cdf.fraction_below(0.05));
    benchutil::kv("RMSE", rmse(est, truth));
  }

  // (b) RMSE vs window size (truncate the same patterns).
  std::printf("\n(b) RMSE vs probing window S:\n");
  std::printf("  %8s %10s\n", "S", "RMSE");
  for (int s_len : {200, 400, 640, 900, 1280}) {
    std::vector<double> est, truth;
    for (const auto& s : samples) {
      if (static_cast<int>(s.pattern.size()) < s_len) continue;
      const std::vector<std::uint8_t> window(
          s.pattern.begin(), s.pattern.begin() + s_len);
      est.push_back(estimate_channel_loss(window).p_ch);
      truth.push_back(s.truth);
    }
    std::printf("  %8d %10.4f\n", s_len, rmse(est, truth));
  }
  std::printf(
      "\nExpectation: RMSE ~0.05 at S=1280, degrading mildly at S=200\n");
  return 0;
}
