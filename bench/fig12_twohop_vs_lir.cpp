// Figure 12 reproduction: the online two-hop interference model vs the
// measured binary-LIR reference, on the Fig. 7/8 validation harness.
//
// Paper shape: (a) the two-hop model's achieved/estimated CDF is close to
// the LIR model's (low over-estimation error for both); (b) the RMSE of
// both models grows with the input scaling factor (both near-optimal in
// total capacity).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "scenario/validation.h"
#include "util/stats.h"

using namespace meshopt;

namespace {

struct ModelSeries {
  Cdf ratio_cdf;  ///< achieved/estimated at scale 1
  std::vector<std::vector<double>> ach_by_scale{4};  ///< scale 1,1.1,1.2,1.5
  std::vector<std::vector<double>> est_by_scale{4};
};

void collect(InterferenceModelKind kind, ModelSeries& out) {
  std::uint64_t seed = 601;
  const std::vector<double> scales{1.1, 1.2, 1.5};
  for (Rate rate : {Rate::kR1Mbps, Rate::kR11Mbps}) {
    for (int flows : {2, 3}) {
      ValidationConfig cfg;
      cfg.seed = seed++;
      cfg.rate = rate;
      cfg.num_flows = flows;
      cfg.scales = scales;
      cfg.interference = kind;
      const ValidationRun run = run_network_validation(cfg);
      if (!run.ok) continue;
      for (const auto& f : run.flows) {
        if (f.estimated_bps < 1e3) continue;
        out.ratio_cdf.add(std::min(f.achieved_bps / f.estimated_bps, 1.5));
        out.ach_by_scale[0].push_back(f.achieved_bps);
        out.est_by_scale[0].push_back(f.estimated_bps);
        for (std::size_t k = 0; k < scales.size(); ++k) {
          out.ach_by_scale[k + 1].push_back(f.scaled_achieved_bps[k]);
          out.est_by_scale[k + 1].push_back(f.estimated_bps * scales[k]);
        }
      }
    }
  }
}

double series_rmse(const std::vector<double>& ach,
                   const std::vector<double>& est) {
  if (ach.empty()) return 0.0;
  // Normalized per-flow error, as ratios.
  std::vector<double> r, ones;
  for (std::size_t i = 0; i < ach.size(); ++i) {
    r.push_back(ach[i] / std::max(est[i], 1.0));
    ones.push_back(1.0);
  }
  return rmse(r, ones);
}

}  // namespace

int main() {
  benchutil::header(
      "Figure 12 - binary-LIR vs two-hop interference model",
      "(a) similar achieved/estimated CDFs; (b) RMSE grows with scaling "
      "for both (near-optimal capacity)");

  ModelSeries lir, twohop;
  collect(InterferenceModelKind::kLirTable, lir);
  collect(InterferenceModelKind::kTwoHop, twohop);

  std::printf("\n(a) CDF of achieved/estimated throughput (scale = 1):\n");
  benchutil::print_cdf("binary LIR", lir.ratio_cdf, 9);
  benchutil::print_cdf("two-hop", twohop.ratio_cdf, 9);
  benchutil::kv("LIR    median ratio", lir.ratio_cdf.quantile(0.5));
  benchutil::kv("two-hop median ratio", twohop.ratio_cdf.quantile(0.5));

  std::printf("\n(b) RMSE of achieved/target vs input scaling:\n");
  std::printf("  %-8s %12s %12s\n", "scale", "LIR", "two-hop");
  const double scales[4] = {1.0, 1.1, 1.2, 1.5};
  for (int k = 0; k < 4; ++k) {
    std::printf("  %-8.1f %12.4f %12.4f\n", scales[k],
                series_rmse(lir.ach_by_scale[std::size_t(k)],
                            lir.est_by_scale[std::size_t(k)]),
                series_rmse(twohop.ach_by_scale[std::size_t(k)],
                            twohop.est_by_scale[std::size_t(k)]));
  }
  std::printf(
      "\nExpectation: the two columns stay close, both increasing with "
      "scale — the two-hop model is a good stand-in for measured LIR\n");
  return 0;
}
