// Section 4.4 / Figure 6 reproduction: analytic expected FP/FN error of
// the binary LIR model as a function of the LIR threshold, driven by a
// measured LIR distribution (the Fig. 3 methodology).
//
// Paper shape: at threshold 0.95, expected FP ~2% and expected FN ~13.3%;
// raising the threshold trades FPs for FNs; 0.95 is a reasonable
// compromise for a bimodal distribution.

#include <cstdio>
#include <set>
#include <vector>

#include "bench_util.h"
#include "estimation/lir.h"
#include "model/two_link_analysis.h"
#include "scenario/testbed.h"
#include "scenario/workbench.h"

using namespace meshopt;

int main() {
  benchutil::header(
      "Figure 6 / Section 4.4 - expected FP/FN error vs LIR threshold",
      "FP ~2%, FN ~13% at threshold 0.95 for the testbed's LIR "
      "distribution");

  // Measure an LIR distribution on the synthetic testbed (1 Mb/s).
  std::vector<double> lirs;
  for (std::uint64_t seed : {11ull, 23ull}) {
    Workbench wb(seed);
    Testbed tb(wb, TestbedConfig{.seed = seed});
    const auto links = tb.usable_links(Rate::kR1Mbps);
    RngStream rng(seed, "pick");
    std::set<std::pair<std::size_t, std::size_t>> seen;
    int guard = 0;
    while (lirs.size() < 30 && ++guard < 2500 && links.size() >= 4) {
      const auto i = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(links.size()) - 1));
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(links.size()) - 1));
      if (i == j || seen.contains({std::min(i, j), std::max(i, j)})) continue;
      const std::set<NodeId> ids{links[i].src, links[i].dst, links[j].src,
                                 links[j].dst};
      if (ids.size() != 4) continue;
      seen.insert({std::min(i, j), std::max(i, j)});
      const LirMeasurement m = measure_lir(wb, links[i], links[j], 3.0);
      if (m.c11 < 0.05e6 || m.c22 < 0.05e6) continue;
      lirs.push_back(std::min(m.lir(), 1.0));
    }
  }
  std::printf("\nmeasured LIR samples: %zu\n", lirs.size());

  std::printf("\n%-12s %12s %12s\n", "threshold", "E[FP error]",
              "E[FN error]");
  for (double th : {0.70, 0.80, 0.85, 0.90, 0.95, 0.99}) {
    const ExpectedErrors e = expected_errors(lirs, th);
    std::printf("%-12.2f %12.4f %12.4f %s\n", th, e.fp, e.fn,
                th == 0.95 ? "  <- paper's operating point" : "");
  }
  std::printf(
      "\nExpectation: FP falls / FN grows with the threshold; at 0.95 FP "
      "is small (paper: ~2%%) and FN moderate (paper: ~13%%)\n");
  return 0;
}
