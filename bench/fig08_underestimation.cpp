// Figure 8 reproduction: model under-estimation. The optimizer's rate
// vectors are scaled up by 1.1/1.2/1.5 and re-injected.
//
// Paper shape:
//  (a) the CDF of achieved/estimated shifts left as the scale factor
//      grows (the scaled vectors are increasingly infeasible), and
//  (b) scaling recovers only ~10% extra throughput on average (~20% worst
//      case): the model leaves little capacity unused.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "scenario/validation.h"
#include "util/stats.h"

using namespace meshopt;

int main() {
  benchutil::header(
      "Figure 8 - under-estimation via scaled input rates",
      "(a) CDFs shift left with scale; (b) scaled/unscaled gain ~10% avg");

  const std::vector<double> scales{1.1, 1.2, 1.5};
  std::vector<Cdf> ratio_cdfs(1 + scales.size());  // scale 1 + others
  Cdf gain_cdf;

  // 1 Mb/s capture-regime configurations, matching fig07 (see its note).
  std::uint64_t seed = 301;
  {
    for (int flows : {2, 2, 3, 3, 4}) {
      ValidationConfig cfg;
      cfg.seed = seed++;
      cfg.rate = Rate::kR1Mbps;
      cfg.num_flows = flows;
      cfg.scales = scales;
      const ValidationRun run = run_network_validation(cfg);
      if (!run.ok) continue;
      for (const auto& f : run.flows) {
        if (f.estimated_bps < 1e3) continue;
        ratio_cdfs[0].add(std::min(f.achieved_bps / f.estimated_bps, 1.5));
        double best_scaled = f.achieved_bps;
        for (std::size_t k = 0; k < scales.size(); ++k) {
          const double scaled = f.scaled_achieved_bps[k];
          ratio_cdfs[k + 1].add(
              std::min(scaled / (f.estimated_bps * scales[k]), 1.5));
          best_scaled = std::max(best_scaled, scaled);
        }
        if (f.achieved_bps > 1e3)
          gain_cdf.add(best_scaled / f.achieved_bps);
      }
    }
  }

  std::printf("\n(a) CDF of achieved / (estimated * scale):\n");
  benchutil::print_cdf("scale=1.0", ratio_cdfs[0], 9);
  for (std::size_t k = 0; k < scales.size(); ++k) {
    char label[32];
    std::snprintf(label, sizeof label, "scale=%.1f", scales[k]);
    benchutil::print_cdf(label, ratio_cdfs[k + 1], 9);
  }
  std::printf("\nMedian achieved/target by scale (should decrease):\n");
  benchutil::kv("scale 1.0 median", ratio_cdfs[0].quantile(0.5));
  for (std::size_t k = 0; k < scales.size(); ++k)
    benchutil::kv("scaled median", ratio_cdfs[k + 1].quantile(0.5));

  std::printf("\n(b) CDF of best-scaled over unscaled achieved:\n");
  benchutil::print_cdf("gain", gain_cdf, 9);
  benchutil::kv("median unused-capacity gain",
                gain_cdf.size() ? gain_cdf.quantile(0.5) : 0.0);
  benchutil::kv("90th-percentile gain",
                gain_cdf.size() ? gain_cdf.quantile(0.9) : 0.0);
  std::printf(
      "\nExpectation: gain mostly close to 1 (~10%% average headroom)\n");
  return 0;
}
