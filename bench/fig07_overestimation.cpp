// Figure 7 reproduction: model over-estimation on multi-hop, multi-flow
// configurations. The proportional-fair target rates computed from the
// model are injected; achieved throughput is compared with the estimate.
//
// Paper shape: most points on the y = x line; only a small tail below the
// y = 0.8x line (their max error 38%, 10/hundreds points below 0.8x).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "scenario/validation.h"

using namespace meshopt;

int main() {
  benchutil::header(
      "Figure 7 - estimated vs achieved throughput (over-estimation)",
      "points concentrate on y=x; few fall below y=0.8x");

  // 1 Mb/s configurations: at the low rate the decode SINR threshold is
  // 4 dB, so hidden-terminal overlap mostly resolves by capture — the
  // regime where the paper's testbed validation operates. (11 Mb/s hidden
  // pairs starve outright, a CSMA pathology outside any convex model;
  // fig12 quantifies the resulting extra error.)
  std::vector<ValidationConfig> configs;
  std::uint64_t seed = 201;
  for (int flows : {2, 2, 3, 3, 4}) {
    ValidationConfig c;
    c.seed = seed++;
    c.rate = Rate::kR1Mbps;
    c.num_flows = flows;
    c.scales = {};  // over-estimation only needs scale 1
    configs.push_back(c);
  }

  std::printf("\n%-22s %12s %12s %8s\n", "flow path", "estimated",
              "achieved", "ratio");
  int total = 0, on_line = 0, below_08 = 0;
  double worst = 1.0;
  for (const auto& cfg : configs) {
    const ValidationRun run = run_network_validation(cfg);
    if (!run.ok) continue;
    for (const auto& f : run.flows) {
      if (f.estimated_bps < 1e3) continue;
      const double ratio = f.achieved_bps / f.estimated_bps;
      std::string path;
      for (std::size_t i = 0; i < f.path.size(); ++i) {
        path += std::to_string(f.path[i]);
        if (i + 1 < f.path.size()) path += "-";
      }
      std::printf("%-22s %10.0f k %10.0f k %8.3f\n", path.c_str(),
                  f.estimated_bps / 1e3, f.achieved_bps / 1e3, ratio);
      ++total;
      if (ratio >= 0.95) ++on_line;
      if (ratio < 0.8) ++below_08;
      worst = std::min(worst, ratio);
    }
  }

  std::printf("\n");
  benchutil::kv("points total", total);
  benchutil::kv("fraction on y=x (ratio >= 0.95)",
                total ? static_cast<double>(on_line) / total : 0.0);
  benchutil::kv("fraction below y=0.8x",
                total ? static_cast<double>(below_08) / total : 0.0);
  benchutil::kv("worst achieved/estimated ratio", worst);
  std::printf(
      "\nExpectation: most points at ratio ~1, small fraction below 0.8\n");
  return 0;
}
