// Section 6.1 timing claims, as google-benchmark microbenchmarks:
//   * extreme-point computation (maximal-clique enumeration on the
//     complement graph): the paper's worst case was ~200 extreme points in
//     < 10 ms,
//   * the convex optimization: Matlab took < 3 s; our simplex/Frank-Wolfe
//     implementation should be far faster at testbed scale,
//   * the channel-loss estimator on a full probing window.

#include <benchmark/benchmark.h>

#include <vector>

#include "estimation/loss_estimator.h"
#include "model/conflict_graph.h"
#include "model/feasibility.h"
#include "opt/network_optimizer.h"
#include "phy/channel.h"
#include "sim/simulator.h"
#include "sweep/sweep_runner.h"
#include "util/rng.h"

// This file doubles as the seed-vs-now measurement harness: it is copied
// into a scratch worktree of the previous commit to produce the "before"
// numbers in BENCH_core.json. Benchmarks that exercise APIs new in this
// tree are therefore gated on the presence of util/dense_matrix.h and
// sweep/controller_fleet.h.
#if __has_include("util/dense_matrix.h")
#define MESHOPT_BENCH_HAS_DENSE 1
#endif
#if __has_include("sweep/controller_fleet.h")
#define MESHOPT_BENCH_HAS_FLEET 1
#include "sweep/controller_fleet.h"
#endif
#if __has_include("util/trace_codec.h")
#define MESHOPT_BENCH_HAS_TRACE 1
#include "core/snapshot_source.h"
#include "probe/live_source.h"
#include "util/trace_codec.h"
#endif
#if __has_include("core/planner.h")
#define MESHOPT_BENCH_HAS_PLANNER 1
#include "core/planner.h"
#endif
#if __has_include("opt/column_gen.h")
#define MESHOPT_BENCH_HAS_COLGEN 1
#include "opt/column_gen.h"
#endif
#if __has_include("scenario/dynamics.h")
#define MESHOPT_BENCH_HAS_DYNAMICS 1
#include "scenario/dynamics.h"
#include "scenario/topologies.h"
#endif
#if __has_include("core/guard.h")
#define MESHOPT_BENCH_HAS_GUARD 1
#include "core/guard.h"
#endif
#if __has_include("serve/plan_service.h")
#define MESHOPT_BENCH_HAS_SERVE 1
#include "serve/plan_service.h"
#endif
#if __has_include("obs/obs.h")
#define MESHOPT_BENCH_HAS_OBS 1
#include "obs/obs.h"
#endif

#if __has_include("opt/decompose.h")
#define MESHOPT_BENCH_HAS_DECOMPOSE 1
#include "opt/decompose.h"
#endif

#include "core/controller.h"
#include "scenario/workbench.h"

namespace meshopt {
namespace {

ConflictGraph random_conflicts(int links, double density, std::uint64_t seed) {
  ConflictGraph g(links);
  RngStream rng(seed, "bench-graph");
  for (int i = 0; i < links; ++i)
    for (int j = i + 1; j < links; ++j)
      if (rng.bernoulli(density)) g.add_conflict(i, j);
  return g;
}

void BM_MaximalIndependentSets(benchmark::State& state) {
  const int links = static_cast<int>(state.range(0));
  const ConflictGraph g = random_conflicts(links, 0.5, 42);
  std::size_t sets = 0;
  for (auto _ : state) {
    const auto mis = g.maximal_independent_sets();
    sets = mis.size();
    benchmark::DoNotOptimize(mis);
  }
  state.counters["sets"] = static_cast<double>(sets);
}
BENCHMARK(BM_MaximalIndependentSets)->Arg(12)->Arg(24)->Arg(40)->Arg(80);

// ------------------------------------------------------------------ core
// Event-core throughput: a pool of pending timers with schedule/fire churn,
// the shape of a busy MAC (backoff timers, frame-end events, probe timers).

void BM_EventThroughput(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  std::uint64_t fired = 0;
  RngStream rng(48, "bench-ev");
  std::vector<TimeNs> when(static_cast<std::size_t>(events));
  for (auto& t : when) t = micros(rng.uniform(0.0, 1e6));
  Simulator sim;  // steady state: the event store persists across rounds
  for (auto _ : state) {
    const TimeNs base = sim.now();
    for (TimeNs t : when) {
      sim.schedule_at(base + t, [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventThroughput)->Arg(1000)->Arg(10000);

// Cancel-heavy churn: every scheduled event is cancelled and replaced once
// before firing — the DCF backoff-freeze / ACK-timeout pattern.
void BM_EventCancelChurn(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  std::uint64_t fired = 0;
  RngStream rng(49, "bench-cancel");
  std::vector<TimeNs> when(static_cast<std::size_t>(events));
  for (auto& t : when) t = micros(rng.uniform(0.0, 1e6));
  std::vector<EventId> ids(static_cast<std::size_t>(events));
  Simulator sim;
  for (auto _ : state) {
    const TimeNs base = sim.now();
    for (std::size_t i = 0; i < when.size(); ++i) {
      ids[i] = sim.schedule_at(base + when[i], [&fired] { ++fired; });
    }
    for (std::size_t i = 0; i < when.size(); ++i) {
      sim.cancel(ids[i]);
      ids[i] = sim.schedule_at(base + when[i] + micros(5), [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * events * 2);
}
BENCHMARK(BM_EventCancelChurn)->Arg(1000)->Arg(10000);

// Channel dispatch: frames on a sparse mesh (ring, each node hears its 4
// neighbors a side). Measures start_tx/end_tx fan-out cost as node count
// grows while the true neighborhood stays constant.
void BM_ChannelDispatch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Simulator sim;
  PhyParams phy;
  phy.fading_sigma_db = 0.0;  // isolate dispatch cost from RNG draws
  Channel ch(sim, phy, RngStream(50, "bench-ch"));
  for (int i = 0; i < n; ++i) ch.add_node(nullptr);
  for (int i = 0; i < n; ++i) {
    for (int d = 1; d <= 4; ++d) {
      ch.set_rss_dbm(i, (i + d) % n, -60.0 - 3.0 * d);
      ch.set_rss_dbm(i, (i + n - d) % n, -60.0 - 3.0 * d);
    }
  }
  Frame f;
  f.dst = kBroadcast;
  f.rate = Rate::kR1Mbps;
  f.air_bytes = 1500;
  std::uint64_t frames = 0;
  for (auto _ : state) {
    // 8 spaced-out transmitters per round, 125 rounds.
    for (int round = 0; round < 125; ++round) {
      for (int k = 0; k < 8; ++k) {
        const NodeId tx = static_cast<NodeId>((k * (n / 8) + round) % n);
        ch.start_tx(tx, f, micros(100));
        sim.run_until(sim.now() + micros(150));
        ++frames;
      }
    }
    benchmark::DoNotOptimize(frames);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(frames));
}
BENCHMARK(BM_ChannelDispatch)->Arg(16)->Arg(64)->Arg(256);

// Dense-overlap dispatch: a clique where every node hears every frame and
// 8 transmissions overlap, so per-receiver heard lists stay long — the
// regime where interference-energy accumulation dominates dispatch. (The
// sparse BM_ChannelDispatch above keeps overlap near zero.)
void BM_ChannelDispatchDense(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Simulator sim;
  PhyParams phy;
  phy.fading_sigma_db = 0.0;
  Channel ch(sim, phy, RngStream(52, "bench-dense"));
  for (int i = 0; i < n; ++i) ch.add_node(nullptr);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      if (i != j) ch.set_rss_dbm(i, j, -60.0 - 0.1 * ((i + j) % 8));
  Frame f;
  f.dst = kBroadcast;
  f.rate = Rate::kR1Mbps;
  f.air_bytes = 1500;
  std::uint64_t frames = 0;
  for (auto _ : state) {
    for (int round = 0; round < 50; ++round) {
      // 8 staggered 100 us frames: every receiver holds ~8 concurrent
      // entries in its heard list at the deepest overlap.
      for (int k = 0; k < 8; ++k) {
        const NodeId tx = static_cast<NodeId>((round * 8 + k) % n);
        ch.start_tx(tx, f, micros(100));
        sim.run_until(sim.now() + micros(10));
        ++frames;
      }
      sim.run_until(sim.now() + micros(200));
    }
    benchmark::DoNotOptimize(frames);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(frames));
}
BENCHMARK(BM_ChannelDispatchDense)->Arg(16)->Arg(64);

void BM_ExtremePoints(benchmark::State& state) {
  const int links = static_cast<int>(state.range(0));
  const ConflictGraph g = random_conflicts(links, 0.5, 43);
  std::vector<double> caps(static_cast<std::size_t>(links), 1e6);
  for (auto _ : state) {
    const auto pts = build_extreme_points(caps, g);
    benchmark::DoNotOptimize(pts);
  }
}
BENCHMARK(BM_ExtremePoints)->Arg(12)->Arg(24)->Arg(40);

#ifdef MESHOPT_BENCH_HAS_DENSE
// Bitset bridge: MIS rows stream straight into the K x L DenseMatrix,
// no per-set vector<int> / per-point vector<double> materialization.
void BM_ExtremePointMatrix(benchmark::State& state) {
  const int links = static_cast<int>(state.range(0));
  const ConflictGraph g = random_conflicts(links, 0.5, 43);
  std::vector<double> caps(static_cast<std::size_t>(links), 1e6);
  for (auto _ : state) {
    const auto pts = build_extreme_point_matrix(caps, g);
    benchmark::DoNotOptimize(pts);
  }
}
BENCHMARK(BM_ExtremePointMatrix)->Arg(12)->Arg(24)->Arg(40)->Arg(80);
#endif

// ------------------------------------------------------------------- LP
// The paper's utility LP over K extreme points (Section 6.1), built with
// the portable LpProblem API so the identical code measures the seed
// tableau and the flat rewrite. Shape matches NetworkOptimizer's base
// problem: L <= rows coupling flows to extreme points, one convex-weight
// equality, capacities normalized to ~1.
LpProblem rate_region_lp(int links, int flows, int points,
                         std::uint64_t seed) {
  RngStream rng(seed, "bench-lpK");
  LpProblem lp;
  lp.num_vars = flows + points;
  lp.objective.assign(static_cast<std::size_t>(lp.num_vars), 0.0);
  for (int f = 0; f < flows; ++f)
    lp.objective[static_cast<std::size_t>(f)] = 1.0;

  // Routing: each flow crosses 1-4 random links.
  std::vector<std::vector<double>> routing(
      static_cast<std::size_t>(links),
      std::vector<double>(static_cast<std::size_t>(flows), 0.0));
  for (int f = 0; f < flows; ++f) {
    const int hops = rng.uniform_int(1, 4);
    for (int h = 0; h < hops; ++h)
      routing[static_cast<std::size_t>(rng.uniform_int(0, links - 1))]
             [static_cast<std::size_t>(f)] = 1.0;
  }
  // Extreme points: each point activates each link with probability 0.5
  // at a capacity in [0.3, 5] Mb/s; coefficients pre-normalized by 5e6.
  std::vector<std::vector<double>> pts(
      static_cast<std::size_t>(points),
      std::vector<double>(static_cast<std::size_t>(links), 0.0));
  for (auto& p : pts)
    for (auto& c : p)
      if (rng.bernoulli(0.5)) c = rng.uniform(0.3e6, 5e6) / 5e6;

  for (int l = 0; l < links; ++l) {
    std::vector<double> row(static_cast<std::size_t>(lp.num_vars), 0.0);
    for (int f = 0; f < flows; ++f)
      row[static_cast<std::size_t>(f)] =
          routing[static_cast<std::size_t>(l)][static_cast<std::size_t>(f)];
    for (int k = 0; k < points; ++k)
      row[static_cast<std::size_t>(flows + k)] =
          -pts[static_cast<std::size_t>(k)][static_cast<std::size_t>(l)];
    lp.add_constraint(row, Relation::kLe, 0.0);
  }
  std::vector<double> simplex_row(static_cast<std::size_t>(lp.num_vars), 0.0);
  for (int k = 0; k < points; ++k)
    simplex_row[static_cast<std::size_t>(flows + k)] = 1.0;
  lp.add_constraint(simplex_row, Relation::kEq, 1.0);
  for (int f = 0; f < flows; ++f) {
    // Cap every flow so degenerate routings stay bounded.
    std::vector<double> row(static_cast<std::size_t>(lp.num_vars), 0.0);
    row[static_cast<std::size_t>(f)] = 1.0;
    lp.add_constraint(row, Relation::kLe, 10.0);
  }
  return lp;
}

void BM_LpSolve(benchmark::State& state) {
  const int points = static_cast<int>(state.range(0));
  const LpProblem lp = rate_region_lp(24, 6, points, 51);
  double obj = 0.0;
  for (auto _ : state) {
    const auto sol = solve_lp(lp);
    obj = sol.objective;
    benchmark::DoNotOptimize(sol);
  }
  state.counters["objective"] = obj;
}
BENCHMARK(BM_LpSolve)->Arg(40)->Arg(80)->Arg(160);

OptimizerInput testbed_scale_problem(int links, int flows, std::uint64_t seed) {
  OptimizerInput in;
  RngStream rng(seed, "bench-lp");
  const ConflictGraph g = random_conflicts(links, 0.5, seed);
  std::vector<double> caps;
  for (int l = 0; l < links; ++l) caps.push_back(rng.uniform(0.3e6, 5e6));
#ifdef MESHOPT_BENCH_HAS_DENSE
  in.extreme_points = build_extreme_point_matrix(caps, g);
  in.routing = DenseMatrix(links, flows);
  for (int f = 0; f < flows; ++f) {
    // Each flow crosses 1-4 random links.
    const int hops = rng.uniform_int(1, 4);
    for (int h = 0; h < hops; ++h)
      in.routing(rng.uniform_int(0, links - 1), f) = 1.0;
  }
#else
  in.extreme_points = build_extreme_points(caps, g);
  in.routing.assign(static_cast<std::size_t>(links),
                    std::vector<double>(static_cast<std::size_t>(flows), 0.0));
  for (int f = 0; f < flows; ++f) {
    const int hops = rng.uniform_int(1, 4);
    for (int h = 0; h < hops; ++h)
      in.routing[static_cast<std::size_t>(
          rng.uniform_int(0, links - 1))][static_cast<std::size_t>(f)] = 1.0;
  }
#endif
  return in;
}

void BM_MaxThroughputLp(benchmark::State& state) {
  const auto in = testbed_scale_problem(24, 6, 44);
  for (auto _ : state) {
    const auto r = optimize_rates(in, {.objective = Objective::kMaxThroughput});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MaxThroughputLp);

void BM_ProportionalFairFrankWolfe(benchmark::State& state) {
  const auto in = testbed_scale_problem(24, 6, 45);
  for (auto _ : state) {
    const auto r =
        optimize_rates(in, {.objective = Objective::kProportionalFair});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ProportionalFairFrankWolfe);

void BM_MaxMinWaterfilling(benchmark::State& state) {
  const auto in = testbed_scale_problem(24, 6, 46);
  for (auto _ : state) {
    const auto r = optimize_rates(in, {.objective = Objective::kMaxMin});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MaxMinWaterfilling);

// ---------------------------------------------------------------- sweep
// Repeated small sweeps on one runner: the shape of a many-small-cell
// parameter grid. A pool-per-sweep runner pays thread spawn/join every
// iteration; the persistent work-stealing pool parks between runs.
void BM_SweepRepeatedTinySweeps(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  SweepRunner runner(4);
  for (auto _ : state) {
    auto out = runner.run(jobs, 99, [](const SweepJob& job) {
      RngStream rng(job.seed, "cell");
      double acc = 0.0;
      for (int i = 0; i < 64; ++i) acc += rng.uniform();
      return acc;
    });
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * jobs);
}
BENCHMARK(BM_SweepRepeatedTinySweeps)->Arg(8)->Arg(64);

// ------------------------------------------------------------- control
// The 4-node gateway scenario shared by BM_ControllerRound and
// BM_TraceReplayRound — one definition, so the replay-vs-live comparison
// is structurally over the same topology, flows, and controller tuning.
// Kept local (mirroring scenario/topologies.h build_gateway_chain) so the
// file still compiles when copied into a previous-commit worktree for
// before-side measurements.
void build_bench_gateway(Workbench& wb) {
  wb.add_nodes(4);
  Channel& ch = wb.channel();
  for (NodeId a = 0; a < 4; ++a)
    for (NodeId b = 0; b < 4; ++b)
      if (a != b) ch.set_rss_dbm(a, b, -120.0);
  ch.set_rss_symmetric_dbm(0, 1, -58.0);
  ch.set_rss_symmetric_dbm(1, 2, -58.0);
  ch.set_rss_symmetric_dbm(3, 2, -56.0);
  ch.set_rss_symmetric_dbm(1, 3, -70.0);
}

ControllerConfig bench_gateway_config() {
  ControllerConfig cfg;
  cfg.probe_period_s = 0.25;
  cfg.probe_window = 60;
  cfg.optimizer.objective = Objective::kProportionalFair;
  return cfg;
}

void add_bench_gateway_flows(Workbench& wb, MeshController& ctl) {
  ManagedFlow far;
  far.flow_id = wb.net().open_flow(0, 2, Protocol::kUdp, 1470);
  far.path = {0, 1, 2};
  ctl.manage_flow(far);
  ManagedFlow near;
  near.flow_id = wb.net().open_flow(3, 2, Protocol::kUdp, 1470);
  near.path = {3, 2};
  ctl.manage_flow(near);
}

// One full controller round on the 4-node gateway scenario: probing
// simulation for a whole estimation window, loss/capacity estimation,
// conflict-graph + extreme-point build, proportional-fair optimization,
// shaper programming. The paper's online cadence, end to end.
void BM_ControllerRound(benchmark::State& state) {
  Workbench wb(71);
  build_bench_gateway(wb);
  MeshController ctl(wb.net(), bench_gateway_config(), 71);
  add_bench_gateway_flows(wb, ctl);

  for (auto _ : state) {
    const RoundResult round = ctl.run_round(wb);
    benchmark::DoNotOptimize(round);
  }
}
BENCHMARK(BM_ControllerRound);

#ifdef MESHOPT_BENCH_HAS_OBS
// The same round with a TraceRecorder attached at its default sampling:
// every stage span, cache event, and health event lands in the ring.
// Against BM_ControllerRound (same build, observer detached) this is the
// tracing plane's enabled overhead — the acceptance bar is <= 1.03x.
void BM_ControllerRoundTraced(benchmark::State& state) {
  Workbench wb(71);
  build_bench_gateway(wb);
  MeshController ctl(wb.net(), bench_gateway_config(), 71);
  add_bench_gateway_flows(wb, ctl);
  TraceRecorder obs;
  ctl.set_observer(&obs);

  for (auto _ : state) {
    const RoundResult round = ctl.run_round(wb);
    benchmark::DoNotOptimize(round);
  }
  state.counters["records"] = static_cast<double>(obs.records_emitted());
}
BENCHMARK(BM_ControllerRoundTraced);
#endif

#if defined(MESHOPT_BENCH_HAS_GUARD) && defined(MESHOPT_BENCH_HAS_TRACE)
// The same full round through the guarded control loop on clean inputs:
// snapshot validation, plan guardrails, and the health state machine ride
// along on every window. Against BM_ControllerRound this is the guard
// layer's overhead on the healthy path — the acceptance bar is <= 1.05x,
// i.e. validation must be noise next to the probing simulation and the
// optimizer.
void BM_GuardedRound(benchmark::State& state) {
  Workbench wb(71);
  build_bench_gateway(wb);
  MeshController ctl(wb.net(), bench_gateway_config(), 71);
  add_bench_gateway_flows(wb, ctl);
  ctl.set_guard(GuardConfig{});
  LiveSource live(wb, ctl);

  for (auto _ : state) {
    const RoundResult round = ctl.guarded_round(live);
    benchmark::DoNotOptimize(round);
  }
}
BENCHMARK(BM_GuardedRound);
#endif

#ifdef MESHOPT_BENCH_HAS_TRACE
// Trace replay: the same gateway scenario as BM_ControllerRound, but the
// probing windows were recorded once up front (outside the timed loop)
// and each planned round is pure snapshot -> model -> plan work through
// ControllerFleet::replay — no Simulator, no MAC, no probing. The
// per-round time against BM_ControllerRound is the record-once/replay-
// many payoff: one planned round costs optimizer work only.
void BM_TraceReplayRound(benchmark::State& state) {
  // Record an 8-round trace of the BM_ControllerRound scenario (the
  // shared gateway helpers above keep the two benches structurally on
  // the same topology, flows, and tuning).
  Workbench wb(71);
  build_bench_gateway(wb);
  const ControllerConfig cfg = bench_gateway_config();
  MeshController ctl(wb.net(), cfg, 71);
  add_bench_gateway_flows(wb, ctl);

  std::vector<MeasurementSnapshot> trace;
  {
    LiveSource live(wb, ctl, /*max_windows=*/8);
    MeasurementSnapshot snap;
    while (live.next(snap)) trace.push_back(snap);
  }

  ControllerFleet fleet(1);
  ReplayCell cell;
  cell.flows = ctl.flow_specs();
  cell.plan = cfg.plan();

  std::int64_t rounds = 0;
  for (auto _ : state) {
    const auto results = fleet.replay({cell}, trace);
    rounds += static_cast<std::int64_t>(results[0].plans.size());
    benchmark::DoNotOptimize(results);
  }
  // items/s is planned rounds per second; compare against one iteration
  // of BM_ControllerRound (one live round) for the replay speedup.
  state.SetItemsProcessed(rounds);
}
BENCHMARK(BM_TraceReplayRound);
#endif

#ifdef MESHOPT_BENCH_HAS_FLEET
// Fleet driver: 8 independent controller loops (gateway variants ×
// objectives) per iteration, on 1 worker vs 4. Results are bit-identical
// across thread counts; only wall clock changes.
void BM_FleetSweep(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  ControllerFleet fleet(threads);
  std::vector<FleetCell> cells;
  const Objective objectives[] = {Objective::kProportionalFair,
                                  Objective::kMaxThroughput};
  for (int v = 0; v < 4; ++v) {
    for (const Objective obj : objectives) {
      FleetCell cell;
      const double rss = -56.0 - v;
      cell.build_topology = [rss](Workbench& wb) {
        wb.add_nodes(4);
        Channel& ch = wb.channel();
        for (NodeId a = 0; a < 4; ++a)
          for (NodeId b = 0; b < 4; ++b)
            if (a != b) ch.set_rss_dbm(a, b, -120.0);
        ch.set_rss_symmetric_dbm(0, 1, -58.0);
        ch.set_rss_symmetric_dbm(1, 2, -58.0);
        ch.set_rss_symmetric_dbm(3, 2, rss);
        ch.set_rss_symmetric_dbm(1, 3, -70.0);
      };
      cell.flows = {FleetFlow{{0, 1, 2}}, FleetFlow{{3, 2}}};
      cell.controller.probe_period_s = 0.25;
      cell.controller.probe_window = 40;
      cell.controller.optimizer.objective = obj;
      cells.push_back(std::move(cell));
    }
  }
  for (auto _ : state) {
    const auto results = fleet.run(cells, 2025);
    benchmark::DoNotOptimize(results);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(cells.size()));
}
BENCHMARK(BM_FleetSweep)->Arg(1)->Arg(4);
#endif

#ifdef MESHOPT_BENCH_HAS_PLANNER
// Planner model cache on a constant-topology replay: a 16-round trace at
// MIS/80-class scale (80 links, LIR density 0.5, K ~ 5.5k extreme points)
// whose capacities drift every round while the topology holds. Arg(0)
// runs the PR-4 replay inner loop's model work — a full
// InterferenceModel::build (Bron–Kerbosch + matrix fill) per round.
// Arg(1) runs the same rounds through a warm Planner: fingerprint lookup
// + in-place member-cell capacity refresh, no enumeration, no refill.
// items/s = model rounds per second; the Arg(1)/Arg(0) ratio is the
// cached-replay speedup (plans are bit-identical either way,
// tests/test_planner.cpp). The plan stage is deliberately excluded: at
// K ~ 5.5k the LP dominates a full planned round and would mask what the
// cache changes (see BENCH_core.json notes).
std::vector<MeasurementSnapshot> mis80_trace(int rounds) {
  RngStream rng(61, "bench-planner");
  MeasurementSnapshot base;
  const int links = 80;
  for (int i = 0; i < links; ++i) {
    SnapshotLink l;
    l.src = i;
    l.dst = i + 1;
    l.rate = Rate::kR11Mbps;
    l.estimate.capacity_bps = rng.uniform(0.5e6, 5e6);
    base.links.push_back(l);
  }
  base.lir.resize(links, links, 1.0);
  for (int i = 0; i < links; ++i)
    for (int j = i + 1; j < links; ++j)
      if (rng.bernoulli(0.5)) base.lir(i, j) = base.lir(j, i) = 0.4;

  std::vector<MeasurementSnapshot> trace;
  trace.reserve(static_cast<std::size_t>(rounds));
  for (int r = 0; r < rounds; ++r) {
    MeasurementSnapshot snap = base;
    for (SnapshotLink& l : snap.links)
      l.estimate.capacity_bps *= rng.uniform(0.8, 1.2);
    trace.push_back(std::move(snap));
  }
  return trace;
}

void BM_ReplayCachedModel(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  const std::vector<MeasurementSnapshot> trace = mis80_trace(16);
  Planner planner(cached ? 4 : 0);
  std::int64_t rounds = 0;
  int extreme_points = 0;
  for (auto _ : state) {
    for (const MeasurementSnapshot& snap : trace) {
      const InterferenceModel& model =
          planner.model(snap, InterferenceModelKind::kLirTable);
      extreme_points = model.extreme_points().rows();
      benchmark::DoNotOptimize(model);
      ++rounds;
    }
  }
  state.SetItemsProcessed(rounds);
  state.counters["K"] = extreme_points;
}
BENCHMARK(BM_ReplayCachedModel)->Arg(0)->Arg(1);

#ifdef MESHOPT_BENCH_HAS_COLGEN
// Plan tiers on the same MIS/80-class replay, now timing whole planned
// rounds (model + plan, proportional fair). Arg(0) is the exact tier:
// the LP over all K ~ 5.5k extreme-point columns dominates. Arg(1) is
// the fast tier: column generation prices in a few dozen columns against
// the conflict graph and warm-starts each round from the previous one's
// working set and basis. items/s = planned rounds per second; the
// Arg(1)/Arg(0) ratio is the tier speedup pinned in BENCH_core.json
// (>= 5x), bought at a <= 1e-6 relative objective gap
// (tests/test_plan_tiers.cpp).
void BM_ReplayColumnGen(benchmark::State& state) {
  const bool fast = state.range(0) != 0;
  const std::vector<MeasurementSnapshot> trace = mis80_trace(16);
  std::vector<FlowSpec> flows(3);
  flows[0].flow_id = 0;
  flows[0].path = {0, 1, 2, 3, 4, 5};
  flows[1].flow_id = 1;
  flows[1].path = {38, 39, 40, 41, 42, 43};
  flows[2].flow_id = 2;
  flows[2].path = {75, 76, 77, 78, 79, 80};
  PlanConfig cfg;
  cfg.optimizer.objective = Objective::kProportionalFair;
  cfg.tier = fast ? PlanTier::kFast : PlanTier::kExact;
  Planner planner(4);
  std::int64_t rounds = 0;
  int extreme_points = 0;
  for (auto _ : state) {
    for (const MeasurementSnapshot& snap : trace) {
      const RatePlan plan =
          planner.plan(snap, InterferenceModelKind::kLirTable, flows, cfg);
      extreme_points = plan.extreme_points;
      benchmark::DoNotOptimize(plan);
      ++rounds;
    }
  }
  state.SetItemsProcessed(rounds);
  state.counters["K"] = extreme_points;
}
BENCHMARK(BM_ReplayColumnGen)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);
#endif

#if defined(MESHOPT_BENCH_HAS_DECOMPOSE) && \
    defined(MESHOPT_BENCH_HAS_FLEET) && defined(MESHOPT_BENCH_HAS_DYNAMICS)
// City-scale replay through the fleet: a 203-link city (4 gateway-cluster
// cliques of 50 + 3 RF-silent bridges, 7 conflict components), planned
// max-throughput on the fast tier over a 3-round trace — an initial model
// key, a capacity-drift round (warm), and one cluster's LIR churn (re-key).
// Arg(0) replays monolithically: column generation prices against the full
// 203-link conflict graph and every churn re-keys the whole model (~13 s a
// cold round on the reference host; the proportional-fair tier does not
// even converge monolithically at this scale). Arg(1) replays through
// DecomposedPlanner: each solve works on a 50-link block and churn re-keys
// only the churned cluster's slot. items/s = planned rounds per second;
// the Arg(1)/Arg(0) ratio is the decomposition speedup pinned in
// BENCH_core.json (>= 5x), bought at a <= 1e-9 relative objective gap on
// separable instances (tests/test_decompose.cpp, which also pins
// bit-identical plans across pool thread counts). CI smoke runs only the
// Arg(1) cell — the monolithic baseline is minutes, the decomposed cell
// milliseconds; that asymmetry is the result.
void BM_ReplayDecomposed(benchmark::State& state) {
  const bool decompose = state.range(0) != 0;
  CityParams p;
  p.links_per_cluster = 50;  // 4 x 50 + 3 bridges = 203 links
  std::vector<MeasurementSnapshot> trace;
  for (int r = 0; r < 3; ++r) {
    MeasurementSnapshot snap = build_city_snapshot(p);
    for (SnapshotLink& l : snap.links)
      l.estimate.capacity_bps *= 1.0 + 0.01 * r;
    trace.push_back(std::move(snap));
  }
  // Localized churn on the last round: cluster 0's LIR values move
  // (conflicts persist, so the component partition is stable).
  for (int i : city_cluster_links(p, 0))
    for (int j : city_cluster_links(p, 0))
      if (i != j) trace.back().lir(i, j) = p.conflict_lir - 0.02;

  ReplayCell cell;
  cell.flows = city_flows(p);
  cell.plan.optimizer.objective = Objective::kMaxThroughput;
  cell.plan.tier = PlanTier::kFast;
  cell.interference = InterferenceModelKind::kLirTable;

  ReplayOptions opts;
  opts.decompose = decompose;
  opts.mis_cap = 4000;  // shared cap: both cells enumerate bounded rows
  opts.segment_rounds = 3;  // one warm segment per replay

  ControllerFleet fleet(1);
  std::int64_t planned = 0;
  for (auto _ : state) {
    const std::vector<ReplayResult> res =
        fleet.replay({cell}, trace, opts);
    benchmark::DoNotOptimize(res);
    planned += 3;
  }
  state.SetItemsProcessed(planned);
  state.counters["links"] = 203;
  state.counters["components"] = 7;
}
BENCHMARK(BM_ReplayDecomposed)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);
#endif
#endif

#ifdef MESHOPT_BENCH_HAS_DYNAMICS
// A full controller round while a dynamics script is live: the gateway
// scenario with a hidden interferer duty-cycling at the receiver and
// random-walk loss drift on the chain's first hop. Compares against
// BM_ControllerRound (the static scenario) to price what scripted churn
// adds to the probing-window simulation.
void BM_DynamicsRound(benchmark::State& state) {
  Workbench wb(73);
  build_bench_gateway(wb);
  const NodeId jam = wb.channel().add_node(nullptr);
  wb.channel().set_rss_dbm(jam, 2, -62.0);
  MeshController ctl(wb.net(), bench_gateway_config(), 73);
  add_bench_gateway_flows(wb, ctl);

  const double window_s = ctl.probing_window_seconds();
  DynamicsScript script;
  // Interferer flapping + drift scripted far past any bench horizon.
  script.merge(markov_interferer(jam, 2.0 * window_s, 2.0 * window_s,
                                 4000.0 * window_s, RngStream(73, "jam")));
  script.merge(random_walk_loss_drift(0, 1, Rate::kR1Mbps, 0.02, 0.01,
                                      window_s, 4000.0 * window_s,
                                      RngStream(73, "drift")));
  DynamicsEngine dynamics(wb, std::move(script));
  dynamics.arm();

  for (auto _ : state) {
    const RoundResult round = ctl.run_round(wb);
    benchmark::DoNotOptimize(round);
  }
}
BENCHMARK(BM_DynamicsRound);
#endif

#ifdef MESHOPT_BENCH_HAS_SERVE
// Multi-tenant serving throughput. Every tenant is a registered session
// of one PlanService (own Planner cache, own round sequence); each
// iteration submits one fresh snapshot per tenant and serves the whole
// batch across the pool. The snapshot is a 9-link LIR mesh — small
// enough that service overhead (admission, queues, batching, metrics) is
// visible over the plan itself, large enough that planning is real work.
// items/s = plans served per second at Arg(0) tenants; counters report
// the wall p99 enqueue->plan latency in microseconds. Compare per-plan
// time against BM_ServeBarePlanner below: the difference is the whole
// serving layer's per-plan tax (BENCH_core.json pins <= 1.3x).
MeasurementSnapshot serve_bench_snapshot(int round) {
  constexpr int kLinks = 9;
  RngStream top(67, "bench-serve-top");
  RngStream cap(RngStream::mix(67, static_cast<std::uint64_t>(round)),
                "bench-serve-cap");
  MeasurementSnapshot snap;
  for (int i = 0; i < kLinks; ++i) {
    SnapshotLink l;
    l.src = i;
    l.dst = i + 1;
    l.rate = Rate::kR11Mbps;
    l.estimate.capacity_bps = cap.uniform(1.5e6, 5e6);
    l.estimate.p_link = 0.02;
    snap.links.push_back(l);
  }
  snap.lir.resize(kLinks, kLinks, 1.0);
  for (int i = 0; i < kLinks; ++i)
    for (int j = i + 1; j < kLinks; ++j)
      if (top.bernoulli(0.4)) snap.lir(i, j) = snap.lir(j, i) = 0.4;
  snap.lir_threshold = 0.95;
  return snap;
}

std::vector<FlowSpec> serve_bench_flows() {
  std::vector<FlowSpec> flows(3);
  flows[0].flow_id = 0;
  flows[0].path = {0, 1, 2, 3};
  flows[1].flow_id = 1;
  flows[1].path = {3, 4, 5};
  flows[2].flow_id = 2;
  flows[2].path = {6, 7, 8};
  return flows;
}

void BM_ServeBatch(benchmark::State& state) {
  const auto tenants = static_cast<std::uint32_t>(state.range(0));
  const std::vector<MeasurementSnapshot> trace = {serve_bench_snapshot(0),
                                                  serve_bench_snapshot(1)};
  ServeConfig cfg;
  cfg.global_queue_limit = tenants;
  PlanService svc(cfg);
  TenantConfig tc;
  tc.flows = serve_bench_flows();
  for (std::uint32_t t = 0; t < tenants; ++t) svc.add_tenant(tc);

  std::int64_t plans = 0;
  long long tick = 0;
  for (auto _ : state) {
    const MeasurementSnapshot& snap =
        trace[static_cast<std::size_t>(tick) % trace.size()];
    for (std::uint32_t t = 0; t < tenants; ++t) svc.submit(t, snap, tick);
    const ServeBatchReport batch = svc.run_batch(tick);
    plans += static_cast<std::int64_t>(batch.served.size());
    benchmark::DoNotOptimize(batch);
    ++tick;
  }
  state.SetItemsProcessed(plans);
  state.counters["p99_us"] =
      1e6 * svc.metrics().wall_latency_s().quantile(0.99);
}
BENCHMARK(BM_ServeBatch)->Arg(64)->Arg(2000)
    ->Unit(benchmark::kMillisecond);

#ifdef MESHOPT_BENCH_HAS_OBS
// BM_ServeBatch with the service observed: per-tenant serve spans land in
// session-local recorders that run_batch absorbs in batch order. Against
// BM_ServeBatch (observer detached) this is the serving plane's tracing
// overhead — same <= 1.03x acceptance bar as BM_ControllerRoundTraced.
void BM_ServeBatchTraced(benchmark::State& state) {
  const auto tenants = static_cast<std::uint32_t>(state.range(0));
  const std::vector<MeasurementSnapshot> trace = {serve_bench_snapshot(0),
                                                  serve_bench_snapshot(1)};
  ServeConfig cfg;
  cfg.global_queue_limit = tenants;
  PlanService svc(cfg);
  TenantConfig tc;
  tc.flows = serve_bench_flows();
  for (std::uint32_t t = 0; t < tenants; ++t) svc.add_tenant(tc);
  TraceRecorder obs;
  svc.set_observer(&obs);

  std::int64_t plans = 0;
  long long tick = 0;
  for (auto _ : state) {
    const MeasurementSnapshot& snap =
        trace[static_cast<std::size_t>(tick) % trace.size()];
    for (std::uint32_t t = 0; t < tenants; ++t) svc.submit(t, snap, tick);
    const ServeBatchReport batch = svc.run_batch(tick);
    plans += static_cast<std::int64_t>(batch.served.size());
    benchmark::DoNotOptimize(batch);
    ++tick;
  }
  state.SetItemsProcessed(plans);
  state.counters["records"] = static_cast<double>(obs.records_emitted());
}
BENCHMARK(BM_ServeBatchTraced)->Arg(64)->Arg(2000)
    ->Unit(benchmark::kMillisecond);
#endif

// The per-plan cost floor for the comparison above: the same snapshots,
// flows, and tier through a bare warm Planner — no service, no queues,
// no metrics. This is exactly the planned-round inner loop a
// ControllerFleet::replay segment runs per round.
void BM_ServeBarePlanner(benchmark::State& state) {
  const std::vector<MeasurementSnapshot> trace = {serve_bench_snapshot(0),
                                                  serve_bench_snapshot(1)};
  const std::vector<FlowSpec> flows = serve_bench_flows();
  const PlanConfig cfg;
  Planner planner(4);
  std::int64_t plans = 0;
  for (auto _ : state) {
    const MeasurementSnapshot& snap =
        trace[static_cast<std::size_t>(plans) % trace.size()];
    const RatePlan plan =
        planner.plan(snap, InterferenceModelKind::kTwoHop, flows, cfg);
    benchmark::DoNotOptimize(plan);
    ++plans;
  }
  state.SetItemsProcessed(plans);
}
BENCHMARK(BM_ServeBarePlanner);
#endif

void BM_ChannelLossEstimator(benchmark::State& state) {
  const int s = static_cast<int>(state.range(0));
  RngStream rng(47, "bench-est");
  std::vector<std::uint8_t> pattern(static_cast<std::size_t>(s));
  for (int i = 0; i < s; ++i) {
    const bool burst = (i / 60) % 4 == 0;
    pattern[static_cast<std::size_t>(i)] =
        rng.bernoulli(burst ? 0.9 : 0.07) ? 1 : 0;
  }
  for (auto _ : state) {
    const auto est = estimate_channel_loss(pattern);
    benchmark::DoNotOptimize(est);
  }
}
BENCHMARK(BM_ChannelLossEstimator)->Arg(200)->Arg(640)->Arg(1280);

}  // namespace
}  // namespace meshopt

BENCHMARK_MAIN();
