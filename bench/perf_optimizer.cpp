// Section 6.1 timing claims, as google-benchmark microbenchmarks:
//   * extreme-point computation (maximal-clique enumeration on the
//     complement graph): the paper's worst case was ~200 extreme points in
//     < 10 ms,
//   * the convex optimization: Matlab took < 3 s; our simplex/Frank-Wolfe
//     implementation should be far faster at testbed scale,
//   * the channel-loss estimator on a full probing window.

#include <benchmark/benchmark.h>

#include <vector>

#include "estimation/loss_estimator.h"
#include "model/conflict_graph.h"
#include "model/feasibility.h"
#include "opt/network_optimizer.h"
#include "phy/channel.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace meshopt {
namespace {

ConflictGraph random_conflicts(int links, double density, std::uint64_t seed) {
  ConflictGraph g(links);
  RngStream rng(seed, "bench-graph");
  for (int i = 0; i < links; ++i)
    for (int j = i + 1; j < links; ++j)
      if (rng.bernoulli(density)) g.add_conflict(i, j);
  return g;
}

void BM_MaximalIndependentSets(benchmark::State& state) {
  const int links = static_cast<int>(state.range(0));
  const ConflictGraph g = random_conflicts(links, 0.5, 42);
  std::size_t sets = 0;
  for (auto _ : state) {
    const auto mis = g.maximal_independent_sets();
    sets = mis.size();
    benchmark::DoNotOptimize(mis);
  }
  state.counters["sets"] = static_cast<double>(sets);
}
BENCHMARK(BM_MaximalIndependentSets)->Arg(12)->Arg(24)->Arg(40)->Arg(80);

// ------------------------------------------------------------------ core
// Event-core throughput: a pool of pending timers with schedule/fire churn,
// the shape of a busy MAC (backoff timers, frame-end events, probe timers).

void BM_EventThroughput(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  std::uint64_t fired = 0;
  RngStream rng(48, "bench-ev");
  std::vector<TimeNs> when(static_cast<std::size_t>(events));
  for (auto& t : when) t = micros(rng.uniform(0.0, 1e6));
  Simulator sim;  // steady state: the event store persists across rounds
  for (auto _ : state) {
    const TimeNs base = sim.now();
    for (TimeNs t : when) {
      sim.schedule_at(base + t, [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_EventThroughput)->Arg(1000)->Arg(10000);

// Cancel-heavy churn: every scheduled event is cancelled and replaced once
// before firing — the DCF backoff-freeze / ACK-timeout pattern.
void BM_EventCancelChurn(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  std::uint64_t fired = 0;
  RngStream rng(49, "bench-cancel");
  std::vector<TimeNs> when(static_cast<std::size_t>(events));
  for (auto& t : when) t = micros(rng.uniform(0.0, 1e6));
  std::vector<EventId> ids(static_cast<std::size_t>(events));
  Simulator sim;
  for (auto _ : state) {
    const TimeNs base = sim.now();
    for (std::size_t i = 0; i < when.size(); ++i) {
      ids[i] = sim.schedule_at(base + when[i], [&fired] { ++fired; });
    }
    for (std::size_t i = 0; i < when.size(); ++i) {
      sim.cancel(ids[i]);
      ids[i] = sim.schedule_at(base + when[i] + micros(5), [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * events * 2);
}
BENCHMARK(BM_EventCancelChurn)->Arg(1000)->Arg(10000);

// Channel dispatch: frames on a sparse mesh (ring, each node hears its 4
// neighbors a side). Measures start_tx/end_tx fan-out cost as node count
// grows while the true neighborhood stays constant.
void BM_ChannelDispatch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Simulator sim;
  PhyParams phy;
  phy.fading_sigma_db = 0.0;  // isolate dispatch cost from RNG draws
  Channel ch(sim, phy, RngStream(50, "bench-ch"));
  for (int i = 0; i < n; ++i) ch.add_node(nullptr);
  for (int i = 0; i < n; ++i) {
    for (int d = 1; d <= 4; ++d) {
      ch.set_rss_dbm(i, (i + d) % n, -60.0 - 3.0 * d);
      ch.set_rss_dbm(i, (i + n - d) % n, -60.0 - 3.0 * d);
    }
  }
  Frame f;
  f.dst = kBroadcast;
  f.rate = Rate::kR1Mbps;
  f.air_bytes = 1500;
  std::uint64_t frames = 0;
  for (auto _ : state) {
    // 8 spaced-out transmitters per round, 125 rounds.
    for (int round = 0; round < 125; ++round) {
      for (int k = 0; k < 8; ++k) {
        const NodeId tx = static_cast<NodeId>((k * (n / 8) + round) % n);
        ch.start_tx(tx, f, micros(100));
        sim.run_until(sim.now() + micros(150));
        ++frames;
      }
    }
    benchmark::DoNotOptimize(frames);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(frames));
}
BENCHMARK(BM_ChannelDispatch)->Arg(16)->Arg(64)->Arg(256);

void BM_ExtremePoints(benchmark::State& state) {
  const int links = static_cast<int>(state.range(0));
  const ConflictGraph g = random_conflicts(links, 0.5, 43);
  std::vector<double> caps(static_cast<std::size_t>(links), 1e6);
  for (auto _ : state) {
    const auto pts = build_extreme_points(caps, g);
    benchmark::DoNotOptimize(pts);
  }
}
BENCHMARK(BM_ExtremePoints)->Arg(12)->Arg(24)->Arg(40);

OptimizerInput testbed_scale_problem(int links, int flows, std::uint64_t seed) {
  OptimizerInput in;
  RngStream rng(seed, "bench-lp");
  const ConflictGraph g = random_conflicts(links, 0.5, seed);
  std::vector<double> caps;
  for (int l = 0; l < links; ++l) caps.push_back(rng.uniform(0.3e6, 5e6));
  in.extreme_points = build_extreme_points(caps, g);
  in.routing.assign(static_cast<std::size_t>(links),
                    std::vector<double>(static_cast<std::size_t>(flows), 0.0));
  for (int f = 0; f < flows; ++f) {
    // Each flow crosses 1-4 random links.
    const int hops = rng.uniform_int(1, 4);
    for (int h = 0; h < hops; ++h)
      in.routing[static_cast<std::size_t>(
          rng.uniform_int(0, links - 1))][static_cast<std::size_t>(f)] = 1.0;
  }
  return in;
}

void BM_MaxThroughputLp(benchmark::State& state) {
  const auto in = testbed_scale_problem(24, 6, 44);
  for (auto _ : state) {
    const auto r = optimize_rates(in, {.objective = Objective::kMaxThroughput});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MaxThroughputLp);

void BM_ProportionalFairFrankWolfe(benchmark::State& state) {
  const auto in = testbed_scale_problem(24, 6, 45);
  for (auto _ : state) {
    const auto r =
        optimize_rates(in, {.objective = Objective::kProportionalFair});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ProportionalFairFrankWolfe);

void BM_MaxMinWaterfilling(benchmark::State& state) {
  const auto in = testbed_scale_problem(24, 6, 46);
  for (auto _ : state) {
    const auto r = optimize_rates(in, {.objective = Objective::kMaxMin});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MaxMinWaterfilling);

void BM_ChannelLossEstimator(benchmark::State& state) {
  const int s = static_cast<int>(state.range(0));
  RngStream rng(47, "bench-est");
  std::vector<std::uint8_t> pattern(static_cast<std::size_t>(s));
  for (int i = 0; i < s; ++i) {
    const bool burst = (i / 60) % 4 == 0;
    pattern[static_cast<std::size_t>(i)] =
        rng.bernoulli(burst ? 0.9 : 0.07) ? 1 : 0;
  }
  for (auto _ : state) {
    const auto est = estimate_channel_loss(pattern);
    benchmark::DoNotOptimize(est);
  }
}
BENCHMARK(BM_ChannelLossEstimator)->Arg(200)->Arg(640)->Arg(1280);

}  // namespace
}  // namespace meshopt

BENCHMARK_MAIN();
