// Section 6.1 timing claims, as google-benchmark microbenchmarks:
//   * extreme-point computation (maximal-clique enumeration on the
//     complement graph): the paper's worst case was ~200 extreme points in
//     < 10 ms,
//   * the convex optimization: Matlab took < 3 s; our simplex/Frank-Wolfe
//     implementation should be far faster at testbed scale,
//   * the channel-loss estimator on a full probing window.

#include <benchmark/benchmark.h>

#include <vector>

#include "estimation/loss_estimator.h"
#include "model/conflict_graph.h"
#include "model/feasibility.h"
#include "opt/network_optimizer.h"
#include "util/rng.h"

namespace meshopt {
namespace {

ConflictGraph random_conflicts(int links, double density, std::uint64_t seed) {
  ConflictGraph g(links);
  RngStream rng(seed, "bench-graph");
  for (int i = 0; i < links; ++i)
    for (int j = i + 1; j < links; ++j)
      if (rng.bernoulli(density)) g.add_conflict(i, j);
  return g;
}

void BM_MaximalIndependentSets(benchmark::State& state) {
  const int links = static_cast<int>(state.range(0));
  const ConflictGraph g = random_conflicts(links, 0.5, 42);
  std::size_t sets = 0;
  for (auto _ : state) {
    const auto mis = g.maximal_independent_sets();
    sets = mis.size();
    benchmark::DoNotOptimize(mis);
  }
  state.counters["sets"] = static_cast<double>(sets);
}
BENCHMARK(BM_MaximalIndependentSets)->Arg(12)->Arg(24)->Arg(40);

void BM_ExtremePoints(benchmark::State& state) {
  const int links = static_cast<int>(state.range(0));
  const ConflictGraph g = random_conflicts(links, 0.5, 43);
  std::vector<double> caps(static_cast<std::size_t>(links), 1e6);
  for (auto _ : state) {
    const auto pts = build_extreme_points(caps, g);
    benchmark::DoNotOptimize(pts);
  }
}
BENCHMARK(BM_ExtremePoints)->Arg(12)->Arg(24)->Arg(40);

OptimizerInput testbed_scale_problem(int links, int flows, std::uint64_t seed) {
  OptimizerInput in;
  RngStream rng(seed, "bench-lp");
  const ConflictGraph g = random_conflicts(links, 0.5, seed);
  std::vector<double> caps;
  for (int l = 0; l < links; ++l) caps.push_back(rng.uniform(0.3e6, 5e6));
  in.extreme_points = build_extreme_points(caps, g);
  in.routing.assign(static_cast<std::size_t>(links),
                    std::vector<double>(static_cast<std::size_t>(flows), 0.0));
  for (int f = 0; f < flows; ++f) {
    // Each flow crosses 1-4 random links.
    const int hops = rng.uniform_int(1, 4);
    for (int h = 0; h < hops; ++h)
      in.routing[static_cast<std::size_t>(
          rng.uniform_int(0, links - 1))][static_cast<std::size_t>(f)] = 1.0;
  }
  return in;
}

void BM_MaxThroughputLp(benchmark::State& state) {
  const auto in = testbed_scale_problem(24, 6, 44);
  for (auto _ : state) {
    const auto r = optimize_rates(in, {.objective = Objective::kMaxThroughput});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MaxThroughputLp);

void BM_ProportionalFairFrankWolfe(benchmark::State& state) {
  const auto in = testbed_scale_problem(24, 6, 45);
  for (auto _ : state) {
    const auto r =
        optimize_rates(in, {.objective = Objective::kProportionalFair});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ProportionalFairFrankWolfe);

void BM_MaxMinWaterfilling(benchmark::State& state) {
  const auto in = testbed_scale_problem(24, 6, 46);
  for (auto _ : state) {
    const auto r = optimize_rates(in, {.objective = Objective::kMaxMin});
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MaxMinWaterfilling);

void BM_ChannelLossEstimator(benchmark::State& state) {
  const int s = static_cast<int>(state.range(0));
  RngStream rng(47, "bench-est");
  std::vector<std::uint8_t> pattern(static_cast<std::size_t>(s));
  for (int i = 0; i < s; ++i) {
    const bool burst = (i / 60) % 4 == 0;
    pattern[static_cast<std::size_t>(i)] =
        rng.bernoulli(burst ? 0.9 : 0.07) ? 1 : 0;
  }
  for (auto _ : state) {
    const auto est = estimate_channel_loss(pattern);
    benchmark::DoNotOptimize(est);
  }
}
BENCHMARK(BM_ChannelLossEstimator)->Arg(200)->Arg(640)->Arg(1280);

}  // namespace
}  // namespace meshopt

BENCHMARK_MAIN();
