// Figure 5 reproduction: an IA link pair at 1 Mb/s where capture lifts the
// true feasibility region far above the time-sharing line. The two-point
// model misses a large fraction of the region; adding the simultaneous-
// backlogged throughputs (c31, c32) as a third extreme point recovers most
// of it.
//
// Paper shape: ~40% of the region missed by the 2-point model in the
// extreme example; the 3-point model recovers most of it.

#include <cstdio>

#include "bench_util.h"
#include "model/feasibility.h"
#include "model/two_link_analysis.h"
#include "scenario/topologies.h"
#include "scenario/workbench.h"

using namespace meshopt;

int main() {
  benchutil::header(
      "Figure 5 - feasibility region missed by the 2-point model (IA, "
      "1 Mb/s)",
      "extreme IA example misses ~40% of the region; 3-point model "
      "recovers it");

  Workbench wb(5);
  wb.add_nodes(4);
  TwoLinkParams params;
  params.cls = TopologyClass::kIA;
  params.interference_dbm = -67.0;  // partial capture at link A's receiver
  auto [a, b] = build_two_link(wb, params, Rate::kR1Mbps, Rate::kR1Mbps);

  const auto ma = wb.measure_backlogged_outputs({a}, 8.0);
  const auto mb = wb.measure_backlogged_outputs({b}, 8.0);
  const double c11 = ma[0].throughput_bps;
  const double c22 = mb[0].throughput_bps;
  const auto both = wb.measure_backlogged({a, b}, 8.0);
  const double c31 = both[0];
  const double c32 = both[1];

  benchutil::kv("c11 (link A alone)", c11 / 1e6, "Mb/s");
  benchutil::kv("c22 (link B alone)", c22 / 1e6, "Mb/s");
  benchutil::kv("c31 (A simultaneous)", c31 / 1e6, "Mb/s");
  benchutil::kv("c32 (B simultaneous)", c32 / 1e6, "Mb/s");
  const TwoLinkGeometry g{c11, c22, c31, c32};
  benchutil::kv("LIR", g.lir());

  // Empirical feasibility on a grid of the independent region.
  int feasible_total = 0, feasible_above_ts = 0, recovered_by_3pt = 0;
  const double pl_a = ma[0].loss_rate;
  const double pl_b = mb[0].loss_rate;
  FeasibilityRegion three_point{
      {{c11, 0.0}, {0.0, c22}, {c31, c32}}};
  for (int i = 1; i <= 6; ++i) {
    for (int j = 1; j <= 6; ++j) {
      const double x1 = c11 * i / 6.0;
      const double x2 = c22 * j / 6.0;
      const auto res = wb.measure_with_input_rates({a, b}, {x1, x2}, 4.0);
      const bool feas = res[0].throughput_bps >= 0.95 * (1.0 - pl_a) * x1 &&
                        res[1].throughput_bps >= 0.95 * (1.0 - pl_b) * x2;
      if (!feas) continue;
      ++feasible_total;
      if (x1 / c11 + x2 / c22 > 1.0 + 1e-9) {
        ++feasible_above_ts;  // missed by the 2-point model
        if (three_point.contains({x1, x2}, 0.02)) ++recovered_by_3pt;
      }
    }
  }

  std::printf("\nGrid sampling (36 input-rate points):\n");
  benchutil::kv("measured-feasible points", feasible_total);
  benchutil::kv("fraction missed by 2-point (time-sharing) model",
                feasible_total
                    ? static_cast<double>(feasible_above_ts) / feasible_total
                    : 0.0);
  benchutil::kv("of the missed points, recovered by 3-point model",
                feasible_above_ts
                    ? static_cast<double>(recovered_by_3pt) /
                          feasible_above_ts
                    : 0.0);

  // Analytic areas from the measured geometry.
  std::printf("\nAnalytic areas from (c11,c22,c31,c32):\n");
  benchutil::kv("A1 (time-sharing) fraction of 3-pt region",
                g.a1() / (g.a1() + g.a2()));
  benchutil::kv("A2/(A1+A2): region fraction missed by 2-point model",
                g.fn_error_if_interfering());
  std::printf(
      "\nExpectation: a large missed fraction, mostly recovered by the "
      "3-point model\n");
  return 0;
}
