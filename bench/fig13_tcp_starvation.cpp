// Figure 13 reproduction: the two-flow upstream TCP starvation scenario —
// a 2-hop and a 1-hop TCP flow into a gateway, hidden sources.
//
// Paper shape (1 Mb/s): TCP-noRC matches TCP-Max in aggregate (~505 vs
// ~515 kb/s) but starves the 2-hop flow; TCP-Prop revives it at a modest
// aggregate cost (~434 kb/s); rate control also shrinks run-to-run
// variability (error bars).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/controller.h"
#include "scenario/workbench.h"
#include "transport/tcp.h"
#include "util/stats.h"

using namespace meshopt;

namespace {

struct Outcome {
  OnlineStats two_hop;
  OnlineStats one_hop;
  OnlineStats total;
};

void run_once(Objective objective, bool rate_control, std::uint64_t seed,
              Outcome& out) {
  Workbench wb(seed);
  wb.add_nodes(4);
  Channel& ch = wb.channel();
  for (NodeId a = 0; a < 4; ++a)
    for (NodeId b = 0; b < 4; ++b)
      if (a != b) ch.set_rss_dbm(a, b, -120.0);
  ch.set_rss_symmetric_dbm(0, 1, -58.0);
  ch.set_rss_symmetric_dbm(1, 2, -58.0);
  ch.set_rss_symmetric_dbm(3, 2, -56.0);
  ch.set_rss_symmetric_dbm(1, 3, -70.0);
  wb.net().set_path_routes({0, 1, 2}, Rate::kR1Mbps);
  wb.net().set_path_routes({3, 2}, Rate::kR1Mbps);

  TcpFlow far(wb.net(), 0, 2, TcpParams{}, RngStream(seed, "far"));
  TcpFlow near(wb.net(), 3, 2, TcpParams{}, RngStream(seed, "near"));
  far.start();
  near.start();
  wb.run_for(20.0);  // phase 1: probe-free traffic (noRC regime)

  if (rate_control) {
    ControllerConfig cfg;
    cfg.probe_period_s = 0.5;
    cfg.probe_window = 120;
    cfg.optimizer.objective = objective;
    cfg.headroom = 0.7;
    MeshController ctl(wb.net(), cfg, seed);
    ManagedFlow mf;
    mf.flow_id = far.data_flow_id();
    mf.path = {0, 1, 2};
    mf.is_tcp = true;
    mf.apply_rate = [&](double x) { far.set_rate_limit_bps(x); };
    ctl.manage_flow(mf);
    ManagedFlow mn;
    mn.flow_id = near.data_flow_id();
    mn.path = {3, 2};
    mn.is_tcp = true;
    mn.apply_rate = [&](double x) { near.set_rate_limit_bps(x); };
    ctl.manage_flow(mn);
    const RoundResult round = ctl.run_round(wb);
    ctl.stop_probing();
    if (!round.ok) return;
    wb.run_for(5.0);
  }

  far.reset_goodput();
  near.reset_goodput();
  wb.run_for(30.0);
  const double f = far.goodput_bps(30.0) / 1e3;
  const double n = near.goodput_bps(30.0) / 1e3;
  out.two_hop.add(f);
  out.one_hop.add(n);
  out.total.add(f + n);
}

void report(const char* name, const Outcome& o) {
  std::printf("%-10s  2hop %7.1f [%6.1f..%6.1f]  1hop %7.1f [%6.1f..%6.1f]"
              "  total %7.1f kb/s\n",
              name, o.two_hop.mean(), o.two_hop.min(), o.two_hop.max(),
              o.one_hop.mean(), o.one_hop.min(), o.one_hop.max(),
              o.total.mean());
}

}  // namespace

int main() {
  benchutil::header(
      "Figure 13 - two-flow upstream TCP starvation (1 Mb/s gateway)",
      "noRC ~= Max aggregate but starves the 2-hop flow; Prop revives it "
      "at modest aggregate cost");

  Outcome norc, maxthr, prop;
  for (std::uint64_t seed : {87ull, 88ull, 89ull}) {
    run_once(Objective::kMaxThroughput, false, seed, norc);
    run_once(Objective::kMaxThroughput, true, seed, maxthr);
    run_once(Objective::kProportionalFair, true, seed, prop);
  }

  std::printf("\n%-10s  %s\n", "", "mean [min..max] goodput");
  report("TCP-noRC", norc);
  report("TCP-Max", maxthr);
  report("TCP-Prop", prop);

  std::printf("\nDerived checks:\n");
  benchutil::kv("noRC 2hop/1hop ratio (starvation)",
                norc.two_hop.mean() / std::max(norc.one_hop.mean(), 1e-9));
  benchutil::kv("Prop 2hop gain over noRC (x)",
                prop.two_hop.mean() / std::max(norc.two_hop.mean(), 1e-9));
  benchutil::kv("Prop aggregate / noRC aggregate",
                prop.total.mean() / std::max(norc.total.mean(), 1e-9));
  std::printf(
      "\nExpectation: noRC starves the 2-hop flow; TCP-Prop multiplies its "
      "goodput while keeping most of the aggregate\n");
  return 0;
}
