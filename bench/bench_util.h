#pragma once
// Shared console-reporting helpers for the figure-reproduction harnesses.

#include <cstdio>
#include <string>
#include <vector>

#include "util/stats.h"

namespace meshopt::benchutil {

inline void header(const std::string& title, const std::string& paper_claim) {
  std::printf("\n=======================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("=======================================================\n");
}

inline void print_cdf(const std::string& label, const Cdf& cdf, int points = 11) {
  std::printf("CDF %s (n=%zu):\n", label.c_str(), cdf.size());
  if (cdf.size() == 0) return;
  std::printf("  %10s  %8s\n", "value", "F(x)");
  for (const auto& [x, f] : cdf.curve(points)) {
    std::printf("  %10.4f  %8.3f\n", x, f);
  }
}

inline void kv(const char* key, double value, const char* unit = "") {
  std::printf("  %-44s %10.4f %s\n", key, value, unit);
}

}  // namespace meshopt::benchutil
