// Figure 4 reproduction: false-positive / false-negative rates of the
// two-primary-point + binary-LIR model on interfering link pairs, by
// topology class (CS / IA / NF).
//
// Paper shape: FPs are rare everywhere (conservative model). FNs are near
// zero for CS (mutual carrier sensing ~ time sharing), and substantially
// higher for IA/NF, where capture lifts the true region above the
// time-sharing line.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "estimation/lir.h"
#include "scenario/topologies.h"
#include "scenario/workbench.h"
#include "sweep/sweep_runner.h"
#include "util/stats.h"

using namespace meshopt;

namespace {

struct ClassResult {
  OnlineStats fp;
  OnlineStats fn;
};

struct PairConfig {
  Rate rate_a, rate_b;
  double interference_dbm;
  double p_ch_a;
};

/// Grid-sample the independent region of a pair and classify each point.
void evaluate_pair(TopologyClass cls, const PairConfig& pc,
                   std::uint64_t seed, ClassResult& out) {
  Workbench wb(seed);
  wb.add_nodes(4);
  TwoLinkParams params;
  params.cls = cls;
  params.interference_dbm = pc.interference_dbm;
  params.p_ch_a = pc.p_ch_a;
  auto [a, b] = build_two_link(wb, params, pc.rate_a, pc.rate_b);

  // Primary extreme points + UDP loss rates.
  const auto ma = wb.measure_backlogged_outputs({a}, 5.0);
  const auto mb = wb.measure_backlogged_outputs({b}, 5.0);
  const double c11 = ma[0].throughput_bps;
  const double c22 = mb[0].throughput_bps;
  const double pl_a = ma[0].loss_rate;
  const double pl_b = mb[0].loss_rate;
  if (c11 < 0.05e6 || c22 < 0.05e6) return;

  // Binary LIR classification.
  const auto both = wb.measure_backlogged({a, b}, 5.0);
  const double lir = (both[0] + both[1]) / (c11 + c22);
  const bool interfering = lir < kLirThreshold;
  if (!interfering) return;  // Fig. 4 reports interfering pairs

  // Sample the independent region on a 5x5 grid.
  int fp = 0, fn = 0, model_feasible_n = 0, model_infeasible_n = 0;
  for (int i = 1; i <= 5; ++i) {
    for (int j = 1; j <= 5; ++j) {
      const double x1 = c11 * i / 5.0;
      const double x2 = c22 * j / 5.0;
      const bool model_feasible = (x1 / c11 + x2 / c22) <= 1.0 + 1e-9;
      const auto res =
          wb.measure_with_input_rates({a, b}, {x1, x2}, 4.0);
      const bool measured_feasible =
          res[0].throughput_bps >= 0.95 * (1.0 - pl_a) * x1 &&
          res[1].throughput_bps >= 0.95 * (1.0 - pl_b) * x2;
      if (model_feasible) {
        ++model_feasible_n;
        if (!measured_feasible) ++fp;
      } else {
        ++model_infeasible_n;
        if (measured_feasible) ++fn;
      }
    }
  }
  if (model_feasible_n > 0)
    out.fp.add(static_cast<double>(fp) / model_feasible_n);
  if (model_infeasible_n > 0)
    out.fn.add(static_cast<double>(fn) / model_infeasible_n);
}

}  // namespace

int main() {
  benchutil::header(
      "Figure 4 - FP/FN of the 2-point binary-LIR model per topology class",
      "FPs rare everywhere (94/3026 points); FNs ~0 for CS, higher for "
      "IA/NF due to capture");

  // Interference levels chosen near each rate's decode threshold, the
  // capture-rich regime the paper's IA/NF testbed pairs exhibit (its Fig. 5
  // discussion). Far stronger interferers push CSMA *below* time sharing
  // instead — a regime the convex model cannot represent and the paper's
  // configurations do not cover.
  const std::vector<PairConfig> configs = {
      {Rate::kR1Mbps, Rate::kR1Mbps, -68.0, 0.0},
      {Rate::kR11Mbps, Rate::kR11Mbps, -73.0, 0.0},
      {Rate::kR1Mbps, Rate::kR11Mbps, -69.0, 0.0},
      {Rate::kR1Mbps, Rate::kR1Mbps, -68.0, 0.15},  // lossy channel case
  };

  std::printf("\n%-6s %10s %10s %10s | %10s %10s %10s\n", "class", "FP mean",
              "FP min", "FP max", "FN mean", "FN min", "FN max");
  const std::vector<TopologyClass> classes = {
      TopologyClass::kCS, TopologyClass::kIA, TopologyClass::kNF};

  // Every (class, config) cell builds its own Workbench, so the whole
  // grid sweeps in parallel; per-cell results are merged in job order
  // below, keeping the printed statistics identical to the sequential
  // nested loop this replaces.
  SweepRunner runner;
  const int ncfg = static_cast<int>(configs.size());
  const auto cells = runner.run(
      static_cast<int>(classes.size()) * ncfg, /*master_seed=*/4,
      [&](const SweepJob& job) {
        const TopologyClass cls = classes[std::size_t(job.index / ncfg)];
        const PairConfig& pc = configs[std::size_t(job.index % ncfg)];
        // Same per-cell seeds as the old sequential loop (100, 101, ...).
        ClassResult res;
        evaluate_pair(cls, pc, 100 + std::uint64_t(job.index % ncfg), res);
        return res;
      });

  for (std::size_t c = 0; c < classes.size(); ++c) {
    const TopologyClass cls = classes[c];
    ClassResult res;
    for (int k = 0; k < ncfg; ++k) {
      const ClassResult& cell = cells[c * std::size_t(ncfg) + std::size_t(k)];
      res.fp.merge(cell.fp);
      res.fn.merge(cell.fn);
    }
    std::printf("%-6s %10.3f %10.3f %10.3f | %10.3f %10.3f %10.3f\n",
                topology_name(cls), res.fp.mean(),
                res.fp.count() ? res.fp.min() : 0.0,
                res.fp.count() ? res.fp.max() : 0.0, res.fn.mean(),
                res.fn.count() ? res.fn.min() : 0.0,
                res.fn.count() ? res.fn.max() : 0.0);
  }
  std::printf(
      "\nExpectation: FP small for every class; FN(CS) << FN(IA), FN(NF)\n");
  return 0;
}
