// Figure 9 reproduction: the two operating cases of the channel-loss
// estimator, shown as p_ch^(W) curves on live links.
//
//  (a) no interference: uniform channel losses; p_ch^(W) climbs to the
//      measured loss rate p quickly -> estimator reports p_ch = p.
//  (b) ON/OFF interferer: collision bursts inflate p; p_ch^(W) plateaus
//      near the channel-only rate before rising -> the estimator reads
//      the plateau (max curvature of the log fit).

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "estimation/loss_estimator.h"
#include "probe/probe_system.h"
#include "scenario/topologies.h"
#include "scenario/workbench.h"
#include "transport/udp.h"

using namespace meshopt;

namespace {

void run_case(bool with_interference, double p_ch) {
  Workbench wb(with_interference ? 92 : 91);
  wb.add_nodes(4);
  TwoLinkParams params;
  params.cls = TopologyClass::kIA;
  params.interference_dbm = -58.0;
  params.p_ch_a = p_ch;
  auto [a, b] = build_two_link(wb, params, Rate::kR1Mbps, Rate::kR1Mbps);

  ProbeAgent agent(wb.net(), a.src, RngStream(7, "agent"));
  agent.configure(0.1, {Rate::kR1Mbps});
  ProbeMonitor mon(wb.net(), a.dst);
  agent.start();

  std::unique_ptr<UdpSource> interferer;
  int bflow = -1;
  std::function<void(bool)> toggle;
  if (with_interference) {
    wb.net().node(b.src).set_route(b.dst, b.dst);
    wb.net().node(b.src).set_link_rate(b.dst, b.rate);
    bflow = wb.net().open_flow(b.src, b.dst, Protocol::kUdp, 1470);
    interferer = std::make_unique<UdpSource>(
        wb.net(), bflow, UdpMode::kBacklogged, 0.0, RngStream(7, "intf"));
    toggle = [&](bool on) {
      if (on) {
        interferer->start();
      } else {
        interferer->stop();
      }
      wb.sim().schedule(seconds(on ? 3.0 : 4.0),
                        [&toggle, on] { toggle(!on); });
    };
    toggle(true);
  }

  wb.run_for(0.1 * 1300);
  agent.stop();
  if (interferer) interferer->stop();

  const auto* rec = mon.stream({a.src, Rate::kR1Mbps, ProbeKind::kDataProbe});
  const auto pattern =
      rec->pattern(agent.sent(Rate::kR1Mbps, ProbeKind::kDataProbe));
  const auto est = estimate_channel_loss(pattern);

  std::printf("\n-- case %s --\n",
              with_interference ? "(b): ON/OFF interference"
                                : "(a): no interference");
  benchutil::kv("planted channel loss p_ch", p_ch);
  benchutil::kv("measured loss rate p", est.p);
  benchutil::kv("estimated p_ch", est.p_ch);
  benchutil::kv("selected window W*", est.w_star);
  benchutil::kv("median (case 1) fired", est.median_case ? 1.0 : 0.0);

  std::printf("  p_ch^(W) curve (W, value):\n");
  const int s = static_cast<int>(pattern.size());
  for (int w = 10; w <= s; w = std::max(w + 1, w * 2)) {
    const int idx = w - 10;
    if (idx < 0 || idx >= static_cast<int>(est.p_w.size())) break;
    std::printf("    W=%5d   %.4f\n", w, est.p_w[static_cast<std::size_t>(idx)]);
  }
}

}  // namespace

int main() {
  benchutil::header(
      "Figure 9 - channel loss estimator operating cases",
      "(a) uniform losses: curve reaches p fast, p_ch = p; (b) bursty "
      "collisions: plateau below p, p_ch read from the plateau");
  run_case(false, 0.15);
  run_case(true, 0.15);
  std::printf(
      "\nExpectation: case (a) estimate ~= p ~= planted rate; case (b) "
      "p >> planted rate but estimate ~= planted rate\n");
  return 0;
}
