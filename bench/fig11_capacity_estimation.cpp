// Figure 11 reproduction: per-link capacity estimation under background
// interference — maxUDP ground truth vs our online estimator vs AdHoc
// Probe, normalized by nominal throughput.
//
// Paper shape: the online estimator tracks maxUDP (RMSE ~12%); AdHoc
// Probe reads near-nominal rates regardless of channel losses and so
// grossly over-estimates lossy links.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "estimation/capacity.h"
#include "probe/adhoc_probe.h"
#include "probe/probe_system.h"
#include "scenario/topologies.h"
#include "scenario/workbench.h"
#include "transport/udp.h"
#include "util/stats.h"

using namespace meshopt;

namespace {

struct LinkRow {
  Rate rate;
  double maxudp_norm;
  double online_norm;
  double adhoc_norm;
};

LinkRow run_link(double p_ch, Rate rate, std::uint64_t seed) {
  Workbench wb(seed);
  wb.add_nodes(4);
  TwoLinkParams params;
  params.cls = TopologyClass::kIA;
  params.interference_dbm = -60.0;
  params.p_ch_a = p_ch;
  auto [a, b] = build_two_link(wb, params, rate, rate);
  const double nominal = nominal_throughput_bps(MacTimings{}, 1470, rate);

  LinkRow row{rate, 0.0, 0.0, 0.0};
  row.maxudp_norm =
      wb.measure_backlogged({a}, 10.0)[0] / nominal;

  // Online phase: probes + AdHoc Probe pairs + ON/OFF interference.
  ProbeAgent agent_a(wb.net(), a.src, RngStream(seed, "agent-a"));
  ProbeAgent agent_b(wb.net(), a.dst, RngStream(seed, "agent-b"));
  agent_a.configure(0.1, {rate});
  agent_b.configure(0.1, {rate});
  ProbeMonitor mon_dst(wb.net(), a.dst);
  ProbeMonitor mon_src(wb.net(), a.src);
  agent_a.start();
  agent_b.start();

  wb.net().node(a.src).set_route(a.dst, a.dst);
  wb.net().node(a.src).set_link_rate(a.dst, rate);
  AdHocProbe adhoc(wb.net(), a.src, a.dst);
  adhoc.start(200, 0.2);

  wb.net().node(b.src).set_route(b.dst, b.dst);
  wb.net().node(b.src).set_link_rate(b.dst, b.rate);
  const int bflow = wb.net().open_flow(b.src, b.dst, Protocol::kUdp, 1470);
  UdpSource interferer(wb.net(), bflow, UdpMode::kBacklogged, 0.0,
                       RngStream(seed, "intf"));
  RngStream sched(seed, "onoff");
  std::function<void(bool)> toggle = [&](bool on) {
    if (on) {
      interferer.start();
    } else {
      interferer.stop();
    }
    wb.sim().schedule(seconds(sched.uniform(2.0, on ? 4.0 : 12.0)),
                      [&toggle, on] { toggle(!on); });
  };
  toggle(true);

  wb.run_for(0.1 * 700);
  agent_a.stop();
  agent_b.stop();
  interferer.stop();

  const auto est = estimate_link_capacity(
      MacTimings{}, 1470, rate, mon_dst, a.src, mon_src, a.dst,
      agent_a.sent(rate, ProbeKind::kDataProbe),
      agent_b.sent(Rate::kR1Mbps, ProbeKind::kAckProbe));
  row.online_norm = est.capacity_bps / nominal;
  row.adhoc_norm = adhoc.capacity_estimate_bps() / nominal;
  wb.run_for(1.0);
  return row;
}

}  // namespace

int main() {
  benchutil::header(
      "Figure 11 - maxUDP vs online estimator vs AdHoc Probe",
      "online estimator tracks maxUDP (RMSE ~12%); AdHoc Probe reads "
      "near-nominal regardless of losses");

  std::vector<LinkRow> rows;
  std::uint64_t seed = 500;
  for (Rate rate : {Rate::kR1Mbps, Rate::kR11Mbps}) {
    for (double p_ch :
         {0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5, 0.6}) {
      rows.push_back(run_link(p_ch, rate, seed++));
    }
  }

  std::printf("\n%-5s %-8s %10s %10s %10s\n", "link", "rate", "maxUDP",
              "online", "AdHocProbe");
  std::vector<double> truth, online, adhoc;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const LinkRow& r = rows[i];
    std::printf("%-5zu %-8s %10.3f %10.3f %10.3f\n", i + 1,
                rate_name(r.rate), r.maxudp_norm, r.online_norm,
                r.adhoc_norm);
    truth.push_back(r.maxudp_norm);
    online.push_back(r.online_norm);
    adhoc.push_back(std::min(r.adhoc_norm, 2.0));
  }
  std::printf("\n(normalized by nominal throughput)\n");
  benchutil::kv("online estimator RMSE vs maxUDP", rmse(online, truth));
  benchutil::kv("AdHoc Probe RMSE vs maxUDP", rmse(adhoc, truth));
  std::printf(
      "\nExpectation: online RMSE ~0.1 (paper 12%%); AdHoc Probe several "
      "times worse, pinned near nominal\n");
  return 0;
}
