// Figure 3 reproduction: CDF of Link Interference Ratios over many link
// pairs of the testbed, at 1 Mb/s and 11 Mb/s.
//
// Paper shape: bimodal — most LIRs below ~0.7 (interfering) or above ~0.95
// (independent), with a thinner middle (partial/capture interference).

#include <cstdio>
#include <set>
#include <vector>

#include "bench_util.h"
#include "estimation/lir.h"
#include "scenario/testbed.h"
#include "scenario/workbench.h"
#include "sweep/sweep_runner.h"

using namespace meshopt;

namespace {

std::vector<std::pair<LinkRef, LinkRef>> pick_pairs(Testbed& tb, Rate rate,
                                                    int want,
                                                    std::uint64_t seed) {
  const auto links = tb.usable_links(rate);
  RngStream rng(seed, "pairs");
  std::vector<std::pair<LinkRef, LinkRef>> pairs;
  std::set<std::pair<std::size_t, std::size_t>> seen;
  int guard = 0;
  while (static_cast<int>(pairs.size()) < want && ++guard < 4000 &&
         links.size() >= 4) {
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(links.size()) - 1));
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(links.size()) - 1));
    if (i == j || seen.contains({std::min(i, j), std::max(i, j)})) continue;
    const LinkRef& a = links[i];
    const LinkRef& b = links[j];
    const std::set<NodeId> ids{a.src, a.dst, b.src, b.dst};
    if (ids.size() != 4) continue;  // need disjoint node sets
    seen.insert({std::min(i, j), std::max(i, j)});
    pairs.emplace_back(a, b);
  }
  return pairs;
}

}  // namespace

int main() {
  benchutil::header(
      "Figure 3 - CDF of LIRs across testbed link pairs",
      "bimodal LIR distribution: most pairs < 0.7 or > 0.95, at both rates");

  // Each (rate, testbed seed) cell is an independent simulation; sweep
  // them across cores. Results merge in job order, so the CDFs are
  // identical to the sequential loop this replaces.
  const std::vector<std::uint64_t> seeds = {11, 23, 37};
  SweepRunner runner;

  for (Rate rate : {Rate::kR1Mbps, Rate::kR11Mbps}) {
    const auto cells = runner.run(
        static_cast<int>(seeds.size()), /*master_seed=*/7,
        [&](const SweepJob& job) {
          const std::uint64_t seed = seeds[std::size_t(job.index)];
          Workbench wb(seed);
          Testbed tb(wb, TestbedConfig{.seed = seed});
          std::vector<double> lirs;
          for (const auto& [a, b] : pick_pairs(tb, rate, 16, seed)) {
            const LirMeasurement m = measure_lir(wb, a, b, 4.0);
            if (m.c11 < 0.05e6 || m.c22 < 0.05e6) continue;  // dead links
            lirs.push_back(std::min(m.lir(), 1.2));
          }
          return lirs;
        });

    Cdf cdf;
    int measured = 0;
    for (const auto& lirs : cells) {
      for (double v : lirs) {
        cdf.add(v);
        ++measured;
      }
    }
    std::printf("\n-- data rate %s, %d link pairs --\n", rate_name(rate),
                measured);
    benchutil::print_cdf("LIR", cdf, 13);
    benchutil::kv("fraction with LIR < 0.7 (interfering mode)",
                  cdf.fraction_below(0.7));
    benchutil::kv("fraction with LIR in [0.7, 0.95) (middle)",
                  cdf.fraction_below(0.95) - cdf.fraction_below(0.7));
    benchutil::kv("fraction with LIR >= 0.95 (independent mode)",
                  1.0 - cdf.fraction_below(0.95));
  }
  std::printf("\nExpectation: middle band is the thinnest at both rates\n");
  return 0;
}
