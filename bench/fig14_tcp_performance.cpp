// Figure 14 reproduction: TCP with and without optimization-based rate
// control across multi-hop/multi-flow scenarios.
//
// Paper shape:
//  (a) aggregate TCP-RC/TCP-noRC: TCP-Max reaches up to ~1.45x; TCP-Prop
//      keeps >= 0.8x of noRC aggregate in ~80% of scenarios,
//  (b) TCP-Prop improves Jain's fairness index over TCP-noRC,
//  (c) feasibility: most flows achieve a large fraction of their
//      optimized rate limit (paper: 70% of flows above 0.9),
//  (d) stability: across repetitions, rate-controlled flows deviate less
//      from their mean than noRC flows.

#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "core/controller.h"
#include "scenario/testbed.h"
#include "scenario/workbench.h"
#include "routing/ett.h"
#include "transport/tcp.h"
#include "util/stats.h"

using namespace meshopt;

namespace {

struct ScenarioSpec {
  std::uint64_t seed;
  Rate rate;
  int flows;
};

struct RepResult {
  std::vector<double> goodput;  ///< per flow, bps
  std::vector<double> limits;   ///< per flow optimized x (RC only)
};

/// Pick flow paths on a testbed instance via ETT over true link quality.
std::vector<std::vector<NodeId>> pick_paths(Workbench& wb, Testbed& tb,
                                            const ScenarioSpec& sc) {
  TopologyDb db;
  const auto& err = wb.channel().error_model();
  for (const LinkRef& l : tb.usable_links(sc.rate)) {
    LinkState ls;
    ls.src = l.src;
    ls.dst = l.dst;
    ls.rate = sc.rate;
    ls.p_fwd = err.per(l.src, l.dst, sc.rate, FrameType::kData);
    ls.p_rev = err.per(l.dst, l.src, Rate::kR1Mbps, FrameType::kAck);
    db.update_link(ls);
  }
  RngStream rng(sc.seed, "paths");
  std::vector<std::vector<NodeId>> paths;
  int guard = 0;
  while (static_cast<int>(paths.size()) < sc.flows && ++guard < 300) {
    const NodeId s = rng.uniform_int(0, wb.net().node_count() - 1);
    const NodeId d = rng.uniform_int(0, wb.net().node_count() - 1);
    if (s == d) continue;
    const auto p = db.shortest_path(s, d);
    if (p.size() < 2 || p.size() > 5) continue;
    bool dup = false;
    for (const auto& q : paths)
      if (q.front() == s && q.back() == d) dup = true;
    if (!dup) paths.push_back(p);
  }
  return paths;
}

/// One scenario repetition; `objective < 0` means no rate control.
RepResult run_rep(const ScenarioSpec& sc, int objective, std::uint64_t rep) {
  RepResult out;
  Workbench wb(sc.seed + rep * 1000);
  Testbed tb(wb, TestbedConfig{.seed = sc.seed});
  const auto paths = pick_paths(wb, tb, sc);
  if (paths.empty()) return out;

  std::vector<std::unique_ptr<TcpFlow>> tcps;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    wb.net().set_path_routes(paths[i], sc.rate);
    tcps.push_back(std::make_unique<TcpFlow>(
        wb.net(), paths[i].front(), paths[i].back(), TcpParams{},
        RngStream(sc.seed + rep, "tcp-" + std::to_string(i))));
    tcps.back()->start();
  }
  wb.run_for(15.0);

  if (objective >= 0) {
    ControllerConfig cfg;
    cfg.probe_period_s = 0.5;
    cfg.probe_window = 100;
    cfg.optimizer.objective = static_cast<Objective>(objective);
    cfg.headroom = 0.7;
    MeshController ctl(wb.net(), cfg,
                       sc.seed + rep * 7);
    for (std::size_t i = 0; i < paths.size(); ++i) {
      ManagedFlow mf;
      mf.flow_id = tcps[i]->data_flow_id();
      mf.path = paths[i];
      mf.is_tcp = true;
      TcpFlow* flow = tcps[i].get();
      mf.apply_rate = [flow](double x) { flow->set_rate_limit_bps(x); };
      ctl.manage_flow(mf);
    }
    const RoundResult round = ctl.run_round(wb);
    ctl.stop_probing();
    if (round.ok) out.limits = round.x;
    wb.run_for(5.0);
  }

  for (auto& t : tcps) t->reset_goodput();
  wb.run_for(25.0);
  for (auto& t : tcps) out.goodput.push_back(t->goodput_bps(25.0));
  return out;
}

}  // namespace

int main() {
  benchutil::header(
      "Figure 14 - TCP with/without rate control across scenarios",
      "(a) Max up to ~1.45x noRC aggregate, Prop >= 0.8x in most; (b) "
      "Prop raises JFI; (c) most flows reach ~their limits; (d) RC flows "
      "more stable across repetitions");

  std::vector<ScenarioSpec> scenarios;
  std::uint64_t seed = 701;
  for (Rate rate : {Rate::kR1Mbps, Rate::kR11Mbps}) {
    for (int flows : {2, 3, 4}) {
      scenarios.push_back({seed++, rate, flows});
    }
  }

  Cdf agg_prop, agg_max, jfi_norc_cdf, jfi_prop_cdf, feas_cdf;
  Cdf stab_norc, stab_rc;

  for (const auto& sc : scenarios) {
    // Three repetitions of each regime for the stability metric.
    std::vector<RepResult> norc, prop;
    RepResult maxthr;
    for (std::uint64_t rep = 0; rep < 3; ++rep) {
      norc.push_back(run_rep(sc, -1, rep));
      prop.push_back(
          run_rep(sc, static_cast<int>(Objective::kProportionalFair), rep));
    }
    maxthr = run_rep(sc, static_cast<int>(Objective::kMaxThroughput), 0);
    if (norc[0].goodput.empty() || prop[0].goodput.empty()) continue;

    const auto aggregate = [](const RepResult& r) {
      double a = 0.0;
      for (double g : r.goodput) a += g;
      return a;
    };
    const double agg_norc = aggregate(norc[0]);
    if (agg_norc > 1e3) {
      agg_prop.add(aggregate(prop[0]) / agg_norc);
      if (!maxthr.goodput.empty()) agg_max.add(aggregate(maxthr) / agg_norc);
    }
    jfi_norc_cdf.add(jain_fairness_index(norc[0].goodput));
    jfi_prop_cdf.add(jain_fairness_index(prop[0].goodput));

    // (c) feasibility: achieved / optimized limit, proportional-fair run.
    if (prop[0].limits.size() == prop[0].goodput.size()) {
      for (std::size_t i = 0; i < prop[0].goodput.size(); ++i) {
        if (prop[0].limits[i] > 1e3)
          feas_cdf.add(std::min(prop[0].goodput[i] / prop[0].limits[i], 1.3));
      }
    }

    // (d) stability: |goodput - mean| / mean across repetitions.
    const auto stability = [](const std::vector<RepResult>& reps, Cdf& cdf) {
      if (reps.size() < 2 || reps[0].goodput.empty()) return;
      const std::size_t flows = reps[0].goodput.size();
      for (std::size_t f = 0; f < flows; ++f) {
        OnlineStats st;
        for (const auto& r : reps)
          if (f < r.goodput.size()) st.add(r.goodput[f]);
        if (st.mean() < 1e3) continue;
        for (const auto& r : reps)
          if (f < r.goodput.size())
            cdf.add(std::abs(r.goodput[f] - st.mean()) / st.mean());
      }
    };
    stability(norc, stab_norc);
    stability(prop, stab_rc);
  }

  std::printf("\n(a) aggregate TCP-RC / TCP-noRC:\n");
  benchutil::print_cdf("TCP-Prop", agg_prop, 9);
  benchutil::print_cdf("TCP-Max", agg_max, 9);
  benchutil::kv("TCP-Max best gain (x)",
                agg_max.size() ? agg_max.quantile(1.0) : 0.0);
  benchutil::kv("fraction of scenarios with Prop >= 0.8x noRC",
                1.0 - agg_prop.fraction_below(0.8));

  std::printf("\n(b) Jain fairness index:\n");
  benchutil::kv("JFI median, TCP-noRC", jfi_norc_cdf.quantile(0.5));
  benchutil::kv("JFI median, TCP-Prop", jfi_prop_cdf.quantile(0.5));

  std::printf("\n(c) feasibility (achieved / optimized limit, Prop):\n");
  benchutil::print_cdf("achieved/limit", feas_cdf, 9);
  benchutil::kv("fraction of flows above 0.9 of limit",
                1.0 - feas_cdf.fraction_below(0.9));

  std::printf("\n(d) stability |goodput-mean|/mean across repetitions:\n");
  benchutil::kv("fraction within 10% of mean, TCP-noRC",
                stab_norc.fraction_below(0.1));
  benchutil::kv("fraction within 10% of mean, TCP-RC(Prop)",
                stab_rc.fraction_below(0.1));
  std::printf(
      "\nExpectation: Prop trades a little aggregate for fairness; RC "
      "flows hit their limits and repeat more consistently than noRC\n");
  return 0;
}
