#pragma once
// ETT routing (Draves et al. [13], used by the paper's Srcr setup): link
// metric = ETX * S/B where ETX = 1/((1-p_fwd)(1-p_rev)), plus Dijkstra
// over a link-state topology database. The paper initializes routes with
// ETT and keeps them fixed per experiment; we expose the same workflow.

#include <optional>
#include <unordered_map>
#include <vector>

#include "phy/radio.h"

namespace meshopt {

struct LinkState {
  NodeId src = -1;
  NodeId dst = -1;
  Rate rate = Rate::kR1Mbps;
  double p_fwd = 0.0;  ///< forward (DATA direction) loss rate
  double p_rev = 0.0;  ///< reverse (ACK direction) loss rate
};

/// Expected transmission time for `packet_bytes` across the link (seconds).
/// Dead links (loss ~1 in either direction) get +inf.
[[nodiscard]] double ett_seconds(const LinkState& l, int packet_bytes = 1500);

/// Link-state topology database (the Srcr-database stand-in).
class TopologyDb {
 public:
  /// Insert or update a directed link's state.
  void update_link(const LinkState& l);

  [[nodiscard]] const std::vector<LinkState>& links() const { return links_; }
  [[nodiscard]] std::optional<LinkState> link(NodeId src, NodeId dst) const;

  /// Dijkstra shortest path by ETT. Empty if unreachable.
  [[nodiscard]] std::vector<NodeId> shortest_path(NodeId src, NodeId dst,
                                                  int packet_bytes = 1500) const;

  /// Total ETT along a path (+inf if any hop is missing).
  [[nodiscard]] double path_ett(const std::vector<NodeId>& path,
                                int packet_bytes = 1500) const;

 private:
  std::vector<LinkState> links_;
  std::unordered_map<std::uint64_t, std::size_t> index_;
  [[nodiscard]] static std::uint64_t key(NodeId a, NodeId b) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
           static_cast<std::uint32_t>(b);
  }
};

/// Binary routing matrix R[l][s] over an explicit link list: 1 when flow
/// s's path traverses directed link l.
[[nodiscard]] std::vector<std::vector<double>> build_routing_matrix(
    const std::vector<LinkState>& links,
    const std::vector<std::vector<NodeId>>& flow_paths);

/// End-to-end loss 1 - prod(1 - p_l) along a path in the database
/// (forward losses only, as the paper's x_s = y_s/(1-p_s) uses).
[[nodiscard]] double path_loss(const TopologyDb& db,
                               const std::vector<NodeId>& path);

}  // namespace meshopt
