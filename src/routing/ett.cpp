#include "routing/ett.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace meshopt {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

double ett_seconds(const LinkState& l, int packet_bytes) {
  const double ok = (1.0 - l.p_fwd) * (1.0 - l.p_rev);
  if (ok <= 1e-6) return kInf;
  const double etx = 1.0 / ok;
  const double tx_time = 8.0 * static_cast<double>(packet_bytes) /
                         rate_bps(l.rate);
  return etx * tx_time;
}

void TopologyDb::update_link(const LinkState& l) {
  const auto it = index_.find(key(l.src, l.dst));
  if (it != index_.end()) {
    links_[it->second] = l;
  } else {
    index_.emplace(key(l.src, l.dst), links_.size());
    links_.push_back(l);
  }
}

std::optional<LinkState> TopologyDb::link(NodeId src, NodeId dst) const {
  const auto it = index_.find(key(src, dst));
  if (it == index_.end()) return std::nullopt;
  return links_[it->second];
}

std::vector<NodeId> TopologyDb::shortest_path(NodeId src, NodeId dst,
                                              int packet_bytes) const {
  // Collect vertices.
  NodeId max_node = std::max(src, dst);
  for (const auto& l : links_) max_node = std::max({max_node, l.src, l.dst});
  const int n = max_node + 1;

  std::vector<double> dist(static_cast<std::size_t>(n), kInf);
  std::vector<NodeId> prev(static_cast<std::size_t>(n), -1);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[static_cast<std::size_t>(src)] = 0.0;
  pq.emplace(0.0, src);

  // Adjacency.
  std::vector<std::vector<std::size_t>> out(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < links_.size(); ++i)
    out[static_cast<std::size_t>(links_[i].src)].push_back(i);

  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    if (u == dst) break;
    for (std::size_t li : out[static_cast<std::size_t>(u)]) {
      const LinkState& l = links_[li];
      const double w = ett_seconds(l, packet_bytes);
      if (!std::isfinite(w)) continue;
      const double nd = d + w;
      if (nd < dist[static_cast<std::size_t>(l.dst)]) {
        dist[static_cast<std::size_t>(l.dst)] = nd;
        prev[static_cast<std::size_t>(l.dst)] = u;
        pq.emplace(nd, l.dst);
      }
    }
  }

  if (!std::isfinite(dist[static_cast<std::size_t>(dst)])) return {};
  std::vector<NodeId> path;
  for (NodeId v = dst; v != -1; v = prev[static_cast<std::size_t>(v)])
    path.push_back(v);
  std::reverse(path.begin(), path.end());
  return path;
}

double TopologyDb::path_ett(const std::vector<NodeId>& path,
                            int packet_bytes) const {
  double acc = 0.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto l = link(path[i], path[i + 1]);
    if (!l) return kInf;
    acc += ett_seconds(*l, packet_bytes);
  }
  return acc;
}

std::vector<std::vector<double>> build_routing_matrix(
    const std::vector<LinkState>& links,
    const std::vector<std::vector<NodeId>>& flow_paths) {
  const std::size_t l_count = links.size();
  const std::size_t s_count = flow_paths.size();
  std::vector<std::vector<double>> r(l_count,
                                     std::vector<double>(s_count, 0.0));
  for (std::size_t s = 0; s < s_count; ++s) {
    const auto& path = flow_paths[s];
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      for (std::size_t l = 0; l < l_count; ++l) {
        if (links[l].src == path[h] && links[l].dst == path[h + 1]) {
          r[l][s] = 1.0;
        }
      }
    }
  }
  return r;
}

double path_loss(const TopologyDb& db, const std::vector<NodeId>& path) {
  double ok = 1.0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto l = db.link(path[i], path[i + 1]);
    ok *= l ? (1.0 - l->p_fwd) : 0.0;
  }
  return 1.0 - ok;
}

}  // namespace meshopt
