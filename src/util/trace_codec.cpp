#include "util/trace_codec.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <system_error>

#include "util/json.h"

namespace meshopt {

namespace {

constexpr char kMagic[8] = {'M', 'O', 'T', 'R', 'A', 'C', 'E', '1'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 4;

// Little-endian primitive appenders. Explicit byte shifts (rather than
// memcpy of host integers) keep the on-disk format identical on any host.
void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

void put_i32(std::string& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_f64(std::string& out, double v) {
  const auto bits = std::bit_cast<std::uint64_t>(v);
  put_u32(out, static_cast<std::uint32_t>(bits & 0xffffffffu));
  put_u32(out, static_cast<std::uint32_t>(bits >> 32));
}

/// Bounds-checked little-endian cursor over a record payload.
class Cursor {
 public:
  Cursor(const char* data, std::size_t size) : p_(data), end_(data + size) {}

  std::uint32_t u32() {
    need(4);
    const auto* b = reinterpret_cast<const unsigned char*>(p_);
    p_ += 4;
    return static_cast<std::uint32_t>(b[0]) |
           static_cast<std::uint32_t>(b[1]) << 8 |
           static_cast<std::uint32_t>(b[2]) << 16 |
           static_cast<std::uint32_t>(b[3]) << 24;
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }

  double f64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return std::bit_cast<double>(lo | hi << 32);
  }

  [[nodiscard]] std::size_t remaining() const {
    return static_cast<std::size_t>(end_ - p_);
  }

 private:
  void need(std::size_t n) {
    if (remaining() < n)
      throw std::invalid_argument("trace: record payload truncated");
  }

  const char* p_;
  const char* end_;
};

void encode_snapshot(std::string& out, const MeasurementSnapshot& snap) {
  put_u32(out, static_cast<std::uint32_t>(snap.links.size()));
  for (const SnapshotLink& l : snap.links) {
    put_i32(out, l.src);
    put_i32(out, l.dst);
    put_u32(out, static_cast<std::uint32_t>(l.rate));
    put_i32(out, l.retry_limit);
    put_f64(out, l.estimate.p_data);
    put_f64(out, l.estimate.p_ack);
    put_f64(out, l.estimate.p_link);
    put_f64(out, l.estimate.capacity_bps);
  }
  put_u32(out, static_cast<std::uint32_t>(snap.neighbors.size()));
  for (const auto& [a, b] : snap.neighbors) {
    put_i32(out, a);
    put_i32(out, b);
  }
  put_f64(out, snap.lir_threshold);
  put_u32(out, static_cast<std::uint32_t>(snap.lir.rows()));
  put_u32(out, static_cast<std::uint32_t>(snap.lir.cols()));
  for (int r = 0; r < snap.lir.rows(); ++r)
    for (int c = 0; c < snap.lir.cols(); ++c) put_f64(out, snap.lir(r, c));
}

MeasurementSnapshot decode_snapshot(const char* data, std::size_t size) {
  Cursor cur(data, size);
  MeasurementSnapshot snap;

  const std::uint32_t nlinks = cur.u32();
  // 48 bytes per link: reject counts the remaining payload cannot hold
  // before reserving (a corrupt count must not drive a huge allocation).
  if (static_cast<std::size_t>(nlinks) * 48 > cur.remaining())
    throw std::invalid_argument("trace: link count exceeds record payload");
  snap.links.reserve(nlinks);
  for (std::uint32_t i = 0; i < nlinks; ++i) {
    SnapshotLink l;
    l.src = cur.i32();
    l.dst = cur.i32();
    l.rate = static_cast<Rate>(cur.u32());
    l.retry_limit = cur.i32();
    l.estimate.p_data = cur.f64();
    l.estimate.p_ack = cur.f64();
    l.estimate.p_link = cur.f64();
    l.estimate.capacity_bps = cur.f64();
    snap.links.push_back(l);
  }

  const std::uint32_t npairs = cur.u32();
  if (static_cast<std::size_t>(npairs) * 8 > cur.remaining())
    throw std::invalid_argument(
        "trace: neighbor count exceeds record payload");
  snap.neighbors.reserve(npairs);
  for (std::uint32_t i = 0; i < npairs; ++i) {
    const NodeId a = cur.i32();
    const NodeId b = cur.i32();
    // Normalize externally-produced records to the sorted first<second
    // invariant is_neighbor's binary search relies on, exactly as the
    // JSON decoder does (our own writer always emits normalized pairs).
    snap.neighbors.emplace_back(std::min(a, b), std::max(a, b));
  }
  std::sort(snap.neighbors.begin(), snap.neighbors.end());
  snap.neighbors.erase(
      std::unique(snap.neighbors.begin(), snap.neighbors.end()),
      snap.neighbors.end());

  snap.lir_threshold = cur.f64();
  const std::uint32_t rows = cur.u32();
  const std::uint32_t cols = cur.u32();
  // Enforce squareness here, where the JSON decoder does, so a bad table
  // fails at decode rather than deep inside a replay worker.
  if (rows != cols)
    throw std::invalid_argument("trace: LIR table must be square");
  // Multiply in 64 bits and compare against remaining/8: a hostile shape
  // like 2^31 x 2^31 must fail the bounds check, not wrap it.
  if (static_cast<std::uint64_t>(rows) * cols > cur.remaining() / 8)
    throw std::invalid_argument("trace: LIR shape exceeds record payload");
  if (rows > 0 && cols > 0) {
    snap.lir.resize(static_cast<int>(rows), static_cast<int>(cols));
    for (std::uint32_t r = 0; r < rows; ++r)
      for (std::uint32_t c = 0; c < cols; ++c)
        snap.lir(static_cast<int>(r), static_cast<int>(c)) = cur.f64();
  }
  if (cur.remaining() != 0)
    throw std::invalid_argument("trace: trailing bytes inside record");
  return snap;
}

void check_header(std::string_view bytes) {
  if (bytes.size() < kHeaderBytes)
    throw std::invalid_argument("trace: missing file header");
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    throw std::invalid_argument("trace: bad magic (not a meshopt trace)");
  Cursor cur(bytes.data() + sizeof(kMagic), kHeaderBytes - sizeof(kMagic));
  const std::uint32_t version = cur.u32();
  if (version != kTraceVersion)
    throw std::invalid_argument("trace: unsupported container version");
  // Version 1 defines no flags: reject unknown ones rather than silently
  // misdecoding a future writer's extended payload.
  if (cur.u32() != 0)
    throw std::invalid_argument("trace: unknown container flags");
}

FILE* as_file(void* p) { return static_cast<FILE*>(p); }

}  // namespace

// -------------------------------------------------------------- in-memory

void trace_append_record(std::string& out, const MeasurementSnapshot& snap) {
  const std::size_t len_at = out.size();
  put_u32(out, 0);  // patched below once the payload length is known
  encode_snapshot(out, snap);
  const std::size_t payload = out.size() - len_at - 4;
  if (payload > 0xffffffffu) {
    out.resize(len_at);  // leave the trace well-formed
    throw std::invalid_argument(
        "trace: snapshot payload exceeds the 4 GiB record limit");
  }
  out[len_at] = static_cast<char>(payload & 0xff);
  out[len_at + 1] = static_cast<char>((payload >> 8) & 0xff);
  out[len_at + 2] = static_cast<char>((payload >> 16) & 0xff);
  out[len_at + 3] = static_cast<char>((payload >> 24) & 0xff);
}

void trace_append_snapshot_payload(std::string& out,
                                   const MeasurementSnapshot& snap) {
  encode_snapshot(out, snap);
}

MeasurementSnapshot decode_snapshot_payload(std::string_view payload) {
  return decode_snapshot(payload.data(), payload.size());
}

std::string trace_header() {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, kTraceVersion);
  put_u32(out, 0);  // flags
  return out;
}

std::string encode_trace(const std::vector<MeasurementSnapshot>& rounds) {
  std::string out = trace_header();
  for (const MeasurementSnapshot& snap : rounds)
    trace_append_record(out, snap);
  return out;
}

std::vector<MeasurementSnapshot> decode_trace(std::string_view bytes) {
  check_header(bytes);
  std::vector<MeasurementSnapshot> rounds;
  std::size_t at = kHeaderBytes;
  while (at < bytes.size()) {
    if (bytes.size() - at < 4)
      throw std::invalid_argument("trace: truncated record length");
    Cursor len_cur(bytes.data() + at, 4);
    const std::uint32_t payload = len_cur.u32();
    at += 4;
    if (bytes.size() - at < payload)
      throw std::invalid_argument("trace: truncated record payload");
    rounds.push_back(decode_snapshot(bytes.data() + at, payload));
    at += payload;
  }
  return rounds;
}

// ------------------------------------------------------------------ files

TraceWriter::TraceWriter(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr)
    throw std::runtime_error("TraceWriter: cannot create " + path);
  file_ = f;
  const std::string header = trace_header();
  if (std::fwrite(header.data(), 1, header.size(), f) != header.size()) {
    std::fclose(f);
    file_ = nullptr;
    throw std::runtime_error("TraceWriter: short header write to " + path);
  }
}

TraceWriter::~TraceWriter() {
  if (file_ != nullptr) std::fclose(as_file(file_));
}

void TraceWriter::write(const MeasurementSnapshot& snap) {
  if (file_ == nullptr)
    throw std::runtime_error("TraceWriter: write after close or failure");
  scratch_.clear();
  trace_append_record(scratch_, snap);
  if (std::fwrite(scratch_.data(), 1, scratch_.size(), as_file(file_)) !=
      scratch_.size()) {
    // Poison the writer: a partial record is on disk, so appending more
    // would misalign the stream. The file keeps its cleanly detectable
    // truncated tail; further write() calls fail fast.
    std::fclose(as_file(file_));
    file_ = nullptr;
    throw std::runtime_error("TraceWriter: short record write");
  }
  ++rounds_;
}

void TraceWriter::close() {
  if (file_ == nullptr) return;
  const int rc = std::fclose(as_file(file_));
  file_ = nullptr;
  if (rc != 0) throw std::runtime_error("TraceWriter: close failed");
}

TraceReader::TraceReader(const std::string& path, OnCorruptRecord policy)
    : policy_(policy) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr)
    throw std::runtime_error("TraceReader: cannot open " + path);
  file_ = f;
  char header[kHeaderBytes];
  const std::size_t got = std::fread(header, 1, sizeof(header), f);
  try {
    check_header(std::string_view(header, got));
    // Pin the file size so a corrupt record length prefix is rejected
    // against it before any buffer is sized (a hostile 0xffffffff must
    // throw, not attempt a 4 GiB allocation). std::filesystem gives a
    // 64-bit size on every platform (long ftell would cap at 2 GiB on
    // LLP64 systems).
    std::error_code ec;
    const std::uintmax_t size = std::filesystem::file_size(path, ec);
    if (ec) throw std::runtime_error("TraceReader: cannot size " + path);
    file_bytes_ = static_cast<long long>(size);
    consumed_ = static_cast<long long>(kHeaderBytes);
  } catch (...) {
    std::fclose(f);
    file_ = nullptr;
    throw;
  }
}

TraceReader::~TraceReader() {
  if (file_ != nullptr) std::fclose(as_file(file_));
}

bool TraceReader::next(MeasurementSnapshot& out) {
  if (failed_)
    throw std::runtime_error(
        "TraceReader: reader poisoned by an earlier record error");
  if (file_ == nullptr) return false;
  try {
    return next_impl(out);
  } catch (...) {
    // The stream position is no longer trustworthy — a caller that
    // catches and retries must not decode misaligned bytes as records.
    failed_ = true;
    std::fclose(as_file(file_));
    file_ = nullptr;
    throw;
  }
}

bool TraceReader::give_up_tail() {
  // kSkipAndCount over damaged FRAMING: with no trustworthy length prefix
  // there is no resync point, so the remaining bytes are one corrupt tail.
  // Count it and report a clean end — the intact prefix is the salvage.
  ++corrupt_;
  std::fclose(as_file(file_));
  file_ = nullptr;
  return false;
}

bool TraceReader::next_impl(MeasurementSnapshot& out) {
  const bool salvage = policy_ == OnCorruptRecord::kSkipAndCount;
  for (;;) {
    FILE* f = as_file(file_);
    unsigned char len_bytes[4];
    const std::size_t got = std::fread(len_bytes, 1, 4, f);
    // An I/O failure is a file problem (std::runtime_error, as the
    // constructor contract), not a malformed trace — callers that
    // quarantine traces on std::invalid_argument must not destroy a good
    // file over a transient disk error. It propagates under EITHER
    // policy, for the same reason.
    if (got != 4 && std::ferror(f) != 0)
      throw std::runtime_error("trace: read error");
    if (got == 0 && std::feof(f)) return false;  // clean end of trace
    if (got != 4) {
      if (salvage) return give_up_tail();
      throw std::invalid_argument("trace: truncated record length");
    }
    const std::uint32_t payload =
        static_cast<std::uint32_t>(len_bytes[0]) |
        static_cast<std::uint32_t>(len_bytes[1]) << 8 |
        static_cast<std::uint32_t>(len_bytes[2]) << 16 |
        static_cast<std::uint32_t>(len_bytes[3]) << 24;
    consumed_ += 4;
    if (static_cast<long long>(payload) > file_bytes_ - consumed_) {
      if (salvage) return give_up_tail();
      throw std::invalid_argument("trace: record length exceeds file size");
    }
    consumed_ += static_cast<long long>(payload);
    scratch_.resize(payload);
    if (payload > 0 &&
        std::fread(scratch_.data(), 1, payload, f) != payload) {
      if (std::ferror(f) != 0) throw std::runtime_error("trace: read error");
      if (salvage) return give_up_tail();
      throw std::invalid_argument("trace: truncated record payload");
    }
    // From here the stream already sits at the next record: a payload
    // that fails to DECODE is individually skippable — the length-prefix
    // framing is exactly what makes this safe.
    if (salvage) {
      try {
        out = decode_snapshot(scratch_.data(), payload);
      } catch (const std::invalid_argument&) {
        ++corrupt_;
        continue;
      }
    } else {
      out = decode_snapshot(scratch_.data(), payload);
    }
    ++rounds_;
    return true;
  }
}

std::vector<MeasurementSnapshot> read_trace(const std::string& path,
                                            OnCorruptRecord policy,
                                            int* corrupt_records) {
  TraceReader reader(path, policy);
  std::vector<MeasurementSnapshot> rounds;
  MeasurementSnapshot snap;
  while (reader.next(snap)) rounds.push_back(std::move(snap));
  if (corrupt_records != nullptr) *corrupt_records = reader.corrupt_records();
  return rounds;
}

void write_trace(const std::string& path,
                 const std::vector<MeasurementSnapshot>& rounds) {
  TraceWriter writer(path);
  for (const MeasurementSnapshot& snap : rounds) writer.write(snap);
  writer.close();
}

// ------------------------------------------------------------------ JSON

std::string trace_to_json(const std::vector<MeasurementSnapshot>& rounds) {
  std::string out = "{\"version\":";
  json_append_int(out, kTraceVersion);
  out += ",\"rounds\":[";
  for (std::size_t i = 0; i < rounds.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += rounds[i].to_json();
  }
  out += "]}";
  return out;
}

std::vector<MeasurementSnapshot> trace_from_json(std::string_view text) {
  const JsonValue doc = JsonValue::parse(text);
  if (doc.at("version").as_int() != static_cast<int>(kTraceVersion))
    throw std::invalid_argument("trace: unsupported JSON version");
  std::vector<MeasurementSnapshot> rounds;
  // Each round uses the snapshot's own schema decoder: one schema, one
  // parser, no drift between the standalone and the trace JSON paths.
  for (const JsonValue& jr : doc.at("rounds").items())
    rounds.push_back(MeasurementSnapshot::from_value(jr));
  return rounds;
}

}  // namespace meshopt
