#pragma once
// Statistics helpers used throughout the benchmarks and estimators:
// running moments, empirical CDFs, RMSE, and Jain's fairness index.

#include <cstddef>
#include <span>
#include <vector>

namespace meshopt {

/// Incremental mean/variance accumulator (Welford).
class OnlineStats {
 public:
  void add(double x);

  /// Fold another accumulator in (Chan's parallel Welford combination);
  /// the result matches adding the other's samples one by one. Used to
  /// merge per-cell statistics after a parallel sweep.
  void merge(const OnlineStats& o);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Empirical CDF over a sample set.
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> samples);

  void add(double x);

  /// Fraction of samples <= x.
  [[nodiscard]] double fraction_below(double x) const;

  /// q-quantile (q in [0,1]), by linear interpolation between order stats.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t size() const { return sorted_.size(); }
  [[nodiscard]] const std::vector<double>& sorted() const { return sorted_; }

  /// Evenly spaced (value, fraction) pairs, convenient for printing a curve.
  [[nodiscard]] std::vector<std::pair<double, double>> curve(
      int points = 20) const;

 private:
  void ensure_sorted() const;
  mutable std::vector<double> sorted_;
  mutable bool dirty_ = false;
};

/// Root mean square error between two equally sized vectors.
[[nodiscard]] double rmse(std::span<const double> a, std::span<const double> b);

/// Jain's fairness index: (sum x)^2 / (n * sum x^2). 1 when all equal,
/// 1/n when one value dominates. Zero-length or all-zero input yields 1.
[[nodiscard]] double jain_fairness_index(std::span<const double> x);

/// Arithmetic mean of a span (0 for empty input).
[[nodiscard]] double mean_of(std::span<const double> x);

}  // namespace meshopt
