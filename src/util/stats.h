#pragma once
// Statistics helpers used throughout the benchmarks and estimators:
// running moments, empirical CDFs, streaming quantiles, RMSE, and Jain's
// fairness index.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace meshopt {

/// Incremental mean/variance accumulator (Welford).
class OnlineStats {
 public:
  void add(double x);

  /// Fold another accumulator in (Chan's parallel Welford combination);
  /// the result matches adding the other's samples one by one. Used to
  /// merge per-cell statistics after a parallel sweep.
  void merge(const OnlineStats& o);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  ///< population variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Empirical CDF over a sample set.
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> samples);

  void add(double x);

  /// Fraction of samples <= x.
  [[nodiscard]] double fraction_below(double x) const;

  /// q-quantile (q in [0,1]), by linear interpolation between order stats.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t size() const { return sorted_.size(); }
  [[nodiscard]] const std::vector<double>& sorted() const { return sorted_; }

  /// Evenly spaced (value, fraction) pairs, convenient for printing a curve.
  [[nodiscard]] std::vector<std::pair<double, double>> curve(
      int points = 20) const;

 private:
  void ensure_sorted() const;
  mutable std::vector<double> sorted_;
  mutable bool dirty_ = false;
};

/// One histogram bucket as exposed by QuantileSketch::buckets():
/// `count` samples with values <= `upper_bound` (and above the previous
/// bucket's bound). Counts are per-bucket, not cumulative; exporters that
/// need Prometheus-style cumulative `le` buckets accumulate while walking.
struct SketchBucket {
  double upper_bound = 0.0;  ///< inclusive upper edge (+inf for overflow)
  std::uint64_t count = 0;   ///< samples in this bucket
};

/// Streaming quantile estimator: exact up to a small-N limit, then a
/// fixed-bin log histogram.
///
/// Built for the serving-plane latency metrics (serve/metrics.h) but
/// generally reusable: O(1) add, O(bins) quantile, exact merge. The two
/// phases:
///   * exact — the first `exact_limit` samples are stored verbatim, and
///     quantile() interpolates order statistics exactly like Cdf (small
///     tenants never pay any approximation),
///   * binned — past the limit the samples spill into geometric bins of
///     width 2^(1/bins_per_octave) between min_value and max_value
///     (values below/above land in underflow/overflow bins), bounding the
///     relative quantile error by about half a bin width (~4.4% at the
///     default 8 bins per octave) with a few hundred uint64 counters.
///
/// Determinism: quantiles are a pure function of the inserted multiset —
/// insertion order never matters (exact mode sorts; bins commute) — so
/// sketches filled in deterministic batch order report bit-identical
/// quantiles whatever thread count produced the samples. merge() is exact
/// in every phase combination: the merged sketch equals one sketch fed
/// both sample streams.
class QuantileSketch {
 public:
  /// @pre 0 < min_value < max_value, bins_per_octave >= 1.
  /// @throws std::invalid_argument on a bad configuration.
  explicit QuantileSketch(double min_value = 1e-7, double max_value = 1e5,
                          int bins_per_octave = 8,
                          std::size_t exact_limit = 64);

  /// Record one sample. NaN is ignored (a poisoned latency measurement
  /// must not poison the histogram); +/-inf clamp to the overflow /
  /// underflow bin.
  void add(double x);

  /// Fold another sketch in. Equivalent to adding the other's samples one
  /// by one (exactly — both exact-mode payloads concatenate; bin counts
  /// add). @throws std::invalid_argument when the binning configurations
  /// differ (their quantile spaces are incompatible).
  void merge(const QuantileSketch& o);

  /// q-quantile (q clamped into [0,1]). Exact-mode: interpolated order
  /// statistics (matches Cdf::quantile). Binned: the geometric midpoint
  /// of the bin holding the target rank, clamped into [min(), max()].
  /// Returns 0 for an empty sketch. Monotone non-decreasing in q.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return n_ > 0 ? sum_ / static_cast<double>(n_) : 0.0;
  }
  /// True while every sample is stored verbatim (quantiles are exact).
  [[nodiscard]] bool exact() const { return bins_.empty(); }

  /// Bucket dump for exporters (ascending upper bounds, per-bucket counts
  /// summing to count()). Exact mode: one bucket per distinct sample value
  /// (its own upper bound — a lossless dump). Binned mode: the geometric
  /// bin edges — underflow reports upper_bound = the configured min_value,
  /// overflow reports +inf — with empty bins omitted. Empty sketch: {}.
  [[nodiscard]] std::vector<SketchBucket> buckets() const;

 private:
  [[nodiscard]] std::size_t bin_index(double x) const;
  [[nodiscard]] double bin_value(std::size_t i) const;
  void spill();

  double min_value_;
  double max_value_;
  int bins_per_octave_;
  std::size_t exact_limit_;
  std::size_t interior_bins_;  ///< bins between the under/overflow bins

  std::size_t n_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
  mutable std::vector<double> exact_;  ///< exact-mode payload (sorted lazily)
  std::vector<std::uint64_t> bins_;    ///< empty until the first spill
};

/// Root mean square error between two equally sized vectors.
[[nodiscard]] double rmse(std::span<const double> a, std::span<const double> b);

/// Jain's fairness index: (sum x)^2 / (n * sum x^2). 1 when all equal,
/// 1/n when one value dominates. Zero-length or all-zero input yields 1.
[[nodiscard]] double jain_fairness_index(std::span<const double> x);

/// Arithmetic mean of a span (0 for empty input).
[[nodiscard]] double mean_of(std::span<const double> x);

}  // namespace meshopt
