#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace meshopt {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += o.m2_ + delta * delta * na * nb / (na + nb);
  n_ += o.n_;
}

double OnlineStats::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

Cdf::Cdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

void Cdf::add(double x) {
  sorted_.push_back(x);
  dirty_ = true;
}

void Cdf::ensure_sorted() const {
  if (dirty_) {
    std::sort(sorted_.begin(), sorted_.end());
    dirty_ = false;
  }
}

double Cdf::fraction_below(double x) const {
  ensure_sorted();
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Cdf::quantile(double q) const {
  ensure_sorted();
  if (sorted_.empty()) throw std::domain_error("quantile of empty CDF");
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::vector<std::pair<double, double>> Cdf::curve(int points) const {
  ensure_sorted();
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || points < 2) return out;
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, fraction_below(x));
  }
  return out;
}

double rmse(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("rmse: size mismatch");
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

double jain_fairness_index(std::span<const double> x) {
  if (x.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : x) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq <= 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(x.size()) * sum_sq);
}

double mean_of(std::span<const double> x) {
  if (x.empty()) return 0.0;
  double s = 0.0;
  for (double v : x) s += v;
  return s / static_cast<double>(x.size());
}

}  // namespace meshopt
