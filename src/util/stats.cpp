#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace meshopt {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += o.m2_ + delta * delta * na * nb / (na + nb);
  n_ += o.n_;
}

double OnlineStats::variance() const {
  return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

Cdf::Cdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

void Cdf::add(double x) {
  sorted_.push_back(x);
  dirty_ = true;
}

void Cdf::ensure_sorted() const {
  if (dirty_) {
    std::sort(sorted_.begin(), sorted_.end());
    dirty_ = false;
  }
}

double Cdf::fraction_below(double x) const {
  ensure_sorted();
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Cdf::quantile(double q) const {
  ensure_sorted();
  if (sorted_.empty()) throw std::domain_error("quantile of empty CDF");
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::vector<std::pair<double, double>> Cdf::curve(int points) const {
  ensure_sorted();
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || points < 2) return out;
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, fraction_below(x));
  }
  return out;
}

QuantileSketch::QuantileSketch(double min_value, double max_value,
                               int bins_per_octave, std::size_t exact_limit)
    : min_value_(min_value),
      max_value_(max_value),
      bins_per_octave_(bins_per_octave),
      exact_limit_(exact_limit) {
  if (!(min_value > 0.0) || !(max_value > min_value) || bins_per_octave < 1)
    throw std::invalid_argument("QuantileSketch: bad binning configuration");
  const double octaves = std::log2(max_value_ / min_value_);
  interior_bins_ = static_cast<std::size_t>(
                       std::ceil(octaves * static_cast<double>(bins_per_octave_))) +
                   1;
  exact_.reserve(exact_limit_);
}

std::size_t QuantileSketch::bin_index(double x) const {
  // Layout: [0] underflow | [1 .. interior_bins_] geometric | [last] overflow.
  if (!(x >= min_value_)) return 0;
  if (x >= max_value_) return interior_bins_ + 1;
  const double pos =
      std::log2(x / min_value_) * static_cast<double>(bins_per_octave_);
  std::size_t i = static_cast<std::size_t>(pos) + 1;
  if (i > interior_bins_) i = interior_bins_;
  return i;
}

double QuantileSketch::bin_value(std::size_t i) const {
  if (i == 0) return min_value_;
  if (i >= interior_bins_ + 1) return max_value_;
  // Geometric midpoint of bin i's [lo, lo * 2^(1/bpo)) value range.
  const double exponent = (static_cast<double>(i - 1) + 0.5) /
                          static_cast<double>(bins_per_octave_);
  return min_value_ * std::exp2(exponent);
}

void QuantileSketch::spill() {
  bins_.assign(interior_bins_ + 2, 0);
  for (const double v : exact_) ++bins_[bin_index(v)];
  exact_.clear();
  exact_.shrink_to_fit();
}

void QuantileSketch::add(double x) {
  if (std::isnan(x)) return;
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  if (exact()) {
    if (exact_.size() < exact_limit_) {
      exact_.push_back(x);
      return;
    }
    spill();
  }
  ++bins_[bin_index(x)];
}

void QuantileSketch::merge(const QuantileSketch& o) {
  if (min_value_ != o.min_value_ || max_value_ != o.max_value_ ||
      bins_per_octave_ != o.bins_per_octave_)
    throw std::invalid_argument("QuantileSketch: merge config mismatch");
  if (o.n_ == 0) return;
  if (n_ == 0) {
    min_ = o.min_;
    max_ = o.max_;
  } else {
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }
  n_ += o.n_;
  sum_ += o.sum_;
  // Stay exact only while the combined payload fits the limit; otherwise
  // spill and add bin counts (o's exact payload rebins sample by sample —
  // identical to having added those samples here directly).
  if (exact() && o.exact() && exact_.size() + o.exact_.size() <= exact_limit_) {
    exact_.insert(exact_.end(), o.exact_.begin(), o.exact_.end());
    return;
  }
  if (exact()) spill();
  if (o.exact()) {
    for (const double v : o.exact_) ++bins_[bin_index(v)];
  } else {
    for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += o.bins_[i];
  }
}

double QuantileSketch::quantile(double q) const {
  if (n_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (exact()) {
    // Interpolated order statistics, exactly as Cdf::quantile.
    std::sort(exact_.begin(), exact_.end());
    const double pos = q * static_cast<double>(exact_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const auto hi = std::min(lo + 1, exact_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return exact_[lo] * (1.0 - frac) + exact_[hi] * frac;
  }
  // Walk bins to the bin holding rank ceil(q * (n-1)) (0-based).
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(n_ - 1) + 0.5);
  std::uint64_t seen = 0;
  double v = max_;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    seen += bins_[i];
    if (seen > rank) {
      // The edge bins have no geometric midpoint of their own: report the
      // observed extreme (an out-of-range sample is still a real sample).
      if (i == 0) return min_;
      if (i + 1 == bins_.size()) return max_;
      v = bin_value(i);
      break;
    }
  }
  return std::clamp(v, min_, max_);
}

std::vector<SketchBucket> QuantileSketch::buckets() const {
  std::vector<SketchBucket> out;
  if (n_ == 0) return out;
  if (exact()) {
    // Lossless dump: one bucket per distinct sample value.
    std::sort(exact_.begin(), exact_.end());
    for (const double v : exact_) {
      if (!out.empty() && out.back().upper_bound == v) {
        ++out.back().count;
      } else {
        out.push_back({v, 1});
      }
    }
    return out;
  }
  out.reserve(bins_.size());
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (bins_[i] == 0) continue;
    double ub;
    if (i == 0) {
      ub = min_value_;  // underflow: everything below the binned range
    } else if (i + 1 == bins_.size()) {
      ub = std::numeric_limits<double>::infinity();  // overflow
    } else {
      // Upper edge of geometric bin i's [lo, lo * 2^(1/bpo)) range.
      ub = min_value_ * std::exp2(static_cast<double>(i) /
                                  static_cast<double>(bins_per_octave_));
    }
    out.push_back({ub, bins_[i]});
  }
  return out;
}

double rmse(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("rmse: size mismatch");
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(a.size()));
}

double jain_fairness_index(std::span<const double> x) {
  if (x.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : x) {
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq <= 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(x.size()) * sum_sq);
}

double mean_of(std::span<const double> x) {
  if (x.empty()) return 0.0;
  double s = 0.0;
  for (double v : x) s += v;
  return s / static_cast<double>(x.size());
}

}  // namespace meshopt
