#pragma once
// Deterministic random number streams.
//
// Every stochastic component in the library draws from its own named stream
// derived from a single master seed, so that simulations are reproducible
// bit-for-bit regardless of the order in which components are constructed
// or how many draws other components make.

#include <cstdint>
#include <random>
#include <string>
#include <string_view>

namespace meshopt {

/// A self-contained pseudo-random stream (mt19937_64 based).
///
/// Streams are cheap to construct; derive one per component via
/// RngStream(masterSeed, "component-name").
class RngStream {
 public:
  explicit RngStream(std::uint64_t seed) : engine_(seed) {}

  /// Derive a substream deterministically from a master seed and a label.
  RngStream(std::uint64_t master_seed, std::string_view label)
      : engine_(mix(master_seed, hash(label))) {}

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Exponential variate with the given mean.
  [[nodiscard]] double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Normal variate.
  [[nodiscard]] double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Raw 64-bit draw (for deriving further seeds).
  [[nodiscard]] std::uint64_t next_u64() { return engine_(); }

  /// FNV-1a hash of a label, used to derive substream seeds.
  [[nodiscard]] static std::uint64_t hash(std::string_view s) {
    std::uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ULL;
    }
    return h;
  }

  /// splitmix64-style mixing of two seeds.
  [[nodiscard]] static std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
    std::uint64_t z = a + 0x9e3779b97f4a7c15ULL + b;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace meshopt
