#pragma once
// Binary measurement-trace codec (see ARCHITECTURE.md, "Trace & replay").
//
// A trace is a sequence of MeasurementSnapshot records — one per probing
// window — recorded once from a live simulation and replayed many times as
// pure optimizer input (TraceSource / ControllerFleet::replay). The format
// is built for that asymmetry:
//   * length-prefixed records in one flat stream: a reader can skip or
//     mmap sequentially without parsing record interiors, and a truncated
//     tail is detected by the length prefix, not by a parse failure deep
//     inside a record,
//   * exact-bit doubles: every double is stored as its IEEE-754 bit
//     pattern (little-endian uint64), so decode(encode(s)) == s compares
//     equal bit-for-bit — the property the live-vs-replay plan-identity
//     tests pin,
//   * a JSON interop path (trace_to_json / trace_from_json) reusing the
//     snapshot's own %.17g schema from util/json.h, for hand inspection
//     and cross-tool exchange. JSON round trips are exact too, just ~3x
//     larger and slower.
//
// Layout (all integers little-endian):
//   file   := header record*
//   header := magic "MOTRACE1" (8 bytes) | u32 version (=1) | u32 flags (=0)
//   record := u32 payload_bytes | payload
// Snapshot payload:
//   u32 link_count
//     per link: i32 src | i32 dst | u32 rate | i32 retry_limit
//               | f64 p_data | f64 p_ack | f64 p_link | f64 capacity_bps
//   u32 neighbor_count, per pair: i32 a | i32 b
//   f64 lir_threshold
//   u32 lir_rows | u32 lir_cols | f64 * rows*cols (row-major)

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/snapshot.h"

namespace meshopt {

/// Trace container version written by this codec.
inline constexpr std::uint32_t kTraceVersion = 1;

/// What a reader does with a corrupt record (bit rot, a crashed
/// recorder's damaged tail).
///
/// kSkipAndCount exploits the length-prefix framing: a record whose
/// PAYLOAD fails to decode has a trustworthy extent (the prefix already
/// positioned the stream at the next record), so the reader counts it and
/// moves on. Damage to the framing itself — a length prefix pointing past
/// the end of the file, or a short payload read — leaves no trustworthy
/// resync point, so the reader counts one corrupt tail and reports a
/// clean end of trace instead of throwing. I/O errors
/// (std::runtime_error) always propagate under either policy: a transient
/// disk failure is not trace corruption and must not silently shorten a
/// replay.
enum class OnCorruptRecord : std::uint8_t {
  kThrow,         ///< propagate std::invalid_argument (the strict default)
  kSkipAndCount,  ///< salvage every decodable record, count the damage
};

// -------------------------------------------------------------- in-memory

/// Append one length-prefixed snapshot record to `out` (no file header).
void trace_append_record(std::string& out, const MeasurementSnapshot& snap);

/// Append one snapshot's bare record payload (no length prefix, no
/// header) — the MOTRACE1 snapshot encoding reused as a wire-format body
/// by the serving plane (serve/wire.h).
void trace_append_snapshot_payload(std::string& out,
                                   const MeasurementSnapshot& snap);

/// Decode one bare record payload produced by trace_append_snapshot_payload
/// (or framed by trace_append_record, minus its length prefix).
/// @throws std::invalid_argument on a truncated or malformed payload —
/// identical validation to the trace reader's per-record decode.
[[nodiscard]] MeasurementSnapshot decode_snapshot_payload(
    std::string_view payload);

/// The 16-byte trace file header.
[[nodiscard]] std::string trace_header();

/// Encode a whole trace (header + one record per snapshot).
[[nodiscard]] std::string encode_trace(
    const std::vector<MeasurementSnapshot>& rounds);

/// Decode a whole trace buffer produced by encode_trace()/TraceWriter.
/// @throws std::invalid_argument on a bad magic/version, a record length
///         pointing past the end of the buffer (truncation), or a record
///         whose payload is malformed.
[[nodiscard]] std::vector<MeasurementSnapshot> decode_trace(
    std::string_view bytes);

// ------------------------------------------------------------------ files

/// Sequential trace recorder. Records are appended with write(); the file
/// header is emitted on construction. close() (or destruction) flushes.
///
/// The writer buffers each record in memory and appends it with a single
/// stream write, so a crash mid-record leaves a cleanly detectable
/// truncated tail rather than interleaved garbage.
class TraceWriter {
 public:
  /// @throws std::runtime_error when the file cannot be created.
  explicit TraceWriter(const std::string& path);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  /// Append one snapshot record. @throws std::runtime_error on a short
  /// write — the writer is then poisoned (further writes throw) so a
  /// partial record can never be followed by a misaligned next record.
  void write(const MeasurementSnapshot& snap);

  /// Records written so far.
  [[nodiscard]] int rounds() const { return rounds_; }

  /// Flush and close; further write() calls throw.
  void close();

 private:
  void* file_ = nullptr;  ///< FILE*, kept opaque to the header
  std::string scratch_;   ///< per-record encode buffer, capacity reused
  int rounds_ = 0;
};

/// Sequential trace reader over a file produced by TraceWriter (or
/// encode_trace written to disk). Validates the header on construction and
/// each record's length prefix before decoding it.
class TraceReader {
 public:
  /// @throws std::runtime_error when the file cannot be opened;
  /// @throws std::invalid_argument when the header is not a version-1
  ///         meshopt trace (the header is validated regardless of
  ///         `policy` — a wrong-format file is a caller bug, not damage).
  explicit TraceReader(const std::string& path,
                       OnCorruptRecord policy = OnCorruptRecord::kThrow);
  ~TraceReader();

  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  /// Read the next record into `out`. Returns false at a clean
  /// end-of-file. Under kThrow: @throws std::invalid_argument on a
  /// truncated or malformed record, and any throw poisons the reader (the
  /// stream position is no longer trustworthy; subsequent next() calls
  /// throw std::runtime_error). Under kSkipAndCount: malformed records
  /// are counted in corrupt_records() and skipped (see OnCorruptRecord),
  /// so next() only returns false or a decoded record. Either way
  /// @throws std::runtime_error on an I/O failure (the file may be fine —
  /// do not treat it as corrupt).
  bool next(MeasurementSnapshot& out);

  /// Records successfully decoded so far.
  [[nodiscard]] int rounds_read() const { return rounds_; }

  /// Corrupt records skipped so far (kSkipAndCount; 0 under kThrow). A
  /// damaged tail counts as one.
  [[nodiscard]] int corrupt_records() const { return corrupt_; }

 private:
  bool next_impl(MeasurementSnapshot& out);
  /// End the stream early over untrustworthy framing (kSkipAndCount).
  bool give_up_tail();

  void* file_ = nullptr;  ///< FILE*
  std::string scratch_;   ///< per-record decode buffer, capacity reused
  /// Total file size / bytes consumed so far (header + records). 64-bit
  /// so multi-GiB traces validate correctly on every platform.
  long long file_bytes_ = 0;
  long long consumed_ = 0;
  int rounds_ = 0;
  int corrupt_ = 0;  ///< corrupt records skipped (kSkipAndCount)
  OnCorruptRecord policy_ = OnCorruptRecord::kThrow;
  bool failed_ = false;  ///< poisoned by a record error; next() throws
};

/// Read a whole trace file into memory (TraceReader convenience). Under
/// kSkipAndCount the damaged records are skipped and, when
/// `corrupt_records` is non-null, counted into it (0 on a pristine file).
[[nodiscard]] std::vector<MeasurementSnapshot> read_trace(
    const std::string& path,
    OnCorruptRecord policy = OnCorruptRecord::kThrow,
    int* corrupt_records = nullptr);

/// Write a whole trace file (TraceWriter convenience).
void write_trace(const std::string& path,
                 const std::vector<MeasurementSnapshot>& rounds);

// ------------------------------------------------------------------ JSON

/// Serialize a trace as a JSON document: {"version":1,"rounds":[...]} with
/// each round in the MeasurementSnapshot::to_json schema. Doubles keep 17
/// significant digits, so the JSON path round-trips bit-exactly too.
[[nodiscard]] std::string trace_to_json(
    const std::vector<MeasurementSnapshot>& rounds);

/// Parse a document produced by trace_to_json().
/// @throws std::invalid_argument on malformed input or a version mismatch.
[[nodiscard]] std::vector<MeasurementSnapshot> trace_from_json(
    std::string_view text);

}  // namespace meshopt
