#pragma once
// Flat row-major dense matrix of doubles.
//
// The optimizer hot path (simplex tableau, extreme-point matrices, routing
// matrices) used to be vector<vector<double>>: every row a separate heap
// allocation, scattered across the address space. DenseMatrix stores all
// rows in one contiguous std::vector<double> with a fixed stride, so
//   * walking consecutive rows is a linear scan (prefetcher-friendly),
//   * a row is a plain double* the compiler can vectorize over,
//   * resizing to the same-or-smaller shape reuses capacity (no churn
//     when a solver re-runs on a same-shaped problem).
//
// The stride equals cols(): rows are packed back to back with no padding.

#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <vector>

namespace meshopt {

/// Row-major dense matrix over one contiguous buffer.
///
/// Invariants: data().size() == rows() * cols(); row r occupies
/// [data() + r*cols(), data() + (r+1)*cols()). An empty matrix has
/// rows() == 0 and keeps whatever column count it was last given.
class DenseMatrix {
 public:
  DenseMatrix() = default;

  /// rows x cols matrix filled with `fill`.
  DenseMatrix(int rows, int cols, double fill = 0.0)
      : rows_(rows < 0 ? 0 : rows),
        cols_(cols < 0 ? 0 : cols),
        data_(static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_),
              fill) {}

  /// Brace construction: DenseMatrix{{1, 2}, {3, 4}}. All rows must have
  /// the same length.
  DenseMatrix(std::initializer_list<std::initializer_list<double>> rows) {
    rows_ = static_cast<int>(rows.size());
    cols_ = rows_ > 0 ? static_cast<int>(rows.begin()->size()) : 0;
    data_.reserve(static_cast<std::size_t>(rows_) *
                  static_cast<std::size_t>(cols_));
    for (const auto& r : rows) {
      if (static_cast<int>(r.size()) != cols_)
        throw std::invalid_argument("DenseMatrix: ragged initializer");
      data_.insert(data_.end(), r.begin(), r.end());
    }
  }

  /// Copy a vector<vector<double>> (must be rectangular). Bridge for
  /// callers migrating off nested vectors.
  [[nodiscard]] static DenseMatrix from_nested(
      const std::vector<std::vector<double>>& nested) {
    DenseMatrix m;
    m.rows_ = static_cast<int>(nested.size());
    m.cols_ = m.rows_ > 0 ? static_cast<int>(nested.front().size()) : 0;
    m.data_.reserve(static_cast<std::size_t>(m.rows_) *
                    static_cast<std::size_t>(m.cols_));
    for (const auto& r : nested) {
      if (static_cast<int>(r.size()) != m.cols_)
        throw std::invalid_argument("DenseMatrix: ragged nested input");
      m.data_.insert(m.data_.end(), r.begin(), r.end());
    }
    return m;
  }

  /// Inverse bridge, for tests and legacy consumers.
  [[nodiscard]] std::vector<std::vector<double>> to_nested() const {
    std::vector<std::vector<double>> out(static_cast<std::size_t>(rows_));
    for (int r = 0; r < rows_; ++r)
      out[static_cast<std::size_t>(r)].assign(row(r), row(r) + cols_);
    return out;
  }

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  /// Elements per row in the backing buffer (== cols(): rows are packed).
  [[nodiscard]] int stride() const { return cols_; }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }

  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }

  /// Contiguous row pointer (cols() valid elements).
  [[nodiscard]] double* row(int r) {
    return data_.data() +
           static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_);
  }
  [[nodiscard]] const double* row(int r) const {
    return data_.data() +
           static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_);
  }

  [[nodiscard]] double& operator()(int r, int c) { return row(r)[c]; }
  [[nodiscard]] double operator()(int r, int c) const { return row(r)[c]; }

  /// Reshape to rows x cols, every element reset to `fill`. Capacity is
  /// reused, so repeated same-shape resizes do not allocate.
  void resize(int rows, int cols, double fill = 0.0) {
    rows_ = rows < 0 ? 0 : rows;
    cols_ = cols < 0 ? 0 : cols;
    data_.assign(
        static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_),
        fill);
  }

  /// Drop all rows but keep the column count and capacity.
  void clear() {
    rows_ = 0;
    data_.clear();
  }

  /// Append one zero-filled row and return its pointer for in-place fill.
  /// The matrix must have a column count (set via ctor/resize/set_cols).
  double* append_row() {
    data_.resize(data_.size() + static_cast<std::size_t>(cols_), 0.0);
    ++rows_;
    return row(rows_ - 1);
  }

  /// Append a row copied from `src` (cols() elements).
  void append_row(const double* src) {
    data_.insert(data_.end(), src, src + cols_);
    ++rows_;
  }

  /// Set the column count of an empty (no-row) matrix.
  void set_cols(int cols) {
    if (rows_ != 0) throw std::logic_error("DenseMatrix::set_cols: has rows");
    cols_ = cols < 0 ? 0 : cols;
  }

  friend bool operator==(const DenseMatrix& a, const DenseMatrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

}  // namespace meshopt
