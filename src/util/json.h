#pragma once
// Minimal JSON reader/writer for the control-plane serialization surface
// (MeasurementSnapshot and friends).
//
// Scope is deliberately small: one value type, a recursive-descent parser,
// and append-style writer helpers. Two properties matter here and are
// guaranteed:
//   * doubles round-trip exactly — the writer emits 17 significant digits
//     ("%.17g"), which IEEE-754 guarantees is enough for strtod to
//     reconstruct the identical bit pattern,
//   * object member order is preserved, so a serialize → parse →
//     serialize cycle is byte-stable (useful for golden fixtures).

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace meshopt {

/// One parsed JSON value (null / bool / number / string / array / object).
///
/// Numbers are stored as double; integers are exact up to 2^53, far beyond
/// anything in the snapshot schema. Accessors throw std::invalid_argument
/// on type mismatches so schema errors surface as exceptions, not UB.
class JsonValue {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  JsonValue() = default;

  /// Parse a complete JSON document (trailing garbage is an error).
  /// @throws std::invalid_argument on malformed input.
  [[nodiscard]] static JsonValue parse(std::string_view text);

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }

  /// @throws std::invalid_argument when the value is not a bool.
  [[nodiscard]] bool as_bool() const;
  /// @throws std::invalid_argument when the value is not a number.
  [[nodiscard]] double as_number() const;
  /// as_number() narrowed to int (truncating).
  /// @throws std::invalid_argument when the value does not fit an int.
  [[nodiscard]] int as_int() const;
  /// @throws std::invalid_argument when the value is not a string.
  [[nodiscard]] const std::string& as_string() const;

  /// Array elements. @throws std::invalid_argument when not an array.
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  /// Object members in document order.
  /// @throws std::invalid_argument when not an object.
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
  members() const;

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// Object member lookup. @throws std::invalid_argument when missing.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

// Append-style writer helpers. Callers assemble documents with ordinary
// string concatenation plus these three for the non-trivial token kinds.

/// Append `v` formatted with enough digits ("%.17g") that parsing returns
/// the bit-identical double. Non-finite values are emitted as null (JSON
/// has no inf/nan); the snapshot schema never produces them.
void json_append_double(std::string& out, double v);

/// Append `v` as a decimal integer literal.
void json_append_int(std::string& out, long long v);

/// Append `s` as a quoted, escaped JSON string.
void json_append_string(std::string& out, std::string_view s);

}  // namespace meshopt
