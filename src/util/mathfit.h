#pragma once
// Curve fitting helpers for the channel-loss estimator (Section 5.3 of the
// paper): least-squares fit of f(w) = a*ln(w) + b and the point of maximum
// curvature of that curve, plus the polygon-area helper used by the
// analytic FP/FN error computation (Section 4.4, Figure 6).

#include <span>
#include <utility>
#include <vector>

namespace meshopt {

/// Result of fitting f(w) = a*ln(w) + b.
struct LogFit {
  double a = 0.0;
  double b = 0.0;

  [[nodiscard]] double eval(double w) const;
};

/// Least-squares fit of y = a*ln(w) + b over samples (w_i > 0, y_i).
/// Throws std::invalid_argument for fewer than two points.
[[nodiscard]] LogFit fit_log_curve(std::span<const double> w,
                                   std::span<const double> y);

/// The w > 0 at which the curvature of f(w) = a*ln(w)+b is maximal,
/// clamped to [w_lo, w_hi].
///
/// kappa(w) = |f''| / (1 + f'^2)^{3/2} = |a| w / (w^2 + a^2)^{3/2},
/// maximized at w* = |a| / sqrt(2).
[[nodiscard]] double max_curvature_point(const LogFit& fit, double w_lo,
                                         double w_hi);

/// 2-D point for region-area computations.
struct Point2 {
  double x = 0.0;
  double y = 0.0;
};

/// Signed-area-free polygon area via the shoelace formula (vertices in
/// order, either orientation).
[[nodiscard]] double polygon_area(std::span<const Point2> vertices);

}  // namespace meshopt
