#include "util/json.h"

#include <climits>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace meshopt {

namespace {

[[noreturn]] void fail(const char* what) {
  throw std::invalid_argument(std::string("json: ") + what);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) fail("not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) fail("not a number");
  return number_;
}

int JsonValue::as_int() const {
  const double v = as_number();
  // Bounds exclusive of the ends: INT_MAX + 1 is exactly representable
  // and anything in (INT_MIN - 1, INT_MAX + 1) truncates into range.
  // Out-of-range float-to-int conversion is UB, so check first.
  constexpr double kLo = static_cast<double>(INT_MIN) - 1.0;
  constexpr double kHi = static_cast<double>(INT_MAX) + 1.0;
  if (!(v > kLo && v < kHi)) fail("number out of int range");
  return static_cast<int>(v);
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) fail("not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::kArray) fail("not an array");
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (type_ != Type::kObject) fail("not an object");
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) fail("missing object member");
  return *v;
}

/// Recursive-descent parser over a string_view cursor.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
      case '[': {
        // Containers recurse; cap the depth so a hostile document fails
        // with the documented exception instead of overflowing the stack.
        // The snapshot schema needs depth 3.
        if (depth_ >= kMaxDepth) fail("nesting too deep");
        ++depth_;
        JsonValue v = c == '{' ? object() : array();
        --depth_;
        return v;
      }
      case '"': {
        JsonValue v;
        v.type_ = JsonValue::Type::kString;
        v.string_ = string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        JsonValue v;
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        JsonValue v;
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = false;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default:
        return number();
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object_.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array_.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"':
        case '\\':
        case '/':
          out.push_back(c);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9')
              cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (the snapshot schema is
          // ASCII-only; surrogate pairs are rejected rather than decoded).
          if (cp >= 0xD800 && cp <= 0xDFFF) fail("surrogates unsupported");
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    // strtod would accept a leading '+' (and locale oddities); JSON does
    // not, so reject it before the scan.
    if (peek() == '+') fail("malformed number");
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    // strtod needs NUL termination; numbers are short, copy locally.
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) fail("malformed number");
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    v.number_ = d;
    return v;
  }

  static constexpr int kMaxDepth = 64;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).run();
}

void json_append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void json_append_int(std::string& out, long long v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", v);
  out += buf;
}

void json_append_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace meshopt
