#include "util/mathfit.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace meshopt {

double LogFit::eval(double w) const { return a * std::log(w) + b; }

LogFit fit_log_curve(std::span<const double> w, std::span<const double> y) {
  if (w.size() != y.size())
    throw std::invalid_argument("fit_log_curve: size mismatch");
  if (w.size() < 2)
    throw std::invalid_argument("fit_log_curve: need at least two points");

  // Ordinary least squares on x = ln(w).
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  const auto n = static_cast<double>(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (w[i] <= 0.0)
      throw std::invalid_argument("fit_log_curve: w must be positive");
    const double x = std::log(w[i]);
    sx += x;
    sy += y[i];
    sxx += x * x;
    sxy += x * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LogFit fit;
  if (std::abs(denom) < 1e-12) {
    fit.a = 0.0;
    fit.b = sy / n;
  } else {
    fit.a = (n * sxy - sx * sy) / denom;
    fit.b = (sy - fit.a * sx) / n;
  }
  return fit;
}

double max_curvature_point(const LogFit& fit, double w_lo, double w_hi) {
  if (w_lo > w_hi) std::swap(w_lo, w_hi);
  const double a = std::abs(fit.a);
  if (a < 1e-15) return w_lo;  // flat curve: earliest point
  const double w_star = a / std::sqrt(2.0);
  return std::clamp(w_star, w_lo, w_hi);
}

double polygon_area(std::span<const Point2> v) {
  if (v.size() < 3) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const Point2& p = v[i];
    const Point2& q = v[(i + 1) % v.size()];
    acc += p.x * q.y - q.x * p.y;
  }
  return std::abs(acc) * 0.5;
}

}  // namespace meshopt
