#pragma once
// Parallel scenario sweeps on a persistent work-stealing thread pool.
//
// A sweep is N independent jobs (typically: build a Workbench/Testbed,
// run a scenario, reduce to a result struct). Two properties make sweeps
// safe to parallelize here:
//   * every job gets its own RNG seed derived from (master_seed, index)
//     with the same splitmix64 mixing RngStream uses, so a job's stream
//     never depends on which thread ran it or in what order,
//   * results land in a pre-sized vector at the job's index, so the output
//     is in job order regardless of completion order.
// Together they make an 8-thread sweep bit-for-bit identical to running
// the same jobs sequentially — including with work stealing, which only
// changes WHERE a job runs, never its seed or result slot.
//
// Pool design: worker threads are created once per SweepRunner and parked
// on a condition variable between runs, so many-small-cell grids stop
// paying thread spawn/join per sweep. Each run partitions the job indices
// into per-worker Chase–Lev deques (work_steal_queue.h); a worker drains
// its own deque LIFO and steals FIFO from the others when it runs dry.
// The calling thread participates as worker 0.

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "sweep/work_steal_queue.h"
#include "util/rng.h"

namespace meshopt {

/// One cell of a sweep.
struct SweepJob {
  int index = 0;           ///< position in the sweep, [0, count)
  std::uint64_t seed = 0;  ///< per-run seed, mix(master_seed, index)
};

/// Deterministic parallel job runner with a persistent worker pool.
///
/// Thread-safety: a SweepRunner may be shared across sequential runs but
/// not concurrent ones — run()/run_raw() must not be called from two
/// threads at once (nor re-entrantly from inside a job).
class SweepRunner {
 public:
  /// `threads` <= 0 selects the hardware concurrency (at least 1). The
  /// pool spawns threads - 1 background workers immediately; they park on
  /// a condition variable while no sweep is running.
  explicit SweepRunner(int threads = 0);
  ~SweepRunner();

  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  /// Total workers per run, including the calling thread.
  [[nodiscard]] int threads() const { return threads_; }

  /// Run `count` jobs of `fn` and collect the results in job order.
  ///
  /// `fn` must be callable as R(const SweepJob&) with R movable and
  /// default-constructible; it runs concurrently on pool threads, so it
  /// must not touch shared mutable state. The first exception thrown by a
  /// job is rethrown here after all workers finish (remaining jobs still
  /// run, matching serial semantics as closely as possible).
  ///
  /// @post result.size() == max(count, 0); result[i] is fn's value for
  ///       job i regardless of which worker executed it.
  template <typename Fn>
  auto run(int count, std::uint64_t master_seed, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, const SweepJob&>> {
    using R = std::invoke_result_t<Fn&, const SweepJob&>;
    std::vector<R> out(static_cast<std::size_t>(count > 0 ? count : 0));
    run_raw(count, master_seed, [&out, &fn](const SweepJob& job) {
      out[static_cast<std::size_t>(job.index)] = fn(job);
    });
    return out;
  }

  /// Untyped variant: `fn` stores its own results (indexed by job.index).
  void run_raw(int count, std::uint64_t master_seed,
               const std::function<void(const SweepJob&)>& fn);

  /// The seed job `index` of a sweep over `master_seed` receives.
  [[nodiscard]] static std::uint64_t job_seed(std::uint64_t master_seed,
                                              int index) {
    return RngStream::mix(master_seed, static_cast<std::uint64_t>(index));
  }

 private:
  void worker_loop(int self);
  /// Drain phase one worker runs for the current epoch: own deque first,
  /// then steal; exits after a scan proves no stealable work remains
  /// anywhere (idle workers park instead of spinning on stragglers).
  void drain(int self);
  void execute(int index);

  int threads_;
  std::vector<WorkStealQueue> queues_;  ///< one per worker, index-aligned
  std::vector<std::thread> pool_;       ///< threads_ - 1 background workers

  std::mutex mu_;                   ///< guards epoch/fn handoff + finish count
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t epoch_ = 0;
  int finished_workers_ = 0;
  bool stop_ = false;

  const std::function<void(const SweepJob&)>* fn_ = nullptr;
  std::uint64_t master_seed_ = 0;

  std::mutex error_mu_;
  std::exception_ptr first_error_;
};

}  // namespace meshopt
