#pragma once
// Parallel scenario sweeps.
//
// A sweep is N independent jobs (typically: build a Workbench/Testbed,
// run a scenario, reduce to a result struct) executed on a pool of worker
// threads. Two properties make sweeps safe to parallelize here:
//   * every job gets its own RNG seed derived from (master_seed, index)
//     with the same splitmix64 mixing RngStream uses, so a job's stream
//     never depends on which thread ran it or in what order,
//   * results land in a pre-sized vector at the job's index, so the output
//     is in job order regardless of completion order.
// Together they make an 8-thread sweep bit-for-bit identical to running
// the same jobs sequentially.

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace meshopt {

/// One cell of a sweep.
struct SweepJob {
  int index = 0;           ///< position in the sweep, [0, count)
  std::uint64_t seed = 0;  ///< per-run seed, mix(master_seed, index)
};

class SweepRunner {
 public:
  /// `threads` <= 0 selects the hardware concurrency (at least 1).
  explicit SweepRunner(int threads = 0);

  [[nodiscard]] int threads() const { return threads_; }

  /// Run `count` jobs of `fn` and collect the results in job order.
  /// `fn` must be callable as R(const SweepJob&) with R movable and
  /// default-constructible; it runs concurrently on pool threads, so it
  /// must not touch shared mutable state. The first exception thrown by a
  /// job is rethrown here after all workers finish.
  template <typename Fn>
  auto run(int count, std::uint64_t master_seed, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, const SweepJob&>> {
    using R = std::invoke_result_t<Fn&, const SweepJob&>;
    std::vector<R> out(static_cast<std::size_t>(count > 0 ? count : 0));
    run_raw(count, master_seed, [&out, &fn](const SweepJob& job) {
      out[static_cast<std::size_t>(job.index)] = fn(job);
    });
    return out;
  }

  /// Untyped variant: `fn` stores its own results (indexed by job.index).
  void run_raw(int count, std::uint64_t master_seed,
               const std::function<void(const SweepJob&)>& fn);

  /// The seed job `index` of a sweep over `master_seed` receives.
  [[nodiscard]] static std::uint64_t job_seed(std::uint64_t master_seed,
                                              int index) {
    return RngStream::mix(master_seed, static_cast<std::uint64_t>(index));
  }

 private:
  int threads_;
};

}  // namespace meshopt
