#pragma once
// Chase–Lev-style work-stealing deque of job indices, specialized for the
// sweep pool's "fill once, drain concurrently" pattern.
//
// The general Chase–Lev structure supports concurrent owner pushes; the
// sweep pool never needs them — every run's job list is known up front —
// so the deque here is bounded and filled by the coordinating thread
// BEFORE workers are released (the pool's epoch handshake publishes the
// fill). After that only two operations run concurrently:
//   * pop():   the owning worker removes from the bottom (LIFO),
//   * steal(): any other worker removes from the top (FIFO).
// They may race on the last remaining element; the seq-cst fence + CAS
// protocol of Chase & Lev (SPAA 2005), with the memory orders of
// Lê et al. (PPoPP 2013), guarantees each element is handed out exactly
// once. With no concurrent push there is no buffer-reuse ABA to defend
// against, so indices never wrap and the buffer is a plain vector.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace meshopt {

/// Fixed-content single-owner work-stealing deque of ints.
class WorkStealQueue {
 public:
  /// Replace the contents with `count` values from `src`. Must only be
  /// called while no worker is popping/stealing (between pool epochs);
  /// the caller's release of the pool mutex publishes the fill.
  void fill(const int* src, int count) {
    buf_.assign(src, src + count);
    top_.store(0, std::memory_order_relaxed);
    bottom_.store(count, std::memory_order_relaxed);
  }

  /// Owner-side removal from the bottom. Returns false when the deque is
  /// empty (or the last element was lost to a concurrent steal).
  bool pop(int& out) {
    std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t <= b) {
      out = buf_[static_cast<std::size_t>(b)];
      if (t == b) {
        // Last element: race the thieves for it.
        const bool won = top_.compare_exchange_strong(
            t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
        bottom_.store(b + 1, std::memory_order_relaxed);
        return won;
      }
      return true;
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
    return false;
  }

  /// Thief-side steal() outcome. kEmpty is definitive: the queue had no
  /// stealable element at the snapshot, and (since nothing is pushed
  /// after the pre-run fill) it never will again. kLost means the CAS
  /// race went to a concurrent pop/steal — someone else made progress,
  /// so the caller should rescan rather than conclude the sweep drained.
  enum class Steal : std::uint8_t { kGot, kEmpty, kLost };

  /// Thief-side removal from the top.
  Steal steal(int& out) {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t < b) {
      out = buf_[static_cast<std::size_t>(t)];
      return top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)
                 ? Steal::kGot
                 : Steal::kLost;
    }
    return Steal::kEmpty;
  }

 private:
  std::vector<int> buf_;
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
};

}  // namespace meshopt
