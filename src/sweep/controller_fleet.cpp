#include "sweep/controller_fleet.h"

#include <memory>
#include <stdexcept>
#include <string>

#include "transport/udp.h"

namespace meshopt {

namespace {

FleetResult run_cell(const FleetCell& cell, const SweepJob& job) {
  if (!cell.build_topology)
    throw std::invalid_argument("FleetCell: build_topology is required");

  Workbench wb(job.seed);
  cell.build_topology(wb);

  MeshController ctl(wb.net(), cell.controller, job.seed);
  std::vector<std::unique_ptr<UdpSource>> sources;
  sources.reserve(cell.flows.size());
  for (std::size_t i = 0; i < cell.flows.size(); ++i) {
    const FleetFlow& f = cell.flows[i];
    if (f.path.size() < 2)
      throw std::invalid_argument(
          "FleetFlow: path needs at least src and dst");
    ManagedFlow mf;
    mf.flow_id = wb.net().open_flow(f.path.front(), f.path.back(),
                                    Protocol::kUdp, f.payload_bytes);
    mf.path = f.path;
    mf.rate = f.rate;
    mf.is_tcp = f.is_tcp;
    if (f.input_bps > 0.0) {
      auto src = std::make_unique<UdpSource>(
          wb.net(), mf.flow_id, UdpMode::kCbr, f.input_bps,
          RngStream(job.seed, "fleet-src-" + std::to_string(i)));
      UdpSource* raw = src.get();
      mf.apply_rate = [raw](double x_bps) { raw->set_rate_bps(x_bps); };
      sources.push_back(std::move(src));
    }
    ctl.manage_flow(mf);
  }
  if (!cell.lir.empty()) ctl.set_lir_table(cell.lir, cell.lir_threshold);

  for (auto& src : sources) src->start();
  if (cell.settle_s > 0.0) wb.run_for(cell.settle_s);

  FleetResult result;
  result.index = job.index;
  result.seed = job.seed;
  const int rounds = cell.rounds > 0 ? cell.rounds : 1;
  for (int r = 0; r < rounds; ++r) {
    const RoundResult round = ctl.run_round(wb);
    result.ok = round.ok;
  }
  ctl.stop_probing();
  for (auto& src : sources) src->stop();

  result.snapshot = ctl.snapshot();
  result.plan = ctl.last_plan();
  return result;
}

ReplayResult run_replay_cell(const ReplayCell& cell,
                             const std::vector<MeasurementSnapshot>& trace,
                             int index) {
  ReplayResult result;
  result.index = index;
  result.plans.reserve(trace.size());

  // The shared rounds are walked by reference — no snapshot (or LIR
  // matrix) is copied per cell or per round. Consumers that want the
  // cursor abstraction use a TraceSource over the same storage; the
  // fleet's inner loop is the hot path, so it iterates directly.
  bool all_ok = !trace.empty();
  for (const MeasurementSnapshot& snap : trace) {
    const InterferenceModel model =
        InterferenceModel::build(snap, cell.interference);
    result.plans.push_back(plan_rates(snap, model, cell.flows, cell.plan));
    all_ok = all_ok && result.plans.back().ok;
  }
  result.ok = all_ok;
  return result;
}

}  // namespace

std::vector<FleetResult> ControllerFleet::run(
    const std::vector<FleetCell>& cells, std::uint64_t master_seed) {
  return runner_.run(static_cast<int>(cells.size()), master_seed,
                     [&cells](const SweepJob& job) {
                       return run_cell(
                           cells[static_cast<std::size_t>(job.index)], job);
                     });
}

std::vector<ReplayResult> ControllerFleet::replay(
    const std::vector<ReplayCell>& cells,
    const std::vector<MeasurementSnapshot>& trace) {
  // Replay draws no randomness; the pool's per-job seed is unused.
  return runner_.run(static_cast<int>(cells.size()), /*master_seed=*/0,
                     [&cells, &trace](const SweepJob& job) {
                       return run_replay_cell(
                           cells[static_cast<std::size_t>(job.index)], trace,
                           job.index);
                     });
}

}  // namespace meshopt
