#include "sweep/controller_fleet.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/guard.h"
#include "core/planner.h"
#include "obs/obs.h"
#include "probe/live_source.h"
#include "transport/udp.h"

namespace meshopt {

namespace {

FleetResult run_cell(const FleetCell& cell, const SweepJob& job,
                     TraceRecorder* obs) {
  if (!cell.build_topology)
    throw std::invalid_argument("FleetCell: build_topology is required");

  Workbench wb(job.seed);
  cell.build_topology(wb);

  // Dynamics, when configured, are generated from the cell's derived seed
  // and armed before any traffic or probing starts, so every event lands
  // at the same simulated time whatever thread runs the cell.
  std::optional<DynamicsEngine> dynamics;
  if (cell.dynamics) {
    dynamics.emplace(wb, cell.dynamics(job.seed));
    dynamics->arm();
  }

  MeshController ctl(wb.net(), cell.controller, job.seed);
  if (obs != nullptr)
    ctl.set_observer(obs, static_cast<std::uint32_t>(job.index));
  const bool guarded = cell.guarded || static_cast<bool>(cell.faults);
  if (guarded) ctl.set_guard(cell.guard);

  // The engine outlives the apply callbacks that consult it; it is only
  // engaged (engine.has_value()) for fault cells, after the flows exist.
  std::optional<FaultEngine> engine;

  std::vector<std::unique_ptr<UdpSource>> sources;
  sources.reserve(cell.flows.size());
  for (std::size_t i = 0; i < cell.flows.size(); ++i) {
    const FleetFlow& f = cell.flows[i];
    if (f.path.size() < 2)
      throw std::invalid_argument(
          "FleetFlow: path needs at least src and dst");
    ManagedFlow mf;
    mf.flow_id = wb.net().open_flow(f.path.front(), f.path.back(),
                                    Protocol::kUdp, f.payload_bytes);
    mf.path = f.path;
    mf.rate = f.rate;
    mf.is_tcp = f.is_tcp;
    if (f.input_bps > 0.0) {
      auto src = std::make_unique<UdpSource>(
          wb.net(), mf.flow_id, UdpMode::kCbr, f.input_bps,
          RngStream(job.seed, "fleet-src-" + std::to_string(i)));
      UdpSource* raw = src.get();
      // Scripted kApplyFailure rounds make every shaper program throw —
      // the actuation-path fault the guarded controller must absorb
      // (apply_plan_checked counts it and the loop falls back).
      mf.apply_rate = [raw, &engine](double x_bps) {
        if (engine.has_value() && engine->apply_fault_now())
          throw std::runtime_error("fault: scripted shaper apply failure");
        raw->set_rate_bps(x_bps);
      };
      sources.push_back(std::move(src));
    }
    ctl.manage_flow(mf);
  }
  if (!cell.lir.empty()) ctl.set_lir_table(cell.lir, cell.lir_threshold);

  for (auto& src : sources) src->start();
  if (cell.settle_s > 0.0) wb.run_for(cell.settle_s);

  FleetResult result;
  result.index = job.index;
  result.seed = job.seed;
  const int rounds = cell.rounds > 0 ? cell.rounds : 1;
  if (guarded) {
    // The guarded loop pulls windows through the SnapshotSource chain:
    // LiveSource (probing-window simulation), optionally wrapped by the
    // cell's FaultEngine. Faults are generated from the cell seed, so a
    // fault study is bit-identical across thread counts like everything
    // else on the pool.
    LiveSource live(wb, ctl);
    SnapshotSource* source = &live;
    if (cell.faults) {
      engine.emplace(&live, cell.faults(job.seed));
      source = &*engine;
    }
    for (int r = 0; r < rounds; ++r) {
      const RoundResult round = ctl.guarded_round(*source);
      result.ok = round.ok;
    }
    result.health = ctl.health_stats();
    result.health_state = ctl.health();
  } else {
    for (int r = 0; r < rounds; ++r) {
      const RoundResult round = ctl.run_round(wb);
      result.ok = round.ok;
    }
  }
  ctl.stop_probing();
  for (auto& src : sources) src->stop();

  result.snapshot = ctl.snapshot();
  result.plan = ctl.last_plan();
  return result;
}

/// One guarded replay round: validate (repairing a copy), plan with the
/// cache kept read-only for repaired inputs, guardrail the plan. Rejected
/// snapshots and rejected plans yield a default (ok == false) RatePlan —
/// a pure function of the round's snapshot, so segment sharding stays
/// bit-identical (no last-known-good hold, no backoff; that state lives
/// only in the live controller loop).
/// PlannerT is Planner or DecomposedPlanner (identical plan() contracts).
template <typename PlannerT>
RatePlan guarded_replay_round(PlannerT& planner, const ReplayCell& cell,
                              const MeasurementSnapshot& round,
                              std::size_t mis_cap) {
  MeasurementSnapshot snap = round;  // the repair tier mutates its copy
  const SnapshotValidator validator(cell.guard.snapshot);
  const ValidationReport report = validator.validate(snap);
  if (!report.usable()) return RatePlan{};
  const bool clean = report.verdict == SnapshotVerdict::kClean;
  RatePlan plan = planner.plan(snap, cell.interference, cell.flows,
                               cell.plan, mis_cap, /*cacheable=*/clean);
  const PlanValidator guard(cell.guard.plan);
  if (!guard.validate(plan, snap, cell.flows).ok) return RatePlan{};
  return plan;
}

/// The shared segment walk, over either planner front end. When observed,
/// the recorder's ambient context tracks (lane = cell, round) so the
/// planner's cache/model/pricing records land on the round they belong to.
template <typename PlannerT>
void replay_segment(PlannerT& planner, const ReplayCell& cell,
                    const std::vector<MeasurementSnapshot>& trace, int lo,
                    int hi, std::size_t mis_cap, std::vector<RatePlan>& plans,
                    TraceRecorder* obs, std::uint32_t lane) {
  for (int r = lo; r < hi; ++r) {
    if (obs != nullptr) obs->set_context(lane, static_cast<std::uint64_t>(r));
    const MeasurementSnapshot& round = trace[static_cast<std::size_t>(r)];
    plans[static_cast<std::size_t>(r)] =
        cell.guarded
            ? guarded_replay_round(planner, cell, round, mis_cap)
            : planner.plan(round, cell.interference, cell.flows, cell.plan,
                           mis_cap);
  }
}

}  // namespace

std::vector<FleetResult> ControllerFleet::run(
    const std::vector<FleetCell>& cells, std::uint64_t master_seed) {
  // Job-local recorders: each pool job traces into its own recorder, and
  // the slots are absorbed in cell order after the barrier — the trace
  // stays bit-identical across thread counts (see set_observer()).
  std::vector<std::unique_ptr<TraceRecorder>> locals;
  if (obs_ != nullptr) locals.resize(cells.size());

  std::vector<FleetResult> results = runner_.run(
      static_cast<int>(cells.size()), master_seed,
      [&cells, &locals, this](const SweepJob& job) {
        TraceRecorder* local = nullptr;
        if (obs_ != nullptr) {
          auto& slot = locals[static_cast<std::size_t>(job.index)];
          slot = std::make_unique<TraceRecorder>(obs_->config());
          local = slot.get();
          local->set_context(static_cast<std::uint32_t>(job.index), 0);
        }
        // Cell isolation: a throwing cell reports its error and every
        // other cell completes normally. The caught texts are
        // deterministic (every exception on this path is a pure function
        // of the cell's inputs and seed), so fleet outputs stay
        // bit-identical across thread counts even with failing cells.
        try {
          return run_cell(cells[static_cast<std::size_t>(job.index)], job,
                          local);
        } catch (const std::exception& e) {
          if (local != nullptr)
            local->trigger_incident(ObsCode::kCellError, e.what());
          FleetResult failed;
          failed.index = job.index;
          failed.seed = job.seed;
          failed.error = e.what();
          return failed;
        }
      });

  if (obs_ != nullptr) {
    for (auto& local : locals)
      if (local) obs_->absorb(*local);
  }
  return results;
}

std::vector<ReplayResult> ControllerFleet::replay(
    const std::vector<ReplayCell>& cells,
    const std::vector<MeasurementSnapshot>& trace, const ReplayOptions& opts) {
  const int rounds = static_cast<int>(trace.size());
  const int seg =
      opts.segment_rounds > 0 ? opts.segment_rounds : std::max(rounds, 1);

  // One pool job per (cell, contiguous trace segment). Each job plans its
  // rounds into the cell's pre-sized plans vector at the round's index, so
  // segments stitch in round order by construction and no two jobs touch
  // the same element.
  struct Segment {
    int cell = 0;
    int lo = 0;
    int hi = 0;
  };
  std::vector<Segment> jobs;
  for (int c = 0; c < static_cast<int>(cells.size()); ++c) {
    for (int lo = 0; lo < rounds; lo += seg)
      jobs.push_back({c, lo, std::min(lo + seg, rounds)});
  }

  std::vector<ReplayResult> results(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    results[c].index = static_cast<int>(c);
    results[c].plans.resize(static_cast<std::size_t>(rounds));
  }
  // Empty trace: results are already complete (no plans, ok = false below)
  // — nothing to dispatch.
  if (jobs.empty()) return results;

  // Segment isolation: a throwing segment records its error here (indexed
  // by job, so no two workers write the same slot) and leaves its rounds
  // at default plans; other segments — including the same cell's — finish.
  std::vector<std::string> segment_errors(jobs.size());

  // Job-local recorders, absorbed in job order after the barrier (jobs
  // were emitted in (cell, lo) order, so absorption is round-ordered per
  // lane whatever thread count ran them).
  std::vector<std::unique_ptr<TraceRecorder>> locals;
  if (obs_ != nullptr) locals.resize(jobs.size());

  // Replay draws no randomness; the pool's per-job seed is unused. The
  // shared rounds are walked by reference — no snapshot (or LIR matrix)
  // is copied per cell, segment, or round (guarded cells copy one
  // snapshot per round for the validator's repair tier).
  runner_.run_raw(
      static_cast<int>(jobs.size()), /*master_seed=*/0,
      [&jobs, &cells, &trace, &results, &segment_errors, &locals, &opts,
       this](const SweepJob& job) {
        const Segment& sj = jobs[static_cast<std::size_t>(job.index)];
        const ReplayCell& cell = cells[static_cast<std::size_t>(sj.cell)];
        std::vector<RatePlan>& plans =
            results[static_cast<std::size_t>(sj.cell)].plans;
        const auto lane = static_cast<std::uint32_t>(sj.cell);
        TraceRecorder* local = nullptr;
        if (obs_ != nullptr) {
          auto& slot = locals[static_cast<std::size_t>(job.index)];
          slot = std::make_unique<TraceRecorder>(obs_->config());
          local = slot.get();
          local->set_context(lane, static_cast<std::uint64_t>(sj.lo));
        }
        const std::uint64_t seg_t0 =
            local != nullptr ? local->now_ns() : 0;
        try {
          if (opts.decompose) {
            // Embedded without a nested pool: this job IS a pool job, and
            // SweepRunner is not re-entrant. Per-component parallelism is
            // for direct (non-fleet) DecomposedPlanner use; here the win
            // is the per-component model/solve scaling itself.
            DecomposedPlanner planner(opts.decompose_config,
                                      /*pool=*/nullptr);
            planner.set_observer(local);
            replay_segment(planner, cell, trace, sj.lo, sj.hi, opts.mis_cap,
                           plans, local, lane);
          } else {
            Planner planner(opts.planner_cache);
            planner.set_observer(local);
            replay_segment(planner, cell, trace, sj.lo, sj.hi, opts.mis_cap,
                           plans, local, lane);
          }
          if (local != nullptr) {
            // One kSegment span per pool job, stamped at the segment's
            // first round; payload = the [lo, hi) round range.
            const std::uint64_t t1 = local->now_ns();
            local->set_context(lane, static_cast<std::uint64_t>(sj.lo));
            local->emit(ObsStage::kSegment, ObsKind::kSpan, ObsCode::kNone,
                        static_cast<std::uint64_t>(sj.lo),
                        static_cast<std::uint64_t>(sj.hi), seg_t0,
                        t1 >= seg_t0 ? t1 - seg_t0 : 0);
          }
        } catch (const std::exception& e) {
          // Reset the whole segment: rounds planned before the throw must
          // not leak partial output (the documented contract is "a failed
          // segment's rounds keep default plans").
          for (int r = sj.lo; r < sj.hi; ++r)
            plans[static_cast<std::size_t>(r)] = RatePlan{};
          segment_errors[static_cast<std::size_t>(job.index)] = e.what();
          if (local != nullptr)
            local->trigger_incident(ObsCode::kCellError, e.what());
        }
      });

  if (obs_ != nullptr) {
    for (auto& local : locals)
      if (local) obs_->absorb(*local);
  }

  // Surface each cell's first (lowest-round) segment error; jobs were
  // emitted in (cell, lo) order, so the first non-empty slot per cell is
  // the lowest-round one whatever thread count ran them.
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (segment_errors[j].empty()) continue;
    ReplayResult& result = results[static_cast<std::size_t>(jobs[j].cell)];
    if (result.error.empty()) result.error = std::move(segment_errors[j]);
  }

  for (ReplayResult& result : results) {
    result.ok = rounds > 0 && result.error.empty();
    for (const RatePlan& plan : result.plans)
      result.ok = result.ok && plan.ok;
  }
  return results;
}

std::vector<ReplayResult> ControllerFleet::replay_file(
    const std::vector<ReplayCell>& cells, const std::string& trace_path,
    const ReplayOptions& opts) {
  return replay(cells, read_trace(trace_path, opts.on_corrupt_record), opts);
}

}  // namespace meshopt
