#include "sweep/controller_fleet.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/planner.h"
#include "transport/udp.h"

namespace meshopt {

namespace {

FleetResult run_cell(const FleetCell& cell, const SweepJob& job) {
  if (!cell.build_topology)
    throw std::invalid_argument("FleetCell: build_topology is required");

  Workbench wb(job.seed);
  cell.build_topology(wb);

  // Dynamics, when configured, are generated from the cell's derived seed
  // and armed before any traffic or probing starts, so every event lands
  // at the same simulated time whatever thread runs the cell.
  std::optional<DynamicsEngine> dynamics;
  if (cell.dynamics) {
    dynamics.emplace(wb, cell.dynamics(job.seed));
    dynamics->arm();
  }

  MeshController ctl(wb.net(), cell.controller, job.seed);
  std::vector<std::unique_ptr<UdpSource>> sources;
  sources.reserve(cell.flows.size());
  for (std::size_t i = 0; i < cell.flows.size(); ++i) {
    const FleetFlow& f = cell.flows[i];
    if (f.path.size() < 2)
      throw std::invalid_argument(
          "FleetFlow: path needs at least src and dst");
    ManagedFlow mf;
    mf.flow_id = wb.net().open_flow(f.path.front(), f.path.back(),
                                    Protocol::kUdp, f.payload_bytes);
    mf.path = f.path;
    mf.rate = f.rate;
    mf.is_tcp = f.is_tcp;
    if (f.input_bps > 0.0) {
      auto src = std::make_unique<UdpSource>(
          wb.net(), mf.flow_id, UdpMode::kCbr, f.input_bps,
          RngStream(job.seed, "fleet-src-" + std::to_string(i)));
      UdpSource* raw = src.get();
      mf.apply_rate = [raw](double x_bps) { raw->set_rate_bps(x_bps); };
      sources.push_back(std::move(src));
    }
    ctl.manage_flow(mf);
  }
  if (!cell.lir.empty()) ctl.set_lir_table(cell.lir, cell.lir_threshold);

  for (auto& src : sources) src->start();
  if (cell.settle_s > 0.0) wb.run_for(cell.settle_s);

  FleetResult result;
  result.index = job.index;
  result.seed = job.seed;
  const int rounds = cell.rounds > 0 ? cell.rounds : 1;
  for (int r = 0; r < rounds; ++r) {
    const RoundResult round = ctl.run_round(wb);
    result.ok = round.ok;
  }
  ctl.stop_probing();
  for (auto& src : sources) src->stop();

  result.snapshot = ctl.snapshot();
  result.plan = ctl.last_plan();
  return result;
}

}  // namespace

std::vector<FleetResult> ControllerFleet::run(
    const std::vector<FleetCell>& cells, std::uint64_t master_seed) {
  return runner_.run(static_cast<int>(cells.size()), master_seed,
                     [&cells](const SweepJob& job) {
                       return run_cell(
                           cells[static_cast<std::size_t>(job.index)], job);
                     });
}

std::vector<ReplayResult> ControllerFleet::replay(
    const std::vector<ReplayCell>& cells,
    const std::vector<MeasurementSnapshot>& trace, const ReplayOptions& opts) {
  const int rounds = static_cast<int>(trace.size());
  const int seg =
      opts.segment_rounds > 0 ? opts.segment_rounds : std::max(rounds, 1);

  // One pool job per (cell, contiguous trace segment). Each job plans its
  // rounds into the cell's pre-sized plans vector at the round's index, so
  // segments stitch in round order by construction and no two jobs touch
  // the same element.
  struct Segment {
    int cell = 0;
    int lo = 0;
    int hi = 0;
  };
  std::vector<Segment> jobs;
  for (int c = 0; c < static_cast<int>(cells.size()); ++c) {
    for (int lo = 0; lo < rounds; lo += seg)
      jobs.push_back({c, lo, std::min(lo + seg, rounds)});
  }

  std::vector<ReplayResult> results(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    results[c].index = static_cast<int>(c);
    results[c].plans.resize(static_cast<std::size_t>(rounds));
  }
  // Empty trace: results are already complete (no plans, ok = false below)
  // — nothing to dispatch.
  if (jobs.empty()) return results;

  // Replay draws no randomness; the pool's per-job seed is unused. The
  // shared rounds are walked by reference — no snapshot (or LIR matrix)
  // is copied per cell, segment, or round.
  runner_.run_raw(static_cast<int>(jobs.size()), /*master_seed=*/0,
                  [&jobs, &cells, &trace, &results,
                   &opts](const SweepJob& job) {
                    const Segment& sj =
                        jobs[static_cast<std::size_t>(job.index)];
                    const ReplayCell& cell =
                        cells[static_cast<std::size_t>(sj.cell)];
                    std::vector<RatePlan>& plans =
                        results[static_cast<std::size_t>(sj.cell)].plans;
                    Planner planner(opts.planner_cache);
                    for (int r = sj.lo; r < sj.hi; ++r) {
                      plans[static_cast<std::size_t>(r)] =
                          planner.plan(trace[static_cast<std::size_t>(r)],
                                       cell.interference, cell.flows,
                                       cell.plan);
                    }
                  });

  for (ReplayResult& result : results) {
    result.ok = rounds > 0;
    for (const RatePlan& plan : result.plans)
      result.ok = result.ok && plan.ok;
  }
  return results;
}

}  // namespace meshopt
