#pragma once
// ControllerFleet — fleet-scale driver for the staged control plane.
//
// A fleet experiment is N independent controller loops — each with its
// own Workbench (simulator + channel + network), its own MeshController,
// and its own derived RNG stream — executed across the persistent
// work-stealing SweepRunner. One call covers a whole scenario grid
// (topology × traffic × interference model × objective), and the results
// are bit-for-bit identical whatever the thread count, for the same
// reasons the sweep pool is deterministic: per-cell seeds depend only on
// (master_seed, index), and results land at their cell's index.
//
// Each cell's result carries the final round's MeasurementSnapshot and
// RatePlan — the full value-type record of what the controller measured
// and decided — so fleet outputs can be serialized, replayed, or compared
// offline without re-running the simulations.
//
// Replay mode (see ARCHITECTURE.md, "Trace & replay"): replay() plans a
// recorded trace under a grid of objective/interference/flow variants
// instead of simulating anything. Every cell walks the SAME shared
// rounds by reference (zero copies), so an entire topology×objective
// grid is pure plan_rates() work on the pool — no Simulator, no
// Workbench, no RNG. One expensive recording run (a live fleet or a
// MeshController in record_to() mode) then amortizes over thousands of
// cheap planning runs, the record/replay methodology of fairness
// studies over measured traces (arXiv:1002.1581).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/controller.h"
#include "opt/decompose.h"
#include "scenario/dynamics.h"
#include "scenario/faults.h"
#include "sweep/sweep_runner.h"
#include "util/trace_codec.h"

namespace meshopt {

/// One managed flow of a fleet cell.
struct FleetFlow {
  std::vector<NodeId> path;  ///< node sequence src..dst
  Rate rate = Rate::kR1Mbps;
  bool is_tcp = false;  ///< plan with the TCP ACK airtime discount
  /// When > 0, drive the flow with a CBR UDP source at this input rate
  /// (bits/s) while probing runs, and let the controller's plan retune the
  /// source. 0 = register the flow without driving traffic.
  double input_bps = 0.0;
  int payload_bytes = 1470;
};

/// One cell of a fleet experiment: topology, traffic, controller tuning.
struct FleetCell {
  /// Builds the topology into a fresh Workbench (add nodes, program the
  /// channel). Runs on a pool thread: it must only touch the Workbench it
  /// is given plus immutable captured state.
  std::function<void(Workbench&)> build_topology;
  std::vector<FleetFlow> flows;
  ControllerConfig controller{};
  /// Non-empty: use the binary-LIR interference model with this table.
  DenseMatrix lir;
  double lir_threshold = 0.95;
  int rounds = 1;       ///< controller rounds to run back to back
  double settle_s = 0.0;  ///< traffic warm-up before the first round
  /// Optional dynamics: builds the cell's scripted event timeline from the
  /// cell's derived seed (same splitmix64 derivation as everything else on
  /// the pool, so generated perturbations — and therefore whole dynamic-
  /// scenario fleets — are bit-identical across thread counts). The engine
  /// is armed on the cell's Workbench before the first round.
  std::function<DynamicsScript(std::uint64_t cell_seed)> dynamics;
  /// Optional measurement faults: builds the cell's FaultScript from the
  /// cell seed (same determinism contract as `dynamics`). When set, the
  /// cell's rounds run through the guarded controller loop with a
  /// FaultEngine wrapped over the live snapshot source, and scripted
  /// kApplyFailure rounds make every shaper callback throw.
  std::function<FaultScript(std::uint64_t cell_seed)> faults;
  /// Run the guarded loop even without a fault script (validated rounds,
  /// health accounting). Implied by `faults`.
  bool guarded = false;
  GuardConfig guard{};  ///< guard tuning for guarded/faulted cells
};

/// Outcome of one cell: the last round's full control-plane record.
struct FleetResult {
  int index = -1;          ///< cell position in the grid
  std::uint64_t seed = 0;  ///< the cell's derived RNG seed
  bool ok = false;         ///< last round produced a feasible plan
  MeasurementSnapshot snapshot;  ///< last sensed snapshot
  RatePlan plan;                 ///< last computed plan
  /// Guarded/faulted cells: the controller's cumulative health counters
  /// and final state (defaults otherwise).
  HealthStats health{};
  HealthState health_state = HealthState::kHealthy;
  /// Cell isolation: a cell whose setup or round loop threw reports the
  /// exception text here instead of poisoning the pool; every other cell
  /// completes normally. Empty = the cell ran to completion.
  std::string error;
};

/// One replay cell: how to plan the shared recorded trace. There is no
/// topology builder and no traffic — the snapshots already carry every
/// measured input the model/plan stages need.
struct ReplayCell {
  std::vector<FlowSpec> flows;  ///< flows to plan (paths over trace links)
  /// Objective / optimizer tuning / headroom / plan tier. Setting
  /// plan.tier = PlanTier::kFast replays this cell through the
  /// column-generation planner (ARCHITECTURE.md, "Plan tiers"): per-round
  /// objectives stay within a 1e-6 relative gap of the exact tier, and
  /// warm state carries across the rounds of a segment.
  PlanConfig plan{};
  InterferenceModelKind interference = InterferenceModelKind::kTwoHop;
  /// Guarded replay: validate (and repair) every round before planning;
  /// rejected rounds and guardrail-rejected plans yield a default
  /// (ok == false) RatePlan for that round instead of a poisoned one.
  /// Unlike the live guarded loop there is no last-known-good hold or
  /// backoff — replay rounds stay pure functions of their snapshot, so
  /// segment sharding remains bit-identical.
  bool guarded = false;
  GuardConfig guard{};
};

/// Outcome of one replay cell: every round's plan, in trace order.
struct ReplayResult {
  int index = -1;               ///< cell position in the grid
  bool ok = false;              ///< every round planned feasibly (and >0)
  std::vector<RatePlan> plans;  ///< one per trace round
  /// Cell isolation, as FleetResult::error: the first (lowest-round)
  /// exception text of the cell's jobs; rounds of a failed segment keep
  /// default plans. Empty = every segment completed.
  std::string error;
};

/// How replay work is cut into pool jobs.
struct ReplayOptions {
  /// > 0: shard each cell's trace into contiguous segments of at most this
  /// many rounds, each dispatched as its own pool job, results stitched in
  /// round order. 0 = one job per cell (a long trace with few cells leaves
  /// workers idle; sharding fills them). Exact-tier plans are
  /// bit-identical either way: every round is a pure function of its
  /// snapshot, and the planner cache never changes outputs — a segment
  /// boundary only costs one extra cold MIS enumeration. FAST-tier plans
  /// are bit-identical across thread counts and repeated runs for a FIXED
  /// ReplayOptions, but segment_rounds (and planner_cache) are part of
  /// the fast tier's determinism key: a segment boundary resets the
  /// column-generation warm state, which legitimately moves results
  /// within the tier's gap bound (ARCHITECTURE.md, "Plan tiers").
  int segment_rounds = 0;
  /// Planner model-cache entries per job (0 = uncached reference path).
  std::size_t planner_cache = 8;
  /// Plan every round through the decomposition tier (opt/decompose.h):
  /// each job embeds a DecomposedPlanner (no nested pool — SweepRunner is
  /// not re-entrant), so separable city-scale rounds pay per-component
  /// MIS enumeration and per-component solves instead of the monolithic
  /// product space, with automatic monolithic fallback on connected
  /// rounds. Same determinism contract as the planner path: bit-identical
  /// across thread counts and repeated runs for a fixed ReplayOptions.
  bool decompose = false;
  DecomposeConfig decompose_config{};  ///< tuning when `decompose` is set
  /// Maximal-independent-set enumeration cap handed to the planner (the
  /// default matches Planner::plan). City-scale monolithic cells cap the
  /// exponential MIS space here; the decomposed tier enumerates per
  /// component and rarely comes near it.
  std::size_t mis_cap = 200000;
  /// How replay_file() treats a corrupt mid-trace record (bit rot, a
  /// crashed recorder's tail): kThrow propagates the codec error,
  /// kSkipAndCount skips damaged records and replays what survives (see
  /// util/trace_codec.h).
  OnCorruptRecord on_corrupt_record = OnCorruptRecord::kThrow;
};

/// Runs fleets of independent controller loops on a SweepRunner pool.
///
/// Thread-safety: same contract as SweepRunner — one run() at a time per
/// fleet instance; the instance may be reused across sequential runs.
class ControllerFleet {
 public:
  /// `threads` <= 0 selects the hardware concurrency (at least 1).
  explicit ControllerFleet(int threads = 0) : runner_(threads) {}

  /// Workers per run, including the calling thread.
  [[nodiscard]] int threads() const { return runner_.threads(); }

  /// Run every cell and collect results in cell order.
  ///
  /// @post result.size() == cells.size(); result[i].index == i; output is
  ///       bit-for-bit independent of the thread count.
  [[nodiscard]] std::vector<FleetResult> run(
      const std::vector<FleetCell>& cells, std::uint64_t master_seed);

  /// Plan the shared recorded `trace` under every replay cell, on the
  /// pool. The trace is borrowed for the duration of the call; each cell
  /// walks the rounds by reference, copying nothing. Pure optimizer work:
  /// constructs zero Simulators (pinned by tests/test_trace.cpp) and
  /// draws no randomness, so results are bit-for-bit independent of the
  /// thread count — and bit-identical to the live controller's plans when
  /// a cell mirrors the recording run's flows and configuration.
  ///
  /// Each job plans its rounds through a Planner, so constant-topology
  /// stretches of the trace enumerate their MIS rows once and refresh
  /// capacities thereafter; `opts` additionally shards long traces into
  /// per-segment jobs (see ReplayOptions). For exact-tier cells both are
  /// pure accelerations: plans stay bit-identical to the uncached,
  /// unsharded walk. Fast-tier cells (ReplayCell::plan.tier) are
  /// deterministic given (trace, cell, opts) — thread count never matters
  /// — with opts part of the determinism key (see ReplayOptions).
  ///
  /// @post result.size() == cells.size(); result[i].index == i;
  ///       result[i].plans.size() == trace.size().
  [[nodiscard]] std::vector<ReplayResult> replay(
      const std::vector<ReplayCell>& cells,
      const std::vector<MeasurementSnapshot>& trace,
      const ReplayOptions& opts = {});

  /// Load a binary trace file and replay it. Honors
  /// opts.on_corrupt_record: with kSkipAndCount a damaged trace replays
  /// its surviving records instead of throwing (the skip count is not
  /// surfaced here; use read_trace directly when it matters).
  [[nodiscard]] std::vector<ReplayResult> replay_file(
      const std::vector<ReplayCell>& cells, const std::string& trace_path,
      const ReplayOptions& opts = {});

  /// Attach a trace recorder (borrowed; nullptr detaches). Fleet runs then
  /// trace each cell's controller loop (lane = cell index) and replay runs
  /// trace every planned round plus one kSegment span per pool job; cells
  /// that die with an error trigger a kCellError incident carrying the
  /// exception text. Tracing preserves the fleet's determinism contract:
  /// every pool job writes into its own job-local recorder (constructed
  /// from the attached recorder's config), and the job recorders are
  /// absorbed into the attached recorder in job-index order after the pool
  /// barrier — so the trace, like the results, is bit-identical across
  /// thread counts.
  void set_observer(TraceRecorder* obs) { obs_ = obs; }
  [[nodiscard]] TraceRecorder* observer() const { return obs_; }

 private:
  SweepRunner runner_;
  TraceRecorder* obs_ = nullptr;  ///< borrowed; see set_observer()
};

}  // namespace meshopt
