#include "sweep/sweep_runner.h"

#include <algorithm>

namespace meshopt {

SweepRunner::SweepRunner(int threads) : threads_(threads) {
  if (threads_ <= 0) {
    threads_ = static_cast<int>(std::thread::hardware_concurrency());
    if (threads_ <= 0) threads_ = 1;
  }
  queues_ = std::vector<WorkStealQueue>(static_cast<std::size_t>(threads_));
  pool_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int t = 1; t < threads_; ++t)
    pool_.emplace_back([this, t] { worker_loop(t); });
}

SweepRunner::~SweepRunner() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& th : pool_) th.join();
}

void SweepRunner::execute(int index) {
  SweepJob job;
  job.index = index;
  job.seed = job_seed(master_seed_, index);
  try {
    (*fn_)(job);
  } catch (...) {
    const std::lock_guard<std::mutex> lock(error_mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void SweepRunner::drain(int self) {
  int idx;
  for (;;) {
    if (queues_[static_cast<std::size_t>(self)].pop(idx)) {
      execute(idx);
      continue;
    }
    // Steal scan. Queues only drain after the pre-run fill, so a scan in
    // which every queue reports kEmpty is conclusive: no stealable work
    // can ever appear again (jobs still *executing* on other workers are
    // covered by run_raw's end-of-epoch wait). A kLost race means some
    // other worker advanced — rescan rather than spin on a straggler.
    bool got = false;
    bool contended = false;
    for (int off = 1; off < threads_ && !got; ++off) {
      const int victim = (self + off) % threads_;
      switch (queues_[static_cast<std::size_t>(victim)].steal(idx)) {
        case WorkStealQueue::Steal::kGot:
          got = true;
          break;
        case WorkStealQueue::Steal::kLost:
          contended = true;
          break;
        case WorkStealQueue::Steal::kEmpty:
          break;
      }
    }
    if (got) {
      execute(idx);
      continue;
    }
    if (!contended) return;
    std::this_thread::yield();  // transient CAS contention only
  }
}

void SweepRunner::worker_loop(int self) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock,
                     [this, seen_epoch] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
    }
    drain(self);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++finished_workers_;
    }
    cv_done_.notify_one();
  }
}

void SweepRunner::run_raw(int count, std::uint64_t master_seed,
                          const std::function<void(const SweepJob&)>& fn) {
  if (count <= 0) return;

  if (threads_ == 1 || count == 1) {
    // Degenerate case: run inline on the calling thread (identical
    // semantics, useful under debuggers and for count == 1 sweeps).
    std::exception_ptr error;
    for (int i = 0; i < count; ++i) {
      SweepJob job;
      job.index = i;
      job.seed = job_seed(master_seed, i);
      try {
        fn(job);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }

  // Partition job indices into per-worker blocks, each filled in reverse
  // so the owner's LIFO pop walks its block in ascending order (thieves
  // steal from the block's high end).
  std::vector<int> block;
  for (int w = 0; w < threads_; ++w) {
    const int lo = static_cast<int>(
        static_cast<std::int64_t>(w) * count / threads_);
    const int hi = static_cast<int>(
        static_cast<std::int64_t>(w + 1) * count / threads_);
    block.clear();
    for (int i = hi - 1; i >= lo; --i) block.push_back(i);
    queues_[static_cast<std::size_t>(w)].fill(block.data(),
                                              static_cast<int>(block.size()));
  }

  {
    const std::lock_guard<std::mutex> lock(error_mu_);
    first_error_ = nullptr;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    master_seed_ = master_seed;
    finished_workers_ = 0;
    ++epoch_;  // releases the queue fills to the woken workers
  }
  cv_start_.notify_all();

  drain(/*self=*/0);  // the caller is worker 0

  // Wait for every background worker to leave the epoch: a worker exits
  // drain() only after its last job returned, so this both completes the
  // results (the mutex handoff publishes their writes) and guarantees the
  // fn/queue state is not reused while a straggler is still scanning.
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_done_.wait(lock,
                  [this] { return finished_workers_ == threads_ - 1; });
    fn_ = nullptr;
  }

  std::exception_ptr error;
  {
    const std::lock_guard<std::mutex> lock(error_mu_);
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace meshopt
