#include "sweep/sweep_runner.h"

#include <algorithm>
#include <mutex>

namespace meshopt {

SweepRunner::SweepRunner(int threads) : threads_(threads) {
  if (threads_ <= 0) {
    threads_ = static_cast<int>(std::thread::hardware_concurrency());
    if (threads_ <= 0) threads_ = 1;
  }
}

void SweepRunner::run_raw(int count, std::uint64_t master_seed,
                          const std::function<void(const SweepJob&)>& fn) {
  if (count <= 0) return;
  const int workers = std::min(threads_, count);

  std::atomic<int> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;

  const auto worker = [&] {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      SweepJob job;
      job.index = i;
      job.seed = job_seed(master_seed, i);
      try {
        fn(job);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  if (workers == 1) {
    worker();  // degenerate case: no threads, useful under debuggers
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace meshopt
