#include "probe/adhoc_probe.h"

#include <algorithm>

namespace meshopt {

AdHocProbe::AdHocProbe(Network& net, NodeId src, NodeId dst,
                       int payload_bytes)
    : net_(net), src_(src), dst_(dst), payload_bytes_(payload_bytes) {
  handler_id_ = net_.node(dst_).add_handler(
      Protocol::kPairProbe,
      [this](const Packet& p, NodeId) { on_delivery(p); });
}

AdHocProbe::~AdHocProbe() {
  net_.node(dst_).remove_handler(Protocol::kPairProbe, handler_id_);
}

void AdHocProbe::start(int pairs, double gap_s) {
  remaining_ = pairs;
  gap_s_ = gap_s;
  send_pair();
}

void AdHocProbe::send_pair() {
  if (remaining_ <= 0) return;
  --remaining_;
  const std::uint32_t pair = next_pair_++;
  for (std::uint8_t idx = 0; idx < 2; ++idx) {
    Packet p;
    p.src = src_;
    p.dst = dst_;
    p.proto = Protocol::kPairProbe;
    p.bytes = payload_bytes_ + 28;
    p.created = net_.sim().now();
    p.pair_id = pair;
    p.pair_index = idx;
    net_.node(src_).send(p);
  }
  if (remaining_ > 0) {
    net_.sim().schedule(seconds(gap_s_), [this] { send_pair(); });
  }
}

void AdHocProbe::on_delivery(const Packet& p) {
  if (p.pair_index == 0) {
    first_arrival_[p.pair_id] = net_.sim().now();
    return;
  }
  const auto it = first_arrival_.find(p.pair_id);
  if (it == first_arrival_.end()) return;  // first of pair was lost
  const double disp = to_seconds(net_.sim().now() - it->second);
  first_arrival_.erase(it);
  if (disp > 0.0) dispersions_.push_back(disp);
}

int AdHocProbe::pairs_completed() const {
  return static_cast<int>(dispersions_.size());
}

double AdHocProbe::capacity_estimate_bps() const {
  if (dispersions_.empty()) return 0.0;
  const double min_disp =
      *std::min_element(dispersions_.begin(), dispersions_.end());
  return 8.0 * static_cast<double>(payload_bytes_) / min_disp;
}

}  // namespace meshopt
