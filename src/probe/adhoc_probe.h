#pragma once
// AdHoc Probe (Chen et al. [10]) — the packet-pair path-capacity estimator
// the paper compares against in Section 5.4 (Fig. 11).
//
// The sender emits back-to-back unicast packet pairs; the receiver records
// the dispersion (arrival spacing) of each pair and estimates capacity as
// packet_size / min_dispersion. As the paper shows, this tracks the
// *nominal* rate (minimum dispersion filters out contention) but is blind
// to channel losses, so it cannot estimate maxUDP throughput.

#include <cstdint>
#include <map>
#include <vector>

#include "net/network.h"
#include "util/rng.h"

namespace meshopt {

class AdHocProbe {
 public:
  /// Probe pairs flow src -> dst (single hop or multi-hop via routes).
  AdHocProbe(Network& net, NodeId src, NodeId dst, int payload_bytes = 1470);
  ~AdHocProbe();
  AdHocProbe(const AdHocProbe&) = delete;
  AdHocProbe& operator=(const AdHocProbe&) = delete;

  /// Send `pairs` packet pairs, `gap_s` apart.
  void start(int pairs, double gap_s);

  [[nodiscard]] int pairs_completed() const;

  /// Capacity estimate (payload bits/s): payload / min dispersion.
  /// Returns 0 if no pair completed.
  [[nodiscard]] double capacity_estimate_bps() const;

  [[nodiscard]] const std::vector<double>& dispersions_s() const {
    return dispersions_;
  }

 private:
  void send_pair();
  void on_delivery(const Packet& p);

  Network& net_;
  NodeId src_;
  NodeId dst_;
  std::uint64_t handler_id_ = 0;
  int payload_bytes_;
  int remaining_ = 0;
  std::uint32_t next_pair_ = 0;
  std::map<std::uint32_t, TimeNs> first_arrival_;
  std::vector<double> dispersions_;
  double gap_s_ = 0.1;
};

}  // namespace meshopt
