#pragma once
// Broadcast probing system (paper Section 5.2).
//
// Each node periodically broadcasts two kinds of probes:
//   * DATA probes — sized like data packets, sent at each data rate the
//     node uses toward its neighbors (measures pDATA),
//   * ACK probes — ACK-sized, sent at the 1 Mb/s base rate (measures pACK).
//
// Broadcasts are not retransmitted by the MAC, so the loss pattern recorded
// by a neighbor is the raw per-attempt loss process the 802.11 MAC
// experiences — containing both channel losses and collision losses, which
// the ChannelLossEstimator then separates.

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "net/network.h"
#include "util/rng.h"

namespace meshopt {

/// Identifies one probe stream as seen by a receiver.
struct ProbeStreamKey {
  NodeId src = -1;
  Rate rate = Rate::kR1Mbps;
  ProbeKind kind = ProbeKind::kDataProbe;

  auto operator<=>(const ProbeStreamKey&) const = default;
};

/// Records the received/lost pattern of a probe stream from sequence
/// numbers (a gap of k sequence numbers = k losses).
class LossRecorder {
 public:
  void on_probe(std::uint64_t seq);

  /// Start a fresh measurement window: discard history and treat `base_seq`
  /// (the sender's next sequence number) as position 0 of the pattern.
  void begin_window(std::uint64_t base_seq);

  /// Loss pattern so far: 1 = lost, 0 = received. If `expected_total` is
  /// larger than the observed range, the tail is padded as lost (probes
  /// that never arrived).
  [[nodiscard]] std::vector<std::uint8_t> pattern(
      std::uint64_t expected_total = 0) const;

  [[nodiscard]] double loss_rate(std::uint64_t expected_total = 0) const;
  [[nodiscard]] std::uint64_t received() const { return received_; }

  void reset();

 private:
  std::vector<std::uint8_t> pattern_;
  bool any_ = false;
  std::uint64_t base_seq_ = 0;
  std::uint64_t first_seq_ = 0;
  std::uint64_t last_seq_ = 0;
  std::uint64_t received_ = 0;
};

/// Per-node probe transmitter.
class ProbeAgent {
 public:
  ProbeAgent(Network& net, NodeId node, RngStream rng);

  /// Probe every `period_s`, broadcasting a DATA probe at each rate in
  /// `data_rates` plus one ACK probe at 1 Mb/s.
  void configure(double period_s, std::vector<Rate> data_rates,
                 int data_probe_payload = 1470);
  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  /// Sequence counter of a stream (what the receiver should expect).
  [[nodiscard]] std::uint64_t sent(Rate rate, ProbeKind kind) const;

 private:
  void tick();

  Network& net_;
  NodeId node_;
  RngStream rng_;
  double period_s_ = 0.5;
  std::vector<Rate> data_rates_{Rate::kR1Mbps};
  int data_probe_bytes_ = 1470 + 28;  ///< + IP/UDP headers
  bool running_ = false;
  EventId tick_ev_ = kNoEvent;
  std::map<std::pair<std::uint8_t, std::uint8_t>, std::uint64_t> seq_;
};

/// Per-node probe receiver: aggregates LossRecorders per stream.
class ProbeMonitor {
 public:
  explicit ProbeMonitor(Network& net, NodeId node);
  ~ProbeMonitor();
  ProbeMonitor(const ProbeMonitor&) = delete;
  ProbeMonitor& operator=(const ProbeMonitor&) = delete;

  [[nodiscard]] const LossRecorder* stream(const ProbeStreamKey& key) const;
  [[nodiscard]] LossRecorder* stream_mut(const ProbeStreamKey& key);
  [[nodiscard]] std::vector<ProbeStreamKey> streams() const;
  void reset_all();

 private:
  void on_packet(const Packet& p);

  Network& net_;
  NodeId node_;
  std::uint64_t handler_id_ = 0;
  std::map<ProbeStreamKey, LossRecorder> recorders_;
};

}  // namespace meshopt
