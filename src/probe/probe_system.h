#pragma once
// Broadcast probing system (paper Section 5.2).
//
// Each node periodically broadcasts two kinds of probes:
//   * DATA probes — sized like data packets, sent at each data rate the
//     node uses toward its neighbors (measures pDATA),
//   * ACK probes — ACK-sized, sent at the 1 Mb/s base rate (measures pACK).
//
// Broadcasts are not retransmitted by the MAC, so the loss pattern recorded
// by a neighbor is the raw per-attempt loss process the 802.11 MAC
// experiences — containing both channel losses and collision losses, which
// the ChannelLossEstimator then separates.

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "net/network.h"
#include "util/rng.h"

namespace meshopt {

/// Identifies one probe stream as seen by a receiver.
struct ProbeStreamKey {
  NodeId src = -1;
  Rate rate = Rate::kR1Mbps;
  ProbeKind kind = ProbeKind::kDataProbe;

  auto operator<=>(const ProbeStreamKey&) const = default;
};

/// Records the received/lost pattern of a probe stream from sequence
/// numbers (a gap of k sequence numbers = k losses).
class LossRecorder {
 public:
  void on_probe(std::uint64_t seq);

  /// Start a fresh measurement window: discard history and treat `base_seq`
  /// (the sender's next sequence number) as position 0 of the pattern.
  void begin_window(std::uint64_t base_seq);

  /// Loss pattern so far: 1 = lost, 0 = received. If `expected_total` is
  /// larger than the observed range, the tail is padded as lost (probes
  /// that never arrived).
  [[nodiscard]] std::vector<std::uint8_t> pattern(
      std::uint64_t expected_total = 0) const;

  [[nodiscard]] double loss_rate(std::uint64_t expected_total = 0) const;
  [[nodiscard]] std::uint64_t received() const { return received_; }

  void reset();

 private:
  std::vector<std::uint8_t> pattern_;
  bool any_ = false;
  std::uint64_t base_seq_ = 0;
  std::uint64_t first_seq_ = 0;
  std::uint64_t last_seq_ = 0;
  std::uint64_t received_ = 0;
};

/// Per-node probe transmitter.
class ProbeAgent {
 public:
  ProbeAgent(Network& net, NodeId node, RngStream rng);

  /// Probe every `period_s`, broadcasting a DATA probe at each rate in
  /// `data_rates` plus one ACK probe at 1 Mb/s.
  void configure(double period_s, std::vector<Rate> data_rates,
                 int data_probe_payload = 1470);

  /// Start probing. With `window_ticks > 0` the agent pre-draws one
  /// estimation window's worth of RNG values in a single batched pass;
  /// the per-tick work during the window is then a FIFO pop + one raw
  /// schedule_at, with no RNG draws and no closure rebuild. With
  /// `window_ticks == 0` (the legacy mode) every draw happens per tick.
  /// Calling start(window_ticks) on a RUNNING agent tops the batch back
  /// up — the controller does this every round, so steady-state rounds
  /// stay batched.
  ///
  /// Timing is bit-identical whatever the batching and whatever the
  /// start/stop call pattern: the batch holds raw uniform values in
  /// stream order and EVERY internal draw (phase or jitter) is served
  /// from it before touching the stream, so the k-th draw observes the
  /// k-th stream value exactly as the incremental mode does — batching
  /// moves WHEN values are drawn, never which value feeds which draw
  /// (pinned by ProbeSystem.BatchedWindowTimingMatchesIncremental).
  void start(int window_ticks = 0);
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  /// Sequence counter of a stream (what the receiver should expect).
  [[nodiscard]] std::uint64_t sent(Rate rate, ProbeKind kind) const;

 private:
  void tick();
  /// Next uniform value: served from the prefetched batch when one is
  /// pending, else drawn from the stream directly. Either way the k-th
  /// call observes the k-th stream value.
  double next_uniform();
  /// Pre-draw `n` more uniforms into the batch (one RNG pass).
  void prefetch_uniforms(int n);
  /// Compute the next tick time from tail_time_ and schedule it.
  void schedule_next_tick();

  Network& net_;
  NodeId node_;
  RngStream rng_;
  double period_s_ = 0.5;
  std::vector<Rate> data_rates_{Rate::kR1Mbps};
  int data_probe_bytes_ = 1470 + 28;  ///< + IP/UDP headers
  bool running_ = false;
  EventId tick_ev_ = kNoEvent;
  /// Pre-drawn uniform values (FIFO, stream order); prefetch_next_
  /// indexes the next to serve. Compacted on drain and at every top-up,
  /// so storage stays bounded by one window.
  std::vector<double> prefetch_;
  std::size_t prefetch_next_ = 0;
  /// Time of the newest computed tick; the recurrence
  /// t_next = tail + seconds(period * jitter) continues from here.
  TimeNs tail_time_ = 0;
  std::map<std::pair<std::uint8_t, std::uint8_t>, std::uint64_t> seq_;
};

/// Per-node probe receiver: aggregates LossRecorders per stream.
class ProbeMonitor {
 public:
  explicit ProbeMonitor(Network& net, NodeId node);
  ~ProbeMonitor();
  ProbeMonitor(const ProbeMonitor&) = delete;
  ProbeMonitor& operator=(const ProbeMonitor&) = delete;

  [[nodiscard]] const LossRecorder* stream(const ProbeStreamKey& key) const;
  [[nodiscard]] LossRecorder* stream_mut(const ProbeStreamKey& key);
  [[nodiscard]] std::vector<ProbeStreamKey> streams() const;
  void reset_all();

 private:
  void on_packet(const Packet& p);

  Network& net_;
  NodeId node_;
  std::uint64_t handler_id_ = 0;
  std::map<ProbeStreamKey, LossRecorder> recorders_;
};

}  // namespace meshopt
