#pragma once
// LiveSource — the probing-window simulation behind the SnapshotSource
// interface (see ARCHITECTURE.md, "Trace & replay").
//
// Each next() runs one full estimation window on the live simulation:
// start (or keep) the broadcast probing system, advance simulated time by
// the controller's probing window, then sense the monitors into a
// MeasurementSnapshot. This is exactly what MeshController::run_round does
// before planning — run_round is itself implemented on this windowed
// sensing step — so a consumer written against SnapshotSource sees the
// same snapshot sequence whether it drives a live simulation here or a
// recorded trace through TraceSource.
//
// Combine with MeshController::record_to() to persist every sensed window
// to a binary trace while the live run proceeds.

#include "core/controller.h"
#include "core/snapshot_source.h"
#include "scenario/workbench.h"

namespace meshopt {

/// SnapshotSource over a live (Workbench, MeshController) pair.
class LiveSource final : public SnapshotSource {
 public:
  /// `max_windows` bounds next() calls; -1 = unbounded. The workbench and
  /// controller are borrowed and must outlive the source.
  LiveSource(Workbench& wb, MeshController& ctl, int max_windows = -1)
      : wb_(wb), ctl_(ctl), remaining_(max_windows) {}

  /// Run one probing window of simulated time and sense a snapshot.
  bool next(MeasurementSnapshot& out) override {
    if (remaining_ == 0) return false;
    if (remaining_ > 0) --remaining_;
    ctl_.sense_window(wb_);
    out = ctl_.snapshot();
    return true;
  }

  [[nodiscard]] int remaining() const override { return remaining_; }

 private:
  Workbench& wb_;
  MeshController& ctl_;
  int remaining_;
};

}  // namespace meshopt
