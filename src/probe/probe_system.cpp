#include "probe/probe_system.h"

#include <algorithm>

namespace meshopt {

// ---------------------------------------------------------------- recorder

void LossRecorder::begin_window(std::uint64_t base_seq) {
  reset();
  base_seq_ = base_seq;
}

void LossRecorder::on_probe(std::uint64_t seq) {
  if (seq < base_seq_) return;  // pre-window stragglers
  if (!any_) {
    any_ = true;
    first_seq_ = seq;
    last_seq_ = seq;
    pattern_.push_back(0);
    ++received_;
    return;
  }
  if (seq <= last_seq_) return;  // reordering cannot happen; ignore dups
  for (std::uint64_t s = last_seq_ + 1; s < seq; ++s) pattern_.push_back(1);
  pattern_.push_back(0);
  ++received_;
  last_seq_ = seq;
}

std::vector<std::uint8_t> LossRecorder::pattern(
    std::uint64_t expected_total) const {
  std::vector<std::uint8_t> out = pattern_;
  if (expected_total > 0) {
    // Probes lost before the first arrival and after the last one.
    const std::uint64_t lead = any_ ? first_seq_ - base_seq_ : expected_total;
    std::vector<std::uint8_t> full(static_cast<std::size_t>(lead), 1);
    full.insert(full.end(), out.begin(), out.end());
    while (full.size() < expected_total) full.push_back(1);
    if (full.size() > expected_total)
      full.resize(static_cast<std::size_t>(expected_total));
    return full;
  }
  return out;
}

double LossRecorder::loss_rate(std::uint64_t expected_total) const {
  const auto pat = pattern(expected_total);
  if (pat.empty()) return 0.0;
  std::uint64_t lost = 0;
  for (auto b : pat) lost += b;
  return static_cast<double>(lost) / static_cast<double>(pat.size());
}

void LossRecorder::reset() {
  pattern_.clear();
  any_ = false;
  received_ = 0;
  base_seq_ = 0;
  first_seq_ = last_seq_ = 0;
}

// ------------------------------------------------------------------ agent

ProbeAgent::ProbeAgent(Network& net, NodeId node, RngStream rng)
    : net_(net), node_(node), rng_(rng) {}

void ProbeAgent::configure(double period_s, std::vector<Rate> data_rates,
                           int data_probe_payload) {
  period_s_ = period_s;
  data_rates_ = std::move(data_rates);
  data_probe_bytes_ = data_probe_payload + 28;  // IP+UDP headers
}

double ProbeAgent::next_uniform() {
  if (prefetch_next_ < prefetch_.size()) {
    const double u = prefetch_[prefetch_next_++];
    if (prefetch_next_ == prefetch_.size()) {
      prefetch_.clear();  // fully drained: reclaim for the next top-up
      prefetch_next_ = 0;
    }
    return u;
  }
  return rng_.uniform();
}

void ProbeAgent::prefetch_uniforms(int n) {
  prefetch_.reserve(prefetch_.size() + static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) prefetch_.push_back(rng_.uniform());
}

void ProbeAgent::start(int window_ticks) {
  if (window_ticks > 0) {
    // Top the batch up to one window of future draws (phase and jitter
    // share the stream, so a plain count covers both). Compact the
    // consumed prefix first — it otherwise random-walks upward across
    // rounds, since whether a round drains the batch exactly is a coin
    // flip.
    prefetch_.erase(prefetch_.begin(),
                    prefetch_.begin() +
                        static_cast<std::ptrdiff_t>(prefetch_next_));
    prefetch_next_ = 0;
    if (prefetch_.size() < static_cast<std::size_t>(window_ticks))
      prefetch_uniforms(window_ticks -
                        static_cast<int>(prefetch_.size()));
  }
  if (running_) return;
  running_ = true;
  // Random phase so that probing nodes do not synchronize.
  tail_time_ = net_.sim().now() + seconds(next_uniform() * period_s_);
  tick_ev_ = net_.sim().schedule_at(tail_time_, [this] { tick(); });
}

void ProbeAgent::stop() {
  if (!running_) return;
  running_ = false;
  net_.sim().cancel(tick_ev_);
  tick_ev_ = kNoEvent;
}

std::uint64_t ProbeAgent::sent(Rate rate, ProbeKind kind) const {
  const auto it = seq_.find({static_cast<std::uint8_t>(rate),
                             static_cast<std::uint8_t>(kind)});
  return it != seq_.end() ? it->second : 0;
}

void ProbeAgent::tick() {
  tick_ev_ = kNoEvent;
  if (!running_) return;

  auto send_probe = [&](Rate rate, ProbeKind kind, int bytes) {
    auto& seq = seq_[{static_cast<std::uint8_t>(rate),
                      static_cast<std::uint8_t>(kind)}];
    Packet p;
    p.src = node_;
    p.dst = kBroadcast;
    p.proto = Protocol::kProbe;
    p.bytes = bytes;
    p.seq = seq++;
    p.created = net_.sim().now();
    p.probe_rate = rate;
    p.probe_kind = kind;
    net_.node(node_).send_broadcast(p, rate);
  };

  for (Rate r : data_rates_) {
    send_probe(r, ProbeKind::kDataProbe, data_probe_bytes_);
  }
  // ACK-sized probe at base rate (pACK measurement).
  send_probe(Rate::kR1Mbps, ProbeKind::kAckProbe, 14);

  schedule_next_tick();
}

void ProbeAgent::schedule_next_tick() {
  // +/-10% per-tick jitter: simulated clocks are perfect, so without it
  // two hidden probing nodes can phase-lock and collide on every probe.
  // The value comes from next_uniform() — the prefetched batch when one
  // is pending — and a tick fires exactly at its scheduled time, so the
  // recurrence below is the incremental arithmetic verbatim.
  const double jitter = 0.9 + 0.2 * next_uniform();
  tail_time_ += seconds(period_s_ * jitter);
  tick_ev_ = net_.sim().schedule_at(tail_time_, [this] { tick(); });
}

// ---------------------------------------------------------------- monitor

ProbeMonitor::ProbeMonitor(Network& net, NodeId node)
    : net_(net), node_(node) {
  handler_id_ = net_.node(node_).add_handler(
      Protocol::kProbe,
      [this](const Packet& p, NodeId) { on_packet(p); });
}

ProbeMonitor::~ProbeMonitor() {
  net_.node(node_).remove_handler(Protocol::kProbe, handler_id_);
}

void ProbeMonitor::on_packet(const Packet& p) {
  const ProbeStreamKey key{p.src, p.probe_rate, p.probe_kind};
  recorders_[key].on_probe(p.seq);
}

const LossRecorder* ProbeMonitor::stream(const ProbeStreamKey& key) const {
  const auto it = recorders_.find(key);
  return it != recorders_.end() ? &it->second : nullptr;
}

LossRecorder* ProbeMonitor::stream_mut(const ProbeStreamKey& key) {
  return &recorders_[key];
}

std::vector<ProbeStreamKey> ProbeMonitor::streams() const {
  std::vector<ProbeStreamKey> keys;
  keys.reserve(recorders_.size());
  for (const auto& [k, _] : recorders_) keys.push_back(k);
  return keys;
}

void ProbeMonitor::reset_all() {
  for (auto& [_, rec] : recorders_) rec.reset();
}

}  // namespace meshopt
