#pragma once
// Network-layer packet. Kept as one concrete value type: the handful of
// protocol-specific fields are cheap and make the whole pipeline
// copy-friendly (packets are forwarded by value, hop by hop).

#include <cstdint>

#include "phy/radio.h"
#include "sim/simulator.h"

namespace meshopt {

enum class Protocol : std::uint8_t {
  kUdp,        ///< measurement / data traffic
  kTcpData,    ///< simplified TCP segment
  kTcpAck,     ///< simplified TCP acknowledgment
  kProbe,      ///< broadcast capacity-estimation probe (Section 5)
  kPairProbe,  ///< AdHoc Probe packet-pair (baseline, Section 5.4)
};

/// Probe flavours: the paper sends DATA-sized probes at the link's data
/// rate and ACK-sized probes at 1 Mb/s, to measure pDATA and pACK.
enum class ProbeKind : std::uint8_t { kDataProbe, kAckProbe };

struct Packet {
  NodeId src = -1;  ///< end-to-end source
  NodeId dst = -1;  ///< end-to-end destination (kBroadcast for probes)
  int flow = -1;    ///< flow id (-1 for control traffic)
  Protocol proto = Protocol::kUdp;
  int bytes = 0;    ///< network-layer size (IP header + payload)
  std::uint64_t seq = 0;
  TimeNs created = 0;
  int ttl = 32;

  // Probe extras.
  Rate probe_rate = Rate::kR1Mbps;
  ProbeKind probe_kind = ProbeKind::kDataProbe;

  // TCP extras.
  std::uint64_t tcp_ack = 0;  ///< cumulative ack number (in segments)

  // AdHoc Probe extras.
  std::uint32_t pair_id = 0;
  std::uint8_t pair_index = 0;  ///< 0 = first of pair, 1 = second
};

}  // namespace meshopt
