#pragma once
// In-flight packet storage.
//
// The MAC layer carries only an opaque net_id; the actual Packet lives here
// from enqueue until the sender's mac_tx_done. Receivers copy the packet
// out at reception time (which the event ordering guarantees happens before
// the sender releases it), so forwarding is copy-on-hop and there is no
// shared ownership to get wrong.

#include <cassert>
#include <cstdint>
#include <unordered_map>

#include "net/packet.h"

namespace meshopt {

class PacketStore {
 public:
  [[nodiscard]] std::uint64_t put(const Packet& p) {
    const std::uint64_t id = next_++;
    map_.emplace(id, p);
    return id;
  }

  [[nodiscard]] const Packet& peek(std::uint64_t id) const {
    const auto it = map_.find(id);
    assert(it != map_.end() && "packet store: unknown id");
    return it->second;
  }

  void release(std::uint64_t id) { map_.erase(id); }

  [[nodiscard]] std::size_t size() const { return map_.size(); }

 private:
  std::uint64_t next_ = 1;
  std::unordered_map<std::uint64_t, Packet> map_;
};

}  // namespace meshopt
