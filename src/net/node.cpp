#include "net/node.h"

#include "net/network.h"

namespace meshopt {

Node::Node(Network& net, Simulator& sim, Channel& channel, MacTimings timings,
           RngStream rng)
    : net_(net), mac_(sim, channel, timings, rng, this) {}

NodeId Node::next_hop(NodeId dst) const {
  const auto it = routes_.find(dst);
  return it != routes_.end() ? it->second : -1;
}

Rate Node::link_rate(NodeId neighbor) const {
  const auto it = link_rates_.find(neighbor);
  return it != link_rates_.end() ? it->second : default_rate_;
}

bool Node::enqueue_toward(const Packet& p, NodeId next) {
  MacTxRequest req;
  req.link_dst = next;
  req.net_bytes = p.bytes;
  req.rate = next == kBroadcast ? p.probe_rate : link_rate(next);
  req.net_id = net_.store().put(p);
  if (!mac_.enqueue(req)) {
    net_.store().release(req.net_id);
    ++queue_drops;
    return false;
  }
  return true;
}

bool Node::send(Packet p) {
  const NodeId next = next_hop(p.dst);
  if (next < 0) {
    ++no_route_drops;
    return false;
  }
  return enqueue_toward(p, next);
}

bool Node::send_broadcast(Packet p, Rate rate) {
  p.probe_rate = rate;
  return enqueue_toward(p, kBroadcast);
}

Node::HandlerId Node::add_handler(Protocol proto, PacketHandler h) {
  const HandlerId id = next_handler_id_++;
  handlers_[static_cast<std::uint8_t>(proto)].emplace_back(id, std::move(h));
  return id;
}

void Node::remove_handler(Protocol proto, HandlerId id) {
  auto it = handlers_.find(static_cast<std::uint8_t>(proto));
  if (it == handlers_.end()) return;
  auto& vec = it->second;
  std::erase_if(vec, [id](const auto& entry) { return entry.first == id; });
}

void Node::set_flow_tx_hook(int flow, std::function<void(bool)> h) {
  flow_tx_hooks_[flow] = std::move(h);
}

void Node::clear_flow_tx_hook(int flow) { flow_tx_hooks_.erase(flow); }

void Node::mac_tx_done(const MacTxRequest& req, bool success) {
  const Packet p = net_.store().peek(req.net_id);  // copy before release
  net_.store().release(req.net_id);
  const auto it = flow_tx_hooks_.find(p.flow);
  if (it != flow_tx_hooks_.end()) it->second(success);
}

void Node::mac_rx(NodeId src, std::uint64_t net_id, int /*net_bytes*/,
                  bool broadcast) {
  Packet p = net_.store().peek(net_id);  // copy out; sender still owns it
  if (broadcast) {
    // Link-local broadcasts (probes) are never forwarded.
    const auto it = handlers_.find(static_cast<std::uint8_t>(p.proto));
    if (it != handlers_.end())
      for (const auto& [_, h] : it->second) h(p, src);
    return;
  }
  if (p.dst == id()) {
    deliver_local(p, src);
    return;
  }
  // Forward.
  if (--p.ttl <= 0) {
    ++ttl_drops;
    return;
  }
  const NodeId next = next_hop(p.dst);
  if (next < 0) {
    ++no_route_drops;
    return;
  }
  if (enqueue_toward(p, next)) ++forwarded;
}

void Node::deliver_local(const Packet& p, NodeId link_src) {
  const auto it = handlers_.find(static_cast<std::uint8_t>(p.proto));
  if (it != handlers_.end()) {
    for (const auto& [_, h] : it->second) h(p, link_src);
  }
  net_.flow_delivered(p);
}

}  // namespace meshopt
