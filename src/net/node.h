#pragma once
// A mesh node's network layer: static routing table, per-neighbor link
// rates, packet forwarding, and dispatch of received packets to protocol
// handlers (transport, probing, etc.).

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "mac/dcf_mac.h"
#include "net/packet.h"

namespace meshopt {

class Network;

class Node final : public MacSap {
 public:
  Node(Network& net, Simulator& sim, Channel& channel, MacTimings timings,
       RngStream rng);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const { return mac_.id(); }
  [[nodiscard]] DcfMac& mac() { return mac_; }
  [[nodiscard]] const DcfMac& mac() const { return mac_; }

  // --- routing / link configuration -------------------------------------
  void set_route(NodeId dst, NodeId next_hop) { routes_[dst] = next_hop; }
  void clear_routes() { routes_.clear(); }
  [[nodiscard]] NodeId next_hop(NodeId dst) const;
  void set_link_rate(NodeId neighbor, Rate r) { link_rates_[neighbor] = r; }
  void set_default_rate(Rate r) { default_rate_ = r; }
  [[nodiscard]] Rate link_rate(NodeId neighbor) const;

  // --- sending -----------------------------------------------------------
  /// Send a locally originated unicast packet along the routing table.
  /// Returns false if there is no route or the MAC queue rejected it.
  bool send(Packet p);

  /// Broadcast a link-local packet (probes) at an explicit rate.
  bool send_broadcast(Packet p, Rate rate);

  // --- handler registration ----------------------------------------------
  using PacketHandler = std::function<void(const Packet&, NodeId link_src)>;
  using HandlerId = std::uint64_t;
  /// Register a handler for unicast packets terminating here / broadcast
  /// packets heard. Multiple handlers per protocol are all invoked (each
  /// one filters for its own flows). The returned id must be passed to
  /// remove_handler before the handler's captures die.
  HandlerId add_handler(Protocol proto, PacketHandler h);
  void remove_handler(Protocol proto, HandlerId id);

  /// Per-flow transmission-complete hook at this node (fires when the MAC
  /// finishes the first hop of a packet of that flow). Used by backlogged
  /// sources to keep the queue fed.
  void set_flow_tx_hook(int flow, std::function<void(bool success)> h);
  void clear_flow_tx_hook(int flow);

  // --- MacSap -------------------------------------------------------------
  void mac_tx_done(const MacTxRequest& req, bool success) override;
  void mac_rx(NodeId src, std::uint64_t net_id, int net_bytes,
              bool broadcast) override;

  // --- counters ------------------------------------------------------------
  std::uint64_t forwarded = 0;
  std::uint64_t no_route_drops = 0;
  std::uint64_t queue_drops = 0;
  std::uint64_t ttl_drops = 0;

 private:
  bool enqueue_toward(const Packet& p, NodeId next);
  void deliver_local(const Packet& p, NodeId link_src);

  Network& net_;
  DcfMac mac_;
  Rate default_rate_ = Rate::kR1Mbps;
  std::unordered_map<NodeId, NodeId> routes_;
  std::unordered_map<NodeId, Rate> link_rates_;
  std::unordered_map<std::uint8_t,
                     std::vector<std::pair<HandlerId, PacketHandler>>>
      handlers_;
  HandlerId next_handler_id_ = 1;
  std::unordered_map<int, std::function<void(bool)>> flow_tx_hooks_;
};

}  // namespace meshopt
