#pragma once
// Container for a simulated mesh: the nodes, the shared packet store, and a
// registry of end-to-end flows with delivery accounting. Benchmarks read
// flow counters; transports register delivery callbacks.

#include <cstdint>
#include <memory>
#include <vector>

#include "net/node.h"
#include "net/packet_store.h"
#include "phy/channel.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace meshopt {

/// Accounting for one end-to-end flow.
struct FlowRecord {
  int id = -1;
  NodeId src = -1;
  NodeId dst = -1;
  Protocol proto = Protocol::kUdp;
  int payload_bytes = 0;  ///< transport payload per packet

  std::uint64_t sent_packets = 0;
  std::uint64_t delivered_packets = 0;
  std::uint64_t delivered_payload_bytes = 0;
  TimeNs first_delivery = -1;
  TimeNs last_delivery = -1;

  /// Optional delivery callback (used by TCP receivers and tests).
  std::function<void(const Packet&)> on_delivery;

  void reset_counters() {
    sent_packets = 0;
    delivered_packets = 0;
    delivered_payload_bytes = 0;
    first_delivery = -1;
    last_delivery = -1;
  }

  /// Mean delivered payload rate (bits/s) over a window of `window_s`.
  [[nodiscard]] double throughput_bps(double window_s) const {
    if (window_s <= 0.0) return 0.0;
    return 8.0 * static_cast<double>(delivered_payload_bytes) / window_s;
  }
};

class Network {
 public:
  Network(Simulator& sim, Channel& channel, std::uint64_t seed);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Create a node with the given MAC timing set.
  NodeId add_node(const MacTimings& timings = MacTimings{});

  [[nodiscard]] int node_count() const {
    return static_cast<int>(nodes_.size());
  }
  [[nodiscard]] Node& node(NodeId id) { return *nodes_.at(std::size_t(id)); }
  [[nodiscard]] const Node& node(NodeId id) const {
    return *nodes_.at(std::size_t(id));
  }

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] Channel& channel() { return channel_; }
  [[nodiscard]] PacketStore& store() { return store_; }

  // --- flows ---------------------------------------------------------------
  int open_flow(NodeId src, NodeId dst, Protocol proto, int payload_bytes);
  [[nodiscard]] FlowRecord& flow(int id) { return flows_.at(std::size_t(id)); }
  [[nodiscard]] const FlowRecord& flow(int id) const {
    return flows_.at(std::size_t(id));
  }
  [[nodiscard]] int flow_count() const { return static_cast<int>(flows_.size()); }
  void reset_flow_counters();

  /// Called by nodes when a packet reaches its end-to-end destination.
  void flow_delivered(const Packet& p);

  /// Install symmetric routes along an explicit node path (both directions),
  /// and stamp per-hop link rates.
  void set_path_routes(const std::vector<NodeId>& path, Rate rate);

 private:
  Simulator& sim_;
  Channel& channel_;
  std::uint64_t seed_;
  PacketStore store_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<FlowRecord> flows_;
};

}  // namespace meshopt
