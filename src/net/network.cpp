#include "net/network.h"

#include <string>

namespace meshopt {

Network::Network(Simulator& sim, Channel& channel, std::uint64_t seed)
    : sim_(sim), channel_(channel), seed_(seed) {}

NodeId Network::add_node(const MacTimings& timings) {
  const auto idx = nodes_.size();
  RngStream rng(seed_, "mac-" + std::to_string(idx));
  nodes_.push_back(
      std::make_unique<Node>(*this, sim_, channel_, timings, rng));
  return nodes_.back()->id();
}

int Network::open_flow(NodeId src, NodeId dst, Protocol proto,
                       int payload_bytes) {
  FlowRecord rec;
  rec.id = static_cast<int>(flows_.size());
  rec.src = src;
  rec.dst = dst;
  rec.proto = proto;
  rec.payload_bytes = payload_bytes;
  flows_.push_back(std::move(rec));
  return flows_.back().id;
}

void Network::reset_flow_counters() {
  for (auto& f : flows_) f.reset_counters();
}

void Network::flow_delivered(const Packet& p) {
  if (p.flow < 0 || p.flow >= flow_count()) return;
  FlowRecord& f = flows_[static_cast<std::size_t>(p.flow)];
  ++f.delivered_packets;
  f.delivered_payload_bytes += static_cast<std::uint64_t>(f.payload_bytes);
  if (f.first_delivery < 0) f.first_delivery = sim_.now();
  f.last_delivery = sim_.now();
  if (f.on_delivery) f.on_delivery(p);
}

void Network::set_path_routes(const std::vector<NodeId>& path, Rate rate) {
  if (path.size() < 2) return;
  const NodeId dst = path.back();
  const NodeId src = path.front();
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    node(path[i]).set_route(dst, path[i + 1]);
    node(path[i]).set_link_rate(path[i + 1], rate);
    // Reverse direction (for TCP ACKs / symmetric traffic).
    node(path[i + 1]).set_route(src, path[i]);
    node(path[i + 1]).set_link_rate(path[i], rate);
  }
  // Intermediate hops also need routes for the end-to-end addresses.
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    for (std::size_t j = i + 1; j < path.size(); ++j) {
      node(path[i]).set_route(path[j], path[i + 1]);
      node(path[j]).set_route(path[i], path[j - 1]);
    }
  }
}

}  // namespace meshopt
