#include "net/shaper.h"

#include <algorithm>

namespace meshopt {

TokenBucketShaper::TokenBucketShaper(Simulator& sim, double rate_bps,
                                     int bucket_bytes, ForwardFn forward)
    : sim_(sim),
      rate_bps_(rate_bps),
      bucket_bytes_(static_cast<double>(bucket_bytes)),
      tokens_(static_cast<double>(bucket_bytes)),
      last_refill_(sim.now()),
      forward_(std::move(forward)) {}

void TokenBucketShaper::set_rate_bps(double rate_bps) {
  refill();
  rate_bps_ = std::max(rate_bps, 0.0);
  drain();
}

void TokenBucketShaper::refill() {
  const TimeNs now = sim_.now();
  const double elapsed_s = to_seconds(now - last_refill_);
  last_refill_ = now;
  tokens_ = std::min(bucket_bytes_, tokens_ + elapsed_s * rate_bps_ / 8.0);
}

void TokenBucketShaper::offer(const Packet& p, int payload_bytes) {
  if (queue_.size() >= capacity_) {
    ++drops_;
    return;
  }
  // The bucket must hold at least one maximum-size packet, or that packet
  // could never be released no matter how long it waits.
  bucket_bytes_ = std::max(bucket_bytes_, static_cast<double>(payload_bytes));
  queue_.emplace_back(p, payload_bytes);
  drain();
}

void TokenBucketShaper::drain() {
  refill();
  while (!queue_.empty() &&
         tokens_ >= static_cast<double>(queue_.front().second)) {
    auto [p, bytes] = queue_.front();
    queue_.pop_front();
    tokens_ -= static_cast<double>(bytes);
    forward_(p);
  }
  if (!queue_.empty()) schedule_drain();
}

void TokenBucketShaper::schedule_drain() {
  if (drain_ev_ != kNoEvent) return;
  if (rate_bps_ <= 0.0) return;  // starved until the rate is raised
  const double deficit =
      static_cast<double>(queue_.front().second) - tokens_;
  const double wait_s = std::max(deficit, 0.0) * 8.0 / rate_bps_;
  drain_ev_ = sim_.schedule(seconds(wait_s) + 1, [this] {
    drain_ev_ = kNoEvent;
    drain();
  });
}

}  // namespace meshopt
