#pragma once
// Token-bucket traffic shaper — the network-layer rate limiter the paper's
// controller programs with the optimized rates (the Click BandwidthShaper
// stand-in). Rates are in transport-payload bits per second, matching the
// optimizer's y_s / x_s variables.

#include <cstdint>
#include <deque>
#include <functional>

#include "net/packet.h"
#include "sim/simulator.h"

namespace meshopt {

class TokenBucketShaper {
 public:
  using ForwardFn = std::function<void(const Packet&)>;

  /// `rate_bps` counts packet payload bits; `bucket_bytes` is the burst
  /// allowance in payload bytes.
  TokenBucketShaper(Simulator& sim, double rate_bps, int bucket_bytes,
                    ForwardFn forward);

  /// Change the shaping rate (takes effect immediately; tokens preserved).
  void set_rate_bps(double rate_bps);
  [[nodiscard]] double rate_bps() const { return rate_bps_; }

  /// Offer a packet; it is forwarded now if tokens allow, else queued.
  /// `payload_bytes` is the amount charged against the bucket.
  void offer(const Packet& p, int payload_bytes);

  [[nodiscard]] std::size_t backlog() const { return queue_.size(); }
  void set_queue_capacity(std::size_t cap) { capacity_ = cap; }
  [[nodiscard]] std::uint64_t drops() const { return drops_; }

 private:
  void refill();
  void drain();
  void schedule_drain();

  Simulator& sim_;
  double rate_bps_;
  double bucket_bytes_;
  double tokens_;
  TimeNs last_refill_ = 0;
  ForwardFn forward_;
  std::deque<std::pair<Packet, int>> queue_;
  std::size_t capacity_ = 256;
  std::uint64_t drops_ = 0;
  EventId drain_ev_ = kNoEvent;
};

}  // namespace meshopt
