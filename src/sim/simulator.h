#pragma once
// Discrete-event simulation core.
//
// Time is kept in integer nanoseconds so that event ordering is exact and
// runs are reproducible. Events are closures; scheduling returns an id that
// can be used to cancel the event before it fires (cancellation is O(1),
// the entry is lazily discarded when popped).

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace meshopt {

using TimeNs = std::int64_t;

constexpr TimeNs kNanosPerMicro = 1'000;
constexpr TimeNs kNanosPerMilli = 1'000'000;
constexpr TimeNs kNanosPerSec = 1'000'000'000;

[[nodiscard]] constexpr TimeNs micros(double us) {
  return static_cast<TimeNs>(us * static_cast<double>(kNanosPerMicro));
}
[[nodiscard]] constexpr TimeNs millis(double ms) {
  return static_cast<TimeNs>(ms * static_cast<double>(kNanosPerMilli));
}
[[nodiscard]] constexpr TimeNs seconds(double s) {
  return static_cast<TimeNs>(s * static_cast<double>(kNanosPerSec));
}
[[nodiscard]] constexpr double to_seconds(TimeNs t) {
  return static_cast<double>(t) / static_cast<double>(kNanosPerSec);
}

/// Handle to a scheduled event. Id 0 is "no event".
using EventId = std::uint64_t;
constexpr EventId kNoEvent = 0;

/// Single-threaded discrete-event simulator.
///
/// Ties are broken by scheduling order (FIFO among same-time events), which
/// keeps runs deterministic.
class Simulator {
 public:
  using Action = std::function<void()>;

  [[nodiscard]] TimeNs now() const { return now_; }

  /// Schedule `action` to run `delay` ns from now. Negative delays clamp to 0.
  EventId schedule(TimeNs delay, Action action);

  /// Schedule at an absolute time (clamped to now).
  EventId schedule_at(TimeNs when, Action action);

  /// Cancel a pending event. Safe to call with kNoEvent or an already-fired
  /// id (no-op). Returns true if the event was pending and is now cancelled.
  bool cancel(EventId id);

  /// Run until the event queue drains or simulated time exceeds `until`.
  void run_until(TimeNs until);

  /// Run until the queue is empty.
  void run();

  /// Stop a run_* loop after the current event completes.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::size_t pending_events() const { return live_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  struct Entry {
    TimeNs time;
    std::uint64_t seq;
    EventId id;
    bool operator>(const Entry& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  bool pop_next(Entry& out);

  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::unordered_map<EventId, Action> live_;
};

}  // namespace meshopt
