#pragma once
// Discrete-event simulation core.
//
// Time is kept in integer nanoseconds so that event ordering is exact and
// runs are reproducible. Events are closures held in a slot-pool slab:
// scheduling hands out a generation-stamped id (slot index + generation
// counter packed into 64 bits), so cancellation is an O(1) generation bump
// with no hash lookup, and firing an event is a pop + slab move with no
// per-event node allocations. Closures up to EventAction::kInlineSize bytes
// live inline in their slot; larger ones fall back to a single heap cell.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace meshopt {

using TimeNs = std::int64_t;

constexpr TimeNs kNanosPerMicro = 1'000;
constexpr TimeNs kNanosPerMilli = 1'000'000;
constexpr TimeNs kNanosPerSec = 1'000'000'000;

[[nodiscard]] constexpr TimeNs micros(double us) {
  return static_cast<TimeNs>(us * static_cast<double>(kNanosPerMicro));
}
[[nodiscard]] constexpr TimeNs millis(double ms) {
  return static_cast<TimeNs>(ms * static_cast<double>(kNanosPerMilli));
}
[[nodiscard]] constexpr TimeNs seconds(double s) {
  return static_cast<TimeNs>(s * static_cast<double>(kNanosPerSec));
}
[[nodiscard]] constexpr double to_seconds(TimeNs t) {
  return static_cast<double>(t) / static_cast<double>(kNanosPerSec);
}

/// Handle to a scheduled event. Id 0 is "no event".
using EventId = std::uint64_t;
constexpr EventId kNoEvent = 0;

/// Move-only callable with a large inline buffer, so typical simulator
/// closures (a `this` pointer plus a Frame, a couple of ids) are stored
/// in-place in the event slab instead of behind a heap allocation the way
/// std::function's small-buffer optimization would force.
class EventAction {
 public:
  /// Sized so a Slot (action + ops pointer + generation) fills exactly one
  /// 64-byte cache line; every closure in the library fits (the largest,
  /// the channel's end-of-frame event, captures two words).
  static constexpr std::size_t kInlineSize = 48;

  EventAction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventAction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventAction(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  /// Destroy the current callable (if any) and construct `f` in place.
  template <typename F>
  void emplace(F&& f) {
    reset();
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &heap_ops<Fn>;
    }
  }

  EventAction(EventAction&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
  }

  EventAction& operator=(EventAction&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, o.buf_);
        o.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventAction(const EventAction&) = delete;
  EventAction& operator=(const EventAction&) = delete;

  ~EventAction() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct into dst from src, then destroy src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* dst, void* src) {
        Fn* s = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*s));
        s->~Fn();
      },
      [](void* p) { static_cast<Fn*>(p)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* p) { (**static_cast<Fn**>(p))(); },
      [](void* dst, void* src) {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      },
      [](void* p) { delete *static_cast<Fn**>(p); },
  };

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

/// Single-threaded discrete-event simulator.
///
/// Ties are broken by scheduling order (FIFO among same-time events), which
/// keeps runs deterministic.
class Simulator {
 public:
  using Action = EventAction;

  Simulator() { constructed_count().fetch_add(1, std::memory_order_relaxed); }

  /// Process-wide count of Simulator constructions. Diagnostics only: lets
  /// tests pin that a pure-replay path (e.g. ControllerFleet::replay)
  /// builds no simulator at all.
  [[nodiscard]] static std::uint64_t constructed() {
    return constructed_count().load(std::memory_order_relaxed);
  }

  [[nodiscard]] TimeNs now() const { return now_; }

  /// Schedule `action` to run `delay` ns from now. Negative delays clamp to 0.
  EventId schedule(TimeNs delay, Action action);

  /// Schedule at an absolute time (clamped to now).
  EventId schedule_at(TimeNs when, Action action);

  /// Callable overloads: construct the closure directly in its event slot,
  /// skipping the type-erased moves of the Action-value path.
  template <typename F,
            std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventAction>,
                             int> = 0>
  EventId schedule(TimeNs delay, F&& f) {
    if (delay < 0) delay = 0;
    return schedule_at(now_ + delay, std::forward<F>(f));
  }

  template <typename F,
            std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventAction>,
                             int> = 0>
  EventId schedule_at(TimeNs when, F&& f) {
    if (when < now_) when = now_;
    const std::uint32_t slot = acquire_slot();
    Slot& s = slot_ref(slot);
    s.action.emplace(std::forward<F>(f));
    queue_.push(Entry{when, slot, s.gen});
    ++live_count_;
    return encode(slot, s.gen);
  }

  /// Cancel a pending event. Safe to call with kNoEvent or an already-fired
  /// id (no-op). Returns true if the event was pending and is now cancelled.
  bool cancel(EventId id);

  /// Run until the event queue drains or simulated time exceeds `until`.
  void run_until(TimeNs until);

  /// Run until the queue is empty.
  void run();

  /// Stop a run_* loop after the current event completes.
  void stop() { stopped_ = true; }

  [[nodiscard]] std::size_t pending_events() const { return live_count_; }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  [[nodiscard]] static std::atomic<std::uint64_t>& constructed_count() {
    static std::atomic<std::uint64_t> count{0};
    return count;
  }

  struct Slot {
    Action action;
    std::uint32_t gen = 0;
  };

  /// 16 bytes: no sequence number. FIFO among same-time events falls out
  /// of the bucket discipline — see Calendar::push.
  struct Entry {
    TimeNs time;
    std::uint32_t slot;
    std::uint32_t gen;

    [[nodiscard]] bool before(const Entry& o) const { return time < o.time; }
  };

  /// Slots live in fixed-size chunks so the slab never relocates on growth
  /// (EventAction is not trivially movable, so a flat vector would pay an
  /// indirect-call move per slot on every reallocation).
  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  [[nodiscard]] Slot& slot_ref(std::uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }
  [[nodiscard]] const Slot& slot_ref(std::uint32_t slot) const {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  [[nodiscard]] static EventId encode(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(slot) + 1) << 32 | gen;
  }

  /// Pop a recycled slot, or mint a new one (growing the slab by a chunk —
  /// existing slots never move).
  [[nodiscard]] std::uint32_t acquire_slot() {
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    const std::uint32_t slot = slot_count_++;
    if ((slot >> kChunkShift) >= chunks_.size()) {
      chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
    }
    return slot;
  }

  [[nodiscard]] bool is_live(std::uint32_t slot, std::uint32_t gen) const {
    return slot < slot_count_ && slot_ref(slot).gen == gen;
  }

  /// Destroy the slot's action, bump its generation (invalidating every
  /// outstanding id and queue entry that references it), and recycle it.
  void release_slot(std::uint32_t slot) {
    Slot& s = slot_ref(slot);
    s.action.reset();
    ++s.gen;
    free_slots_.push_back(slot);
    --live_count_;
  }

  /// Pop-side hot path: run the slot's action in place and recycle it.
  void fire(std::uint32_t slot);

  /// Calendar queue (Brown 1988): time is divided into power-of-two-width
  /// "days"; day d hashes to bucket d & mask. Each bucket is kept sorted
  /// descending by time so its back() is its minimum and pop is a pop_back.
  /// Enqueue and dequeue are O(1) amortized versus the O(log n) sift of a
  /// binary heap, and the pop order is the exact (time, FIFO) total order,
  /// so simulations are bit-identical to a heap-backed queue.
  class Calendar {
   public:
    Calendar() { buckets_.resize(kMinBuckets); }

    [[nodiscard]] bool empty() const { return count_ == 0; }
    [[nodiscard]] std::size_t size() const { return count_; }

    void push(const Entry& e) {
      if (count_ >= buckets_.size() * 2) resize(buckets_.size() * 2);
      const std::uint64_t day = day_of(e.time);
      // position() may already sit at a far-future head (run_until can
      // break without popping); a new event landing in an earlier day must
      // pull the cursor back or it would be skipped entirely.
      if (day < cur_day_) cur_day_ = day;
      std::vector<Entry>& v = buckets_[day & (buckets_.size() - 1)];
      // Buckets are sorted descending by time; the scan from the front
      // stops at the first entry the new event is not strictly before, so
      // among equal times the newest entry sits closest to the front and
      // pop_back dequeues the oldest first — FIFO without a sequence
      // number. (resize preserves this by replaying each bucket
      // back-to-front, i.e. oldest-first.)
      if (v.empty() || e.before(v.back())) {
        v.push_back(e);  // strictly earliest of its bucket: plain append
      } else {
        auto it = v.begin();
        while (it != v.end() && e.before(*it)) ++it;
        v.insert(it, e);
      }
      ++count_;
    }

    /// Smallest (time, seq) entry. Precondition: !empty().
    [[nodiscard]] const Entry& min();

    /// Remove and return the smallest entry. Precondition: !empty().
    Entry pop_min();

   private:
    static constexpr std::size_t kMinBuckets = 16;

    [[nodiscard]] std::uint64_t day_of(TimeNs t) const {
      return static_cast<std::uint64_t>(t) >> width_log2_;
    }

    /// Advance cur_day_ to the day of the global minimum entry.
    void position();

    /// Re-bucket everything into `nbuckets` buckets with a day width fitted
    /// to the current average inter-event gap.
    void resize(std::size_t nbuckets);

    std::vector<std::vector<Entry>> buckets_;
    std::size_t count_ = 0;
    int width_log2_ = 14;       ///< day width = 2^14 ns ≈ one 802.11 slot
    std::uint64_t cur_day_ = 0;
  };

  TimeNs now_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_count_ = 0;
  std::uint32_t slot_count_ = 0;
  bool stopped_ = false;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::vector<std::uint32_t> free_slots_;
  Calendar queue_;
};

}  // namespace meshopt
