#include "sim/simulator.h"

#include <utility>

namespace meshopt {

EventId Simulator::schedule(TimeNs delay, Action action) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(action));
}

EventId Simulator::schedule_at(TimeNs when, Action action) {
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  queue_.push(Entry{when, next_seq_++, id});
  live_.emplace(id, std::move(action));
  return id;
}

bool Simulator::cancel(EventId id) {
  if (id == kNoEvent) return false;
  return live_.erase(id) > 0;
}

bool Simulator::pop_next(Entry& out) {
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    if (live_.contains(e.id)) {
      out = e;
      return true;
    }
    // Cancelled entry: discard lazily.
  }
  return false;
}

void Simulator::run_until(TimeNs until) {
  stopped_ = false;
  Entry e;
  while (!stopped_ && !queue_.empty()) {
    if (queue_.top().time > until) break;
    if (!pop_next(e)) break;
    if (e.time > until) {
      // Reinsert: it was popped but lies beyond the horizon.
      queue_.push(e);
      break;
    }
    now_ = e.time;
    auto it = live_.find(e.id);
    Action action = std::move(it->second);
    live_.erase(it);
    ++executed_;
    action();
  }
  if (now_ < until && !stopped_) now_ = until;
}

void Simulator::run() {
  stopped_ = false;
  Entry e;
  while (!stopped_ && pop_next(e)) {
    now_ = e.time;
    auto it = live_.find(e.id);
    Action action = std::move(it->second);
    live_.erase(it);
    ++executed_;
    action();
  }
}

}  // namespace meshopt
