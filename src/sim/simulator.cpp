#include "sim/simulator.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <utility>

namespace meshopt {

// --------------------------------------------------------------- Calendar

const Simulator::Entry& Simulator::Calendar::min() {
  position();
  return buckets_[cur_day_ & (buckets_.size() - 1)].back();
}

Simulator::Entry Simulator::Calendar::pop_min() {
  position();
  std::vector<Entry>& v = buckets_[cur_day_ & (buckets_.size() - 1)];
  const Entry e = v.back();
  v.pop_back();
  --count_;
  // No shrink on drain: empty buckets cost 24 bytes each, while re-bucketing
  // on every drain/refill cycle (the normal shape of a simulation round)
  // would dominate. The bucket count only ratchets up.
  return e;
}

void Simulator::Calendar::position() {
  const std::size_t mask = buckets_.size() - 1;
  std::size_t steps = 0;
  for (;;) {
    const std::vector<Entry>& v = buckets_[cur_day_ & mask];
    if (!v.empty() && day_of(v.back().time) == cur_day_) return;
    ++cur_day_;
    if (++steps > mask) {
      // A full fruitless lap: every remaining entry lies years ahead.
      // Jump straight to the earliest day (each bucket's back is its
      // minimum, and all entries of one day share one bucket).
      std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
      for (const auto& b : buckets_)
        if (!b.empty()) best = std::min(best, day_of(b.back().time));
      cur_day_ = best;
      steps = 0;
    }
  }
}

void Simulator::Calendar::resize(std::size_t nbuckets) {
  std::vector<std::vector<Entry>> old = std::move(buckets_);
  // Fit the day width to the spread: aim for about one event per day so a
  // dequeue rarely scans more than a bucket or two.
  TimeNs lo = std::numeric_limits<TimeNs>::max();
  TimeNs hi = std::numeric_limits<TimeNs>::min();
  for (const auto& b : old) {
    for (const Entry& e : b) {
      lo = std::min(lo, e.time);
      hi = std::max(hi, e.time);
    }
  }
  if (count_ > 1 && hi > lo) {
    const std::uint64_t gap =
        static_cast<std::uint64_t>(hi - lo) / static_cast<std::uint64_t>(count_);
    width_log2_ = gap > 1 ? std::bit_width(gap) : 1;
  }
  buckets_.assign(nbuckets, {});
  const std::size_t n = count_;
  count_ = 0;
  cur_day_ = n > 0 ? day_of(lo) : 0;
  for (auto& b : old) {
    // Oldest-first (back-to-front) so FIFO order among equal times survives.
    for (auto it = b.rbegin(); it != b.rend(); ++it) push(*it);
  }
  count_ = n;
}

// -------------------------------------------------------------- Simulator

EventId Simulator::schedule(TimeNs delay, Action action) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(action));
}

EventId Simulator::schedule_at(TimeNs when, Action action) {
  if (when < now_) when = now_;
  const std::uint32_t slot = acquire_slot();
  Slot& s = slot_ref(slot);
  s.action = std::move(action);
  queue_.push(Entry{when, slot, s.gen});
  ++live_count_;
  return encode(slot, s.gen);
}

bool Simulator::cancel(EventId id) {
  if (id == kNoEvent) return false;
  const std::uint32_t slot = static_cast<std::uint32_t>(id >> 32) - 1;
  const std::uint32_t gen = static_cast<std::uint32_t>(id);
  if (!is_live(slot, gen)) return false;
  release_slot(slot);
  // The queue entry becomes stale and is discarded lazily when popped.
  return true;
}

void Simulator::run_until(TimeNs until) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    const Entry& top = queue_.min();
    if (!is_live(top.slot, top.gen)) {
      queue_.pop_min();  // cancelled: discard lazily
      continue;
    }
    if (top.time > until) break;  // live head beyond the horizon: keep it
    const Entry e = queue_.pop_min();
    now_ = e.time;
    fire(e.slot);
  }
  if (now_ < until && !stopped_) now_ = until;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    const Entry e = queue_.pop_min();
    if (!is_live(e.slot, e.gen)) continue;
    now_ = e.time;
    fire(e.slot);
  }
}

void Simulator::fire(std::uint32_t slot) {
  // Invoke in place: the generation bump kills the id first (a reentrant
  // cancel of this event is a no-op), and the slot only enters the free
  // list afterwards, so reentrant schedules cannot reuse it mid-call.
  // Chunk storage never moves, so the reference survives reentrant growth.
  Slot& s = slot_ref(slot);
  ++s.gen;
  --live_count_;
  ++executed_;
  s.action();
  s.action.reset();
  free_slots_.push_back(slot);
}

}  // namespace meshopt
