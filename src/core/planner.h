#pragma once
// Planner — topology-keyed model cache for cheap re-planning under churn.
//
// The paper's controller re-plans every probing round, but the expensive
// part of a round's model build — the conflict graph's maximal-independent-
// set enumeration (Bron–Kerbosch, ~1 ms at MIS/80 scale) — depends only on
// the snapshot's TOPOLOGY: link identities, the neighbor relation, and the
// LIR table + threshold. Capacity estimates, which drift every round, only
// feed the extreme-point matrix refill. The planner splits the build along
// that line (InterferenceModel::build_topology / from_topology) and caches
// the topology stage in a small LRU keyed by
// MeasurementSnapshot::topology_fingerprint(), so
//
//   * a constant-topology trace replay pays Bron–Kerbosch once, then every
//     further round is a matrix refill + plan (the ≥5x replay win at
//     MIS/80-class topologies, BM_ReplayCachedModel),
//   * a dynamic scenario (scenario/dynamics.h) pays a rebuild only at the
//     rounds where a join/leave/RSS event actually changed the topology,
//     and interferer/loss churn — which moves capacities, not the
//     conflict graph — stays on the cached rows.
//
// Correctness contract: a cache hit requires BOTH the fingerprint and a
// full structural comparison of the topology inputs to match (hash
// collisions can degrade performance, never correctness), and the
// two-stage build is the one-shot build by construction, so plans computed
// through the planner are bit-identical to the uncached
// InterferenceModel::build + plan_rates path (pinned in
// tests/test_planner.cpp for live and replay paths).
//
// Thread-safety: none — one Planner per consumer, exactly like
// NetworkOptimizer (fleet replay jobs each construct their own).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/interference.h"
#include "core/rate_plan.h"
#include "core/snapshot.h"

namespace meshopt {

class TraceRecorder;

/// Cache accounting, cumulative since construction (or clear()).
struct PlannerStats {
  std::uint64_t hits = 0;       ///< model() calls served from the cache
  std::uint64_t misses = 0;     ///< cacheable calls that ran Bron–Kerbosch
  std::uint64_t evictions = 0;  ///< entries displaced by LRU pressure
  /// model(cacheable=false) calls that found no resident entry — the
  /// guarded controller's REPAIRED snapshots. Counted apart from misses:
  /// these builds are barred from storing an entry by design, so charging
  /// them as misses would make hit-rate accounting under faults dishonest
  /// (a fault storm would look like cache thrash).
  std::uint64_t uncacheable_plans = 0;
};

/// Model/plan stages with a topology-keyed cache of the MIS enumeration.
class Planner {
 public:
  /// `cache_entries` bounds the LRU; 0 disables caching entirely (every
  /// model() call rebuilds — the uncached reference behavior).
  explicit Planner(std::size_t cache_entries = 8)
      : capacity_(cache_entries) {}

  /// Build — or reuse — the interference model for `snap`. The returned
  /// reference stays valid until the next model()/plan()/clear() call.
  /// Output is bit-identical to InterferenceModel::build(snap, kind,
  /// mis_cap) whether it hit or missed. A hit skips Bron–Kerbosch AND the
  /// full matrix refill: since a topology fixes the extreme-point
  /// matrix's nonzero positions, only the member cells are overwritten
  /// with the round's capacities (refresh_extreme_point_matrix).
  ///
  /// `cacheable = false` keeps the LRU read-only for this call: a miss
  /// builds the model without storing the topology. The guarded
  /// controller passes false for snapshots its validator REPAIRED, so a
  /// topology derived from corrupted measurements (e.g. a partial
  /// snapshot's shrunken link set) never becomes a resident entry that
  /// later rounds could be served from. Reads stay allowed — a hit
  /// requires a full structural match of the topology inputs, so a
  /// repaired snapshot that genuinely matches a trusted entry IS that
  /// topology.
  const InterferenceModel& model(const MeasurementSnapshot& snap,
                                 InterferenceModelKind kind,
                                 std::size_t mis_cap = 200000,
                                 bool cacheable = true);

  /// model() + plan_rates() in one call — the whole pure half of a
  /// controller round over one snapshot.
  ///
  /// Plan tiers: with cfg.tier == PlanTier::kFast and the model served
  /// from (or stored into) a cache entry, the entry's ColumnGenOptimizer
  /// is passed as warm state, so the working column set and LP basis
  /// carry across rounds of the same topology epoch — the cross-round
  /// warm start that makes fast-tier replay sublinear in K. Warm state is
  /// keyed to the entry (it dies with eviction/clear and is never shared
  /// across topologies); uncached and uncacheable calls run the fast tier
  /// cold. The exact tier is unaffected and stays bit-identical to the
  /// uncached build + plan_rates path.
  [[nodiscard]] RatePlan plan(const MeasurementSnapshot& snap,
                              InterferenceModelKind kind,
                              const std::vector<FlowSpec>& flows,
                              const PlanConfig& cfg,
                              std::size_t mis_cap = 200000,
                              bool cacheable = true);

  /// Fast-tier warm state of the entry that served the most recent
  /// model() call, creating it on demand; nullptr when that call went
  /// through the uncached/uncacheable path. Valid only until the next
  /// model()/plan()/clear() call — the decomposition tier (opt/decompose.h)
  /// uses it to run its joint Frank–Wolfe against this component's
  /// entry-owned working columns and basis, exactly as plan() would.
  [[nodiscard]] ColumnGenOptimizer* last_entry_column_gen();

  [[nodiscard]] const PlannerStats& stats() const { return stats_; }

  /// Value copy of the counters, taken between plan() calls — the
  /// serving layer's per-interval metrics windows diff two snapshots (or
  /// snapshot + reset) without disturbing the counters themselves.
  /// Planner is single-owner (no concurrent calls), so a snapshot is
  /// atomic by construction: it can never observe a half-updated round.
  [[nodiscard]] PlannerStats stats_snapshot() const { return stats_; }

  /// Zero the counters WITHOUT touching the cache: resident topologies,
  /// LRU order, and fast-tier warm state all survive, so resetting a
  /// metrics window never costs a re-enumeration (unlike clear()).
  void reset_stats() { stats_ = PlannerStats{}; }
  /// Entries currently resident (<= capacity()).
  [[nodiscard]] std::size_t cached_topologies() const {
    return entries_.size();
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Drop every cached topology and reset the stats.
  void clear();

  /// Attach a trace recorder (borrowed; nullptr detaches). model() then
  /// emits kCache events — hit (fingerprint refreshed in place), miss,
  /// uncacheable, evict, each carrying the topology fingerprint — plus a
  /// kModel span around Bron–Kerbosch on the build path, and plan()
  /// forwards the recorder to the entry-owned column-generation warm
  /// state. Records are stamped with the recorder's ambient (lane, round)
  /// context, which the owning controller/service maintains.
  void set_observer(TraceRecorder* obs) { obs_ = obs; }
  [[nodiscard]] TraceRecorder* observer() const { return obs_; }

 private:
  /// One cached topology stage plus the exact inputs it was built from
  /// (the structural key that makes fingerprint collisions harmless) and
  /// the entry-owned model whose matrix hits refresh in place.
  struct Entry {
    std::uint64_t fingerprint = 0;
    InterferenceModelKind requested_kind = InterferenceModelKind::kTwoHop;
    std::size_t mis_cap = 0;
    std::vector<LinkRef> links;
    std::vector<std::pair<NodeId, NodeId>> neighbors;
    DenseMatrix lir;
    std::uint64_t lir_threshold_bits = 0;
    InterferenceTopology topology;
    std::optional<InterferenceModel> model;
    /// Fast-tier warm state (working columns + carried basis), created on
    /// the first kFast plan through this entry. Entry-owned so it can
    /// never outlive — or be replayed against — a different topology.
    std::unique_ptr<ColumnGenOptimizer> column_gen;
    std::uint64_t last_used = 0;
  };

  [[nodiscard]] static bool matches(const Entry& e,
                                    const MeasurementSnapshot& snap,
                                    InterferenceModelKind kind,
                                    std::size_t mis_cap);

  std::size_t capacity_;
  std::vector<Entry> entries_;
  /// Entry that served the most recent model() call (nullptr when it went
  /// through the uncached/uncacheable path). Only read by plan()
  /// immediately after its model() call — any later model()/clear() may
  /// invalidate it (entries_ can reallocate).
  Entry* last_entry_ = nullptr;
  std::uint64_t clock_ = 0;  ///< LRU stamp source
  PlannerStats stats_;
  TraceRecorder* obs_ = nullptr;  ///< borrowed; see set_observer()
  /// Holds the model when caching is disabled (capacity 0): cached models
  /// live in their entries instead.
  std::optional<InterferenceModel> uncached_;
  std::vector<double> caps_scratch_;
};

}  // namespace meshopt
