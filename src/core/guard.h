#pragma once
// Guard layer — input validation for the control plane (see
// ARCHITECTURE.md, "Faults & degradation").
//
// The paper's premise is ONLINE optimization from measured loss/capacity
// estimates, and measurements go bad in practice: a NaN from a division by
// an empty probe window, a capacity outlier from a mis-timed estimator, a
// snapshot missing half its links because a probe burst was lost. Without
// guards those values flow straight through snapshot -> model -> plan and
// out to the shapers. This header supplies the two checkpoints:
//
//   * SnapshotValidator — structural and range checks over a
//     MeasurementSnapshot, with a repair tier (clamp out-of-range losses,
//     drop individually-poisoned links) and a verdict that tells the
//     controller whether the round's input is clean, repaired, or
//     unusable,
//   * PlanValidator — last-line checks over a RatePlan before it is
//     actuated (finite, non-negative, bottleneck-feasible rates).
//
// Both validators are pure value-type machinery: no Network, no locks, no
// randomness. Equal inputs give identical reports, so guarded rounds stay
// bit-deterministic and fault-injected runs are replayable (the same
// contract as the rest of the pipeline).
//
// The resilience state machine that consumes these reports lives in
// MeshController (core/controller.h): HEALTHY -> DEGRADED (repaired
// snapshot, decayed trust) -> FALLBACK (hold last-known-good plan,
// exponential-backoff re-probe). HealthState/HealthStats are defined here
// so fleet drivers and tests can consume them without the controller.

#include <cstdint>
#include <vector>

#include "core/rate_plan.h"
#include "core/snapshot.h"
#include "scenario/workbench.h"

namespace meshopt {

// ------------------------------------------------------------- snapshot

/// What a validator found wrong with one snapshot (one issue per finding;
/// a single link may contribute several).
enum class IssueKind : std::uint8_t {
  kEmptySnapshot,      ///< no links at all (dropped probe window)
  kNonFiniteLoss,      ///< NaN/Inf in p_data/p_ack/p_link
  kLossOutOfRange,     ///< loss < 0 or > max_loss
  kNonFiniteCapacity,  ///< NaN/Inf capacity estimate
  kCapacityOutOfRange, ///< capacity <= min or above the PHY-rate bound
  kMalformedNeighbors, ///< unordered/duplicate/asymmetric neighbor pairs
  kMissingLinks,       ///< expected links absent (partial snapshot)
};

[[nodiscard]] const char* to_string(IssueKind kind);

/// One validator finding: which check fired, on which link (snapshot link
/// index at check time; -1 for snapshot-level issues), and whether the
/// repair tier resolved it.
struct ValidationIssue {
  IssueKind kind = IssueKind::kEmptySnapshot;
  int link = -1;
  bool repaired = false;

  friend bool operator==(const ValidationIssue&,
                         const ValidationIssue&) = default;
};

/// The validator's overall verdict on a snapshot.
enum class SnapshotVerdict : std::uint8_t {
  kClean,     ///< untouched; safe to plan and cache
  kRepaired,  ///< usable after clamps/drops; plan but do not cache
  kRejected,  ///< unusable; the controller must fall back
};

[[nodiscard]] const char* to_string(SnapshotVerdict verdict);

/// Structured result of one SnapshotValidator::validate call.
struct ValidationReport {
  SnapshotVerdict verdict = SnapshotVerdict::kClean;
  std::vector<ValidationIssue> issues;
  int links_checked = 0;
  int links_clamped = 0;  ///< links kept after clamping a loss field
  int links_dropped = 0;  ///< links removed by the repair tier
  int links_missing = 0;  ///< expected links absent from the snapshot

  [[nodiscard]] bool usable() const {
    return verdict != SnapshotVerdict::kRejected;
  }
};

/// Tuning of the snapshot checks and their repair tier.
struct SnapshotGuardConfig {
  /// Losses are valid in [0, max_loss]; finite values outside are clamped
  /// (repair), non-finite values drop the link.
  double max_loss = 1.0;
  /// Capacity estimates at or below this are treated as unusable and drop
  /// the link (a zero/negative maxUDP cannot feed the rate region).
  double min_capacity_bps = 1.0;
  /// A link's capacity can never exceed its PHY rate; estimates above
  /// margin * rate_bps(link.rate) are outliers and are clamped down to
  /// that bound.
  double capacity_margin = 1.0;
  /// Minimum fraction of the expected links that must survive checking
  /// (and repair) for the snapshot to stay usable. Below it — including
  /// the all-links-dropped case — the verdict is kRejected.
  double min_link_coverage = 0.5;
  /// false: any issue rejects the snapshot outright (strict mode, no
  /// repair tier).
  bool repair = true;
};

/// Range/NaN/symmetry/coverage checks with a clamp-or-drop repair tier.
///
/// validate() may mutate the snapshot (that is the repair tier); callers
/// that need the raw measurement preserved should validate a copy. The
/// validator itself is stateless between calls and cheap to construct.
class SnapshotValidator {
 public:
  explicit SnapshotValidator(SnapshotGuardConfig cfg = {}) : cfg_(cfg) {}

  /// Check (and, per config, repair) `snap`. `expected`, when non-null,
  /// is the link set the snapshot should cover (a controller passes its
  /// managed links); coverage issues are only detectable against it.
  ValidationReport validate(MeasurementSnapshot& snap,
                            const std::vector<LinkRef>* expected = nullptr)
      const;

  [[nodiscard]] const SnapshotGuardConfig& config() const { return cfg_; }

 private:
  SnapshotGuardConfig cfg_;
};

// ----------------------------------------------------------------- plan

/// Tuning of the plan-stage guardrails.
struct PlanGuardConfig {
  /// No planned rate may exceed this (absolute sanity bound, bits/s).
  double max_rate_bps = 1e9;
  /// Multiplicative slack on the bottleneck feasibility check: a flow's
  /// planned output must satisfy y_s <= slack * min capacity over its
  /// snapshot links.
  double feasibility_slack = 1.0 + 1e-9;
};

/// Outcome of one PlanValidator::validate call.
struct PlanCheck {
  bool ok = true;
  int flow = -1;                 ///< offending flow index; -1 = plan-level
  const char* reason = nullptr;  ///< static description; nullptr when ok
};

/// Rejects non-finite or feasibility-violating rate plans before they are
/// actuated. Pure and stateless, like SnapshotValidator.
class PlanValidator {
 public:
  explicit PlanValidator(PlanGuardConfig cfg = {}) : cfg_(cfg) {}

  /// Check `plan` (computed for `flows` from `snapshot`): the plan must be
  /// feasible (ok), sized to the flows, finite, non-negative, below the
  /// sanity bound, and each flow's output below its bottleneck capacity.
  [[nodiscard]] PlanCheck validate(const RatePlan& plan,
                                   const MeasurementSnapshot& snapshot,
                                   const std::vector<FlowSpec>& flows) const;

  [[nodiscard]] const PlanGuardConfig& config() const { return cfg_; }

 private:
  PlanGuardConfig cfg_;
};

// --------------------------------------------------------------- health

/// The controller's resilience state (see MeshController::guarded_round).
enum class HealthState : std::uint8_t {
  kHealthy,   ///< clean snapshot, valid plan applied
  kDegraded,  ///< repaired snapshot planned under decayed trust
  kFallback,  ///< holding the last-known-good plan, backing off
};

[[nodiscard]] const char* to_string(HealthState state);

/// Cumulative counters of the guarded control loop.
struct HealthStats {
  std::uint64_t rounds = 0;           ///< guarded rounds run
  std::uint64_t healthy_rounds = 0;   ///< rounds ending kHealthy
  std::uint64_t degraded_rounds = 0;  ///< rounds ending kDegraded
  std::uint64_t fallback_rounds = 0;  ///< rounds ending kFallback
  std::uint64_t snapshots_clean = 0;
  std::uint64_t snapshots_repaired = 0;
  std::uint64_t snapshots_rejected = 0;
  std::uint64_t links_clamped = 0;  ///< repair-tier clamps, total
  std::uint64_t links_dropped = 0;  ///< repair-tier drops, total
  std::uint64_t plans_rejected = 0; ///< infeasible or guardrail-rejected
  std::uint64_t apply_failures = 0; ///< apply_rate callbacks that threw
  std::uint64_t fallback_entries = 0;  ///< transitions into kFallback
  std::uint64_t recoveries = 0;        ///< transitions out of kFallback
  std::uint64_t backoff_skips = 0;  ///< rounds held without a re-plan try

  friend bool operator==(const HealthStats&, const HealthStats&) = default;
};

/// Knobs of the guarded control loop (validators + state machine).
struct GuardConfig {
  SnapshotGuardConfig snapshot{};
  PlanGuardConfig plan{};
  /// Per consecutive degraded round, the applied input rates are scaled
  /// by one more factor of trust_decay (floored at min_trust): repaired
  /// estimates are planned on, but actuated conservatively.
  double trust_decay = 0.9;
  double min_trust = 0.5;
  /// Exponential-backoff re-probe schedule in kFallback: after a failed
  /// round the controller holds the last-known-good plan for
  /// backoff_start rounds before re-attempting, doubling per further
  /// failure up to backoff_max. Deterministic — no jitter — so
  /// fault-injected runs replay bit-identically.
  int backoff_start = 1;
  int backoff_max = 8;
};

}  // namespace meshopt
