#include "core/snapshot.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>

#include "util/json.h"
#include "util/rng.h"

namespace meshopt {

namespace {

// splitmix64 chaining over whole 64-bit values (endian-independent:
// values, not memory, feed the mix) via the library's shared
// RngStream::mix. One multiply-xor round per value keeps fingerprinting
// an 80x80 LIR table in the tens of microseconds — it runs on every
// planner lookup, i.e. every round.
constexpr std::uint64_t kFpSeed = 1469598103934665603ULL;

void fp_mix(std::uint64_t& h, std::uint64_t v) { h = RngStream::mix(h, v); }

}  // namespace

int MeasurementSnapshot::link_index(NodeId src, NodeId dst) const {
  for (std::size_t i = 0; i < links.size(); ++i) {
    if (links[i].src == src && links[i].dst == dst)
      return static_cast<int>(i);
  }
  return -1;
}

bool MeasurementSnapshot::is_neighbor(NodeId a, NodeId b) const {
  if (a == b) return false;
  const std::pair<NodeId, NodeId> key =
      a < b ? std::pair{a, b} : std::pair{b, a};
  return std::binary_search(neighbors.begin(), neighbors.end(), key);
}

std::uint64_t MeasurementSnapshot::topology_fingerprint() const {
  std::uint64_t h = kFpSeed;
  fp_mix(h, links.size());
  for (const SnapshotLink& l : links) {
    fp_mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(l.src)));
    fp_mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(l.dst)));
    fp_mix(h, static_cast<std::uint64_t>(l.rate));
  }
  fp_mix(h, neighbors.size());
  for (const auto& [a, b] : neighbors) {
    fp_mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)));
    fp_mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(b)));
  }
  fp_mix(h, static_cast<std::uint64_t>(lir.rows()));
  fp_mix(h, static_cast<std::uint64_t>(lir.cols()));
  const double* lir_data = lir.data();
  const std::size_t lir_cells =
      static_cast<std::size_t>(lir.rows()) * static_cast<std::size_t>(lir.cols());
  for (std::size_t i = 0; i < lir_cells; ++i)
    fp_mix(h, std::bit_cast<std::uint64_t>(lir_data[i]));
  fp_mix(h, std::bit_cast<std::uint64_t>(lir_threshold));
  return h;
}

MeasurementSnapshot MeasurementSnapshot::restrict_to(
    const std::vector<int>& link_ids) const {
  MeasurementSnapshot sub;
  sub.links.reserve(link_ids.size());
  std::vector<NodeId> nodes;
  for (const int id : link_ids) {
    if (id < 0 || id >= static_cast<int>(links.size()))
      throw std::out_of_range("MeasurementSnapshot::restrict_to");
    const SnapshotLink& l = links[static_cast<std::size_t>(id)];
    sub.links.push_back(l);
    nodes.push_back(l.src);
    nodes.push_back(l.dst);
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  const auto has_node = [&nodes](NodeId n) {
    return std::binary_search(nodes.begin(), nodes.end(), n);
  };
  for (const auto& [a, b] : neighbors)
    if (has_node(a) && has_node(b)) sub.neighbors.emplace_back(a, b);
  sub.lir_threshold = lir_threshold;
  if (!lir.empty()) {
    const int n = static_cast<int>(link_ids.size());
    sub.lir.resize(n, n, 1.0);
    for (int r = 0; r < n; ++r)
      for (int c = 0; c < n; ++c)
        sub.lir(r, c) = lir(link_ids[static_cast<std::size_t>(r)],
                            link_ids[static_cast<std::size_t>(c)]);
  }
  return sub;
}

std::uint64_t MeasurementSnapshot::component_fingerprint(
    const std::vector<int>& link_ids) const {
  return restrict_to(link_ids).topology_fingerprint();
}

std::vector<double> MeasurementSnapshot::capacities() const {
  std::vector<double> caps;
  caps.reserve(links.size());
  for (const SnapshotLink& l : links) caps.push_back(l.estimate.capacity_bps);
  return caps;
}

std::vector<LinkRef> MeasurementSnapshot::link_refs() const {
  std::vector<LinkRef> refs;
  refs.reserve(links.size());
  for (const SnapshotLink& l : links)
    refs.push_back(LinkRef{l.src, l.dst, l.rate});
  return refs;
}

std::string MeasurementSnapshot::to_json() const {
  std::string out;
  out.reserve(256 + links.size() * 160);
  out += "{\"version\":1,\"links\":[";
  for (std::size_t i = 0; i < links.size(); ++i) {
    const SnapshotLink& l = links[i];
    if (i > 0) out.push_back(',');
    out += "{\"src\":";
    json_append_int(out, l.src);
    out += ",\"dst\":";
    json_append_int(out, l.dst);
    out += ",\"rate\":";
    json_append_int(out, static_cast<int>(l.rate));
    out += ",\"retry_limit\":";
    json_append_int(out, l.retry_limit);
    out += ",\"p_data\":";
    json_append_double(out, l.estimate.p_data);
    out += ",\"p_ack\":";
    json_append_double(out, l.estimate.p_ack);
    out += ",\"p_link\":";
    json_append_double(out, l.estimate.p_link);
    out += ",\"capacity_bps\":";
    json_append_double(out, l.estimate.capacity_bps);
    out.push_back('}');
  }
  out += "],\"neighbors\":[";
  for (std::size_t i = 0; i < neighbors.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.push_back('[');
    json_append_int(out, neighbors[i].first);
    out.push_back(',');
    json_append_int(out, neighbors[i].second);
    out.push_back(']');
  }
  out.push_back(']');
  // Always emitted (not only alongside a table) so the exact-round-trip
  // guarantee covers snapshots with a non-default threshold and no LIR.
  out += ",\"lir_threshold\":";
  json_append_double(out, lir_threshold);
  if (!lir.empty()) {
    out += ",\"lir\":[";
    for (int r = 0; r < lir.rows(); ++r) {
      if (r > 0) out.push_back(',');
      out.push_back('[');
      for (int c = 0; c < lir.cols(); ++c) {
        if (c > 0) out.push_back(',');
        json_append_double(out, lir(r, c));
      }
      out.push_back(']');
    }
    out.push_back(']');
  }
  out.push_back('}');
  return out;
}

MeasurementSnapshot MeasurementSnapshot::from_json(std::string_view text) {
  return from_value(JsonValue::parse(text));
}

MeasurementSnapshot MeasurementSnapshot::from_value(const JsonValue& doc) {
  if (doc.at("version").as_int() != 1)
    throw std::invalid_argument("snapshot: unsupported schema version");

  MeasurementSnapshot snap;
  for (const JsonValue& jl : doc.at("links").items()) {
    SnapshotLink l;
    l.src = jl.at("src").as_int();
    l.dst = jl.at("dst").as_int();
    l.rate = static_cast<Rate>(jl.at("rate").as_int());
    l.retry_limit = jl.at("retry_limit").as_int();
    l.estimate.p_data = jl.at("p_data").as_number();
    l.estimate.p_ack = jl.at("p_ack").as_number();
    l.estimate.p_link = jl.at("p_link").as_number();
    l.estimate.capacity_bps = jl.at("capacity_bps").as_number();
    snap.links.push_back(l);
  }
  for (const JsonValue& jp : doc.at("neighbors").items()) {
    const auto& pair = jp.items();
    if (pair.size() != 2)
      throw std::invalid_argument("snapshot: neighbor pair arity");
    // Normalize hand-written documents to the first < second invariant
    // is_neighbor's binary search relies on.
    const NodeId a = pair[0].as_int();
    const NodeId b = pair[1].as_int();
    snap.neighbors.emplace_back(std::min(a, b), std::max(a, b));
  }
  std::sort(snap.neighbors.begin(), snap.neighbors.end());
  snap.neighbors.erase(
      std::unique(snap.neighbors.begin(), snap.neighbors.end()),
      snap.neighbors.end());
  snap.lir_threshold = doc.at("lir_threshold").as_number();
  if (const JsonValue* jlir = doc.find("lir")) {
    const auto& rows = jlir->items();
    const int n = static_cast<int>(rows.size());
    snap.lir.resize(n, n);
    for (int r = 0; r < n; ++r) {
      const auto& cols = rows[static_cast<std::size_t>(r)].items();
      if (static_cast<int>(cols.size()) != n)
        throw std::invalid_argument("snapshot: LIR table must be square");
      for (int c = 0; c < n; ++c)
        snap.lir(r, c) = cols[static_cast<std::size_t>(c)].as_number();
    }
  }
  return snap;
}

}  // namespace meshopt
