#pragma once
// RatePlan + plan_rates() — stage 3 of the control plane's
// snapshot → model → plan pipeline (see ARCHITECTURE.md, "Control plane").
//
// plan_rates() is a pure function of value types: it never touches a live
// Network, takes no locks, draws no randomness, and allocates only its
// outputs. Given equal inputs it returns a bit-identical plan — the
// property the snapshot-replay tests and the multi-threaded
// ControllerFleet driver rely on.

#include <vector>

#include "core/interference.h"
#include "core/snapshot.h"
#include "opt/network_optimizer.h"
#include "phy/radio.h"

namespace meshopt {

/// Value-type description of one managed end-to-end flow (the pipeline's
/// counterpart of ManagedFlow, minus the actuation callback).
struct FlowSpec {
  int flow_id = -1;
  std::vector<NodeId> path;  ///< node sequence src..dst
  bool is_tcp = false;       ///< apply the TCP ACK airtime factor to x_s

  friend bool operator==(const FlowSpec&, const FlowSpec&) = default;
};

/// Tuning knobs of the plan stage.
struct PlanConfig {
  OptimizerConfig optimizer{};
  /// Global scale-down of computed input rates (1.0 = none).
  double headroom = 1.0;
};

/// One rate-limiter program: flow `flow_id` shaped to `x_bps` input rate.
struct ShaperProgram {
  int flow_id = -1;
  double x_bps = 0.0;

  friend bool operator==(const ShaperProgram&, const ShaperProgram&) = default;
};

/// Stage-3 output: target output rates, input rates, shaper programs.
struct RatePlan {
  bool ok = false;        ///< false: empty input or infeasible optimization
  std::vector<double> y;  ///< optimized output rates per flow (bits/s)
  std::vector<double> x;  ///< input rates per flow after loss compensation,
                          ///< TCP ACK discount and headroom (bits/s)
  std::vector<ShaperProgram> shapers;  ///< one per flow, in flow order
  int extreme_points = 0;              ///< K of the rate region used
  int optimizer_iterations = 0;        ///< Frank–Wolfe iterations used

  friend bool operator==(const RatePlan&, const RatePlan&) = default;
};

/// Compute a rate plan from a snapshot and its interference model.
///
/// @pre  `model` was built from `snapshot` (model.num_links() must equal
///       snapshot.links.size()); every hop of every flow path should map
///       to a snapshot link (unknown hops are skipped, matching the
///       historical controller behavior).
/// @post on ok: y.size() == x.size() == shapers.size() == flows.size();
///       shapers[s] targets flows[s].flow_id. Deterministic: equal inputs
///       give bit-identical outputs.
[[nodiscard]] RatePlan plan_rates(const MeasurementSnapshot& snapshot,
                                  const InterferenceModel& model,
                                  const std::vector<FlowSpec>& flows,
                                  const PlanConfig& cfg);

}  // namespace meshopt
