#pragma once
// RatePlan + plan_rates() — stage 3 of the control plane's
// snapshot → model → plan pipeline (see ARCHITECTURE.md, "Control plane").
//
// plan_rates() is a pure function of value types: it never touches a live
// Network, takes no locks, draws no randomness, and allocates only its
// outputs. Given equal inputs it returns a bit-identical plan — the
// property the snapshot-replay tests and the multi-threaded
// ControllerFleet driver rely on.

#include <vector>

#include "core/interference.h"
#include "core/snapshot.h"
#include "opt/column_gen.h"
#include "opt/network_optimizer.h"
#include "phy/radio.h"

namespace meshopt {

/// Value-type description of one managed end-to-end flow (the pipeline's
/// counterpart of ManagedFlow, minus the actuation callback).
struct FlowSpec {
  int flow_id = -1;
  std::vector<NodeId> path;  ///< node sequence src..dst
  bool is_tcp = false;       ///< apply the TCP ACK airtime factor to x_s

  friend bool operator==(const FlowSpec&, const FlowSpec&) = default;
};

/// Tuning knobs of the plan stage.
struct PlanConfig {
  OptimizerConfig optimizer{};
  /// Global scale-down of computed input rates (1.0 = none).
  double headroom = 1.0;
  /// Which planning path runs (ARCHITECTURE.md, "Plan tiers"):
  /// kExact — the full-K extreme-point path, bit-identical across thread
  /// counts, replay vs live, cached vs cold (the default and the
  /// reference);
  /// kFast — column generation over the conflict graph, objective within
  /// a 1e-6 relative gap of kExact (CI-pinned) but NOT bit-identical to
  /// it; still a deterministic function of (inputs, replay configuration).
  PlanTier tier = PlanTier::kExact;
};

/// One rate-limiter program: flow `flow_id` shaped to `x_bps` input rate.
struct ShaperProgram {
  int flow_id = -1;
  double x_bps = 0.0;

  friend bool operator==(const ShaperProgram&, const ShaperProgram&) = default;
};

/// Stage-3 output: target output rates, input rates, shaper programs.
struct RatePlan {
  bool ok = false;        ///< false: empty input or infeasible optimization
  std::vector<double> y;  ///< optimized output rates per flow (bits/s)
  std::vector<double> x;  ///< input rates per flow after loss compensation,
                          ///< TCP ACK discount and headroom (bits/s)
  std::vector<ShaperProgram> shapers;  ///< one per flow, in flow order
  int extreme_points = 0;              ///< K of the rate region used: full K
                                       ///< (exact) or working-set size (fast)
  int optimizer_iterations = 0;        ///< Frank–Wolfe iterations used

  // Tier metadata. Both tiers report objective_value; the column-
  // generation counters stay 0 on the exact tier.
  PlanTier tier = PlanTier::kExact;  ///< which tier produced this plan
  double objective_value = 0.0;      ///< attained utility (objective units)
  int columns_generated = 0;  ///< fast tier: working-set columns at finish
  int pricing_rounds = 0;     ///< fast tier: pricing-oracle invocations

  friend bool operator==(const RatePlan&, const RatePlan&) = default;
};

/// Compute a rate plan from a snapshot and its interference model.
///
/// @pre  `model` was built from `snapshot` (model.num_links() must equal
///       snapshot.links.size()); every hop of every flow path should map
///       to a snapshot link (unknown hops are skipped, matching the
///       historical controller behavior).
/// @post on ok: y.size() == x.size() == shapers.size() == flows.size();
///       shapers[s] targets flows[s].flow_id. Deterministic: equal inputs
///       give bit-identical outputs.
[[nodiscard]] RatePlan plan_rates(const MeasurementSnapshot& snapshot,
                                  const InterferenceModel& model,
                                  const std::vector<FlowSpec>& flows,
                                  const PlanConfig& cfg);

/// Overload with fast-tier warm state: when cfg.tier == PlanTier::kFast
/// and `warm` is non-null, the solve reuses `warm`'s working column set
/// and carried basis (the cross-round warm start; the Planner passes its
/// per-topology-entry instance). A null `warm` runs the fast tier cold;
/// the exact tier ignores the argument entirely. The caller owns keeping
/// `warm` keyed to the snapshot's topology — a warm instance must only
/// ever see one conflict-graph structure (see ColumnGenOptimizer::reset).
[[nodiscard]] RatePlan plan_rates(const MeasurementSnapshot& snapshot,
                                  const InterferenceModel& model,
                                  const std::vector<FlowSpec>& flows,
                                  const PlanConfig& cfg,
                                  ColumnGenOptimizer* warm);

}  // namespace meshopt
