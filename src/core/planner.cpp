#include "core/planner.h"

#include <algorithm>
#include <bit>

#include "obs/obs.h"

namespace meshopt {

bool Planner::matches(const Entry& e, const MeasurementSnapshot& snap,
                      InterferenceModelKind kind, std::size_t mis_cap) {
  if (e.requested_kind != kind || e.mis_cap != mis_cap) return false;
  if (e.links.size() != snap.links.size()) return false;
  for (std::size_t i = 0; i < e.links.size(); ++i) {
    const SnapshotLink& l = snap.links[i];
    if (e.links[i].src != l.src || e.links[i].dst != l.dst ||
        e.links[i].rate != l.rate)
      return false;
  }
  return e.neighbors == snap.neighbors && e.lir == snap.lir &&
         e.lir_threshold_bits ==
             std::bit_cast<std::uint64_t>(snap.lir_threshold);
}

const InterferenceModel& Planner::model(const MeasurementSnapshot& snap,
                                        InterferenceModelKind kind,
                                        std::size_t mis_cap, bool cacheable) {
  caps_scratch_.clear();
  caps_scratch_.reserve(snap.links.size());
  for (const SnapshotLink& l : snap.links)
    caps_scratch_.push_back(l.estimate.capacity_bps);

  const std::uint64_t fp = snap.topology_fingerprint();
  ++clock_;
  last_entry_ = nullptr;
  for (Entry& e : entries_) {
    if (e.fingerprint == fp && matches(e, snap, kind, mis_cap)) {
      e.last_used = clock_;
      ++stats_.hits;
      last_entry_ = &e;
      // The topology fixes the nonzero positions, so the round's
      // capacities overwrite exactly the member cells of the entry's
      // matrix — bit-identical to a full refill, nnz writes instead of
      // K x L.
      refresh_extreme_point_matrix(caps_scratch_, e.topology.mis_rows,
                                   e.model->extreme_points_);
      if (obs_ != nullptr) {
        obs_->emit(ObsStage::kCache, ObsKind::kEvent, ObsCode::kCacheHit, fp,
                   e.topology.mis_rows.count());
      }
      return *e.model;
    }
  }

  // Repaired-snapshot builds are barred from storing an entry, so they are
  // not cache misses — a miss implies the cache could have held it.
  if (!cacheable)
    ++stats_.uncacheable_plans;
  else
    ++stats_.misses;
  if (obs_ != nullptr) {
    obs_->emit(ObsStage::kCache, ObsKind::kEvent,
               cacheable ? ObsCode::kCacheMiss : ObsCode::kCacheUncacheable,
               fp, snap.links.size());
  }
  ObsSpan model_span(obs_, ObsStage::kModel);
  InterferenceTopology topo =
      InterferenceModel::build_topology(snap, kind, mis_cap);
  model_span.payload(fp, topo.mis_rows.count());
  if (capacity_ == 0 || !cacheable) {
    // Nothing is stored: move the whole topology into the model.
    uncached_.emplace(
        InterferenceModel::from_topology(std::move(topo), caps_scratch_));
    return *uncached_;
  }
  // The entry keeps the topology for future refreshes, so the model gets
  // a copy of the conflict graph (a one-time cost per topology epoch).
  InterferenceModel built =
      InterferenceModel::from_topology(topo, caps_scratch_);
  if (entries_.size() >= capacity_) {
    auto victim = std::min_element(entries_.begin(), entries_.end(),
                                   [](const Entry& a, const Entry& b) {
                                     return a.last_used < b.last_used;
                                   });
    if (obs_ != nullptr) {
      obs_->emit(ObsStage::kCache, ObsKind::kEvent, ObsCode::kCacheEvict,
                 victim->fingerprint);
    }
    entries_.erase(victim);
    ++stats_.evictions;
  }
  Entry e;
  e.fingerprint = fp;
  e.requested_kind = kind;
  e.mis_cap = mis_cap;
  e.links = snap.link_refs();
  e.neighbors = snap.neighbors;
  e.lir = snap.lir;
  e.lir_threshold_bits = std::bit_cast<std::uint64_t>(snap.lir_threshold);
  e.topology = std::move(topo);
  e.model.emplace(std::move(built));
  e.last_used = clock_;
  entries_.push_back(std::move(e));
  last_entry_ = &entries_.back();
  return *entries_.back().model;
}

RatePlan Planner::plan(const MeasurementSnapshot& snap,
                       InterferenceModelKind kind,
                       const std::vector<FlowSpec>& flows,
                       const PlanConfig& cfg, std::size_t mis_cap,
                       bool cacheable) {
  const InterferenceModel& m = model(snap, kind, mis_cap, cacheable);
  ColumnGenOptimizer* warm = nullptr;
  if (cfg.tier == PlanTier::kFast && last_entry_ != nullptr) {
    if (!last_entry_->column_gen)
      last_entry_->column_gen = std::make_unique<ColumnGenOptimizer>();
    warm = last_entry_->column_gen.get();
    warm->set_observer(obs_);
  }
  return plan_rates(snap, m, flows, cfg, warm);
}

ColumnGenOptimizer* Planner::last_entry_column_gen() {
  if (last_entry_ == nullptr) return nullptr;
  if (!last_entry_->column_gen)
    last_entry_->column_gen = std::make_unique<ColumnGenOptimizer>();
  return last_entry_->column_gen.get();
}

void Planner::clear() {
  entries_.clear();
  last_entry_ = nullptr;
  uncached_.reset();
  clock_ = 0;
  stats_ = PlannerStats{};
}

}  // namespace meshopt
