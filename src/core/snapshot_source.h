#pragma once
// SnapshotSource — pluggable producer of MeasurementSnapshots (see
// ARCHITECTURE.md, "Trace & replay").
//
// PR 3 made the model/plan stages pure functions of a MeasurementSnapshot;
// this interface abstracts where the snapshots come from, so every
// consumer (controller round loops, ControllerFleet cells, sweep studies)
// is written once against `next()` and runs unchanged over
//   * LiveSource (src/probe/live_source.h) — runs the probing-window
//     simulation and senses a fresh snapshot per call, or
//   * TraceSource (below) — streams rounds recorded earlier, constructing
//     no Simulator at all.
//
// Determinism contract: a source must yield the same snapshot sequence for
// the same construction inputs — LiveSource inherits this from the
// simulator's determinism, TraceSource trivially from the trace. Sources
// are single-consumer: next() advances a cursor and is not thread-safe;
// share a recorded trace across threads by giving each consumer its own
// TraceSource over the same (const, immutable) round storage.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "core/snapshot.h"
#include "util/trace_codec.h"

namespace meshopt {

/// Produces the measurement windows a planning loop consumes.
class SnapshotSource {
 public:
  virtual ~SnapshotSource() = default;

  /// Produce the next measurement window into `out`. Returns false when
  /// the source is exhausted (a live source may never be).
  virtual bool next(MeasurementSnapshot& out) = 0;

  /// Windows remaining, or -1 when unbounded/unknown.
  [[nodiscard]] virtual int remaining() const { return -1; }
};

/// Replays recorded rounds from an in-memory trace. The rounds may be
/// owned (moved in / loaded from a file) or borrowed from shared immutable
/// storage — the borrow form is what fleet replay uses so N cells share
/// one recorded trace without N copies.
class TraceSource final : public SnapshotSource {
 public:
  /// Own a copy of the rounds.
  explicit TraceSource(std::vector<MeasurementSnapshot> rounds)
      : owned_(std::move(rounds)) {}

  /// Borrow `rounds` — the caller keeps it alive and unmodified for the
  /// source's lifetime (e.g. a trace shared across fleet replay cells).
  explicit TraceSource(const std::vector<MeasurementSnapshot>* rounds)
      : borrowed_(rounds) {}

  /// Load a binary trace file (util/trace_codec.h) and own its rounds.
  /// @throws std::runtime_error / std::invalid_argument as read_trace.
  /// With OnCorruptRecord::kSkipAndCount a damaged trace yields its
  /// surviving records instead of throwing; the damage is reported by
  /// corrupt_records().
  [[nodiscard]] static TraceSource from_file(
      const std::string& path,
      OnCorruptRecord policy = OnCorruptRecord::kThrow);

  /// Corrupt records skipped while loading (from_file with
  /// kSkipAndCount; 0 otherwise).
  [[nodiscard]] int corrupt_records() const { return corrupt_records_; }

  bool next(MeasurementSnapshot& out) override {
    const auto& r = rounds();
    if (cursor_ >= r.size()) return false;
    out = r[cursor_++];
    return true;
  }

  [[nodiscard]] int remaining() const override {
    return static_cast<int>(rounds().size() - cursor_);
  }

  /// Rewind to the first round (replay the same trace again).
  void rewind() { cursor_ = 0; }

  /// The backing rounds (owned or borrowed).
  [[nodiscard]] const std::vector<MeasurementSnapshot>& rounds() const {
    return borrowed_ != nullptr ? *borrowed_ : owned_;
  }

 private:
  std::vector<MeasurementSnapshot> owned_;
  const std::vector<MeasurementSnapshot>* borrowed_ = nullptr;
  std::size_t cursor_ = 0;
  int corrupt_records_ = 0;
};

}  // namespace meshopt
