#include "core/interference.h"

#include "model/feasibility.h"

namespace meshopt {

InterferenceModel InterferenceModel::build(const MeasurementSnapshot& snap,
                                           InterferenceModelKind kind,
                                           std::size_t mis_cap) {
  const bool use_lir =
      kind == InterferenceModelKind::kLirTable && !snap.lir.empty();
  ConflictGraph conflicts =
      use_lir ? build_lir_conflict_graph(snap.lir, snap.lir_threshold)
              : build_two_hop_conflict_graph(
                    snap.link_refs(), [&snap](NodeId a, NodeId b) {
                      return snap.is_neighbor(a, b);
                    });
  DenseMatrix extreme_points =
      build_extreme_point_matrix(snap.capacities(), conflicts, mis_cap);
  return InterferenceModel(use_lir ? InterferenceModelKind::kLirTable
                                   : InterferenceModelKind::kTwoHop,
                           std::move(conflicts), std::move(extreme_points));
}

}  // namespace meshopt
