#include "core/interference.h"

#include <stdexcept>

namespace meshopt {

InterferenceModel InterferenceModel::build(const MeasurementSnapshot& snap,
                                           InterferenceModelKind kind,
                                           std::size_t mis_cap) {
  return from_topology(build_topology(snap, kind, mis_cap),
                       snap.capacities());
}

InterferenceTopology InterferenceModel::build_topology(
    const MeasurementSnapshot& snap, InterferenceModelKind kind,
    std::size_t mis_cap) {
  const bool use_lir =
      kind == InterferenceModelKind::kLirTable && !snap.lir.empty();
  InterferenceTopology topo;
  topo.kind = use_lir ? InterferenceModelKind::kLirTable
                      : InterferenceModelKind::kTwoHop;
  topo.conflicts =
      use_lir ? build_lir_conflict_graph(snap.lir, snap.lir_threshold)
              : build_two_hop_conflict_graph(
                    snap.link_refs(), [&snap](NodeId a, NodeId b) {
                      return snap.is_neighbor(a, b);
                    });
  topo.mis_rows = topo.conflicts.independent_set_rows(mis_cap);
  return topo;
}

InterferenceModel InterferenceModel::from_topology(
    const InterferenceTopology& topo, const std::vector<double>& capacities) {
  if (static_cast<int>(capacities.size()) != topo.conflicts.size())
    throw std::invalid_argument(
        "InterferenceModel: capacity arity != topology link count");
  DenseMatrix extreme_points;
  fill_extreme_point_matrix(capacities, topo.mis_rows, extreme_points);
  return InterferenceModel(topo.kind, topo.conflicts,
                           std::move(extreme_points));
}

InterferenceModel InterferenceModel::from_topology(
    InterferenceTopology&& topo, const std::vector<double>& capacities) {
  if (static_cast<int>(capacities.size()) != topo.conflicts.size())
    throw std::invalid_argument(
        "InterferenceModel: capacity arity != topology link count");
  DenseMatrix extreme_points;
  fill_extreme_point_matrix(capacities, topo.mis_rows, extreme_points);
  return InterferenceModel(topo.kind, std::move(topo.conflicts),
                           std::move(extreme_points));
}

}  // namespace meshopt
