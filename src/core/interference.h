#pragma once
// InterferenceModel — stage 2 of the control plane's
// snapshot → model → plan pipeline (see ARCHITECTURE.md, "Control plane").
//
// Built from a MeasurementSnapshot alone, the model owns the conflict
// graph over the snapshot's links and the K×L extreme-point matrix of the
// feasible rate region (Eq. 4). It is a plain value: buildable off-line
// from a deserialized snapshot, copyable, and usable by any number of
// plan_rates() calls without a live Network.

#include <cstddef>
#include <cstdint>
#include <utility>

#include "core/snapshot.h"
#include "model/conflict_graph.h"
#include "model/feasibility.h"
#include "util/dense_matrix.h"

namespace meshopt {

/// Which binary interference model stage 2 builds from a snapshot.
enum class InterferenceModelKind : std::uint8_t {
  kTwoHop,    ///< links conflict within two hops (paper Section 5.5)
  kLirTable,  ///< thresholded measured LIR table (paper Section 4.2)
};

/// The topology-dependent prefix of a model build: the conflict graph and
/// its enumerated MIS rows. Everything here is a pure function of the
/// snapshot's link identities, neighbor relation and LIR table — never of
/// the capacity estimates — so it stays valid (and cacheable, see
/// core/planner.h) for as long as the topology fingerprint is unchanged.
struct InterferenceTopology {
  InterferenceModelKind kind = InterferenceModelKind::kTwoHop;
  ConflictGraph conflicts{0};
  MisRowSet mis_rows;
};

/// Conflict graph + extreme points derived from one snapshot.
class InterferenceModel {
 public:
  /// Build the model of `kind` from `snap`.
  ///
  /// kTwoHop uses the snapshot's recorded neighbor relation; kLirTable
  /// thresholds the snapshot's LIR matrix at snap.lir_threshold. When
  /// kLirTable is requested but the snapshot carries no LIR table, the
  /// build falls back to kTwoHop (mirrors the controller's historical
  /// behavior); kind() reports the model actually built. `mis_cap` bounds
  /// the independent-set enumeration (safety valve, as elsewhere).
  ///
  /// Equivalent to from_topology(build_topology(snap, kind, mis_cap),
  /// snap.capacities()) — build() is literally that composition, so the
  /// cached two-stage path is bit-identical by construction.
  [[nodiscard]] static InterferenceModel build(const MeasurementSnapshot& snap,
                                               InterferenceModelKind kind,
                                               std::size_t mis_cap = 200000);

  /// Topology stage on its own: conflict graph + MIS row enumeration.
  /// This is the expensive half (Bron–Kerbosch, ~1 ms at MIS/80 scale —
  /// see BM_ReplayCachedModel); the planner caches its result keyed by
  /// the snapshot's topology_fingerprint().
  [[nodiscard]] static InterferenceTopology build_topology(
      const MeasurementSnapshot& snap, InterferenceModelKind kind,
      std::size_t mis_cap = 200000);

  /// Capacity stage: refill the extreme-point matrix from cached MIS rows
  /// and fresh capacity estimates (bits/s, in the topology's link order).
  /// @pre capacities.size() == topo.mis_rows.num_links(). The lvalue form
  /// copies the conflict graph (the caller keeps the topology — e.g. a
  /// planner cache entry); the rvalue form moves it (one-shot builds).
  [[nodiscard]] static InterferenceModel from_topology(
      const InterferenceTopology& topo, const std::vector<double>& capacities);
  [[nodiscard]] static InterferenceModel from_topology(
      InterferenceTopology&& topo, const std::vector<double>& capacities);

  /// The model actually built (see build() for the LIR fallback rule).
  [[nodiscard]] InterferenceModelKind kind() const { return kind_; }
  [[nodiscard]] int num_links() const { return conflicts_.size(); }
  /// Pairwise conflict relation over the snapshot's links.
  [[nodiscard]] const ConflictGraph& conflicts() const { return conflicts_; }
  /// K×L extreme points of the feasible rate region (bits/s), one row per
  /// maximal independent set, in enumeration order.
  [[nodiscard]] const DenseMatrix& extreme_points() const {
    return extreme_points_;
  }

  /// The feasible rate region over the already-built extreme points.
  /// Consumers that need feasibility checks alongside a model reuse this
  /// instead of re-enumerating MIS rows through build_extreme_point_matrix.
  [[nodiscard]] FeasibilityRegion region() const {
    return FeasibilityRegion(extreme_points_);
  }

 private:
  /// The planner refreshes a cached model's extreme points in place on a
  /// hit (refresh_extreme_point_matrix over the entry's MIS rows) instead
  /// of copying a freshly filled matrix every round.
  friend class Planner;

  InterferenceModel(InterferenceModelKind kind, ConflictGraph conflicts,
                    DenseMatrix extreme_points)
      : kind_(kind),
        conflicts_(std::move(conflicts)),
        extreme_points_(std::move(extreme_points)) {}

  InterferenceModelKind kind_;
  ConflictGraph conflicts_;
  DenseMatrix extreme_points_;
};

}  // namespace meshopt
