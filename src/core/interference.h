#pragma once
// InterferenceModel — stage 2 of the control plane's
// snapshot → model → plan pipeline (see ARCHITECTURE.md, "Control plane").
//
// Built from a MeasurementSnapshot alone, the model owns the conflict
// graph over the snapshot's links and the K×L extreme-point matrix of the
// feasible rate region (Eq. 4). It is a plain value: buildable off-line
// from a deserialized snapshot, copyable, and usable by any number of
// plan_rates() calls without a live Network.

#include <cstddef>
#include <cstdint>
#include <utility>

#include "core/snapshot.h"
#include "model/conflict_graph.h"
#include "util/dense_matrix.h"

namespace meshopt {

/// Which binary interference model stage 2 builds from a snapshot.
enum class InterferenceModelKind : std::uint8_t {
  kTwoHop,    ///< links conflict within two hops (paper Section 5.5)
  kLirTable,  ///< thresholded measured LIR table (paper Section 4.2)
};

/// Conflict graph + extreme points derived from one snapshot.
class InterferenceModel {
 public:
  /// Build the model of `kind` from `snap`.
  ///
  /// kTwoHop uses the snapshot's recorded neighbor relation; kLirTable
  /// thresholds the snapshot's LIR matrix at snap.lir_threshold. When
  /// kLirTable is requested but the snapshot carries no LIR table, the
  /// build falls back to kTwoHop (mirrors the controller's historical
  /// behavior); kind() reports the model actually built. `mis_cap` bounds
  /// the independent-set enumeration (safety valve, as elsewhere).
  [[nodiscard]] static InterferenceModel build(const MeasurementSnapshot& snap,
                                               InterferenceModelKind kind,
                                               std::size_t mis_cap = 200000);

  /// The model actually built (see build() for the LIR fallback rule).
  [[nodiscard]] InterferenceModelKind kind() const { return kind_; }
  [[nodiscard]] int num_links() const { return conflicts_.size(); }
  /// Pairwise conflict relation over the snapshot's links.
  [[nodiscard]] const ConflictGraph& conflicts() const { return conflicts_; }
  /// K×L extreme points of the feasible rate region (bits/s), one row per
  /// maximal independent set, in enumeration order.
  [[nodiscard]] const DenseMatrix& extreme_points() const {
    return extreme_points_;
  }

 private:
  InterferenceModel(InterferenceModelKind kind, ConflictGraph conflicts,
                    DenseMatrix extreme_points)
      : kind_(kind),
        conflicts_(std::move(conflicts)),
        extreme_points_(std::move(extreme_points)) {}

  InterferenceModelKind kind_;
  ConflictGraph conflicts_;
  DenseMatrix extreme_points_;
};

}  // namespace meshopt
