#include "core/controller.h"

#include <algorithm>
#include <bit>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "core/snapshot_source.h"
#include "obs/obs.h"
#include "util/trace_codec.h"

namespace meshopt {

/// Emits the whole-round span on scope exit with the controller's final
/// health as payload, whatever return path the round took. Declared before
/// the stage spans so it destructs last — the round span is always the
/// highest-seq record of its round.
struct ControllerRoundObs {
  MeshController* c;
  std::uint64_t t0;
  explicit ControllerRoundObs(MeshController* ctl)
      : c(ctl), t0(ctl->obs_ != nullptr ? ctl->obs_->now_ns() : 0) {}
  ControllerRoundObs(const ControllerRoundObs&) = delete;
  ControllerRoundObs& operator=(const ControllerRoundObs&) = delete;
  ~ControllerRoundObs() {
    if (c->obs_ == nullptr) return;
    const std::uint64_t t1 = c->obs_->now_ns();
    c->obs_->emit(ObsStage::kRound, ObsKind::kSpan, ObsCode::kNone,
                  static_cast<std::uint64_t>(c->health_),
                  c->plan_.ok ? 1 : 0, t0, t1 >= t0 ? t1 - t0 : 0);
  }
};

MeshController::MeshController(Network& net, ControllerConfig cfg,
                               std::uint64_t seed)
    : net_(net), cfg_(cfg), seed_(seed), planner_(cfg.planner_cache) {
  neighbor_pred_ = [this](NodeId a, NodeId b) {
    return net_.channel().decodable(a, b, Rate::kR1Mbps) ||
           net_.channel().decodable(b, a, Rate::kR1Mbps);
  };
}

int MeshController::link_index(NodeId src, NodeId dst) const {
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (links_[i].src == src && links_[i].dst == dst)
      return static_cast<int>(i);
  }
  return -1;
}

void MeshController::manage_flow(ManagedFlow flow) {
  net_.set_path_routes(flow.path, flow.rate);
  for (std::size_t h = 0; h + 1 < flow.path.size(); ++h) {
    if (link_index(flow.path[h], flow.path[h + 1]) < 0) {
      links_.push_back(LinkRef{flow.path[h], flow.path[h + 1], flow.rate});
    }
  }
  flows_.push_back(std::move(flow));
}

std::vector<FlowSpec> MeshController::flow_specs() const {
  std::vector<FlowSpec> specs;
  specs.reserve(flows_.size());
  for (const ManagedFlow& f : flows_)
    specs.push_back(FlowSpec{f.flow_id, f.path, f.is_tcp});
  return specs;
}

void MeshController::set_lir_table(DenseMatrix lir, double threshold) {
  lir_table_ = std::move(lir);
  lir_threshold_ = threshold;
  cfg_.interference = InterferenceModelKind::kLirTable;
}

void MeshController::set_neighbor_predicate(
    std::function<bool(NodeId, NodeId)> pred) {
  neighbor_pred_ = std::move(pred);
}

ProbeAgent& MeshController::ensure_agent(NodeId node) {
  const auto slot = static_cast<std::size_t>(node);
  if (slot >= agents_.size()) agents_.resize(slot + 1);
  if (!agents_[slot]) {
    agents_[slot] = std::make_unique<ProbeAgent>(
        net_, node, RngStream(seed_, "probe-" + std::to_string(node)));
  }
  return *agents_[slot];
}

ProbeMonitor& MeshController::ensure_monitor(NodeId node) {
  const auto slot = static_cast<std::size_t>(node);
  if (slot >= monitors_.size()) monitors_.resize(slot + 1);
  if (!monitors_[slot]) {
    monitors_[slot] = std::make_unique<ProbeMonitor>(net_, node);
  }
  return *monitors_[slot];
}

void MeshController::start_probing() {
  // Which rates does each node transmit at?
  std::map<NodeId, std::set<Rate>> tx_rates;
  for (const LinkRef& l : links_) tx_rates[l.src].insert(l.rate);
  std::set<NodeId> nodes;
  for (const LinkRef& l : links_) {
    nodes.insert(l.src);
    nodes.insert(l.dst);
  }
  for (NodeId n : nodes) {
    ProbeAgent& agent = ensure_agent(n);
    ensure_monitor(n);
    std::vector<Rate> rates(tx_rates[n].begin(), tx_rates[n].end());
    if (rates.empty()) rates.push_back(Rate::kR1Mbps);
    agent.configure(cfg_.probe_period_s, rates, cfg_.payload_bytes);
    // Batch one estimation window of tick scheduling up front (timing is
    // bit-identical to per-tick scheduling; see ProbeAgent::start).
    agent.start(cfg_.probe_window);
  }
  // Open a fresh measurement window on every stream of interest.
  for (const LinkRef& l : links_) {
    const std::uint64_t data_base =
        ensure_agent(l.src).sent(l.rate, ProbeKind::kDataProbe);
    ensure_monitor(l.dst)
        .stream_mut({l.src, l.rate, ProbeKind::kDataProbe})
        ->begin_window(data_base);
    const std::uint64_t ack_base =
        ensure_agent(l.dst).sent(Rate::kR1Mbps, ProbeKind::kAckProbe);
    ensure_monitor(l.src)
        .stream_mut({l.dst, Rate::kR1Mbps, ProbeKind::kAckProbe})
        ->begin_window(ack_base);
  }
}

void MeshController::stop_probing() {
  for (auto& agent : agents_)
    if (agent) agent->stop();
}

MeasurementSnapshot MeshController::sense_snapshot() const {
  MeasurementSnapshot snap;
  snap.links.reserve(links_.size());
  const auto expected = static_cast<std::uint64_t>(cfg_.probe_window);
  for (const LinkRef& l : links_) {
    const auto dst_slot = static_cast<std::size_t>(l.dst);
    const auto src_slot = static_cast<std::size_t>(l.src);
    const LossRecorder* data_rec =
        dst_slot < monitors_.size() && monitors_[dst_slot]
            ? monitors_[dst_slot]->stream(
                  {l.src, l.rate, ProbeKind::kDataProbe})
            : nullptr;
    const LossRecorder* ack_rec =
        src_slot < monitors_.size() && monitors_[src_slot]
            ? monitors_[src_slot]->stream(
                  {l.dst, Rate::kR1Mbps, ProbeKind::kAckProbe})
            : nullptr;

    // Recorders speak window coordinates (bases set at start_probing), so
    // the expected count is simply the window size.
    double p_data = 1.0, p_ack = 1.0;
    if (data_rec != nullptr) {
      const auto pat = data_rec->pattern(expected);
      if (!pat.empty()) p_data = estimate_channel_loss(pat, cfg_.w_min).p_ch;
    }
    if (ack_rec != nullptr) {
      const auto pat = ack_rec->pattern(expected);
      if (!pat.empty()) p_ack = estimate_channel_loss(pat, cfg_.w_min).p_ch;
    }

    SnapshotLink sl;
    sl.src = l.src;
    sl.dst = l.dst;
    sl.rate = l.rate;
    sl.retry_limit = net_.node(l.src).mac().timings().retry_limit;
    sl.estimate = capacity_from_losses(net_.node(l.src).mac().timings(),
                                       cfg_.payload_bytes, l.rate, p_data,
                                       p_ack);
    snap.links.push_back(sl);
  }

  // Record the neighbor relation among the touched nodes, symmetrized:
  // one predicate evaluation per unordered pair.
  std::set<NodeId> nodes;
  for (const LinkRef& l : links_) {
    nodes.insert(l.src);
    nodes.insert(l.dst);
  }
  for (auto a = nodes.begin(); a != nodes.end(); ++a) {
    for (auto b = std::next(a); b != nodes.end(); ++b) {
      if (neighbor_pred_ && neighbor_pred_(*a, *b))
        snap.neighbors.emplace_back(*a, *b);
    }
  }

  snap.lir = lir_table_;
  snap.lir_threshold = lir_threshold_;
  return snap;
}

void MeshController::adopt_snapshot(MeasurementSnapshot snap) {
  snapshot_ = std::move(snap);
  estimates_.clear();
  estimates_.reserve(snapshot_.links.size());
  for (const SnapshotLink& sl : snapshot_.links) {
    estimates_.push_back(
        {LinkRef{sl.src, sl.dst, sl.rate}, sl.estimate});

    LinkState ls;
    ls.src = sl.src;
    ls.dst = sl.dst;
    ls.rate = sl.rate;
    ls.p_fwd = sl.estimate.p_data;
    ls.p_rev = sl.estimate.p_ack;
    topo_.update_link(ls);
  }
}

void MeshController::ingest_snapshot(MeasurementSnapshot snap) {
  adopt_snapshot(std::move(snap));
}

void MeshController::update_estimates() {
  adopt_snapshot(sense_snapshot());
  if (trace_writer_ != nullptr) trace_writer_->write(snapshot_);
}

void MeshController::sense_window(Workbench& wb) {
  if (obs_ != nullptr) obs_->set_context(obs_lane_, obs_round_);
  ObsSpan sense_span(obs_, ObsStage::kSense);
  start_probing();
  wb.run_for(probing_window_seconds());
  update_estimates();
  sense_span.payload(snapshot_.links.size(), snapshot_.neighbors.size());
}

void MeshController::apply_plan(const RatePlan& plan) {
  if (!plan.ok) return;
  for (const ShaperProgram& prog : plan.shapers) {
    for (const ManagedFlow& f : flows_) {
      if (f.flow_id == prog.flow_id) {
        if (f.apply_rate) f.apply_rate(prog.x_bps);
        break;
      }
    }
  }
}

RoundResult MeshController::optimize_and_apply() {
  RoundResult round;
  if (obs_ != nullptr) obs_->set_context(obs_lane_, obs_round_);
  ++obs_round_;
  ControllerRoundObs round_obs(this);
  if (flows_.empty() || snapshot_.links.size() != links_.size() ||
      links_.empty()) {
    return round;
  }

  // Model + plan through the planner: rounds whose topology fingerprint
  // matches the previous round reuse the cached MIS enumeration
  // (bit-identical to an uncached InterferenceModel::build, pinned in
  // tests/test_planner.cpp), and fast-tier plans additionally reuse the
  // entry's column-generation warm state across rounds.
  {
    ObsSpan plan_span(obs_, ObsStage::kPlan);
    plan_ = planner_.plan(snapshot_, cfg_.interference, flow_specs(),
                          cfg_.plan());
    plan_span.payload(
        (static_cast<std::uint64_t>(
             static_cast<std::uint32_t>(plan_.extreme_points))
         << 32) |
            static_cast<std::uint32_t>(plan_.optimizer_iterations),
        std::bit_cast<std::uint64_t>(plan_.objective_value));
  }
  if (!plan_.ok) return round;

  {
    ObsSpan apply_span(obs_, ObsStage::kApply);
    apply_plan(plan_);
  }

  round.ok = true;
  round.links = estimates_;
  round.y = plan_.y;
  round.x = plan_.x;
  round.extreme_points = plan_.extreme_points;
  round.optimizer_iterations = plan_.optimizer_iterations;
  return round;
}

RoundResult MeshController::run_round(Workbench& wb) {
  sense_window(wb);
  return optimize_and_apply();
}

void MeshController::set_observer(TraceRecorder* obs, std::uint32_t lane) {
  obs_ = obs;
  obs_lane_ = lane;
  planner_.set_observer(obs);
  if (obs_ != nullptr) obs_->set_context(obs_lane_, obs_round_);
}

// ------------------------------------------------------- guarded rounds

void MeshController::set_guard(GuardConfig cfg) {
  guard_cfg_ = cfg;
  backoff_next_ = std::max(1, guard_cfg_.backoff_start);
}

bool MeshController::apply_plan_checked(const RatePlan& plan) {
  if (!plan.ok) return true;  // nothing to actuate
  bool ok = true;
  for (const ShaperProgram& prog : plan.shapers) {
    for (const ManagedFlow& f : flows_) {
      if (f.flow_id != prog.flow_id) continue;
      if (f.apply_rate) {
        try {
          f.apply_rate(prog.x_bps);
        } catch (...) {
          // A failing shaper must not take the loop down; the round is
          // accounted as an apply failure and the state machine falls
          // back.
          ++hstats_.apply_failures;
          ok = false;
        }
      }
      break;
    }
  }
  return ok;
}

RoundResult MeshController::fail_round() {
  if (health_ != HealthState::kFallback) {
    ++hstats_.fallback_entries;
    backoff_next_ = std::max(1, guard_cfg_.backoff_start);
    if (obs_ != nullptr) {
      obs_->emit(ObsStage::kHealth, ObsKind::kEvent,
                 ObsCode::kHealthTransition,
                 static_cast<std::uint64_t>(health_),
                 static_cast<std::uint64_t>(HealthState::kFallback));
      // Flight recorder: FALLBACK entry snapshots the trailing window
      // (the transition event above is part of it).
      obs_->trigger_incident(ObsCode::kFallbackEntry);
    }
  }
  health_ = HealthState::kFallback;
  // Deterministic exponential backoff: hold for backoff_next_ rounds
  // before the next re-plan attempt, doubling per consecutive failure.
  backoff_wait_ = backoff_next_;
  backoff_next_ = std::min(backoff_next_ * 2, guard_cfg_.backoff_max);
  ++hstats_.fallback_rounds;
  // Hold the last-known-good plan: re-actuate it so a partially applied
  // bad plan (or a shaper the failing path already touched) is restored.
  (void)apply_plan_checked(last_good_plan_);
  RoundResult round;
  round.health = health_;
  round.held = last_good_plan_.ok;
  return round;
}

RoundResult MeshController::guarded_step(MeasurementSnapshot snap) {
  ++hstats_.rounds;
  if (obs_ != nullptr) obs_->set_context(obs_lane_, obs_round_);
  ++obs_round_;
  ControllerRoundObs round_obs(this);

  // Backoff window: in FALLBACK the controller deliberately skips
  // re-planning for the scheduled number of rounds — the round's window
  // is still consumed (sources advance uniformly; determinism), but no
  // validation or optimization runs.
  if (health_ == HealthState::kFallback && backoff_wait_ > 0) {
    --backoff_wait_;
    ++hstats_.backoff_skips;
    ++hstats_.fallback_rounds;
    if (obs_ != nullptr) {
      obs_->emit(ObsStage::kHealth, ObsKind::kEvent, ObsCode::kBackoffSkip,
                 static_cast<std::uint64_t>(backoff_wait_));
    }
    (void)apply_plan_checked(last_good_plan_);
    RoundResult round;
    round.health = health_;
    round.held = last_good_plan_.ok;
    return round;
  }

  const SnapshotValidator validator(guard_cfg_.snapshot);
  ValidationReport report;
  {
    ObsSpan validate_span(obs_, ObsStage::kValidate);
    report = validator.validate(snap, &links_);
    validate_span.payload(
        static_cast<std::uint64_t>(report.verdict),
        (static_cast<std::uint64_t>(
             static_cast<std::uint32_t>(report.links_clamped))
         << 32) |
            static_cast<std::uint32_t>(report.links_dropped));
  }
  hstats_.links_clamped += static_cast<std::uint64_t>(report.links_clamped);
  hstats_.links_dropped += static_cast<std::uint64_t>(report.links_dropped);
  if (!report.usable()) {
    ++hstats_.snapshots_rejected;
    if (obs_ != nullptr) {
      obs_->emit(ObsStage::kHealth, ObsKind::kEvent, ObsCode::kSnapshotReject);
    }
    return fail_round();
  }
  const bool clean = report.verdict == SnapshotVerdict::kClean;
  if (clean)
    ++hstats_.snapshots_clean;
  else
    ++hstats_.snapshots_repaired;

  adopt_snapshot(std::move(snap));

  // Model + plan. A repaired snapshot's topology must not be cached: the
  // planner builds it off to the side so the LRU never holds an entry
  // derived from corrupted measurements.
  RatePlan plan;
  {
    ObsSpan plan_span(obs_, ObsStage::kPlan);
    plan =
        planner_.plan(snapshot_, cfg_.interference, flow_specs(), cfg_.plan(),
                      /*mis_cap=*/200000, /*cacheable=*/clean);
    plan_span.payload(
        (static_cast<std::uint64_t>(
             static_cast<std::uint32_t>(plan.extreme_points))
         << 32) |
            static_cast<std::uint32_t>(plan.optimizer_iterations),
        std::bit_cast<std::uint64_t>(plan.objective_value));
  }

  const PlanValidator plan_validator(guard_cfg_.plan);
  const PlanCheck check = plan_validator.validate(plan, snapshot_,
                                                  flow_specs());
  if (!plan.ok || !check.ok) {
    ++hstats_.plans_rejected;
    if (obs_ != nullptr) {
      // Plan-guardrail reject is a flight-recorder trigger in its own
      // right (fail_round adds a second report only on FALLBACK entry).
      obs_->trigger_incident(
          ObsCode::kPlanReject,
          check.reason != nullptr ? check.reason : "planner returned no plan");
    }
    return fail_round();
  }

  // Trust decay: plans from repaired measurements are actuated
  // conservatively — each consecutive degraded round scales the input
  // rates down by one more factor, floored at min_trust. A clean round
  // restores full trust.
  if (clean) {
    trust_ = 1.0;
  } else {
    trust_ = std::max(guard_cfg_.min_trust, trust_ * guard_cfg_.trust_decay);
    for (double& x : plan.x) x *= trust_;
    for (ShaperProgram& prog : plan.shapers) prog.x_bps *= trust_;
  }
  plan_ = plan;

  {
    ObsSpan apply_span(obs_, ObsStage::kApply);
    const bool applied = apply_plan_checked(plan_);
    apply_span.payload(applied ? 1 : 0);
    if (!applied) return fail_round();
  }

  if (health_ == HealthState::kFallback) {
    ++hstats_.recoveries;
    if (obs_ != nullptr) {
      obs_->emit(ObsStage::kHealth, ObsKind::kEvent, ObsCode::kRecovery);
    }
  }
  const HealthState next_health =
      clean ? HealthState::kHealthy : HealthState::kDegraded;
  if (obs_ != nullptr && next_health != health_) {
    obs_->emit(ObsStage::kHealth, ObsKind::kEvent, ObsCode::kHealthTransition,
               static_cast<std::uint64_t>(health_),
               static_cast<std::uint64_t>(next_health));
  }
  health_ = next_health;
  if (clean)
    ++hstats_.healthy_rounds;
  else
    ++hstats_.degraded_rounds;
  backoff_wait_ = 0;
  backoff_next_ = std::max(1, guard_cfg_.backoff_start);
  last_good_plan_ = plan_;

  RoundResult round;
  round.ok = true;
  round.links = estimates_;
  round.y = plan_.y;
  round.x = plan_.x;
  round.extreme_points = plan_.extreme_points;
  round.optimizer_iterations = plan_.optimizer_iterations;
  round.health = health_;
  return round;
}

RoundResult MeshController::guarded_round(SnapshotSource& source) {
  MeasurementSnapshot snap;
  if (!source.next(snap)) {
    RoundResult round;
    round.health = health_;
    round.exhausted = true;
    return round;
  }
  return guarded_step(std::move(snap));
}

}  // namespace meshopt
