#include "core/controller.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>

namespace meshopt {

MeshController::MeshController(Network& net, ControllerConfig cfg,
                               std::uint64_t seed)
    : net_(net), cfg_(cfg), seed_(seed) {
  neighbor_pred_ = [this](NodeId a, NodeId b) {
    return net_.channel().decodable(a, b, Rate::kR1Mbps) ||
           net_.channel().decodable(b, a, Rate::kR1Mbps);
  };
}

int MeshController::link_index(NodeId src, NodeId dst) const {
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (links_[i].src == src && links_[i].dst == dst)
      return static_cast<int>(i);
  }
  return -1;
}

void MeshController::manage_flow(ManagedFlow flow) {
  net_.set_path_routes(flow.path, flow.rate);
  for (std::size_t h = 0; h + 1 < flow.path.size(); ++h) {
    if (link_index(flow.path[h], flow.path[h + 1]) < 0) {
      links_.push_back(LinkRef{flow.path[h], flow.path[h + 1], flow.rate});
    }
  }
  flows_.push_back(std::move(flow));
}

void MeshController::set_lir_table(std::vector<std::vector<double>> lir,
                                   double threshold) {
  lir_table_ = std::move(lir);
  lir_threshold_ = threshold;
  cfg_.interference = InterferenceModelKind::kLirTable;
}

void MeshController::set_neighbor_predicate(
    std::function<bool(NodeId, NodeId)> pred) {
  neighbor_pred_ = std::move(pred);
}

void MeshController::ensure_probe_infra(NodeId node) {
  if (!agents_.contains(node)) {
    auto agent = std::make_unique<ProbeAgent>(
        net_, node, RngStream(seed_, "probe-" + std::to_string(node)));
    agents_.emplace(node, std::move(agent));
  }
  if (!monitors_.contains(node)) {
    monitors_.emplace(node, std::make_unique<ProbeMonitor>(net_, node));
  }
}

void MeshController::start_probing() {
  // Which rates does each node transmit at?
  std::map<NodeId, std::set<Rate>> tx_rates;
  for (const LinkRef& l : links_) tx_rates[l.src].insert(l.rate);
  std::set<NodeId> nodes;
  for (const LinkRef& l : links_) {
    nodes.insert(l.src);
    nodes.insert(l.dst);
  }
  for (NodeId n : nodes) {
    ensure_probe_infra(n);
    std::vector<Rate> rates(tx_rates[n].begin(), tx_rates[n].end());
    if (rates.empty()) rates.push_back(Rate::kR1Mbps);
    agents_.at(n)->configure(cfg_.probe_period_s, rates, cfg_.payload_bytes);
    agents_.at(n)->start();
  }
  // Open a fresh measurement window on every stream of interest.
  for (const LinkRef& l : links_) {
    const std::uint64_t data_base =
        agents_.at(l.src)->sent(l.rate, ProbeKind::kDataProbe);
    monitors_.at(l.dst)
        ->stream_mut({l.src, l.rate, ProbeKind::kDataProbe})
        ->begin_window(data_base);
    const std::uint64_t ack_base =
        agents_.at(l.dst)->sent(Rate::kR1Mbps, ProbeKind::kAckProbe);
    monitors_.at(l.src)
        ->stream_mut({l.dst, Rate::kR1Mbps, ProbeKind::kAckProbe})
        ->begin_window(ack_base);
  }
}

void MeshController::stop_probing() {
  for (auto& [_, agent] : agents_) agent->stop();
}

void MeshController::update_estimates() {
  estimates_.clear();
  for (const LinkRef& l : links_) {
    const std::uint64_t data_sent =
        agents_.at(l.src)->sent(l.rate, ProbeKind::kDataProbe);
    const std::uint64_t ack_sent =
        agents_.at(l.dst)->sent(Rate::kR1Mbps, ProbeKind::kAckProbe);
    // Window-relative expectations come from the recorders' bases, which
    // were the senders' counters at start_probing time. Since recorders
    // are window-relative, expected = sent_now - base and the recorder's
    // pattern() already speaks window coordinates; we cap at probe_window.
    const LossRecorder* data_rec = monitors_.at(l.dst)->stream(
        {l.src, l.rate, ProbeKind::kDataProbe});
    const LossRecorder* ack_rec = monitors_.at(l.src)->stream(
        {l.dst, Rate::kR1Mbps, ProbeKind::kAckProbe});
    (void)data_sent;
    (void)ack_sent;

    const auto expected =
        static_cast<std::uint64_t>(cfg_.probe_window);
    LinkCapacityEstimate est;
    double p_data = 1.0, p_ack = 1.0;
    if (data_rec != nullptr) {
      const auto pat = data_rec->pattern(expected);
      if (!pat.empty())
        p_data = estimate_channel_loss(pat, cfg_.w_min).p_ch;
    }
    if (ack_rec != nullptr) {
      const auto pat = ack_rec->pattern(expected);
      if (!pat.empty()) p_ack = estimate_channel_loss(pat, cfg_.w_min).p_ch;
    }
    est = capacity_from_losses(net_.node(l.src).mac().timings(),
                               cfg_.payload_bytes, l.rate, p_data, p_ack);
    estimates_.push_back({l, est});

    LinkState ls;
    ls.src = l.src;
    ls.dst = l.dst;
    ls.rate = l.rate;
    ls.p_fwd = est.p_data;
    ls.p_rev = est.p_ack;
    topo_.update_link(ls);
  }
}

RoundResult MeshController::optimize_and_apply() {
  RoundResult round;
  if (flows_.empty() || estimates_.size() != links_.size()) return round;

  // Capacities and conflict graph.
  std::vector<double> capacities;
  capacities.reserve(links_.size());
  for (const auto& row : estimates_)
    capacities.push_back(row.estimate.capacity_bps);

  ConflictGraph conflicts =
      (cfg_.interference == InterferenceModelKind::kLirTable && lir_table_)
          ? build_lir_conflict_graph(*lir_table_, lir_threshold_)
          : build_two_hop_conflict_graph(links_, neighbor_pred_);

  OptimizerInput in;
  // Bitset bridge: MIS rows stream straight into the K x L matrix.
  in.extreme_points = build_extreme_point_matrix(capacities, conflicts);

  // Routing matrix.
  in.routing = DenseMatrix(static_cast<int>(links_.size()),
                           static_cast<int>(flows_.size()));
  for (std::size_t s = 0; s < flows_.size(); ++s) {
    const auto& path = flows_[s].path;
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      const int l = link_index(path[h], path[h + 1]);
      if (l >= 0) in.routing(l, static_cast<int>(s)) = 1.0;
    }
  }

  const OptimizerResult opt = optimize_rates(in, cfg_.optimizer);
  if (!opt.ok) return round;

  round.ok = true;
  round.links = estimates_;
  round.extreme_points = in.extreme_points.rows();
  round.optimizer_iterations = opt.iterations;
  round.y = opt.y;
  round.x.resize(flows_.size(), 0.0);

  for (std::size_t s = 0; s < flows_.size(); ++s) {
    const ManagedFlow& f = flows_[s];
    // Residual network-layer loss after MAC retries: p_net = p_link^R.
    double deliver = 1.0;
    for (std::size_t h = 0; h + 1 < f.path.size(); ++h) {
      const int li = link_index(f.path[h], f.path[h + 1]);
      if (li < 0) continue;
      const double p =
          estimates_[static_cast<std::size_t>(li)].estimate.p_link;
      const int retries =
          net_.node(f.path[h]).mac().timings().retry_limit;
      deliver *= 1.0 - std::pow(p, retries);
    }
    double x = opt.y[s] / std::max(deliver, 1e-3);
    if (f.is_tcp) x *= tcp_ack_airtime_factor();
    x *= cfg_.headroom;
    round.x[s] = x;
    if (f.apply_rate) f.apply_rate(x);
  }
  return round;
}

RoundResult MeshController::run_round(Workbench& wb) {
  start_probing();
  wb.run_for(probing_window_seconds());
  update_estimates();
  return optimize_and_apply();
}

}  // namespace meshopt
