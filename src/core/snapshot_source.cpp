#include "core/snapshot_source.h"

#include "util/trace_codec.h"

namespace meshopt {

TraceSource TraceSource::from_file(const std::string& path,
                                   OnCorruptRecord policy) {
  int corrupt = 0;
  TraceSource source(read_trace(path, policy, &corrupt));
  source.corrupt_records_ = corrupt;
  return source;
}

}  // namespace meshopt
