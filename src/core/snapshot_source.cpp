#include "core/snapshot_source.h"

#include "util/trace_codec.h"

namespace meshopt {

TraceSource TraceSource::from_file(const std::string& path) {
  return TraceSource(read_trace(path));
}

}  // namespace meshopt
