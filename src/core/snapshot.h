#pragma once
// MeasurementSnapshot — stage 1 of the control plane's
// snapshot → model → plan pipeline (see ARCHITECTURE.md, "Control plane").
//
// A snapshot is a plain value: everything the downstream stages need to
// build an interference model and compute a rate plan, with no reference
// to the live Network it was sensed from. That makes the rest of the
// pipeline pure — the same snapshot replayed offline (including through a
// JSON round trip) produces a bit-identical RatePlan — and lets many
// snapshots from many networks be processed concurrently.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "estimation/capacity.h"
#include "phy/radio.h"
#include "scenario/workbench.h"
#include "util/dense_matrix.h"

namespace meshopt {

class JsonValue;

/// One managed directed link as measured during a probe round.
struct SnapshotLink {
  NodeId src = -1;
  NodeId dst = -1;
  Rate rate = Rate::kR1Mbps;
  /// MAC retry limit at the transmitter (needed by the plan stage's
  /// residual-loss computation p_net = p_link^R without touching a Node).
  int retry_limit = 7;
  /// Channel-loss / capacity estimates from the probing system (Eq. 6).
  LinkCapacityEstimate estimate{};

  friend bool operator==(const SnapshotLink&, const SnapshotLink&) = default;
};

/// Value-type measurement record of one estimation window.
///
/// Invariants: `neighbors` holds unordered node pairs with first < second,
/// sorted ascending, no duplicates; `lir`, when non-empty, is an L×L
/// matrix aligned with `links` order. Both invariants are produced by
/// MeshController::sense_snapshot() and preserved by the JSON round trip.
struct MeasurementSnapshot {
  std::vector<SnapshotLink> links;
  /// Symmetric connectivity relation among the nodes touched by `links`
  /// (the two-hop interference model's neighbor predicate, evaluated once
  /// per pair at sense time).
  std::vector<std::pair<NodeId, NodeId>> neighbors;
  /// Optional measured LIR table (entry (i,j) = LIR of links i and j);
  /// empty() when the snapshot carries no LIR measurement.
  DenseMatrix lir;
  /// Binary-LIR conflict threshold that accompanies `lir`.
  double lir_threshold = 0.95;

  /// Index of the directed link src->dst in `links`; -1 when absent.
  [[nodiscard]] int link_index(NodeId src, NodeId dst) const;

  /// Symmetric neighbor lookup over the recorded relation.
  [[nodiscard]] bool is_neighbor(NodeId a, NodeId b) const;

  /// 64-bit splitmix64-chained digest of the model-stage topology inputs
  /// ONLY: link
  /// identities (src, dst, rate), the neighbor relation, and the LIR
  /// table + threshold (exact double bit patterns). Capacity/loss
  /// estimates and retry limits are deliberately excluded — they feed the
  /// capacity and plan stages, not the conflict graph — so a snapshot
  /// whose measurements drift while its topology holds keeps the same
  /// fingerprint, and the planner's model cache stays hot under load
  /// churn (see core/planner.h for the collision-safety contract).
  [[nodiscard]] std::uint64_t topology_fingerprint() const;

  /// The sub-snapshot induced by `link_ids` (indices into `links`,
  /// ascending): the named links, the neighbor pairs whose endpoints both
  /// appear among those links' endpoints, and the principal LIR submatrix.
  /// For a connected interference component this is exact for BOTH model
  /// kinds: links sharing a node always conflict, so different components
  /// have disjoint endpoint sets and no two-hop or LIR relation is lost by
  /// the restriction (see opt/decompose.h). @throws std::out_of_range on
  /// an invalid link index.
  [[nodiscard]] MeasurementSnapshot restrict_to(
      const std::vector<int>& link_ids) const;

  /// topology_fingerprint() of restrict_to(link_ids) — the per-component
  /// cache sub-key: churn inside one component changes only that
  /// component's fingerprint, so other components' planner cache entries
  /// stay hot.
  [[nodiscard]] std::uint64_t component_fingerprint(
      const std::vector<int>& link_ids) const;

  /// Per-link capacity estimates (bits/s), in `links` order.
  [[nodiscard]] std::vector<double> capacities() const;

  /// The links as LinkRef rows (src, dst, rate), in `links` order.
  [[nodiscard]] std::vector<LinkRef> link_refs() const;

  /// Serialize to a self-contained JSON document. Doubles are emitted
  /// with 17 significant digits, so from_json(to_json()) reconstructs a
  /// snapshot that compares equal bit-for-bit.
  [[nodiscard]] std::string to_json() const;

  /// Parse a document produced by to_json() (or hand-written to the same
  /// schema). @throws std::invalid_argument on malformed input.
  [[nodiscard]] static MeasurementSnapshot from_json(std::string_view text);

  /// Decode an already-parsed JSON value in the to_json() schema (the
  /// shared decoder behind from_json and the trace codec's JSON path).
  /// @throws std::invalid_argument on schema violations.
  [[nodiscard]] static MeasurementSnapshot from_value(const JsonValue& doc);

  friend bool operator==(const MeasurementSnapshot&,
                         const MeasurementSnapshot&) = default;
};

}  // namespace meshopt
