#pragma once
// MeshController — the paper's online optimization loop (Sections 5-6),
// as a thin adapter over the staged control-plane pipeline:
//
//   sense  — run the broadcast probing system, read the monitors into a
//            MeasurementSnapshot (value type, JSON-serializable),
//   model  — InterferenceModel::build(snapshot, kind): conflict graph +
//            extreme points (Eq. 4),
//   plan   — plan_rates(snapshot, model, flows, cfg): pure optimization
//            to a RatePlan (target y_s, input x_s, shaper programs),
//   apply  — program the flows' rate limiters from the plan.
//
// Only sense and apply touch the live Network; the middle stages are pure
// value-type functions, so a recorded snapshot replayed offline produces a
// bit-identical plan (tests/test_control_plane.cpp) and many controller
// loops can run concurrently (sweep/controller_fleet.h).
//
// The controller stays phase-explicit (start_probing / update_estimates /
// optimize_and_apply) so experiments can interleave it with traffic
// exactly like the paper's two-phase runs; run_round() wraps a full cycle.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/guard.h"
#include "core/interference.h"
#include "core/planner.h"
#include "core/rate_plan.h"
#include "core/snapshot.h"
#include "estimation/capacity.h"
#include "opt/network_optimizer.h"
#include "probe/probe_system.h"
#include "routing/ett.h"
#include "scenario/workbench.h"
#include "util/dense_matrix.h"

namespace meshopt {

class SnapshotSource;
class TraceRecorder;
class TraceWriter;

/// Knobs of one controller instance (probing cadence + plan tuning).
struct ControllerConfig {
  double probe_period_s = 0.5;
  int probe_window = 200;  ///< S probes per estimation window
  int w_min = 10;          ///< estimator minimum sliding window
  int payload_bytes = 1470;
  OptimizerConfig optimizer{};
  InterferenceModelKind interference = InterferenceModelKind::kTwoHop;
  /// Optional global scale-down of computed input rates (1.0 = none).
  double headroom = 1.0;
  /// Plan tier (ARCHITECTURE.md, "Plan tiers"): kExact is the
  /// bit-identical reference path; kFast plans via column generation with
  /// cross-round warm starts — objective gap-bounded (<= 1e-6 relative vs
  /// exact), not bit-identical to it.
  PlanTier plan_tier = PlanTier::kExact;
  /// Planner model-cache entries (0 disables: every round re-enumerates).
  /// Rounds whose snapshot keeps the previous topology fingerprint reuse
  /// the cached MIS rows; plans are bit-identical either way.
  std::size_t planner_cache = 4;

  /// The plan-stage slice of this config (optimizer + headroom + tier).
  [[nodiscard]] PlanConfig plan() const {
    return PlanConfig{optimizer, headroom, plan_tier};
  }
};

/// A flow under management: its FlowSpec plus the actuation callback.
struct ManagedFlow {
  int flow_id = -1;
  std::vector<NodeId> path;  ///< node sequence src..dst
  Rate rate = Rate::kR1Mbps;
  bool is_tcp = false;
  /// Callback that programs the flow's rate limiter with x_s (bits/s).
  std::function<void(double x_bps)> apply_rate;
};

struct LinkEstimateRow {
  LinkRef link;
  LinkCapacityEstimate estimate;
};

/// One round's outcome, as the live controller reports it (a view of the
/// underlying RatePlan plus the estimates the plan was computed from).
struct RoundResult {
  bool ok = false;
  std::vector<LinkEstimateRow> links;
  std::vector<double> y;  ///< optimized output rates per managed flow
  std::vector<double> x;  ///< applied input rates per managed flow
  int extreme_points = 0;
  int optimizer_iterations = 0;
  /// Guarded-round fields (run_round leaves them at their defaults):
  HealthState health = HealthState::kHealthy;  ///< state after the round
  bool held = false;       ///< fallback: last-known-good plan held instead
  bool exhausted = false;  ///< the SnapshotSource had no more windows
};

class MeshController {
 public:
  MeshController(Network& net, ControllerConfig cfg, std::uint64_t seed);

  /// Register a flow (its path also defines the links under management).
  void manage_flow(ManagedFlow flow);

  [[nodiscard]] const std::vector<ManagedFlow>& flows() const {
    return flows_;
  }
  [[nodiscard]] const std::vector<LinkRef>& links() const { return links_; }

  /// The flows as value-type FlowSpecs (what plan_rates consumes).
  [[nodiscard]] std::vector<FlowSpec> flow_specs() const;

  /// Provide a measured L×L LIR table (aligned with links() order) to use
  /// the binary-LIR interference model instead of two-hop.
  void set_lir_table(DenseMatrix lir, double threshold = 0.95);

  /// Neighbor predicate for the two-hop model (defaults to channel
  /// decodability). Evaluated once per node pair at sense time and
  /// recorded symmetrically in the snapshot.
  void set_neighbor_predicate(std::function<bool(NodeId, NodeId)> pred);

  /// Phase 1: start the probing system on every node touched by a flow.
  void start_probing();
  void stop_probing();
  /// Seconds of probing needed to fill one estimation window.
  [[nodiscard]] double probing_window_seconds() const {
    return cfg_.probe_period_s * cfg_.probe_window;
  }

  /// Phase 2: sense a fresh MeasurementSnapshot from the probe monitors
  /// and refresh the link-estimate view + topology database. When a trace
  /// writer is attached (record_to), the sensed snapshot is appended to
  /// the trace.
  void update_estimates();

  /// One windowed sensing step: start (or keep) probing, advance the
  /// simulation by one probing window, then update_estimates(). This is
  /// the live half of a controller round — LiveSource drives it per
  /// next(), and run_round() is sense_window + optimize_and_apply.
  void sense_window(Workbench& wb);

  /// Record mode: append every snapshot sensed by update_estimates() to
  /// `writer` (borrowed; nullptr stops recording). Replaying the trace
  /// through the pure pipeline reproduces this controller's plans
  /// bit-identically (tests/test_trace.cpp).
  void record_to(TraceWriter* writer) { trace_writer_ = writer; }

  /// Sense stage on its own: read the monitors into a value-type snapshot
  /// without mutating controller state. Safe to call repeatedly.
  [[nodiscard]] MeasurementSnapshot sense_snapshot() const;

  /// The snapshot captured by the last update_estimates() call.
  [[nodiscard]] const MeasurementSnapshot& snapshot() const {
    return snapshot_;
  }

  /// Phase 3: model + plan over the last snapshot, then apply the plan.
  RoundResult optimize_and_apply();

  /// Apply stage on its own: program every managed flow's rate limiter
  /// from `plan` (shapers matched to flows by flow_id). Lets a plan
  /// computed elsewhere — another thread, a replay — be actuated here.
  void apply_plan(const RatePlan& plan);

  /// The plan produced by the last optimize_and_apply() call.
  [[nodiscard]] const RatePlan& last_plan() const { return plan_; }

  /// Convenience: probe for one window of simulated time, then estimate
  /// and apply. Caller's simulation keeps running its traffic meanwhile.
  RoundResult run_round(Workbench& wb);

  // ---- Resilient control loop (see ARCHITECTURE.md, "Faults &
  // degradation"). The guarded entry points validate every input before
  // it reaches the planner or the shapers and run the HEALTHY ->
  // DEGRADED -> FALLBACK state machine. On clean inputs a guarded round
  // computes the exact same plan as run_round (the validators only
  // read), at ≤1.05x the cost (BM_GuardedRound).

  /// Reconfigure the guard layer (validators + state machine knobs).
  void set_guard(GuardConfig cfg);
  [[nodiscard]] const GuardConfig& guard() const { return guard_cfg_; }

  /// Adopt an externally produced snapshot as if update_estimates() had
  /// sensed it: refreshes the link-estimate view and topology database.
  /// This is how replayed or fault-injected snapshot streams drive the
  /// controller. Does not write to an attached trace writer.
  void ingest_snapshot(MeasurementSnapshot snap);

  /// One resilient round: pull the next window from `source`, validate
  /// it, plan with guardrails, and actuate — or hold the last-known-good
  /// plan and back off. Composes with LiveSource (live loop), TraceSource
  /// (replay-driven), and FaultEngine (fault injection) alike. Never
  /// throws on bad measurements or failing apply callbacks; every
  /// anomaly lands in health_stats() instead.
  RoundResult guarded_round(SnapshotSource& source);

  /// The validate/plan/apply core of guarded_round over an already
  /// produced snapshot (by value: the validator's repair tier mutates
  /// its copy, never the caller's).
  RoundResult guarded_step(MeasurementSnapshot snap);

  /// Resilience state after the last guarded round.
  [[nodiscard]] HealthState health() const { return health_; }
  [[nodiscard]] const HealthStats& health_stats() const { return hstats_; }
  /// Current trust scale applied to actuated input rates (1 = full).
  [[nodiscard]] double trust() const { return trust_; }
  /// The plan a fallback round re-applies (ok == false until a guarded
  /// round first succeeds).
  [[nodiscard]] const RatePlan& last_good_plan() const {
    return last_good_plan_;
  }

  [[nodiscard]] const std::vector<LinkEstimateRow>& link_estimates() const {
    return estimates_;
  }
  [[nodiscard]] const TopologyDb& topology() const { return topo_; }

  /// The controller's model planner (cache accounting for experiments:
  /// hits stay high while the sensed topology fingerprint is stable,
  /// misses mark the rounds where churn forced a re-enumeration).
  [[nodiscard]] const Planner& planner() const { return planner_; }

  /// Attach a trace recorder (borrowed; nullptr detaches — the default,
  /// and every hook is then a single null check). `lane` stamps this
  /// controller's records (fleet cells pass their cell index). The
  /// planner — and through it the column-generation warm state — reports
  /// into the same recorder. Round indices count this controller's rounds
  /// (guarded or unguarded) from the moment of attachment.
  void set_observer(TraceRecorder* obs, std::uint32_t lane = 0);
  [[nodiscard]] TraceRecorder* observer() const { return obs_; }

 private:
  friend struct ControllerRoundObs;
  ProbeAgent& ensure_agent(NodeId node);
  ProbeMonitor& ensure_monitor(NodeId node);
  [[nodiscard]] int link_index(NodeId src, NodeId dst) const;
  void adopt_snapshot(MeasurementSnapshot snap);
  /// Apply `plan` through the managed flows' callbacks, swallowing (and
  /// counting) exceptions. Returns false when any callback threw.
  bool apply_plan_checked(const RatePlan& plan);
  /// Transition bookkeeping for a failed guarded attempt: enter (or stay
  /// in) kFallback, arm the exponential backoff, hold the LKG plan.
  RoundResult fail_round();

  Network& net_;
  ControllerConfig cfg_;
  std::uint64_t seed_;
  std::vector<ManagedFlow> flows_;
  std::vector<LinkRef> links_;

  /// Probe infrastructure, dense-indexed by NodeId (node ids are assigned
  /// contiguously by the channel): no map lookups or tree walks on the
  /// per-round estimate path. Slots for nodes without probes stay null.
  std::vector<std::unique_ptr<ProbeAgent>> agents_;
  std::vector<std::unique_ptr<ProbeMonitor>> monitors_;

  std::vector<LinkEstimateRow> estimates_;
  TopologyDb topo_;
  MeasurementSnapshot snapshot_;
  RatePlan plan_;
  Planner planner_;

  DenseMatrix lir_table_;  ///< empty() until set_lir_table
  double lir_threshold_ = 0.95;
  std::function<bool(NodeId, NodeId)> neighbor_pred_;
  TraceWriter* trace_writer_ = nullptr;  ///< borrowed; see record_to()

  // Guard layer state (see guarded_round).
  GuardConfig guard_cfg_{};
  HealthState health_ = HealthState::kHealthy;
  HealthStats hstats_;
  RatePlan last_good_plan_;  ///< as actuated (trust scale included)
  double trust_ = 1.0;
  int backoff_wait_ = 0;  ///< fallback rounds left before re-attempting
  int backoff_next_ = 1;  ///< wait imposed by the next failed attempt

  // Observability (see src/obs/obs.h): borrowed recorder + the lane and
  // round index stamped onto this controller's records.
  TraceRecorder* obs_ = nullptr;
  std::uint32_t obs_lane_ = 0;
  std::uint64_t obs_round_ = 0;
};

}  // namespace meshopt
