#pragma once
// MeshController — the paper's online optimization loop (Sections 5-6).
//
// One controller manages a set of end-to-end flows with known paths. Each
// round it:
//   1. runs the broadcast probing system concurrently with live traffic,
//   2. estimates per-link channel loss rates (collision-filtering
//      estimator) and link capacities (Eq. 6),
//   3. builds the conflict graph (two-hop model, or a supplied LIR table)
//      and the extreme points (Eq. 4),
//   4. solves the utility-maximization problem for target output rates y_s,
//   5. converts to input rates x_s = y_s/(1-p_s), applies the TCP ACK
//      airtime factor for TCP flows, and programs the rate limiters.
//
// The controller is deliberately phase-explicit (start_probing /
// update_estimates / optimize_and_apply) so experiments can interleave it
// with traffic exactly like the paper's two-phase runs; run_round() wraps
// a full cycle.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "estimation/capacity.h"
#include "model/conflict_graph.h"
#include "model/feasibility.h"
#include "opt/network_optimizer.h"
#include "probe/probe_system.h"
#include "routing/ett.h"
#include "scenario/workbench.h"

namespace meshopt {

enum class InterferenceModelKind : std::uint8_t { kTwoHop, kLirTable };

struct ControllerConfig {
  double probe_period_s = 0.5;
  int probe_window = 200;  ///< S probes per estimation window
  int w_min = 10;          ///< estimator minimum sliding window
  int payload_bytes = 1470;
  OptimizerConfig optimizer{};
  InterferenceModelKind interference = InterferenceModelKind::kTwoHop;
  /// Optional global scale-down of computed input rates (1.0 = none).
  double headroom = 1.0;
};

struct ManagedFlow {
  int flow_id = -1;
  std::vector<NodeId> path;  ///< node sequence src..dst
  Rate rate = Rate::kR1Mbps;
  bool is_tcp = false;
  /// Callback that programs the flow's rate limiter with x_s (bits/s).
  std::function<void(double x_bps)> apply_rate;
};

struct LinkEstimateRow {
  LinkRef link;
  LinkCapacityEstimate estimate;
};

struct RoundResult {
  bool ok = false;
  std::vector<LinkEstimateRow> links;
  std::vector<double> y;  ///< optimized output rates per managed flow
  std::vector<double> x;  ///< applied input rates per managed flow
  int extreme_points = 0;
  int optimizer_iterations = 0;
};

class MeshController {
 public:
  MeshController(Network& net, ControllerConfig cfg, std::uint64_t seed);

  /// Register a flow (its path also defines the links under management).
  void manage_flow(ManagedFlow flow);

  [[nodiscard]] const std::vector<ManagedFlow>& flows() const {
    return flows_;
  }
  [[nodiscard]] const std::vector<LinkRef>& links() const { return links_; }

  /// Provide a measured LIR table (same order as links()) to use the
  /// binary-LIR interference model instead of two-hop.
  void set_lir_table(std::vector<std::vector<double>> lir,
                     double threshold = 0.95);

  /// Neighbor predicate for the two-hop model (defaults to channel
  /// decodability).
  void set_neighbor_predicate(std::function<bool(NodeId, NodeId)> pred);

  /// Phase 1: start the probing system on every node touched by a flow.
  void start_probing();
  void stop_probing();
  /// Seconds of probing needed to fill one estimation window.
  [[nodiscard]] double probing_window_seconds() const {
    return cfg_.probe_period_s * cfg_.probe_window;
  }

  /// Phase 2: read the probe monitors and refresh link estimates.
  void update_estimates();

  /// Phase 3: build the model, optimize, program the shapers.
  RoundResult optimize_and_apply();

  /// Convenience: probe for one window of simulated time, then estimate
  /// and apply. Caller's simulation keeps running its traffic meanwhile.
  RoundResult run_round(Workbench& wb);

  [[nodiscard]] const std::vector<LinkEstimateRow>& link_estimates() const {
    return estimates_;
  }
  [[nodiscard]] const TopologyDb& topology() const { return topo_; }

 private:
  void ensure_probe_infra(NodeId node);
  [[nodiscard]] int link_index(NodeId src, NodeId dst) const;

  Network& net_;
  ControllerConfig cfg_;
  std::uint64_t seed_;
  std::vector<ManagedFlow> flows_;
  std::vector<LinkRef> links_;

  std::map<NodeId, std::unique_ptr<ProbeAgent>> agents_;
  std::map<NodeId, std::unique_ptr<ProbeMonitor>> monitors_;
  std::map<NodeId, std::uint64_t> window_start_data_;
  std::map<NodeId, std::uint64_t> window_start_ack_;

  std::vector<LinkEstimateRow> estimates_;
  TopologyDb topo_;

  std::optional<std::vector<std::vector<double>>> lir_table_;
  double lir_threshold_ = 0.95;
  std::function<bool(NodeId, NodeId)> neighbor_pred_;
};

}  // namespace meshopt
