#include "core/rate_plan.h"

#include <algorithm>
#include <cmath>

namespace meshopt {

RatePlan plan_rates(const MeasurementSnapshot& snapshot,
                    const InterferenceModel& model,
                    const std::vector<FlowSpec>& flows,
                    const PlanConfig& cfg) {
  return plan_rates(snapshot, model, flows, cfg, nullptr);
}

RatePlan plan_rates(const MeasurementSnapshot& snapshot,
                    const InterferenceModel& model,
                    const std::vector<FlowSpec>& flows, const PlanConfig& cfg,
                    ColumnGenOptimizer* warm) {
  RatePlan plan;
  if (flows.empty() || snapshot.links.empty() ||
      model.num_links() != static_cast<int>(snapshot.links.size())) {
    return plan;
  }

  DenseMatrix routing(static_cast<int>(snapshot.links.size()),
                      static_cast<int>(flows.size()));
  for (std::size_t s = 0; s < flows.size(); ++s) {
    const auto& path = flows[s].path;
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      const int l = snapshot.link_index(path[h], path[h + 1]);
      if (l >= 0) routing(l, static_cast<int>(s)) = 1.0;
    }
  }

  OptimizerResult opt;
  if (cfg.tier == PlanTier::kFast) {
    // Fast tier: no K x L matrix is copied (or even read) — the rate
    // region enters through the conflict graph and per-link capacities,
    // and columns are priced in on demand.
    ColumnGenInput in;
    in.routing = std::move(routing);
    in.conflicts = &model.conflicts();
    in.capacities = snapshot.capacities();
    if (warm != nullptr) {
      warm->config() = cfg.optimizer;
      opt = warm->solve(in);
    } else {
      ColumnGenOptimizer cold(cfg.optimizer);
      opt = cold.solve(in);
    }
    plan.extreme_points = opt.columns_used;
  } else {
    OptimizerInput in;
    in.extreme_points = model.extreme_points();
    in.routing = std::move(routing);
    opt = optimize_rates(in, cfg.optimizer);
    plan.extreme_points = in.extreme_points.rows();
  }
  if (!opt.ok) return RatePlan{};

  plan.ok = true;
  plan.optimizer_iterations = opt.iterations;
  plan.tier = cfg.tier;
  plan.objective_value = opt.objective_value;
  plan.columns_generated = opt.columns_used;
  plan.pricing_rounds = opt.pricing_rounds;
  plan.y = opt.y;
  plan.x.resize(flows.size(), 0.0);
  plan.shapers.reserve(flows.size());

  for (std::size_t s = 0; s < flows.size(); ++s) {
    const FlowSpec& f = flows[s];
    // Residual network-layer loss after MAC retries: p_net = p_link^R.
    double deliver = 1.0;
    for (std::size_t h = 0; h + 1 < f.path.size(); ++h) {
      const int li = snapshot.link_index(f.path[h], f.path[h + 1]);
      if (li < 0) continue;
      const SnapshotLink& link = snapshot.links[static_cast<std::size_t>(li)];
      deliver *= 1.0 - std::pow(link.estimate.p_link, link.retry_limit);
    }
    double x = opt.y[s] / std::max(deliver, 1e-3);
    if (f.is_tcp) x *= tcp_ack_airtime_factor();
    x *= cfg.headroom;
    plan.x[s] = x;
    plan.shapers.push_back(ShaperProgram{f.flow_id, x});
  }
  return plan;
}

}  // namespace meshopt
