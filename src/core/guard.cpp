#include "core/guard.h"

#include <algorithm>
#include <cmath>

#include "phy/radio.h"

namespace meshopt {

const char* to_string(IssueKind kind) {
  switch (kind) {
    case IssueKind::kEmptySnapshot: return "empty-snapshot";
    case IssueKind::kNonFiniteLoss: return "non-finite-loss";
    case IssueKind::kLossOutOfRange: return "loss-out-of-range";
    case IssueKind::kNonFiniteCapacity: return "non-finite-capacity";
    case IssueKind::kCapacityOutOfRange: return "capacity-out-of-range";
    case IssueKind::kMalformedNeighbors: return "malformed-neighbors";
    case IssueKind::kMissingLinks: return "missing-links";
  }
  return "unknown";
}

const char* to_string(SnapshotVerdict verdict) {
  switch (verdict) {
    case SnapshotVerdict::kClean: return "clean";
    case SnapshotVerdict::kRepaired: return "repaired";
    case SnapshotVerdict::kRejected: return "rejected";
  }
  return "unknown";
}

const char* to_string(HealthState state) {
  switch (state) {
    case HealthState::kHealthy: return "HEALTHY";
    case HealthState::kDegraded: return "DEGRADED";
    case HealthState::kFallback: return "FALLBACK";
  }
  return "unknown";
}

namespace {

/// Clamp one loss field into [0, max_loss]. Returns true when it moved.
bool clamp_loss(double& p, double max_loss) {
  const double clamped = std::clamp(p, 0.0, max_loss);
  if (clamped == p) return false;
  p = clamped;
  return true;
}

bool finite(double v) { return std::isfinite(v); }

}  // namespace

ValidationReport SnapshotValidator::validate(
    MeasurementSnapshot& snap, const std::vector<LinkRef>* expected) const {
  ValidationReport report;
  report.links_checked = static_cast<int>(snap.links.size());

  if (snap.links.empty()) {
    report.issues.push_back({IssueKind::kEmptySnapshot, -1, false});
    report.verdict = SnapshotVerdict::kRejected;
    return report;
  }

  // Per-link range/NaN checks. Links whose fields cannot be repaired
  // (non-finite anywhere, unusable capacity) are dropped; finite
  // out-of-range losses and capacity outliers are clamped in place.
  std::vector<SnapshotLink> kept;
  kept.reserve(snap.links.size());
  for (std::size_t i = 0; i < snap.links.size(); ++i) {
    SnapshotLink& l = snap.links[i];
    LinkCapacityEstimate& e = l.estimate;
    const int idx = static_cast<int>(i);
    bool drop = false;
    bool clamped = false;

    if (!finite(e.p_data) || !finite(e.p_ack) || !finite(e.p_link)) {
      report.issues.push_back({IssueKind::kNonFiniteLoss, idx, cfg_.repair});
      drop = true;
    } else {
      bool moved = clamp_loss(e.p_data, cfg_.max_loss);
      moved = clamp_loss(e.p_ack, cfg_.max_loss) || moved;
      moved = clamp_loss(e.p_link, cfg_.max_loss) || moved;
      if (moved) {
        report.issues.push_back(
            {IssueKind::kLossOutOfRange, idx, cfg_.repair});
        clamped = true;
      }
    }

    if (!finite(e.capacity_bps)) {
      report.issues.push_back(
          {IssueKind::kNonFiniteCapacity, idx, cfg_.repair});
      drop = true;
    } else if (e.capacity_bps <= cfg_.min_capacity_bps) {
      // A non-positive (or vanishing) maxUDP estimate cannot feed the
      // rate region; there is no value to clamp it to.
      report.issues.push_back(
          {IssueKind::kCapacityOutOfRange, idx, cfg_.repair});
      drop = true;
    } else {
      const double bound = cfg_.capacity_margin * rate_bps(l.rate);
      if (e.capacity_bps > bound) {
        report.issues.push_back(
            {IssueKind::kCapacityOutOfRange, idx, cfg_.repair});
        e.capacity_bps = bound;
        clamped = true;
      }
    }

    if (drop) {
      ++report.links_dropped;
    } else {
      if (clamped) ++report.links_clamped;
      kept.push_back(l);
    }
  }

  // Neighbor relation invariant: unordered pairs with first < second,
  // sorted ascending, no duplicates. An asymmetric recording — (a, b)
  // alongside (b, a) — normalizes to a duplicate and is deduplicated.
  {
    std::vector<std::pair<NodeId, NodeId>> normalized = snap.neighbors;
    bool malformed = false;
    for (auto& [a, b] : normalized) {
      if (a > b) {
        std::swap(a, b);
        malformed = true;
      } else if (a == b) {
        malformed = true;  // self-pair; removed below
      }
    }
    std::erase_if(normalized, [](const std::pair<NodeId, NodeId>& p) {
      return p.first == p.second;
    });
    if (!std::is_sorted(normalized.begin(), normalized.end()))
      malformed = true;
    std::sort(normalized.begin(), normalized.end());
    const auto dup = std::unique(normalized.begin(), normalized.end());
    if (dup != normalized.end()) malformed = true;
    normalized.erase(dup, normalized.end());
    if (malformed) {
      report.issues.push_back(
          {IssueKind::kMalformedNeighbors, -1, cfg_.repair});
      if (cfg_.repair) snap.neighbors = std::move(normalized);
    }
  }

  if (report.links_dropped > 0 && cfg_.repair)
    snap.links = std::move(kept);

  // Coverage against the expected link set (partial-snapshot detection).
  // Measured against the links that SURVIVED repair: a snapshot whose
  // links all arrived but mostly got dropped is as unusable as one that
  // never carried them.
  if (expected != nullptr && !expected->empty()) {
    for (const LinkRef& want : *expected) {
      if (snap.link_index(want.src, want.dst) < 0) ++report.links_missing;
    }
    if (report.links_missing > 0)
      report.issues.push_back(
          {IssueKind::kMissingLinks, -1, /*repaired=*/false});
    const double covered =
        static_cast<double>(expected->size() - report.links_missing) /
        static_cast<double>(expected->size());
    if (covered < cfg_.min_link_coverage) {
      report.verdict = SnapshotVerdict::kRejected;
      return report;
    }
  }
  if (snap.links.empty()) {  // every link dropped by repair
    report.verdict = SnapshotVerdict::kRejected;
    return report;
  }

  if (report.issues.empty()) {
    report.verdict = SnapshotVerdict::kClean;
  } else {
    report.verdict =
        cfg_.repair ? SnapshotVerdict::kRepaired : SnapshotVerdict::kRejected;
  }
  return report;
}

PlanCheck PlanValidator::validate(const RatePlan& plan,
                                  const MeasurementSnapshot& snapshot,
                                  const std::vector<FlowSpec>& flows) const {
  if (!plan.ok) return {false, -1, "plan infeasible"};
  const std::size_t n = flows.size();
  if (plan.y.size() != n || plan.x.size() != n || plan.shapers.size() != n)
    return {false, -1, "plan not sized to the flow set"};

  for (std::size_t s = 0; s < n; ++s) {
    const int flow = static_cast<int>(s);
    const double y = plan.y[s];
    const double x = plan.x[s];
    if (!std::isfinite(y) || !std::isfinite(x))
      return {false, flow, "non-finite rate"};
    if (y < 0.0 || x < 0.0) return {false, flow, "negative rate"};
    if (y > cfg_.max_rate_bps || x > cfg_.max_rate_bps)
      return {false, flow, "rate above sanity bound"};
    if (!std::isfinite(plan.shapers[s].x_bps) ||
        plan.shapers[s].x_bps < 0.0 ||
        plan.shapers[s].x_bps > cfg_.max_rate_bps)
      return {false, flow, "shaper rate out of range"};

    // Bottleneck feasibility: a flow's output can never exceed the
    // smallest capacity along its path (interference only lowers it
    // further). Hops absent from the snapshot carry no bound — exactly
    // the hops plan_rates skipped when it computed the plan.
    double bottleneck_bps = -1.0;
    const FlowSpec& f = flows[s];
    for (std::size_t h = 0; h + 1 < f.path.size(); ++h) {
      const int li = snapshot.link_index(f.path[h], f.path[h + 1]);
      if (li < 0) continue;
      const double cap =
          snapshot.links[static_cast<std::size_t>(li)].estimate.capacity_bps;
      bottleneck_bps = bottleneck_bps < 0.0 ? cap
                                            : std::min(bottleneck_bps, cap);
    }
    if (bottleneck_bps >= 0.0 && y > cfg_.feasibility_slack * bottleneck_bps)
      return {false, flow, "output above bottleneck capacity"};
  }
  return {};
}

}  // namespace meshopt
