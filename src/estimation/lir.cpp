#include "estimation/lir.h"

namespace meshopt {

LirMeasurement measure_lir(Workbench& wb, const LinkRef& a, const LinkRef& b,
                           double phase_duration_s, int payload_bytes) {
  LirMeasurement m;
  m.c11 = wb.measure_backlogged({a}, phase_duration_s, payload_bytes)[0];
  m.c22 = wb.measure_backlogged({b}, phase_duration_s, payload_bytes)[0];
  const auto both =
      wb.measure_backlogged({a, b}, phase_duration_s, payload_bytes);
  m.c31 = both[0];
  m.c32 = both[1];
  return m;
}

}  // namespace meshopt
