#pragma once
// Channel loss rate estimator (paper Section 5.3, Eq. 7).
//
// Input: the loss pattern of a broadcast-probe stream over a probing window
// of S probes (1 = lost). The measured loss rate p mixes channel losses and
// collision losses; the estimator recovers the channel-only component p_ch
// by exploiting the burstiness of collision losses:
//
//   p_ch^(W) = min over all sliding windows of size W of the in-window
//              loss rate                                            (Eq. 7)
//
//   Case 1 (median criterion): if p_ch^(W) reaches 0.99*p before W = S/2,
//     losses are uniform — no collisions to filter; p_ch = p.
//   Case 2: fit a*ln(w)+b to the p_ch^(W) sequence and take the point of
//     maximum curvature w*; p_ch = p_ch^(floor(w*)).

#include <cstdint>
#include <span>
#include <vector>

namespace meshopt {

struct ChannelLossEstimate {
  double p = 0.0;          ///< measured loss rate over the window
  double p_ch = 0.0;       ///< estimated channel-only loss rate
  int w_star = 0;          ///< window size the estimate was read at
  bool median_case = false;  ///< true if case 1 (uniform losses) fired
  std::vector<double> p_w;   ///< p_ch^(W) for W = w_min..S (diagnostics)
};

/// Run the estimator on a loss pattern (1 = lost probe, 0 = received).
/// `w_min` is the smallest sliding window (10 probes in the paper).
[[nodiscard]] ChannelLossEstimate estimate_channel_loss(
    std::span<const std::uint8_t> losses, int w_min = 10);

/// Combined per-attempt loss probability of a link from its DATA and ACK
/// channel loss rates: p = 1 - (1-pDATA)(1-pACK).
[[nodiscard]] double combine_data_ack_loss(double p_data, double p_ack);

/// Extreme-value bias correction for a minimum-over-windows loss-rate
/// statistic: the loss rate q whose 1/n_windows lower Binomial quantile in
/// a window of the given size matches the observed minimum `raw_rate`.
[[nodiscard]] double min_statistic_corrected_rate(double raw_rate, int window,
                                                  int n_windows);

}  // namespace meshopt
