#pragma once
// Online capacity estimation (paper Section 5.1/5.4): turn probe loss
// patterns into per-link maxUDP-throughput estimates via the channel-loss
// estimator and the Eq. 6 representation.

#include "estimation/loss_estimator.h"
#include "mac/airtime.h"
#include "probe/probe_system.h"

namespace meshopt {

struct LinkCapacityEstimate {
  double p_data = 0.0;      ///< estimated DATA channel loss rate
  double p_ack = 0.0;       ///< estimated ACK channel loss rate
  double p_link = 0.0;      ///< combined per-attempt loss
  double capacity_bps = 0.0;  ///< Eq. 6 maxUDP estimate (payload bits/s)

  friend bool operator==(const LinkCapacityEstimate&,
                         const LinkCapacityEstimate&) = default;
};

/// Closed-form capacity from already-estimated channel loss rates.
[[nodiscard]] LinkCapacityEstimate capacity_from_losses(
    const MacTimings& t, int payload_bytes, Rate rate, double p_ch_data,
    double p_ch_ack);

/// Full online path: read the (src -> dst) DATA stream and (dst -> src) ACK
/// stream from the receivers' monitors, run the channel-loss estimator on
/// both, and evaluate Eq. 6.
///
/// `monitor_at_dst` observes src's DATA probes; `monitor_at_src` observes
/// dst's ACK probes (the ACK travels the reverse direction).
/// `expected_*` are the number of probes the respective sender emitted in
/// the window (used to pad trailing losses).
[[nodiscard]] LinkCapacityEstimate estimate_link_capacity(
    const MacTimings& t, int payload_bytes, Rate rate,
    const ProbeMonitor& monitor_at_dst, NodeId src,
    const ProbeMonitor& monitor_at_src, NodeId dst,
    std::uint64_t expected_data, std::uint64_t expected_ack, int w_min = 10);

}  // namespace meshopt
