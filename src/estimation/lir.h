#pragma once
// Link Interference Ratio measurement (paper Section 4.2, from Padhye et
// al. [24]):
//
//   LIR = (c31 + c32) / (c11 + c22)
//
// where c11/c22 are the links' backlogged UDP throughputs alone and
// c31/c32 their throughputs transmitting simultaneously. LIR = 1 means no
// interference. This is an offline measurement harness — the paper uses it
// as the reference interference model and thresholds it at 0.95.

#include "scenario/workbench.h"

namespace meshopt {

struct LirMeasurement {
  double c11 = 0.0;
  double c22 = 0.0;
  double c31 = 0.0;
  double c32 = 0.0;

  [[nodiscard]] double lir() const {
    const double denom = c11 + c22;
    return denom > 0.0 ? (c31 + c32) / denom : 1.0;
  }
};

constexpr double kLirThreshold = 0.95;  ///< the paper's operating point

/// Three-phase measurement: link a alone, link b alone, both together.
[[nodiscard]] LirMeasurement measure_lir(Workbench& wb, const LinkRef& a,
                                         const LinkRef& b,
                                         double phase_duration_s = 8.0,
                                         int payload_bytes = 1470);

/// Binary-LIR classification with the given threshold.
[[nodiscard]] inline bool interfering(const LirMeasurement& m,
                                      double threshold = kLirThreshold) {
  return m.lir() < threshold;
}

}  // namespace meshopt
