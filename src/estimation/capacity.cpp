#include "estimation/capacity.h"

namespace meshopt {

LinkCapacityEstimate capacity_from_losses(const MacTimings& t,
                                          int payload_bytes, Rate rate,
                                          double p_ch_data, double p_ch_ack) {
  LinkCapacityEstimate est;
  est.p_data = p_ch_data;
  est.p_ack = p_ch_ack;
  est.p_link = combine_data_ack_loss(p_ch_data, p_ch_ack);
  est.capacity_bps =
      max_udp_throughput_bps(t, payload_bytes, rate, est.p_link);
  return est;
}

LinkCapacityEstimate estimate_link_capacity(
    const MacTimings& t, int payload_bytes, Rate rate,
    const ProbeMonitor& monitor_at_dst, NodeId src,
    const ProbeMonitor& monitor_at_src, NodeId dst,
    std::uint64_t expected_data, std::uint64_t expected_ack, int w_min) {
  double p_data = 1.0;  // no probes heard at all: assume dead link
  double p_ack = 1.0;

  if (const LossRecorder* rec =
          monitor_at_dst.stream({src, rate, ProbeKind::kDataProbe})) {
    const auto pat = rec->pattern(expected_data);
    if (!pat.empty()) p_data = estimate_channel_loss(pat, w_min).p_ch;
  }
  if (const LossRecorder* rec = monitor_at_src.stream(
          {dst, Rate::kR1Mbps, ProbeKind::kAckProbe})) {
    const auto pat = rec->pattern(expected_ack);
    if (!pat.empty()) p_ack = estimate_channel_loss(pat, w_min).p_ch;
  }

  return capacity_from_losses(t, payload_bytes, rate, p_data, p_ack);
}

}  // namespace meshopt
