#include "estimation/loss_estimator.h"

#include <algorithm>
#include <cmath>

#include "util/mathfit.h"

namespace meshopt {

namespace {

/// Median (across a few replicas) of the sliding-window minimum loss count
/// for a uniform Bernoulli(q) process of length s with window w. Uses an
/// internal deterministic RNG so the estimator stays reproducible.
double expected_min_window_count(double q, int w, int s) {
  constexpr int kReplicas = 5;
  std::vector<double> mins;
  mins.reserve(kReplicas);
  std::uint64_t state = 0x9e3779b97f4a7c15ULL ^
                        (static_cast<std::uint64_t>(w) << 32) ^
                        static_cast<std::uint64_t>(s);
  const auto next_u01 = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state >> 11) * 0x1.0p-53;
  };
  for (int r = 0; r < kReplicas; ++r) {
    int in_window = 0;
    int best = w + 1;
    std::vector<std::uint8_t> ring(static_cast<std::size_t>(w), 0);
    for (int i = 0; i < s; ++i) {
      const std::uint8_t loss = next_u01() < q ? 1 : 0;
      const std::size_t slot = static_cast<std::size_t>(i % w);
      if (i >= w) in_window -= ring[slot];
      ring[slot] = loss;
      in_window += loss;
      if (i >= w - 1) best = std::min(best, in_window);
    }
    mins.push_back(static_cast<double>(best));
  }
  std::nth_element(mins.begin(), mins.begin() + kReplicas / 2, mins.end());
  return mins[kReplicas / 2];
}

}  // namespace

double min_statistic_corrected_rate(double raw_rate, int window,
                                    int n_windows) {
  if (n_windows <= 1 || window <= 0) return raw_rate;
  const int s = n_windows + window - 1;
  const double k_min = raw_rate * static_cast<double>(window);
  // Find q whose typical sliding-window minimum matches the observation
  // (monotone in q -> bisection). This captures both the Binomial tail and
  // the overlapping-window extreme-value effect without approximation.
  // We return the largest q whose typical minimum does not exceed the
  // observation (this also handles k_min = 0 correctly: many q values
  // produce a zero minimum, and the data supports any of them up to the
  // transition point).
  double lo = std::clamp(raw_rate, 0.0, 1.0);
  double hi = 1.0;
  if (expected_min_window_count(hi, window, s) <= k_min) return hi;
  if (expected_min_window_count(lo, window, s) > k_min) return lo;
  for (int it = 0; it < 22; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (expected_min_window_count(mid, window, s) <= k_min) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

ChannelLossEstimate estimate_channel_loss(
    std::span<const std::uint8_t> losses, int w_min) {
  ChannelLossEstimate est;
  const int s = static_cast<int>(losses.size());
  if (s == 0) return est;
  w_min = std::clamp(w_min, 1, s);

  // Prefix sums of losses for O(1) window counts.
  std::vector<int> prefix(static_cast<std::size_t>(s) + 1, 0);
  for (int i = 0; i < s; ++i)
    prefix[std::size_t(i) + 1] = prefix[std::size_t(i)] + (losses[std::size_t(i)] ? 1 : 0);
  const int total_losses = prefix[std::size_t(s)];
  est.p = static_cast<double>(total_losses) / static_cast<double>(s);

  if (total_losses == 0) {
    est.p_ch = 0.0;
    est.w_star = w_min;
    est.median_case = true;
    return est;
  }

  // p_ch^(W) for every window size.
  est.p_w.reserve(static_cast<std::size_t>(s - w_min + 1));
  for (int w = w_min; w <= s; ++w) {
    int best = w + 1;
    for (int i = 0; i + w <= s; ++i) {
      best = std::min(best, prefix[std::size_t(i + w)] - prefix[std::size_t(i)]);
      if (best == 0) break;
    }
    est.p_w.push_back(static_cast<double>(best) / static_cast<double>(w));
  }

  // Case 1, literal rule: p_ch^(W) reaches 0.99 p before W = S/2 —
  // losses are uniform and nothing needs filtering.
  const int half = std::max(w_min, s / 2);
  for (int w = w_min; w <= half; ++w) {
    if (est.p_w[std::size_t(w - w_min)] >= 0.99 * est.p) {
      est.p_ch = est.p;
      est.w_star = w;
      est.median_case = true;
      return est;
    }
  }

  // Case 2: logarithmic fit + maximum curvature, on axis-normalized
  // coordinates (w~ = w/S, y~ = p_w/p) so that "curvature" is
  // scale-invariant.
  std::vector<double> ws, ys;
  ws.reserve(est.p_w.size());
  ys.reserve(est.p_w.size());
  for (int w = w_min; w <= s; ++w) {
    ws.push_back(static_cast<double>(w) / static_cast<double>(s));
    ys.push_back(est.p_w[std::size_t(w - w_min)] / est.p);
  }
  const LogFit fit = fit_log_curve(ws, ys);
  const double w_norm_star = max_curvature_point(
      fit, static_cast<double>(w_min) / static_cast<double>(s), 1.0);
  est.w_star = std::clamp(static_cast<int>(w_norm_star * s), w_min, s);

  // The raw minimum-window rate underestimates the clean-segment loss
  // rate: the minimum of many window statistics sits in the lower tail of
  // the Binomial(W, q) distribution. Correct it by quantile matching —
  // find q whose 1/n_windows lower quantile equals the observed minimum.
  // Because the corrected statistic is (approximately) consistent for a
  // uniform process at *any* window size, we evaluate it on a coarse
  // log-spaced window grid (plus the curvature point) and keep the
  // smallest value — windows shorter than the typical collision-burst gap
  // see only channel losses.
  double corrected = min_statistic_corrected_rate(
      est.p_w[std::size_t(est.w_star - w_min)], est.w_star,
      s - est.w_star + 1);
  for (int w : {est.w_star / 2, est.w_star / 4}) {
    const int wi = std::clamp(w, 2 * w_min, s);
    const double c = min_statistic_corrected_rate(
        est.p_w[std::size_t(wi - w_min)], wi, s - wi + 1);
    corrected = std::min(corrected, c);
  }

  if (corrected >= 0.85 * est.p) {
    // Statistically indistinguishable from a uniform loss process.
    est.p_ch = est.p;
    est.median_case = true;
  } else {
    est.p_ch = std::min(corrected, est.p);
    est.median_case = false;
  }
  return est;
}

double combine_data_ack_loss(double p_data, double p_ack) {
  p_data = std::clamp(p_data, 0.0, 1.0);
  p_ack = std::clamp(p_ack, 0.0, 1.0);
  return 1.0 - (1.0 - p_data) * (1.0 - p_ack);
}

}  // namespace meshopt
