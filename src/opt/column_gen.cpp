#include "opt/column_gen.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "obs/obs.h"
#include "opt/utility.h"

namespace meshopt {

namespace {

/// Exact branch-and-bound MWIS over packed bitset adjacency. Vertices are
/// visited in a static order (weight descending, index ascending) so
/// heavy vertices are decided first; the bound is the greedy sum of all
/// remaining candidate weights. Only positive-weight vertices ever enter
/// the candidate set, so every inclusion strictly improves the incumbent.
struct MwisSearch {
  const ConflictGraph* g = nullptr;
  const double* w = nullptr;
  int n = 0;
  int words = 0;
  const int* order = nullptr;
  std::uint64_t node_cap = 0;
  std::uint64_t nodes = 0;
  bool truncated = false;
  double best_w = 0.0;
  std::vector<std::uint64_t> cur;
  std::vector<std::uint64_t> best;

  void search(std::vector<std::uint64_t>& cand, double cur_w, int from) {
    if (truncated) return;
    if (++nodes > node_cap) {
      truncated = true;
      return;
    }
    double bound = cur_w;
    for (int wd = 0; wd < words; ++wd) {
      std::uint64_t m = cand[static_cast<std::size_t>(wd)];
      while (m != 0) {
        bound += w[wd * 64 + std::countr_zero(m)];
        m &= m - 1;
      }
    }
    if (bound <= best_w + 1e-15) return;
    std::vector<std::uint64_t> sub(static_cast<std::size_t>(words));
    for (int oi = from; oi < n; ++oi) {
      const int v = order[oi];
      const std::uint64_t bit = std::uint64_t{1} << (v & 63);
      if ((cand[static_cast<std::size_t>(v >> 6)] & bit) == 0) continue;
      // Include v: candidates shrink to v's non-neighbors.
      cur[static_cast<std::size_t>(v >> 6)] |= bit;
      const double nw = cur_w + w[v];
      if (nw > best_w) {
        best_w = nw;
        best = cur;
      }
      const std::uint64_t* adj = g->row(v);
      for (int wd = 0; wd < words; ++wd)
        sub[static_cast<std::size_t>(wd)] =
            cand[static_cast<std::size_t>(wd)] &
            ~adj[static_cast<std::size_t>(wd)];
      sub[static_cast<std::size_t>(v >> 6)] &= ~bit;
      search(sub, nw, oi + 1);
      cur[static_cast<std::size_t>(v >> 6)] &= ~bit;
      if (truncated) return;
      // Exclude v and keep scanning; the bound tightens by w[v].
      cand[static_cast<std::size_t>(v >> 6)] &= ~bit;
      bound -= w[v];
      if (bound <= best_w + 1e-15) return;
    }
  }
};

}  // namespace

double max_weight_independent_set(const ConflictGraph& graph,
                                  const std::vector<double>& weights,
                                  std::vector<std::uint64_t>& bits,
                                  std::uint64_t node_cap,
                                  std::uint64_t* nodes_visited,
                                  bool* truncated) {
  const int n = graph.size();
  const int words = graph.row_words();
  bits.assign(static_cast<std::size_t>(words), 0);
  if (nodes_visited != nullptr) *nodes_visited = 0;
  if (truncated != nullptr) *truncated = false;
  if (n == 0) return 0.0;
  if (static_cast<int>(weights.size()) != n)
    throw std::invalid_argument("MWIS weights size != graph size");

  MwisSearch s;
  s.g = &graph;
  s.w = weights.data();
  s.n = n;
  s.words = words;
  s.node_cap = node_cap;
  s.cur.assign(static_cast<std::size_t>(words), 0);
  s.best.assign(static_cast<std::size_t>(words), 0);

  std::vector<int> order(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) order[static_cast<std::size_t>(v)] = v;
  std::sort(order.begin(), order.end(), [&weights](int a, int b) {
    const double wa = weights[static_cast<std::size_t>(a)];
    const double wb = weights[static_cast<std::size_t>(b)];
    if (wa != wb) return wa > wb;
    return a < b;
  });
  s.order = order.data();

  std::vector<std::uint64_t> cand(static_cast<std::size_t>(words), 0);
  for (int v = 0; v < n; ++v) {
    if (weights[static_cast<std::size_t>(v)] > 0.0)
      cand[static_cast<std::size_t>(v >> 6)] |= std::uint64_t{1} << (v & 63);
  }
  s.search(cand, 0.0, 0);

  bits = s.best;
  if (nodes_visited != nullptr) *nodes_visited = s.nodes;
  if (truncated != nullptr) *truncated = s.truncated;
  return s.best_w;
}

void extend_to_maximal_independent_set(const ConflictGraph& graph,
                                       std::vector<std::uint64_t>& bits) {
  const int n = graph.size();
  const int words = graph.row_words();
  bits.resize(static_cast<std::size_t>(words), 0);
  std::vector<std::uint64_t> blocked(static_cast<std::size_t>(words), 0);
  for (int v = 0; v < n; ++v) {
    if ((bits[static_cast<std::size_t>(v >> 6)] >> (v & 63) & 1) == 0)
      continue;
    const std::uint64_t* adj = graph.row(v);
    for (int wd = 0; wd < words; ++wd)
      blocked[static_cast<std::size_t>(wd)] |=
          adj[static_cast<std::size_t>(wd)];
  }
  for (int v = 0; v < n; ++v) {
    const std::uint64_t bit = std::uint64_t{1} << (v & 63);
    if ((bits[static_cast<std::size_t>(v >> 6)] & bit) != 0) continue;
    if ((blocked[static_cast<std::size_t>(v >> 6)] & bit) != 0) continue;
    bits[static_cast<std::size_t>(v >> 6)] |= bit;
    const std::uint64_t* adj = graph.row(v);
    for (int wd = 0; wd < words; ++wd)
      blocked[static_cast<std::size_t>(wd)] |=
          adj[static_cast<std::size_t>(wd)];
  }
}

void ColumnGenOptimizer::reset() {
  columns_ = MisRowSet();
  warm_basis_.clear();
  warm_vars_ = -1;
  warm_rows_ = -1;
}

bool ColumnGenOptimizer::has_column(
    const std::vector<std::uint64_t>& bits) const {
  const int words = columns_.row_words();
  for (int k = 0; k < columns_.count(); ++k) {
    const std::uint64_t* row = columns_.row(k);
    if (std::equal(row, row + words, bits.data())) return true;
  }
  return false;
}

void ColumnGenOptimizer::seed_columns(const ColumnGenInput& in) {
  const int links = in.conflicts->size();
  if (columns_.num_links() != links) {
    columns_ = MisRowSet(links);
    warm_basis_.clear();
    warm_vars_ = -1;
    warm_rows_ = -1;
  }
  if (columns_.count() > 0) return;
  // One greedy maximal set grown from each link, deduped. Every link then
  // appears in at least one working column, so the restricted master's
  // link coverage (and its capacity normalization scale) matches the
  // exact tier's full matrix from the first solve.
  const int words = in.conflicts->row_words();
  std::vector<std::uint64_t> bits;
  for (int l = 0; l < links; ++l) {
    bits.assign(static_cast<std::size_t>(words), 0);
    bits[static_cast<std::size_t>(l >> 6)] |= std::uint64_t{1} << (l & 63);
    extend_to_maximal_independent_set(*in.conflicts, bits);
    if (has_column(bits)) continue;
    columns_.append(bits.data());
    ++stats_.columns_seeded;
  }
}

/// Mirror of the exact tier's base_problem over the working set: link
/// capacity rows, the convexity row, and safety caps for unrouted flows,
/// in the same row order so dual indices line up with link indices.
void ColumnGenOptimizer::build_master(const ColumnGenInput& in, const Shape& s,
                                      int extra_vars) {
  master_ = LpProblem();
  const int cols = columns_.count();
  master_.num_vars = s.flows + cols + extra_vars;
  master_.objective.assign(static_cast<std::size_t>(master_.num_vars), 0.0);

  const double inv_scale = 1.0 / s.scale;
  for (int l = 0; l < s.links; ++l) {
    double* row = master_.add_row(Relation::kLe, 0.0);
    const double* routing = in.routing.row(l);
    for (int f = 0; f < s.flows; ++f) row[f] = routing[f];
    const int wd = l >> 6;
    const std::uint64_t bit = std::uint64_t{1} << (l & 63);
    const double coef =
        -in.capacities[static_cast<std::size_t>(l)] * inv_scale;
    for (int k = 0; k < cols; ++k) {
      if ((columns_.row(k)[static_cast<std::size_t>(wd)] & bit) != 0)
        row[s.flows + k] = coef;
    }
  }
  convexity_row_ = s.links;
  double* simplex_row = master_.add_row(Relation::kEq, 1.0);
  for (int k = 0; k < cols; ++k) simplex_row[s.flows + k] = 1.0;

  // Safety cap: a flow crossing no modeled link would be unbounded.
  for (int f = 0; f < s.flows; ++f) {
    bool routed = false;
    for (int l = 0; l < s.links; ++l)
      if (in.routing(l, f) > 0.0) routed = true;
    if (!routed) {
      double* row = master_.add_row(Relation::kLe, 1.0);
      row[f] = 1.0;
    }
  }
}

int ColumnGenOptimizer::append_column_to_master(
    const std::vector<std::uint64_t>& bits, const ColumnGenInput& in,
    const Shape& s) {
  columns_.append(bits.data());
  master_.append_vars(1);
  const int col = master_.num_vars - 1;
  const double inv_scale = 1.0 / s.scale;
  for (int l = 0; l < s.links; ++l) {
    if ((bits[static_cast<std::size_t>(l >> 6)] >> (l & 63) & 1) != 0)
      master_.coeffs(l, col) =
          -in.capacities[static_cast<std::size_t>(l)] * inv_scale;
  }
  master_.coeffs(convexity_row_, col) = 1.0;
  return col;
}

bool ColumnGenOptimizer::price_one(const ColumnGenInput& in, const Shape& s) {
  ++stats_.pricing_rounds;
  ++solve_pricing_rounds_;
  lp_.duals(duals_);
  // Reduced cost of a candidate column w (zero objective coefficient):
  //   d_w = sum_{l in w} c_l/scale * lambda_l - mu,
  // with lambda the link-row duals (>= 0 for binding <= rows; clamp fp
  // dust) and mu the convexity-row dual. Maximizing sum lambda_l c_l over
  // independent sets is exactly MWIS on the conflict graph, and the
  // search is exact, so d_best <= pricing_tol certifies optimality over
  // the FULL rate region — every one of the K unseen columns is covered.
  const double mu = duals_[static_cast<std::size_t>(convexity_row_)];
  const double inv_scale = 1.0 / s.scale;
  weights_.assign(static_cast<std::size_t>(s.links), 0.0);
  for (int l = 0; l < s.links; ++l) {
    weights_[static_cast<std::size_t>(l)] =
        std::max(duals_[static_cast<std::size_t>(l)], 0.0) *
        in.capacities[static_cast<std::size_t>(l)] * inv_scale;
  }
  std::uint64_t nodes = 0;
  bool truncated = false;
  const double best = max_weight_independent_set(
      *in.conflicts, weights_, cand_bits_, cg_.mwis_node_cap, &nodes,
      &truncated);
  stats_.oracle_nodes += nodes;
  if (truncated) ++stats_.oracle_truncated;
  const double reduced = best - mu;
  if (reduced <= cg_.pricing_tol) return false;
  // Extend to a maximal set (added links carry weight >= 0, so the true
  // reduced cost only grows) — the working set then holds exactly the
  // kind of column the exact tier enumerates.
  extend_to_maximal_independent_set(*in.conflicts, cand_bits_);
  if (has_column(cand_bits_)) {
    // The oracle re-derived a column the master already has: the duals
    // are fp-degenerate. Stop pricing rather than cycle — the working-set
    // optimum is already within solver epsilon of the full optimum.
    return false;
  }
  if (on_admit) {
    ColumnAdmission a;
    a.pricing_round = solve_pricing_rounds_;
    a.reduced_cost = reduced;
    for (int l = 0; l < s.links; ++l) {
      if ((cand_bits_[static_cast<std::size_t>(l >> 6)] >> (l & 63) & 1) != 0)
        a.links.push_back(l);
    }
    on_admit(a);
  }
  append_column_to_master(cand_bits_, in, s);
  ++stats_.columns_admitted;
  return true;
}

LpSolution ColumnGenOptimizer::cg_solve(const ColumnGenInput& in,
                                        const Shape& s, Start start) {
  LpSolution sol;
  switch (start) {
    case Start::kWarmBasis:
      if (!warm_basis_.empty() && warm_vars_ == master_.num_vars &&
          warm_rows_ == master_.num_constraints()) {
        ++stats_.warm_starts;
        sol = lp_.solve_with_basis(master_, warm_basis_);
      } else {
        sol = lp_.solve(master_);
      }
      break;
    case Start::kCold:
      sol = lp_.solve(master_);
      break;
    case Start::kResolveObjective:
      sol = lp_.resolve_objective(master_);
      break;
  }
  ++stats_.master_solves;
  int rounds = 0;
  while (sol.status == LpStatus::kOptimal && rounds < cg_.max_pricing_rounds) {
    ++rounds;
    if (!price_one(in, s)) break;
    sol = lp_.resolve_with_added_columns(master_);
    ++stats_.master_solves;
  }
  return sol;
}

void ColumnGenOptimizer::save_basis() {
  warm_basis_ = lp_.basis();
  warm_vars_ = master_.num_vars;
  warm_rows_ = master_.num_constraints();
}

OptimizerResult ColumnGenOptimizer::unpack(const LpSolution& sol,
                                           const Shape& s) {
  OptimizerResult r;
  if (sol.status != LpStatus::kOptimal) return r;
  r.ok = true;
  r.y.assign(static_cast<std::size_t>(s.flows), 0.0);
  r.alpha_weights.assign(static_cast<std::size_t>(columns_.count()), 0.0);
  for (int f = 0; f < s.flows; ++f)
    r.y[static_cast<std::size_t>(f)] =
        sol.x[static_cast<std::size_t>(f)] * s.scale;
  for (int k = 0; k < columns_.count(); ++k)
    r.alpha_weights[static_cast<std::size_t>(k)] =
        sol.x[static_cast<std::size_t>(s.flows + k)];
  return r;
}

OptimizerResult ColumnGenOptimizer::solve_max_throughput(
    const ColumnGenInput& in, const Shape& s) {
  build_master(in, s, /*extra_vars=*/0);
  for (int f = 0; f < s.flows; ++f)
    master_.objective[static_cast<std::size_t>(f)] = 1.0;
  const LpSolution sol = cg_solve(in, s, Start::kWarmBasis);
  OptimizerResult r = unpack(sol, s);
  if (r.ok) {
    save_basis();
    r.objective_value = 0.0;
    for (double y : r.y) r.objective_value += y;
  }
  return r;
}

/// Lexicographic max-min water-filling, same algorithm as the exact tier
/// (see network_optimizer.cpp) with every LP replaced by a priced master.
/// Does not touch the carried warm basis: when this runs as the
/// Frank-Wolfe starting point, the basis saved from the previous round's
/// final FW oracle must survive to warm-start this round's first oracle.
OptimizerResult ColumnGenOptimizer::solve_max_min(const ColumnGenInput& in,
                                                  const Shape& s) {
  std::vector<bool> fixed(static_cast<std::size_t>(s.flows), false);
  std::vector<double> level(static_cast<std::size_t>(s.flows), 0.0);

  for (int round = 0; round < s.flows; ++round) {
    // Maximize t with y_f >= t for unfixed flows, y_f == level for fixed.
    build_master(in, s, /*extra_vars=*/1);
    const int t_var = s.flows + columns_.count();
    master_.objective[static_cast<std::size_t>(t_var)] = 1.0;
    for (int f = 0; f < s.flows; ++f) {
      if (fixed[static_cast<std::size_t>(f)]) {
        double* row = master_.add_row(Relation::kEq,
                                      level[static_cast<std::size_t>(f)]);
        row[f] = 1.0;
      } else {
        double* row = master_.add_row(Relation::kGe, 0.0);
        row[f] = 1.0;
        row[t_var] = -1.0;
      }
    }
    const LpSolution sol = cg_solve(in, s, Start::kCold);
    if (sol.status != LpStatus::kOptimal) break;
    // Columns admitted mid-solve append after t_var, so its index from
    // build time stays valid against the grown solution vector.
    const double t = sol.x[static_cast<std::size_t>(t_var)];

    // Find which unfixed flows are actually capped at t (same push-loop
    // and warm-restart structure as the exact tier).
    bool progressed = false;
    bool push_stale = true;
    int prev_obj_flow = -1;
    for (int f = 0; f < s.flows; ++f) {
      if (fixed[static_cast<std::size_t>(f)]) continue;
      if (push_stale) {
        build_master(in, s, /*extra_vars=*/0);
        for (int g = 0; g < s.flows; ++g) {
          if (fixed[static_cast<std::size_t>(g)]) {
            double* row = master_.add_row(
                Relation::kEq, level[static_cast<std::size_t>(g)]);
            row[g] = 1.0;
          } else {
            double* row = master_.add_row(Relation::kGe, t);
            row[g] = 1.0;
          }
        }
        prev_obj_flow = -1;
      }
      if (prev_obj_flow >= 0)
        master_.objective[static_cast<std::size_t>(prev_obj_flow)] = 0.0;
      master_.objective[static_cast<std::size_t>(f)] = 1.0;
      prev_obj_flow = f;
      const LpSolution up = cg_solve(
          in, s, push_stale ? Start::kCold : Start::kResolveObjective);
      push_stale = false;
      const double reach =
          up.status == LpStatus::kOptimal ? up.objective : t;
      if (reach <= t + 1e-7) {
        fixed[static_cast<std::size_t>(f)] = true;
        level[static_cast<std::size_t>(f)] = t;
        progressed = true;
        push_stale = true;  // the next push sees a new Eq row
      }
    }
    if (!progressed) {
      // Numerical corner: freeze everything at t.
      for (int f = 0; f < s.flows; ++f) {
        if (!fixed[static_cast<std::size_t>(f)]) {
          fixed[static_cast<std::size_t>(f)] = true;
          level[static_cast<std::size_t>(f)] = t;
        }
      }
    }
    if (std::all_of(fixed.begin(), fixed.end(), [](bool b) { return b; }))
      break;
  }

  // Final solve with all levels pinned to recover alpha weights.
  build_master(in, s, /*extra_vars=*/0);
  for (int f = 0; f < s.flows; ++f) {
    double* row = master_.add_row(
        Relation::kGe, level[static_cast<std::size_t>(f)] * (1.0 - 1e-9));
    row[f] = 1.0;
  }
  const LpSolution sol = cg_solve(in, s, Start::kCold);
  OptimizerResult r = unpack(sol, s);
  if (r.ok) {
    for (int f = 0; f < s.flows; ++f)
      r.y[static_cast<std::size_t>(f)] =
          level[static_cast<std::size_t>(f)] * s.scale;
    r.objective_value = *std::min_element(r.y.begin(), r.y.end());
  }
  return r;
}

/// Frank-Wolfe for the strictly concave alpha-fair objectives, same
/// trajectory as the exact tier (max-min start, gradient LP oracle,
/// golden-section line search) with the oracle priced instead of full-K.
/// The iterate z grows whenever the oracle admits a column (the new
/// component starts at weight 0, which changes nothing retroactively).
OptimizerResult ColumnGenOptimizer::solve_alpha_fair(const ColumnGenInput& in,
                                                     const Shape& s,
                                                     double alpha,
                                                     int iterations,
                                                     double tolerance) {
  const AlphaFairUtility util(alpha, 1e-6);

  // Interior-ish start: the max-min point keeps every flow positive.
  OptimizerResult start = solve_max_min(in, s);
  if (!start.ok) return start;

  std::vector<double> z(
      static_cast<std::size_t>(s.flows + columns_.count()), 0.0);
  for (int f = 0; f < s.flows; ++f)
    z[static_cast<std::size_t>(f)] =
        std::max(start.y[static_cast<std::size_t>(f)] / s.scale, 1e-6);
  for (std::size_t k = 0; k < start.alpha_weights.size(); ++k)
    z[static_cast<std::size_t>(s.flows) + k] = start.alpha_weights[k];

  const auto objective = [&](const std::vector<double>& v) {
    double acc = 0.0;
    for (int f = 0; f < s.flows; ++f)
      acc += util.value(v[static_cast<std::size_t>(f)]);
    return acc;
  };

  build_master(in, s, /*extra_vars=*/0);
  OptimizerResult result;
  LpSolution sol;
  int iter = 0;
  for (; iter < iterations; ++iter) {
    // Linear oracle at the current gradient. The first master of the
    // solve tries the basis carried from the previous round's final
    // oracle (same topology entry, drifted capacities); later iterations
    // warm-restart off the previous optimum as the exact tier does.
    master_.objective.assign(static_cast<std::size_t>(master_.num_vars),
                             0.0);
    for (int f = 0; f < s.flows; ++f)
      master_.objective[static_cast<std::size_t>(f)] =
          util.gradient(z[static_cast<std::size_t>(f)]);
    sol = cg_solve(in, s,
                   iter == 0 ? Start::kWarmBasis : Start::kResolveObjective);
    if (sol.status != LpStatus::kOptimal) break;
    if (z.size() < sol.x.size()) z.resize(sol.x.size(), 0.0);

    // FW gap (scaled): grad . (v - z).
    double gap = 0.0;
    for (int f = 0; f < s.flows; ++f)
      gap += master_.objective[static_cast<std::size_t>(f)] *
             (sol.x[static_cast<std::size_t>(f)] -
              z[static_cast<std::size_t>(f)]);
    if (gap <= tolerance * (std::abs(objective(z)) + 1.0)) break;

    // Golden-section line search on gamma in [0, 1].
    const auto blend_obj = [&](double gamma) {
      double acc = 0.0;
      for (int f = 0; f < s.flows; ++f) {
        const double y = (1.0 - gamma) * z[static_cast<std::size_t>(f)] +
                         gamma * sol.x[static_cast<std::size_t>(f)];
        acc += util.value(y);
      }
      return acc;
    };
    double lo = 0.0, hi = 1.0;
    constexpr double kGolden = 0.3819660112501051;
    double m1 = lo + kGolden * (hi - lo), m2 = hi - kGolden * (hi - lo);
    double f1 = blend_obj(m1), f2 = blend_obj(m2);
    for (int it = 0; it < 40; ++it) {
      if (f1 < f2) {
        lo = m1;
        m1 = m2;
        f1 = f2;
        m2 = hi - kGolden * (hi - lo);
        f2 = blend_obj(m2);
      } else {
        hi = m2;
        m2 = m1;
        f2 = f1;
        m1 = lo + kGolden * (hi - lo);
        f1 = blend_obj(m1);
      }
    }
    const double gamma = 0.5 * (lo + hi);
    for (std::size_t j = 0; j < z.size(); ++j)
      z[j] = (1.0 - gamma) * z[j] + gamma * sol.x[j];
  }

  if (sol.status == LpStatus::kOptimal) save_basis();
  result.ok = true;
  result.iterations = iter;
  result.y.assign(static_cast<std::size_t>(s.flows), 0.0);
  result.alpha_weights.assign(static_cast<std::size_t>(columns_.count()),
                              0.0);
  for (int f = 0; f < s.flows; ++f)
    result.y[static_cast<std::size_t>(f)] =
        z[static_cast<std::size_t>(f)] * s.scale;
  for (int k = 0; k < columns_.count(); ++k) {
    const std::size_t j = static_cast<std::size_t>(s.flows + k);
    if (j < z.size()) result.alpha_weights[static_cast<std::size_t>(k)] = z[j];
  }
  result.objective_value = objective(z);
  return result;
}

OptimizerResult ColumnGenOptimizer::begin_fw_round(
    const ColumnGenInput& input) {
  if (input.conflicts == nullptr)
    throw std::invalid_argument("ColumnGenInput: conflicts is required");
  Shape s;
  s.links = input.routing.rows();
  s.flows = input.routing.cols();
  fw_last_ok_ = false;
  OptimizerResult empty;
  if (s.flows == 0 || s.links == 0) return empty;
  if (input.conflicts->size() != s.links)
    throw std::invalid_argument("conflict graph size != link count");
  if (static_cast<int>(input.capacities.size()) != s.links)
    throw std::invalid_argument("capacities size != link count");
  double max_cap = 0.0;
  for (double c : input.capacities) max_cap = std::max(max_cap, c);
  s.scale = input.scale_override > 0.0 ? input.scale_override
                                       : (max_cap > 0.0 ? max_cap : 1.0);

  ++stats_.solves;
  solve_pricing_rounds_ = 0;
  seed_columns(input);

  // The interior-ish starting point the in-process FW uses, then the FW
  // master the oracle iterations price against.
  OptimizerResult start = solve_max_min(input, s);
  fw_shape_ = s;
  if (!start.ok) return start;
  build_master(input, s, /*extra_vars=*/0);
  start.columns_used = columns_.count();
  start.pricing_rounds = solve_pricing_rounds_;
  return start;
}

LpSolution ColumnGenOptimizer::fw_oracle(const ColumnGenInput& input,
                                         const std::vector<double>& grad,
                                         bool first) {
  master_.objective.assign(static_cast<std::size_t>(master_.num_vars), 0.0);
  for (int f = 0; f < fw_shape_.flows; ++f)
    master_.objective[static_cast<std::size_t>(f)] =
        grad[static_cast<std::size_t>(f)];
  const LpSolution sol = cg_solve(
      input, fw_shape_, first ? Start::kWarmBasis : Start::kResolveObjective);
  fw_last_ok_ = sol.status == LpStatus::kOptimal;
  return sol;
}

void ColumnGenOptimizer::end_fw_round() {
  if (fw_last_ok_) save_basis();
  fw_last_ok_ = false;
}

OptimizerResult ColumnGenOptimizer::solve(const ColumnGenInput& input) {
  if (input.conflicts == nullptr)
    throw std::invalid_argument("ColumnGenInput: conflicts is required");
  Shape s;
  s.links = input.routing.rows();
  s.flows = input.routing.cols();
  OptimizerResult empty;
  if (s.flows == 0 || s.links == 0) return empty;
  if (input.conflicts->size() != s.links)
    throw std::invalid_argument("conflict graph size != link count");
  if (static_cast<int>(input.capacities.size()) != s.links)
    throw std::invalid_argument("capacities size != link count");
  // Same normalization as the exact tier: every link appears in some
  // maximal independent set, so the extreme-point matrix's max entry IS
  // the max capacity — the normalized masters of both tiers agree.
  double max_cap = 0.0;
  for (double c : input.capacities) max_cap = std::max(max_cap, c);
  s.scale = input.scale_override > 0.0 ? input.scale_override
                                       : (max_cap > 0.0 ? max_cap : 1.0);

  ++stats_.solves;
  solve_pricing_rounds_ = 0;
  const std::uint64_t warm_before = stats_.warm_starts;
  const std::uint64_t admitted_before = stats_.columns_admitted;
  ObsSpan pricing_span(obs_, ObsStage::kPricing);
  seed_columns(input);

  OptimizerResult r;
  switch (cfg_.objective) {
    case Objective::kMaxThroughput:
      r = solve_max_throughput(input, s);
      break;
    case Objective::kMaxMin:
      r = solve_max_min(input, s);
      break;
    case Objective::kProportionalFair:
      r = solve_alpha_fair(input, s, 1.0, cfg_.fw_iterations,
                           cfg_.tolerance);
      break;
    case Objective::kAlphaFair:
      r = solve_alpha_fair(input, s, cfg_.alpha, cfg_.fw_iterations,
                           cfg_.tolerance);
      break;
  }
  r.columns_used = columns_.count();
  r.pricing_rounds = solve_pricing_rounds_;
  pricing_span.code(stats_.warm_starts > warm_before ? ObsCode::kWarmStart
                                                     : ObsCode::kColdStart);
  pricing_span.payload(static_cast<std::uint64_t>(solve_pricing_rounds_),
                       stats_.columns_admitted - admitted_before);
  return r;
}

}  // namespace meshopt
