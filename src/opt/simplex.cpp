#include "opt/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace meshopt {

namespace {

constexpr double kEps = 1e-9;

[[nodiscard]] Relation flip(Relation r) {
  if (r == Relation::kLe) return Relation::kGe;
  if (r == Relation::kGe) return Relation::kLe;
  return Relation::kEq;
}

}  // namespace

double* LpProblem::add_row(Relation rel, double rhs_value) {
  if (coeffs.rows() == 0) {
    coeffs.clear();
    coeffs.set_cols(num_vars);
  } else if (coeffs.cols() != num_vars) {
    throw std::invalid_argument("LpProblem: num_vars changed after add_row");
  }
  rels.push_back(rel);
  rhs.push_back(rhs_value);
  return coeffs.append_row();
}

void LpProblem::add_constraint(const std::vector<double>& coeffs_row,
                               Relation rel, double rhs_value) {
  if (static_cast<int>(coeffs_row.size()) != num_vars)
    throw std::invalid_argument("LP constraint arity mismatch");
  double* row = add_row(rel, rhs_value);
  std::copy(coeffs_row.begin(), coeffs_row.end(), row);
}

void LpProblem::append_vars(int count) {
  if (count <= 0) return;
  const int old_vars = num_vars;
  num_vars += count;
  objective.resize(static_cast<std::size_t>(num_vars), 0.0);
  if (coeffs.rows() == 0) {
    coeffs.clear();
    coeffs.set_cols(num_vars);
    return;
  }
  DenseMatrix wide(coeffs.rows(), num_vars, 0.0);
  for (int r = 0; r < coeffs.rows(); ++r) {
    const double* src = coeffs.row(r);
    std::copy(src, src + old_vars, wide.row(r));
  }
  coeffs = std::move(wide);
}

/// Build the standard-form tableau: original variables, then slack/surplus
/// columns, then artificial columns; the last tableau column is the RHS.
void LpSolver::load(const LpProblem& p) {
  m_ = p.num_constraints();
  n_orig_ = p.num_vars;

  // Count extra columns: slack for <=, surplus for >=, artificial for
  // >= and =.
  int slack = 0, artificial = 0;
  for (int i = 0; i < m_; ++i) {
    // After sign normalization rhs >= 0; relation may flip.
    const Relation rel = p.rhs[static_cast<std::size_t>(i)] < 0.0
                             ? flip(p.rels[static_cast<std::size_t>(i)])
                             : p.rels[static_cast<std::size_t>(i)];
    if (rel == Relation::kLe) {
      ++slack;
    } else if (rel == Relation::kGe) {
      ++slack;  // surplus
      ++artificial;
    } else {
      ++artificial;
    }
  }
  n_ = n_orig_ + slack + artificial;
  first_artificial_ = n_ - artificial;

  // Pad rows to a 64-byte multiple: the pivot inner loops then run over
  // whole aligned vectors. Padding elements are written to 0 here and
  // provably stay 0 (they only ever see x/pv with x == 0 and
  // x -= f * 0), so running the loops across them changes nothing.
  stride_ = (n_ + 1 + 7) & ~7;
  tab_.resize(m_, stride_, 0.0);
  basis_.assign(static_cast<std::size_t>(m_), -1);
  unit_col_.assign(static_cast<std::size_t>(m_), -1);
  row_sign_.assign(static_cast<std::size_t>(m_), 1.0);

  int next_slack = n_orig_;
  int next_art = first_artificial_;
  for (int i = 0; i < m_; ++i) {
    const double in_rhs = p.rhs[static_cast<std::size_t>(i)];
    const double sign = in_rhs < 0.0 ? -1.0 : 1.0;
    const Relation rel = in_rhs < 0.0 ? flip(p.rels[static_cast<std::size_t>(i)])
                                      : p.rels[static_cast<std::size_t>(i)];
    const double* src = p.coeffs.row(i);
    double* row = tab_.row(i);
    for (int j = 0; j < n_orig_; ++j) row[j] = sign * src[j];
    row[n_] = sign * in_rhs;
    row_sign_[static_cast<std::size_t>(i)] = sign;

    if (rel == Relation::kLe) {
      row[next_slack] = 1.0;
      basis_[static_cast<std::size_t>(i)] = next_slack++;
    } else if (rel == Relation::kGe) {
      row[next_slack++] = -1.0;
      row[next_art] = 1.0;
      basis_[static_cast<std::size_t>(i)] = next_art++;
    } else {
      row[next_art] = 1.0;
      basis_[static_cast<std::size_t>(i)] = next_art++;
    }
    // The initially-basic column starts as a unit vector, so after any
    // pivot sequence its tableau column is the corresponding column of
    // the basis inverse — the handle duals() and
    // resolve_with_added_columns() read B^-1 through.
    unit_col_[static_cast<std::size_t>(i)] = basis_[static_cast<std::size_t>(i)];
  }
}

/// Phase 1: minimize the sum of artificial variables.
bool LpSolver::phase1() {
  if (first_artificial_ == n_) return true;  // no artificials
  // Objective: maximize -(sum of artificials).
  obj_.assign(static_cast<std::size_t>(stride_), 0.0);
  for (int j = first_artificial_; j < n_; ++j)
    obj_[static_cast<std::size_t>(j)] = -1.0;
  make_reduced_costs_consistent();
  if (!optimize(n_)) return false;  // unbounded phase 1: cannot happen
  // The z-row RHS holds -z; artificials left positive mean z < 0.
  if (obj_[static_cast<std::size_t>(n_)] > 1e-7) return false;  // infeasible
  drive_out_artificials();
  return true;
}

/// Phase 2 with the real objective (maximize). Artificial columns keep a
/// zero objective coefficient and are excluded from pricing, which bars
/// them from re-entering the basis — numerically identical to the
/// historical -inf sentinel, minus the per-element isinf checks.
LpStatus LpSolver::phase2(const std::vector<double>& c) {
  obj_.assign(static_cast<std::size_t>(stride_), 0.0);
  for (int j = 0; j < n_orig_ && j < static_cast<int>(c.size()); ++j)
    obj_[static_cast<std::size_t>(j)] = c[static_cast<std::size_t>(j)];
  make_reduced_costs_consistent();
  return optimize(first_artificial_) ? LpStatus::kOptimal
                                     : LpStatus::kUnbounded;
}

/// Express the objective row in terms of non-basic variables by
/// eliminating the basic columns.
void LpSolver::make_reduced_costs_consistent() {
  for (int i = 0; i < m_; ++i) {
    const int b = basis_[static_cast<std::size_t>(i)];
    const double coef = obj_[static_cast<std::size_t>(b)];
    if (std::abs(coef) < kEps) continue;
    const double* row = tab_.row(i);
    double* obj = obj_.data();
    for (int j = 0; j < stride_; ++j) obj[j] -= coef * row[j];
  }
}

void LpSolver::pivot(int row, int col) {
  double* prow = tab_.row(row);
  const double pv = prow[col];
  for (int j = 0; j < stride_; ++j) prow[j] /= pv;
  for (int i = 0; i < m_; ++i) {
    if (i == row) continue;
    double* r = tab_.row(i);
    const double f = r[col];
    if (std::abs(f) < kEps) continue;
    for (int j = 0; j < stride_; ++j) r[j] -= f * prow[j];
  }
  const double f = obj_[static_cast<std::size_t>(col)];
  if (std::abs(f) > kEps) {
    double* obj = obj_.data();
    for (int j = 0; j < stride_; ++j) obj[j] -= f * prow[j];
  }
  basis_[static_cast<std::size_t>(row)] = col;
}

/// Pivot loop. `price_limit` bounds the entering-column scan: n_ in
/// phase 1 (every column is a candidate), first_artificial_ in phase 2
/// (artificials may not re-enter). Returns false on unboundedness.
bool LpSolver::optimize(int price_limit) {
  const int max_iters = 200 * (m_ + n_ + 10);
  int iters = 0;
  bool bland = false;
  const double* obj = obj_.data();
  while (true) {
    if (++iters > max_iters) {
      bland = true;  // enforce termination
    }
    // Entering column: positive reduced cost (maximization). Dantzig
    // pricing normally; Bland's smallest-index rule once the iteration
    // budget is exhausted (anti-cycling).
    int col = -1;
    double best = kEps;
    if (bland) {
      for (int j = 0; j < price_limit; ++j) {
        if (obj[j] > kEps) {
          col = j;
          break;
        }
      }
    } else {
      for (int j = 0; j < price_limit; ++j) {
        if (obj[j] > best) {
          best = obj[j];
          col = j;
        }
      }
    }
    if (col < 0) return true;  // optimal

    // Ratio test: smallest rhs/a over rows with a > 0; ties broken toward
    // the smallest basic index (lexicographic guard against stalling).
    int row = -1;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (int i = 0; i < m_; ++i) {
      const double* r = tab_.row(i);
      const double a = r[col];
      if (a > kEps) {
        const double ratio = r[n_] / a;
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps && row >= 0 &&
             basis_[static_cast<std::size_t>(i)] <
                 basis_[static_cast<std::size_t>(row)])) {
          best_ratio = ratio;
          row = i;
        }
      }
    }
    if (row < 0) return false;  // unbounded
    pivot(row, col);
  }
}

/// After phase 1, pivot any artificial variables out of the basis (or
/// detect redundant rows and leave the zero-valued artificial basic).
void LpSolver::drive_out_artificials() {
  for (int i = 0; i < m_; ++i) {
    if (basis_[static_cast<std::size_t>(i)] < first_artificial_) continue;
    // Find any non-artificial column with a nonzero entry to pivot in.
    const double* r = tab_.row(i);
    int col = -1;
    for (int j = 0; j < first_artificial_; ++j) {
      if (std::abs(r[j]) > 1e-7) {
        col = j;
        break;
      }
    }
    if (col >= 0) pivot(i, col);
    // Otherwise the row is redundant; the artificial stays basic at 0.
  }
}

LpSolution LpSolver::finish(const LpProblem& problem, LpStatus st) {
  LpSolution sol;
  sol.status = st;
  if (st == LpStatus::kOptimal) {
    sol.x.assign(static_cast<std::size_t>(n_orig_), 0.0);
    for (int i = 0; i < m_; ++i) {
      const int b = basis_[static_cast<std::size_t>(i)];
      if (b >= 0 && b < n_orig_)
        sol.x[static_cast<std::size_t>(b)] = tab_(i, n_);
    }
    sol.objective = 0.0;
    for (int j = 0;
         j < problem.num_vars && j < static_cast<int>(problem.objective.size());
         ++j) {
      sol.objective += problem.objective[static_cast<std::size_t>(j)] *
                       sol.x[static_cast<std::size_t>(j)];
    }
  }
  return sol;
}

LpSolution LpSolver::solve(const LpProblem& problem) {
  basis_cached_ = false;
  LpSolution sol;
  if (problem.num_vars <= 0) {
    sol.status = LpStatus::kOptimal;
    sol.objective = 0.0;
    return sol;
  }
  if (problem.coeffs.rows() > 0 && problem.coeffs.cols() != problem.num_vars)
    throw std::invalid_argument("LP constraint arity mismatch");
  // coeffs/rels/rhs are independent public members; a hand-built problem
  // can desynchronize them, and load() indexes rels/rhs by coeffs row.
  if (static_cast<int>(problem.rels.size()) != problem.num_constraints() ||
      static_cast<int>(problem.rhs.size()) != problem.num_constraints())
    throw std::invalid_argument("LP rels/rhs size != constraint rows");
  load(problem);
  if (!phase1()) {
    sol.status = LpStatus::kInfeasible;
    return sol;
  }
  const LpStatus st = phase2(problem.objective);
  if (st == LpStatus::kOptimal) {
    // Remember the optimal basis (plus a cheap constraint fingerprint)
    // for resolve_objective() warm restarts.
    basis_cached_ = true;
    cached_rels_ = problem.rels;
    cached_rhs_ = problem.rhs;
  }
  return finish(problem, st);
}

LpSolution LpSolver::resolve_objective(const LpProblem& problem) {
  if (!basis_cached_ || problem.num_vars != n_orig_ ||
      problem.num_constraints() != m_ || problem.rels != cached_rels_ ||
      problem.rhs != cached_rhs_) {
    return solve(problem);  // shape changed (or nothing cached): cold path
  }
  // The tableau rows encode the current basis independently of the
  // objective; rebuilding the reduced-cost row against the new objective
  // and re-running phase 2 restarts from the previous optimum.
  const LpStatus st = phase2(problem.objective);
  if (st != LpStatus::kOptimal) basis_cached_ = false;
  return finish(problem, st);
}

void LpSolver::duals(std::vector<double>& out) const {
  out.assign(static_cast<std::size_t>(m_), 0.0);
  // After phase 2 the reduced cost of row i's initially-basic unit column
  // is -lambda_i in the sign-normalized problem; undo the rhs flip to
  // report duals in the caller's row orientation.
  for (int i = 0; i < m_; ++i) {
    out[static_cast<std::size_t>(i)] =
        -obj_[static_cast<std::size_t>(unit_col_[static_cast<std::size_t>(i)])] *
        row_sign_[static_cast<std::size_t>(i)];
  }
}

LpSolution LpSolver::resolve_with_added_columns(const LpProblem& problem) {
  const int added = problem.num_vars - n_orig_;
  if (!basis_cached_ || added <= 0 || problem.num_constraints() != m_ ||
      problem.rels != cached_rels_ || problem.rhs != cached_rhs_) {
    return solve(problem);  // not a pure column append: cold path
  }
  // Transform each appended column a_j into basis coordinates, t_j =
  // B^-1 a_j, using the initially-basic unit columns of the current
  // tableau as B^-1 (one m x m multiply per column — no refactorization),
  // then splice the transformed columns in after the old caller variables
  // and re-run phase 2 from the cached basis.
  const int new_orig = problem.num_vars;
  const int new_n = n_ + added;
  const int new_stride = (new_n + 1 + 7) & ~7;
  DenseMatrix tab2(m_, new_stride, 0.0);
  for (int i = 0; i < m_; ++i) {
    const double* src = tab_.row(i);
    double* dst = tab2.row(i);
    std::copy(src, src + n_orig_, dst);
    for (int j = 0; j < added; ++j) {
      double acc = 0.0;
      for (int r = 0; r < m_; ++r) {
        acc += src[unit_col_[static_cast<std::size_t>(r)]] *
               row_sign_[static_cast<std::size_t>(r)] *
               problem.coeffs(r, n_orig_ + j);
      }
      dst[n_orig_ + j] = acc;
    }
    // Slack/artificial block and the RHS shift right by `added`.
    std::copy(src + n_orig_, src + n_ + 1, dst + new_orig);
  }
  tab_ = std::move(tab2);
  stride_ = new_stride;
  for (int& b : basis_)
    if (b >= n_orig_) b += added;
  for (int& u : unit_col_)
    if (u >= n_orig_) u += added;
  n_orig_ = new_orig;
  n_ = new_n;
  first_artificial_ += added;

  const LpStatus st = phase2(problem.objective);
  if (st != LpStatus::kOptimal) basis_cached_ = false;
  return finish(problem, st);
}

LpSolution LpSolver::solve_with_basis(const LpProblem& problem,
                                      const std::vector<int>& hint) {
  basis_cached_ = false;
  if (problem.num_vars <= 0 ||
      static_cast<int>(hint.size()) != problem.num_constraints())
    return solve(problem);
  if (problem.coeffs.rows() > 0 && problem.coeffs.cols() != problem.num_vars)
    throw std::invalid_argument("LP constraint arity mismatch");
  if (static_cast<int>(problem.rels.size()) != problem.num_constraints() ||
      static_cast<int>(problem.rhs.size()) != problem.num_constraints())
    throw std::invalid_argument("LP rels/rhs size != constraint rows");
  load(problem);
  // Validate the hint against the fresh tableau layout: every entry must
  // name a distinct existing column.
  std::vector<char> seen(static_cast<std::size_t>(n_), 0);
  for (int b : hint) {
    if (b < 0 || b >= n_ || seen[static_cast<std::size_t>(b)])
      return solve(problem);
    seen[static_cast<std::size_t>(b)] = 1;
  }
  // pivot() folds each elimination into the objective row too; give it a
  // zeroed row of the current stride (phase 2 rebuilds the real one).
  obj_.assign(static_cast<std::size_t>(stride_), 0.0);
  // Crash the hinted basis in row by row. Once column c is pivoted into
  // row i it stays a unit column through the remaining pivots (each later
  // pivot column has a zero entry in every previously pivoted row), so
  // sequential pivoting reconstructs the basis exactly. A vanishing pivot
  // means the basis is singular under the new coefficients — fall back.
  for (int i = 0; i < m_; ++i) {
    const int col = hint[static_cast<std::size_t>(i)];
    if (basis_[static_cast<std::size_t>(i)] == col) continue;
    if (std::abs(tab_(i, col)) <= kEps) return solve(problem);
    pivot(i, col);
  }
  // The restored basis must be primal-feasible for the (possibly drifted)
  // rhs, and any artificial left basic must sit at ~0; otherwise the warm
  // start would skip a phase 1 it actually needs.
  for (int i = 0; i < m_; ++i) {
    const double v = tab_(i, n_);
    if (v < 0.0) {
      if (v < -kEps) return solve(problem);
      tab_(i, n_) = 0.0;  // clamp fp dust so ratio tests see a clean 0
    }
    if (basis_[static_cast<std::size_t>(i)] >= first_artificial_ && v > 1e-7)
      return solve(problem);
  }
  const LpStatus st = phase2(problem.objective);
  if (st == LpStatus::kOptimal) {
    basis_cached_ = true;
    cached_rels_ = problem.rels;
    cached_rhs_ = problem.rhs;
  }
  return finish(problem, st);
}

LpSolution solve_lp(const LpProblem& problem) {
  LpSolver solver;
  return solver.solve(problem);
}

}  // namespace meshopt
