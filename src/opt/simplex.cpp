#include "opt/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace meshopt {

namespace {

constexpr double kEps = 1e-9;

/// Dense simplex tableau operating on the standard-form problem.
class Tableau {
 public:
  Tableau(const LpProblem& p) {
    m_ = static_cast<int>(p.constraints.size());
    n_orig_ = p.num_vars;

    // Count extra columns: slack for <=, surplus for >=, artificial for
    // >= and =.
    int slack = 0, artificial = 0;
    for (const auto& c : p.constraints) {
      // After sign normalization rhs >= 0; relation may flip.
      const Relation rel = c.rhs < 0.0 ? flip(c.rel) : c.rel;
      if (rel == Relation::kLe) {
        ++slack;
      } else if (rel == Relation::kGe) {
        ++slack;  // surplus
        ++artificial;
      } else {
        ++artificial;
      }
    }
    n_ = n_orig_ + slack + artificial;
    first_artificial_ = n_ - artificial;

    rows_.assign(static_cast<std::size_t>(m_),
                 std::vector<double>(static_cast<std::size_t>(n_) + 1, 0.0));
    basis_.assign(static_cast<std::size_t>(m_), -1);

    int next_slack = n_orig_;
    int next_art = first_artificial_;
    for (int i = 0; i < m_; ++i) {
      const auto& c = p.constraints[static_cast<std::size_t>(i)];
      if (static_cast<int>(c.coeffs.size()) != n_orig_)
        throw std::invalid_argument("LP constraint arity mismatch");
      const double sign = c.rhs < 0.0 ? -1.0 : 1.0;
      const Relation rel = c.rhs < 0.0 ? flip(c.rel) : c.rel;
      auto& row = rows_[static_cast<std::size_t>(i)];
      for (int j = 0; j < n_orig_; ++j)
        row[static_cast<std::size_t>(j)] = sign * c.coeffs[static_cast<std::size_t>(j)];
      row[static_cast<std::size_t>(n_)] = sign * c.rhs;

      if (rel == Relation::kLe) {
        row[static_cast<std::size_t>(next_slack)] = 1.0;
        basis_[static_cast<std::size_t>(i)] = next_slack++;
      } else if (rel == Relation::kGe) {
        row[static_cast<std::size_t>(next_slack++)] = -1.0;
        row[static_cast<std::size_t>(next_art)] = 1.0;
        basis_[static_cast<std::size_t>(i)] = next_art++;
      } else {
        row[static_cast<std::size_t>(next_art)] = 1.0;
        basis_[static_cast<std::size_t>(i)] = next_art++;
      }
    }
  }

  /// Phase 1: minimize the sum of artificial variables.
  [[nodiscard]] bool phase1() {
    if (first_artificial_ == n_) return true;  // no artificials
    // Objective: maximize -(sum of artificials).
    obj_.assign(static_cast<std::size_t>(n_) + 1, 0.0);
    for (int j = first_artificial_; j < n_; ++j)
      obj_[static_cast<std::size_t>(j)] = -1.0;
    make_reduced_costs_consistent();
    if (!optimize()) return false;  // unbounded phase 1: cannot happen
    // The z-row RHS holds -z; artificials left positive mean z < 0.
    if (obj_[static_cast<std::size_t>(n_)] > 1e-7) return false;  // infeasible
    drive_out_artificials();
    return true;
  }

  /// Phase 2 with the real objective (maximize).
  [[nodiscard]] LpStatus phase2(const std::vector<double>& c) {
    obj_.assign(static_cast<std::size_t>(n_) + 1, 0.0);
    for (int j = 0; j < n_orig_ && j < static_cast<int>(c.size()); ++j)
      obj_[static_cast<std::size_t>(j)] = c[static_cast<std::size_t>(j)];
    // Forbid re-entry of artificial variables.
    for (int j = first_artificial_; j < n_; ++j)
      obj_[static_cast<std::size_t>(j)] =
          -std::numeric_limits<double>::infinity();
    make_reduced_costs_consistent();
    return optimize() ? LpStatus::kOptimal : LpStatus::kUnbounded;
  }

  [[nodiscard]] std::vector<double> solution() const {
    std::vector<double> x(static_cast<std::size_t>(n_orig_), 0.0);
    for (int i = 0; i < m_; ++i) {
      const int b = basis_[static_cast<std::size_t>(i)];
      if (b >= 0 && b < n_orig_)
        x[static_cast<std::size_t>(b)] =
            rows_[static_cast<std::size_t>(i)][static_cast<std::size_t>(n_)];
    }
    return x;
  }

  [[nodiscard]] double objective_value() const {
    return obj_[static_cast<std::size_t>(n_)];
  }

 private:
  static Relation flip(Relation r) {
    if (r == Relation::kLe) return Relation::kGe;
    if (r == Relation::kGe) return Relation::kLe;
    return Relation::kEq;
  }

  /// Express the objective row in terms of non-basic variables by
  /// eliminating the basic columns.
  void make_reduced_costs_consistent() {
    for (int i = 0; i < m_; ++i) {
      const int b = basis_[static_cast<std::size_t>(i)];
      const double coef = obj_[static_cast<std::size_t>(b)];
      if (std::abs(coef) < kEps || std::isinf(coef)) {
        if (std::isinf(coef)) {
          // An artificial still in the basis at value ~0: treat its
          // objective coefficient as 0 for elimination purposes.
          obj_[static_cast<std::size_t>(b)] = 0.0;
        }
        continue;
      }
      const auto& row = rows_[static_cast<std::size_t>(i)];
      for (int j = 0; j <= n_; ++j)
        obj_[static_cast<std::size_t>(j)] -= coef * row[static_cast<std::size_t>(j)];
    }
  }

  void pivot(int row, int col) {
    auto& prow = rows_[static_cast<std::size_t>(row)];
    const double pv = prow[static_cast<std::size_t>(col)];
    for (double& v : prow) v /= pv;
    for (int i = 0; i < m_; ++i) {
      if (i == row) continue;
      auto& r = rows_[static_cast<std::size_t>(i)];
      const double f = r[static_cast<std::size_t>(col)];
      if (std::abs(f) < kEps) continue;
      for (int j = 0; j <= n_; ++j)
        r[static_cast<std::size_t>(j)] -= f * prow[static_cast<std::size_t>(j)];
    }
    const double f = obj_[static_cast<std::size_t>(col)];
    if (std::abs(f) > kEps && !std::isinf(f)) {
      for (int j = 0; j <= n_; ++j)
        obj_[static_cast<std::size_t>(j)] -= f * prow[static_cast<std::size_t>(j)];
    }
    basis_[static_cast<std::size_t>(row)] = col;
  }

  /// Returns false on unboundedness.
  [[nodiscard]] bool optimize() {
    const int max_iters = 200 * (m_ + n_ + 10);
    int iters = 0;
    bool bland = false;
    while (true) {
      if (++iters > max_iters) {
        bland = true;  // enforce termination
      }
      // Entering column: positive reduced cost (maximization).
      int col = -1;
      double best = kEps;
      for (int j = 0; j < n_; ++j) {
        const double rc = obj_[static_cast<std::size_t>(j)];
        if (std::isinf(rc)) continue;
        if (bland) {
          if (rc > kEps) {
            col = j;
            break;
          }
        } else if (rc > best) {
          best = rc;
          col = j;
        }
      }
      if (col < 0) return true;  // optimal

      // Ratio test.
      int row = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (int i = 0; i < m_; ++i) {
        const double a =
            rows_[static_cast<std::size_t>(i)][static_cast<std::size_t>(col)];
        if (a > kEps) {
          const double ratio =
              rows_[static_cast<std::size_t>(i)][static_cast<std::size_t>(n_)] / a;
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps && row >= 0 &&
               basis_[static_cast<std::size_t>(i)] <
                   basis_[static_cast<std::size_t>(row)])) {
            best_ratio = ratio;
            row = i;
          }
        }
      }
      if (row < 0) return false;  // unbounded
      pivot(row, col);
    }
  }

  /// After phase 1, pivot any artificial variables out of the basis (or
  /// detect redundant rows and leave the zero-valued artificial basic).
  void drive_out_artificials() {
    for (int i = 0; i < m_; ++i) {
      if (basis_[static_cast<std::size_t>(i)] < first_artificial_) continue;
      // Find any non-artificial column with a nonzero entry to pivot in.
      int col = -1;
      for (int j = 0; j < first_artificial_; ++j) {
        if (std::abs(rows_[static_cast<std::size_t>(i)]
                          [static_cast<std::size_t>(j)]) > 1e-7) {
          col = j;
          break;
        }
      }
      if (col >= 0) pivot(i, col);
      // Otherwise the row is redundant; the artificial stays basic at 0.
    }
  }

  int m_ = 0;
  int n_orig_ = 0;
  int n_ = 0;
  int first_artificial_ = 0;
  std::vector<std::vector<double>> rows_;
  std::vector<double> obj_;
  std::vector<int> basis_;
};

}  // namespace

LpSolution solve_lp(const LpProblem& problem) {
  LpSolution sol;
  if (problem.num_vars <= 0) {
    sol.status = LpStatus::kOptimal;
    sol.objective = 0.0;
    return sol;
  }
  Tableau t(problem);
  if (!t.phase1()) {
    sol.status = LpStatus::kInfeasible;
    return sol;
  }
  const LpStatus st = t.phase2(problem.objective);
  sol.status = st;
  if (st == LpStatus::kOptimal) {
    sol.x = t.solution();
    sol.objective = 0.0;
    for (int j = 0;
         j < problem.num_vars && j < static_cast<int>(problem.objective.size());
         ++j) {
      sol.objective += problem.objective[static_cast<std::size_t>(j)] *
                       sol.x[static_cast<std::size_t>(j)];
    }
  }
  return sol;
}

}  // namespace meshopt
