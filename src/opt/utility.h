#pragma once
// The alpha-fair utility family used by the paper's optimizer:
//
//   U(y) = y^(1-alpha) / (1-alpha)   (alpha != 1)
//   U(y) = log(y)                    (alpha == 1)
//
// alpha = 0 maximizes aggregate throughput, alpha = 1 is proportional
// fairness, alpha -> infinity approaches max-min fairness.

#include <cmath>

namespace meshopt {

class AlphaFairUtility {
 public:
  explicit AlphaFairUtility(double alpha, double floor = 1e-9)
      : alpha_(alpha), floor_(floor) {}

  [[nodiscard]] double alpha() const { return alpha_; }

  [[nodiscard]] double value(double y) const {
    y = y > floor_ ? y : floor_;
    if (alpha_ == 1.0) return std::log(y);
    return std::pow(y, 1.0 - alpha_) / (1.0 - alpha_);
  }

  [[nodiscard]] double gradient(double y) const {
    y = y > floor_ ? y : floor_;
    return std::pow(y, -alpha_);
  }

 private:
  double alpha_;
  double floor_;
};

}  // namespace meshopt
