#pragma once
// The alpha-fair utility family used by the paper's optimizer:
//
//   U(y) = y^(1-alpha) / (1-alpha)   (alpha != 1)
//   U(y) = log(y)                    (alpha == 1)
//
// alpha = 0 maximizes aggregate throughput, alpha = 1 is proportional
// fairness, alpha -> infinity approaches max-min fairness.

#include <cmath>

namespace meshopt {

/// Strictly concave alpha-fair utility U(y) over a flow rate y.
///
/// The rate argument is whatever scale the caller optimizes in — the
/// network optimizer feeds rates normalized to ~[0, 1] (bits/s divided by
/// the largest link capacity) for conditioning; utility values are then
/// dimensionless scores, comparable only within one optimization run.
class AlphaFairUtility {
 public:
  /// @param alpha fairness exponent, >= 0 (0 = throughput, 1 =
  ///        proportional fairness, larger = closer to max-min).
  /// @param floor rates below this are clamped before evaluation so
  ///        U and U' stay finite near 0 (log/pow blow up there).
  explicit AlphaFairUtility(double alpha, double floor = 1e-9)
      : alpha_(alpha), floor_(floor) {}

  [[nodiscard]] double alpha() const { return alpha_; }

  /// U(max(y, floor)).
  [[nodiscard]] double value(double y) const {
    y = y > floor_ ? y : floor_;
    if (alpha_ == 1.0) return std::log(y);
    return std::pow(y, 1.0 - alpha_) / (1.0 - alpha_);
  }

  /// U'(max(y, floor)) = y^-alpha; always positive and decreasing, which
  /// is what the Frank–Wolfe oracle relies on.
  [[nodiscard]] double gradient(double y) const {
    y = y > floor_ ? y : floor_;
    return std::pow(y, -alpha_);
  }

 private:
  double alpha_;
  double floor_;
};

}  // namespace meshopt
