#pragma once
// Column-generation plan tier: the PlanTier::kFast path.
//
// The exact tier materializes every maximal independent set of the
// conflict graph as an extreme-point column before solving (K columns; at
// MIS/80-class topologies K ~ 5.5k and the LP/Frank–Wolfe plan stage
// dominates a replayed round by 2-3 orders of magnitude over the cached
// model stage). Column generation solves the SAME master problem over a
// small working set of MIS columns and prices new columns in on demand:
// the pricing oracle is an exact max-weight independent set search over
// the conflict graph, weighted by the master's dual prices. Because the
// oracle is exact, termination (no column with positive reduced cost)
// certifies optimality over the FULL rate region without ever enumerating
// K columns — the structure Leith et al. ("Max-min Fairness in 802.11
// Mesh Networks", PAPERS.md) exploit to sidestep extreme-point
// enumeration.
//
// Determinism contract (ARCHITECTURE.md, "Plan tiers"):
//   * kExact — today's path, bit-identical across thread counts, replay
//     vs live, cached vs cold. Unchanged by this module.
//   * kFast — this module. Pivot order differs from the exact tier, so
//     results are NOT bit-identical to kExact; instead the objective is
//     gap-bounded: relative gap <= 1e-6 vs the exact tier, CI-pinned by
//     tests/test_plan_tiers.cpp. The fast tier is still a deterministic
//     function of its inputs plus its carried warm state (the working
//     column set and basis reused across rounds), so repeated runs and
//     different fleet thread counts produce bit-identical plans for a
//     fixed replay configuration.

#include <cstdint>
#include <functional>
#include <vector>

#include "model/conflict_graph.h"
#include "opt/network_optimizer.h"
#include "opt/simplex.h"
#include "util/dense_matrix.h"

namespace meshopt {

class TraceRecorder;

/// Which planning path computes a RatePlan (see ARCHITECTURE.md, "Plan
/// tiers"). Selected via PlanConfig::tier; surfaced in RatePlan::tier.
enum class PlanTier : std::uint8_t {
  kExact,  ///< full-K extreme-point LP/FW path; bit-identical reference
  kFast,   ///< column generation; objective gap-bounded vs kExact
};

/// Tuning knobs for the column-generation loop. The defaults are the
/// CI-pinned configuration; the differential harness asserts the <= 1e-6
/// relative objective gap under exactly these values.
struct ColumnGenConfig {
  /// A column is admitted only when its reduced cost exceeds this (in the
  /// master's normalized capacity units). Must stay well above the
  /// simplex's internal 1e-9 epsilon-cutoff semantics would admit noise
  /// columns and stall termination.
  double pricing_tol = 1e-7;
  /// Safety valve on pricing rounds per master solve; the loop normally
  /// terminates by proof of optimality long before this.
  int max_pricing_rounds = 256;
  /// Branch-and-bound node budget per pricing-oracle call. Exceeding it
  /// truncates the search (stats().oracle_truncated) and the admitted
  /// column may be suboptimal — the gap guarantee then degrades to
  /// best-effort. Testbed-scale graphs stay orders of magnitude below.
  std::uint64_t mwis_node_cap = std::uint64_t{1} << 22;
};

/// Cumulative counters across a ColumnGenOptimizer's lifetime (warm state
/// spans solves, so the interesting ratios — columns admitted per solve,
/// pricing rounds per solve — are cross-round).
struct ColumnGenStats {
  std::uint64_t solves = 0;             ///< solve() calls
  std::uint64_t master_solves = 0;      ///< restricted-master LP solves
  std::uint64_t pricing_rounds = 0;     ///< pricing-oracle invocations
  std::uint64_t columns_seeded = 0;     ///< greedy seed columns
  std::uint64_t columns_admitted = 0;   ///< columns priced in by the oracle
  std::uint64_t warm_starts = 0;        ///< masters started from a carried basis
  std::uint64_t oracle_nodes = 0;       ///< MWIS branch-and-bound nodes
  std::uint64_t oracle_truncated = 0;   ///< oracle calls that hit mwis_node_cap
};

/// One pricing-oracle admission, reported through the on_admit test hook.
struct ColumnAdmission {
  int pricing_round = 0;     ///< 1-based pricing round within the solve() call
  double reduced_cost = 0.0; ///< normalized units; > pricing_tol at admission
  std::vector<int> links;    ///< member links of the admitted column, ascending
};

/// Inputs to one fast-tier optimization round. The conflict graph replaces
/// the exact tier's K x L extreme-point matrix: columns are generated from
/// it on demand instead of being materialized up front.
struct ColumnGenInput {
  /// L x S routing matrix: routing(l, s) = 1 if flow s crosses link l.
  DenseMatrix routing;
  /// Conflict graph over the L links; NOT owned, must outlive the solve.
  const ConflictGraph* conflicts = nullptr;
  /// Per-link capacities in bits/s, length L, aligned with the graph.
  std::vector<double> capacities;
  /// When > 0, normalize capacities by this instead of the input's own
  /// max capacity — the decomposition tier passes the global scale so
  /// per-component masters share the monolithic solve's scaled units
  /// (see OptimizerInput::scale_override). 0 (default) self-scales.
  double scale_override = 0.0;
};

/// Exact max-weight independent set over a conflict graph: branch and
/// bound on the packed bitset adjacency with a greedy weight-sum bound.
/// Vertices with weight <= 0 never help and are excluded up front; the
/// returned set (packed into `bits`, row_words() words) is therefore not
/// necessarily maximal — extend_to_maximal_independent_set() for that.
/// Deterministic: identical inputs give identical bits. Returns the set's
/// weight. `node_cap` bounds the search; on truncation `*truncated` is set
/// and the best set found so far is returned.
double max_weight_independent_set(const ConflictGraph& graph,
                                  const std::vector<double>& weights,
                                  std::vector<std::uint64_t>& bits,
                                  std::uint64_t node_cap = std::uint64_t{1}
                                                           << 22,
                                  std::uint64_t* nodes_visited = nullptr,
                                  bool* truncated = nullptr);

/// Grow `bits` to a maximal independent set by admitting every compatible
/// vertex in ascending index order (deterministic; mirrors the canonical
/// orientation of the exact tier's enumeration). @pre bits is independent.
void extend_to_maximal_independent_set(const ConflictGraph& graph,
                                       std::vector<std::uint64_t>& bits);

/// Reusable column-generation solver for the paper's utility maximization
/// — the fast-tier twin of NetworkOptimizer, same objectives, same result
/// semantics. Persistent warm state carries across solve() calls: the
/// working column set survives verbatim and the final optimal basis is
/// re-used when the next solve's first master has the same shape, so a
/// planner replaying a drifting-capacity trace pays the pricing oracle
/// mostly in round one. reset() drops all warm state (a topology change
/// must: columns are only meaningful against their conflict graph — the
/// planner keys instances by topology entry, see core/planner.h).
///
/// Not thread-safe: one instance per thread.
class ColumnGenOptimizer {
 public:
  explicit ColumnGenOptimizer(OptimizerConfig config = {},
                              ColumnGenConfig cg = {})
      : cfg_(config), cg_(cg) {}

  [[nodiscard]] const OptimizerConfig& config() const { return cfg_; }
  OptimizerConfig& config() { return cfg_; }

  /// Solve one round. Same contract as NetworkOptimizer::solve, with the
  /// rate region given implicitly by (conflicts, capacities):
  /// result.alpha_weights has one entry per WORKING-SET column (admission
  /// order; result.columns_used of them), not per extreme point.
  /// @pre input.conflicts != nullptr, conflicts->size() == routing.rows()
  ///      == capacities.size(); mismatches throw std::invalid_argument.
  ///      An empty dimension returns ok == false.
  [[nodiscard]] OptimizerResult solve(const ColumnGenInput& input);

  /// Drop all warm state: working columns, carried basis, stats keep
  /// accumulating. Required whenever the conflict graph changes identity
  /// (a different topology, not just drifted capacities).
  void reset();

  /// Split-phase Frank–Wolfe support for the decomposition tier's JOINT
  /// FW loop (opt/decompose.h): the global iterate and line search live
  /// in the caller, while each component's linear oracle is priced here.
  /// begin_fw_round validates the input, seeds/keeps the working set,
  /// runs the internal max-min starting point, and builds the FW master;
  /// the returned result is that starting point (ok == false on
  /// degenerate input — skip the round). Call fw_oracle once per FW
  /// iteration with the gradient over this input's flows (`first` on the
  /// iteration that should try the carried warm basis), then
  /// end_fw_round() to save the final basis for the next round. A plain
  /// solve() may be interleaved only after end_fw_round.
  [[nodiscard]] OptimizerResult begin_fw_round(const ColumnGenInput& input);
  [[nodiscard]] LpSolution fw_oracle(const ColumnGenInput& input,
                                     const std::vector<double>& grad,
                                     bool first);
  void end_fw_round();

  [[nodiscard]] const MisRowSet& columns() const { return columns_; }
  [[nodiscard]] const ColumnGenStats& stats() const { return stats_; }

  /// Test hook: observes every oracle admission (property/fuzz tests
  /// assert independence, maximality, positive reduced cost, and
  /// no-duplicate-per-solve through this). Leave empty in production.
  std::function<void(const ColumnAdmission&)> on_admit;

  /// Attach a trace recorder (borrowed; nullptr detaches). Each solve()
  /// then emits one kPricing span under the caller's ambient context:
  /// warm/cold basis as the code, pricing rounds and columns admitted as
  /// the payload. The planner forwards its recorder to the warm state it
  /// owns (core/planner.h), so fast-tier rounds report automatically.
  void set_observer(TraceRecorder* obs) { obs_ = obs; }

 private:
  struct Shape {
    int links = 0;
    int flows = 0;
    double scale = 1.0;  ///< capacities normalized by this for conditioning
  };
  enum class Start : std::uint8_t { kCold, kWarmBasis, kResolveObjective };

  void seed_columns(const ColumnGenInput& in);
  [[nodiscard]] bool has_column(const std::vector<std::uint64_t>& bits) const;
  void build_master(const ColumnGenInput& in, const Shape& s, int extra_vars);
  int append_column_to_master(const std::vector<std::uint64_t>& bits,
                              const ColumnGenInput& in, const Shape& s);
  [[nodiscard]] bool price_one(const ColumnGenInput& in, const Shape& s);
  [[nodiscard]] LpSolution cg_solve(const ColumnGenInput& in, const Shape& s,
                                    Start start);
  void save_basis();
  [[nodiscard]] OptimizerResult unpack(const LpSolution& sol, const Shape& s);

  [[nodiscard]] OptimizerResult solve_max_throughput(const ColumnGenInput& in,
                                                     const Shape& s);
  [[nodiscard]] OptimizerResult solve_max_min(const ColumnGenInput& in,
                                              const Shape& s);
  [[nodiscard]] OptimizerResult solve_alpha_fair(const ColumnGenInput& in,
                                                 const Shape& s, double alpha,
                                                 int iterations,
                                                 double tolerance);

  OptimizerConfig cfg_;
  ColumnGenConfig cg_;
  LpSolver lp_;           ///< shared simplex workspace across all solves
  LpProblem master_;      ///< restricted master, rebuilt per phase
  int convexity_row_ = 0; ///< row index of the sum(alpha) == 1 constraint

  MisRowSet columns_;       ///< working set, admission order (warm state)
  std::vector<int> warm_basis_;  ///< optimal basis of the last final master
  int warm_vars_ = -1;           ///< shape guard for warm_basis_
  int warm_rows_ = -1;

  ColumnGenStats stats_;
  TraceRecorder* obs_ = nullptr;  ///< borrowed; see set_observer()
  int solve_pricing_rounds_ = 0;  ///< pricing rounds in the current solve()
  Shape fw_shape_;        ///< shape of the split-phase FW round in flight
  bool fw_last_ok_ = false;  ///< last fw_oracle solved to optimality

  // Per-solve scratch, reused across calls.
  std::vector<double> duals_;
  std::vector<double> weights_;
  std::vector<std::uint64_t> cand_bits_;
};

}  // namespace meshopt
