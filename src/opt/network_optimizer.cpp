#include "opt/network_optimizer.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace meshopt {

namespace {

struct ProblemShape {
  int links = 0;
  int flows = 0;
  int points = 0;
  double scale = 1.0;  ///< capacities normalized by this for conditioning
};

ProblemShape shape_of(const OptimizerInput& in) {
  ProblemShape s;
  s.links = in.routing.rows();
  s.flows = in.routing.cols();
  s.points = in.extreme_points.rows();
  double max_cap = 0.0;
  const double* p = in.extreme_points.data();
  const std::size_t total = static_cast<std::size_t>(s.points) *
                            static_cast<std::size_t>(in.extreme_points.cols());
  for (std::size_t i = 0; i < total; ++i) max_cap = std::max(max_cap, p[i]);
  s.scale = in.scale_override > 0.0 ? in.scale_override
                                    : (max_cap > 0.0 ? max_cap : 1.0);
  return s;
}

/// See build_rate_region_lp (the public entry point below); kept as the
/// internal spelling so the solver routines read against the shape.
LpProblem base_problem(const OptimizerInput& in, const ProblemShape& s,
                       int extra_vars = 0) {
  return build_rate_region_lp(in, s.scale, extra_vars);
}

OptimizerResult unpack(const LpSolution& sol, const ProblemShape& s) {
  OptimizerResult r;
  if (sol.status != LpStatus::kOptimal) return r;
  r.ok = true;
  r.y.assign(static_cast<std::size_t>(s.flows), 0.0);
  r.alpha_weights.assign(static_cast<std::size_t>(s.points), 0.0);
  for (int f = 0; f < s.flows; ++f)
    r.y[static_cast<std::size_t>(f)] =
        sol.x[static_cast<std::size_t>(f)] * s.scale;
  for (int k = 0; k < s.points; ++k)
    r.alpha_weights[static_cast<std::size_t>(k)] =
        sol.x[static_cast<std::size_t>(s.flows + k)];
  return r;
}

OptimizerResult solve_max_throughput(const OptimizerInput& in,
                                     const ProblemShape& s, LpSolver& solver) {
  LpProblem lp = base_problem(in, s);
  for (int f = 0; f < s.flows; ++f)
    lp.objective[static_cast<std::size_t>(f)] = 1.0;
  OptimizerResult r = unpack(solver.solve(lp), s);
  if (r.ok) {
    r.objective_value = 0.0;
    for (double y : r.y) r.objective_value += y;
  }
  return r;
}

/// Lexicographic max-min via iterative water-filling LPs.
OptimizerResult solve_max_min(const OptimizerInput& in, const ProblemShape& s,
                              LpSolver& solver) {
  std::vector<bool> fixed(static_cast<std::size_t>(s.flows), false);
  std::vector<double> level(static_cast<std::size_t>(s.flows), 0.0);

  for (int round = 0; round < s.flows; ++round) {
    // Maximize t with y_f >= t for unfixed flows, y_f == level for fixed.
    LpProblem lp = base_problem(in, s, /*extra_vars=*/1);
    const int t_var = s.flows + s.points;
    lp.objective[static_cast<std::size_t>(t_var)] = 1.0;

    for (int f = 0; f < s.flows; ++f) {
      if (fixed[static_cast<std::size_t>(f)]) {
        double* row =
            lp.add_row(Relation::kEq, level[static_cast<std::size_t>(f)]);
        row[f] = 1.0;
      } else {
        double* row = lp.add_row(Relation::kGe, 0.0);
        row[f] = 1.0;
        row[t_var] = -1.0;
      }
    }
    const LpSolution sol = solver.solve(lp);
    if (sol.status != LpStatus::kOptimal) break;
    const double t = sol.x[static_cast<std::size_t>(t_var)];

    // Find which unfixed flows are actually capped at t: try to push each
    // one above t while others stay >= t. Consecutive push problems are
    // identical until a flow gets fixed, so the problem is built once per
    // segment, only the objective entry moves between flows, and every
    // solve after the segment's first warm-starts from the cached basis.
    bool progressed = false;
    LpProblem push;
    bool push_stale = true;
    int prev_obj_flow = -1;
    for (int f = 0; f < s.flows; ++f) {
      if (fixed[static_cast<std::size_t>(f)]) continue;
      if (push_stale) {
        push = base_problem(in, s);
        for (int g = 0; g < s.flows; ++g) {
          if (fixed[static_cast<std::size_t>(g)]) {
            double* row = push.add_row(Relation::kEq,
                                       level[static_cast<std::size_t>(g)]);
            row[g] = 1.0;
          } else {
            double* row = push.add_row(Relation::kGe, t);
            row[g] = 1.0;
          }
        }
        prev_obj_flow = -1;
      }
      if (prev_obj_flow >= 0)
        push.objective[static_cast<std::size_t>(prev_obj_flow)] = 0.0;
      push.objective[static_cast<std::size_t>(f)] = 1.0;
      prev_obj_flow = f;
      const LpSolution up =
          push_stale ? solver.solve(push) : solver.resolve_objective(push);
      push_stale = false;
      const double reach = up.status == LpStatus::kOptimal ? up.objective : t;
      if (reach <= t + 1e-7) {
        fixed[static_cast<std::size_t>(f)] = true;
        level[static_cast<std::size_t>(f)] = t;
        progressed = true;
        push_stale = true;  // the next push sees a new Eq row
      }
    }
    if (!progressed) {
      // Numerical corner: freeze everything at t.
      for (int f = 0; f < s.flows; ++f) {
        if (!fixed[static_cast<std::size_t>(f)]) {
          fixed[static_cast<std::size_t>(f)] = true;
          level[static_cast<std::size_t>(f)] = t;
        }
      }
    }
    if (std::all_of(fixed.begin(), fixed.end(), [](bool b) { return b; }))
      break;
  }

  // Final solve with all levels pinned to recover alpha weights.
  LpProblem lp = base_problem(in, s);
  for (int f = 0; f < s.flows; ++f) {
    double* row = lp.add_row(Relation::kGe,
                             level[static_cast<std::size_t>(f)] * (1.0 - 1e-9));
    row[f] = 1.0;
  }
  OptimizerResult r = unpack(solver.solve(lp), s);
  if (r.ok) {
    for (int f = 0; f < s.flows; ++f)
      r.y[static_cast<std::size_t>(f)] =
          level[static_cast<std::size_t>(f)] * s.scale;
    r.objective_value = *std::min_element(r.y.begin(), r.y.end());
  }
  return r;
}

/// Frank–Wolfe for strictly concave alpha-fair objectives.
OptimizerResult solve_alpha_fair(const OptimizerInput& in,
                                 const ProblemShape& s, double alpha,
                                 int iterations, double tolerance,
                                 LpSolver& solver) {
  const AlphaFairUtility util(alpha, 1e-6);

  // Interior-ish start: the max-min point keeps every flow positive.
  OptimizerResult start = solve_max_min(in, s, solver);
  if (!start.ok) return start;

  const int n = s.flows + s.points;
  std::vector<double> z(static_cast<std::size_t>(n), 0.0);
  for (int f = 0; f < s.flows; ++f)
    z[static_cast<std::size_t>(f)] =
        std::max(start.y[static_cast<std::size_t>(f)] / s.scale, 1e-6);
  for (int k = 0; k < s.points; ++k)
    z[static_cast<std::size_t>(s.flows + k)] =
        start.alpha_weights[static_cast<std::size_t>(k)];

  const auto objective = [&](const std::vector<double>& v) {
    double acc = 0.0;
    for (int f = 0; f < s.flows; ++f)
      acc += util.value(v[static_cast<std::size_t>(f)]);
    return acc;
  };

  // The constraint set is fixed across iterations; only the oracle's
  // objective changes, so the LpProblem is built once and every oracle
  // call after the first warm-starts from the previous optimal basis.
  LpProblem lp = base_problem(in, s);
  OptimizerResult result;
  int iter = 0;
  for (; iter < iterations; ++iter) {
    // Linear oracle at the current gradient.
    lp.objective.assign(static_cast<std::size_t>(n), 0.0);
    for (int f = 0; f < s.flows; ++f)
      lp.objective[static_cast<std::size_t>(f)] =
          util.gradient(z[static_cast<std::size_t>(f)]);
    const LpSolution sol =
        iter == 0 ? solver.solve(lp) : solver.resolve_objective(lp);
    if (sol.status != LpStatus::kOptimal) break;

    // FW gap (scaled): grad . (v - z).
    double gap = 0.0;
    for (int f = 0; f < s.flows; ++f)
      gap += lp.objective[static_cast<std::size_t>(f)] *
             (sol.x[static_cast<std::size_t>(f)] -
              z[static_cast<std::size_t>(f)]);
    if (gap <= tolerance * (std::abs(objective(z)) + 1.0)) break;

    // Golden-section line search on gamma in [0, 1].
    const auto blend_obj = [&](double gamma) {
      double acc = 0.0;
      for (int f = 0; f < s.flows; ++f) {
        const double y = (1.0 - gamma) * z[static_cast<std::size_t>(f)] +
                         gamma * sol.x[static_cast<std::size_t>(f)];
        acc += util.value(y);
      }
      return acc;
    };
    double lo = 0.0, hi = 1.0;
    constexpr double kGolden = 0.3819660112501051;
    double m1 = lo + kGolden * (hi - lo), m2 = hi - kGolden * (hi - lo);
    double f1 = blend_obj(m1), f2 = blend_obj(m2);
    for (int it = 0; it < 40; ++it) {
      if (f1 < f2) {
        lo = m1;
        m1 = m2;
        f1 = f2;
        m2 = hi - kGolden * (hi - lo);
        f2 = blend_obj(m2);
      } else {
        hi = m2;
        m2 = m1;
        f2 = f1;
        m1 = lo + kGolden * (hi - lo);
        f1 = blend_obj(m1);
      }
    }
    const double gamma = 0.5 * (lo + hi);
    for (int j = 0; j < n; ++j)
      z[static_cast<std::size_t>(j)] =
          (1.0 - gamma) * z[static_cast<std::size_t>(j)] +
          gamma * sol.x[static_cast<std::size_t>(j)];
  }

  result.ok = true;
  result.iterations = iter;
  result.y.assign(static_cast<std::size_t>(s.flows), 0.0);
  result.alpha_weights.assign(static_cast<std::size_t>(s.points), 0.0);
  for (int f = 0; f < s.flows; ++f)
    result.y[static_cast<std::size_t>(f)] =
        z[static_cast<std::size_t>(f)] * s.scale;
  for (int k = 0; k < s.points; ++k)
    result.alpha_weights[static_cast<std::size_t>(k)] =
        z[static_cast<std::size_t>(s.flows + k)];
  result.objective_value = objective(z);
  return result;
}

}  // namespace

LpProblem build_rate_region_lp(const OptimizerInput& in, double scale,
                               int extra_vars) {
  const int links = in.routing.rows();
  const int flows = in.routing.cols();
  const int points = in.extreme_points.rows();
  LpProblem lp;
  lp.num_vars = flows + points + extra_vars;
  lp.objective.assign(static_cast<std::size_t>(lp.num_vars), 0.0);

  const double inv_scale = 1.0 / scale;
  for (int l = 0; l < links; ++l) {
    double* row = lp.add_row(Relation::kLe, 0.0);
    const double* routing = in.routing.row(l);
    for (int f = 0; f < flows; ++f) row[f] = routing[f];
    // Column l of the K x L extreme-point matrix, negated and normalized.
    for (int k = 0; k < points; ++k)
      row[flows + k] = -in.extreme_points(k, l) * inv_scale;
  }
  // Convex weights sum to one.
  double* simplex_row = lp.add_row(Relation::kEq, 1.0);
  for (int k = 0; k < points; ++k) simplex_row[flows + k] = 1.0;

  // Safety cap: a flow crossing no modeled link would be unbounded.
  for (int f = 0; f < flows; ++f) {
    bool routed = false;
    for (int l = 0; l < links; ++l)
      if (in.routing(l, f) > 0.0) routed = true;
    if (!routed) {
      double* row = lp.add_row(Relation::kLe, 1.0);
      row[f] = 1.0;
    }
  }
  return lp;
}

OptimizerResult NetworkOptimizer::solve(const OptimizerInput& input) {
  const ProblemShape s = shape_of(input);
  OptimizerResult empty;
  if (s.flows == 0 || s.points == 0 || s.links == 0) return empty;
  if (input.extreme_points.cols() != s.links)
    throw std::invalid_argument("extreme point arity != link count");

  switch (cfg_.objective) {
    case Objective::kMaxThroughput:
      return solve_max_throughput(input, s, lp_);
    case Objective::kMaxMin:
      return solve_max_min(input, s, lp_);
    case Objective::kProportionalFair:
      return solve_alpha_fair(input, s, 1.0, cfg_.fw_iterations,
                              cfg_.tolerance, lp_);
    case Objective::kAlphaFair:
      return solve_alpha_fair(input, s, cfg_.alpha, cfg_.fw_iterations,
                              cfg_.tolerance, lp_);
  }
  return empty;
}

OptimizerResult optimize_rates(const OptimizerInput& input,
                               const OptimizerConfig& config) {
  NetworkOptimizer optimizer(config);
  return optimizer.solve(input);
}

double tcp_ack_airtime_factor(int payload_bytes, int header_bytes,
                              int ack_bytes) {
  const double a = static_cast<double>(ack_bytes);
  const double h = static_cast<double>(header_bytes);
  const double d = static_cast<double>(payload_bytes);
  return 1.0 - (a + h) / (a + h + d);
}

}  // namespace meshopt
