#pragma once
// Dense two-phase simplex LP solver.
//
// Scope: the optimizer's problems are small (tens of links, a few flows,
// up to a few hundred extreme points), so a dense tableau with Dantzig
// pricing and a Bland anti-cycling fallback is simple and dependable.
//
// Problem form: maximize c.x subject to a set of <=, =, >= constraints and
// x >= 0.

#include <cstdint>
#include <vector>

namespace meshopt {

enum class LpStatus : std::uint8_t { kOptimal, kInfeasible, kUnbounded };

enum class Relation : std::uint8_t { kLe, kEq, kGe };

struct LpConstraint {
  std::vector<double> coeffs;  ///< length = num_vars
  Relation rel = Relation::kLe;
  double rhs = 0.0;
};

struct LpProblem {
  int num_vars = 0;
  std::vector<double> objective;  ///< maximize objective . x
  std::vector<LpConstraint> constraints;

  LpConstraint& add_constraint(std::vector<double> coeffs, Relation rel,
                               double rhs) {
    constraints.push_back({std::move(coeffs), rel, rhs});
    return constraints.back();
  }
};

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;
};

[[nodiscard]] LpSolution solve_lp(const LpProblem& problem);

}  // namespace meshopt
