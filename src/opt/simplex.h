#pragma once
// Dense two-phase simplex LP solver on a flat row-major tableau.
//
// Scope: the optimizer's problems are small (tens of links, a few flows,
// up to a few hundred extreme points), so a dense tableau with Dantzig
// pricing and a Bland anti-cycling fallback is simple and dependable.
//
// Problem form: maximize c.x subject to a set of <=, =, >= constraints and
// x >= 0.
//
// Layout: constraint coefficients and the working tableau live in a
// DenseMatrix (one contiguous buffer, stride = column count), so the
// simplex inner loops — pricing, ratio test, pivot row updates — stream
// over contiguous memory instead of chasing one heap allocation per row
// as the previous vector<vector<double>> representation did.
//
// Determinism: for a given LpProblem the pivot sequence, and therefore
// every reported value (objective, x, status), is identical to the
// historical nested-vector implementation bit for bit
// (tests/test_simplex.cpp, ReferenceSimplex suite).

#include <cstdint>
#include <vector>

#include "util/dense_matrix.h"

namespace meshopt {

/// Terminal state of an LP solve.
enum class LpStatus : std::uint8_t { kOptimal, kInfeasible, kUnbounded };

/// Constraint sense: a.x <= b, a.x == b, or a.x >= b.
enum class Relation : std::uint8_t { kLe, kEq, kGe };

/// A linear program in the solver's native form:
///
///   maximize objective . x
///   subject to coeffs.row(i) . x  (rels[i])  rhs[i]   for every row i,
///              x >= 0.
///
/// Constraint rows are stored flat in a DenseMatrix with num_vars columns.
/// All quantities are unitless to the solver; the network optimizer feeds
/// it capacities normalized to ~1 (see NetworkOptimizer) for conditioning.
struct LpProblem {
  int num_vars = 0;               ///< number of decision variables (columns)
  std::vector<double> objective;  ///< length num_vars; maximize objective.x
  DenseMatrix coeffs;             ///< num_constraints() x num_vars
  std::vector<Relation> rels;     ///< per-row constraint sense
  std::vector<double> rhs;        ///< per-row right-hand side

  [[nodiscard]] int num_constraints() const { return coeffs.rows(); }

  /// Append a zero-filled constraint row and return its coefficient
  /// pointer (num_vars elements) for in-place fill. The preferred builder
  /// on hot paths: no per-row vector allocation.
  /// @pre num_vars is final (adding rows pins the column count).
  double* add_row(Relation rel, double rhs_value);

  /// Append a constraint from a coefficient vector (copying convenience
  /// builder; use add_row() on hot paths).
  /// @pre coeffs_row.size() == num_vars.
  void add_constraint(const std::vector<double>& coeffs_row, Relation rel,
                      double rhs_value);

  /// Widen the problem by `count` variables appended after the existing
  /// ones: every constraint row gains `count` zero coefficients (fill the
  /// real values in afterwards via coeffs(r, c)) and the objective is
  /// extended with zeros. The column-generation master grows this way;
  /// pair with LpSolver::resolve_with_added_columns for a warm re-solve
  /// that skips phase 1 entirely.
  void append_vars(int count);
};

/// Result of an LP solve. `x` and `objective` are meaningful only when
/// status == kOptimal.
struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;         ///< objective . x at the optimum
  std::vector<double> x;          ///< length num_vars, all >= 0
};

/// Reusable two-phase simplex solver.
///
/// The solver owns its tableau workspace (flat DenseMatrix + objective
/// row + basis). Solving a problem of the same or smaller shape as a
/// previous call reuses the buffers without reallocating, which matters
/// when a caller (Frank–Wolfe, max-min water-filling) issues hundreds of
/// solves over identically-shaped problems.
///
/// Not thread-safe: use one LpSolver per thread.
class LpSolver {
 public:
  /// Solve `problem` from scratch (phase 1 + phase 2).
  ///
  /// @pre  problem.objective.size() >= effective use (missing trailing
  ///       objective coefficients are treated as 0).
  /// @pre  every constraint row has exactly problem.num_vars coefficients
  ///       (guaranteed by the LpProblem builders).
  /// @post on kOptimal: solution.x.size() == num_vars, x >= 0, and
  ///       solution.objective == objective . x recomputed in input scale.
  [[nodiscard]] LpSolution solve(const LpProblem& problem);

  /// Warm re-solve: re-optimize under a NEW objective over the SAME
  /// constraints as the previous solve() / resolve_objective() call,
  /// restarting phase 2 from the cached optimal basis. This is the fast
  /// path for objective-only sequences — the Frank–Wolfe LP oracle and
  /// the max-min push solves — where the previous optimum is typically a
  /// few pivots from the new one, versus a full phase-1 + phase-2 rebuild.
  ///
  /// @pre  `problem`'s constraint rows (coeffs, rels, rhs) are identical
  ///       to the previously solved problem's; only `objective` may
  ///       differ. Shape mismatches (num_vars, row count, rels, rhs) are
  ///       detected and fall back to a cold solve(); coefficient-value
  ///       mismatches are NOT detected and yield garbage — the caller
  ///       owns that invariant.
  /// @post same as solve(). The result is an exact LP optimum (identical
  ///       objective value up to floating-point associativity; a
  ///       different-but-equally-optimal vertex may be reported when the
  ///       optimum face is degenerate).
  [[nodiscard]] LpSolution resolve_objective(const LpProblem& problem);

  /// Warm re-solve after the caller APPENDED variables to the previously
  /// solved problem (LpProblem::append_vars + coefficient fill). The new
  /// columns are transformed through the current basis inverse — read off
  /// the tableau's initially-basic unit columns — and phase 2 resumes from
  /// the cached optimal basis, so the cost is a handful of pivots instead
  /// of a full phase-1 rebuild. This is the column-generation master's
  /// re-solve after each pricing round.
  ///
  /// @pre  `problem` is the previously solved problem plus >= 1 appended
  ///       variables: same rows/rels/rhs, same coefficients for the old
  ///       variables (unchecked, caller-owned), objective may differ.
  ///       Shape mismatches fall back to a cold solve().
  /// @post same as solve().
  [[nodiscard]] LpSolution resolve_with_added_columns(const LpProblem& problem);

  /// Cold-structure solve that tries to start phase 2 from a caller
  /// provided basis — typically `basis()` captured from an earlier solve
  /// of an identically-shaped problem with drifted coefficients (the
  /// cross-round warm start of the column-generation planner). The hinted
  /// columns are pivoted in row by row; if any pivot vanishes or the
  /// restored basis is infeasible for the new coefficients, the solve
  /// silently falls back to the cold two-phase path, so the result is
  /// always a true optimum of `problem`.
  [[nodiscard]] LpSolution solve_with_basis(const LpProblem& problem,
                                            const std::vector<int>& hint);

  /// Basic column per row of the most recent solve, in solver column
  /// layout (caller variables first, then slack/artificial). Meaningful
  /// after a kOptimal solve; feed back into solve_with_basis().
  [[nodiscard]] const std::vector<int>& basis() const { return basis_; }

  /// Row duals (shadow prices) of the most recent kOptimal solve, in the
  /// caller's row order and sign convention: for `maximize c.x`, the
  /// optimal objective is `sum_i duals[i] * rhs[i]` and a unit slackening
  /// of row i improves the objective by duals[i]. Read off the reduced-
  /// cost row under each row's initially-basic (slack/artificial) column.
  /// These drive the column-generation pricing oracle.
  void duals(std::vector<double>& out) const;

 private:
  void load(const LpProblem& p);
  [[nodiscard]] LpSolution finish(const LpProblem& problem, LpStatus st);
  [[nodiscard]] bool phase1();
  [[nodiscard]] LpStatus phase2(const std::vector<double>& c);
  void make_reduced_costs_consistent();
  void pivot(int row, int col);
  [[nodiscard]] bool optimize(int price_limit);
  void drive_out_artificials();

  int m_ = 0;                ///< constraint rows
  int n_orig_ = 0;           ///< original (caller) variables
  int n_ = 0;                ///< total columns incl. slack/artificial
  int first_artificial_ = 0; ///< first artificial column index
  int stride_ = 0;           ///< tableau row stride: n_ + 1 padded to 8
                             ///< doubles (64 B) so rows are SIMD-aligned
  bool basis_cached_ = false;  ///< feasible basis available for warm solves
  DenseMatrix tab_;          ///< m_ x stride_; column n_ is the RHS,
                             ///< columns beyond it stay exactly 0
  std::vector<double> obj_;  ///< reduced-cost row, length stride_
  std::vector<int> basis_;   ///< basic variable per row
  std::vector<int> unit_col_;     ///< initially-basic column per row: the
                                  ///< slack/artificial whose tableau column
                                  ///< holds that row of the basis inverse
  std::vector<double> row_sign_;  ///< +1, or -1 where load() flipped the
                                  ///< row to normalize a negative rhs
  std::vector<Relation> cached_rels_;  ///< fingerprint for warm-solve guard
  std::vector<double> cached_rhs_;     ///< fingerprint for warm-solve guard
};

/// One-shot convenience wrapper: constructs a fresh LpSolver and solves.
[[nodiscard]] LpSolution solve_lp(const LpProblem& problem);

}  // namespace meshopt
