#pragma once
// The paper's optimization problem (Section 6.1):
//
//   maximize   sum_s U(y_s)
//   subject to sum_s R_ls y_s <= sum_k alpha_k c_kl    for every link l
//              sum_k alpha_k = 1,  alpha >= 0,  y >= 0
//
// Solved with:
//   * simplex directly for the linear objectives (max aggregate
//     throughput),
//   * Frank–Wolfe with an LP oracle and golden-section line search for the
//     strictly concave alpha-fair objectives (proportional fairness etc.),
//   * lexicographic water-filling LPs for max-min fairness (the
//     alpha -> infinity end of the family; an extension beyond the paper's
//     evaluated objectives).

#include <cstdint>
#include <vector>

#include "opt/simplex.h"
#include "opt/utility.h"

namespace meshopt {

enum class Objective : std::uint8_t {
  kMaxThroughput,      ///< alpha = 0
  kProportionalFair,   ///< alpha = 1
  kAlphaFair,          ///< arbitrary alpha (config.alpha)
  kMaxMin,             ///< alpha -> infinity
};

struct OptimizerConfig {
  Objective objective = Objective::kProportionalFair;
  double alpha = 1.0;          ///< used when objective == kAlphaFair
  int fw_iterations = 300;
  double tolerance = 1e-4;     ///< relative FW gap stop criterion
};

struct OptimizerInput {
  /// R[l][s] = 1 if flow s crosses link l.
  std::vector<std::vector<double>> routing;
  /// K x L extreme points (bits/s).
  std::vector<std::vector<double>> extreme_points;
};

struct OptimizerResult {
  bool ok = false;
  std::vector<double> y;              ///< per-flow rates (bits/s)
  std::vector<double> alpha_weights;  ///< convex weights over extreme points
  double objective_value = 0.0;
  int iterations = 0;
};

[[nodiscard]] OptimizerResult optimize_rates(const OptimizerInput& input,
                                             const OptimizerConfig& config);

/// Scale factor the controller applies to TCP flows so the reverse-path
/// ACKs get air time (paper Section 6.2, following [21]):
/// (1 - (A+H)/(A+H+D)) with A=TCP ACK, H=IP/TCP headers, D=payload.
[[nodiscard]] double tcp_ack_airtime_factor(int payload_bytes = 1460,
                                            int header_bytes = 40,
                                            int ack_bytes = 40);

}  // namespace meshopt
