#pragma once
// The paper's optimization problem (Section 6.1):
//
//   maximize   sum_s U(y_s)
//   subject to sum_s R_ls y_s <= sum_k alpha_k c_kl    for every link l
//              sum_k alpha_k = 1,  alpha >= 0,  y >= 0
//
// Solved with:
//   * simplex directly for the linear objectives (max aggregate
//     throughput),
//   * Frank–Wolfe with an LP oracle and golden-section line search for the
//     strictly concave alpha-fair objectives (proportional fairness etc.),
//   * lexicographic water-filling LPs for max-min fairness (the
//     alpha -> infinity end of the family; an extension beyond the paper's
//     evaluated objectives).
//
// All matrices are flat row-major DenseMatrix: the routing matrix is
// L x S, the extreme-point matrix K x L, and both flow into the LP
// constraint matrix without per-row heap allocations.

#include <cstdint>
#include <vector>

#include "opt/simplex.h"
#include "opt/utility.h"
#include "util/dense_matrix.h"

namespace meshopt {

/// Which point of the alpha-fair utility family to optimize.
enum class Objective : std::uint8_t {
  kMaxThroughput,      ///< alpha = 0: maximize sum of flow rates
  kProportionalFair,   ///< alpha = 1: maximize sum of log(y_s)
  kAlphaFair,          ///< arbitrary alpha (OptimizerConfig::alpha)
  kMaxMin,             ///< alpha -> infinity: lexicographic max-min
};

/// Tuning knobs for NetworkOptimizer / optimize_rates.
struct OptimizerConfig {
  Objective objective = Objective::kProportionalFair;
  double alpha = 1.0;       ///< exponent used when objective == kAlphaFair
  int fw_iterations = 300;  ///< Frank–Wolfe iteration cap
  double tolerance = 1e-4;  ///< relative FW duality-gap stop criterion
};

/// Inputs to one optimization round.
///
/// Unit convention: extreme-point entries are link rates in bits/s (the
/// controller feeds MAC-layer capacity estimates, Eq. 6 of the paper);
/// routing entries are dimensionless path-incidence indicators (R[l][s] = 1
/// iff flow s crosses link l). Outputs come back in the same bits/s scale.
struct OptimizerInput {
  /// L x S routing matrix: routing(l, s) = 1 if flow s crosses link l.
  DenseMatrix routing;
  /// K x L extreme points of the feasible rate region, in bits/s. Build
  /// with build_extreme_point_matrix() to stream ConflictGraph bitset
  /// rows straight into this matrix.
  DenseMatrix extreme_points;
  /// When > 0, normalize capacities by this instead of the input's own
  /// max extreme-point entry. The decomposition tier (opt/decompose.h)
  /// passes the GLOBAL scale into each per-component solve so scaled
  /// iterates, tolerances, and stop thresholds have exactly the
  /// semantics of the monolithic solve. 0 (default) keeps the
  /// self-scaling behavior.
  double scale_override = 0.0;
};

/// One optimization round's output.
struct OptimizerResult {
  bool ok = false;                    ///< false: empty/degenerate input or
                                      ///< infeasible LP
  std::vector<double> y;              ///< per-flow rates (bits/s), length S
  std::vector<double> alpha_weights;  ///< convex weights over extreme
                                      ///< points, length K, sum to 1
  double objective_value = 0.0;       ///< attained utility (objective units)
  int iterations = 0;                 ///< Frank–Wolfe iterations used
  int columns_used = 0;    ///< column generation only: working-set size the
                           ///< restricted master finished with (0 for the
                           ///< exact full-K solver)
  int pricing_rounds = 0;  ///< column generation only: pricing-oracle
                           ///< invocations across the solve
};

/// Reusable solver for the paper's utility maximization.
///
/// Owns the LP workspace (constraint matrix + simplex tableau), so a
/// controller calling solve() every probe round — or Frank–Wolfe issuing
/// hundreds of LP-oracle calls per solve — re-uses one set of buffers
/// instead of reallocating per solve. Not thread-safe: use one instance
/// per thread (SweepRunner jobs each construct their own).
class NetworkOptimizer {
 public:
  explicit NetworkOptimizer(OptimizerConfig config = {}) : cfg_(config) {}

  [[nodiscard]] const OptimizerConfig& config() const { return cfg_; }
  OptimizerConfig& config() { return cfg_; }

  /// Solve one round over the given rate region and routing.
  ///
  /// @pre  input.routing is L x S with L, S >= 1 and entries >= 0;
  ///       input.extreme_points is K x L with K >= 1 and entries >= 0
  ///       (bits/s). A shape mismatch between the two matrices throws
  ///       std::invalid_argument; an empty dimension returns ok == false.
  /// @post on ok: result.y.size() == S with y >= 0 (bits/s);
  ///       result.alpha_weights.size() == K, weights >= 0 and summing to
  ///       1; the induced link load R.y is feasible:
  ///       (R.y)_l <= sum_k alpha_k c_kl + eps for every link l.
  /// @post solve() does not retain references into `input`; the instance
  ///       may be reused with different shapes.
  [[nodiscard]] OptimizerResult solve(const OptimizerInput& input);

 private:
  OptimizerConfig cfg_;
  LpSolver lp_;  ///< shared simplex workspace across all internal solves
};

/// Build the shared rate-region constraint set over variables
/// (y_0..y_{S-1}, alpha_0..alpha_{K-1}[, extras]) with capacities
/// normalized by `scale`: per-link Le rows coupling flows to extreme
/// points, the convexity Eq row, and unit caps on unrouted flows.
/// `extra_vars` appends zero-coefficient variables (max-min's water-level
/// variable t). This is the exact problem NetworkOptimizer builds
/// internally, exposed so the decomposition tier's joint Frank–Wolfe can
/// run per-component oracles over identical constraint sets (see
/// opt/decompose.h).
[[nodiscard]] LpProblem build_rate_region_lp(const OptimizerInput& in,
                                             double scale,
                                             int extra_vars = 0);

/// One-shot convenience wrapper: NetworkOptimizer(config).solve(input).
[[nodiscard]] OptimizerResult optimize_rates(const OptimizerInput& input,
                                             const OptimizerConfig& config);

/// Scale factor the controller applies to TCP flows so the reverse-path
/// ACKs get air time (paper Section 6.2, following [21]):
/// (1 - (A+H)/(A+H+D)) with A=TCP ACK, H=IP/TCP headers, D=payload, all
/// in bytes. Dimensionless, in (0, 1).
[[nodiscard]] double tcp_ack_airtime_factor(int payload_bytes = 1460,
                                            int header_bytes = 40,
                                            int ack_bytes = 40);

}  // namespace meshopt
