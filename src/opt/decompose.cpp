#include "opt/decompose.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <utility>

#include "obs/obs.h"
#include "opt/utility.h"

namespace meshopt {

namespace {

/// Per-round working state of one ACTIVE component (a component with at
/// least one assigned flow). Owns everything its phase-A job writes, so
/// pool jobs touch disjoint memory and the round is bit-identical across
/// thread counts.
struct CompWork {
  MeasurementSnapshot sub;            ///< restricted snapshot
  std::vector<std::size_t> flow_ids;  ///< global flow indices, ascending

  // Fast tier.
  ColumnGenInput cg_in;
  ColumnGenOptimizer* warm = nullptr;  ///< entry-owned or `cold`
  std::unique_ptr<ColumnGenOptimizer> cold;
  std::uint64_t pricing_before = 0;

  // Exact tier.
  LpProblem lp;  ///< joint-FW oracle constraint set
  int region_rows = 0;

  OptimizerResult result;  ///< final (kMT/kMM) or FW starting point

  // Wall-clock enrichment of the component's phase-A job (0 unless the
  // attached recorder enables wall_clock). Written by the job, read by the
  // caller after the phase barrier — disjoint, pool-safe.
  std::uint64_t obs_t0 = 0;
  std::uint64_t obs_dur = 0;
};

bool concave_objective(Objective o) {
  return o == Objective::kProportionalFair || o == Objective::kAlphaFair;
}

}  // namespace

RatePlan DecomposedPlanner::fallback_plan(const MeasurementSnapshot& snap,
                                          InterferenceModelKind kind,
                                          const std::vector<FlowSpec>& flows,
                                          const PlanConfig& cfg,
                                          std::size_t mis_cap, bool cacheable,
                                          std::uint64_t DecomposeStats::*why) {
  ++stats_.fallback_rounds;
  ++(stats_.*why);
  if (obs_ != nullptr) {
    ObsCode code = ObsCode::kFallbackDegenerate;
    if (why == &DecomposeStats::fallback_connected)
      code = ObsCode::kFallbackConnected;
    else if (why == &DecomposeStats::fallback_cross_component)
      code = ObsCode::kFallbackCross;
    obs_->emit(ObsStage::kComponent, ObsKind::kEvent, code);
  }
  return fallback_.plan(snap, kind, flows, cfg, mis_cap, cacheable);
}

RatePlan DecomposedPlanner::plan(const MeasurementSnapshot& snap,
                                 InterferenceModelKind kind,
                                 const std::vector<FlowSpec>& flows,
                                 const PlanConfig& cfg, std::size_t mis_cap,
                                 bool cacheable) {
  ++stats_.rounds;
  if (flows.empty() || snap.links.empty())
    return fallback_plan(snap, kind, flows, cfg, mis_cap, cacheable,
                         &DecomposeStats::fallback_degenerate);

  // Partition along the same conflict graph the per-component models will
  // build (including the LIR -> two-hop fallback for LIR-less snapshots),
  // so component membership and model structure can never disagree.
  const bool lir_model =
      kind == InterferenceModelKind::kLirTable && !snap.lir.empty();
  const ConflictGraph graph =
      lir_model ? build_lir_conflict_graph(snap.lir, snap.lir_threshold)
                : build_two_hop_conflict_graph(
                      snap.link_refs(), [&snap](NodeId a, NodeId b) {
                        return snap.is_neighbor(a, b);
                      });
  ComponentPartition part = graph.connected_components();
  if (part.count() < cfg_.min_components)
    return fallback_plan(snap, kind, flows, cfg, mis_cap, cacheable,
                         &DecomposeStats::fallback_connected);

  // Assign each flow to the one component its modeled links live in. The
  // decomposition is exact only when flows never straddle components.
  const std::size_t num_flows = flows.size();
  std::vector<int> flow_comp(num_flows, -1);
  for (std::size_t s = 0; s < num_flows; ++s) {
    const auto& path = flows[s].path;
    int comp = -1;
    bool single = true;
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      const int l = snap.link_index(path[h], path[h + 1]);
      if (l < 0) continue;
      const int c = part.component_of[static_cast<std::size_t>(l)];
      if (comp < 0)
        comp = c;
      else if (comp != c) {
        single = false;
        break;
      }
    }
    if (!single || comp < 0)
      return fallback_plan(snap, kind, flows, cfg, mis_cap, cacheable,
                           &DecomposeStats::fallback_cross_component);
    flow_comp[s] = comp;
  }

  // Keep component slots (their Planner caches and fast-tier warm state)
  // when the partition's membership is unchanged; rebuild otherwise.
  bool reuse = slots_.size() == part.members.size();
  if (reuse) {
    for (std::size_t c = 0; c < slots_.size(); ++c) {
      if (slots_[c]->members != part.members[c]) {
        reuse = false;
        break;
      }
    }
  }
  if (!reuse) {
    slots_.clear();
    slots_.reserve(part.members.size());
    for (const std::vector<int>& members : part.members)
      slots_.push_back(std::make_unique<Slot>(members, cfg_.component_cache));
    ++stats_.partition_rebuilds;
  }
  partition_ = std::move(part);

  // Active components: only those with assigned flows are planned (a
  // flow-less component contributes nothing to any objective — its link
  // rows are slack at y = 0).
  std::vector<CompWork> works;
  for (int c = 0; c < partition_.count(); ++c) {
    std::vector<std::size_t> ids;
    for (std::size_t s = 0; s < num_flows; ++s)
      if (flow_comp[s] == c) ids.push_back(s);
    if (ids.empty()) continue;
    CompWork w;
    w.sub = snap.restrict_to(
        partition_.members[static_cast<std::size_t>(c)]);
    w.flow_ids = std::move(ids);
    works.push_back(std::move(w));
  }
  ++stats_.decomposed_rounds;
  stats_.components_planned += works.size();
  if (works.empty()) return RatePlan{};  // unreachable: flows is non-empty

  // The GLOBAL capacity scale: the monolithic extreme-point matrix's max
  // entry is the max link capacity (every link is in some maximal
  // independent set), so every per-component solve normalized by sigma
  // runs in exactly the monolithic solve's scaled units.
  double sigma = 0.0;
  for (const SnapshotLink& l : snap.links)
    sigma = std::max(sigma, l.estimate.capacity_bps);
  if (sigma <= 0.0) sigma = 1.0;

  const bool fast = cfg.tier == PlanTier::kFast;
  const bool concave = concave_objective(cfg.optimizer.objective);

  // --- Phase A: per-component model + solve (poolable; disjoint state).
  // kMaxThroughput / kMaxMin solve to completion here; the concave
  // objectives compute their max-min starting point and prepare the
  // linear-oracle state for the joint Frank-Wolfe below.
  auto run_component = [&](CompWork& w) {
    const int comp = flow_comp[w.flow_ids.front()];
    Slot& slot = *slots_[static_cast<std::size_t>(comp)];
    if (obs_ != nullptr) w.obs_t0 = obs_->now_ns();
    const InterferenceModel& m =
        slot.planner.model(w.sub, kind, mis_cap, cacheable);

    const int sub_links = static_cast<int>(w.sub.links.size());
    const int sub_flows = static_cast<int>(w.flow_ids.size());
    DenseMatrix routing(sub_links, sub_flows);
    for (int i = 0; i < sub_flows; ++i) {
      const auto& path = flows[w.flow_ids[static_cast<std::size_t>(i)]].path;
      for (std::size_t h = 0; h + 1 < path.size(); ++h) {
        const int l = w.sub.link_index(path[h], path[h + 1]);
        if (l >= 0) routing(l, i) = 1.0;
      }
    }

    if (fast) {
      w.cg_in.routing = std::move(routing);
      w.cg_in.conflicts = &m.conflicts();
      w.cg_in.capacities = w.sub.capacities();
      w.cg_in.scale_override = sigma;
      w.warm = slot.planner.last_entry_column_gen();
      if (w.warm == nullptr) {
        w.cold = std::make_unique<ColumnGenOptimizer>();
        w.warm = w.cold.get();
      }
      w.warm->set_observer(slot.planner.observer());
      w.warm->config() = cfg.optimizer;
      w.pricing_before = w.warm->stats().pricing_rounds;
      w.result = concave ? w.warm->begin_fw_round(w.cg_in)
                         : w.warm->solve(w.cg_in);
    } else {
      OptimizerInput in;
      in.routing = std::move(routing);
      in.extreme_points = m.extreme_points();
      in.scale_override = sigma;
      w.region_rows = in.extreme_points.rows();
      if (concave) {
        // The monolithic concave solve starts from max-min; mirror that
        // per component, then keep the constraint set for the oracle.
        OptimizerConfig start_cfg = cfg.optimizer;
        start_cfg.objective = Objective::kMaxMin;
        slot.exact.config() = start_cfg;
        w.result = slot.exact.solve(in);
        w.lp = build_rate_region_lp(in, sigma);
      } else {
        slot.exact.config() = cfg.optimizer;
        w.result = slot.exact.solve(in);
      }
    }
    if (obs_ != nullptr) {
      const std::uint64_t t1 = obs_->now_ns();
      w.obs_dur = t1 >= w.obs_t0 ? t1 - w.obs_t0 : 0;
    }
  };

  // Slot planners share the single-owner recorder only when phase A runs
  // on the calling thread; pool jobs keep their slot-level detail silent
  // (the caller-side kComponentSolve spans below survive either way).
  const bool pooled = pool_ != nullptr && works.size() > 1;
  for (const CompWork& w : works) {
    const int comp = flow_comp[w.flow_ids.front()];
    slots_[static_cast<std::size_t>(comp)]->planner.set_observer(
        pooled ? nullptr : obs_);
  }

  if (pooled) {
    pool_->run_raw(static_cast<int>(works.size()), /*master_seed=*/0,
                   [&](const SweepJob& job) {
                     run_component(works[static_cast<std::size_t>(job.index)]);
                   });
  } else {
    for (CompWork& w : works) run_component(w);
  }

  if (obs_ != nullptr) {
    for (const CompWork& w : works) {
      const int comp = flow_comp[w.flow_ids.front()];
      obs_->emit(ObsStage::kComponent, ObsKind::kSpan,
                 ObsCode::kComponentSolve, static_cast<std::uint64_t>(comp),
                 (static_cast<std::uint64_t>(w.sub.links.size()) << 32) |
                     static_cast<std::uint64_t>(w.flow_ids.size()),
                 w.obs_t0, w.obs_dur);
    }
  }

  for (const CompWork& w : works)
    if (!w.result.ok) return RatePlan{};

  // --- Phase B: stitch (and, for concave objectives, the joint
  // Frank-Wolfe). Runs on the calling thread in component order.
  std::vector<double> y(num_flows, 0.0);
  double objective_value = 0.0;
  int fw_iterations = 0;

  if (!concave) {
    for (const CompWork& w : works)
      for (std::size_t i = 0; i < w.flow_ids.size(); ++i)
        y[w.flow_ids[i]] = w.result.y[i];
    if (cfg.optimizer.objective == Objective::kMaxThroughput) {
      for (double v : y) objective_value += v;
    } else {
      objective_value = *std::min_element(y.begin(), y.end());
    }
  } else {
    // One global Frank-Wolfe iterate over all flows, with the identical
    // gradient / gap / golden-section arithmetic of the monolithic
    // solvers; each iteration's linear oracle decomposes per component.
    const double alpha = cfg.optimizer.objective == Objective::kProportionalFair
                             ? 1.0
                             : cfg.optimizer.alpha;
    const AlphaFairUtility util(alpha, 1e-6);
    std::vector<double> z(num_flows, 0.0);
    std::vector<double> v(num_flows, 0.0);
    std::vector<double> grad(num_flows, 0.0);
    std::vector<double> grad_c;
    for (const CompWork& w : works)
      for (std::size_t i = 0; i < w.flow_ids.size(); ++i)
        z[w.flow_ids[i]] = std::max(w.result.y[i] / sigma, 1e-6);

    const auto objective_of = [&](const std::vector<double>& vec) {
      double acc = 0.0;
      for (std::size_t f = 0; f < num_flows; ++f) acc += util.value(vec[f]);
      return acc;
    };

    int iter = 0;
    for (; iter < cfg.optimizer.fw_iterations; ++iter) {
      for (std::size_t f = 0; f < num_flows; ++f)
        grad[f] = util.gradient(z[f]);

      // Linear oracle, component by component. The monolithic solver
      // stops (keeping the current iterate) when its oracle fails;
      // mirror that for any component's failure.
      bool oracle_ok = true;
      for (CompWork& w : works) {
        const std::size_t nc = w.flow_ids.size();
        if (fast) {
          grad_c.assign(nc, 0.0);
          for (std::size_t i = 0; i < nc; ++i) grad_c[i] = grad[w.flow_ids[i]];
          const LpSolution sol =
              w.warm->fw_oracle(w.cg_in, grad_c, /*first=*/iter == 0);
          if (sol.status != LpStatus::kOptimal) {
            oracle_ok = false;
            break;
          }
          for (std::size_t i = 0; i < nc; ++i) v[w.flow_ids[i]] = sol.x[i];
        } else {
          const int comp = flow_comp[w.flow_ids.front()];
          Slot& slot = *slots_[static_cast<std::size_t>(comp)];
          w.lp.objective.assign(static_cast<std::size_t>(w.lp.num_vars), 0.0);
          for (std::size_t i = 0; i < nc; ++i)
            w.lp.objective[i] = grad[w.flow_ids[i]];
          const LpSolution sol = iter == 0
                                     ? slot.oracle_lp.solve(w.lp)
                                     : slot.oracle_lp.resolve_objective(w.lp);
          if (sol.status != LpStatus::kOptimal) {
            oracle_ok = false;
            break;
          }
          for (std::size_t i = 0; i < nc; ++i) v[w.flow_ids[i]] = sol.x[i];
        }
      }
      if (!oracle_ok) break;

      double gap = 0.0;
      for (std::size_t f = 0; f < num_flows; ++f)
        gap += grad[f] * (v[f] - z[f]);
      if (gap <= cfg.optimizer.tolerance * (std::abs(objective_of(z)) + 1.0))
        break;

      const auto blend_obj = [&](double gamma) {
        double acc = 0.0;
        for (std::size_t f = 0; f < num_flows; ++f)
          acc += util.value((1.0 - gamma) * z[f] + gamma * v[f]);
        return acc;
      };
      double lo = 0.0, hi = 1.0;
      constexpr double kGolden = 0.3819660112501051;
      double m1 = lo + kGolden * (hi - lo), m2 = hi - kGolden * (hi - lo);
      double f1 = blend_obj(m1), f2 = blend_obj(m2);
      for (int it = 0; it < 40; ++it) {
        if (f1 < f2) {
          lo = m1;
          m1 = m2;
          f1 = f2;
          m2 = hi - kGolden * (hi - lo);
          f2 = blend_obj(m2);
        } else {
          hi = m2;
          m2 = m1;
          f2 = f1;
          m1 = lo + kGolden * (hi - lo);
          f1 = blend_obj(m1);
        }
      }
      const double gamma = 0.5 * (lo + hi);
      for (std::size_t f = 0; f < num_flows; ++f)
        z[f] = (1.0 - gamma) * z[f] + gamma * v[f];
    }
    fw_iterations = iter;
    for (std::size_t f = 0; f < num_flows; ++f) y[f] = z[f] * sigma;
    objective_value = objective_of(z);
    if (fast)
      for (CompWork& w : works) w.warm->end_fw_round();
  }

  // --- Phase C: one RatePlan with the monolithic metadata conventions
  // and loss-compensation tail over the FULL snapshot.
  RatePlan plan;
  plan.ok = true;
  plan.tier = cfg.tier;
  plan.optimizer_iterations = fw_iterations;
  plan.objective_value = objective_value;
  if (fast) {
    int cols = 0;
    int pricing = 0;
    for (const CompWork& w : works) {
      if (concave) {
        cols += w.warm->columns().count();
        pricing += static_cast<int>(w.warm->stats().pricing_rounds -
                                    w.pricing_before);
      } else {
        cols += w.result.columns_used;
        pricing += w.result.pricing_rounds;
      }
    }
    plan.extreme_points = cols;
    plan.columns_generated = cols;
    plan.pricing_rounds = pricing;
  } else {
    int region = 0;
    for (const CompWork& w : works) region += w.region_rows;
    plan.extreme_points = region;
  }
  plan.y = y;
  plan.x.resize(num_flows, 0.0);
  plan.shapers.reserve(num_flows);
  for (std::size_t s = 0; s < num_flows; ++s) {
    const FlowSpec& f = flows[s];
    // Residual network-layer loss after MAC retries: p_net = p_link^R.
    double deliver = 1.0;
    for (std::size_t h = 0; h + 1 < f.path.size(); ++h) {
      const int li = snap.link_index(f.path[h], f.path[h + 1]);
      if (li < 0) continue;
      const SnapshotLink& link = snap.links[static_cast<std::size_t>(li)];
      deliver *= 1.0 - std::pow(link.estimate.p_link, link.retry_limit);
    }
    double x = plan.y[s] / std::max(deliver, 1e-3);
    if (f.is_tcp) x *= tcp_ack_airtime_factor();
    x *= cfg.headroom;
    plan.x[s] = x;
    plan.shapers.push_back(ShaperProgram{f.flow_id, x});
  }
  return plan;
}

PlannerStats DecomposedPlanner::planner_stats_snapshot() const {
  PlannerStats total = fallback_.stats_snapshot();
  for (const std::unique_ptr<Slot>& slot : slots_) {
    const PlannerStats& s = slot->planner.stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.uncacheable_plans += s.uncacheable_plans;
  }
  return total;
}

const PlannerStats& DecomposedPlanner::component_planner_stats(int c) const {
  if (c < 0 || c >= static_cast<int>(slots_.size()))
    throw std::out_of_range("DecomposedPlanner: component index");
  return slots_[static_cast<std::size_t>(c)]->planner.stats();
}

void DecomposedPlanner::clear() {
  fallback_.clear();
  slots_.clear();
  partition_ = ComponentPartition{};
  stats_ = DecomposeStats{};
}

}  // namespace meshopt
