#pragma once
// DecomposedPlanner — city-scale planning via conflict-graph decomposition
// (see ARCHITECTURE.md, "Decomposition").
//
// MIS enumeration and the extreme-point/column spaces are exponential in
// the largest CONNECTED interference neighborhood, not in the network: the
// maximal independent sets of a disconnected conflict graph are the
// Cartesian products of the components' sets (K_global = prod_c K_c), and
// conv(A x B) = conv(A) x conv(B), so the feasible rate region factors
// exactly across components. A city mesh of gateway clusters bridged by a
// few weak links is therefore mostly wasted global work — the monolithic
// planner enumerates (or prices against) a product space whose factors
// never interact.
//
// This planner splits the round along that structure:
//   1. partition the snapshot's links into interference components
//      (ConflictGraph::connected_components), cached with per-component
//      Planner instances keyed by component sub-fingerprints
//      (MeasurementSnapshot::component_fingerprint) — churn in one gateway
//      cluster never invalidates another cluster's warm model or
//      column-generation state;
//   2. plan each component against its own sub-snapshot, with every
//      per-component solve normalized by the GLOBAL capacity scale
//      (OptimizerInput/ColumnGenInput::scale_override) so scaled iterates
//      and stop thresholds keep the monolithic solve's semantics;
//   3. stitch the per-component results into one RatePlan with the
//      monolithic objective formulas and loss-compensation tail.
//
// Objective separability (the "Decomposition" table in ARCHITECTURE.md):
//   * kMaxThroughput — separable sum; fully independent component solves.
//   * kMaxMin — lexicographic max-min over a product region with disjoint
//     flow sets equals per-component max-min; the components couple only
//     through the reported objective (the global min of the stitched y).
//   * kProportionalFair / kAlphaFair — the OBJECTIVE is separable but the
//     monolithic Frank–Wolfe trajectory is not: its line search couples
//     all flows through one step size. The decomposed solve therefore
//     runs ONE joint Frank–Wolfe loop over the global iterate (identical
//     gradient, gap, and golden-section arithmetic to the monolithic
//     tiers) and answers each iteration's linear oracle per component —
//     exact-tier components via their full extreme-point LPs, fast-tier
//     components via their entry-owned column-generation masters
//     (ColumnGenOptimizer::begin_fw_round/fw_oracle/end_fw_round).
//
// Determinism contract: a decomposed plan is a deterministic function of
// (snapshot, flows, config, partition state), bit-identical across pool
// thread counts and repeated runs (phase jobs touch disjoint per-component
// slots; all cross-component arithmetic runs on the calling thread in
// component order). Versus the monolithic solve on separable instances the
// stitched plan matches in objective to <= 1e-9 relative and in active-flow
// support (LP pivot order differs per component, so y agrees to LP
// precision, not bit-for-bit) — pinned by tests/test_decompose.cpp.
//
// Fallbacks (counted in DecomposeStats): rounds whose conflict graph is
// connected (fewer components than DecomposeConfig::min_components), whose
// flows span components or cross no modeled link, or with degenerate
// inputs plan through an ordinary monolithic Planner instead.
//
// Thread-safety: single-owner, like Planner. The optional SweepRunner is
// used for per-component phase jobs; pass nullptr when plan() itself runs
// inside a pool job (SweepRunner is not re-entrant) — ControllerFleet and
// PlanService embed exactly that configuration.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/planner.h"
#include "core/rate_plan.h"
#include "core/snapshot.h"
#include "model/conflict_graph.h"
#include "opt/column_gen.h"
#include "opt/network_optimizer.h"
#include "opt/simplex.h"
#include "sweep/sweep_runner.h"

namespace meshopt {

/// Tuning knobs of the decomposition tier.
struct DecomposeConfig {
  /// Fall back to the monolithic planner when the conflict graph yields
  /// fewer components than this (a connected graph gains nothing from the
  /// decomposition machinery).
  int min_components = 2;
  /// Planner LRU entries per component slot.
  std::size_t component_cache = 4;
  /// Planner LRU entries of the monolithic fallback planner.
  std::size_t fallback_cache = 8;

  friend bool operator==(const DecomposeConfig&,
                         const DecomposeConfig&) = default;
};

/// Cumulative counters across a DecomposedPlanner's lifetime.
struct DecomposeStats {
  std::uint64_t rounds = 0;             ///< plan() calls
  std::uint64_t decomposed_rounds = 0;  ///< rounds planned per component
  std::uint64_t fallback_rounds = 0;    ///< rounds planned monolithically
  std::uint64_t fallback_connected = 0;  ///< fallbacks: too few components
  std::uint64_t fallback_cross_component = 0;  ///< fallbacks: flow spans
                                               ///< components / no links
  std::uint64_t fallback_degenerate = 0;  ///< fallbacks: empty flows/links
  std::uint64_t components_planned = 0;   ///< active components, summed
                                          ///< over decomposed rounds
  std::uint64_t partition_rebuilds = 0;   ///< component slots torn down by
                                          ///< a changed partition
};

/// Per-component planning front end; plug-compatible with Planner::plan.
class DecomposedPlanner {
 public:
  /// `pool`, when non-null, runs per-component model/solve phases as pool
  /// jobs (NOT owned; must outlive the planner). Pass nullptr from inside
  /// pool jobs — SweepRunner is not re-entrant.
  explicit DecomposedPlanner(DecomposeConfig cfg = {},
                             SweepRunner* pool = nullptr)
      : cfg_(cfg), pool_(pool), fallback_(cfg.fallback_cache) {}

  /// Plan one round, decomposing when the interference graph separates
  /// and every flow stays inside one component; otherwise fall back to a
  /// monolithic solve (same signature and semantics as Planner::plan, so
  /// replay/serving layers can swap the two). `cacheable = false`
  /// propagates to every component planner (repaired snapshots never
  /// become resident cache entries, as in Planner).
  [[nodiscard]] RatePlan plan(const MeasurementSnapshot& snap,
                              InterferenceModelKind kind,
                              const std::vector<FlowSpec>& flows,
                              const PlanConfig& cfg,
                              std::size_t mis_cap = 200000,
                              bool cacheable = true);

  [[nodiscard]] const DecomposeStats& stats() const { return stats_; }
  /// Value copy of the counters (the serving layer diffs two snapshots).
  [[nodiscard]] DecomposeStats stats_snapshot() const { return stats_; }

  /// Aggregated Planner counters: the fallback planner plus every
  /// component slot, summed — the drop-in replacement for
  /// Planner::stats_snapshot() in serving metrics.
  [[nodiscard]] PlannerStats planner_stats_snapshot() const;

  /// The most recent decomposed round's partition (empty before one).
  [[nodiscard]] const ComponentPartition& partition() const {
    return partition_;
  }
  /// Number of component slots currently held.
  [[nodiscard]] int components() const {
    return static_cast<int>(slots_.size());
  }
  /// Cache counters of one component's private planner.
  /// @throws std::out_of_range on an invalid component index.
  [[nodiscard]] const PlannerStats& component_planner_stats(int c) const;

  /// Drop all partition state, component slots, and counters.
  void clear();

  /// Attach a trace recorder (borrowed; nullptr detaches). Fallback rounds
  /// emit a kComponent event naming the reason (degenerate / connected /
  /// cross-component) and plan through the observed monolithic planner;
  /// decomposed rounds emit one kComponentSolve span per active component
  /// (a = component id, b = (links << 32) | flows) in component order on
  /// the calling thread. Component-slot planners (cache/model/pricing
  /// records) are observed only when phase A runs serially — pool jobs
  /// must not share the single-owner recorder, so a pooled round keeps
  /// the per-component solve spans but drops the slot-level detail.
  void set_observer(TraceRecorder* obs) {
    obs_ = obs;
    fallback_.set_observer(obs);
  }
  [[nodiscard]] TraceRecorder* observer() const { return obs_; }

 private:
  /// One interference component's private planning state. Slots live as
  /// long as the partition's membership is unchanged, so their Planner
  /// caches and fast-tier warm state persist across rounds — including
  /// rounds where OTHER components churned.
  struct Slot {
    std::vector<int> members;  ///< global link ids, ascending
    Planner planner;
    NetworkOptimizer exact;
    LpSolver oracle_lp;  ///< exact-tier joint-FW oracle workspace

    Slot(std::vector<int> m, std::size_t cache)
        : members(std::move(m)), planner(cache) {}
  };

  RatePlan fallback_plan(const MeasurementSnapshot& snap,
                         InterferenceModelKind kind,
                         const std::vector<FlowSpec>& flows,
                         const PlanConfig& cfg, std::size_t mis_cap,
                         bool cacheable, std::uint64_t DecomposeStats::*why);

  DecomposeConfig cfg_;
  SweepRunner* pool_ = nullptr;  ///< not owned; may be null
  Planner fallback_;
  ComponentPartition partition_;
  std::vector<std::unique_ptr<Slot>> slots_;
  DecomposeStats stats_;
  TraceRecorder* obs_ = nullptr;  ///< borrowed; see set_observer()
};

}  // namespace meshopt
