#include "obs/obs.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "util/json.h"

namespace meshopt {

const char* to_string(ObsStage stage) {
  switch (stage) {
    case ObsStage::kRound: return "round";
    case ObsStage::kSense: return "sense";
    case ObsStage::kValidate: return "validate";
    case ObsStage::kModel: return "model";
    case ObsStage::kPlan: return "plan";
    case ObsStage::kApply: return "apply";
    case ObsStage::kHealth: return "health";
    case ObsStage::kCache: return "cache";
    case ObsStage::kPricing: return "pricing";
    case ObsStage::kComponent: return "component";
    case ObsStage::kSegment: return "segment";
    case ObsStage::kServe: return "serve";
    case ObsStage::kStageCount: break;
  }
  return "unknown";
}

const char* to_string(ObsKind kind) {
  return kind == ObsKind::kSpan ? "span" : "event";
}

const char* to_string(ObsCode code) {
  switch (code) {
    case ObsCode::kNone: return "none";
    case ObsCode::kCacheHit: return "cache_hit";
    case ObsCode::kCacheMiss: return "cache_miss";
    case ObsCode::kCacheUncacheable: return "cache_uncacheable";
    case ObsCode::kCacheEvict: return "cache_evict";
    case ObsCode::kHealthTransition: return "health_transition";
    case ObsCode::kBackoffSkip: return "backoff_skip";
    case ObsCode::kSnapshotReject: return "snapshot_reject";
    case ObsCode::kPlanReject: return "plan_reject";
    case ObsCode::kFallbackEntry: return "fallback_entry";
    case ObsCode::kRecovery: return "recovery";
    case ObsCode::kWarmStart: return "warm_start";
    case ObsCode::kColdStart: return "cold_start";
    case ObsCode::kPricingSolve: return "pricing_solve";
    case ObsCode::kComponentSolve: return "component_solve";
    case ObsCode::kFallbackDegenerate: return "fallback_degenerate";
    case ObsCode::kFallbackConnected: return "fallback_connected";
    case ObsCode::kFallbackCross: return "fallback_cross";
    case ObsCode::kServeOk: return "serve_ok";
    case ObsCode::kServeError: return "serve_error";
    case ObsCode::kCellError: return "cell_error";
  }
  return "unknown";
}

bool deterministic_equal(const ObsRecord& x, const ObsRecord& y) {
  return x.round == y.round && x.lane == y.lane && x.seq == y.seq &&
         x.stage == y.stage && x.kind == y.kind && x.code == y.code &&
         x.a == y.a && x.b == y.b;
}

namespace {

// Canonical record order: lane, then round, then emission sequence. Ties
// (distinct producers reusing a (lane, round) pair) fall back to the
// absorption order via stable_sort.
bool canonical_less(const ObsRecord& x, const ObsRecord& y) {
  if (x.lane != y.lane) return x.lane < y.lane;
  if (x.round != y.round) return x.round < y.round;
  return x.seq < y.seq;
}

void append_hex(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "\"0x%016" PRIx64 "\"", v);
  out += buf;
}

void append_record_json(std::string& out, const ObsRecord& r) {
  out += "{\"round\":";
  json_append_int(out, static_cast<long long>(r.round));
  out += ",\"lane\":";
  json_append_int(out, r.lane);
  out += ",\"seq\":";
  json_append_int(out, r.seq);
  out += ",\"stage\":";
  json_append_string(out, to_string(r.stage));
  out += ",\"kind\":";
  json_append_string(out, to_string(r.kind));
  out += ",\"code\":";
  json_append_string(out, to_string(r.code));
  out += ",\"a\":";
  append_hex(out, r.a);
  out += ",\"b\":";
  append_hex(out, r.b);
  out += ",\"wall_ns\":";
  json_append_int(out, static_cast<long long>(r.wall_ns));
  out += ",\"wall_dur_ns\":";
  json_append_int(out, static_cast<long long>(r.wall_dur_ns));
  out += '}';
}

// Health-state names matching core/guard.h's to_string(HealthState); kept
// local so obs does not depend on the guard layer.
const char* health_name(std::uint64_t state) {
  switch (state) {
    case 0: return "HEALTHY";
    case 1: return "DEGRADED";
    case 2: return "FALLBACK";
    default: return "UNKNOWN";
  }
}

}  // namespace

std::string IncidentReport::to_json() const {
  std::string out;
  out.reserve(512 + window.size() * 160);
  out += "{\"schema\":\"meshopt-incident-v1\",\"code\":";
  json_append_string(out, to_string(code));
  out += ",\"round\":";
  json_append_int(out, static_cast<long long>(round));
  out += ",\"lane\":";
  json_append_int(out, lane);
  out += ",\"detail\":";
  json_append_string(out, detail);

  // Health trajectory: the transition events inside the window.
  out += ",\"health\":[";
  bool first = true;
  for (const ObsRecord& r : window) {
    if (r.stage != ObsStage::kHealth || r.code != ObsCode::kHealthTransition)
      continue;
    if (!first) out += ',';
    first = false;
    out += "{\"round\":";
    json_append_int(out, static_cast<long long>(r.round));
    out += ",\"from\":";
    json_append_string(out, health_name(r.a));
    out += ",\"to\":";
    json_append_string(out, health_name(r.b));
    out += '}';
  }
  out += ']';

  // Per-stage rollup over the window: record counts plus wall timing
  // (wall_ns_total stays 0 in deterministic-only traces).
  struct StageAgg {
    std::uint64_t spans = 0;
    std::uint64_t events = 0;
    std::uint64_t wall_ns_total = 0;
  };
  StageAgg agg[static_cast<std::size_t>(ObsStage::kStageCount)] = {};
  for (const ObsRecord& r : window) {
    StageAgg& s = agg[static_cast<std::size_t>(r.stage)];
    if (r.kind == ObsKind::kSpan) {
      ++s.spans;
      s.wall_ns_total += r.wall_dur_ns;
    } else {
      ++s.events;
    }
  }
  out += ",\"stages\":[";
  first = true;
  for (std::size_t i = 0; i < static_cast<std::size_t>(ObsStage::kStageCount);
       ++i) {
    if (agg[i].spans == 0 && agg[i].events == 0) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"stage\":";
    json_append_string(out, to_string(static_cast<ObsStage>(i)));
    out += ",\"spans\":";
    json_append_int(out, static_cast<long long>(agg[i].spans));
    out += ",\"events\":";
    json_append_int(out, static_cast<long long>(agg[i].events));
    out += ",\"wall_ns_total\":";
    json_append_int(out, static_cast<long long>(agg[i].wall_ns_total));
    out += '}';
  }
  out += ']';

  out += ",\"records\":[";
  first = true;
  for (const ObsRecord& r : window) {
    if (!first) out += ',';
    first = false;
    append_record_json(out, r);
  }
  out += "]}";
  return out;
}

TraceRecorder::TraceRecorder(ObsConfig cfg) : cfg_(cfg) {
  if (cfg_.ring_capacity == 0) cfg_.ring_capacity = 1;
  if (cfg_.sample_every == 0) cfg_.sample_every = 1;
}

void TraceRecorder::set_context(std::uint32_t lane, std::uint64_t round) {
  if (lane != lane_ || round != round_) {
    lane_ = lane;
    round_ = round;
    seq_ = 0;
  }
}

std::uint64_t TraceRecorder::now_ns() const {
  if (!cfg_.wall_clock) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void TraceRecorder::push(const ObsRecord& rec) {
  ++emitted_;
  if (ring_.size() < cfg_.ring_capacity) {
    ring_.push_back(rec);
    return;
  }
  ring_[head_] = rec;
  head_ = (head_ + 1) % ring_.size();
  ++dropped_;
}

void TraceRecorder::emit(ObsStage stage, ObsKind kind, ObsCode code,
                         std::uint64_t a, std::uint64_t b,
                         std::uint64_t wall_ns, std::uint64_t wall_dur_ns) {
  if (kind == ObsKind::kSpan && !sampled()) return;
  ObsRecord rec;
  rec.round = round_;
  rec.lane = lane_;
  rec.seq = seq_++;
  rec.stage = stage;
  rec.kind = kind;
  rec.code = code;
  rec.a = a;
  rec.b = b;
  rec.wall_ns = wall_ns;
  rec.wall_dur_ns = wall_dur_ns;
  push(rec);
  if (kind == ObsKind::kSpan && wall_dur_ns > 0) {
    if (stage_hist_.empty()) {
      // Latency-flavored binning: 100ns .. 10s at 8 bins/octave.
      stage_hist_.assign(static_cast<std::size_t>(ObsStage::kStageCount),
                         QuantileSketch(1e2, 1e10, 8));
    }
    stage_hist_[static_cast<std::size_t>(stage)].add(
        static_cast<double>(wall_dur_ns));
    stage_hist_mask_ |= 1u << static_cast<std::uint32_t>(stage);
  }
}

void TraceRecorder::trigger_incident(ObsCode code, std::string detail) {
  emit(ObsStage::kHealth, ObsKind::kEvent, code);
  if (incidents_.size() >= cfg_.max_incidents) {
    ++incidents_dropped_;
    return;
  }
  IncidentReport report;
  report.code = code;
  report.round = round_;
  report.lane = lane_;
  report.detail = std::move(detail);
  const std::uint64_t window = cfg_.flight_window == 0 ? 1 : cfg_.flight_window;
  const std::uint64_t lo = round_ >= window - 1 ? round_ - (window - 1) : 0;
  std::vector<ObsRecord> chron;
  append_chronological(chron);
  for (const ObsRecord& r : chron) {
    if (r.lane == lane_ && r.round >= lo && r.round <= round_)
      report.window.push_back(r);
  }
  std::stable_sort(report.window.begin(), report.window.end(), canonical_less);
  incidents_.push_back(std::move(report));
}

void TraceRecorder::absorb(TraceRecorder& other) {
  if (&other == this) return;
  std::vector<ObsRecord> chron;
  other.append_chronological(chron);
  for (const ObsRecord& r : chron) push(r);
  // push() counted each record as a fresh emit; re-base onto the true
  // lifetime totals carried over from the other recorder.
  emitted_ += other.emitted_ - chron.size();
  dropped_ += other.dropped_;
  for (IncidentReport& inc : other.incidents_) {
    if (incidents_.size() >= cfg_.max_incidents) {
      ++incidents_dropped_;
      continue;
    }
    incidents_.push_back(std::move(inc));
  }
  incidents_dropped_ += other.incidents_dropped_;
  if (other.stage_hist_mask_ != 0) {
    if (stage_hist_.empty()) {
      stage_hist_.assign(static_cast<std::size_t>(ObsStage::kStageCount),
                         QuantileSketch(1e2, 1e10, 8));
    }
    for (std::size_t i = 0; i < other.stage_hist_.size(); ++i)
      stage_hist_[i].merge(other.stage_hist_[i]);
    stage_hist_mask_ |= other.stage_hist_mask_;
  }
  other.clear();
}

void TraceRecorder::append_chronological(std::vector<ObsRecord>& out) const {
  out.reserve(out.size() + ring_.size());
  if (ring_.size() < cfg_.ring_capacity || head_ == 0) {
    out.insert(out.end(), ring_.begin(), ring_.end());
    return;
  }
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(head_));
}

std::vector<ObsRecord> TraceRecorder::canonical_records(
    bool include_wall) const {
  std::vector<ObsRecord> out;
  append_chronological(out);
  std::stable_sort(out.begin(), out.end(), canonical_less);
  if (!include_wall) {
    for (ObsRecord& r : out) {
      r.wall_ns = 0;
      r.wall_dur_ns = 0;
    }
  }
  return out;
}

void TraceRecorder::clear() {
  ring_.clear();
  head_ = 0;
  emitted_ = 0;
  dropped_ = 0;
  incidents_.clear();
  incidents_dropped_ = 0;
  stage_hist_.clear();
  stage_hist_mask_ = 0;
}

const QuantileSketch* TraceRecorder::stage_wall_ns(ObsStage stage) const {
  const auto i = static_cast<std::uint32_t>(stage);
  if ((stage_hist_mask_ & (1u << i)) == 0) return nullptr;
  return &stage_hist_[i];
}

std::vector<std::pair<ObsStage, const QuantileSketch*>>
TraceRecorder::stage_histograms() const {
  std::vector<std::pair<ObsStage, const QuantileSketch*>> out;
  for (std::size_t i = 0; i < static_cast<std::size_t>(ObsStage::kStageCount);
       ++i) {
    const auto stage = static_cast<ObsStage>(i);
    if (const QuantileSketch* s = stage_wall_ns(stage)) out.emplace_back(stage, s);
  }
  return out;
}

}  // namespace meshopt
