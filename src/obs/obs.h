#pragma once
// Control-loop tracing: deterministic round spans, a flight recorder, and
// the record types every exporter consumes.
//
// The control path (controller, planner, column generation, decomposition,
// fleet replay, plan serving) emits fixed-size typed records into a
// TraceRecorder. Records are timestamped by (round index, intra-round
// sequence number) — simulation logical time — so a fixed replay produces
// bit-identical traces whatever the pool thread count. Wall-clock fields
// ride along as *enrichment* outside the determinism contract (the same
// split ServeCounters already uses for wall_* fields): they are zero unless
// ObsConfig::wall_clock is set and are excluded from canonical comparisons.
//
// Concurrency model: a TraceRecorder is single-owner, like Planner and
// PlanService. Parallel stages (fleet segment jobs, per-tenant serve jobs)
// write into job/session-local recorders that the orchestrator absorbs on
// the calling thread in deterministic (job-index / batch) order — no locks,
// no thread registration, and shard assignment cannot leak into the trace.
//
// Everything is off-by-default: components hold a borrowed TraceRecorder*
// that is null unless attached, and every hook is a single branch when
// disabled.

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.h"

namespace meshopt {

/// Which pipeline stage a record belongs to. One Perfetto lane per stage
/// (components get their own sub-lanes keyed by the record payload).
enum class ObsStage : std::uint8_t {
  kRound = 0,   ///< whole-round span (guarded or unguarded)
  kSense,       ///< probing-window simulation (live source only)
  kValidate,    ///< SnapshotValidator verdict + repair findings
  kModel,       ///< interference-model build (planner cache miss path)
  kPlan,        ///< rate-plan solve
  kApply,       ///< plan actuation
  kHealth,      ///< health-machine transitions / backoff / rejects
  kCache,       ///< planner cache hit/miss/uncacheable/evict
  kPricing,     ///< column-generation pricing activity
  kComponent,   ///< decomposed per-component solves + fallbacks
  kSegment,     ///< fleet replay segment
  kServe,       ///< per-tenant serve span in PlanService::run_batch
  kStageCount,  ///< sentinel — number of stages
};

/// Human-readable stage name ("round", "plan", ...). Stable across runs —
/// exporters and golden fixtures key on it.
[[nodiscard]] const char* to_string(ObsStage stage);

/// Record flavor: instantaneous event vs a stage span. Sampling
/// (ObsConfig::sample_every) applies to spans only; events (health
/// transitions, cache activity, incident triggers) are always recorded so
/// the flight recorder never misses a trajectory step.
enum class ObsKind : std::uint8_t {
  kEvent = 0,
  kSpan = 1,
};

[[nodiscard]] const char* to_string(ObsKind kind);

/// Qualifier for a record (and the trigger kind of an IncidentReport).
enum class ObsCode : std::uint16_t {
  kNone = 0,
  // kCache events; payload a = topology fingerprint.
  kCacheHit,          ///< fingerprint hit; capacities refreshed in place
  kCacheMiss,         ///< cold build inserted into the LRU
  kCacheUncacheable,  ///< repaired snapshot — planned cold, never cached
  kCacheEvict,        ///< LRU eviction; a = evicted fingerprint
  // kHealth events.
  kHealthTransition,  ///< a = from HealthState, b = to HealthState
  kBackoffSkip,       ///< round skipped by fallback backoff
  kSnapshotReject,    ///< validator rejected the snapshot
  kPlanReject,        ///< plan guardrail rejected the solve (incident trigger)
  kFallbackEntry,     ///< health machine entered FALLBACK (incident trigger)
  kRecovery,          ///< health machine returned to HEALTHY
  // kPricing records.
  kWarmStart,   ///< column-gen solve reused a prior basis/column set
  kColdStart,   ///< column-gen solve seeded from scratch
  kPricingSolve,  ///< span: a = pricing rounds, b = columns admitted
  // kComponent records.
  kComponentSolve,       ///< span: a = component id, b = (links<<32)|flows
  kFallbackDegenerate,   ///< decomposition fell back: no links/flows
  kFallbackConnected,    ///< decomposition fell back: graph is one component
  kFallbackCross,        ///< decomposition fell back: cross-component flow
  // kServe / kSegment records.
  kServeOk,      ///< span: tenant plan produced; a = round sequence
  kServeError,   ///< span: tenant plan errored (also an incident trigger)
  kCellError,    ///< fleet cell died with an error (incident trigger)
};

[[nodiscard]] const char* to_string(ObsCode code);

/// One trace record: fixed-size, trivially copyable, no indirection — the
/// hot-path emit is a struct store into a preallocated ring.
///
/// Determinism contract: every field except wall_ns / wall_dur_ns is a pure
/// function of the inputs and the replay configuration. (round, lane, seq)
/// totally orders the records of one producer; canonical_records() sorts by
/// it so absorption order across thread counts cannot show through.
struct ObsRecord {
  std::uint64_t round = 0;  ///< round index within the lane
  std::uint32_t lane = 0;   ///< cell / tenant id (0 for a lone controller)
  std::uint32_t seq = 0;    ///< intra-(lane, round) emission order
  ObsStage stage = ObsStage::kRound;
  ObsKind kind = ObsKind::kEvent;
  ObsCode code = ObsCode::kNone;
  std::uint64_t a = 0;  ///< stage-specific payload (fingerprint, counts, ...)
  std::uint64_t b = 0;  ///< stage-specific payload
  std::uint64_t wall_ns = 0;      ///< span start / event wall time (enrichment)
  std::uint64_t wall_dur_ns = 0;  ///< span wall duration (enrichment)
};

/// Field-by-field equality over the deterministic fields only (wall_ns and
/// wall_dur_ns are excluded — they are outside the contract).
[[nodiscard]] bool deterministic_equal(const ObsRecord& x, const ObsRecord& y);

/// Recorder tuning. The defaults are the "default sampling" the benchmark
/// acceptance bar (<=1.03x on BM_ControllerRound / BM_ServeBatch) is
/// measured at.
struct ObsConfig {
  std::size_t ring_capacity = 1 << 14;  ///< records retained; oldest overwritten
  std::uint64_t sample_every = 1;  ///< record spans every Nth round (events always)
  bool wall_clock = false;  ///< enrich records with steady-clock timestamps
  std::uint64_t flight_window = 20;  ///< rounds of context per IncidentReport
  std::size_t max_incidents = 16;    ///< reports retained per recorder
};

/// Flight-recorder snapshot: the last flight_window rounds of records for
/// the lane that tripped a trigger (FALLBACK entry, plan-guardrail reject,
/// fleet-cell error), plus the triggering round and a free-form detail
/// string (e.g. the cell's exception text).
struct IncidentReport {
  ObsCode code = ObsCode::kNone;  ///< trigger kind
  std::uint64_t round = 0;        ///< triggering round index
  std::uint32_t lane = 0;         ///< triggering lane
  std::string detail;             ///< optional context (error text)
  std::vector<ObsRecord> window;  ///< canonical-order records, last N rounds

  /// Structured JSON: schema tag, trigger, health trajectory (from the
  /// kHealth records in the window), per-stage record counts + wall
  /// timings, and the raw record window. Payload words serialize as hex
  /// strings (they may exceed the double-exact integer range).
  [[nodiscard]] std::string to_json() const;
};

/// Deterministic trace recorder + flight recorder. Single-owner; see the
/// file comment for the absorption-based concurrency model.
class TraceRecorder {
 public:
  TraceRecorder() : TraceRecorder(ObsConfig{}) {}
  explicit TraceRecorder(ObsConfig cfg);

  [[nodiscard]] const ObsConfig& config() const { return cfg_; }

  /// Set the ambient (lane, round) stamped onto subsequent records. Resets
  /// the intra-round sequence counter when the pair changes.
  void set_context(std::uint32_t lane, std::uint64_t round);
  [[nodiscard]] std::uint32_t lane() const { return lane_; }
  [[nodiscard]] std::uint64_t round() const { return round_; }

  /// True when the current round's spans are recorded under sample_every.
  [[nodiscard]] bool sampled() const {
    return cfg_.sample_every <= 1 || round_ % cfg_.sample_every == 0;
  }

  /// Append one record stamped with the ambient context. Spans in
  /// non-sampled rounds are dropped; events are always kept.
  void emit(ObsStage stage, ObsKind kind, ObsCode code, std::uint64_t a = 0,
            std::uint64_t b = 0, std::uint64_t wall_ns = 0,
            std::uint64_t wall_dur_ns = 0);

  /// Steady-clock nanoseconds when wall_clock is enabled, else 0 (so the
  /// wall fields of every record stay zero and bit-compare clean).
  [[nodiscard]] std::uint64_t now_ns() const;

  /// Snapshot the last flight_window rounds of this lane's records into an
  /// IncidentReport. Also emits a matching event record. Reports beyond
  /// max_incidents are counted in incidents_dropped() instead of stored.
  void trigger_incident(ObsCode code, std::string detail = {});
  [[nodiscard]] const std::vector<IncidentReport>& incidents() const {
    return incidents_;
  }
  [[nodiscard]] std::uint64_t incidents_dropped() const {
    return incidents_dropped_;
  }

  /// Move another recorder's records, incidents, drop counts, and stage
  /// histograms into this one, then clear it (its config and ambient
  /// context survive, so session/job recorders are reusable). Callers must
  /// absorb in a deterministic order (job index, batch order) — that order
  /// breaks canonical-sort ties.
  void absorb(TraceRecorder& other);

  /// Records in canonical (lane, round, seq) order. With include_wall
  /// false the wall fields are zeroed — the bit-comparable deterministic
  /// view the cross-thread-count tests pin.
  [[nodiscard]] std::vector<ObsRecord> canonical_records(
      bool include_wall = true) const;

  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  /// Lifetime totals: records emitted, and records lost to ring overwrite
  /// (a trace with drops is still honest — dropped counts are reported,
  /// and determinism holds whenever capacity sufficed for zero drops).
  [[nodiscard]] std::uint64_t records_emitted() const { return emitted_; }
  [[nodiscard]] std::uint64_t records_dropped() const { return dropped_; }

  /// Drop all records, incidents, histograms, and counters (config and
  /// ambient context survive).
  void clear();

  /// Wall-duration histogram for one stage's spans, or nullptr when no
  /// enriched span of that stage was recorded. Enrichment only — populated
  /// solely from nonzero wall durations (requires wall_clock).
  [[nodiscard]] const QuantileSketch* stage_wall_ns(ObsStage stage) const;

  /// Every populated (stage, histogram) pair, stage-ordered — the
  /// Prometheus stage-duration exposition walks this.
  [[nodiscard]] std::vector<std::pair<ObsStage, const QuantileSketch*>>
  stage_histograms() const;

 private:
  ObsConfig cfg_;
  std::uint32_t lane_ = 0;
  std::uint64_t round_ = 0;
  std::uint32_t seq_ = 0;

  std::vector<ObsRecord> ring_;  ///< grows to ring_capacity, then wraps
  std::size_t head_ = 0;         ///< next overwrite slot once full
  std::uint64_t emitted_ = 0;
  std::uint64_t dropped_ = 0;

  std::vector<IncidentReport> incidents_;
  std::uint64_t incidents_dropped_ = 0;

  std::vector<QuantileSketch> stage_hist_;  ///< sized lazily to kStageCount
  std::uint32_t stage_hist_mask_ = 0;       ///< bit set when stage populated

  void push(const ObsRecord& rec);
  void append_chronological(std::vector<ObsRecord>& out) const;
};

/// RAII span helper: measures wall time (when enabled) around a stage and
/// emits a kSpan record on destruction. Construct with a possibly-null
/// recorder — a null or non-sampled recorder makes every method a no-op.
class ObsSpan {
 public:
  ObsSpan(TraceRecorder* rec, ObsStage stage, ObsCode code = ObsCode::kNone)
      : rec_(rec != nullptr && rec->sampled() ? rec : nullptr),
        stage_(stage),
        code_(code),
        t0_(rec_ != nullptr ? rec_->now_ns() : 0) {}
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

  /// Set the record's payload words (deterministic data only).
  void payload(std::uint64_t a, std::uint64_t b = 0) {
    a_ = a;
    b_ = b;
  }
  /// Override the qualifier decided mid-stage (e.g. warm vs cold).
  void code(ObsCode c) { code_ = c; }

  ~ObsSpan() {
    if (rec_ == nullptr) return;
    const std::uint64_t t1 = rec_->now_ns();
    rec_->emit(stage_, ObsKind::kSpan, code_, a_, b_, t0_,
               t1 >= t0_ ? t1 - t0_ : 0);
  }

 private:
  TraceRecorder* rec_;
  ObsStage stage_;
  ObsCode code_;
  std::uint64_t a_ = 0;
  std::uint64_t b_ = 0;
  std::uint64_t t0_;
};

}  // namespace meshopt
