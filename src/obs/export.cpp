#include "obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <set>
#include <utility>

#include "util/json.h"

namespace meshopt {

namespace {

// tid assignment: one Perfetto lane per stage; decomposed component solves
// fan out into their own sub-lanes above kComponentTidBase.
constexpr std::uint32_t kComponentTidBase = 100;

std::uint32_t record_tid(const ObsRecord& r) {
  if (r.stage == ObsStage::kComponent && r.code == ObsCode::kComponentSolve)
    return kComponentTidBase + static_cast<std::uint32_t>(r.a & 0xffff);
  return static_cast<std::uint32_t>(r.stage);
}

std::string tid_name(std::uint32_t tid) {
  if (tid >= kComponentTidBase) {
    return "component-" + std::to_string(tid - kComponentTidBase);
  }
  return to_string(static_cast<ObsStage>(tid));
}

// Deterministic timeline: each round owns a 1000us slot. The round span
// fills it; nested stage records sit at seq offsets inside.
double synth_ts(const ObsRecord& r) {
  const double base = static_cast<double>(r.round) * 1000.0;
  if (r.stage == ObsStage::kRound) return base;
  const double off = static_cast<double>(std::min<std::uint32_t>(r.seq, 89));
  return base + 10.0 + off * 10.0;
}

double synth_dur(const ObsRecord& r) {
  return r.stage == ObsStage::kRound ? 1000.0 : 8.0;
}

void append_ts(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  out += buf;
}

void append_hex(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "\"0x%016" PRIx64 "\"", v);
  out += buf;
}

struct TraceEvent {
  double ts = 0.0;
  double dur = 0.0;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  const ObsRecord* rec = nullptr;
};

void append_metric_double(std::string& out, double v) {
  if (std::isinf(v)) {
    out += v > 0 ? "+Inf" : "-Inf";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

std::string chrome_trace_json(const std::vector<ObsRecord>& records,
                              const ChromeTraceOptions& opts) {
  std::vector<TraceEvent> events;
  events.reserve(records.size());
  std::set<std::uint32_t> pids;
  std::set<std::pair<std::uint32_t, std::uint32_t>> lanes;
  for (const ObsRecord& r : records) {
    TraceEvent ev;
    if (opts.use_wall_clock && r.wall_ns > 0) {
      ev.ts = static_cast<double>(r.wall_ns) / 1000.0;
      ev.dur = static_cast<double>(r.wall_dur_ns) / 1000.0;
    } else {
      ev.ts = synth_ts(r);
      ev.dur = r.kind == ObsKind::kSpan ? synth_dur(r) : 0.0;
    }
    ev.pid = r.lane;
    ev.tid = record_tid(r);
    ev.rec = &r;
    pids.insert(ev.pid);
    lanes.insert({ev.pid, ev.tid});
    events.push_back(ev);
  }
  // Per-(pid, tid) monotone ts is part of the exported contract
  // (tools/check_trace_json.py pins it); a global stable sort guarantees it
  // in both timestamp modes.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& x, const TraceEvent& y) {
                     return x.ts < y.ts;
                   });

  std::string out;
  out.reserve(256 + records.size() * 200);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const std::uint32_t pid : pids) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"pid\":";
    json_append_int(out, pid);
    out += ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":";
    json_append_string(out, opts.process_name + " lane " + std::to_string(pid));
    out += "}}";
  }
  for (const auto& [pid, tid] : lanes) {
    out += ",{\"ph\":\"M\",\"pid\":";
    json_append_int(out, pid);
    out += ",\"tid\":";
    json_append_int(out, tid);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":";
    json_append_string(out, tid_name(tid));
    out += "}}";
  }
  for (const TraceEvent& ev : events) {
    const ObsRecord& r = *ev.rec;
    if (!first) out += ',';
    first = false;
    if (r.kind == ObsKind::kSpan) {
      out += "{\"ph\":\"X\",\"name\":";
    } else {
      out += "{\"ph\":\"i\",\"s\":\"t\",\"name\":";
    }
    json_append_string(out, r.code == ObsCode::kNone
                                ? std::string(to_string(r.stage))
                                : std::string(to_string(r.code)));
    out += ",\"cat\":";
    json_append_string(out, to_string(r.stage));
    out += ",\"pid\":";
    json_append_int(out, ev.pid);
    out += ",\"tid\":";
    json_append_int(out, ev.tid);
    out += ",\"ts\":";
    append_ts(out, ev.ts);
    if (r.kind == ObsKind::kSpan) {
      out += ",\"dur\":";
      append_ts(out, ev.dur);
    }
    out += ",\"args\":{\"round\":";
    json_append_int(out, static_cast<long long>(r.round));
    out += ",\"seq\":";
    json_append_int(out, r.seq);
    out += ",\"code\":";
    json_append_string(out, to_string(r.code));
    out += ",\"a\":";
    append_hex(out, r.a);
    out += ",\"b\":";
    append_hex(out, r.b);
    out += "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

std::string chrome_trace_json(const TraceRecorder& rec,
                              const ChromeTraceOptions& opts) {
  return chrome_trace_json(rec.canonical_records(opts.use_wall_clock), opts);
}

void prometheus_append_histogram(std::string& out, const std::string& name,
                                 const std::string& labels,
                                 const QuantileSketch& sketch) {
  const std::string prefix = labels.empty() ? "" : labels + ",";
  std::uint64_t cum = 0;
  for (const SketchBucket& b : sketch.buckets()) {
    cum += b.count;
    out += name + "_bucket{" + prefix + "le=\"";
    append_metric_double(out, b.upper_bound);
    out += "\"} ";
    out += std::to_string(cum);
    out += '\n';
  }
  out += name + "_bucket{" + prefix + "le=\"+Inf\"} ";
  out += std::to_string(sketch.count());
  out += '\n';
  out += name + "_sum";
  if (!labels.empty()) out += "{" + labels + "}";
  out += ' ';
  append_metric_double(out, sketch.sum());
  out += '\n';
  out += name + "_count";
  if (!labels.empty()) out += "{" + labels + "}";
  out += ' ';
  out += std::to_string(sketch.count());
  out += '\n';
}

std::string prometheus_stage_text(const TraceRecorder& rec) {
  std::string out;
  out +=
      "# HELP meshopt_stage_wall_ns Wall-clock stage duration in "
      "nanoseconds (wall-enriched traces only).\n"
      "# TYPE meshopt_stage_wall_ns histogram\n";
  for (const auto& [stage, sketch] : rec.stage_histograms()) {
    prometheus_append_histogram(
        out, "meshopt_stage_wall_ns",
        std::string("stage=\"") + to_string(stage) + "\"", *sketch);
  }
  out += "# TYPE meshopt_obs_records_emitted_total counter\n";
  out += "meshopt_obs_records_emitted_total " +
         std::to_string(rec.records_emitted()) + "\n";
  out += "# TYPE meshopt_obs_records_dropped_total counter\n";
  out += "meshopt_obs_records_dropped_total " +
         std::to_string(rec.records_dropped()) + "\n";
  out += "# TYPE meshopt_obs_incidents_total counter\n";
  out += "meshopt_obs_incidents_total " +
         std::to_string(rec.incidents().size() + rec.incidents_dropped()) +
         "\n";
  return out;
}

}  // namespace meshopt
