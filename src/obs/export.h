#pragma once
// Exporters over TraceRecorder records:
//   * chrome_trace_json — Chrome trace-event JSON, loadable in Perfetto
//     (ui.perfetto.dev) with one lane (tid) per pipeline stage and
//     per-component sub-lanes; deterministic by default (timestamps are
//     synthesized from round/seq logical time), wall-clock timestamps on
//     request when the trace was recorded with wall enrichment,
//   * prometheus_stage_text — Prometheus-style text exposition of the
//     recorder's stage-duration QuantileSketch histograms and record/
//     incident counters (pairs with ServeMetrics::metrics_text() for the
//     serving plane's counters).

#include <string>
#include <vector>

#include "obs/obs.h"
#include "util/stats.h"

namespace meshopt {

struct ChromeTraceOptions {
  /// Use wall-clock microseconds for ts/dur where recorded (enrichment;
  /// ordering then reflects real time, not the determinism contract).
  /// Default synthesizes deterministic timestamps: a round occupies
  /// [round*1000, round*1000+1000) us with stage records nested at seq
  /// offsets — bit-identical output for a deterministic trace.
  bool use_wall_clock = false;
  /// Process-name prefix shown in the Perfetto timeline per lane.
  std::string process_name = "meshopt";
};

/// Serialize records (canonical order recommended) as Chrome trace-event
/// JSON. Lanes: pid = record lane (cell/tenant), tid = stage (components
/// get tid 100+component). Spans become "X" complete events, events become
/// "i" instant events; thread/process names ride in "M" metadata events.
[[nodiscard]] std::string chrome_trace_json(
    const std::vector<ObsRecord>& records, const ChromeTraceOptions& opts = {});

/// Convenience overload: exports rec.canonical_records(opts.use_wall_clock).
[[nodiscard]] std::string chrome_trace_json(const TraceRecorder& rec,
                                            const ChromeTraceOptions& opts = {});

/// Append one QuantileSketch as a Prometheus histogram family sample set:
/// cumulative `name_bucket{...,le="..."}` lines (derived from buckets()),
/// then `name_sum` and `name_count`. `labels` is the inner label list
/// without braces (e.g. `stage="plan"`), possibly empty.
void prometheus_append_histogram(std::string& out, const std::string& name,
                                 const std::string& labels,
                                 const QuantileSketch& sketch);

/// Prometheus-style text exposition of a recorder: stage wall-duration
/// histograms (populated only for wall-enriched traces) plus record and
/// incident counters.
[[nodiscard]] std::string prometheus_stage_text(const TraceRecorder& rec);

}  // namespace meshopt
