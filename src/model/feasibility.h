#pragma once
// Convex feasibility-region model (paper Section 3).
//
// The region is the convex hull of K extreme points in link-rate space
// (L dimensions), closed downward (any rate vector dominated by a hull
// point is feasible — a link can always send less). Primary extreme points
// are per-link capacities; secondary points come from maximal independent
// sets via Eq. (4).

#include <cstddef>
#include <vector>

#include "model/conflict_graph.h"
#include "util/dense_matrix.h"

namespace meshopt {

/// Eq. (4) on the fast path: map each maximal independent set m to a row
/// of a K x L DenseMatrix holding each member link's capacity (bits/s)
/// and zero elsewhere. Streams the ConflictGraph's packed bitset rows
/// straight into the matrix — no vector<vector<int>> intermediate — so
/// the enumeration's output cost is one row write per set. Row order is
/// the enumeration order of for_each_independent_set_row().
[[nodiscard]] DenseMatrix build_extreme_point_matrix(
    const std::vector<double>& capacities, const ConflictGraph& conflicts,
    std::size_t cap = 200000);

/// Eq. (4) capacity stage on pre-enumerated rows: refill `out` (resized to
/// rows.count() x capacities.size(); same-shape refills reuse capacity)
/// with each member link's capacity. Row order is the rows' enumeration
/// order, so the result is bit-identical to build_extreme_point_matrix
/// over the graph the rows were enumerated from with the same cap — the
/// contract the planner's topology-keyed cache relies on.
void fill_extreme_point_matrix(const std::vector<double>& capacities,
                               const MisRowSet& rows, DenseMatrix& out);

/// In-place capacity refresh of a matrix previously produced by
/// fill_extreme_point_matrix (or build_extreme_point_matrix) over the SAME
/// rows: overwrites each member cell with its link's fresh capacity and
/// touches nothing else. Because a topology fixes the nonzero positions,
/// skipping the zero cells is bit-identical to a full refill while writing
/// only nnz cells instead of K x L — the planner's hot path on a cache
/// hit. @pre out is rows.count() x capacities.size() and was filled from
/// `rows`.
void refresh_extreme_point_matrix(const std::vector<double>& capacities,
                                  const MisRowSet& rows, DenseMatrix& out);

/// Eq. (4), legacy nested-vector output (rows in the sorted-set order of
/// ConflictGraph::maximal_independent_sets()).
///
/// DEPRECATED for hot paths: materializes the MIS list first. Prefer
/// build_extreme_point_matrix(); see ARCHITECTURE.md ("MIS output
/// migration").
[[nodiscard]] std::vector<std::vector<double>> build_extreme_points(
    const std::vector<double>& capacities, const ConflictGraph& conflicts);

/// Convex polytope spanned by extreme points, with downward closure.
class FeasibilityRegion {
 public:
  /// `extreme_points` is K x L (each row one extreme point, bits/s).
  explicit FeasibilityRegion(DenseMatrix extreme_points);

  [[nodiscard]] int num_links() const { return points_.cols(); }
  [[nodiscard]] int num_points() const { return points_.rows(); }
  /// The K x L extreme-point matrix.
  [[nodiscard]] const DenseMatrix& points() const { return points_; }

  /// Largest lambda such that lambda * load is feasible (dominated by a
  /// convex combination of extreme points). Returns +inf for a zero load.
  /// @pre load.size() == num_links(); entries in bits/s.
  [[nodiscard]] double max_scaling(const std::vector<double>& load) const;

  /// Is the load vector inside the region (within tolerance)?
  [[nodiscard]] bool contains(const std::vector<double>& load,
                              double tol = 1e-6) const;

 private:
  DenseMatrix points_;
};

}  // namespace meshopt
