#pragma once
// Convex feasibility-region model (paper Section 3).
//
// The region is the convex hull of K extreme points in link-rate space
// (L dimensions), closed downward (any rate vector dominated by a hull
// point is feasible — a link can always send less). Primary extreme points
// are per-link capacities; secondary points come from maximal independent
// sets via Eq. (4).

#include <vector>

#include "model/conflict_graph.h"

namespace meshopt {

/// Eq. (4): map each maximal independent set m to a secondary extreme
/// point c2[m] = C(1) * v[m], i.e. the vector holding each member link's
/// capacity and zero elsewhere.
[[nodiscard]] std::vector<std::vector<double>> build_extreme_points(
    const std::vector<double>& capacities, const ConflictGraph& conflicts);

/// Convex polytope spanned by extreme points, with downward closure.
class FeasibilityRegion {
 public:
  /// `extreme_points` is K x L (each row one extreme point).
  explicit FeasibilityRegion(std::vector<std::vector<double>> extreme_points);

  [[nodiscard]] int num_links() const { return l_; }
  [[nodiscard]] int num_points() const {
    return static_cast<int>(points_.size());
  }
  [[nodiscard]] const std::vector<std::vector<double>>& points() const {
    return points_;
  }

  /// Largest lambda such that lambda * load is feasible (dominated by a
  /// convex combination of extreme points). Returns +inf for a zero load.
  [[nodiscard]] double max_scaling(const std::vector<double>& load) const;

  /// Is the load vector inside the region (within tolerance)?
  [[nodiscard]] bool contains(const std::vector<double>& load,
                              double tol = 1e-6) const;

 private:
  int l_ = 0;
  std::vector<std::vector<double>> points_;
};

}  // namespace meshopt
