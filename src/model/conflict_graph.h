#pragma once
// Conflict graph over directed links (paper Section 3.2): vertices are
// links, edges mean "mutually exclusive under binary interference". Its
// maximal independent sets are the link sets that can transmit
// simultaneously — they generate the secondary extreme points.
//
// Two builders are provided:
//   * binary-LIR: an edge wherever the measured LIR of the pair is below
//     the threshold (the paper's reference model, Section 4.2),
//   * two-hop: an edge wherever any endpoint of one link is within one
//     hop of an endpoint of the other (the online model, Section 5.5).

#include <functional>
#include <vector>

#include "phy/radio.h"
#include "scenario/workbench.h"

namespace meshopt {

class ConflictGraph {
 public:
  explicit ConflictGraph(int num_links);

  [[nodiscard]] int size() const { return n_; }

  void add_conflict(int a, int b);
  [[nodiscard]] bool conflicts(int a, int b) const;

  [[nodiscard]] int edge_count() const;

  /// All maximal independent sets (maximal cliques of the complement),
  /// enumerated with Bron–Kerbosch + pivoting. `cap` bounds the output as
  /// a safety valve; testbed-scale graphs stay far below it.
  [[nodiscard]] std::vector<std::vector<int>> maximal_independent_sets(
      std::size_t cap = 200000) const;

 private:
  int n_;
  std::vector<std::vector<char>> adj_;
};

/// Binary-LIR conflict graph from a pairwise LIR table (entry (i,j) is the
/// measured LIR of links i and j; diagonal ignored).
[[nodiscard]] ConflictGraph build_lir_conflict_graph(
    const std::vector<std::vector<double>>& lir, double threshold = 0.95);

/// Two-hop interference model: links conflict when they share an endpoint
/// or have endpoints within one hop of each other. `is_neighbor` is the
/// connectivity predicate (decodable in either direction).
[[nodiscard]] ConflictGraph build_two_hop_conflict_graph(
    const std::vector<LinkRef>& links,
    const std::function<bool(NodeId, NodeId)>& is_neighbor);

}  // namespace meshopt
