#pragma once
// Conflict graph over directed links (paper Section 3.2): vertices are
// links, edges mean "mutually exclusive under binary interference". Its
// maximal independent sets are the link sets that can transmit
// simultaneously — they generate the secondary extreme points.
//
// Two builders are provided:
//   * binary-LIR: an edge wherever the measured LIR of the pair is below
//     the threshold (the paper's reference model, Section 4.2),
//   * two-hop: an edge wherever any endpoint of one link is within one
//     hop of an endpoint of the other (the online model, Section 5.5).

#include <cstdint>
#include <functional>
#include <vector>

#include "phy/radio.h"
#include "scenario/workbench.h"
#include "util/dense_matrix.h"

namespace meshopt {

/// Packed maximal-independent-set rows, in Bron–Kerbosch enumeration
/// order: row k occupies words [k*row_words(), (k+1)*row_words()), bit j
/// of word j/64 set iff link j belongs to set k. This is the cacheable
/// product of one enumeration — the topology-dependent half of the
/// extreme-point build (see core/planner.h): capacities can be re-applied
/// to the same rows round after round without re-running Bron–Kerbosch.
class MisRowSet {
 public:
  MisRowSet() = default;
  explicit MisRowSet(int num_links)
      : num_links_(num_links < 0 ? 0 : num_links),
        words_((num_links_ + 63) / 64) {}

  /// Append one packed row (row_words() words, copied).
  void append(const std::uint64_t* bits) {
    bits_.insert(bits_.end(), bits, bits + words_);
    ++count_;
  }

  [[nodiscard]] int count() const { return count_; }
  [[nodiscard]] int num_links() const { return num_links_; }
  [[nodiscard]] int row_words() const { return words_; }
  [[nodiscard]] const std::uint64_t* row(int k) const {
    return bits_.data() +
           static_cast<std::size_t>(k) * static_cast<std::size_t>(words_);
  }

  friend bool operator==(const MisRowSet&, const MisRowSet&) = default;

 private:
  int num_links_ = 0;
  int words_ = 0;
  int count_ = 0;
  std::vector<std::uint64_t> bits_;  ///< count_ rows of words_ words each
};

/// Connected components of a conflict graph, in canonical order: the
/// components are sorted by their smallest member link, and each member
/// list is ascending. Two links in different components can never
/// conflict, so the rate region factors across components (the basis of
/// the decomposition tier, see opt/decompose.h).
struct ComponentPartition {
  /// members[c] = ascending link indices of component c; components
  /// ordered by members[c][0] ascending.
  std::vector<std::vector<int>> members;
  /// component_of[l] = index into members for link l.
  std::vector<int> component_of;

  [[nodiscard]] int count() const { return static_cast<int>(members.size()); }

  friend bool operator==(const ComponentPartition&,
                         const ComponentPartition&) = default;
};

/// Adjacency is stored as packed 64-bit bitset rows (row i, bit j set when
/// links i and j conflict), so set operations in the enumeration are word-
/// parallel AND/ANDNOT + popcount instead of per-vertex scans.
class ConflictGraph {
 public:
  explicit ConflictGraph(int num_links);

  [[nodiscard]] int size() const { return n_; }

  void add_conflict(int a, int b);
  [[nodiscard]] bool conflicts(int a, int b) const;

  [[nodiscard]] int edge_count() const;

  /// All maximal independent sets (maximal cliques of the complement),
  /// enumerated with Bron–Kerbosch + pivoting over bitset intersections.
  /// `cap` bounds the output as a safety valve; testbed-scale graphs stay
  /// far below it. Output is canonical: each set sorted ascending, sets
  /// in lexicographic order.
  ///
  /// DEPRECATED for hot paths: materializes one heap vector per set. Use
  /// for_each_independent_set_row() (packed bitset rows, zero
  /// intermediates) for anything downstream of the enumeration — e.g. the
  /// extreme-point matrix build. Kept for tests and casual callers; see
  /// ARCHITECTURE.md ("MIS output migration") for the mapping.
  [[nodiscard]] std::vector<std::vector<int>> maximal_independent_sets(
      std::size_t cap = 200000) const;

  /// Bitset-row consumer API: invoke `emit` once per maximal independent
  /// set with a packed row of row_words() uint64 words (bit j of word
  /// j/64 set iff link j is in the set). The pointer is only valid during
  /// the call — copy the words out if they must outlive it.
  ///
  /// Sets arrive in Bron–Kerbosch enumeration order, which is
  /// deterministic for a given graph but differs from the sorted order of
  /// maximal_independent_sets(). `cap` bounds the number of emitted sets.
  void for_each_independent_set_row(
      const std::function<void(const std::uint64_t* bits)>& emit,
      std::size_t cap = 200000) const;

  /// Materialize the enumeration into a MisRowSet (rows copied in
  /// enumeration order). This is what the planner caches so constant-
  /// topology rounds skip Bron–Kerbosch entirely; one-shot consumers keep
  /// streaming through for_each_independent_set_row / the matrix bridge.
  [[nodiscard]] MisRowSet independent_set_rows(std::size_t cap = 200000) const;

  /// Connected components via bitset BFS over the packed adjacency rows:
  /// each frontier expansion ORs whole adjacency rows, so the cost is
  /// O(V * row_words) words per component rather than per-edge pointer
  /// chasing. Output is canonical (see ComponentPartition) and the
  /// isolated-vertex case yields singleton components.
  [[nodiscard]] ComponentPartition connected_components() const;

  /// Number of 64-bit words per adjacency row.
  [[nodiscard]] int row_words() const { return words_; }
  /// Raw adjacency row (row_words() words, bit j of word j/64 = conflict).
  [[nodiscard]] const std::uint64_t* row(int i) const {
    return adj_.data() +
           static_cast<std::size_t>(i) * static_cast<std::size_t>(words_);
  }

 private:
  int n_;
  int words_;
  std::vector<std::uint64_t> adj_;  ///< n_ rows of words_ words each
};

/// Binary-LIR conflict graph from a pairwise LIR table (entry (i,j) is the
/// measured LIR of links i and j; diagonal ignored). The table must be
/// square (L×L, aligned with the link order). This is the only entry
/// point: the nested-vector overload was removed once every caller moved
/// to DenseMatrix (use DenseMatrix::from_nested at the boundary if a
/// legacy table arrives as vector<vector<double>>).
[[nodiscard]] ConflictGraph build_lir_conflict_graph(const DenseMatrix& lir,
                                                     double threshold = 0.95);

/// Two-hop interference model: links conflict when they share an endpoint
/// or have endpoints within one hop of each other. `is_neighbor` is the
/// connectivity predicate (decodable in either direction).
[[nodiscard]] ConflictGraph build_two_hop_conflict_graph(
    const std::vector<LinkRef>& links,
    const std::function<bool(NodeId, NodeId)>& is_neighbor);

}  // namespace meshopt
