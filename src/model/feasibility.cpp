#include "model/feasibility.h"

#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "opt/simplex.h"

namespace meshopt {

DenseMatrix build_extreme_point_matrix(const std::vector<double>& capacities,
                                       const ConflictGraph& conflicts,
                                       std::size_t cap) {
  const int l = static_cast<int>(capacities.size());
  if (conflicts.size() != l)
    throw std::invalid_argument(
        "extreme points: conflict graph size != link count");
  DenseMatrix points;
  points.set_cols(l);
  const int words = conflicts.row_words();
  const double* caps = capacities.data();
  conflicts.for_each_independent_set_row(
      [&points, caps, words](const std::uint64_t* bits) {
        double* row = points.append_row();
        for (int w = 0; w < words; ++w) {
          std::uint64_t word = bits[w];
          while (word != 0) {
            const int link = w * 64 + std::countr_zero(word);
            word &= word - 1;
            row[link] = caps[link];
          }
        }
      },
      cap);
  return points;
}

void fill_extreme_point_matrix(const std::vector<double>& capacities,
                               const MisRowSet& rows, DenseMatrix& out) {
  const int l = static_cast<int>(capacities.size());
  if (rows.num_links() != l)
    throw std::invalid_argument(
        "extreme points: MIS row width != link count");
  // Zero everything, then scatter via the refresh path — sharing the one
  // scatter loop makes "refresh is bit-identical to a full refill" true
  // by construction.
  out.resize(rows.count(), l, 0.0);
  refresh_extreme_point_matrix(capacities, rows, out);
}

void refresh_extreme_point_matrix(const std::vector<double>& capacities,
                                  const MisRowSet& rows, DenseMatrix& out) {
  const int l = static_cast<int>(capacities.size());
  if (rows.num_links() != l || out.rows() != rows.count() || out.cols() != l)
    throw std::invalid_argument(
        "extreme points: refresh shape mismatch with MIS rows");
  const int words = rows.row_words();
  const double* caps = capacities.data();
  for (int k = 0; k < rows.count(); ++k) {
    const std::uint64_t* bits = rows.row(k);
    double* row = out.row(k);
    for (int w = 0; w < words; ++w) {
      std::uint64_t word = bits[w];
      while (word != 0) {
        const int link = w * 64 + std::countr_zero(word);
        word &= word - 1;
        row[link] = caps[link];
      }
    }
  }
}

std::vector<std::vector<double>> build_extreme_points(
    const std::vector<double>& capacities, const ConflictGraph& conflicts) {
  const int l = static_cast<int>(capacities.size());
  if (conflicts.size() != l)
    throw std::invalid_argument(
        "extreme points: conflict graph size != link count");
  std::vector<std::vector<double>> points;
  for (const auto& mis : conflicts.maximal_independent_sets()) {
    std::vector<double> c(static_cast<std::size_t>(l), 0.0);
    for (int link : mis)
      c[static_cast<std::size_t>(link)] =
          capacities[static_cast<std::size_t>(link)];
    points.push_back(std::move(c));
  }
  return points;
}

FeasibilityRegion::FeasibilityRegion(DenseMatrix extreme_points)
    : points_(std::move(extreme_points)) {
  if (points_.rows() == 0)
    throw std::invalid_argument("feasibility region needs >= 1 extreme point");
}

double FeasibilityRegion::max_scaling(const std::vector<double>& load) const {
  if (static_cast<int>(load.size()) != num_links())
    throw std::invalid_argument("load arity mismatch");
  bool any_positive = false;
  for (double g : load)
    if (g > 0.0) any_positive = true;
  if (!any_positive) return std::numeric_limits<double>::infinity();

  // Variables: alpha_0..alpha_{K-1}, lambda. Maximize lambda subject to
  //   sum_k alpha_k c_kl - lambda g_l >= 0   for each link l,
  //   sum_k alpha_k = 1, alpha >= 0, lambda >= 0.
  const int k = num_points();
  LpProblem lp;
  lp.num_vars = k + 1;
  lp.objective.assign(static_cast<std::size_t>(k) + 1, 0.0);
  lp.objective.back() = 1.0;

  for (int l = 0; l < num_links(); ++l) {
    double* row = lp.add_row(Relation::kGe, 0.0);
    for (int i = 0; i < k; ++i) row[i] = points_(i, l);
    row[k] = -load[static_cast<std::size_t>(l)];
  }
  double* simplex_row = lp.add_row(Relation::kEq, 1.0);
  for (int i = 0; i < k; ++i) simplex_row[i] = 1.0;

  const LpSolution sol = solve_lp(lp);
  if (sol.status == LpStatus::kUnbounded)
    return std::numeric_limits<double>::infinity();
  if (sol.status != LpStatus::kOptimal) return 0.0;
  return sol.x.back();
}

bool FeasibilityRegion::contains(const std::vector<double>& load,
                                 double tol) const {
  return max_scaling(load) >= 1.0 - tol;
}

}  // namespace meshopt
