#include "model/feasibility.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "opt/simplex.h"

namespace meshopt {

std::vector<std::vector<double>> build_extreme_points(
    const std::vector<double>& capacities, const ConflictGraph& conflicts) {
  const int l = static_cast<int>(capacities.size());
  if (conflicts.size() != l)
    throw std::invalid_argument(
        "extreme points: conflict graph size != link count");
  std::vector<std::vector<double>> points;
  for (const auto& mis : conflicts.maximal_independent_sets()) {
    std::vector<double> c(static_cast<std::size_t>(l), 0.0);
    for (int link : mis)
      c[static_cast<std::size_t>(link)] =
          capacities[static_cast<std::size_t>(link)];
    points.push_back(std::move(c));
  }
  return points;
}

FeasibilityRegion::FeasibilityRegion(
    std::vector<std::vector<double>> extreme_points)
    : points_(std::move(extreme_points)) {
  if (points_.empty())
    throw std::invalid_argument("feasibility region needs >= 1 extreme point");
  l_ = static_cast<int>(points_.front().size());
  for (const auto& p : points_)
    if (static_cast<int>(p.size()) != l_)
      throw std::invalid_argument("extreme point arity mismatch");
}

double FeasibilityRegion::max_scaling(const std::vector<double>& load) const {
  if (static_cast<int>(load.size()) != l_)
    throw std::invalid_argument("load arity mismatch");
  bool any_positive = false;
  for (double g : load)
    if (g > 0.0) any_positive = true;
  if (!any_positive) return std::numeric_limits<double>::infinity();

  // Variables: alpha_0..alpha_{K-1}, lambda. Maximize lambda subject to
  //   sum_k alpha_k c_kl - lambda g_l >= 0   for each link l,
  //   sum_k alpha_k = 1, alpha >= 0, lambda >= 0.
  const int k = num_points();
  LpProblem lp;
  lp.num_vars = k + 1;
  lp.objective.assign(static_cast<std::size_t>(k) + 1, 0.0);
  lp.objective.back() = 1.0;

  for (int l = 0; l < l_; ++l) {
    std::vector<double> row(static_cast<std::size_t>(k) + 1, 0.0);
    for (int i = 0; i < k; ++i)
      row[static_cast<std::size_t>(i)] =
          points_[static_cast<std::size_t>(i)][static_cast<std::size_t>(l)];
    row.back() = -load[static_cast<std::size_t>(l)];
    lp.add_constraint(std::move(row), Relation::kGe, 0.0);
  }
  std::vector<double> simplex_row(static_cast<std::size_t>(k) + 1, 1.0);
  simplex_row.back() = 0.0;
  lp.add_constraint(std::move(simplex_row), Relation::kEq, 1.0);

  const LpSolution sol = solve_lp(lp);
  if (sol.status == LpStatus::kUnbounded)
    return std::numeric_limits<double>::infinity();
  if (sol.status != LpStatus::kOptimal) return 0.0;
  return sol.x.back();
}

bool FeasibilityRegion::contains(const std::vector<double>& load,
                                 double tol) const {
  return max_scaling(load) >= 1.0 - tol;
}

}  // namespace meshopt
