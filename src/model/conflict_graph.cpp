#include "model/conflict_graph.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace meshopt {

namespace {
[[nodiscard]] constexpr int words_for(int n) { return (n + 63) / 64; }
}  // namespace

ConflictGraph::ConflictGraph(int num_links)
    : n_(num_links),
      words_(words_for(num_links)),
      adj_(static_cast<std::size_t>(num_links) *
               static_cast<std::size_t>(words_for(num_links)),
           0) {}

void ConflictGraph::add_conflict(int a, int b) {
  if (a == b) return;
  if (a < 0 || a >= n_ || b < 0 || b >= n_)
    throw std::out_of_range("ConflictGraph::add_conflict");
  auto* ra = adj_.data() + static_cast<std::size_t>(a) * std::size_t(words_);
  auto* rb = adj_.data() + static_cast<std::size_t>(b) * std::size_t(words_);
  ra[b >> 6] |= std::uint64_t{1} << (b & 63);
  rb[a >> 6] |= std::uint64_t{1} << (a & 63);
}

bool ConflictGraph::conflicts(int a, int b) const {
  if (a < 0 || a >= n_ || b < 0 || b >= n_)
    throw std::out_of_range("ConflictGraph::conflicts");
  return (row(a)[b >> 6] >> (b & 63)) & 1;
}

int ConflictGraph::edge_count() const {
  int count = 0;
  for (const std::uint64_t w : adj_) count += std::popcount(w);
  return count / 2;  // each edge is stored in both rows
}

namespace {

/// Bron–Kerbosch with pivoting over the *complement* adjacency: cliques of
/// the complement are independent sets of the conflict graph. P, X and the
/// candidate sets live in flat per-depth bitset buffers preallocated up
/// front, so a recursion level is word-parallel ANDs into its own rows —
/// no vector copies, no allocation.
///
/// The enumerator streams each maximal set to a sink as a packed bitset
/// row (r_bits_), maintained incrementally on recursion push/pop. Sinks
/// that want vertex indices (the legacy nested-vector API) decode the
/// row themselves; sinks that want bits (the extreme-point bridge) copy
/// or consume the words directly.
class BitsetBronKerbosch {
 public:
  BitsetBronKerbosch(const ConflictGraph& g, std::size_t cap)
      : n_(g.size()), words_(g.row_words()), cap_(cap) {
    // Complement rows, diagonal off: comp_[v] bit w = "v and w can be in
    // the same independent set".
    comp_.assign(static_cast<std::size_t>(n_) * std::size_t(words_), 0);
    const std::uint64_t tail_mask =
        (n_ % 64 == 0) ? ~std::uint64_t{0}
                       : ((std::uint64_t{1} << (n_ % 64)) - 1);
    for (int v = 0; v < n_; ++v) {
      std::uint64_t* cr = comp_.data() + std::size_t(v) * std::size_t(words_);
      const std::uint64_t* ar = g.row(v);
      for (int w = 0; w < words_; ++w) cr[w] = ~ar[w];
      cr[words_ - 1] &= tail_mask;
      cr[v >> 6] &= ~(std::uint64_t{1} << (v & 63));
    }
    // Depth d of the recursion owns rows d of p_, x_ and cand_.
    const std::size_t depth_rows =
        static_cast<std::size_t>(n_ + 1) * std::size_t(words_);
    p_.assign(depth_rows, 0);
    x_.assign(depth_rows, 0);
    cand_.assign(depth_rows, 0);
    r_bits_.assign(static_cast<std::size_t>(words_), 0);
  }

  /// Enumerate, calling `emit(bits)` with the packed membership row of
  /// each maximal independent set. The pointer is valid only during the
  /// call. Templated so the in-file sorted-set decode pays no per-set
  /// indirect call; external consumers go through the type-erased
  /// for_each_independent_set_row, whose one indirect call per set is
  /// noise next to the per-set work every consumer does anyway (e.g. the
  /// extreme-point bridge writes an L-double row per set).
  template <typename Emit>
  void run(Emit&& emit) {
    if (n_ == 0) return;
    std::uint64_t* p0 = p_.data();
    for (int v = 0; v < n_; ++v) p0[v >> 6] |= std::uint64_t{1} << (v & 63);
    expand(0, emit);
  }

 private:
  [[nodiscard]] const std::uint64_t* comp_row(int v) const {
    return comp_.data() + static_cast<std::size_t>(v) * std::size_t(words_);
  }

  [[nodiscard]] static bool empty_row(const std::uint64_t* r, int words) {
    for (int w = 0; w < words; ++w)
      if (r[w] != 0) return false;
    return true;
  }

  template <typename Emit>
  void expand(int depth, Emit& emit) {
    if (emitted_ >= cap_) return;
    std::uint64_t* p = p_.data() + std::size_t(depth) * std::size_t(words_);
    std::uint64_t* x = x_.data() + std::size_t(depth) * std::size_t(words_);
    if (empty_row(p, words_) && empty_row(x, words_)) {
      ++emitted_;
      emit(static_cast<const std::uint64_t*>(r_bits_.data()));
      return;
    }

    // Pivot: vertex of P ∪ X with the most complement-neighbors in P.
    int pivot = -1, best = -1;
    for (int w = 0; w < words_; ++w) {
      std::uint64_t both = p[w] | x[w];
      while (both != 0) {
        const int u = w * 64 + std::countr_zero(both);
        both &= both - 1;
        const std::uint64_t* cu = comp_row(u);
        int deg = 0;
        for (int k = 0; k < words_; ++k)
          deg += std::popcount(p[k] & cu[k]);
        if (deg > best) {
          best = deg;
          pivot = u;
        }
      }
    }

    // Candidates: P minus the pivot's complement-neighborhood.
    std::uint64_t* cand =
        cand_.data() + std::size_t(depth) * std::size_t(words_);
    const std::uint64_t* cp = comp_row(pivot);
    for (int w = 0; w < words_; ++w) cand[w] = p[w] & ~cp[w];

    std::uint64_t* cp_next =
        p_.data() + std::size_t(depth + 1) * std::size_t(words_);
    std::uint64_t* cx_next =
        x_.data() + std::size_t(depth + 1) * std::size_t(words_);
    for (int w = 0; w < words_; ++w) {
      while (cand[w] != 0) {
        const int v = w * 64 + std::countr_zero(cand[w]);
        cand[w] &= cand[w] - 1;
        const std::uint64_t* cv = comp_row(v);
        for (int k = 0; k < words_; ++k) {
          cp_next[k] = p[k] & cv[k];
          cx_next[k] = x[k] & cv[k];
        }
        r_bits_[static_cast<std::size_t>(v >> 6)] |= std::uint64_t{1}
                                                     << (v & 63);
        expand(depth + 1, emit);
        r_bits_[static_cast<std::size_t>(v >> 6)] &=
            ~(std::uint64_t{1} << (v & 63));
        p[w] &= ~(std::uint64_t{1} << (v & 63));
        x[w] |= std::uint64_t{1} << (v & 63);
        if (emitted_ >= cap_) return;
      }
    }
  }

  int n_;
  int words_;
  std::size_t cap_;
  std::size_t emitted_ = 0;
  std::vector<std::uint64_t> comp_;
  std::vector<std::uint64_t> p_, x_, cand_;
  std::vector<std::uint64_t> r_bits_;  ///< membership row of the current R
};

}  // namespace

std::vector<std::vector<int>> ConflictGraph::maximal_independent_sets(
    std::size_t cap) const {
  if (n_ == 0) return {};
  std::vector<std::vector<int>> sets;
  const int words = words_;
  // Decode each packed row into ascending vertex indices (bit scan order
  // is already sorted), then order the sets lexicographically — the
  // canonical output this API has always produced.
  BitsetBronKerbosch bk(*this, cap);
  bk.run([&sets, words](const std::uint64_t* bits) {
    int size = 0;
    for (int w = 0; w < words; ++w) size += std::popcount(bits[w]);
    std::vector<int> s;
    s.reserve(static_cast<std::size_t>(size));
    for (int w = 0; w < words; ++w) {
      std::uint64_t word = bits[w];
      while (word != 0) {
        s.push_back(w * 64 + std::countr_zero(word));
        word &= word - 1;
      }
    }
    sets.push_back(std::move(s));
  });
  std::sort(sets.begin(), sets.end());
  return sets;
}

void ConflictGraph::for_each_independent_set_row(
    const std::function<void(const std::uint64_t*)>& emit,
    std::size_t cap) const {
  if (n_ == 0) return;
  BitsetBronKerbosch bk(*this, cap);
  bk.run([&emit](const std::uint64_t* bits) { emit(bits); });
}

MisRowSet ConflictGraph::independent_set_rows(std::size_t cap) const {
  MisRowSet rows(n_);
  for_each_independent_set_row(
      [&rows](const std::uint64_t* bits) { rows.append(bits); }, cap);
  return rows;
}

ComponentPartition ConflictGraph::connected_components() const {
  ComponentPartition part;
  part.component_of.assign(static_cast<std::size_t>(n_), -1);
  if (n_ == 0) return part;
  const int words = words_;
  std::vector<std::uint64_t> visited(static_cast<std::size_t>(words), 0);
  std::vector<std::uint64_t> frontier(static_cast<std::size_t>(words), 0);
  std::vector<std::uint64_t> next(static_cast<std::size_t>(words), 0);
  std::vector<std::uint64_t> in_comp(static_cast<std::size_t>(words), 0);
  for (int start = 0; start < n_; ++start) {
    if ((visited[std::size_t(start >> 6)] >> (start & 63)) & 1) continue;
    // Seed a new component at the smallest unvisited link; scanning
    // starts ascending makes the component order canonical by smallest
    // member.
    std::fill(frontier.begin(), frontier.end(), 0);
    std::fill(in_comp.begin(), in_comp.end(), 0);
    frontier[std::size_t(start >> 6)] |= std::uint64_t{1} << (start & 63);
    in_comp[std::size_t(start >> 6)] |= std::uint64_t{1} << (start & 63);
    bool grew = true;
    while (grew) {
      grew = false;
      // Next frontier = union of the current frontier's adjacency rows,
      // minus everything already in the component. The next buffer must
      // stay separate from the frontier being scanned: expanding into the
      // scan target would consume higher-word discoveries before they are
      // committed to in_comp, silently dropping them from the component.
      std::fill(next.begin(), next.end(), 0);
      for (int w = 0; w < words; ++w) {
        std::uint64_t f = frontier[std::size_t(w)];
        while (f != 0) {
          const int v = w * 64 + std::countr_zero(f);
          f &= f - 1;
          const std::uint64_t* rv = row(v);
          for (int k = 0; k < words; ++k)
            next[std::size_t(k)] |= rv[k];
        }
      }
      for (int k = 0; k < words; ++k) {
        next[std::size_t(k)] &= ~in_comp[std::size_t(k)];
        if (next[std::size_t(k)] != 0) grew = true;
        in_comp[std::size_t(k)] |= next[std::size_t(k)];
        frontier[std::size_t(k)] = next[std::size_t(k)];
      }
    }
    const int comp = static_cast<int>(part.members.size());
    std::vector<int> links;
    for (int w = 0; w < words; ++w) {
      visited[std::size_t(w)] |= in_comp[std::size_t(w)];
      std::uint64_t word = in_comp[std::size_t(w)];
      while (word != 0) {
        const int v = w * 64 + std::countr_zero(word);
        word &= word - 1;
        links.push_back(v);
        part.component_of[std::size_t(v)] = comp;
      }
    }
    part.members.push_back(std::move(links));
  }
  return part;
}

ConflictGraph build_lir_conflict_graph(const DenseMatrix& lir,
                                       double threshold) {
  if (lir.rows() != lir.cols())
    throw std::invalid_argument("LIR table must be square");
  const int n = lir.rows();
  ConflictGraph g(n);
  for (int i = 0; i < n; ++i) {
    const double* row = lir.row(i);
    for (int j = i + 1; j < n; ++j) {
      if (row[j] < threshold) g.add_conflict(i, j);
    }
  }
  return g;
}

ConflictGraph build_two_hop_conflict_graph(
    const std::vector<LinkRef>& links,
    const std::function<bool(NodeId, NodeId)>& is_neighbor) {
  const int n = static_cast<int>(links.size());
  ConflictGraph g(n);
  const auto close = [&](NodeId a, NodeId b) {
    return a == b || is_neighbor(a, b);
  };
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const LinkRef& l1 = links[std::size_t(i)];
      const LinkRef& l2 = links[std::size_t(j)];
      const bool conflict =
          close(l1.src, l2.src) || close(l1.src, l2.dst) ||
          close(l1.dst, l2.src) || close(l1.dst, l2.dst);
      if (conflict) g.add_conflict(i, j);
    }
  }
  return g;
}

}  // namespace meshopt
