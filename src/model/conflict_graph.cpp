#include "model/conflict_graph.h"

#include <algorithm>
#include <stdexcept>

namespace meshopt {

ConflictGraph::ConflictGraph(int num_links)
    : n_(num_links),
      adj_(static_cast<std::size_t>(num_links),
           std::vector<char>(static_cast<std::size_t>(num_links), 0)) {}

void ConflictGraph::add_conflict(int a, int b) {
  if (a == b) return;
  adj_.at(static_cast<std::size_t>(a)).at(static_cast<std::size_t>(b)) = 1;
  adj_.at(static_cast<std::size_t>(b)).at(static_cast<std::size_t>(a)) = 1;
}

bool ConflictGraph::conflicts(int a, int b) const {
  return adj_.at(static_cast<std::size_t>(a))
             .at(static_cast<std::size_t>(b)) != 0;
}

int ConflictGraph::edge_count() const {
  int count = 0;
  for (int i = 0; i < n_; ++i)
    for (int j = i + 1; j < n_; ++j)
      if (adj_[std::size_t(i)][std::size_t(j)]) ++count;
  return count;
}

namespace {

/// Bron–Kerbosch with pivoting over the *complement* adjacency: cliques of
/// the complement are independent sets of the conflict graph.
class BronKerbosch {
 public:
  BronKerbosch(const std::vector<std::vector<char>>& conflict_adj,
               std::size_t cap)
      : adj_(conflict_adj), n_(static_cast<int>(conflict_adj.size())),
        cap_(cap) {}

  [[nodiscard]] std::vector<std::vector<int>> run() {
    std::vector<int> r, p, x;
    p.reserve(static_cast<std::size_t>(n_));
    for (int v = 0; v < n_; ++v) p.push_back(v);
    expand(r, p, x);
    return std::move(out_);
  }

 private:
  /// Complement-graph adjacency: independent in the conflict graph.
  [[nodiscard]] bool compatible(int a, int b) const {
    return a != b && adj_[std::size_t(a)][std::size_t(b)] == 0;
  }

  void expand(std::vector<int>& r, std::vector<int> p, std::vector<int> x) {
    if (out_.size() >= cap_) return;
    if (p.empty() && x.empty()) {
      out_.push_back(r);
      return;
    }
    // Pivot: vertex of P ∪ X with most complement-neighbors in P.
    int pivot = -1, best = -1;
    for (const auto& set : {p, x}) {
      for (int u : set) {
        int deg = 0;
        for (int v : p)
          if (compatible(u, v)) ++deg;
        if (deg > best) {
          best = deg;
          pivot = u;
        }
      }
    }
    std::vector<int> candidates;
    for (int v : p)
      if (pivot < 0 || !compatible(pivot, v)) candidates.push_back(v);

    for (int v : candidates) {
      std::vector<int> p2, x2;
      for (int w : p)
        if (compatible(v, w)) p2.push_back(w);
      for (int w : x)
        if (compatible(v, w)) x2.push_back(w);
      r.push_back(v);
      expand(r, std::move(p2), std::move(x2));
      r.pop_back();
      p.erase(std::find(p.begin(), p.end(), v));
      x.push_back(v);
      if (out_.size() >= cap_) return;
    }
  }

  const std::vector<std::vector<char>>& adj_;
  int n_;
  std::size_t cap_;
  std::vector<std::vector<int>> out_;
};

}  // namespace

std::vector<std::vector<int>> ConflictGraph::maximal_independent_sets(
    std::size_t cap) const {
  if (n_ == 0) return {};
  BronKerbosch bk(adj_, cap);
  auto sets = bk.run();
  for (auto& s : sets) std::sort(s.begin(), s.end());
  std::sort(sets.begin(), sets.end());
  return sets;
}

ConflictGraph build_lir_conflict_graph(
    const std::vector<std::vector<double>>& lir, double threshold) {
  const int n = static_cast<int>(lir.size());
  ConflictGraph g(n);
  for (int i = 0; i < n; ++i) {
    if (static_cast<int>(lir[std::size_t(i)].size()) != n)
      throw std::invalid_argument("LIR table must be square");
    for (int j = i + 1; j < n; ++j) {
      if (lir[std::size_t(i)][std::size_t(j)] < threshold) g.add_conflict(i, j);
    }
  }
  return g;
}

ConflictGraph build_two_hop_conflict_graph(
    const std::vector<LinkRef>& links,
    const std::function<bool(NodeId, NodeId)>& is_neighbor) {
  const int n = static_cast<int>(links.size());
  ConflictGraph g(n);
  const auto close = [&](NodeId a, NodeId b) {
    return a == b || is_neighbor(a, b);
  };
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const LinkRef& l1 = links[std::size_t(i)];
      const LinkRef& l2 = links[std::size_t(j)];
      const bool conflict =
          close(l1.src, l2.src) || close(l1.src, l2.dst) ||
          close(l1.dst, l2.src) || close(l1.dst, l2.dst);
      if (conflict) g.add_conflict(i, j);
    }
  }
  return g;
}

}  // namespace meshopt
