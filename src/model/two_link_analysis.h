#pragma once
// Analytic FP/FN error computation for the binary LIR model on a link pair
// (paper Section 4.4, Figure 6).
//
// Geometry: the primary points (c11,0), (0,c22) span the time-sharing
// triangle A1; the secondary point (c31,c32) extends it to the
// quadrilateral A1+A2 (the three-point model, taken as the true region).
// Classifying the pair as "interfering" keeps only A1 (FN error
// A2/(A1+A2)); classifying it "non-interfering" claims the full rectangle
// (FP error (c11*c22 - (A1+A2))/(A1+A2)).

#include <vector>

namespace meshopt {

struct TwoLinkGeometry {
  double c11 = 0.0, c22 = 0.0;  ///< primary extreme points
  double c31 = 0.0, c32 = 0.0;  ///< secondary (simultaneous) point

  [[nodiscard]] double lir() const {
    const double d = c11 + c22;
    return d > 0.0 ? (c31 + c32) / d : 1.0;
  }

  /// Time-sharing triangle area.
  [[nodiscard]] double a1() const;
  /// Extra area unlocked by the three-point model (clamped at 0 when the
  /// secondary point lies inside the triangle).
  [[nodiscard]] double a2() const;

  /// FN error if classified interfering: A2 / (A1+A2).
  [[nodiscard]] double fn_error_if_interfering() const;
  /// FP error if classified non-interfering:
  /// (c11*c22 - (A1+A2)) / (A1+A2).
  [[nodiscard]] double fp_error_if_independent() const;

  /// Errors the binary LIR model commits at a given threshold.
  [[nodiscard]] double fn_error(double lir_threshold) const;
  [[nodiscard]] double fp_error(double lir_threshold) const;
};

/// Construct the proportional realization of an LIR value: the secondary
/// point on the LIR line with c3i proportional to cii (c3i = lir * cii).
[[nodiscard]] TwoLinkGeometry proportional_realization(double c11, double c22,
                                                       double lir);

/// Expected FP/FN errors of the binary LIR model over an observed LIR
/// distribution (paper: FP ~2%, FN ~13.3% at threshold 0.95 for their
/// testbed's distribution), using the proportional realization.
struct ExpectedErrors {
  double fp = 0.0;
  double fn = 0.0;
};
[[nodiscard]] ExpectedErrors expected_errors(const std::vector<double>& lirs,
                                             double threshold, double c11 = 1.0,
                                             double c22 = 1.0);

}  // namespace meshopt
