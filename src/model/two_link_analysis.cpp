#include "model/two_link_analysis.h"

#include <algorithm>

#include "util/mathfit.h"

namespace meshopt {

double TwoLinkGeometry::a1() const { return 0.5 * c11 * c22; }

double TwoLinkGeometry::a2() const {
  // Quadrilateral (0,0) (c11,0) (c31,c32) (0,c22) minus the triangle; only
  // counts when the secondary point lies beyond the time-sharing line.
  const Point2 quad[] = {{0.0, 0.0}, {c11, 0.0}, {c31, c32}, {0.0, c22}};
  const double total = polygon_area(quad);
  return std::max(0.0, total - a1());
}

double TwoLinkGeometry::fn_error_if_interfering() const {
  const double t = a1() + a2();
  return t > 0.0 ? a2() / t : 0.0;
}

double TwoLinkGeometry::fp_error_if_independent() const {
  const double t = a1() + a2();
  return t > 0.0 ? std::max(0.0, c11 * c22 - t) / t : 0.0;
}

double TwoLinkGeometry::fn_error(double lir_threshold) const {
  return lir() < lir_threshold ? fn_error_if_interfering() : 0.0;
}

double TwoLinkGeometry::fp_error(double lir_threshold) const {
  return lir() < lir_threshold ? 0.0 : fp_error_if_independent();
}

TwoLinkGeometry proportional_realization(double c11, double c22, double lir) {
  TwoLinkGeometry g;
  g.c11 = c11;
  g.c22 = c22;
  g.c31 = std::min(lir, 1.0) * c11;
  g.c32 = std::min(lir, 1.0) * c22;
  return g;
}

ExpectedErrors expected_errors(const std::vector<double>& lirs,
                               double threshold, double c11, double c22) {
  ExpectedErrors e;
  if (lirs.empty()) return e;
  for (double lir : lirs) {
    const TwoLinkGeometry g = proportional_realization(c11, c22, lir);
    e.fp += g.fp_error(threshold);
    e.fn += g.fn_error(threshold);
  }
  e.fp /= static_cast<double>(lirs.size());
  e.fn /= static_cast<double>(lirs.size());
  return e;
}

}  // namespace meshopt
