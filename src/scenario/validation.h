#pragma once
// Network-validation harness (paper Section 4.5, reused by Figs. 7, 8 and
// 12): on a testbed instance, pick multi-hop flows, build the feasibility
// model from measured primary extreme points plus an interference model,
// compute proportional-fair target rates, inject them (and scaled-up
// versions) as CBR traffic, and record estimated-vs-achieved throughputs.

#include <cstdint>
#include <vector>

#include "core/controller.h"
#include "scenario/testbed.h"
#include "scenario/workbench.h"

namespace meshopt {

struct ValidationConfig {
  std::uint64_t seed = 1;
  Rate rate = Rate::kR1Mbps;
  int num_flows = 4;
  int max_hops = 4;
  double alone_duration_s = 5.0;     ///< per-link maxUDP phase
  double measure_duration_s = 15.0;  ///< per injected rate vector
  std::vector<double> scales{1.1, 1.2, 1.5};
  InterferenceModelKind interference = InterferenceModelKind::kLirTable;
  double lir_threshold = 0.95;
};

struct ValidationFlowResult {
  std::vector<NodeId> path;
  double estimated_bps = 0.0;  ///< optimizer's target output rate y_s
  double input_bps = 0.0;      ///< injected x_s = y_s/(1-p_s)
  double achieved_bps = 0.0;   ///< measured at scale 1.0
  std::vector<double> scaled_achieved_bps;  ///< per config.scales entry
};

struct ValidationRun {
  bool ok = false;
  int num_links = 0;
  int extreme_points = 0;
  std::vector<ValidationFlowResult> flows;
};

/// Run one validation configuration end to end.
[[nodiscard]] ValidationRun run_network_validation(const ValidationConfig& cfg);

}  // namespace meshopt
