#pragma once
// Synthetic 18-node mesh testbed standing in for the paper's Fig. 2
// deployment (a parking lot plus three multi-story office buildings).
//
// Nodes are placed in four clusters; RSS comes from log-distance path loss
// with per-pair lognormal shadowing and extra inter-cluster (wall)
// attenuation. Channel errors follow an SNR-driven logistic PER curve, so
// link qualities and their rate dependence arise from geometry — giving
// the same *kind* of diversity (good/medium/bad links, bimodal LIR
// distribution) the paper's testbed exhibits.

#include <vector>

#include "scenario/workbench.h"
#include "util/mathfit.h"
#include "util/rng.h"

namespace meshopt {

struct TestbedConfig {
  std::uint64_t seed = 1;
  int nodes_per_cluster = 4;    ///< 4 clusters; first may get the remainder
  int total_nodes = 18;
  double cluster_spread_m = 25.0;     ///< node scatter within a cluster
  double cluster_distance_m = 140.0;  ///< spacing between cluster centers
  double tx_power_dbm = 19.0;         ///< as the paper's fixed 19 dBm
  double antenna_gain_dbi = 5.0;
  double path_loss_exponent = 3.0;
  double path_loss_ref_db = 40.0;     ///< PL at 1 m
  double shadowing_sigma_db = 7.0;
  double wall_attenuation_db = 10.0;  ///< extra loss between clusters
};

class Testbed {
 public:
  /// Builds nodes into `wb` (must be empty) and programs the channel.
  Testbed(Workbench& wb, const TestbedConfig& cfg);

  [[nodiscard]] const std::vector<Point2>& positions() const {
    return positions_;
  }
  [[nodiscard]] int cluster_of(NodeId n) const {
    return clusters_.at(static_cast<std::size_t>(n));
  }

  /// Directed links decodable at `rate` with a usable margin.
  [[nodiscard]] std::vector<LinkRef> usable_links(Rate rate,
                                                  double margin_db = 3.0) const;

  /// Connectivity predicate for the two-hop interference model.
  [[nodiscard]] bool neighbors(NodeId a, NodeId b) const;

  [[nodiscard]] Workbench& workbench() { return *wb_; }

 private:
  Workbench* wb_;
  TestbedConfig cfg_;
  std::vector<Point2> positions_;
  std::vector<int> clusters_;
};

}  // namespace meshopt
