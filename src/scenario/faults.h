#pragma once
// Fault-injection plane — scripted measurement faults for resilience
// studies (see ARCHITECTURE.md, "Faults & degradation").
//
// The dynamics subsystem (scenario/dynamics.h) perturbs the NETWORK; this
// file perturbs the MEASUREMENTS. A FaultScript is a timeline of
// round-indexed FaultEvents — snapshot field corruption (NaN/Inf/negative
// loss, outlier capacity), probe-window dropout, stale-snapshot replay,
// partial snapshots, plan-apply failures — and a FaultEngine arms it over
// any SnapshotSource, corrupting the snapshot stream a control loop
// consumes without touching the underlying simulation or trace. Because
// the engine wraps the SnapshotSource interface it composes with
// LiveSource (faults over a live probing run), TraceSource (faults over a
// recorded trace), and — via fault_rounds() — ControllerFleet::replay.
//
// Determinism contract: same as DynamicsScript. The engine draws NO
// randomness at run time; every stochastic choice (which rounds, which
// links, which poison values) is expanded into concrete events at script
// GENERATION time by the generator functions below, each a pure function
// of its RngStream. A fault run is therefore a value: replayable
// bit-for-bit, and fleet fault studies are bit-identical across thread
// counts (tests/test_faults.cpp).

#include <cstdint>
#include <vector>

#include "core/snapshot.h"
#include "core/snapshot_source.h"
#include "util/rng.h"

namespace meshopt {

/// What a fault event does to the measurement stream.
enum class FaultKind : std::uint8_t {
  kCorruptLoss,      ///< overwrite link's p_data/p_ack with `value`
  kCorruptCapacity,  ///< overwrite link's capacity_bps with `value`
  kDropWindow,       ///< the round's snapshot is lost (empty delivery)
  kStaleReplay,      ///< re-deliver the previous round's clean snapshot
  kPartialSnapshot,  ///< drop `count` links starting at index `link`
  kApplyFailure,     ///< arm apply_fault_now() for the round (actuation
                     ///< path fails; see MeshController::guarded_round)
};

[[nodiscard]] const char* to_string(FaultKind kind);

/// One scripted fault. Only the fields its kind reads are meaningful.
struct FaultEvent {
  int round = 0;        ///< 0-based round index at the engine
  FaultKind kind = FaultKind::kDropWindow;
  int link = 0;   ///< target link (taken modulo the snapshot's link count)
  int count = 1;  ///< kPartialSnapshot: how many links to drop
  double value = 0.0;  ///< injected field value (may be NaN/Inf/negative)
};

/// A value-type fault timeline, kept sorted by round (stable, so events
/// at the same round apply in insertion order).
struct FaultScript {
  std::vector<FaultEvent> events;

  /// Append one event (re-sorts; scripts are built once, not hot).
  FaultScript& add(FaultEvent event);
  /// Splice another script's events into this one.
  FaultScript& merge(const FaultScript& other);
  /// Round of the last event, -1 for an empty script.
  [[nodiscard]] int horizon() const;
};

// ---------------------------------------------------------------------------
// Fault generators: pure functions of an RngStream, expanding a stochastic
// fault process into a concrete deterministic script.

/// Per round, with probability `prob`, corrupt one random link's loss
/// estimates with a poison value drawn from {NaN, +Inf, -0.25, 1.5}.
[[nodiscard]] FaultScript loss_corruption_faults(int rounds, double prob,
                                                 int max_link, RngStream rng);

/// Per round, with probability `prob`, blow one random link's capacity
/// estimate up to `scale` times a uniform draw (an outlier far above any
/// PHY rate) — or, one time in four, to a negative value.
[[nodiscard]] FaultScript capacity_outlier_faults(int rounds, double prob,
                                                  int max_link, RngStream rng,
                                                  double scale = 1e12);

/// Per round, with probability `prob`, the whole probe window is lost.
[[nodiscard]] FaultScript window_dropout_faults(int rounds, double prob,
                                                RngStream rng);

/// Stale-snapshot replay bursts: with probability `prob` a burst starts,
/// replaying the previous clean snapshot for 1..max_len rounds.
[[nodiscard]] FaultScript stale_replay_faults(int rounds, double prob,
                                              int max_len, RngStream rng);

/// Per round, with probability `prob`, drop 1..max_links links from the
/// snapshot (a partial measurement).
[[nodiscard]] FaultScript partial_snapshot_faults(int rounds, double prob,
                                                  int max_links,
                                                  RngStream rng);

/// Per round, with probability `prob`, the plan-apply path fails.
[[nodiscard]] FaultScript apply_failure_faults(int rounds, double prob,
                                               RngStream rng);

// ---------------------------------------------------------------------------

/// Wraps a SnapshotSource and applies a FaultScript to the rounds it
/// yields. The base source is borrowed and advanced once per next() —
/// faults corrupt the DELIVERED snapshot only, so the underlying
/// simulation/trace (and every later round) is unaffected.
///
/// Per-round mechanics, in order:
///  * kStaleReplay replaces the round's snapshot with the previous
///    round's clean (pre-fault) one; with no previous round it degrades
///    to a dropout.
///  * kDropWindow empties the delivery (a lost probe window) — it
///    overrides stale replay and makes corruption events moot.
///  * kCorruptLoss / kCorruptCapacity / kPartialSnapshot then mutate the
///    surviving delivery (link indices taken modulo its link count).
///  * kApplyFailure does not touch the snapshot: it arms
///    apply_fault_now() for the round, which a consumer wires into its
///    actuation path (ControllerFleet does this for guarded fault cells;
///    see also examples/fault_study.cpp).
class FaultEngine final : public SnapshotSource {
 public:
  /// `base` is borrowed and must outlive the engine.
  FaultEngine(SnapshotSource* base, FaultScript script);

  bool next(MeasurementSnapshot& out) override;
  [[nodiscard]] int remaining() const override { return base_->remaining(); }

  /// Rounds delivered so far (the current round index is rounds()-1).
  [[nodiscard]] int rounds() const { return round_ + 1; }
  /// Did the last delivered round script a kApplyFailure?
  [[nodiscard]] bool apply_fault_now() const { return apply_fault_; }
  /// Fault events applied so far (kApplyFailure arms count).
  [[nodiscard]] int faults_injected() const { return injected_; }
  [[nodiscard]] const FaultScript& script() const { return script_; }

 private:
  SnapshotSource* base_;
  FaultScript script_;
  std::size_t cursor_ = 0;  ///< first script event not yet consumed
  MeasurementSnapshot last_clean_;
  bool have_last_ = false;
  int round_ = -1;
  bool apply_fault_ = false;
  int injected_ = 0;
};

/// Apply `script` to a recorded trace, producing the faulted rounds a
/// FaultEngine over a TraceSource would deliver. This is the replay-fleet
/// composition: fault a shared trace once, then plan it under a grid of
/// guarded ReplayCells. kApplyFailure events have no snapshot effect here.
[[nodiscard]] std::vector<MeasurementSnapshot> fault_rounds(
    const std::vector<MeasurementSnapshot>& rounds, const FaultScript& script);

}  // namespace meshopt
