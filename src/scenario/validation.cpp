#include "scenario/validation.h"

#include <algorithm>
#include <memory>
#include <set>
#include <string>

#include "estimation/lir.h"
#include "model/feasibility.h"
#include "opt/network_optimizer.h"
#include "routing/ett.h"
#include "transport/udp.h"

namespace meshopt {

namespace {

/// Select flow paths on the testbed via ETT routing: spread sources and
/// destinations across clusters so that paths have 1..max_hops hops.
std::vector<std::vector<NodeId>> pick_flows(Workbench& wb, Testbed& tb,
                                            const ValidationConfig& cfg) {
  // Routing database from true link qualities (route initialization, as
  // the paper does with ETT before fixing routes).
  TopologyDb db;
  const auto& err = wb.channel().error_model();
  for (const LinkRef& l : tb.usable_links(cfg.rate)) {
    LinkState ls;
    ls.src = l.src;
    ls.dst = l.dst;
    ls.rate = cfg.rate;
    ls.p_fwd = err.per(l.src, l.dst, cfg.rate, FrameType::kData);
    ls.p_rev = err.per(l.dst, l.src, Rate::kR1Mbps, FrameType::kAck);
    db.update_link(ls);
  }

  RngStream rng(cfg.seed, "flow-pick");
  std::vector<std::vector<NodeId>> flows;
  std::set<std::pair<NodeId, NodeId>> used;
  int guard = 0;
  while (static_cast<int>(flows.size()) < cfg.num_flows && ++guard < 400) {
    const NodeId src = rng.uniform_int(0, wb.net().node_count() - 1);
    const NodeId dst = rng.uniform_int(0, wb.net().node_count() - 1);
    if (src == dst || used.contains({src, dst})) continue;
    const auto path = db.shortest_path(src, dst);
    if (path.size() < 2 ||
        path.size() > static_cast<std::size_t>(cfg.max_hops) + 1)
      continue;
    // Prefer multi-hop flows: accept 1-hop only occasionally.
    if (path.size() == 2 && !rng.bernoulli(0.3)) continue;
    used.insert({src, dst});
    flows.push_back(path);
  }
  return flows;
}

}  // namespace

ValidationRun run_network_validation(const ValidationConfig& cfg) {
  ValidationRun run;
  Workbench wb(cfg.seed);
  Testbed tb(wb, TestbedConfig{.seed = cfg.seed});

  const auto paths = pick_flows(wb, tb, cfg);
  if (paths.empty()) return run;

  // Links under management = union of path hops.
  std::vector<LinkRef> links;
  auto link_index = [&](NodeId a, NodeId b) {
    for (std::size_t i = 0; i < links.size(); ++i)
      if (links[i].src == a && links[i].dst == b) return static_cast<int>(i);
    return -1;
  };
  for (const auto& path : paths) {
    for (std::size_t h = 0; h + 1 < path.size(); ++h) {
      if (link_index(path[h], path[h + 1]) < 0)
        links.push_back(LinkRef{path[h], path[h + 1], cfg.rate});
    }
  }
  run.num_links = static_cast<int>(links.size());

  // Phase 1a: primary extreme points (per-link maxUDP alone) + UDP loss.
  std::vector<double> capacities(links.size(), 0.0);
  std::vector<double> udp_loss(links.size(), 0.0);
  for (std::size_t i = 0; i < links.size(); ++i) {
    const auto m =
        wb.measure_backlogged_outputs({links[i]}, cfg.alone_duration_s);
    capacities[i] = m[0].throughput_bps;
    udp_loss[i] = m[0].loss_rate;
  }

  // Phase 1b: interference model.
  ConflictGraph conflicts(static_cast<int>(links.size()));
  if (cfg.interference == InterferenceModelKind::kLirTable) {
    for (std::size_t i = 0; i < links.size(); ++i) {
      for (std::size_t j = i + 1; j < links.size(); ++j) {
        // Links sharing a node are trivially mutually exclusive.
        const bool share = links[i].src == links[j].src ||
                           links[i].src == links[j].dst ||
                           links[i].dst == links[j].src ||
                           links[i].dst == links[j].dst;
        if (share) {
          conflicts.add_conflict(static_cast<int>(i), static_cast<int>(j));
          continue;
        }
        const auto both = wb.measure_backlogged(
            {links[i], links[j]}, cfg.alone_duration_s);
        const double lir =
            (both[0] + both[1]) /
            std::max(capacities[i] + capacities[j], 1.0);
        if (lir < cfg.lir_threshold)
          conflicts.add_conflict(static_cast<int>(i), static_cast<int>(j));
      }
    }
  } else {
    conflicts = build_two_hop_conflict_graph(
        links, [&](NodeId a, NodeId b) { return tb.neighbors(a, b); });
  }

  // Phase 2: optimize proportional-fair targets.
  OptimizerInput in;
  in.extreme_points = build_extreme_point_matrix(capacities, conflicts);
  in.routing = DenseMatrix(static_cast<int>(links.size()),
                           static_cast<int>(paths.size()));
  for (std::size_t s = 0; s < paths.size(); ++s) {
    for (std::size_t h = 0; h + 1 < paths[s].size(); ++h) {
      const int li = link_index(paths[s][h], paths[s][h + 1]);
      if (li >= 0) in.routing(li, static_cast<int>(s)) = 1.0;
    }
  }
  OptimizerConfig oc;
  oc.objective = Objective::kProportionalFair;
  const OptimizerResult opt = optimize_rates(in, oc);
  if (!opt.ok) return run;
  run.extreme_points = in.extreme_points.rows();

  // x_s = y_s / (1 - p_s), path loss composed from UDP-level link losses.
  std::vector<double> inputs(paths.size(), 0.0);
  for (std::size_t s = 0; s < paths.size(); ++s) {
    double deliver = 1.0;
    for (std::size_t h = 0; h + 1 < paths[s].size(); ++h) {
      const int li = link_index(paths[s][h], paths[s][h + 1]);
      if (li >= 0)
        deliver *= 1.0 - udp_loss[static_cast<std::size_t>(li)];
    }
    inputs[s] = opt.y[s] / std::max(deliver, 0.05);
  }

  // Phase 3: inject the rate vector (and the scaled versions) and measure.
  auto inject = [&](double scale) {
    std::vector<std::unique_ptr<UdpSource>> sources;
    std::vector<int> flow_ids;
    for (std::size_t s = 0; s < paths.size(); ++s) {
      wb.net().set_path_routes(paths[s], cfg.rate);
      const int flow = wb.net().open_flow(paths[s].front(), paths[s].back(),
                                          Protocol::kUdp, 1470);
      flow_ids.push_back(flow);
      sources.push_back(std::make_unique<UdpSource>(
          wb.net(), flow, UdpMode::kCbr, inputs[s] * scale,
          RngStream(cfg.seed, "inj-" + std::to_string(s) + "-" +
                                  std::to_string(scale))));
    }
    for (auto& src : sources) src->start();
    wb.run_for(1.0);
    wb.net().reset_flow_counters();
    wb.run_for(cfg.measure_duration_s);
    std::vector<double> achieved;
    for (int f : flow_ids)
      achieved.push_back(wb.net().flow(f).throughput_bps(
          cfg.measure_duration_s));
    for (auto& src : sources) src->stop();
    wb.run_for(0.3);
    return achieved;
  };

  const auto base = inject(1.0);
  std::vector<std::vector<double>> scaled;
  for (double s : cfg.scales) scaled.push_back(inject(s));

  for (std::size_t s = 0; s < paths.size(); ++s) {
    ValidationFlowResult row;
    row.path = paths[s];
    row.estimated_bps = opt.y[s];
    row.input_bps = inputs[s];
    row.achieved_bps = base[s];
    for (std::size_t k = 0; k < cfg.scales.size(); ++k)
      row.scaled_achieved_bps.push_back(scaled[k][s]);
    run.flows.push_back(std::move(row));
  }
  run.ok = true;
  return run;
}

}  // namespace meshopt
