#include "scenario/testbed.h"

#include <cmath>
#include <memory>
#include <string>

#include "phy/error_model.h"

namespace meshopt {

Testbed::Testbed(Workbench& wb, const TestbedConfig& cfg)
    : wb_(&wb), cfg_(cfg) {
  RngStream rng(cfg.seed, "testbed");
  wb.add_nodes(cfg.total_nodes);

  // Cluster centers: the parking lot and building A share a block; the
  // other two buildings sit across the street. The 2.2x row separation
  // puts opposite-row pairs at the edge of (or beyond) sensing range, so
  // the deployment exhibits both interfering and independent link pairs —
  // like the paper's mixed indoor/outdoor campus.
  const double d = cfg.cluster_distance_m;
  const Point2 centers[4] = {
      {0.0, 0.0},       // parking lot
      {d, 0.0},         // building A
      {0.0, 2.2 * d},   // building B
      {d, 2.2 * d},     // building C
  };

  positions_.resize(static_cast<std::size_t>(cfg.total_nodes));
  clusters_.resize(static_cast<std::size_t>(cfg.total_nodes));
  for (int i = 0; i < cfg.total_nodes; ++i) {
    const int cluster = i % 4;
    clusters_[static_cast<std::size_t>(i)] = cluster;
    positions_[static_cast<std::size_t>(i)] = {
        centers[cluster].x + rng.normal(0.0, cfg.cluster_spread_m),
        centers[cluster].y + rng.normal(0.0, cfg.cluster_spread_m)};
  }

  // RSS matrix from path loss + symmetric shadowing + wall loss.
  Channel& ch = wb.channel();
  for (int a = 0; a < cfg.total_nodes; ++a) {
    for (int b = a + 1; b < cfg.total_nodes; ++b) {
      const double dx = positions_[std::size_t(a)].x - positions_[std::size_t(b)].x;
      const double dy = positions_[std::size_t(a)].y - positions_[std::size_t(b)].y;
      const double dist = std::max(1.0, std::hypot(dx, dy));
      double pl = cfg.path_loss_ref_db +
                  10.0 * cfg.path_loss_exponent * std::log10(dist);
      if (clusters_[std::size_t(a)] != clusters_[std::size_t(b)])
        pl += cfg.wall_attenuation_db;
      pl += rng.normal(0.0, cfg.shadowing_sigma_db);
      const double rss =
          cfg.tx_power_dbm + 2.0 * cfg.antenna_gain_dbi - pl;
      ch.set_rss_symmetric_dbm(a, b, rss);
    }
  }

  ch.set_error_model(std::make_shared<SnrErrorModel>(ch, ch.phy()));
}

std::vector<LinkRef> Testbed::usable_links(Rate rate, double margin_db) const {
  std::vector<LinkRef> out;
  const Channel& ch = wb_->channel();
  const double need = ch.phy().sensitivity_dbm(rate) + margin_db;
  for (NodeId a = 0; a < ch.node_count(); ++a) {
    for (NodeId b = 0; b < ch.node_count(); ++b) {
      if (a == b) continue;
      // Forward direction strong enough, and the reverse (ACK) direction
      // at least decodable at the base rate.
      if (ch.rss_dbm(a, b) >= need &&
          ch.rss_dbm(b, a) >= ch.phy().sensitivity_dbm(Rate::kR1Mbps)) {
        out.push_back(LinkRef{a, b, rate});
      }
    }
  }
  return out;
}

bool Testbed::neighbors(NodeId a, NodeId b) const {
  const Channel& ch = wb_->channel();
  return ch.decodable(a, b, Rate::kR1Mbps) ||
         ch.decodable(b, a, Rate::kR1Mbps);
}

}  // namespace meshopt
