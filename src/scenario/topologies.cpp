#include "scenario/topologies.h"

#include <memory>

namespace meshopt {

namespace {
// "Cannot hear at all": far below sensitivity and CS thresholds.
constexpr double kSilentDbm = -120.0;
}  // namespace

std::pair<LinkRef, LinkRef> build_two_link(Workbench& wb,
                                           const TwoLinkParams& p, Rate rate_a,
                                           Rate rate_b) {
  Channel& ch = wb.channel();
  const double sig = p.signal_dbm;
  const double interf = p.interference_dbm;

  // Default everything to silent, then open the intended paths.
  for (NodeId a = 0; a < 4; ++a)
    for (NodeId b = 0; b < 4; ++b)
      if (a != b) ch.set_rss_dbm(a, b, kSilentDbm);

  // Both links always decode their own signal strongly (bidirectional, so
  // ACKs flow back).
  ch.set_rss_symmetric_dbm(0, 1, sig);
  ch.set_rss_symmetric_dbm(2, 3, sig);

  switch (p.cls) {
    case TopologyClass::kCS:
      // Transmitters sense each other (above CS threshold).
      ch.set_rss_symmetric_dbm(0, 2, interf);
      // Receivers also hear the foreign transmitter (typical chain layout).
      ch.set_rss_symmetric_dbm(1, 2, interf);
      ch.set_rss_symmetric_dbm(0, 3, interf);
      break;
    case TopologyClass::kIA:
      // Hidden transmitters; link A's receiver hears B's transmitter, so A
      // is the disadvantaged link; B never suffers.
      ch.set_rss_symmetric_dbm(1, 2, interf);
      break;
    case TopologyClass::kNF:
      // Hidden transmitters; each receiver hears the foreign transmitter.
      ch.set_rss_symmetric_dbm(1, 2, interf);
      ch.set_rss_symmetric_dbm(0, 3, interf);
      break;
    case TopologyClass::kIndependent:
      break;  // nothing crosses
  }

  auto errors = std::make_shared<TableErrorModel>();
  for (Rate r : {Rate::kR1Mbps, Rate::kR11Mbps}) {
    errors->set(0, 1, r, p.p_ch_a);
    errors->set(1, 0, r, 0.0);  // ACK path kept clean unless modeled
    errors->set(2, 3, r, p.p_ch_b);
    errors->set(3, 2, r, 0.0);
  }
  wb.channel().set_error_model(std::move(errors));

  return {LinkRef{0, 1, rate_a}, LinkRef{2, 3, rate_b}};
}

void build_gateway_chain(Workbench& wb, double cross_rss_dbm) {
  wb.add_nodes(4);
  Channel& ch = wb.channel();
  for (NodeId a = 0; a < 4; ++a)
    for (NodeId b = 0; b < 4; ++b)
      if (a != b) ch.set_rss_dbm(a, b, -120.0);
  ch.set_rss_symmetric_dbm(0, 1, -58.0);
  ch.set_rss_symmetric_dbm(1, 2, -58.0);
  ch.set_rss_symmetric_dbm(3, 2, cross_rss_dbm);
  ch.set_rss_symmetric_dbm(1, 3, -70.0);
}

}  // namespace meshopt
