#include "scenario/topologies.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>

#include "util/rng.h"

namespace meshopt {

namespace {
// "Cannot hear at all": far below sensitivity and CS thresholds.
constexpr double kSilentDbm = -120.0;
}  // namespace

std::pair<LinkRef, LinkRef> build_two_link(Workbench& wb,
                                           const TwoLinkParams& p, Rate rate_a,
                                           Rate rate_b) {
  Channel& ch = wb.channel();
  const double sig = p.signal_dbm;
  const double interf = p.interference_dbm;

  // Default everything to silent, then open the intended paths.
  for (NodeId a = 0; a < 4; ++a)
    for (NodeId b = 0; b < 4; ++b)
      if (a != b) ch.set_rss_dbm(a, b, kSilentDbm);

  // Both links always decode their own signal strongly (bidirectional, so
  // ACKs flow back).
  ch.set_rss_symmetric_dbm(0, 1, sig);
  ch.set_rss_symmetric_dbm(2, 3, sig);

  switch (p.cls) {
    case TopologyClass::kCS:
      // Transmitters sense each other (above CS threshold).
      ch.set_rss_symmetric_dbm(0, 2, interf);
      // Receivers also hear the foreign transmitter (typical chain layout).
      ch.set_rss_symmetric_dbm(1, 2, interf);
      ch.set_rss_symmetric_dbm(0, 3, interf);
      break;
    case TopologyClass::kIA:
      // Hidden transmitters; link A's receiver hears B's transmitter, so A
      // is the disadvantaged link; B never suffers.
      ch.set_rss_symmetric_dbm(1, 2, interf);
      break;
    case TopologyClass::kNF:
      // Hidden transmitters; each receiver hears the foreign transmitter.
      ch.set_rss_symmetric_dbm(1, 2, interf);
      ch.set_rss_symmetric_dbm(0, 3, interf);
      break;
    case TopologyClass::kIndependent:
      break;  // nothing crosses
  }

  auto errors = std::make_shared<TableErrorModel>();
  for (Rate r : {Rate::kR1Mbps, Rate::kR11Mbps}) {
    errors->set(0, 1, r, p.p_ch_a);
    errors->set(1, 0, r, 0.0);  // ACK path kept clean unless modeled
    errors->set(2, 3, r, p.p_ch_b);
    errors->set(3, 2, r, 0.0);
  }
  wb.channel().set_error_model(std::move(errors));

  return {LinkRef{0, 1, rate_a}, LinkRef{2, 3, rate_b}};
}

void build_gateway_chain(Workbench& wb, double cross_rss_dbm) {
  wb.add_nodes(4);
  Channel& ch = wb.channel();
  for (NodeId a = 0; a < 4; ++a)
    for (NodeId b = 0; b < 4; ++b)
      if (a != b) ch.set_rss_dbm(a, b, -120.0);
  ch.set_rss_symmetric_dbm(0, 1, -58.0);
  ch.set_rss_symmetric_dbm(1, 2, -58.0);
  ch.set_rss_symmetric_dbm(3, 2, cross_rss_dbm);
  ch.set_rss_symmetric_dbm(1, 3, -70.0);
}

namespace {

/// Cluster of the bridge with global bridge index b: joins lo and lo + 1.
int bridge_lo_cluster(const CityParams& p, int b) {
  return p.clusters > 1 ? b % (p.clusters - 1) : 0;
}

/// Synthesized pairwise RSS between links i and j of the city layout
/// (cluster links first, bridges last): intra-cluster pairs are strong,
/// a bridge hears the two clusters it joins (and its fellow bridges not
/// at all), everything else is silent.
double city_pair_rss(const CityParams& p, int i, int j) {
  const int cluster_links = p.clusters * p.links_per_cluster;
  const auto cluster_of = [&](int l) {
    return l < cluster_links ? l / p.links_per_cluster : -1;
  };
  const int ci = cluster_of(i), cj = cluster_of(j);
  if (ci >= 0 && cj >= 0) return ci == cj ? p.cluster_rss_dbm : kSilentDbm;
  if (ci < 0 && cj < 0) return kSilentDbm;  // bridge <-> bridge
  const int bridge = (ci < 0 ? i : j) - cluster_links;
  const int cluster = ci < 0 ? cj : ci;
  const int lo = bridge_lo_cluster(p, bridge);
  return (cluster == lo || cluster == lo + 1) ? p.bridge_rss_dbm : kSilentDbm;
}

}  // namespace

MeasurementSnapshot build_city_snapshot(const CityParams& p) {
  if (p.clusters < 1 || p.links_per_cluster < 1 || p.bridge_links < 0)
    throw std::invalid_argument("CityParams: bad shape");
  const int cluster_links = p.clusters * p.links_per_cluster;
  const int total_links = cluster_links + p.bridge_links;
  // Each cluster's chain uses links_per_cluster + 1 dedicated nodes; each
  // bridge uses 2 more. Node ids never overlap across clusters/bridges.
  const int nodes_per_cluster = p.links_per_cluster + 1;

  MeasurementSnapshot snap;
  snap.links.reserve(static_cast<std::size_t>(total_links));
  RngStream rng(p.seed, "city-topology");
  const auto push_link = [&](NodeId src, NodeId dst) {
    SnapshotLink l;
    l.src = src;
    l.dst = dst;
    l.rate = Rate::kR11Mbps;
    l.estimate.p_data = rng.uniform(0.0, 0.05);
    l.estimate.p_ack = 0.0;
    l.estimate.p_link = l.estimate.p_data;
    l.estimate.capacity_bps = p.base_capacity_bps * rng.uniform(0.8, 1.2);
    snap.links.push_back(l);
  };
  for (int c = 0; c < p.clusters; ++c) {
    const NodeId base = c * nodes_per_cluster;
    for (int i = 0; i < p.links_per_cluster; ++i)
      push_link(base + i, base + i + 1);
  }
  const NodeId bridge_base = p.clusters * nodes_per_cluster;
  for (int b = 0; b < p.bridge_links; ++b)
    push_link(bridge_base + 2 * b, bridge_base + 2 * b + 1);

  // Neighbor relation: each link's own endpoints (enough for a sane
  // two-hop fallback; the city model is the measured-LIR table below).
  for (const SnapshotLink& l : snap.links)
    snap.neighbors.emplace_back(std::min(l.src, l.dst),
                                std::max(l.src, l.dst));
  std::sort(snap.neighbors.begin(), snap.neighbors.end());
  snap.neighbors.erase(
      std::unique(snap.neighbors.begin(), snap.neighbors.end()),
      snap.neighbors.end());

  // Binary-LIR interference from the synthesized RSS, cut at the
  // decomposition threshold: strong pairs conflict, weak pairs are
  // independent (LIR 1.0).
  snap.lir_threshold = p.lir_threshold;
  snap.lir.resize(total_links, total_links, 1.0);
  for (int i = 0; i < total_links; ++i)
    for (int j = i + 1; j < total_links; ++j)
      if (city_pair_rss(p, i, j) >= p.decompose_threshold_dbm) {
        snap.lir(i, j) = p.conflict_lir;
        snap.lir(j, i) = p.conflict_lir;
      }
  return snap;
}

std::vector<FlowSpec> city_flows(const CityParams& p) {
  std::vector<FlowSpec> flows;
  const int nodes_per_cluster = p.links_per_cluster + 1;
  const int per_cluster = std::min(p.flows_per_cluster, p.links_per_cluster);
  int id = 0;
  for (int c = 0; c < p.clusters; ++c) {
    const NodeId base = c * nodes_per_cluster;
    for (int j = 0; j < per_cluster; ++j) {
      FlowSpec f;
      f.flow_id = id++;
      for (int n = j; n <= p.links_per_cluster; ++n) f.path.push_back(base + n);
      flows.push_back(std::move(f));
    }
  }
  return flows;
}

std::vector<int> city_cluster_links(const CityParams& p, int cluster) {
  if (cluster < 0 || cluster >= p.clusters)
    throw std::out_of_range("city_cluster_links: cluster " +
                            std::to_string(cluster));
  std::vector<int> ids(static_cast<std::size_t>(p.links_per_cluster));
  for (int i = 0; i < p.links_per_cluster; ++i)
    ids[static_cast<std::size_t>(i)] = cluster * p.links_per_cluster + i;
  return ids;
}

}  // namespace meshopt
