#pragma once
// Dynamics subsystem — scripted network churn for online-optimization
// studies (see ARCHITECTURE.md, "Dynamics & planner cache").
//
// The paper's whole premise is ONLINE optimization: the controller must
// keep re-planning as measured link conditions drift (the control-theoretic
// framing of arXiv:1203.2970, the time-varying fairness studies of
// arXiv:1002.1581). A DynamicsScript is a timeline of NetEvents — node
// join/leave, link-quality steps and drift, external interferers flapping
// on/off, traffic flows starting and stopping — that a DynamicsEngine arms
// on a Workbench's simulator so the scenario actually varies mid-run while
// a MeshController keeps sensing and re-planning over it.
//
// Determinism contract: the engine draws NO randomness at run time. Every
// stochastic perturbation is expanded into concrete timed events at script
// GENERATION time by the generator functions below, each a pure function
// of its RngStream — so a script is a value, a fleet of dynamic scenarios
// derives each cell's script from the cell seed, and runs are bit-identical
// across thread counts (tests/test_dynamics.cpp).

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "phy/radio.h"
#include "scenario/workbench.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace meshopt {

class UdpSource;

/// What a timed event does to the running network.
enum class NetEventKind : std::uint8_t {
  kNodeLeave,      ///< node drops off the mesh (RSS rows/cols silenced)
  kNodeJoin,       ///< node rejoins (RSS restored as saved at leave)
  kLinkRss,        ///< set RSS of src->dst (symmetric) to `value` dBm
  kLinkLoss,       ///< override channel loss of src->dst at `rate` to `value`
  kInterfererOn,   ///< node starts duty-cycled foreign transmissions
  kInterfererOff,  ///< node stops interfering
  kTrafficStart,   ///< open (or resume) a UDP CBR flow along `path` at
                   ///< `value` bits/s; re-starts of a `traffic_id` resume
                   ///< the same flow at the new rate (path fixed by the
                   ///< first start), so on/off cycles keep one accounting
                   ///< record
  kTrafficStop,    ///< pause the flow started under the same `traffic_id`
};

/// One timed change. Only the fields its kind reads are meaningful.
struct NetEvent {
  double at_s = 0.0;  ///< simulated time the change applies
  NetEventKind kind = NetEventKind::kLinkRss;
  NodeId node = -1;            ///< kNodeLeave/kNodeJoin/kInterferer* target
  NodeId src = -1;             ///< kLinkRss / kLinkLoss
  NodeId dst = -1;             ///< kLinkRss / kLinkLoss
  Rate rate = Rate::kR1Mbps;   ///< kLinkLoss stream / kTrafficStart links
  double value = 0.0;          ///< dBm (kLinkRss), probability (kLinkLoss),
                               ///< bits/s (kTrafficStart)
  /// kInterfererOn shape: one `duty * period_s` frame every `period_s`.
  double period_s = 0.002;
  double duty = 0.5;
  int traffic_id = -1;             ///< kTrafficStart/kTrafficStop pairing
  std::vector<NodeId> path;        ///< kTrafficStart node sequence src..dst
  int payload_bytes = 1470;        ///< kTrafficStart UDP payload
};

/// A value-type event timeline, kept sorted by time (stable, so events at
/// equal times apply in insertion order).
struct DynamicsScript {
  std::vector<NetEvent> events;

  /// Append one event (re-sorts; scripts are built once, not hot).
  DynamicsScript& add(NetEvent event);
  /// Splice another script's events into this one.
  DynamicsScript& merge(const DynamicsScript& other);
  /// Time of the last event, 0 for an empty script.
  [[nodiscard]] double horizon_s() const;

 private:
  void sort_events();
};

// ---------------------------------------------------------------------------
// Perturbation generators: pure functions of an RngStream, expanding a
// stochastic process into a concrete deterministic script.

/// Random-walk channel-loss drift on the directed link src->dst at `rate`:
/// starting from `p0`, every `step_period_s` the loss takes a normal step
/// of deviation `sigma`, clamped to [0, p_max]. One kLinkLoss event per
/// step over [start_s, start_s + duration_s).
[[nodiscard]] DynamicsScript random_walk_loss_drift(
    NodeId src, NodeId dst, Rate rate, double p0, double sigma,
    double step_period_s, double duration_s, RngStream rng,
    double start_s = 0.0, double p_max = 0.9);

/// Markov on/off external interferer at `node`: exponential holding times
/// with means `mean_on_s` / `mean_off_s`, starting off. Emits alternating
/// kInterfererOn (with the given duty cycle shape) / kInterfererOff events
/// over [start_s, start_s + duration_s).
[[nodiscard]] DynamicsScript markov_interferer(
    NodeId node, double mean_on_s, double mean_off_s, double duration_s,
    RngStream rng, double start_s = 0.0, double period_s = 0.002,
    double duty = 0.5);

/// One leave/rejoin cycle for `node` (leave_s < rejoin_s; rejoin_s < 0
/// leaves the node gone for good).
[[nodiscard]] DynamicsScript node_flap(NodeId node, double leave_s,
                                       double rejoin_s = -1.0);

// ---------------------------------------------------------------------------

/// Binds a script to a Workbench and applies its events at their simulated
/// times. Construct after the topology is built, arm() before running.
///
/// Mechanics per kind:
///  * kNodeLeave silences every RSS entry to and from the node (saving the
///    previous values); kNodeJoin restores them exactly, so a leave/join
///    cycle is RSS-transparent. Both drive the channel's reach index and
///    hence the controller's sensed neighbor relation — the topology
///    fingerprint changes, and the planner re-enumerates.
///  * kLinkLoss installs (lazily, at arm) an overlay error model on top of
///    the channel's current one; un-overridden pairs fall through.
///  * kInterfererOn starts duty-cycled transmissions from `node` on the
///    channel directly — use a passive channel node
///    (Channel::add_node(nullptr)) placed by the scenario builder, so no
///    MAC contends for it. Its frames are addressed to the interferer
///    itself: nothing decodes them, but their energy raises carrier sense
///    and corrupts overlapping receptions exactly like a foreign network.
///  * kTrafficStart opens a UDP flow + CBR source owned by the engine;
///    its RNG stream derives from (workbench seed, traffic_id), not from
///    call order.
///
/// The engine must outlive any simulation it armed; its destructor cancels
/// every pending event it scheduled.
class DynamicsEngine {
 public:
  DynamicsEngine(Workbench& wb, DynamicsScript script);
  ~DynamicsEngine();

  DynamicsEngine(const DynamicsEngine&) = delete;
  DynamicsEngine& operator=(const DynamicsEngine&) = delete;

  /// Schedule every not-yet-applied event at max(now, at_s). Idempotent:
  /// re-arming cancels the still-pending schedules and re-issues them, so
  /// a double arm() never double-applies an event, and events that
  /// already fired are never replayed (tests/test_dynamics.cpp pins
  /// both).
  void arm();

  /// Events applied so far.
  [[nodiscard]] int applied() const { return applied_; }
  /// Is `node` currently transmitting as an interferer?
  [[nodiscard]] bool interferer_active(NodeId node) const;
  /// The script this engine was built with.
  [[nodiscard]] const DynamicsScript& script() const { return script_; }

 private:
  /// Loss overlay: overridden (src, dst, rate) pairs hit the table, all
  /// others fall through to the model that was installed before arm().
  class OverlayErrorModel final : public ErrorModel {
   public:
    explicit OverlayErrorModel(std::shared_ptr<const ErrorModel> base)
        : base_(std::move(base)) {}
    void set(NodeId src, NodeId dst, Rate rate, double p) {
      table_.set(src, dst, rate, p);
      overridden_.insert_or_assign(key(src, dst, rate), true);
    }
    [[nodiscard]] double per(NodeId src, NodeId dst, Rate rate,
                             FrameType type) const override {
      const Rate r = type == FrameType::kAck ? Rate::kR1Mbps : rate;
      if (overridden_.contains(key(src, dst, r)))
        return table_.per(src, dst, rate, type);
      return base_ ? base_->per(src, dst, rate, type) : 0.0;
    }

   private:
    [[nodiscard]] static std::uint64_t key(NodeId s, NodeId d, Rate r) {
      return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(s))
              << 34) |
             (static_cast<std::uint64_t>(static_cast<std::uint32_t>(d))
              << 2) |
             static_cast<std::uint64_t>(r);
    }
    std::shared_ptr<const ErrorModel> base_;
    TableErrorModel table_;
    std::map<std::uint64_t, bool> overridden_;
  };

  struct InterfererState {
    bool active = false;
    double period_s = 0.002;
    double duty = 0.5;
    EventId tick = kNoEvent;  ///< the pending self-rescheduled frame
  };

  void apply(const NetEvent& event);
  void node_leave(NodeId node);
  void node_join(NodeId node);
  void interferer_on(const NetEvent& event);
  void interferer_off(NodeId node);
  void interferer_tick(NodeId node);
  void traffic_start(const NetEvent& event);
  void traffic_stop(int traffic_id);
  OverlayErrorModel& losses();

  Workbench& wb_;
  DynamicsScript script_;
  int applied_ = 0;
  std::vector<EventId> pending_;  ///< script events awaiting their time
  std::vector<char> fired_;       ///< per-event applied flag (see arm())
  /// RSS rows/cols saved by the last kNodeLeave of each node:
  /// (out = rss(node, m), in = rss(m, node)) for every other node m, in
  /// node-id order at leave time.
  std::map<NodeId, std::vector<std::pair<double, double>>> left_;
  std::shared_ptr<OverlayErrorModel> losses_;
  std::map<NodeId, InterfererState> interferers_;
  std::map<int, std::unique_ptr<UdpSource>> traffic_;
};

}  // namespace meshopt
