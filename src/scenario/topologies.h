#pragma once
// Canonical two-link interference topologies (Garetto/Shi/Knightly [16],
// as used by the paper's Section 4.3):
//
//   CS (Carrier Sense):        the two transmitters sense each other.
//   IA (Information Asymmetry): transmitters hidden from each other; one
//                               receiver hears the other link's transmitter.
//   NF (Near-Far):             transmitters hidden; each receiver hears the
//                               other link's transmitter.
//
// Built by writing the RSS matrix directly, so each class's sensing
// relations hold by construction. Node layout: 0 -> 1 is link A (tx 0),
// 2 -> 3 is link B (tx 2).

#include <cstdint>
#include <vector>

#include "core/rate_plan.h"
#include "core/snapshot.h"
#include "phy/channel.h"
#include "phy/radio.h"
#include "scenario/workbench.h"

namespace meshopt {

enum class TopologyClass : std::uint8_t { kCS, kIA, kNF, kIndependent };

[[nodiscard]] constexpr const char* topology_name(TopologyClass c) {
  switch (c) {
    case TopologyClass::kCS:
      return "CS";
    case TopologyClass::kIA:
      return "IA";
    case TopologyClass::kNF:
      return "NF";
    case TopologyClass::kIndependent:
      return "IND";
  }
  return "?";
}

struct TwoLinkParams {
  TopologyClass cls = TopologyClass::kCS;
  double signal_dbm = -60.0;       ///< tx->own-rx signal strength
  /// Cross-link signal where the class says it is heard. The default puts
  /// SINR near the 1 Mb/s decode threshold so that hidden-terminal overlap
  /// leads to graded capture (some frames survive, some die).
  double interference_dbm = -62.0;
  /// Per-link channel loss on a clean channel (DATA frames), per rate.
  double p_ch_a = 0.0;
  double p_ch_b = 0.0;
};

/// Configure nodes 0..3 of `wb` (which must already have >= 4 nodes) as the
/// requested two-link topology and install the channel error table.
/// Returns the two links (0->1 at rate_a, 2->3 at rate_b).
std::pair<LinkRef, LinkRef> build_two_link(Workbench& wb,
                                           const TwoLinkParams& params,
                                           Rate rate_a, Rate rate_b);

/// The 4-node "starvation gateway" scenario used across the control-plane
/// tests, examples, and benches: chain 0-1-2 carrying a two-hop flow
/// 0->1->2, plus a one-hop cross flow 3->2 whose link quality
/// (`cross_rss_dbm`) sets how badly the chain starves. Adds the 4 nodes
/// and writes the RSS matrix; flows/controllers are the caller's.
void build_gateway_chain(Workbench& wb, double cross_rss_dbm = -56.0);

/// City-scale mesh: `clusters` gateway neighborhoods, each a chain of
/// `links_per_cluster` links whose members all interfere pairwise (a
/// conflict-graph CLIQUE — one transmission per neighborhood at a time),
/// bridged by `bridge_links` long weak links on dedicated nodes. The
/// snapshot is built directly (measured-LIR model, no Workbench): pairwise
/// RSS is synthesized per the layout and cut at `decompose_threshold_dbm` —
/// pairs at or above the cut get `conflict_lir` (below `lir_threshold`, so
/// they conflict), weaker pairs get LIR 1.0 (independent). With the default
/// bridge RSS BELOW the cut the interference graph separates into
/// `clusters` cliques plus `bridge_links` singletons — the separable
/// instance the decomposition tier (opt/decompose.h) is built for; lowering
/// the cut under `bridge_rss_dbm` fuses everything into one component and
/// exercises the monolithic fallback. Capacities get deterministic per-link
/// jitter from `seed` so optima are unique (the differential tests compare
/// decomposed vs monolithic solutions, not just objectives).
struct CityParams {
  int clusters = 4;
  int links_per_cluster = 12;
  int bridge_links = 3;      ///< bridge b joins clusters b and b+1 (mod)
  int flows_per_cluster = 3; ///< flow j of a cluster rides links j..end
  double cluster_rss_dbm = -55.0;  ///< intra-cluster pairwise RSS
  double bridge_rss_dbm = -82.0;   ///< bridge <-> bridged-cluster RSS
  double decompose_threshold_dbm = -75.0;  ///< RSS cut for interference
  double conflict_lir = 0.2;       ///< LIR written for interfering pairs
  double lir_threshold = 0.95;     ///< snapshot's binary-LIR threshold
  double base_capacity_bps = 1.0e6;
  std::uint64_t seed = 1;          ///< capacity/loss jitter stream
};

/// Build the city snapshot: cluster links first (cluster 0's
/// `links_per_cluster` links, then cluster 1's, ...), bridge links last.
[[nodiscard]] MeasurementSnapshot build_city_snapshot(const CityParams& p);

/// Intra-cluster flows (no flow crosses a bridge): per cluster,
/// `flows_per_cluster` flows where flow j follows the chain from hop j to
/// the end. Flow ids are globally unique and ascending.
[[nodiscard]] std::vector<FlowSpec> city_flows(const CityParams& p);

/// Global link indices of one cluster (ascending) — the churn handle:
/// perturbing these links' LIR cells or capacities touches exactly one
/// interference component. @throws std::out_of_range on a bad cluster.
[[nodiscard]] std::vector<int> city_cluster_links(const CityParams& p,
                                                  int cluster);

}  // namespace meshopt
