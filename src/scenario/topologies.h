#pragma once
// Canonical two-link interference topologies (Garetto/Shi/Knightly [16],
// as used by the paper's Section 4.3):
//
//   CS (Carrier Sense):        the two transmitters sense each other.
//   IA (Information Asymmetry): transmitters hidden from each other; one
//                               receiver hears the other link's transmitter.
//   NF (Near-Far):             transmitters hidden; each receiver hears the
//                               other link's transmitter.
//
// Built by writing the RSS matrix directly, so each class's sensing
// relations hold by construction. Node layout: 0 -> 1 is link A (tx 0),
// 2 -> 3 is link B (tx 2).

#include <cstdint>

#include "phy/channel.h"
#include "phy/radio.h"
#include "scenario/workbench.h"

namespace meshopt {

enum class TopologyClass : std::uint8_t { kCS, kIA, kNF, kIndependent };

[[nodiscard]] constexpr const char* topology_name(TopologyClass c) {
  switch (c) {
    case TopologyClass::kCS:
      return "CS";
    case TopologyClass::kIA:
      return "IA";
    case TopologyClass::kNF:
      return "NF";
    case TopologyClass::kIndependent:
      return "IND";
  }
  return "?";
}

struct TwoLinkParams {
  TopologyClass cls = TopologyClass::kCS;
  double signal_dbm = -60.0;       ///< tx->own-rx signal strength
  /// Cross-link signal where the class says it is heard. The default puts
  /// SINR near the 1 Mb/s decode threshold so that hidden-terminal overlap
  /// leads to graded capture (some frames survive, some die).
  double interference_dbm = -62.0;
  /// Per-link channel loss on a clean channel (DATA frames), per rate.
  double p_ch_a = 0.0;
  double p_ch_b = 0.0;
};

/// Configure nodes 0..3 of `wb` (which must already have >= 4 nodes) as the
/// requested two-link topology and install the channel error table.
/// Returns the two links (0->1 at rate_a, 2->3 at rate_b).
std::pair<LinkRef, LinkRef> build_two_link(Workbench& wb,
                                           const TwoLinkParams& params,
                                           Rate rate_a, Rate rate_b);

/// The 4-node "starvation gateway" scenario used across the control-plane
/// tests, examples, and benches: chain 0-1-2 carrying a two-hop flow
/// 0->1->2, plus a one-hop cross flow 3->2 whose link quality
/// (`cross_rss_dbm`) sets how badly the chain starves. Adds the 4 nodes
/// and writes the RSS matrix; flows/controllers are the caller's.
void build_gateway_chain(Workbench& wb, double cross_rss_dbm = -56.0);

}  // namespace meshopt
