#pragma once
// Experiment workbench: bundles a Simulator, Channel and Network and offers
// the measurement phases the paper's validation methodology uses —
// "transmit alone backlogged for T seconds and record maxUDP", "apply this
// input-rate vector for T seconds and record outputs", etc.

#include <cstdint>
#include <memory>
#include <vector>

#include "net/network.h"
#include "phy/channel.h"
#include "sim/simulator.h"
#include "transport/udp.h"

namespace meshopt {

/// A directed link under test.
struct LinkRef {
  NodeId src = -1;
  NodeId dst = -1;
  Rate rate = Rate::kR1Mbps;
};

struct MeasuredOutput {
  double throughput_bps = 0.0;      ///< delivered UDP payload rate
  double offered_bps = 0.0;         ///< input (sent) UDP payload rate
  double loss_rate = 0.0;           ///< 1 - delivered/sent packets
};

class Workbench {
 public:
  explicit Workbench(std::uint64_t seed, PhyParams phy = PhyParams{});

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] Channel& channel() { return channel_; }
  [[nodiscard]] Network& net() { return net_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Add `n` nodes with default MAC timings.
  void add_nodes(int n, const MacTimings& timings = MacTimings{});

  /// Measure maxUDP throughput (bits/s of UDP payload) of each link in
  /// `links` transmitting simultaneously, backlogged, for `duration_s`.
  /// Pass a single link to obtain the paper's primary extreme points.
  std::vector<double> measure_backlogged(const std::vector<LinkRef>& links,
                                         double duration_s,
                                         int payload_bytes = 1470);

  /// Like measure_backlogged but also reports offered rate and UDP-level
  /// loss (the residual loss after MAC retries — the paper's p_l).
  std::vector<MeasuredOutput> measure_backlogged_outputs(
      const std::vector<LinkRef>& links, double duration_s,
      int payload_bytes = 1470);

  /// Apply CBR input rates (UDP payload bits/s) on the links and measure
  /// the output rates over `duration_s`.
  std::vector<MeasuredOutput> measure_with_input_rates(
      const std::vector<LinkRef>& links, const std::vector<double>& rates_bps,
      double duration_s, int payload_bytes = 1470);

  /// Advance simulated time (lets queues drain / probes run).
  void run_for(double duration_s);

 private:
  std::uint64_t seed_;
  Simulator sim_;
  Channel channel_;
  Network net_;
  int next_experiment_ = 0;
};

}  // namespace meshopt
