#include "scenario/workbench.h"

#include <algorithm>
#include <string>

namespace meshopt {

Workbench::Workbench(std::uint64_t seed, PhyParams phy)
    : seed_(seed),
      channel_(sim_, phy, RngStream(seed, "channel")),
      net_(sim_, channel_, seed) {}

void Workbench::add_nodes(int n, const MacTimings& timings) {
  for (int i = 0; i < n; ++i) net_.add_node(timings);
}

std::vector<double> Workbench::measure_backlogged(
    const std::vector<LinkRef>& links, double duration_s, int payload_bytes) {
  std::vector<double> out;
  for (const MeasuredOutput& m :
       measure_backlogged_outputs(links, duration_s, payload_bytes)) {
    out.push_back(m.throughput_bps);
  }
  return out;
}

std::vector<MeasuredOutput> Workbench::measure_backlogged_outputs(
    const std::vector<LinkRef>& links, double duration_s, int payload_bytes) {
  const int exp_id = next_experiment_++;
  std::vector<std::unique_ptr<UdpSource>> sources;
  std::vector<int> flow_ids;
  for (std::size_t i = 0; i < links.size(); ++i) {
    const LinkRef& l = links[i];
    net_.node(l.src).set_route(l.dst, l.dst);
    net_.node(l.src).set_link_rate(l.dst, l.rate);
    const int flow =
        net_.open_flow(l.src, l.dst, Protocol::kUdp, payload_bytes);
    flow_ids.push_back(flow);
    sources.push_back(std::make_unique<UdpSource>(
        net_, flow, UdpMode::kBacklogged, 0.0,
        RngStream(seed_, "src-" + std::to_string(exp_id) + "-" +
                             std::to_string(i))));
  }
  for (auto& s : sources) s->start();
  // Short warmup so queues reach steady state before counting.
  run_for(0.5);
  net_.reset_flow_counters();
  run_for(duration_s);
  std::vector<MeasuredOutput> out;
  out.reserve(links.size());
  for (int flow : flow_ids) {
    const FlowRecord& f = net_.flow(flow);
    MeasuredOutput m;
    m.throughput_bps = f.throughput_bps(duration_s);
    m.offered_bps = 8.0 * static_cast<double>(f.sent_packets) *
                    static_cast<double>(f.payload_bytes) / duration_s;
    m.loss_rate =
        f.sent_packets > 0
            ? std::max(0.0, 1.0 - static_cast<double>(f.delivered_packets) /
                                      static_cast<double>(f.sent_packets))
            : 0.0;
    out.push_back(m);
  }
  for (auto& s : sources) s->stop();
  run_for(0.2);  // drain
  return out;
}

std::vector<MeasuredOutput> Workbench::measure_with_input_rates(
    const std::vector<LinkRef>& links, const std::vector<double>& rates_bps,
    double duration_s, int payload_bytes) {
  const int exp_id = next_experiment_++;
  std::vector<std::unique_ptr<UdpSource>> sources;
  std::vector<int> flow_ids;
  for (std::size_t i = 0; i < links.size(); ++i) {
    const LinkRef& l = links[i];
    net_.node(l.src).set_route(l.dst, l.dst);
    net_.node(l.src).set_link_rate(l.dst, l.rate);
    const int flow =
        net_.open_flow(l.src, l.dst, Protocol::kUdp, payload_bytes);
    flow_ids.push_back(flow);
    sources.push_back(std::make_unique<UdpSource>(
        net_, flow, UdpMode::kCbr, rates_bps[i],
        RngStream(seed_, "cbr-" + std::to_string(exp_id) + "-" +
                             std::to_string(i))));
  }
  for (auto& s : sources) s->start();
  run_for(0.5);
  net_.reset_flow_counters();
  run_for(duration_s);
  std::vector<MeasuredOutput> out;
  out.reserve(links.size());
  for (int flow : flow_ids) {
    const FlowRecord& f = net_.flow(flow);
    MeasuredOutput m;
    m.throughput_bps = f.throughput_bps(duration_s);
    m.offered_bps = 8.0 *
                    static_cast<double>(f.sent_packets) *
                    static_cast<double>(f.payload_bytes) / duration_s;
    m.loss_rate =
        f.sent_packets > 0
            ? 1.0 - static_cast<double>(f.delivered_packets) /
                        static_cast<double>(f.sent_packets)
            : 0.0;
    out.push_back(m);
  }
  for (auto& s : sources) s->stop();
  run_for(0.2);
  return out;
}

void Workbench::run_for(double duration_s) {
  sim_.run_until(sim_.now() + seconds(duration_s));
}

}  // namespace meshopt
