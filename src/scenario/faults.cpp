#include "scenario/faults.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace meshopt {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCorruptLoss: return "corrupt-loss";
    case FaultKind::kCorruptCapacity: return "corrupt-capacity";
    case FaultKind::kDropWindow: return "drop-window";
    case FaultKind::kStaleReplay: return "stale-replay";
    case FaultKind::kPartialSnapshot: return "partial-snapshot";
    case FaultKind::kApplyFailure: return "apply-failure";
  }
  return "unknown";
}

// --------------------------------------------------------------- script

namespace {
void sort_events(std::vector<FaultEvent>& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.round < b.round;
                   });
}
}  // namespace

FaultScript& FaultScript::add(FaultEvent event) {
  events.push_back(event);
  sort_events(events);
  return *this;
}

FaultScript& FaultScript::merge(const FaultScript& other) {
  events.insert(events.end(), other.events.begin(), other.events.end());
  sort_events(events);
  return *this;
}

int FaultScript::horizon() const {
  return events.empty() ? -1 : events.back().round;
}

// ----------------------------------------------------------- generators

FaultScript loss_corruption_faults(int rounds, double prob, int max_link,
                                   RngStream rng) {
  // The poison menu covers every loss-field failure class the validator
  // must catch: NaN, Inf, negative, above-one.
  const double poisons[] = {std::numeric_limits<double>::quiet_NaN(),
                            std::numeric_limits<double>::infinity(), -0.25,
                            1.5};
  FaultScript script;
  for (int r = 0; r < rounds; ++r) {
    if (!rng.bernoulli(prob)) continue;
    FaultEvent e;
    e.round = r;
    e.kind = FaultKind::kCorruptLoss;
    e.link = rng.uniform_int(0, std::max(0, max_link));
    e.value = poisons[rng.uniform_int(0, 3)];
    script.events.push_back(e);
  }
  return script;
}

FaultScript capacity_outlier_faults(int rounds, double prob, int max_link,
                                    RngStream rng, double scale) {
  FaultScript script;
  for (int r = 0; r < rounds; ++r) {
    if (!rng.bernoulli(prob)) continue;
    FaultEvent e;
    e.round = r;
    e.kind = FaultKind::kCorruptCapacity;
    e.link = rng.uniform_int(0, std::max(0, max_link));
    e.value = rng.bernoulli(0.25) ? -1e6 : scale * rng.uniform(0.5, 2.0);
    script.events.push_back(e);
  }
  return script;
}

FaultScript window_dropout_faults(int rounds, double prob, RngStream rng) {
  FaultScript script;
  for (int r = 0; r < rounds; ++r) {
    if (!rng.bernoulli(prob)) continue;
    FaultEvent e;
    e.round = r;
    e.kind = FaultKind::kDropWindow;
    script.events.push_back(e);
  }
  return script;
}

FaultScript stale_replay_faults(int rounds, double prob, int max_len,
                                RngStream rng) {
  FaultScript script;
  int r = 0;
  while (r < rounds) {
    if (!rng.bernoulli(prob)) {
      ++r;
      continue;
    }
    const int len = rng.uniform_int(1, std::max(1, max_len));
    for (int k = 0; k < len && r < rounds; ++k, ++r) {
      FaultEvent e;
      e.round = r;
      e.kind = FaultKind::kStaleReplay;
      script.events.push_back(e);
    }
  }
  return script;
}

FaultScript partial_snapshot_faults(int rounds, double prob, int max_links,
                                    RngStream rng) {
  FaultScript script;
  for (int r = 0; r < rounds; ++r) {
    if (!rng.bernoulli(prob)) continue;
    FaultEvent e;
    e.round = r;
    e.kind = FaultKind::kPartialSnapshot;
    e.link = rng.uniform_int(0, 1 << 16);  // start index, wrapped at use
    e.count = rng.uniform_int(1, std::max(1, max_links));
    script.events.push_back(e);
  }
  return script;
}

FaultScript apply_failure_faults(int rounds, double prob, RngStream rng) {
  FaultScript script;
  for (int r = 0; r < rounds; ++r) {
    if (!rng.bernoulli(prob)) continue;
    FaultEvent e;
    e.round = r;
    e.kind = FaultKind::kApplyFailure;
    script.events.push_back(e);
  }
  return script;
}

// --------------------------------------------------------------- engine

FaultEngine::FaultEngine(SnapshotSource* base, FaultScript script)
    : base_(base), script_(std::move(script)) {}

bool FaultEngine::next(MeasurementSnapshot& out) {
  MeasurementSnapshot fresh;
  if (!base_->next(fresh)) return false;
  ++round_;
  apply_fault_ = false;

  // The clean snapshot of THIS round becomes next round's stale replay
  // payload; stash it before any corruption touches `fresh`.
  MeasurementSnapshot clean = fresh;

  bool dropped = false;
  for (; cursor_ < script_.events.size() &&
         script_.events[cursor_].round <= round_;
       ++cursor_) {
    const FaultEvent& e = script_.events[cursor_];
    if (e.round < round_) continue;  // script rounds the source never hit
    ++injected_;
    switch (e.kind) {
      case FaultKind::kStaleReplay:
        if (have_last_)
          fresh = last_clean_;
        else
          dropped = true;  // nothing to replay yet: degrade to dropout
        break;
      case FaultKind::kDropWindow:
        dropped = true;
        break;
      case FaultKind::kCorruptLoss:
        if (!fresh.links.empty()) {
          SnapshotLink& l = fresh.links[static_cast<std::size_t>(e.link) %
                                        fresh.links.size()];
          l.estimate.p_data = e.value;
          l.estimate.p_ack = e.value;
          l.estimate.p_link = e.value;
        }
        break;
      case FaultKind::kCorruptCapacity:
        if (!fresh.links.empty()) {
          fresh.links[static_cast<std::size_t>(e.link) % fresh.links.size()]
              .estimate.capacity_bps = e.value;
        }
        break;
      case FaultKind::kPartialSnapshot:
        for (int k = 0; k < e.count && !fresh.links.empty(); ++k) {
          fresh.links.erase(fresh.links.begin() +
                            static_cast<std::ptrdiff_t>(
                                static_cast<std::size_t>(e.link) %
                                fresh.links.size()));
        }
        break;
      case FaultKind::kApplyFailure:
        apply_fault_ = true;
        break;
    }
  }

  if (dropped) fresh = MeasurementSnapshot{};
  last_clean_ = std::move(clean);
  have_last_ = true;
  out = std::move(fresh);
  return true;
}

std::vector<MeasurementSnapshot> fault_rounds(
    const std::vector<MeasurementSnapshot>& rounds,
    const FaultScript& script) {
  TraceSource base(&rounds);
  FaultEngine engine(&base, script);
  std::vector<MeasurementSnapshot> out;
  out.reserve(rounds.size());
  MeasurementSnapshot snap;
  while (engine.next(snap)) out.push_back(std::move(snap));
  return out;
}

}  // namespace meshopt
