#include "scenario/dynamics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "transport/udp.h"

namespace meshopt {

namespace {
/// Far below every sensitivity/CS threshold: "cannot hear at all".
constexpr double kGoneDbm = -200.0;
/// An interferer must never overlap its own previous frame (the channel
/// asserts single transmission per node), so duty is clamped below 1.
constexpr double kMaxDuty = 0.95;
}  // namespace

// --------------------------------------------------------------- script

DynamicsScript& DynamicsScript::add(NetEvent event) {
  events.push_back(std::move(event));
  sort_events();
  return *this;
}

DynamicsScript& DynamicsScript::merge(const DynamicsScript& other) {
  events.insert(events.end(), other.events.begin(), other.events.end());
  sort_events();
  return *this;
}

double DynamicsScript::horizon_s() const {
  return events.empty() ? 0.0 : events.back().at_s;
}

void DynamicsScript::sort_events() {
  std::stable_sort(events.begin(), events.end(),
                   [](const NetEvent& a, const NetEvent& b) {
                     return a.at_s < b.at_s;
                   });
}

// ----------------------------------------------------------- generators

DynamicsScript random_walk_loss_drift(NodeId src, NodeId dst, Rate rate,
                                      double p0, double sigma,
                                      double step_period_s, double duration_s,
                                      RngStream rng, double start_s,
                                      double p_max) {
  if (step_period_s <= 0.0)
    throw std::invalid_argument(
        "random_walk_loss_drift: step_period_s must be > 0");
  DynamicsScript script;
  double p = std::clamp(p0, 0.0, p_max);
  for (double t = start_s; t < start_s + duration_s; t += step_period_s) {
    NetEvent e;
    e.at_s = t;
    e.kind = NetEventKind::kLinkLoss;
    e.src = src;
    e.dst = dst;
    e.rate = rate;
    e.value = p;
    script.events.push_back(std::move(e));
    p = std::clamp(p + rng.normal(0.0, sigma), 0.0, p_max);
  }
  return script;
}

DynamicsScript markov_interferer(NodeId node, double mean_on_s,
                                 double mean_off_s, double duration_s,
                                 RngStream rng, double start_s,
                                 double period_s, double duty) {
  if (mean_on_s <= 0.0 || mean_off_s <= 0.0 || period_s <= 0.0)
    throw std::invalid_argument(
        "markov_interferer: holding-time means and period must be > 0");
  DynamicsScript script;
  bool on = false;
  double t = start_s + rng.exponential(mean_off_s);
  const double end = start_s + duration_s;
  while (t < end) {
    NetEvent e;
    e.at_s = t;
    e.node = node;
    if (!on) {
      e.kind = NetEventKind::kInterfererOn;
      e.period_s = period_s;
      e.duty = duty;
      t += rng.exponential(mean_on_s);
    } else {
      e.kind = NetEventKind::kInterfererOff;
      t += rng.exponential(mean_off_s);
    }
    on = !on;
    script.events.push_back(std::move(e));
  }
  if (on) {
    // Close the timeline so the interferer never outlives its script.
    NetEvent off;
    off.at_s = end;
    off.kind = NetEventKind::kInterfererOff;
    off.node = node;
    script.events.push_back(std::move(off));
  }
  return script;
}

DynamicsScript node_flap(NodeId node, double leave_s, double rejoin_s) {
  DynamicsScript script;
  NetEvent leave;
  leave.at_s = leave_s;
  leave.kind = NetEventKind::kNodeLeave;
  leave.node = node;
  script.events.push_back(std::move(leave));
  if (rejoin_s >= 0.0) {
    NetEvent join;
    join.at_s = rejoin_s;
    join.kind = NetEventKind::kNodeJoin;
    join.node = node;
    script.add(std::move(join));  // add() keeps time order if rejoin < leave
  }
  return script;
}

// --------------------------------------------------------------- engine

DynamicsEngine::DynamicsEngine(Workbench& wb, DynamicsScript script)
    : wb_(wb), script_(std::move(script)) {}

DynamicsEngine::~DynamicsEngine() {
  for (EventId id : pending_) wb_.sim().cancel(id);
  for (auto& [node, state] : interferers_) {
    if (state.tick != kNoEvent) wb_.sim().cancel(state.tick);
  }
  // traffic_ sources stop themselves in their destructors.
}

void DynamicsEngine::arm() {
  // Cancel-then-arm: every pending (unfired) event is cancelled and
  // rescheduled, so calling arm() twice — or re-arming after the clock
  // advanced — never double-schedules an event. Events that already
  // fired stay fired: re-arming must not replay a node leave or restart
  // a closed interferer burst. Simulator::cancel is generation-safe, so
  // cancelling ids whose events fired meanwhile is a harmless no-op.
  for (EventId id : pending_) wb_.sim().cancel(id);
  pending_.clear();
  if (fired_.size() != script_.events.size())
    fired_.assign(script_.events.size(), 0);
  pending_.reserve(script_.events.size());
  for (std::size_t i = 0; i < script_.events.size(); ++i) {
    if (fired_[i] != 0) continue;
    const TimeNs when =
        std::max(wb_.sim().now(), seconds(script_.events[i].at_s));
    pending_.push_back(wb_.sim().schedule_at(when, [this, i] {
      fired_[i] = 1;
      apply(script_.events[i]);
    }));
  }
}

void DynamicsEngine::apply(const NetEvent& event) {
  ++applied_;
  switch (event.kind) {
    case NetEventKind::kNodeLeave:
      node_leave(event.node);
      break;
    case NetEventKind::kNodeJoin:
      node_join(event.node);
      break;
    case NetEventKind::kLinkRss:
      wb_.channel().set_rss_symmetric_dbm(event.src, event.dst, event.value);
      break;
    case NetEventKind::kLinkLoss:
      losses().set(event.src, event.dst, event.rate, event.value);
      break;
    case NetEventKind::kInterfererOn:
      interferer_on(event);
      break;
    case NetEventKind::kInterfererOff:
      interferer_off(event.node);
      break;
    case NetEventKind::kTrafficStart:
      traffic_start(event);
      break;
    case NetEventKind::kTrafficStop:
      traffic_stop(event.traffic_id);
      break;
  }
}

void DynamicsEngine::node_leave(NodeId node) {
  if (left_.contains(node)) return;  // already gone
  Channel& ch = wb_.channel();
  std::vector<std::pair<double, double>> saved;
  const int n = ch.node_count();
  saved.reserve(static_cast<std::size_t>(n));
  for (NodeId m = 0; m < n; ++m) {
    if (m == node) {
      saved.emplace_back(kGoneDbm, kGoneDbm);  // placeholder, keeps indexing
      continue;
    }
    saved.emplace_back(ch.rss_dbm(node, m), ch.rss_dbm(m, node));
    ch.set_rss_dbm(node, m, kGoneDbm);
    ch.set_rss_dbm(m, node, kGoneDbm);
  }
  left_.insert_or_assign(node, std::move(saved));
}

void DynamicsEngine::node_join(NodeId node) {
  const auto it = left_.find(node);
  if (it == left_.end()) return;  // never left
  Channel& ch = wb_.channel();
  const auto& saved = it->second;
  for (NodeId m = 0; m < static_cast<NodeId>(saved.size()); ++m) {
    if (m == node) continue;
    ch.set_rss_dbm(node, m, saved[static_cast<std::size_t>(m)].first);
    ch.set_rss_dbm(m, node, saved[static_cast<std::size_t>(m)].second);
  }
  left_.erase(it);
}

DynamicsEngine::OverlayErrorModel& DynamicsEngine::losses() {
  if (!losses_) {
    losses_ = std::make_shared<OverlayErrorModel>(
        wb_.channel().error_model_ptr());
    wb_.channel().set_error_model(losses_);
  }
  return *losses_;
}

void DynamicsEngine::interferer_on(const NetEvent& event) {
  InterfererState& state = interferers_[event.node];
  // A non-positive period would make the tick reschedule itself at the
  // same simulated instant and wedge the run; clamp hand-written events
  // (the generators reject bad periods at generation time).
  state.period_s = std::max(event.period_s, 1e-6);
  state.duty = std::min(event.duty, kMaxDuty);
  if (state.active) return;  // retrigger: keep the running cadence phase
  state.active = true;
  interferer_tick(event.node);
}

void DynamicsEngine::interferer_off(NodeId node) {
  const auto it = interferers_.find(node);
  if (it == interferers_.end()) return;
  it->second.active = false;
  if (it->second.tick != kNoEvent) {
    wb_.sim().cancel(it->second.tick);
    it->second.tick = kNoEvent;
  }
}

void DynamicsEngine::interferer_tick(NodeId node) {
  InterfererState& state = interferers_[node];
  if (!state.active) return;
  const double air_s = state.duty * state.period_s;
  Frame f;
  // Addressed to the transmitter itself: no receiver matches, so nothing
  // is delivered upward — the frame exists purely as foreign energy
  // (carrier sense + SINR corruption at whoever hears it).
  f.dst = node;
  f.type = FrameType::kData;
  f.rate = Rate::kR1Mbps;
  f.air_bytes = std::max(1, static_cast<int>(rate_bps(f.rate) * air_s / 8.0));
  wb_.channel().start_tx(node, f, seconds(air_s));
  state.tick = wb_.sim().schedule(seconds(state.period_s),
                                  [this, node] { interferer_tick(node); });
}

void DynamicsEngine::traffic_start(const NetEvent& event) {
  if (event.path.size() < 2) return;
  // A re-start of a known id resumes the existing source (same flow, so
  // delivery accounting stays continuous across on/off cycles) at the
  // event's rate; the path is fixed by the first start.
  const auto existing = traffic_.find(event.traffic_id);
  if (existing != traffic_.end()) {
    existing->second->set_rate_bps(event.value);
    if (!existing->second->running()) existing->second->start();
    return;
  }
  Network& net = wb_.net();
  net.set_path_routes(event.path, event.rate);
  const int flow = net.open_flow(event.path.front(), event.path.back(),
                                 Protocol::kUdp, event.payload_bytes);
  auto source = std::make_unique<UdpSource>(
      net, flow, UdpMode::kCbr, event.value,
      RngStream(wb_.seed(),
                "dyn-traffic-" + std::to_string(event.traffic_id)));
  source->start();
  traffic_.insert_or_assign(event.traffic_id, std::move(source));
}

void DynamicsEngine::traffic_stop(int traffic_id) {
  const auto it = traffic_.find(traffic_id);
  if (it == traffic_.end()) return;
  it->second->stop();
}

bool DynamicsEngine::interferer_active(NodeId node) const {
  const auto it = interferers_.find(node);
  return it != interferers_.end() && it->second.active;
}

}  // namespace meshopt
