#include "mac/airtime.h"

#include <algorithm>
#include <cmath>

namespace meshopt {

TimeNs MacTimings::eifs() const {
  // EIFS = SIFS + ACK airtime at base rate + DIFS (802.11-1999 9.2.10).
  return sifs + ack_duration(*this) + difs;
}

TimeNs frame_duration(const MacTimings& t, int bytes, Rate rate) {
  const double bits = 8.0 * static_cast<double>(bytes);
  const double ns = bits * 1e9 / rate_bps(rate);
  return t.plcp + static_cast<TimeNs>(std::ceil(ns));
}

TimeNs data_frame_duration(const MacTimings& t, int net_bytes, Rate rate) {
  return frame_duration(t, net_bytes + t.mac_header_bytes + t.llc_bytes, rate);
}

TimeNs ack_duration(const MacTimings& t) {
  return frame_duration(t, t.ack_bytes, t.ack_rate);
}

TimeNs nominal_cycle(const MacTimings& t, int net_bytes, Rate rate) {
  const TimeNs mean_backoff0 = t.slot * (t.cw_min - 1) / 2;
  return t.difs + mean_backoff0 + data_frame_duration(t, net_bytes, rate) +
         t.sifs + ack_duration(t);
}

double nominal_throughput_bps(const MacTimings& t, int udp_payload_bytes,
                              Rate rate, const NetOverheads& oh) {
  const int net_bytes = udp_payload_bytes + oh.ip_bytes + oh.udp_bytes;
  const TimeNs cycle = nominal_cycle(t, net_bytes, rate);
  return 8.0 * static_cast<double>(udp_payload_bytes) /
         to_seconds(cycle);
}

TimeNs backoff_between_stages(const MacTimings& t, int a, int b) {
  TimeNs acc = 0;
  for (int i = a; i <= b; ++i) {
    acc += t.slot * (t.cw_at_stage(i) - 1) / 2;
  }
  return acc;
}

double max_udp_throughput_bps(const MacTimings& t, int udp_payload_bytes,
                              Rate rate, double p_loss,
                              const NetOverheads& oh) {
  // Clamp: beyond ~0.95 the retry limit dominates and the representation is
  // outside its validity range anyway.
  const double p = std::clamp(p_loss, 0.0, 0.95);
  const int net_bytes = udp_payload_bytes + oh.ip_bytes + oh.udp_bytes;

  const double etx = 1.0 / (1.0 - p);

  // ttx: ETX attempts, each a full cycle (DIFS + mean stage-0 backoff +
  // DATA + SIFS + ACK/ACK-timeout — we approximate the failed-attempt tail
  // by the same SIFS+ACK window, which is what the DCF waits for).
  const double cycle_s = to_seconds(nominal_cycle(t, net_bytes, rate));
  const double ttx = etx * cycle_s;

  // tidle (Eq. 6): extra backoff incurred by the escalating stages reached
  // during retransmissions. The stage-0 backoff is already in the cycle.
  const int m = t.max_backoff_stage;
  const int floor_etx = static_cast<int>(etx);
  double tidle = 0.0;
  if (etx < static_cast<double>(m)) {
    tidle = to_seconds(backoff_between_stages(t, 1, floor_etx - 1));
  } else {
    const TimeNs capped = t.slot * (t.cw_max() - 1) / 2;
    tidle = to_seconds(backoff_between_stages(t, 1, m - 1)) +
            to_seconds(capped) * static_cast<double>(floor_etx - m);
  }

  return 8.0 * static_cast<double>(udp_payload_bytes) / (ttx + tidle);
}

}  // namespace meshopt
