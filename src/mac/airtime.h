#pragma once
// 802.11 airtime accounting and the paper's link-capacity representation.
//
// Two closed forms live here:
//  * nominal_throughput_bps — the loss-free UDP throughput of an isolated
//    backlogged link (Jun, Peddabachagari & Sichitiu [19]): one DIFS, the
//    mean stage-0 backoff, the DATA frame, a SIFS and the ACK per packet.
//  * max_udp_throughput_bps — Eq. (6) of the paper: the same cycle inflated
//    by ETX = 1/(1-p) retransmissions plus the escalating backoff stages
//    F(a,b) spent on retries (the "tidle" term).
//
// The same constants drive the DCF simulator, so the formulas can be
// validated against measured throughput (tests/test_capacity_model.cpp).

#include "phy/radio.h"
#include "sim/simulator.h"

namespace meshopt {

/// Airtime of an over-the-air frame of `bytes` at `rate` (PLCP + payload).
[[nodiscard]] TimeNs frame_duration(const MacTimings& t, int bytes, Rate rate);

/// Airtime of a DATA frame carrying `net_bytes` of network-layer payload
/// (IP packet), including MAC header + LLC.
[[nodiscard]] TimeNs data_frame_duration(const MacTimings& t, int net_bytes,
                                         Rate rate);

/// Airtime of the 802.11 ACK control frame.
[[nodiscard]] TimeNs ack_duration(const MacTimings& t);

/// Duration of a full loss-free DATA exchange cycle:
/// DIFS + mean stage-0 backoff + DATA + SIFS + ACK.
[[nodiscard]] TimeNs nominal_cycle(const MacTimings& t, int net_bytes,
                                   Rate rate);

/// Loss-free UDP goodput for a backlogged isolated link, counting only the
/// UDP payload bits (net_bytes = IP+UDP headers + payload).
/// Returns bits/second of *UDP payload*.
[[nodiscard]] double nominal_throughput_bps(const MacTimings& t,
                                            int udp_payload_bytes, Rate rate,
                                            const NetOverheads& oh = {});

/// Total mean backoff time sigma * sum_{i=a}^{b} (2^i*W0 - 1)/2 between
/// backoff stages a and b inclusive (F(a,b) in the paper). Empty if a > b.
[[nodiscard]] TimeNs backoff_between_stages(const MacTimings& t, int a, int b);

/// Eq. (6): maxUDP throughput of an isolated backlogged link whose channel
/// loses each transmission attempt independently with probability `p_loss`
/// (DATA and ACK losses combined: p = 1-(1-pDATA)(1-pACK)).
/// Returns bits/second of UDP payload. p_loss is clamped to [0, 0.95].
[[nodiscard]] double max_udp_throughput_bps(const MacTimings& t,
                                            int udp_payload_bytes, Rate rate,
                                            double p_loss,
                                            const NetOverheads& oh = {});

}  // namespace meshopt
