#include "mac/dcf_mac.h"

#include <algorithm>
#include <cassert>

namespace meshopt {

DcfMac::DcfMac(Simulator& sim, Channel& channel, MacTimings timings,
               RngStream rng, MacSap* upper)
    : sim_(sim),
      channel_(channel),
      t_(timings),
      rng_(rng),
      upper_(upper) {
  id_ = channel_.add_node(this);
}

bool DcfMac::medium_busy() const { return channel_.carrier_busy(id_); }

bool DcfMac::enqueue(const MacTxRequest& req) {
  if (queue_.size() >= queue_capacity_) {
    ++stats_.queue_rejections;
    return false;
  }
  queue_.push_back(req);
  try_dequeue_and_contend();
  return true;
}

void DcfMac::try_dequeue_and_contend() {
  if (current_.has_value() || queue_.empty()) return;
  if (transmitting_ || waiting_ack_) return;
  current_ = queue_.front();
  queue_.pop_front();
  retry_ = 0;
  if (!backoff_pending_) begin_backoff(0);
  resume_countdown();
}

void DcfMac::begin_backoff(int stage) {
  const int cw = t_.cw_at_stage(stage);
  backoff_slots_ = rng_.uniform_int(0, cw - 1);
  backoff_pending_ = true;
}

void DcfMac::resume_countdown() {
  if (!backoff_pending_) return;
  if (transmitting_ || waiting_ack_ || medium_busy()) return;
  if (countdown_ev_ != kNoEvent) return;  // already counting down
  const TimeNs ifs = next_ifs_is_eifs_ ? t_.eifs() : t_.difs;
  countdown_anchor_ = sim_.now();
  const TimeNs finish = countdown_anchor_ + ifs + t_.slot * backoff_slots_;
  countdown_ev_ = sim_.schedule_at(finish, [this] {
    countdown_ev_ = kNoEvent;
    on_countdown_done();
  });
}

void DcfMac::freeze_countdown() {
  if (countdown_ev_ == kNoEvent) return;
  sim_.cancel(countdown_ev_);
  countdown_ev_ = kNoEvent;
  const TimeNs ifs = next_ifs_is_eifs_ ? t_.eifs() : t_.difs;
  const TimeNs elapsed = sim_.now() - countdown_anchor_ - ifs;
  if (elapsed > 0) {
    const int consumed = static_cast<int>(elapsed / t_.slot);
    backoff_slots_ = std::max(0, backoff_slots_ - consumed);
  }
}

void DcfMac::phy_busy_changed(bool busy) {
  if (busy) {
    freeze_countdown();
  } else {
    resume_countdown();
  }
}

void DcfMac::on_countdown_done() {
  backoff_pending_ = false;
  backoff_slots_ = 0;
  next_ifs_is_eifs_ = false;  // EIFS deferral was honored by this countdown
  if (!current_.has_value()) {
    // Pure post-transmission backoff completed; pull the next frame if any.
    if (!queue_.empty()) {
      current_ = queue_.front();
      queue_.pop_front();
      retry_ = 0;
    } else {
      return;
    }
  }
  transmit_current();
}

void DcfMac::transmit_current() {
  assert(current_.has_value());
  assert(!transmitting_);
  const MacTxRequest& req = *current_;
  const bool broadcast = req.link_dst == kBroadcast;

  Frame f;
  f.dst = req.link_dst;
  f.type = FrameType::kData;
  f.rate = req.rate;
  f.net_bytes = req.net_bytes;
  f.air_bytes = req.net_bytes + t_.mac_header_bytes + t_.llc_bytes;
  f.net_id = req.net_id;
  if (retry_ == 0 && !broadcast) awaited_ack_seq_ = next_seq_++;
  f.mac_seq = broadcast ? next_seq_++ : awaited_ack_seq_;

  const TimeNs dur = frame_duration(t_, f.air_bytes, f.rate);
  transmitting_ = true;
  ++stats_.tx_attempts;
  channel_.start_tx(id_, f, dur);
  sim_.schedule(dur, [this] { on_data_tx_end(); });
}

void DcfMac::on_data_tx_end() {
  transmitting_ = false;
  assert(current_.has_value());
  if (current_->link_dst == kBroadcast) {
    complete_current(true);
    return;
  }
  waiting_ack_ = true;
  const TimeNs timeout = t_.sifs + ack_duration(t_) + 2 * t_.slot;
  ack_timeout_ev_ = sim_.schedule(timeout, [this] {
    ack_timeout_ev_ = kNoEvent;
    on_ack_timeout();
  });
}

void DcfMac::on_ack_timeout() {
  waiting_ack_ = false;
  ++retry_;
  if (retry_ >= t_.retry_limit) {
    ++stats_.tx_dropped;
    complete_current(false);
    return;
  }
  begin_backoff(retry_);
  resume_countdown();
}

void DcfMac::complete_current(bool success) {
  assert(current_.has_value());
  const MacTxRequest done = *current_;
  current_.reset();
  retry_ = 0;
  if (success) ++stats_.tx_success;
  // Post-transmission backoff at stage 0, as the standard requires.
  begin_backoff(0);
  resume_countdown();
  if (upper_ != nullptr) upper_->mac_tx_done(done, success);
  // The upper layer may have enqueued more; if the post-backoff already ran
  // (it cannot have: it needs at least DIFS), the queue pull happens in
  // on_countdown_done.
}

void DcfMac::send_ack(NodeId to, std::uint64_t seq) {
  if (transmitting_) return;  // half duplex: cannot ACK mid-transmission
  Frame ack;
  ack.dst = to;
  ack.type = FrameType::kAck;
  ack.rate = t_.ack_rate;
  ack.air_bytes = t_.ack_bytes;
  ack.net_bytes = 0;
  ack.mac_seq = seq;
  const TimeNs dur = ack_duration(t_);
  transmitting_ = true;
  channel_.start_tx(id_, ack, dur);
  sim_.schedule(dur, [this] {
    transmitting_ = false;
    resume_countdown();
  });
}

void DcfMac::phy_rx_done(const Frame& frame) {
  next_ifs_is_eifs_ = false;  // correct reception cancels EIFS deferral
  if (frame.type == FrameType::kAck) {
    if (frame.dst == id_ && waiting_ack_ &&
        frame.mac_seq == awaited_ack_seq_) {
      sim_.cancel(ack_timeout_ev_);
      ack_timeout_ev_ = kNoEvent;
      waiting_ack_ = false;
      complete_current(true);
    }
    return;
  }
  // DATA
  if (frame.dst == id_) {
    // ACK even duplicates (the sender's ACK may have been lost).
    sim_.schedule(t_.sifs, [this, src = frame.tx, seq = frame.mac_seq] {
      send_ack(src, seq);
    });
    const auto it = last_rx_seq_.find(frame.tx);
    if (it != last_rx_seq_.end() && it->second == frame.mac_seq) {
      ++stats_.rx_duplicates;
      return;
    }
    last_rx_seq_[frame.tx] = frame.mac_seq;
    ++stats_.rx_delivered;
    if (upper_ != nullptr)
      upper_->mac_rx(frame.tx, frame.net_id, frame.net_bytes, false);
  } else if (frame.dst == kBroadcast) {
    ++stats_.rx_delivered;
    if (upper_ != nullptr)
      upper_->mac_rx(frame.tx, frame.net_id, frame.net_bytes, true);
  }
}

void DcfMac::phy_rx_corrupted() { next_ifs_is_eifs_ = true; }

}  // namespace meshopt
