#pragma once
// IEEE 802.11 DCF (basic access, RTS/CTS disabled — as in the paper).
//
// Behavior modeled:
//   * slotted binary-exponential backoff with freeze/resume on carrier
//     sense, always performed before a transmission (the post-transmission
//     backoff of a saturated station — which is also what the paper's
//     capacity formula assumes),
//   * DATA/ACK exchange with SIFS turnaround, ACK timeout, retry limit and
//     contention-window escalation,
//   * broadcast frames: single transmission, no ACK, stage-0 window only
//     (this is why the paper's probes see the raw MAC loss process),
//   * EIFS deferral after a corrupted reception,
//   * receiver-side duplicate filtering.

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "mac/airtime.h"
#include "phy/channel.h"
#include "phy/frame.h"
#include "phy/radio.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace meshopt {

/// A network-layer transmission request handed to the MAC.
struct MacTxRequest {
  NodeId link_dst = kBroadcast;  ///< next hop, or kBroadcast
  int net_bytes = 0;             ///< network payload size (IP packet)
  Rate rate = Rate::kR1Mbps;
  std::uint64_t net_id = 0;      ///< upper-layer handle, round-tripped
};

/// Callbacks toward the network layer.
class MacSap {
 public:
  virtual ~MacSap() = default;
  /// Local transmission finished (ACKed, broadcast sent, or dropped).
  virtual void mac_tx_done(const MacTxRequest& req, bool success) = 0;
  /// A frame for this node (or broadcast) was received; net_id/net_bytes
  /// identify the packet, src is the link-level sender.
  virtual void mac_rx(NodeId src, std::uint64_t net_id, int net_bytes,
                      bool broadcast) = 0;
};

/// Per-MAC counters, exposed for tests and diagnostics.
struct MacStats {
  std::uint64_t tx_attempts = 0;
  std::uint64_t tx_success = 0;
  std::uint64_t tx_dropped = 0;     ///< retry limit exceeded
  std::uint64_t rx_delivered = 0;
  std::uint64_t rx_duplicates = 0;
  std::uint64_t queue_rejections = 0;
};

class DcfMac final : public PhySap {
 public:
  DcfMac(Simulator& sim, Channel& channel, MacTimings timings, RngStream rng,
         MacSap* upper);

  DcfMac(const DcfMac&) = delete;
  DcfMac& operator=(const DcfMac&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const MacTimings& timings() const { return t_; }
  [[nodiscard]] const MacStats& stats() const { return stats_; }

  void set_queue_capacity(std::size_t cap) { queue_capacity_ = cap; }
  [[nodiscard]] std::size_t queue_length() const { return queue_.size(); }
  [[nodiscard]] std::size_t queue_capacity() const { return queue_capacity_; }

  /// Enqueue a frame for transmission. Returns false (and drops) when the
  /// interface queue is full.
  bool enqueue(const MacTxRequest& req);

  // PhySap
  void phy_busy_changed(bool busy) override;
  void phy_rx_done(const Frame& frame) override;
  void phy_rx_corrupted() override;

 private:
  void try_dequeue_and_contend();
  void begin_backoff(int stage);
  void resume_countdown();
  void freeze_countdown();
  void on_countdown_done();
  void transmit_current();
  void on_data_tx_end();
  void on_ack_timeout();
  void complete_current(bool success);
  void send_ack(NodeId to, std::uint64_t seq);
  [[nodiscard]] bool medium_busy() const;

  Simulator& sim_;
  Channel& channel_;
  MacTimings t_;
  RngStream rng_;
  MacSap* upper_;
  NodeId id_;

  std::deque<MacTxRequest> queue_;
  std::size_t queue_capacity_ = 64;

  std::optional<MacTxRequest> current_;
  int retry_ = 0;
  int backoff_slots_ = 0;
  bool backoff_pending_ = false;  ///< a drawn backoff not yet elapsed
  bool transmitting_ = false;
  bool waiting_ack_ = false;
  bool next_ifs_is_eifs_ = false;

  EventId countdown_ev_ = kNoEvent;
  TimeNs countdown_anchor_ = 0;  ///< when the current IFS+backoff started
  EventId ack_timeout_ev_ = kNoEvent;

  std::uint64_t next_seq_ = 1;
  std::uint64_t awaited_ack_seq_ = 0;
  std::unordered_map<NodeId, std::uint64_t> last_rx_seq_;

  MacStats stats_;
};

}  // namespace meshopt
