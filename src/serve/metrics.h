#pragma once
// Metrics plane of the plan-serving subsystem (see ARCHITECTURE.md,
// "Serving plane").
//
// Counters come in two scopes — per tenant and global — and every one is
// updated on the service's caller thread in deterministic batch order, so
// for a fixed submission schedule the whole metrics plane (including the
// tick-latency histograms) is bit-identical across pool thread counts.
// The single exception is wall-clock latency: those sketches measure real
// enqueue->served time and are deliberately OUTSIDE the determinism
// contract (to_json(include_wall=false) omits them, which is what the
// pinned determinism test compares).
//
// Latency histograms use util/stats.h's QuantileSketch: exact for small
// tenants, fixed-bin log histogram at volume, mergeable across scopes.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/stats.h"

namespace meshopt {

/// Per-tenant serving counters, cumulative since tenant registration.
struct TenantCounters {
  std::uint64_t submitted = 0;     ///< submit attempts addressed here
  std::uint64_t accepted = 0;      ///< entered (or superseded into) the queue
  std::uint64_t coalesced = 0;     ///< queued stale rounds superseded
  std::uint64_t shed_queue_full = 0;   ///< rejected: per-tenant queue bound
  std::uint64_t shed_global_full = 0;  ///< rejected: global queue bound
  std::uint64_t shed_stale_round = 0;  ///< rejected: non-increasing sequence
  std::uint64_t plans_served = 0;  ///< feasible plans delivered
  std::uint64_t plans_failed = 0;  ///< rejected snapshot / infeasible plan /
                                   ///< guardrail reject / planning error
  std::uint64_t snapshots_clean = 0;
  std::uint64_t snapshots_repaired = 0;  ///< guard repair tier fired
  std::uint64_t snapshots_rejected = 0;  ///< guard verdict kRejected
  std::uint64_t cache_hits = 0;        ///< tenant Planner cache hits
  std::uint64_t cache_misses = 0;      ///< tenant Planner cache misses
  std::uint64_t uncacheable_plans = 0; ///< repaired-snapshot planner calls
  /// Decomposition-tier tenants only (TenantConfig::decompose): rounds
  /// planned per interference component, and how many active components
  /// those rounds spanned (DecomposeStats, diffed per served round).
  std::uint64_t decomposed_rounds = 0;
  std::uint64_t components_planned = 0;

  friend bool operator==(const TenantCounters&,
                         const TenantCounters&) = default;
};

/// Global counters: the sum of every tenant's TenantCounters plus the
/// service-level events no tenant owns.
struct ServeCounters {
  TenantCounters totals;                 ///< sums across tenants
  std::uint64_t shed_unknown_tenant = 0; ///< submits naming no tenant
  std::uint64_t batches = 0;             ///< run_batch calls that planned
  std::uint64_t batch_requests = 0;      ///< requests across those batches
  std::uint64_t max_batch = 0;           ///< largest single batch

  friend bool operator==(const ServeCounters&, const ServeCounters&) = default;
};

/// Counter + histogram store for one PlanService.
///
/// Not thread-safe by design: the service updates it only from the
/// calling thread (between pool batches), the same single-owner model as
/// Planner.
class ServeMetrics {
 public:
  ServeMetrics();

  /// Grow the per-tenant stores to cover tenant ids [0, count).
  void ensure_tenants(std::size_t count);

  [[nodiscard]] std::size_t tenants() const { return tenant_.size(); }
  [[nodiscard]] TenantCounters& tenant(std::size_t id) { return tenant_[id]; }
  [[nodiscard]] const TenantCounters& tenant(std::size_t id) const {
    return tenant_[id];
  }
  [[nodiscard]] ServeCounters& global() { return global_; }
  [[nodiscard]] const ServeCounters& global() const { return global_; }

  /// Record one served round's enqueue->served latency in scheduler ticks
  /// (deterministic) into the tenant's and the global tick histograms.
  void record_tick_latency(std::size_t tenant_id, double ticks);

  /// Record one served round's wall-clock enqueue->served latency in
  /// seconds (global histogram only; excluded from determinism).
  void record_wall_latency(double seconds) { wall_latency_s_.add(seconds); }

  [[nodiscard]] const QuantileSketch& tick_latency() const {
    return tick_latency_;
  }
  [[nodiscard]] const QuantileSketch& tenant_tick_latency(
      std::size_t id) const {
    return tenant_tick_latency_[id];
  }
  [[nodiscard]] const QuantileSketch& wall_latency_s() const {
    return wall_latency_s_;
  }

  /// Dump the whole metrics plane as one JSON document:
  /// {"global":{...,"tick_latency":{...}[,"wall_latency_s":{...}]},
  ///  "tenants":[{"tenant":0,...},...]}. With include_wall=false the
  /// output is a pure function of the submission schedule — byte-stable
  /// across runs and pool thread counts (the pinned determinism surface).
  [[nodiscard]] std::string to_json(bool include_wall = true) const;

  /// Prometheus-style text exposition of the same plane: every counter as
  /// `meshopt_serve_<key>{scope="global"|tenant="N"} value` plus latency
  /// histograms (cumulative buckets from QuantileSketch::buckets()). Both
  /// formats are produced by one shared counter-walk over the counter
  /// structs, so they cannot drift: a counter added to the walk appears in
  /// both, one added anywhere else appears in neither. Same include_wall
  /// split as to_json.
  [[nodiscard]] std::string metrics_text(bool include_wall = true) const;

 private:
  ServeCounters global_;
  std::vector<TenantCounters> tenant_;
  QuantileSketch tick_latency_;
  std::vector<QuantileSketch> tenant_tick_latency_;
  QuantileSketch wall_latency_s_;
};

}  // namespace meshopt
