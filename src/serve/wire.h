#pragma once
// Wire framing for the plan-serving subsystem (see ARCHITECTURE.md,
// "Serving plane").
//
// The serving layer speaks the two snapshot encodings the repo already
// has — the MeasurementSnapshot JSON schema (util/json.h) and the
// MOTRACE1 binary record payload (util/trace_codec.h) — and this header
// adds the length-prefixed request/response framing that turns either
// into a byte-stream protocol:
//
//   frame  := header payload
//   header := magic "MWP1" (4 bytes) | u8 kind | u8 format | u16 zero
//             | u32 tenant | u64 round_seq | u32 payload_bytes
//
// (all integers little-endian, 24-byte header). kSubmit carries a
// snapshot payload in the declared format; kPlan carries a RatePlan JSON
// document (rate_plan_to_json, %.17g doubles, so plans round-trip
// bit-exactly like snapshots do); kReject carries the shed reason as a
// plain string. The framing is transport-agnostic value machinery —
// encode into any byte sink, decode from any byte stream; there are no
// sockets here. wire_decode_frame() is incremental: a short buffer
// returns 0 consumed (wait for more bytes), a malformed one throws, so a
// reader can pump a partial stream without guessing frame boundaries.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "core/rate_plan.h"
#include "core/snapshot.h"

namespace meshopt {

/// Frame kinds of the serving protocol.
enum class WireKind : std::uint8_t {
  kSubmit = 1,  ///< client -> service: one snapshot for one tenant round
  kPlan = 2,    ///< service -> client: the round's RatePlan (JSON payload)
  kReject = 3,  ///< service -> client: shed/rejected, payload = reason
};

/// Snapshot payload encodings accepted in a kSubmit frame.
enum class WireFormat : std::uint8_t {
  kBinary = 0,  ///< MOTRACE1 record payload (trace_append_snapshot_payload)
  kJson = 1,    ///< MeasurementSnapshot::to_json document
};

/// Frames larger than this are rejected at decode (a hostile length
/// prefix must not drive a multi-GiB allocation; real snapshot payloads
/// are kilobytes).
inline constexpr std::uint32_t kWireMaxPayloadBytes = 64u << 20;

/// Bytes of the fixed frame header.
inline constexpr std::size_t kWireHeaderBytes = 24;

/// One decoded kSubmit frame.
struct SubmitRequest {
  std::uint32_t tenant = 0;
  /// Client-declared round sequence; the service sheds non-increasing
  /// sequences per tenant (kShedStaleRound).
  std::uint64_t round_seq = 0;
  WireFormat format = WireFormat::kBinary;
  MeasurementSnapshot snapshot;
};

/// One decoded frame of any kind (the union of the three shapes; only
/// the fields of `kind` are meaningful).
struct WireFrame {
  WireKind kind = WireKind::kSubmit;
  std::uint32_t tenant = 0;
  std::uint64_t round_seq = 0;
  WireFormat format = WireFormat::kBinary;  ///< kSubmit only
  MeasurementSnapshot snapshot;             ///< kSubmit only
  RatePlan plan;                            ///< kPlan only
  std::string reject_reason;                ///< kReject only
};

/// Append one kSubmit frame carrying `req.snapshot` in `req.format`.
void wire_append_submit(std::string& out, const SubmitRequest& req);

/// Append one kPlan response frame (payload = rate_plan_to_json(plan)).
void wire_append_plan(std::string& out, std::uint32_t tenant,
                      std::uint64_t round_seq, const RatePlan& plan);

/// Append one kReject response frame (payload = `reason`).
void wire_append_reject(std::string& out, std::uint32_t tenant,
                        std::uint64_t round_seq, std::string_view reason);

/// Try to decode one frame from the front of `buf`.
///
/// @return bytes consumed (header + payload), or 0 when `buf` holds only
///         a prefix of a frame (incomplete — append more bytes and retry;
///         `out` is untouched).
/// @throws std::invalid_argument on a malformed frame: bad magic, unknown
///         kind/format, nonzero reserved bits, a payload length above
///         kWireMaxPayloadBytes, or a payload that fails its format's
///         snapshot/plan decoder.
[[nodiscard]] std::size_t wire_decode_frame(std::string_view buf,
                                            WireFrame& out);

/// Serialize a RatePlan as a self-contained JSON document. Doubles keep
/// 17 significant digits, so rate_plan_from_json(rate_plan_to_json(p))
/// compares equal bit-for-bit (RatePlan::operator==).
[[nodiscard]] std::string rate_plan_to_json(const RatePlan& plan);

/// Parse a document produced by rate_plan_to_json().
/// @throws std::invalid_argument on malformed input.
[[nodiscard]] RatePlan rate_plan_from_json(std::string_view text);

}  // namespace meshopt
