#pragma once
// PlanService — the controller-as-a-service subsystem (see
// ARCHITECTURE.md, "Serving plane").
//
// The ROADMAP's "millions of users" story needs a long-running layer that
// plans for MANY concurrent mesh instances at once, and the staged
// pipeline already has every ingredient: value-type snapshots with two
// exact wire encodings (JSON + MOTRACE1), a pure snapshot -> model ->
// plan stage, a topology-keyed Planner cache with fast-tier warm state,
// guard validation, and a work-stealing pool. This subsystem multiplexes
// tenants onto them:
//
//   * TenantRegistry (inside PlanService): each tenant registers flows,
//     plan tier, interference model, guard tuning, and its own Planner
//     cache budget; the service keeps one TenantSession per tenant —
//     a private Planner (cross-round cache + column-generation warm
//     state), a monotonically increasing round sequence, and a bounded
//     pending queue.
//   * Admission/backpressure: per-tenant and global queue bounds with a
//     deterministic shed policy (structured SubmitStatus reasons), plus
//     oldest-round coalescing — a newer snapshot for a tenant supersedes
//     its queued stale one instead of growing the backlog.
//   * Batched scheduling: run_batch(tick) drains at most one pending
//     round per tenant (per-tenant order stays serial, so a session's
//     Planner is only ever touched by its own job) and plans the whole
//     batch across the SweepRunner pool. Results land at their batch
//     index and all metrics are applied on the calling thread in batch
//     order.
//
// Determinism contract (pinned in tests/test_serve.cpp): for a fixed
// ServeScript, every served plan, every counter, and the tick-latency
// histograms are bit-identical across pool thread counts — the same
// property ControllerFleet pins, for the same reasons (batch composition
// is a pure function of the schedule; jobs touch disjoint state; no
// run-time randomness). Wall-clock latency sketches are the one
// deliberately nondeterministic surface (metrics.h).

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/guard.h"
#include "core/planner.h"
#include "core/rate_plan.h"
#include "core/snapshot.h"
#include "obs/obs.h"
#include "opt/decompose.h"
#include "serve/metrics.h"
#include "serve/wire.h"
#include "sweep/sweep_runner.h"

namespace meshopt {

/// Per-tenant registration: what to plan and how.
struct TenantConfig {
  std::vector<FlowSpec> flows;  ///< flows to plan (paths over snapshot links)
  PlanConfig plan{};            ///< objective / optimizer tuning / plan tier
  InterferenceModelKind interference = InterferenceModelKind::kTwoHop;
  /// Validate (and repair) every submitted snapshot and guardrail every
  /// plan, replay-style: rejected inputs yield a default (ok == false)
  /// plan for that round — no held state, so rounds stay pure functions
  /// of their snapshot.
  bool guarded = false;
  GuardConfig guard{};
  /// Planner LRU entries for this tenant's session (0 = uncached).
  std::size_t planner_cache = 4;
  /// Pending-round bound; submissions beyond it shed (or coalesce).
  int queue_limit = 4;
  /// A newer snapshot supersedes the queued stale one (counted) instead
  /// of queueing behind it: a coalescing tenant always planning its
  /// freshest measurements, with an effective queue depth of one.
  bool coalesce = true;
  /// Plan this tenant through the decomposition tier (opt/decompose.h):
  /// the session embeds a DecomposedPlanner (no nested pool — the batch
  /// job already runs on the service's SweepRunner) with per-component
  /// model caches and warm state, plus automatic monolithic fallback on
  /// connected snapshots. `planner_cache` is ignored in favor of
  /// `decompose_config`'s cache budgets. Metered through the
  /// TenantCounters::decomposed_rounds / components_planned counters.
  bool decompose = false;
  DecomposeConfig decompose_config{};
};

/// Structured outcome of one submit attempt — the admission layer's shed
/// policy is deterministic and these are its reasons.
enum class SubmitStatus : std::uint8_t {
  kAccepted,            ///< queued as a new pending round
  kCoalesced,           ///< accepted by superseding the queued stale round
  kShedUnknownTenant,   ///< no such tenant id
  kShedStaleRound,      ///< round_seq not greater than the last accepted
  kShedTenantQueueFull, ///< per-tenant queue at its bound (coalesce off)
  kShedGlobalQueueFull, ///< service-wide pending bound reached
};

[[nodiscard]] const char* to_string(SubmitStatus status);

/// Whether a status means the snapshot entered the service.
[[nodiscard]] constexpr bool submit_accepted(SubmitStatus status) {
  return status == SubmitStatus::kAccepted ||
         status == SubmitStatus::kCoalesced;
}

/// One submit attempt's outcome: the status plus the sequence number the
/// round was filed under (0 when shed before sequencing).
struct SubmitResult {
  SubmitStatus status = SubmitStatus::kAccepted;
  std::uint64_t round_seq = 0;

  friend bool operator==(const SubmitResult&, const SubmitResult&) = default;
};

/// Service-level tuning.
struct ServeConfig {
  /// Pool workers including the caller; <= 0 selects the hardware
  /// concurrency (the SweepRunner convention).
  int threads = 0;
  /// Total pending rounds across all tenants; submissions that would grow
  /// the backlog beyond it shed with kShedGlobalQueueFull (coalescing
  /// replacements never grow it and stay admitted).
  std::size_t global_queue_limit = 4096;
};

/// One served round: what the batch planned for one tenant.
struct ServedPlan {
  std::uint32_t tenant = 0;
  std::uint64_t round_seq = 0;
  long long submit_tick = 0;
  long long served_tick = 0;
  SnapshotVerdict verdict = SnapshotVerdict::kClean;
  RatePlan plan;      ///< default (ok == false) when rejected or failed
  std::string error;  ///< planning exception text (deterministic); "" = none

  friend bool operator==(const ServedPlan&, const ServedPlan&) = default;
};

/// Everything one run_batch(tick) call planned, in batch (ascending
/// tenant id) order.
struct ServeBatchReport {
  std::vector<ServedPlan> served;
};

/// One scripted submission: at `tick`, tenant `tenant` submits snapshot
/// `snapshot_ref` (an index into the shared snapshot pool run_script is
/// given — typically a recorded trace).
struct ServeEvent {
  long long tick = 0;
  std::uint32_t tenant = 0;
  int snapshot_ref = 0;

  friend bool operator==(const ServeEvent&, const ServeEvent&) = default;
};

/// A deterministic submission schedule, the serving analogue of
/// DynamicsScript/FaultScript: events must be sorted by tick (stable
/// order within a tick is submission order). Like those scripts, ALL
/// randomness in a generated schedule is drawn at generation time.
struct ServeScript {
  std::vector<ServeEvent> events;
};

/// Generate a staggered replay schedule: every tenant submits
/// `rounds_per_tenant` rounds, walking the snapshot pool cyclically
/// (snapshot_ref = round % pool_rounds); round r of tenant t lands at
/// tick r * ticks_per_round + offset(t), with per-tenant offsets drawn in
/// [0, ticks_per_round) at generation time from `seed`. When
/// `burst_every` > 0, every burst_every-th tenant submits each round
/// TWICE at the same tick (the duplicate exercises the coalescing /
/// shed path). @throws std::invalid_argument on non-positive dimensions.
[[nodiscard]] ServeScript staggered_replay_script(std::uint32_t tenants,
                                                  int rounds_per_tenant,
                                                  int pool_rounds,
                                                  int ticks_per_round,
                                                  std::uint64_t seed,
                                                  int burst_every = 0);

/// Outcome of one run_script call.
struct ServeReport {
  /// One entry per script event, in script order.
  std::vector<SubmitResult> submit_results;
  /// Every served round, in service order: ascending batch tick, then
  /// ascending tenant id within a batch.
  std::vector<ServedPlan> served;
  long long final_tick = 0;  ///< first tick after the last batch
};

/// Multi-tenant plan server over the work-stealing pool.
///
/// Thread-safety: single-owner, like Planner and ControllerFleet — all
/// calls from one thread at a time; the pool parallelism is internal.
class PlanService {
 public:
  explicit PlanService(ServeConfig cfg = {});

  /// Register a tenant; ids are assigned sequentially from 0.
  std::uint32_t add_tenant(TenantConfig cfg);

  [[nodiscard]] std::size_t tenants() const { return sessions_.size(); }
  [[nodiscard]] const TenantConfig& tenant_config(std::uint32_t tenant) const;

  /// Submit a snapshot for `tenant`'s next round (the sequence number is
  /// assigned by the session: last + 1). `tick` is the caller's scheduler
  /// time, echoed into latency accounting; it must not decrease across
  /// calls.
  SubmitResult submit(std::uint32_t tenant, const MeasurementSnapshot& snap,
                      long long tick);

  /// Submit with a caller-declared sequence (the wire path): a sequence
  /// not greater than the tenant's last accepted one sheds with
  /// kShedStaleRound.
  SubmitResult submit_seq(std::uint32_t tenant,
                          const MeasurementSnapshot& snap,
                          std::uint64_t round_seq, long long tick);

  /// Decode and submit one kSubmit wire frame (serve/wire.h).
  /// @throws std::invalid_argument when the frame is malformed,
  /// incomplete, or not a kSubmit frame.
  SubmitResult submit_frame(std::string_view frame, long long tick);

  /// Pending rounds across all tenants.
  [[nodiscard]] std::size_t pending() const { return pending_; }

  /// Drain at most one pending round per tenant (ascending tenant id,
  /// oldest round first) and plan them all as one batch across the pool.
  /// Counters, latency histograms, and per-tenant last-plan state update
  /// on the calling thread in batch order before this returns.
  ServeBatchReport run_batch(long long tick);

  /// Drive a whole ServeScript against a shared snapshot pool: submit
  /// each tick's events, run one batch per tick, and keep draining
  /// batches past the last event until no rounds are pending.
  /// @throws std::invalid_argument when events are not tick-sorted or a
  /// snapshot_ref is out of the pool's range.
  ServeReport run_script(const ServeScript& script,
                         const std::vector<MeasurementSnapshot>& pool);

  /// Append the kPlan/kReject response frame for one served round to
  /// `out` (the wire-format answer a transport would ship back).
  void append_response_frame(std::string& out, const ServedPlan& served) const;

  [[nodiscard]] const ServeMetrics& metrics() const { return metrics_; }
  /// metrics().to_json(include_wall) — see ServeMetrics::to_json for the
  /// determinism surface.
  [[nodiscard]] std::string metrics_json(bool include_wall = true) const;

  /// The tenant's most recently served plan (default until one is).
  [[nodiscard]] const RatePlan& last_plan(std::uint32_t tenant) const;
  /// The round sequence of that plan (0 until one is served).
  [[nodiscard]] std::uint64_t last_served_seq(std::uint32_t tenant) const;

  /// Attach a trace recorder (borrowed; nullptr detaches). Each batch job
  /// then traces into its session's private recorder (lane = tenant id,
  /// round = round sequence; created lazily from the attached recorder's
  /// config): one kServe span per served round plus the session planner's
  /// cache/model/pricing records, with kServeError / kPlanReject incidents
  /// on planning exceptions and guardrail rejects. Session recorders are
  /// absorbed on the calling thread in batch order (the same ordering the
  /// metrics contract relies on), so the trace is bit-identical across
  /// pool thread counts.
  void set_observer(TraceRecorder* obs) { obs_ = obs; }
  [[nodiscard]] TraceRecorder* observer() const { return obs_; }

 private:
  /// One pending round in a tenant's queue.
  struct Pending {
    std::uint64_t round_seq = 0;
    long long enqueue_tick = 0;
    std::chrono::steady_clock::time_point enqueue_wall{};
    MeasurementSnapshot snapshot;
  };

  /// Per-tenant serving state. The session's Planner is only ever
  /// touched by the session's own batch job (at most one per batch), so
  /// its cache and fast-tier warm state carry across batches without
  /// locks.
  struct TenantSession {
    TenantConfig cfg;
    Planner planner;
    /// Engaged when cfg.decompose: the session plans through this instead
    /// of `planner` (which then stays idle). Behind a unique_ptr so the
    /// session remains cheap — and movable — for monolithic tenants.
    std::unique_ptr<DecomposedPlanner> decomposed;
    std::uint64_t high_seq = 0;         ///< highest accepted sequence
    std::uint64_t last_served_seq = 0;
    RatePlan last_plan;
    /// Session-local trace recorder, created lazily when the service has
    /// an observer: the batch job writes here (single-writer, like the
    /// session Planner) and run_batch absorbs it in batch order.
    std::unique_ptr<TraceRecorder> recorder;
    PlannerStats seen_stats;  ///< planner counters already metered
    DecomposeStats seen_decompose;  ///< decompose counters already metered
    std::deque<Pending> queue;

    explicit TenantSession(TenantConfig c)
        : cfg(std::move(c)), planner(cfg.planner_cache) {
      if (cfg.decompose)
        decomposed = std::make_unique<DecomposedPlanner>(cfg.decompose_config,
                                                         /*pool=*/nullptr);
    }
    // Move-only, and explicitly so: the Planner member holds fast-tier
    // warm state behind a unique_ptr, and without the deleted copy ctor
    // vector reallocation would try the (ill-formed) copy path because
    // std::vector's copy constructor is declared for any element type.
    TenantSession(const TenantSession&) = delete;
    TenantSession& operator=(const TenantSession&) = delete;
    TenantSession(TenantSession&&) = default;
    TenantSession& operator=(TenantSession&&) = default;
  };

  SubmitResult admit(std::uint32_t tenant, const MeasurementSnapshot& snap,
                     std::uint64_t round_seq, bool auto_seq, long long tick);

  ServeConfig cfg_;
  SweepRunner runner_;
  std::vector<TenantSession> sessions_;
  std::size_t pending_ = 0;  ///< queued rounds across all tenants
  ServeMetrics metrics_;
  TraceRecorder* obs_ = nullptr;  ///< borrowed; see set_observer()
};

}  // namespace meshopt
