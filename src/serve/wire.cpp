#include "serve/wire.h"

#include <cstring>
#include <stdexcept>

#include "util/json.h"
#include "util/trace_codec.h"

namespace meshopt {

namespace {

constexpr char kWireMagic[4] = {'M', 'W', 'P', '1'};

// Little-endian appenders, mirroring the trace codec's explicit byte
// shifts so the framing is host-independent.
void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v & 0xffff));
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t get_u32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(b[0]) |
         static_cast<std::uint32_t>(b[1]) << 8 |
         static_cast<std::uint32_t>(b[2]) << 16 |
         static_cast<std::uint32_t>(b[3]) << 24;
}

std::uint64_t get_u64(const char* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         static_cast<std::uint64_t>(get_u32(p + 4)) << 32;
}

[[noreturn]] void fail(const char* what) {
  throw std::invalid_argument(std::string("wire: ") + what);
}

/// Append the 24-byte header; the payload length is patched by the
/// caller once the payload has been appended after it.
std::size_t append_header(std::string& out, WireKind kind, WireFormat format,
                          std::uint32_t tenant, std::uint64_t round_seq) {
  out.append(kWireMagic, sizeof(kWireMagic));
  out.push_back(static_cast<char>(kind));
  out.push_back(static_cast<char>(format));
  put_u16(out, 0);  // reserved, must be zero
  put_u32(out, tenant);
  put_u64(out, round_seq);
  const std::size_t len_at = out.size();
  put_u32(out, 0);  // payload_bytes, patched below
  return len_at;
}

void patch_length(std::string& out, std::size_t len_at) {
  const std::size_t payload = out.size() - len_at - 4;
  if (payload > kWireMaxPayloadBytes) {
    out.resize(len_at - (kWireHeaderBytes - 4));  // drop the whole frame
    fail("payload exceeds the frame size limit");
  }
  out[len_at] = static_cast<char>(payload & 0xff);
  out[len_at + 1] = static_cast<char>((payload >> 8) & 0xff);
  out[len_at + 2] = static_cast<char>((payload >> 16) & 0xff);
  out[len_at + 3] = static_cast<char>((payload >> 24) & 0xff);
}

void append_double_member(std::string& out, const char* key, double v,
                          bool trailing_comma = true) {
  json_append_string(out, key);
  out.push_back(':');
  json_append_double(out, v);
  if (trailing_comma) out.push_back(',');
}

void append_int_member(std::string& out, const char* key, long long v,
                       bool trailing_comma = true) {
  json_append_string(out, key);
  out.push_back(':');
  json_append_int(out, v);
  if (trailing_comma) out.push_back(',');
}

void append_rate_array(std::string& out, const char* key,
                       const std::vector<double>& v) {
  json_append_string(out, key);
  out += ":[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out.push_back(',');
    json_append_double(out, v[i]);
  }
  out += "],";
}

std::vector<double> parse_rate_array(const JsonValue& doc, const char* key) {
  std::vector<double> out;
  for (const JsonValue& v : doc.at(key).items()) out.push_back(v.as_number());
  return out;
}

}  // namespace

std::string rate_plan_to_json(const RatePlan& plan) {
  std::string out = "{";
  json_append_string(out, "ok");
  out += plan.ok ? ":true," : ":false,";
  json_append_string(out, "tier");
  out += plan.tier == PlanTier::kFast ? ":\"fast\"," : ":\"exact\",";
  append_double_member(out, "objective_value", plan.objective_value);
  append_int_member(out, "extreme_points", plan.extreme_points);
  append_int_member(out, "optimizer_iterations", plan.optimizer_iterations);
  append_int_member(out, "columns_generated", plan.columns_generated);
  append_int_member(out, "pricing_rounds", plan.pricing_rounds);
  append_rate_array(out, "y", plan.y);
  append_rate_array(out, "x", plan.x);
  json_append_string(out, "shapers");
  out += ":[";
  for (std::size_t i = 0; i < plan.shapers.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.push_back('{');
    append_int_member(out, "flow_id", plan.shapers[i].flow_id);
    append_double_member(out, "x_bps", plan.shapers[i].x_bps,
                         /*trailing_comma=*/false);
    out.push_back('}');
  }
  out += "]}";
  return out;
}

RatePlan rate_plan_from_json(std::string_view text) {
  const JsonValue doc = JsonValue::parse(text);
  RatePlan plan;
  plan.ok = doc.at("ok").as_bool();
  const std::string& tier = doc.at("tier").as_string();
  if (tier == "exact")
    plan.tier = PlanTier::kExact;
  else if (tier == "fast")
    plan.tier = PlanTier::kFast;
  else
    throw std::invalid_argument("rate plan: unknown tier");
  plan.objective_value = doc.at("objective_value").as_number();
  plan.extreme_points = doc.at("extreme_points").as_int();
  plan.optimizer_iterations = doc.at("optimizer_iterations").as_int();
  plan.columns_generated = doc.at("columns_generated").as_int();
  plan.pricing_rounds = doc.at("pricing_rounds").as_int();
  plan.y = parse_rate_array(doc, "y");
  plan.x = parse_rate_array(doc, "x");
  for (const JsonValue& s : doc.at("shapers").items()) {
    ShaperProgram prog;
    prog.flow_id = s.at("flow_id").as_int();
    prog.x_bps = s.at("x_bps").as_number();
    plan.shapers.push_back(prog);
  }
  return plan;
}

void wire_append_submit(std::string& out, const SubmitRequest& req) {
  const std::size_t len_at = append_header(out, WireKind::kSubmit, req.format,
                                           req.tenant, req.round_seq);
  if (req.format == WireFormat::kBinary)
    trace_append_snapshot_payload(out, req.snapshot);
  else
    out += req.snapshot.to_json();
  patch_length(out, len_at);
}

void wire_append_plan(std::string& out, std::uint32_t tenant,
                      std::uint64_t round_seq, const RatePlan& plan) {
  const std::size_t len_at = append_header(out, WireKind::kPlan,
                                           WireFormat::kJson, tenant,
                                           round_seq);
  out += rate_plan_to_json(plan);
  patch_length(out, len_at);
}

void wire_append_reject(std::string& out, std::uint32_t tenant,
                        std::uint64_t round_seq, std::string_view reason) {
  const std::size_t len_at = append_header(out, WireKind::kReject,
                                           WireFormat::kJson, tenant,
                                           round_seq);
  out += reason;
  patch_length(out, len_at);
}

std::size_t wire_decode_frame(std::string_view buf, WireFrame& out) {
  if (buf.size() < kWireHeaderBytes) return 0;
  if (std::memcmp(buf.data(), kWireMagic, sizeof(kWireMagic)) != 0)
    fail("bad magic (not a meshopt wire frame)");
  const auto kind = static_cast<std::uint8_t>(buf[4]);
  const auto format = static_cast<std::uint8_t>(buf[5]);
  if (kind < 1 || kind > 3) fail("unknown frame kind");
  if (format > 1) fail("unknown snapshot format");
  if (buf[6] != 0 || buf[7] != 0) fail("nonzero reserved header bits");
  const std::uint32_t tenant = get_u32(buf.data() + 8);
  const std::uint64_t round_seq = get_u64(buf.data() + 12);
  const std::uint32_t payload_bytes = get_u32(buf.data() + 20);
  // Validate the declared length BEFORE comparing against the buffer: a
  // hostile 0xffffffff prefix must fail here, not demand a 4 GiB read.
  if (payload_bytes > kWireMaxPayloadBytes)
    fail("payload exceeds the frame size limit");
  if (buf.size() < kWireHeaderBytes + payload_bytes) return 0;
  const std::string_view payload = buf.substr(kWireHeaderBytes, payload_bytes);

  WireFrame frame;
  frame.kind = static_cast<WireKind>(kind);
  frame.format = static_cast<WireFormat>(format);
  frame.tenant = tenant;
  frame.round_seq = round_seq;
  switch (frame.kind) {
    case WireKind::kSubmit:
      frame.snapshot = frame.format == WireFormat::kBinary
                           ? decode_snapshot_payload(payload)
                           : MeasurementSnapshot::from_json(payload);
      break;
    case WireKind::kPlan:
      frame.plan = rate_plan_from_json(payload);
      break;
    case WireKind::kReject:
      frame.reject_reason.assign(payload);
      break;
  }
  out = std::move(frame);
  return kWireHeaderBytes + payload_bytes;
}

}  // namespace meshopt
