#include "serve/plan_service.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/obs.h"
#include "util/rng.h"

namespace meshopt {

const char* to_string(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kAccepted:
      return "accepted";
    case SubmitStatus::kCoalesced:
      return "coalesced";
    case SubmitStatus::kShedUnknownTenant:
      return "shed:unknown-tenant";
    case SubmitStatus::kShedStaleRound:
      return "shed:stale-round";
    case SubmitStatus::kShedTenantQueueFull:
      return "shed:tenant-queue-full";
    case SubmitStatus::kShedGlobalQueueFull:
      return "shed:global-queue-full";
  }
  return "unknown";
}

ServeScript staggered_replay_script(std::uint32_t tenants,
                                    int rounds_per_tenant, int pool_rounds,
                                    int ticks_per_round, std::uint64_t seed,
                                    int burst_every) {
  if (tenants == 0 || rounds_per_tenant <= 0 || pool_rounds <= 0 ||
      ticks_per_round <= 0)
    throw std::invalid_argument(
        "serve: script dimensions must be positive");
  // All randomness at generation time, like the dynamics/fault script
  // generators: the schedule is a value, the service draws nothing.
  RngStream rng(seed, "serve-script");
  std::vector<int> offset(tenants);
  for (int& o : offset) o = rng.uniform_int(0, ticks_per_round - 1);

  ServeScript script;
  script.events.reserve(static_cast<std::size_t>(rounds_per_tenant) *
                        tenants);
  for (int r = 0; r < rounds_per_tenant; ++r) {
    for (std::uint32_t t = 0; t < tenants; ++t) {
      ServeEvent ev;
      ev.tick = static_cast<long long>(r) * ticks_per_round +
                offset[static_cast<std::size_t>(t)];
      ev.tenant = t;
      ev.snapshot_ref = r % pool_rounds;
      script.events.push_back(ev);
      // The duplicate submission lands at the same tick: with coalescing
      // it supersedes the first (counted), without it the queue absorbs
      // or sheds it — either way the admission layer gets exercised.
      if (burst_every > 0 && t % static_cast<std::uint32_t>(burst_every) == 0)
        script.events.push_back(ev);
    }
  }
  std::stable_sort(
      script.events.begin(), script.events.end(),
      [](const ServeEvent& a, const ServeEvent& b) { return a.tick < b.tick; });
  return script;
}

PlanService::PlanService(ServeConfig cfg)
    : cfg_(cfg), runner_(cfg.threads) {}

std::uint32_t PlanService::add_tenant(TenantConfig cfg) {
  sessions_.emplace_back(std::move(cfg));
  metrics_.ensure_tenants(sessions_.size());
  return static_cast<std::uint32_t>(sessions_.size() - 1);
}

const TenantConfig& PlanService::tenant_config(std::uint32_t tenant) const {
  if (tenant >= sessions_.size())
    throw std::invalid_argument("serve: unknown tenant");
  return sessions_[tenant].cfg;
}

SubmitResult PlanService::admit(std::uint32_t tenant,
                                const MeasurementSnapshot& snap,
                                std::uint64_t round_seq, bool auto_seq,
                                long long tick) {
  ServeCounters& g = metrics_.global();
  if (tenant >= sessions_.size()) {
    ++g.shed_unknown_tenant;
    return {SubmitStatus::kShedUnknownTenant, 0};
  }
  TenantSession& s = sessions_[tenant];
  TenantCounters& tc = metrics_.tenant(tenant);
  ++tc.submitted;
  ++g.totals.submitted;
  if (auto_seq) {
    round_seq = s.high_seq + 1;
  } else if (round_seq <= s.high_seq) {
    // The wire path's stale shed: a client replaying an old round (or a
    // reordered stream) must not roll a tenant's sequence backwards.
    ++tc.shed_stale_round;
    ++g.totals.shed_stale_round;
    return {SubmitStatus::kShedStaleRound, round_seq};
  }

  // Oldest-round coalescing: the queued stale round is superseded in
  // place — same backlog slot, fresher measurements, newer sequence. A
  // replacement never grows the backlog, so it bypasses both queue
  // bounds by construction.
  if (s.cfg.coalesce && !s.queue.empty()) {
    Pending& back = s.queue.back();
    back.round_seq = round_seq;
    back.enqueue_tick = tick;
    back.enqueue_wall = std::chrono::steady_clock::now();
    back.snapshot = snap;
    s.high_seq = round_seq;
    ++tc.coalesced;
    ++g.totals.coalesced;
    ++tc.accepted;
    ++g.totals.accepted;
    return {SubmitStatus::kCoalesced, round_seq};
  }

  if (s.queue.size() >=
      static_cast<std::size_t>(std::max(1, s.cfg.queue_limit))) {
    ++tc.shed_queue_full;
    ++g.totals.shed_queue_full;
    return {SubmitStatus::kShedTenantQueueFull, round_seq};
  }
  if (pending_ >= cfg_.global_queue_limit) {
    ++tc.shed_global_full;
    ++g.totals.shed_global_full;
    return {SubmitStatus::kShedGlobalQueueFull, round_seq};
  }

  Pending p;
  p.round_seq = round_seq;
  p.enqueue_tick = tick;
  p.enqueue_wall = std::chrono::steady_clock::now();
  p.snapshot = snap;
  s.queue.push_back(std::move(p));
  s.high_seq = round_seq;
  ++pending_;
  ++tc.accepted;
  ++g.totals.accepted;
  return {SubmitStatus::kAccepted, round_seq};
}

SubmitResult PlanService::submit(std::uint32_t tenant,
                                 const MeasurementSnapshot& snap,
                                 long long tick) {
  return admit(tenant, snap, 0, /*auto_seq=*/true, tick);
}

SubmitResult PlanService::submit_seq(std::uint32_t tenant,
                                     const MeasurementSnapshot& snap,
                                     std::uint64_t round_seq, long long tick) {
  return admit(tenant, snap, round_seq, /*auto_seq=*/false, tick);
}

SubmitResult PlanService::submit_frame(std::string_view frame,
                                       long long tick) {
  WireFrame decoded;
  if (wire_decode_frame(frame, decoded) == 0)
    throw std::invalid_argument("wire: incomplete frame");
  if (decoded.kind != WireKind::kSubmit)
    throw std::invalid_argument("wire: expected a submit frame");
  return submit_seq(decoded.tenant, decoded.snapshot, decoded.round_seq,
                    tick);
}

ServeBatchReport PlanService::run_batch(long long tick) {
  // Deterministic batch composition: ascending tenant id, each tenant's
  // OLDEST pending round. At most one round per tenant per batch keeps a
  // session's Planner single-writer (per-tenant rounds stay serial);
  // cross-tenant parallelism is where the pool earns its keep.
  struct Item {
    std::uint32_t tenant = 0;
    Pending req;
  };
  std::vector<Item> items;
  for (std::uint32_t t = 0; t < sessions_.size(); ++t) {
    std::deque<Pending>& q = sessions_[t].queue;
    if (q.empty()) continue;
    items.push_back({t, std::move(q.front())});
    q.pop_front();
  }
  if (items.empty()) return {};
  pending_ -= items.size();

  // One pool job per batched round; results land at the item's index, so
  // the batch output is in tenant order whatever thread ran what (the
  // SweepRunner determinism contract). Jobs touch disjoint state: item i,
  // outs[i], and tenant i's session only.
  struct JobOut {
    SnapshotVerdict verdict = SnapshotVerdict::kClean;
    RatePlan plan;
    std::string error;
  };
  std::vector<JobOut> outs(items.size());
  runner_.run_raw(
      static_cast<int>(items.size()), /*master_seed=*/0,
      [this, &items, &outs](const SweepJob& job) {
        const auto i = static_cast<std::size_t>(job.index);
        Item& item = items[i];
        TenantSession& s = sessions_[item.tenant];
        JobOut& out = outs[i];
        // Session-local tracing: the job writes into the session's own
        // recorder (single-writer, like the session Planner); run_batch
        // absorbs it in batch order after the pool barrier.
        TraceRecorder* local = nullptr;
        if (obs_ != nullptr) {
          if (!s.recorder)
            s.recorder = std::make_unique<TraceRecorder>(obs_->config());
          local = s.recorder.get();
          local->set_context(item.tenant, item.req.round_seq);
        }
        if (s.decomposed)
          s.decomposed->set_observer(local);
        else
          s.planner.set_observer(local);
        // Decomposition-tier sessions plan through their embedded
        // DecomposedPlanner; the call contract is identical, so the
        // guarded path below stays shared.
        const auto plan_round = [&s](MeasurementSnapshot& snap,
                                     bool cacheable) {
          return s.decomposed
                     ? s.decomposed->plan(snap, s.cfg.interference,
                                          s.cfg.flows, s.cfg.plan, 200000,
                                          cacheable)
                     : s.planner.plan(snap, s.cfg.interference, s.cfg.flows,
                                      s.cfg.plan, 200000, cacheable);
        };
        bool guard_rejected = false;
        {
          ObsSpan serve_span(local, ObsStage::kServe, ObsCode::kServeOk);
          try {
            if (s.cfg.guarded) {
              // Replay-style guarded round (mirrors the fleet's): the
              // repair tier mutates the pending snapshot we own, repaired
              // inputs keep the planner cache read-only, and the plan
              // guardrails run before anything is served.
              const SnapshotValidator validator(s.cfg.guard.snapshot);
              const ValidationReport report =
                  validator.validate(item.req.snapshot);
              out.verdict = report.verdict;
              if (report.usable()) {
                const bool clean = report.verdict == SnapshotVerdict::kClean;
                out.plan = plan_round(item.req.snapshot, /*cacheable=*/clean);
                const PlanValidator guard(s.cfg.guard.plan);
                if (!guard.validate(out.plan, item.req.snapshot, s.cfg.flows)
                         .ok) {
                  out.plan = RatePlan{};
                  guard_rejected = true;
                }
              }
            } else {
              out.plan = plan_round(item.req.snapshot, /*cacheable=*/true);
            }
          } catch (const std::exception& e) {
            // Round isolation, as fleet cells: a poisoned snapshot fails
            // its own round deterministically (the text is a pure function
            // of the inputs) and every other round completes.
            out.plan = RatePlan{};
            out.error = e.what();
          }
          if (!out.error.empty()) serve_span.code(ObsCode::kServeError);
          serve_span.payload(item.req.round_seq, out.plan.ok ? 1 : 0);
        }
        if (local != nullptr) {
          if (!out.error.empty())
            local->trigger_incident(ObsCode::kServeError, out.error);
          else if (guard_rejected)
            local->trigger_incident(ObsCode::kPlanReject,
                                    "serve: plan guardrail reject");
        }
      });

  // All accounting on the calling thread, in batch order — the reason
  // every counter and tick histogram is bit-identical across pool sizes.
  const auto now = std::chrono::steady_clock::now();
  ServeCounters& g = metrics_.global();
  ++g.batches;
  g.batch_requests += items.size();
  g.max_batch = std::max<std::uint64_t>(g.max_batch, items.size());

  ServeBatchReport report;
  report.served.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    Item& item = items[i];
    JobOut& out = outs[i];
    TenantSession& s = sessions_[item.tenant];
    TenantCounters& tc = metrics_.tenant(item.tenant);

    switch (out.verdict) {
      case SnapshotVerdict::kClean:
        ++tc.snapshots_clean;
        ++g.totals.snapshots_clean;
        break;
      case SnapshotVerdict::kRepaired:
        ++tc.snapshots_repaired;
        ++g.totals.snapshots_repaired;
        break;
      case SnapshotVerdict::kRejected:
        ++tc.snapshots_rejected;
        ++g.totals.snapshots_rejected;
        break;
    }
    if (out.plan.ok) {
      ++tc.plans_served;
      ++g.totals.plans_served;
    } else {
      ++tc.plans_failed;
      ++g.totals.plans_failed;
    }
    // Meter the session planner by diffing stats snapshots (the
    // per-interval-window pattern Planner::stats_snapshot exists for).
    // Decomposed sessions aggregate their fallback planner plus every
    // component slot's planner into the same counters.
    const PlannerStats ps = s.decomposed
                                ? s.decomposed->planner_stats_snapshot()
                                : s.planner.stats_snapshot();
    tc.cache_hits += ps.hits - s.seen_stats.hits;
    tc.cache_misses += ps.misses - s.seen_stats.misses;
    tc.uncacheable_plans += ps.uncacheable_plans - s.seen_stats.uncacheable_plans;
    g.totals.cache_hits += ps.hits - s.seen_stats.hits;
    g.totals.cache_misses += ps.misses - s.seen_stats.misses;
    g.totals.uncacheable_plans +=
        ps.uncacheable_plans - s.seen_stats.uncacheable_plans;
    s.seen_stats = ps;
    if (s.decomposed) {
      const DecomposeStats ds = s.decomposed->stats_snapshot();
      tc.decomposed_rounds += ds.decomposed_rounds -
                              s.seen_decompose.decomposed_rounds;
      tc.components_planned += ds.components_planned -
                               s.seen_decompose.components_planned;
      g.totals.decomposed_rounds += ds.decomposed_rounds -
                                    s.seen_decompose.decomposed_rounds;
      g.totals.components_planned += ds.components_planned -
                                     s.seen_decompose.components_planned;
      s.seen_decompose = ds;
    }

    metrics_.record_tick_latency(
        item.tenant, static_cast<double>(tick - item.req.enqueue_tick));
    metrics_.record_wall_latency(
        std::chrono::duration<double>(now - item.req.enqueue_wall).count());

    s.last_plan = out.plan;
    s.last_served_seq = item.req.round_seq;

    // Batch-order absorption: session traces merge into the service
    // recorder here, on the calling thread — the trace side of the
    // "all accounting in batch order" determinism contract.
    if (obs_ != nullptr && s.recorder) obs_->absorb(*s.recorder);

    ServedPlan served;
    served.tenant = item.tenant;
    served.round_seq = item.req.round_seq;
    served.submit_tick = item.req.enqueue_tick;
    served.served_tick = tick;
    served.verdict = out.verdict;
    served.plan = std::move(out.plan);
    served.error = std::move(out.error);
    report.served.push_back(std::move(served));
  }
  return report;
}

ServeReport PlanService::run_script(
    const ServeScript& script, const std::vector<MeasurementSnapshot>& pool) {
  for (std::size_t i = 1; i < script.events.size(); ++i)
    if (script.events[i].tick < script.events[i - 1].tick)
      throw std::invalid_argument("serve: script events must be tick-sorted");

  ServeReport report;
  report.submit_results.reserve(script.events.size());
  std::size_t next = 0;
  long long tick = script.events.empty() ? 0 : script.events.front().tick;
  while (next < script.events.size() || pending_ > 0) {
    // Idle gap with nothing queued: hop straight to the next event's tick
    // (the intermediate batches would be empty — skipping them changes
    // nothing observable and keeps sparse schedules cheap).
    if (pending_ == 0 && next < script.events.size() &&
        script.events[next].tick > tick)
      tick = script.events[next].tick;
    for (; next < script.events.size() && script.events[next].tick <= tick;
         ++next) {
      const ServeEvent& ev = script.events[next];
      if (ev.snapshot_ref < 0 ||
          static_cast<std::size_t>(ev.snapshot_ref) >= pool.size())
        throw std::invalid_argument("serve: snapshot_ref outside the pool");
      report.submit_results.push_back(
          submit(ev.tenant, pool[static_cast<std::size_t>(ev.snapshot_ref)],
                 tick));
    }
    ServeBatchReport batch = run_batch(tick);
    for (ServedPlan& served : batch.served)
      report.served.push_back(std::move(served));
    ++tick;
  }
  report.final_tick = tick;
  return report;
}

void PlanService::append_response_frame(std::string& out,
                                        const ServedPlan& served) const {
  if (served.plan.ok) {
    wire_append_plan(out, served.tenant, served.round_seq, served.plan);
    return;
  }
  std::string_view reason = "plan infeasible or rejected";
  if (!served.error.empty())
    reason = served.error;
  else if (served.verdict == SnapshotVerdict::kRejected)
    reason = "snapshot rejected";
  wire_append_reject(out, served.tenant, served.round_seq, reason);
}

std::string PlanService::metrics_json(bool include_wall) const {
  return metrics_.to_json(include_wall);
}

const RatePlan& PlanService::last_plan(std::uint32_t tenant) const {
  if (tenant >= sessions_.size())
    throw std::invalid_argument("serve: unknown tenant");
  return sessions_[tenant].last_plan;
}

std::uint64_t PlanService::last_served_seq(std::uint32_t tenant) const {
  if (tenant >= sessions_.size())
    throw std::invalid_argument("serve: unknown tenant");
  return sessions_[tenant].last_served_seq;
}

}  // namespace meshopt
