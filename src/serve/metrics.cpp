#include "serve/metrics.h"

#include "obs/export.h"
#include "util/json.h"

namespace meshopt {

namespace {

/// Tick latencies are small non-negative integers: bins span [0.5, 1e6)
/// ticks (a zero-tick service lands in the underflow bin, reported as the
/// observed minimum). Wall latencies span 100 ns .. ~1 day in seconds.
QuantileSketch tick_sketch() { return QuantileSketch(0.5, 1e6, 8); }
QuantileSketch wall_sketch() { return QuantileSketch(1e-7, 1e5, 8); }

// The one counter-walk both export formats are built from. Every counter
// the metrics plane exports MUST be named here (and only here): the JSON
// writer and the Prometheus text writer each visit this walk, so a field
// added to the walk shows up in both formats and one added elsewhere shows
// up in neither — the formats cannot drift.
template <typename Fn>
void walk_tenant_counters(const TenantCounters& c, Fn&& fn) {
  fn("submitted", c.submitted);
  fn("accepted", c.accepted);
  fn("coalesced", c.coalesced);
  fn("shed_queue_full", c.shed_queue_full);
  fn("shed_global_full", c.shed_global_full);
  fn("shed_stale_round", c.shed_stale_round);
  fn("plans_served", c.plans_served);
  fn("plans_failed", c.plans_failed);
  fn("snapshots_clean", c.snapshots_clean);
  fn("snapshots_repaired", c.snapshots_repaired);
  fn("snapshots_rejected", c.snapshots_rejected);
  fn("cache_hits", c.cache_hits);
  fn("cache_misses", c.cache_misses);
  fn("uncacheable_plans", c.uncacheable_plans);
  fn("decomposed_rounds", c.decomposed_rounds);
  fn("components_planned", c.components_planned);
}

/// Service-level counters no tenant owns (global scope only).
template <typename Fn>
void walk_global_extras(const ServeCounters& g, Fn&& fn) {
  fn("shed_unknown_tenant", g.shed_unknown_tenant);
  fn("batches", g.batches);
  fn("batch_requests", g.batch_requests);
  fn("max_batch", g.max_batch);
}

void append_counter(std::string& out, const char* key, std::uint64_t v) {
  json_append_string(out, key);
  out.push_back(':');
  json_append_int(out, static_cast<long long>(v));
  out.push_back(',');
}

void append_tenant_counters(std::string& out, const TenantCounters& c) {
  walk_tenant_counters(
      c, [&out](const char* key, std::uint64_t v) { append_counter(out, key, v); });
}

void append_sketch(std::string& out, const char* key,
                   const QuantileSketch& s) {
  json_append_string(out, key);
  out += ":{";
  append_counter(out, "count", s.count());
  json_append_string(out, "p50");
  out.push_back(':');
  json_append_double(out, s.quantile(0.50));
  out.push_back(',');
  json_append_string(out, "p95");
  out.push_back(':');
  json_append_double(out, s.quantile(0.95));
  out.push_back(',');
  json_append_string(out, "p99");
  out.push_back(':');
  json_append_double(out, s.quantile(0.99));
  out.push_back(',');
  json_append_string(out, "min");
  out.push_back(':');
  json_append_double(out, s.min());
  out.push_back(',');
  json_append_string(out, "mean");
  out.push_back(':');
  json_append_double(out, s.mean());
  out.push_back(',');
  json_append_string(out, "max");
  out.push_back(':');
  json_append_double(out, s.max());
  out.push_back('}');
}

}  // namespace

ServeMetrics::ServeMetrics()
    : tick_latency_(tick_sketch()), wall_latency_s_(wall_sketch()) {}

void ServeMetrics::ensure_tenants(std::size_t count) {
  while (tenant_.size() < count) {
    tenant_.emplace_back();
    tenant_tick_latency_.push_back(tick_sketch());
  }
}

void ServeMetrics::record_tick_latency(std::size_t tenant_id, double ticks) {
  tick_latency_.add(ticks);
  tenant_tick_latency_[tenant_id].add(ticks);
}

std::string ServeMetrics::to_json(bool include_wall) const {
  std::string out = "{";
  json_append_string(out, "global");
  out += ":{";
  append_tenant_counters(out, global_.totals);
  walk_global_extras(global_, [&out](const char* key, std::uint64_t v) {
    append_counter(out, key, v);
  });
  append_sketch(out, "tick_latency", tick_latency_);
  if (include_wall) {
    out.push_back(',');
    append_sketch(out, "wall_latency_s", wall_latency_s_);
  }
  out += "},";
  json_append_string(out, "tenants");
  out += ":[";
  for (std::size_t t = 0; t < tenant_.size(); ++t) {
    if (t > 0) out.push_back(',');
    out.push_back('{');
    json_append_string(out, "tenant");
    out.push_back(':');
    json_append_int(out, static_cast<long long>(t));
    out.push_back(',');
    append_tenant_counters(out, tenant_[t]);
    append_sketch(out, "tick_latency", tenant_tick_latency_[t]);
    out.push_back('}');
  }
  out += "]}";
  return out;
}

std::string ServeMetrics::metrics_text(bool include_wall) const {
  // Collect samples family-major (the exposition format groups all samples
  // of one metric under its # TYPE header) while still visiting counters
  // through the one shared walk.
  std::vector<std::pair<std::string, std::string>> families;
  auto family = [&families](const char* key) -> std::string& {
    const std::string name = std::string("meshopt_serve_") + key;
    for (auto& [n, body] : families) {
      if (n == name) return body;
    }
    families.emplace_back(name, std::string());
    return families.back().second;
  };
  auto add_sample = [&family](const char* key, const std::string& labels,
                              std::uint64_t v) {
    std::string& body = family(key);
    body += "meshopt_serve_";
    body += key;
    body += '{';
    body += labels;
    body += "} ";
    body += std::to_string(v);
    body += '\n';
  };
  walk_tenant_counters(global_.totals,
                       [&add_sample](const char* key, std::uint64_t v) {
                         add_sample(key, "scope=\"global\"", v);
                       });
  walk_global_extras(global_, [&add_sample](const char* key, std::uint64_t v) {
    add_sample(key, "scope=\"global\"", v);
  });
  for (std::size_t t = 0; t < tenant_.size(); ++t) {
    const std::string labels = "tenant=\"" + std::to_string(t) + "\"";
    walk_tenant_counters(tenant_[t],
                         [&add_sample, &labels](const char* key,
                                                std::uint64_t v) {
                           add_sample(key, labels, v);
                         });
  }

  std::string out;
  for (const auto& [name, body] : families) {
    out += "# TYPE " + name + " counter\n";
    out += body;
  }

  out += "# TYPE meshopt_serve_tick_latency histogram\n";
  prometheus_append_histogram(out, "meshopt_serve_tick_latency",
                              "scope=\"global\"", tick_latency_);
  for (std::size_t t = 0; t < tenant_.size(); ++t) {
    prometheus_append_histogram(out, "meshopt_serve_tick_latency",
                                "tenant=\"" + std::to_string(t) + "\"",
                                tenant_tick_latency_[t]);
  }
  if (include_wall) {
    out += "# TYPE meshopt_serve_wall_latency_s histogram\n";
    prometheus_append_histogram(out, "meshopt_serve_wall_latency_s",
                                "scope=\"global\"", wall_latency_s_);
  }
  return out;
}

}  // namespace meshopt
