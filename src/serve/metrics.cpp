#include "serve/metrics.h"

#include "util/json.h"

namespace meshopt {

namespace {

/// Tick latencies are small non-negative integers: bins span [0.5, 1e6)
/// ticks (a zero-tick service lands in the underflow bin, reported as the
/// observed minimum). Wall latencies span 100 ns .. ~1 day in seconds.
QuantileSketch tick_sketch() { return QuantileSketch(0.5, 1e6, 8); }
QuantileSketch wall_sketch() { return QuantileSketch(1e-7, 1e5, 8); }

void append_counter(std::string& out, const char* key, std::uint64_t v) {
  json_append_string(out, key);
  out.push_back(':');
  json_append_int(out, static_cast<long long>(v));
  out.push_back(',');
}

void append_tenant_counters(std::string& out, const TenantCounters& c) {
  append_counter(out, "submitted", c.submitted);
  append_counter(out, "accepted", c.accepted);
  append_counter(out, "coalesced", c.coalesced);
  append_counter(out, "shed_queue_full", c.shed_queue_full);
  append_counter(out, "shed_global_full", c.shed_global_full);
  append_counter(out, "shed_stale_round", c.shed_stale_round);
  append_counter(out, "plans_served", c.plans_served);
  append_counter(out, "plans_failed", c.plans_failed);
  append_counter(out, "snapshots_clean", c.snapshots_clean);
  append_counter(out, "snapshots_repaired", c.snapshots_repaired);
  append_counter(out, "snapshots_rejected", c.snapshots_rejected);
  append_counter(out, "cache_hits", c.cache_hits);
  append_counter(out, "cache_misses", c.cache_misses);
  append_counter(out, "uncacheable_plans", c.uncacheable_plans);
  append_counter(out, "decomposed_rounds", c.decomposed_rounds);
  append_counter(out, "components_planned", c.components_planned);
}

void append_sketch(std::string& out, const char* key,
                   const QuantileSketch& s) {
  json_append_string(out, key);
  out += ":{";
  append_counter(out, "count", s.count());
  json_append_string(out, "p50");
  out.push_back(':');
  json_append_double(out, s.quantile(0.50));
  out.push_back(',');
  json_append_string(out, "p95");
  out.push_back(':');
  json_append_double(out, s.quantile(0.95));
  out.push_back(',');
  json_append_string(out, "p99");
  out.push_back(':');
  json_append_double(out, s.quantile(0.99));
  out.push_back(',');
  json_append_string(out, "min");
  out.push_back(':');
  json_append_double(out, s.min());
  out.push_back(',');
  json_append_string(out, "mean");
  out.push_back(':');
  json_append_double(out, s.mean());
  out.push_back(',');
  json_append_string(out, "max");
  out.push_back(':');
  json_append_double(out, s.max());
  out.push_back('}');
}

}  // namespace

ServeMetrics::ServeMetrics()
    : tick_latency_(tick_sketch()), wall_latency_s_(wall_sketch()) {}

void ServeMetrics::ensure_tenants(std::size_t count) {
  while (tenant_.size() < count) {
    tenant_.emplace_back();
    tenant_tick_latency_.push_back(tick_sketch());
  }
}

void ServeMetrics::record_tick_latency(std::size_t tenant_id, double ticks) {
  tick_latency_.add(ticks);
  tenant_tick_latency_[tenant_id].add(ticks);
}

std::string ServeMetrics::to_json(bool include_wall) const {
  std::string out = "{";
  json_append_string(out, "global");
  out += ":{";
  append_tenant_counters(out, global_.totals);
  append_counter(out, "shed_unknown_tenant", global_.shed_unknown_tenant);
  append_counter(out, "batches", global_.batches);
  append_counter(out, "batch_requests", global_.batch_requests);
  append_counter(out, "max_batch", global_.max_batch);
  append_sketch(out, "tick_latency", tick_latency_);
  if (include_wall) {
    out.push_back(',');
    append_sketch(out, "wall_latency_s", wall_latency_s_);
  }
  out += "},";
  json_append_string(out, "tenants");
  out += ":[";
  for (std::size_t t = 0; t < tenant_.size(); ++t) {
    if (t > 0) out.push_back(',');
    out.push_back('{');
    json_append_string(out, "tenant");
    out.push_back(':');
    json_append_int(out, static_cast<long long>(t));
    out.push_back(',');
    append_tenant_counters(out, tenant_[t]);
    append_sketch(out, "tick_latency", tenant_tick_latency_[t]);
    out.push_back('}');
  }
  out += "]}";
  return out;
}

}  // namespace meshopt
