#pragma once
// The wireless medium.
//
// The channel holds a directed RSS matrix between nodes (filled from
// geometry by the scenario module, or set explicitly for the CS/IA/NF
// topology classes) and emulates:
//   * energy-detect + preamble-detect carrier sensing,
//   * SINR-based frame corruption under overlapping transmissions,
//   * message-in-message capture (a sufficiently stronger late frame steals
//     the receiver lock — the effect behind the paper's Fig. 5),
//   * independent per-link channel losses via an ErrorModel.
//
// MACs interact with it through start_tx() and receive PhySap callbacks.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "phy/error_model.h"
#include "phy/frame.h"
#include "phy/radio.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace meshopt {

/// Callbacks the channel raises toward a node's MAC.
class PhySap {
 public:
  virtual ~PhySap() = default;
  /// Carrier-sense state change (busy covers: own TX, locked RX, energy).
  virtual void phy_busy_changed(bool busy) = 0;
  /// A frame addressed to this node (or broadcast) was decoded.
  virtual void phy_rx_done(const Frame& frame) = 0;
  /// A decodable frame was corrupted (collision or channel error) — the
  /// MAC responds with EIFS deferral.
  virtual void phy_rx_corrupted() = 0;
};

class Channel {
 public:
  Channel(Simulator& sim, PhyParams phy, RngStream rng);

  /// Register a node; returns its id. `sap` may be null for passive nodes.
  NodeId add_node(PhySap* sap);

  [[nodiscard]] int node_count() const {
    return static_cast<int>(nodes_.size());
  }

  /// Directed RSS (dBm) of a's signal at b. Defaults to "unreachable".
  void set_rss_dbm(NodeId a, NodeId b, double dbm);
  void set_rss_symmetric_dbm(NodeId a, NodeId b, double dbm);
  [[nodiscard]] double rss_dbm(NodeId a, NodeId b) const;

  void set_error_model(std::shared_ptr<const ErrorModel> model);
  [[nodiscard]] const ErrorModel& error_model() const { return *error_; }
  /// Shared handle to the installed model — lets a wrapper (e.g. the
  /// dynamics engine's loss overlay) layer on top of it while keeping the
  /// original alive.
  [[nodiscard]] std::shared_ptr<const ErrorModel> error_model_ptr() const {
    return error_;
  }

  [[nodiscard]] const PhyParams& phy() const { return phy_; }

  /// Would b be able to decode a's frames at `rate` on a clean channel?
  [[nodiscard]] bool decodable(NodeId a, NodeId b, Rate rate) const;

  /// Does b sense a's transmissions (either by energy or by preamble)?
  [[nodiscard]] bool senses(NodeId a, NodeId b) const;

  /// Begin a transmission. The channel schedules its own end-of-frame
  /// processing after `duration`; the caller keeps its own end timer.
  void start_tx(NodeId tx, const Frame& frame, TimeNs duration);

  [[nodiscard]] bool carrier_busy(NodeId n) const;

  /// Total frames that ended with a corrupted lock (collision-style loss),
  /// for diagnostics.
  [[nodiscard]] std::uint64_t corrupted_count() const { return corrupted_; }

 private:
  struct RxLock {
    std::uint64_t frame_id = 0;
    Frame frame;
    double rss_mw = 0.0;
    double max_interference_mw = 0.0;
    bool corrupted = false;
  };

  /// An in-flight foreign frame heard by a node. Frame ids are handed out
  /// monotonically, so appending keeps the per-node list sorted and lookup
  /// is a binary search — overlapping-frame counts are small, so a flat
  /// vector beats a hash map on both lookup and the energy sum.
  struct HeardFrame {
    std::uint64_t frame_id = 0;
    double rss_mw = 0.0;
  };

  struct PhyState {
    PhySap* sap = nullptr;
    bool transmitting = false;
    bool busy_reported = false;
    std::optional<RxLock> lock;
    /// In-flight foreign frames, sorted by frame_id. The interference
    /// energy is their left-to-right sum; hot paths that already know the
    /// sum derive updates from it (see handle_frame_start_at) instead of
    /// re-walking this list.
    std::vector<HeardFrame> heard;
    /// The frame this node is currently transmitting (valid while
    /// `transmitting`). Kept here so the end-of-frame closure captures two
    /// words instead of a whole Frame and stays inline in the event slab.
    Frame cur_frame;
    /// Receivers of this node's current transmission, snapshotted from the
    /// reach index at start_tx so end_tx visits exactly the nodes that got
    /// the frame even if RSS is edited mid-flight. Reused across frames,
    /// and re-copied only when the reach index actually changed since the
    /// last snapshot (see active_rx_gen).
    std::vector<NodeId> active_rx;
    /// Reach-index generation active_rx was snapshotted at; ~0 = never.
    std::uint64_t active_rx_gen = ~std::uint64_t{0};

    [[nodiscard]] double energy_mw() const {
      double e = 0.0;
      for (const HeardFrame& h : heard) e += h.rss_mw;
      return e;
    }
  };

  void end_tx(NodeId tx);
  void update_reach(NodeId a, NodeId b);
  void update_busy(NodeId n);
  /// update_busy with the node's interference energy already in hand —
  /// the frame-start path accumulates it once and passes it along instead
  /// of re-walking the heard list per busy check.
  void update_busy_with(NodeId n, double energy_mw);
  /// Raise phy_busy_changed if `busy` differs from the reported state.
  void report_busy(NodeId n, bool busy);
  void handle_frame_start_at(NodeId n, const Frame& f, double rss_mw);
  void finalize_lock(NodeId n, const Frame& f);
  [[nodiscard]] double sinr_db(double signal_mw, double interference_mw) const;
  [[nodiscard]] double rss_mw(NodeId a, NodeId b) const;

  Simulator& sim_;
  PhyParams phy_;
  RngStream rng_;
  std::shared_ptr<const ErrorModel> error_;
  std::vector<PhyState> nodes_;
  std::vector<std::vector<double>> rss_dbm_;  // [tx][rx]
  /// Per-transmitter neighbor index: receivers whose RSS from the node is
  /// above the hear floor, ascending. Maintained incrementally by
  /// set_rss_dbm so start_tx/end_tx fan out over O(degree) nodes, not O(N).
  std::vector<std::vector<NodeId>> reach_;
  /// Per-transmitter reach generation, bumped on every membership change;
  /// start_tx skips the active_rx copy when the generation is unchanged
  /// (steady-state topologies pay the snapshot once, not per frame).
  std::vector<std::uint64_t> reach_gen_;
  std::uint64_t next_frame_id_ = 1;
  std::uint64_t corrupted_ = 0;
  double noise_mw_ = 0.0;
  double cs_mw_ = 0.0;
  double hear_floor_mw_ = 0.0;
};

}  // namespace meshopt
