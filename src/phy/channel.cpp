#include "phy/channel.h"

#include <algorithm>
#include <cassert>

namespace meshopt {

namespace {
constexpr double kUnreachableDbm = -200.0;
}  // namespace

Channel::Channel(Simulator& sim, PhyParams phy, RngStream rng)
    : sim_(sim),
      phy_(phy),
      rng_(rng),
      error_(std::make_shared<PerfectChannelModel>()) {
  noise_mw_ = dbm_to_mw(phy_.noise_floor_dbm);
  cs_mw_ = dbm_to_mw(phy_.cs_threshold_dbm);
  // Signals 20 dB below the noise floor are ignored entirely.
  hear_floor_mw_ = dbm_to_mw(phy_.noise_floor_dbm - 20.0);
}

NodeId Channel::add_node(PhySap* sap) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(PhyState{});
  nodes_.back().sap = sap;
  // Typical overlap depth is single digits even in dense meshes; seeding
  // the heard list's capacity keeps the first frames of a run (and every
  // frame of a short benchmark) off the allocator.
  nodes_.back().heard.reserve(8);
  for (auto& row : rss_dbm_) row.push_back(kUnreachableDbm);
  rss_dbm_.emplace_back(nodes_.size(), kUnreachableDbm);
  reach_.emplace_back();  // new node is unreachable by default
  reach_gen_.push_back(0);
  return id;
}

void Channel::set_rss_dbm(NodeId a, NodeId b, double dbm) {
  rss_dbm_.at(static_cast<std::size_t>(a)).at(static_cast<std::size_t>(b)) =
      dbm;
  update_reach(a, b);
}

void Channel::update_reach(NodeId a, NodeId b) {
  if (a == b) return;
  std::vector<NodeId>& r = reach_[static_cast<std::size_t>(a)];
  const auto it = std::lower_bound(r.begin(), r.end(), b);
  const bool was = it != r.end() && *it == b;
  const bool now = rss_mw(a, b) >= hear_floor_mw_;
  if (now && !was) {
    r.insert(it, b);
    ++reach_gen_[static_cast<std::size_t>(a)];
  } else if (!now && was) {
    r.erase(it);
    ++reach_gen_[static_cast<std::size_t>(a)];
  }
}

void Channel::set_rss_symmetric_dbm(NodeId a, NodeId b, double dbm) {
  set_rss_dbm(a, b, dbm);
  set_rss_dbm(b, a, dbm);
}

double Channel::rss_dbm(NodeId a, NodeId b) const {
  if (a == b) return kUnreachableDbm;
  return rss_dbm_.at(static_cast<std::size_t>(a))
      .at(static_cast<std::size_t>(b));
}

double Channel::rss_mw(NodeId a, NodeId b) const {
  const double dbm = rss_dbm(a, b);
  return dbm <= kUnreachableDbm ? 0.0 : dbm_to_mw(dbm);
}

void Channel::set_error_model(std::shared_ptr<const ErrorModel> model) {
  assert(model);
  error_ = std::move(model);
}

bool Channel::decodable(NodeId a, NodeId b, Rate rate) const {
  return rss_dbm(a, b) >= phy_.sensitivity_dbm(rate);
}

bool Channel::senses(NodeId a, NodeId b) const {
  // Preamble detect works down to the most sensitive rate; energy detect at
  // the CS threshold. Sensing range is the union.
  return rss_dbm(a, b) >= std::min(phy_.cs_threshold_dbm,
                                   phy_.sensitivity_dbm(Rate::kR1Mbps));
}

double Channel::sinr_db(double signal_mw, double interference_mw) const {
  return mw_to_dbm(signal_mw) - mw_to_dbm(noise_mw_ + interference_mw);
}

bool Channel::carrier_busy(NodeId n) const {
  const PhyState& st = nodes_.at(static_cast<std::size_t>(n));
  return st.transmitting || st.lock.has_value() || st.energy_mw() >= cs_mw_;
}

void Channel::update_busy(NodeId n) {
  report_busy(n, carrier_busy(n));
}

void Channel::update_busy_with(NodeId n, double energy_mw) {
  const PhyState& st = nodes_[static_cast<std::size_t>(n)];
  report_busy(n,
              st.transmitting || st.lock.has_value() || energy_mw >= cs_mw_);
}

void Channel::report_busy(NodeId n, bool busy) {
  PhyState& st = nodes_[static_cast<std::size_t>(n)];
  if (busy != st.busy_reported) {
    st.busy_reported = busy;
    if (st.sap != nullptr) st.sap->phy_busy_changed(busy);
  }
}

void Channel::start_tx(NodeId tx, const Frame& frame_in, TimeNs duration) {
  PhyState& txs = nodes_.at(static_cast<std::size_t>(tx));
  assert(!txs.transmitting && "node already transmitting");

  Frame frame = frame_in;
  frame.id = next_frame_id_++;
  frame.tx = tx;

  // A transmitting node aborts any in-progress reception (half duplex).
  txs.lock.reset();
  txs.transmitting = true;
  txs.cur_frame = frame;
  update_busy(tx);

  // Snapshot the reach index (ascending node order keeps RNG draw order
  // identical to a full scan) so end_tx undoes exactly this fan-out. In
  // the steady state the topology does not change between frames, so the
  // snapshot from the previous frame is still exact and the copy is
  // skipped (the generation bumps on any reach membership change).
  if (txs.active_rx_gen != reach_gen_[static_cast<std::size_t>(tx)]) {
    txs.active_rx = reach_[static_cast<std::size_t>(tx)];
    txs.active_rx_gen = reach_gen_[static_cast<std::size_t>(tx)];
  }
  for (NodeId n : txs.active_rx) {
    double rss = rss_mw(tx, n);
    if (phy_.fading_sigma_db > 0.0) {
      // One lognormal fast-fading draw per frame/receiver pair.
      rss *= dbm_to_mw(rng_.normal(0.0, phy_.fading_sigma_db));
    }
    handle_frame_start_at(n, frame, rss);
  }

  sim_.schedule(duration, [this, tx] { end_tx(tx); });
}

void Channel::handle_frame_start_at(NodeId n, const Frame& f, double rss) {
  PhyState& st = nodes_[static_cast<std::size_t>(n)];
  // One accumulation pass per receiver per frame start. Everything below
  // derives from `interference_before`: appending `rss` to the heard list
  // extends the left-to-right sum by exactly one addition, so
  // `energy_now = interference_before + rss` is bit-identical to
  // re-walking the list — and the capture/interference/busy computations
  // reuse it instead of resumming per check (up to 3× under heavy
  // overlap, where the heard list is long).
  const double interference_before = st.energy_mw();
  st.heard.push_back(HeardFrame{f.id, rss});  // ids ascend: stays sorted
  const double energy_now = interference_before + rss;

  if (!st.transmitting) {
    if (!st.lock.has_value()) {
      // Try to acquire the preamble: strong enough and clean enough.
      const bool strong = mw_to_dbm(rss) >= phy_.sensitivity_dbm(f.rate);
      const bool clean =
          sinr_db(rss, interference_before) >= phy_.sinr_min_db(f.rate);
      if (strong && clean) {
        RxLock lock;
        lock.frame_id = f.id;
        lock.frame = f;
        lock.rss_mw = rss;
        lock.max_interference_mw = interference_before;
        st.lock = lock;
      }
    } else {
      RxLock& lock = *st.lock;
      const double capture_lin = dbm_to_mw(phy_.capture_margin_db) /
                                 1.0;  // margin as linear ratio
      if (rss >= lock.rss_mw * capture_lin &&
          mw_to_dbm(rss) >= phy_.sensitivity_dbm(f.rate)) {
        // Message-in-message capture: the new frame steals the receiver.
        // The interference seen by the new frame includes the old one.
        const double interf_new = energy_now - rss;
        ++corrupted_;
        if (st.sap != nullptr) st.sap->phy_rx_corrupted();
        if (sinr_db(rss, interf_new) >= phy_.sinr_min_db(f.rate)) {
          RxLock fresh;
          fresh.frame_id = f.id;
          fresh.frame = f;
          fresh.rss_mw = rss;
          fresh.max_interference_mw = interf_new;
          st.lock = fresh;
        } else {
          st.lock.reset();
        }
      } else {
        // Plain interference against the locked frame.
        const double interf = energy_now - lock.rss_mw;
        lock.max_interference_mw = std::max(lock.max_interference_mw, interf);
        if (sinr_db(lock.rss_mw, interf) <
            phy_.sinr_min_db(lock.frame.rate)) {
          lock.corrupted = true;
        }
      }
    }
  }
  update_busy_with(n, energy_now);
}

void Channel::end_tx(NodeId tx) {
  PhyState& txs = nodes_[static_cast<std::size_t>(tx)];
  const Frame frame = txs.cur_frame;
  for (NodeId n : txs.active_rx) {
    PhyState& st = nodes_[static_cast<std::size_t>(n)];
    const auto it = std::lower_bound(
        st.heard.begin(), st.heard.end(), frame.id,
        [](const HeardFrame& h, std::uint64_t id) { return h.frame_id < id; });
    if (it == st.heard.end() || it->frame_id != frame.id) continue;
    st.heard.erase(it);
    if (!st.transmitting && st.lock.has_value() &&
        st.lock->frame_id == frame.id) {
      finalize_lock(n, frame);
    }
    update_busy(n);
  }
  // active_rx is kept (not cleared): it stays a valid snapshot for the
  // next frame unless the reach index changes, which start_tx detects via
  // the generation counter.
  txs.transmitting = false;
  update_busy(tx);
}

void Channel::finalize_lock(NodeId n, const Frame& f) {
  PhyState& st = nodes_[static_cast<std::size_t>(n)];
  const RxLock lock = *st.lock;
  st.lock.reset();

  bool ok = !lock.corrupted;
  if (ok) {
    // Independent channel-error loss on an otherwise clean frame.
    const double p = error_->per(f.tx, n, f.rate, f.type);
    if (rng_.bernoulli(p)) ok = false;
  }

  if (ok) {
    if ((f.dst == n || f.dst == kBroadcast) && st.sap != nullptr) {
      st.sap->phy_rx_done(f);
    }
    // Correctly decoded frames addressed elsewhere are simply overheard.
  } else {
    ++corrupted_;
    if (st.sap != nullptr) st.sap->phy_rx_corrupted();
  }
}

}  // namespace meshopt
