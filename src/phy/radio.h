#pragma once
// 802.11 radio parameterization.
//
// The paper runs 802.11g cards at fixed 1 Mb/s and 11 Mb/s modulation rates
// (DSSS/CCK, long preamble) with RTS/CTS disabled and rate adaptation off.
// We model exactly that configuration: DSSS timing (20 us slots), long PLCP
// preamble, CWmin 32, ACKs at the 1 Mb/s base rate.

#include <cstdint>

#include "sim/simulator.h"

namespace meshopt {

using NodeId = int;
constexpr NodeId kBroadcast = -1;

/// Modulation data rates used in the paper's evaluation.
enum class Rate : std::uint8_t {
  kR1Mbps,
  kR11Mbps,
};

[[nodiscard]] constexpr double rate_bps(Rate r) {
  switch (r) {
    case Rate::kR1Mbps:
      return 1e6;
    case Rate::kR11Mbps:
      return 11e6;
  }
  return 1e6;
}

[[nodiscard]] constexpr const char* rate_name(Rate r) {
  return r == Rate::kR1Mbps ? "1Mbps" : "11Mbps";
}

/// 802.11 (DSSS / long preamble) MAC+PHY timing and size constants.
struct MacTimings {
  TimeNs slot = micros(20);
  TimeNs sifs = micros(10);
  TimeNs difs = micros(50);         ///< SIFS + 2 slots
  TimeNs plcp = micros(192);        ///< long preamble + PLCP header @1Mb/s
  int cw_min = 32;                  ///< W0
  int max_backoff_stage = 5;        ///< m: CW maxes out at W0 * 2^m = 1024
  int retry_limit = 7;              ///< attempts before the frame is dropped
  int mac_header_bytes = 28;        ///< MAC header (24) + FCS (4)
  int llc_bytes = 8;                ///< LLC/SNAP encapsulation
  int ack_bytes = 14;               ///< ACK control frame
  Rate ack_rate = Rate::kR1Mbps;    ///< ACKs at base rate (as paper probes)

  [[nodiscard]] int cw_at_stage(int stage) const {
    int cw = cw_min;
    for (int i = 0; i < stage && i < max_backoff_stage; ++i) cw *= 2;
    return cw;
  }
  [[nodiscard]] int cw_max() const { return cw_at_stage(max_backoff_stage); }
  [[nodiscard]] TimeNs eifs() const;  ///< SIFS + ACK airtime + DIFS
};

/// Receiver-side PHY thresholds.
struct PhyParams {
  double noise_floor_dbm = -95.0;
  double cs_threshold_dbm = -82.0;   ///< energy-detect carrier sense
  double capture_margin_db = 10.0;   ///< message-in-message relock margin
  /// Per-frame lognormal fast-fading deviation (dB). Each frame/receiver
  /// pair gets one RSS draw; this is what makes capture *graded* instead
  /// of binary, as real testbeds observe (paper Section 4.2).
  double fading_sigma_db = 2.5;
  /// Minimum SINR (dB) to decode at each rate.
  double sinr_min_db_r1 = 4.0;
  double sinr_min_db_r11 = 10.0;
  /// Minimum RSS (dBm) to attempt decoding at each rate.
  double sensitivity_dbm_r1 = -94.0;
  double sensitivity_dbm_r11 = -88.0;

  [[nodiscard]] double sinr_min_db(Rate r) const {
    return r == Rate::kR1Mbps ? sinr_min_db_r1 : sinr_min_db_r11;
  }
  [[nodiscard]] double sensitivity_dbm(Rate r) const {
    return r == Rate::kR1Mbps ? sensitivity_dbm_r1 : sensitivity_dbm_r11;
  }
};

[[nodiscard]] inline double dbm_to_mw(double dbm) {
  // 10^(dbm/10)
  return __builtin_exp2(dbm * 0.33219280948873623);  // log2(10)/10
}

[[nodiscard]] inline double mw_to_dbm(double mw);

/// Network-layer packet overheads used by capacity formulas.
struct NetOverheads {
  int ip_bytes = 20;
  int udp_bytes = 8;
  int tcp_bytes = 20;
};

}  // namespace meshopt

#include <cmath>

namespace meshopt {
inline double mw_to_dbm(double mw) {
  return 10.0 * std::log10(mw > 1e-300 ? mw : 1e-300);
}
}  // namespace meshopt
