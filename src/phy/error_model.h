#pragma once
// Channel-error models: the probability that a frame which suffered no
// collision is still lost to channel noise/fading. The paper calls these
// "channel losses" (p_ch) and its estimator's whole job is to recover them
// from mixed loss observations.

#include <unordered_map>

#include "phy/frame.h"
#include "phy/radio.h"

namespace meshopt {

/// Interface: per-frame channel loss probability for a directed node pair.
class ErrorModel {
 public:
  virtual ~ErrorModel() = default;
  [[nodiscard]] virtual double per(NodeId src, NodeId dst, Rate rate,
                                   FrameType type) const = 0;
};

/// Zero-loss channel.
class PerfectChannelModel final : public ErrorModel {
 public:
  [[nodiscard]] double per(NodeId, NodeId, Rate, FrameType) const override {
    return 0.0;
  }
};

/// Explicit per-(src,dst,rate) loss table. DATA frames use the configured
/// rate entry; ACK frames (sent at the 1 Mb/s base rate) use the 1 Mb/s
/// entry, matching the paper's pDATA/pACK split.
class TableErrorModel final : public ErrorModel {
 public:
  void set(NodeId src, NodeId dst, Rate rate, double p) {
    table_[key(src, dst, rate)] = p;
  }

  [[nodiscard]] double per(NodeId src, NodeId dst, Rate rate,
                           FrameType type) const override {
    const Rate r = type == FrameType::kAck ? Rate::kR1Mbps : rate;
    const auto it = table_.find(key(src, dst, r));
    return it != table_.end() ? it->second : 0.0;
  }

 private:
  [[nodiscard]] static std::uint64_t key(NodeId s, NodeId d, Rate r) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(s)) << 34) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(d)) << 2) |
           static_cast<std::uint64_t>(r);
  }
  std::unordered_map<std::uint64_t, double> table_;
};

/// SNR-driven loss model: PER(snr) follows a logistic curve centred on a
/// per-rate midpoint. Used by the synthetic testbed so that link qualities
/// and their rate dependence arise from geometry instead of hand tuning.
class SnrErrorModel final : public ErrorModel {
 public:
  SnrErrorModel(const class Channel& channel, PhyParams phy);

  [[nodiscard]] double per(NodeId src, NodeId dst, Rate rate,
                           FrameType type) const override;

  /// Logistic PER curve given SNR in dB.
  [[nodiscard]] static double per_from_snr(double snr_db, Rate rate);

 private:
  const Channel& channel_;
  PhyParams phy_;
};

}  // namespace meshopt
