#pragma once
// Over-the-air frame representation shared by the channel and the MAC.

#include <cstdint>

#include "phy/radio.h"

namespace meshopt {

enum class FrameType : std::uint8_t { kData, kAck };

/// A frame in flight. `air_bytes` is the full over-the-air size (MAC header
/// included); `net_bytes` is the network-layer payload carried (0 for ACK).
struct Frame {
  std::uint64_t id = 0;      ///< unique per transmission attempt
  NodeId tx = -1;            ///< transmitting node
  NodeId dst = kBroadcast;   ///< link-level destination (kBroadcast allowed)
  FrameType type = FrameType::kData;
  Rate rate = Rate::kR1Mbps;
  int air_bytes = 0;
  int net_bytes = 0;
  std::uint64_t mac_seq = 0;     ///< sender MAC sequence (dedup + ACK match)
  std::uint64_t net_id = 0;      ///< upper-layer packet handle
};

}  // namespace meshopt
