#include "phy/error_model.h"

#include <cmath>

#include "phy/channel.h"

namespace meshopt {

SnrErrorModel::SnrErrorModel(const Channel& channel, PhyParams phy)
    : channel_(channel), phy_(phy) {}

double SnrErrorModel::per_from_snr(double snr_db, Rate rate) {
  // Logistic PER curve. Midpoints sit a little above the decode threshold:
  // links right at sensitivity lose roughly half their frames, links with
  // ~8 dB of headroom are effectively clean — the mix of link margins in
  // the synthetic testbed then produces the spread of channel-loss rates
  // the paper observes.
  const double mid = rate == Rate::kR1Mbps ? 7.0 : 13.0;
  const double width = 1.6;
  const double z = (snr_db - mid) / width;
  return 1.0 / (1.0 + std::exp(z));
}

double SnrErrorModel::per(NodeId src, NodeId dst, Rate rate,
                          FrameType type) const {
  const Rate r = type == FrameType::kAck ? Rate::kR1Mbps : rate;
  const double snr = channel_.rss_dbm(src, dst) - phy_.noise_floor_dbm;
  return per_from_snr(snr, r);
}

}  // namespace meshopt
