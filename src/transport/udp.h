#pragma once
// UDP traffic generation (the iperf stand-in).
//
// Three source modes:
//   * kBacklogged — keeps the local MAC queue fed; measures maxUDP
//     throughput when run alone (the paper's primary extreme points),
//   * kCbr — constant bit rate at the network layer (the "input rates x"
//     applied during feasibility-region probing),
//   * kPoisson — exponential inter-packet gaps at a mean rate.
//
// Rates are UDP-payload bits per second. Delivery accounting lives in the
// Network's FlowRecord; a sink object is not required.

#include <cstdint>

#include "net/network.h"
#include "util/rng.h"

namespace meshopt {

enum class UdpMode : std::uint8_t { kBacklogged, kCbr, kPoisson };

class UdpSource {
 public:
  /// `payload_bytes` is the UDP payload per packet (the paper uses iperf
  /// defaults; we default to 1470 B).
  UdpSource(Network& net, int flow_id, UdpMode mode, double rate_bps,
            RngStream rng, int outstanding_target = 3);
  ~UdpSource();

  UdpSource(const UdpSource&) = delete;
  UdpSource& operator=(const UdpSource&) = delete;

  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  /// Adjust the CBR/Poisson rate while running.
  void set_rate_bps(double rate_bps);
  [[nodiscard]] double rate_bps() const { return rate_bps_; }

  [[nodiscard]] int flow_id() const { return flow_; }

 private:
  void emit_packet();
  void schedule_next();
  void top_up();
  [[nodiscard]] Packet make_packet();

  Network& net_;
  int flow_;
  UdpMode mode_;
  double rate_bps_;
  RngStream rng_;
  int outstanding_target_;
  int outstanding_ = 0;
  bool running_ = false;
  EventId next_ev_ = kNoEvent;
  std::uint64_t seq_ = 0;
};

/// Convenience: measured UDP payload throughput of a flow over a window.
[[nodiscard]] double measured_throughput_bps(const FlowRecord& f,
                                             double window_s);

}  // namespace meshopt
