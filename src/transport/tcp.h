#pragma once
// Simplified TCP Reno over the mesh network layer.
//
// Enough machinery to reproduce the transport-layer phenomena the paper's
// Section 6 evaluates: slow start, congestion avoidance, triple-duplicate
// fast retransmit, RTO with backoff, cumulative per-packet ACKs riding the
// reverse path through the same MAC (so data/ACK collisions — the
// starvation mechanism of [33] — happen naturally), plus an optional
// token-bucket rate limit emulating the controller's shaper.

#include <cstdint>
#include <map>
#include <set>

#include "net/network.h"
#include "util/rng.h"

namespace meshopt {

struct TcpParams {
  int segment_bytes = 1460;    ///< payload per segment
  int header_bytes = 40;       ///< IP+TCP headers
  int ack_bytes = 40;          ///< pure ACK size on the wire
  double cwnd_max = 64.0;      ///< receiver window (segments)
  double initial_ssthresh = 32.0;
  double rto_min_s = 0.2;
  double rto_initial_s = 1.0;
  double rto_max_s = 10.0;
};

class TcpFlow {
 public:
  /// Creates the data (src->dst) and ack (dst->src) flow records. Routes
  /// must already exist in both directions.
  TcpFlow(Network& net, NodeId src, NodeId dst, TcpParams params,
          RngStream rng);
  ~TcpFlow();

  TcpFlow(const TcpFlow&) = delete;
  TcpFlow& operator=(const TcpFlow&) = delete;

  void start();
  void stop();

  /// Shaper emulation: cap the sending rate (payload bits/s); <=0 removes
  /// the cap.
  void set_rate_limit_bps(double bps);
  [[nodiscard]] double rate_limit_bps() const { return rate_limit_bps_; }

  /// In-order bytes delivered to the receiver application.
  [[nodiscard]] std::uint64_t goodput_bytes() const { return goodput_bytes_; }
  /// Reset the goodput counter (for measurement windows).
  void reset_goodput() { goodput_bytes_ = 0; }
  [[nodiscard]] double goodput_bps(double window_s) const {
    return window_s > 0 ? 8.0 * static_cast<double>(goodput_bytes_) / window_s
                        : 0.0;
  }

  [[nodiscard]] int data_flow_id() const { return data_flow_; }
  [[nodiscard]] int ack_flow_id() const { return ack_flow_; }
  [[nodiscard]] double cwnd() const { return cwnd_; }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  [[nodiscard]] std::uint64_t fast_retransmits() const {
    return fast_retransmits_;
  }

 private:
  // Sender.
  void try_send();
  void send_segment(std::uint64_t seq, bool retransmit);
  void on_ack(const Packet& p);
  void arm_rto();
  void on_rto();
  bool consume_tokens(int bytes);
  void refill_tokens();

  // Receiver.
  void on_data(const Packet& p);
  void send_ack();

  Network& net_;
  NodeId src_;
  NodeId dst_;
  TcpParams p_;
  RngStream rng_;
  int data_flow_ = -1;
  int ack_flow_ = -1;
  std::uint64_t data_handler_ = 0;
  std::uint64_t ack_handler_ = 0;
  bool running_ = false;

  // Sender state (sequence numbers count segments).
  std::uint64_t snd_nxt_ = 0;  ///< next new sequence to send
  std::uint64_t snd_una_ = 0;  ///< lowest unacked sequence
  double cwnd_ = 1.0;
  double ssthresh_ = 32.0;
  int dupacks_ = 0;
  double srtt_s_ = 0.0;
  double rttvar_s_ = 0.0;
  double rto_s_ = 1.0;
  EventId rto_ev_ = kNoEvent;
  std::map<std::uint64_t, std::pair<TimeNs, bool>> sent_;  ///< seq -> (t, retx)
  std::uint64_t timeouts_ = 0;
  std::uint64_t fast_retransmits_ = 0;

  // Shaper.
  double rate_limit_bps_ = 0.0;
  double tokens_bytes_ = 0.0;
  TimeNs last_refill_ = 0;
  EventId paced_send_ev_ = kNoEvent;

  // Receiver state.
  std::uint64_t rcv_nxt_ = 0;
  std::set<std::uint64_t> out_of_order_;
  std::uint64_t ack_seq_ = 0;
  std::uint64_t goodput_bytes_ = 0;
};

}  // namespace meshopt
