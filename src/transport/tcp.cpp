#include "transport/tcp.h"

#include <algorithm>

namespace meshopt {

TcpFlow::TcpFlow(Network& net, NodeId src, NodeId dst, TcpParams params,
                 RngStream rng)
    : net_(net), src_(src), dst_(dst), p_(params), rng_(rng) {
  data_flow_ = net_.open_flow(src_, dst_, Protocol::kTcpData, p_.segment_bytes);
  ack_flow_ = net_.open_flow(dst_, src_, Protocol::kTcpAck, 0);
  ssthresh_ = p_.initial_ssthresh;
  rto_s_ = p_.rto_initial_s;

  data_handler_ = net_.node(dst_).add_handler(
      Protocol::kTcpData, [this](const Packet& pk, NodeId) {
        if (pk.flow == data_flow_) on_data(pk);
      });
  ack_handler_ = net_.node(src_).add_handler(
      Protocol::kTcpAck, [this](const Packet& pk, NodeId) {
        if (pk.flow == ack_flow_) on_ack(pk);
      });
}

TcpFlow::~TcpFlow() {
  stop();
  net_.node(dst_).remove_handler(Protocol::kTcpData, data_handler_);
  net_.node(src_).remove_handler(Protocol::kTcpAck, ack_handler_);
}

void TcpFlow::start() {
  if (running_) return;
  running_ = true;
  last_refill_ = net_.sim().now();
  tokens_bytes_ = static_cast<double>(4 * p_.segment_bytes);
  try_send();
}

void TcpFlow::stop() {
  if (!running_) return;
  running_ = false;
  net_.sim().cancel(rto_ev_);
  rto_ev_ = kNoEvent;
  net_.sim().cancel(paced_send_ev_);
  paced_send_ev_ = kNoEvent;
}

void TcpFlow::set_rate_limit_bps(double bps) {
  refill_tokens();
  rate_limit_bps_ = bps;
  if (running_) try_send();
}

void TcpFlow::refill_tokens() {
  const TimeNs now = net_.sim().now();
  if (rate_limit_bps_ > 0.0) {
    const double elapsed = to_seconds(now - last_refill_);
    const double cap = static_cast<double>(8 * p_.segment_bytes);
    tokens_bytes_ = std::min(cap, tokens_bytes_ +
                                      elapsed * rate_limit_bps_ / 8.0);
  }
  last_refill_ = now;
}

bool TcpFlow::consume_tokens(int bytes) {
  if (rate_limit_bps_ <= 0.0) return true;
  refill_tokens();
  if (tokens_bytes_ >= static_cast<double>(bytes)) {
    tokens_bytes_ -= static_cast<double>(bytes);
    return true;
  }
  if (paced_send_ev_ == kNoEvent) {
    const double deficit = static_cast<double>(bytes) - tokens_bytes_;
    const double wait_s = deficit * 8.0 / rate_limit_bps_;
    paced_send_ev_ = net_.sim().schedule(seconds(wait_s) + 1, [this] {
      paced_send_ev_ = kNoEvent;
      try_send();
    });
  }
  return false;
}

void TcpFlow::try_send() {
  if (!running_) return;
  const auto window = static_cast<std::uint64_t>(
      std::min(cwnd_, p_.cwnd_max));
  while (snd_nxt_ < snd_una_ + window) {
    if (!consume_tokens(p_.segment_bytes)) return;  // paced resume scheduled
    send_segment(snd_nxt_, false);
    ++snd_nxt_;
  }
}

void TcpFlow::send_segment(std::uint64_t seq, bool retransmit) {
  Packet pk;
  pk.src = src_;
  pk.dst = dst_;
  pk.flow = data_flow_;
  pk.proto = Protocol::kTcpData;
  pk.bytes = p_.segment_bytes + p_.header_bytes;
  pk.seq = seq;
  pk.created = net_.sim().now();
  net_.node(src_).send(pk);
  ++net_.flow(data_flow_).sent_packets;
  auto& rec = sent_[seq];
  rec.first = net_.sim().now();
  rec.second = rec.second || retransmit;
  if (rto_ev_ == kNoEvent) arm_rto();
}

void TcpFlow::arm_rto() {
  net_.sim().cancel(rto_ev_);
  rto_ev_ = net_.sim().schedule(seconds(rto_s_), [this] {
    rto_ev_ = kNoEvent;
    on_rto();
  });
}

void TcpFlow::on_rto() {
  if (!running_) return;
  if (snd_una_ >= snd_nxt_) return;  // nothing outstanding
  ++timeouts_;
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = 1.0;
  dupacks_ = 0;
  rto_s_ = std::min(rto_s_ * 2.0, p_.rto_max_s);
  send_segment(snd_una_, true);
  arm_rto();
}

void TcpFlow::on_ack(const Packet& pk) {
  if (!running_) return;
  const std::uint64_t ack = pk.tcp_ack;  // next expected segment
  if (ack > snd_una_) {
    // New data acknowledged.
    const auto it = sent_.find(ack - 1);
    if (it != sent_.end() && !it->second.second) {
      // RTT sample (Karn: never from retransmitted segments).
      const double sample = to_seconds(net_.sim().now() - it->second.first);
      if (srtt_s_ == 0.0) {
        srtt_s_ = sample;
        rttvar_s_ = sample / 2.0;
      } else {
        rttvar_s_ = 0.75 * rttvar_s_ + 0.25 * std::abs(srtt_s_ - sample);
        srtt_s_ = 0.875 * srtt_s_ + 0.125 * sample;
      }
      rto_s_ = std::clamp(srtt_s_ + 4.0 * rttvar_s_, p_.rto_min_s,
                          p_.rto_max_s);
    }
    const double newly = static_cast<double>(ack - snd_una_);
    // Drop bookkeeping below the new una.
    sent_.erase(sent_.begin(), sent_.lower_bound(ack));
    snd_una_ = ack;
    dupacks_ = 0;
    if (cwnd_ < ssthresh_) {
      cwnd_ = std::min(cwnd_ + newly, p_.cwnd_max);  // slow start
    } else {
      cwnd_ = std::min(cwnd_ + newly / cwnd_, p_.cwnd_max);
    }
    if (snd_una_ >= snd_nxt_) {
      net_.sim().cancel(rto_ev_);
      rto_ev_ = kNoEvent;
    } else {
      arm_rto();
    }
    try_send();
  } else if (ack == snd_una_ && snd_nxt_ > snd_una_) {
    ++dupacks_;
    if (dupacks_ == 3) {
      // Fast retransmit (simplified Reno: no inflation).
      ++fast_retransmits_;
      ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
      cwnd_ = ssthresh_;
      send_segment(snd_una_, true);
    }
  }
}

void TcpFlow::on_data(const Packet& pk) {
  if (pk.seq == rcv_nxt_) {
    ++rcv_nxt_;
    goodput_bytes_ += static_cast<std::uint64_t>(p_.segment_bytes);
    // Drain contiguous out-of-order segments.
    while (!out_of_order_.empty() && *out_of_order_.begin() == rcv_nxt_) {
      out_of_order_.erase(out_of_order_.begin());
      ++rcv_nxt_;
      goodput_bytes_ += static_cast<std::uint64_t>(p_.segment_bytes);
    }
  } else if (pk.seq > rcv_nxt_) {
    out_of_order_.insert(pk.seq);
  }
  send_ack();
}

void TcpFlow::send_ack() {
  Packet pk;
  pk.src = dst_;
  pk.dst = src_;
  pk.flow = ack_flow_;
  pk.proto = Protocol::kTcpAck;
  pk.bytes = p_.ack_bytes;
  pk.seq = ack_seq_++;
  pk.tcp_ack = rcv_nxt_;
  pk.created = net_.sim().now();
  net_.node(dst_).send(pk);
  ++net_.flow(ack_flow_).sent_packets;
}

}  // namespace meshopt
