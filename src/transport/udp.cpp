#include "transport/udp.h"

namespace meshopt {

namespace {
constexpr NetOverheads kOverheads{};
}

UdpSource::UdpSource(Network& net, int flow_id, UdpMode mode, double rate_bps,
                     RngStream rng, int outstanding_target)
    : net_(net),
      flow_(flow_id),
      mode_(mode),
      rate_bps_(rate_bps),
      rng_(rng),
      outstanding_target_(outstanding_target) {}

UdpSource::~UdpSource() { stop(); }

Packet UdpSource::make_packet() {
  const FlowRecord& f = net_.flow(flow_);
  Packet p;
  p.src = f.src;
  p.dst = f.dst;
  p.flow = flow_;
  p.proto = Protocol::kUdp;
  p.bytes = f.payload_bytes + kOverheads.ip_bytes + kOverheads.udp_bytes;
  p.seq = seq_++;
  p.created = net_.sim().now();
  return p;
}

void UdpSource::start() {
  if (running_) return;
  running_ = true;
  if (mode_ == UdpMode::kBacklogged) {
    // Packets in flight from a previous run completed with the hook
    // removed; restart from a clean slate.
    outstanding_ = 0;
    const FlowRecord& f = net_.flow(flow_);
    net_.node(f.src).set_flow_tx_hook(flow_, [this](bool) {
      --outstanding_;
      top_up();
    });
    top_up();
  } else {
    // Random initial phase so that simultaneous CBR flows do not align.
    const double interval_s = 8.0 *
                              static_cast<double>(net_.flow(flow_).payload_bytes) /
                              (rate_bps_ > 0 ? rate_bps_ : 1.0);
    next_ev_ = net_.sim().schedule(seconds(rng_.uniform() * interval_s),
                                   [this] { emit_packet(); });
  }
}

void UdpSource::stop() {
  if (!running_) return;
  running_ = false;
  if (next_ev_ != kNoEvent) {
    net_.sim().cancel(next_ev_);
    next_ev_ = kNoEvent;
  }
  if (mode_ == UdpMode::kBacklogged) {
    net_.node(net_.flow(flow_).src).clear_flow_tx_hook(flow_);
  }
}

void UdpSource::set_rate_bps(double rate_bps) { rate_bps_ = rate_bps; }

void UdpSource::top_up() {
  if (!running_ || mode_ != UdpMode::kBacklogged) return;
  FlowRecord& f = net_.flow(flow_);
  while (outstanding_ < outstanding_target_) {
    if (!net_.node(f.src).send(make_packet())) break;
    ++outstanding_;
    ++f.sent_packets;
  }
}

void UdpSource::emit_packet() {
  next_ev_ = kNoEvent;
  if (!running_) return;
  FlowRecord& f = net_.flow(flow_);
  if (net_.node(f.src).send(make_packet())) ++f.sent_packets;
  schedule_next();
}

void UdpSource::schedule_next() {
  if (!running_ || rate_bps_ <= 0.0) return;
  const double bits =
      8.0 * static_cast<double>(net_.flow(flow_).payload_bytes);
  double gap_s = bits / rate_bps_;
  if (mode_ == UdpMode::kPoisson) gap_s = rng_.exponential(gap_s);
  next_ev_ = net_.sim().schedule(seconds(gap_s), [this] { emit_packet(); });
}

double measured_throughput_bps(const FlowRecord& f, double window_s) {
  return f.throughput_bps(window_s);
}

}  // namespace meshopt
