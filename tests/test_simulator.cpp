#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace meshopt {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(millis(30), [&] { order.push_back(3); });
  sim.schedule(millis(10), [&] { order.push_back(1); });
  sim.schedule(millis(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), millis(30));
}

TEST(Simulator, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(millis(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[std::size_t(i)], i);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule(millis(1), [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelIsIdempotent) {
  Simulator sim;
  const EventId id = sim.schedule(millis(1), [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(kNoEvent));
  sim.run();
}

TEST(Simulator, CancelAfterFireIsNoop) {
  Simulator sim;
  const EventId id = sim.schedule(millis(1), [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int count = 0;
  sim.schedule(millis(10), [&] { ++count; });
  sim.schedule(millis(30), [&] { ++count; });
  sim.run_until(millis(20));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now(), millis(20));
  sim.run_until(millis(40));
  EXPECT_EQ(count, 2);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.schedule(micros(1), chain);
  };
  sim.schedule(0, chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), micros(99));
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.schedule(millis(5), [&] {
    bool ran = false;
    sim.schedule(-millis(1), [&] { ran = true; });
    sim.run_until(sim.now());
    EXPECT_TRUE(ran);
  });
  sim.run();
}

TEST(Simulator, StopHaltsProcessing) {
  Simulator sim;
  int count = 0;
  sim.schedule(millis(1), [&] {
    ++count;
    sim.stop();
  });
  sim.schedule(millis(2), [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 1);
}

TEST(Simulator, ManyEventsStressOrdering) {
  Simulator sim;
  RngStream rng(42, "stress");
  TimeNs last = -1;
  bool monotonic = true;
  for (int i = 0; i < 5000; ++i) {
    sim.schedule(micros(rng.uniform_int(0, 100000)), [&] {
      if (sim.now() < last) monotonic = false;
      last = sim.now();
    });
  }
  sim.run();
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(sim.executed_events(), 5000u);
}

TEST(TimeConversions, RoundTrip) {
  EXPECT_EQ(seconds(1.0), kNanosPerSec);
  EXPECT_EQ(millis(1.0), kNanosPerMilli);
  EXPECT_EQ(micros(1.0), kNanosPerMicro);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2.5)), 2.5);
}

}  // namespace
}  // namespace meshopt
