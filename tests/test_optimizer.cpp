#include "opt/network_optimizer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/stats.h"

namespace meshopt {
namespace {

/// One shared link of capacity 1, two single-hop flows across it.
OptimizerInput shared_link_two_flows() {
  OptimizerInput in;
  in.routing = {{1.0, 1.0}};       // L=1, S=2
  in.extreme_points = {{1.0}};     // K=1
  return in;
}

TEST(Optimizer, MaxThroughputSaturatesSharedLink) {
  const auto r = optimize_rates(shared_link_two_flows(),
                                {.objective = Objective::kMaxThroughput});
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.y[0] + r.y[1], 1.0, 1e-6);
}

TEST(Optimizer, ProportionalFairSplitsSharedLinkEqually) {
  const auto r = optimize_rates(shared_link_two_flows(),
                                {.objective = Objective::kProportionalFair});
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.y[0], 0.5, 0.02);
  EXPECT_NEAR(r.y[1], 0.5, 0.02);
}

TEST(Optimizer, MaxMinSplitsSharedLinkEqually) {
  const auto r = optimize_rates(shared_link_two_flows(),
                                {.objective = Objective::kMaxMin});
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.y[0], 0.5, 1e-6);
  EXPECT_NEAR(r.y[1], 0.5, 1e-6);
}

/// The classic parking-lot: flow 0 crosses both links, flows 1 and 2 each
/// cross one. Links time-share (one extreme point per link).
OptimizerInput parking_lot() {
  OptimizerInput in;
  in.routing = {
      {1.0, 1.0, 0.0},  // link 0 carries flows 0 and 1
      {1.0, 0.0, 1.0},  // link 1 carries flows 0 and 2
  };
  in.extreme_points = {{1.0, 0.0}, {0.0, 1.0}};  // mutually exclusive links
  return in;
}

TEST(Optimizer, MaxThroughputStarvesLongFlow) {
  const auto r = optimize_rates(parking_lot(),
                                {.objective = Objective::kMaxThroughput});
  ASSERT_TRUE(r.ok);
  // Giving everything to the one-hop flows yields 1.0 total; any rate on
  // the two-hop flow costs double capacity.
  EXPECT_NEAR(r.y[0], 0.0, 1e-6);
  EXPECT_NEAR(r.y[1] + r.y[2], 1.0, 1e-6);
}

TEST(Optimizer, ProportionalFairKeepsLongFlowAlive) {
  const auto r = optimize_rates(parking_lot(),
                                {.objective = Objective::kProportionalFair});
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.y[0], 0.1);
  // Known proportional-fair solution of the shared time-sharing resource:
  // the long flow gets ~1/3 of each link's share, short flows the rest.
  // Check optimality against the closed-form KKT point y0 = 1/3 (one-hop
  // flows equal). With links time sharing: y0 appears on both links.
  EXPECT_NEAR(r.y[1], r.y[2], 0.05);
  const double obj = std::log(r.y[0]) + std::log(r.y[1]) + std::log(r.y[2]);
  // Closed form: maximize log y0 + 2 log y1 s.t. 2*y0 + 2*y1 <= 1
  // (each link load y0+y1 = alpha_l budget, symmetric alpha=1/2):
  // y0 = 1/6? Evaluate numerically instead: compare against a fine scan.
  double best = -1e9;
  for (double a = 0.05; a <= 0.95; a += 0.001) {  // alpha on link 0
    // loads: link0 budget a, link1 budget 1-a.
    for (double y0 = 0.001; y0 <= 0.5; y0 += 0.002) {
      const double y1 = a - y0;
      const double y2 = (1.0 - a) - y0;
      if (y1 <= 0.0 || y2 <= 0.0) continue;
      best = std::max(best, std::log(y0) + std::log(y1) + std::log(y2));
    }
  }
  EXPECT_GT(obj, best - 0.05);
}

TEST(Optimizer, MaxMinParkingLotEqualizes) {
  const auto r =
      optimize_rates(parking_lot(), {.objective = Objective::kMaxMin});
  ASSERT_TRUE(r.ok);
  // All flows equal: y0 = y1 = y2 = t with loads 2t per "virtual" budget
  // split across the two exclusive links: t + t <= alpha_l per link and
  // alpha0 + alpha1 = 1 -> 2t = 1/2 -> t = 1/4.
  EXPECT_NEAR(r.y[0], 0.25, 1e-4);
  EXPECT_NEAR(r.y[1], 0.25, 1e-4);
  EXPECT_NEAR(r.y[2], 0.25, 1e-4);
}

TEST(Optimizer, AlphaFairInterpolatesBetweenObjectives) {
  // As alpha grows, the long flow's share must not shrink.
  double prev = -1.0;
  for (double alpha : {0.5, 1.0, 2.0, 4.0}) {
    const auto r = optimize_rates(
        parking_lot(),
        {.objective = Objective::kAlphaFair, .alpha = alpha});
    ASSERT_TRUE(r.ok) << alpha;
    EXPECT_GT(r.y[0], prev - 0.02) << alpha;
    prev = r.y[0];
  }
}

TEST(Optimizer, AlphaFairFairnessIndexIncreasesWithAlpha) {
  const auto jfi_at = [](double alpha) {
    const auto r = optimize_rates(
        parking_lot(), {.objective = Objective::kAlphaFair, .alpha = alpha});
    return jain_fairness_index(r.y);
  };
  EXPECT_GT(jfi_at(2.0), jfi_at(0.5) - 0.02);
  EXPECT_GT(jfi_at(4.0), 0.9);  // approaching max-min equality
}

TEST(Optimizer, RespectsFeasibilityRegion) {
  // Whatever the objective, the resulting link loads must be feasible.
  for (Objective obj : {Objective::kMaxThroughput, Objective::kMaxMin,
                        Objective::kProportionalFair}) {
    const OptimizerInput in = parking_lot();
    const auto r = optimize_rates(in, {.objective = obj});
    ASSERT_TRUE(r.ok);
    for (int l = 0; l < in.routing.rows(); ++l) {
      double load = 0.0;
      for (std::size_t f = 0; f < r.y.size(); ++f)
        load += in.routing(l, static_cast<int>(f)) * r.y[f];
      double budget = 0.0;
      for (int k = 0; k < in.extreme_points.rows(); ++k)
        budget += r.alpha_weights[static_cast<std::size_t>(k)] *
                  in.extreme_points(k, l);
      EXPECT_LE(load, budget + 1e-5);
    }
    double wsum = 0.0;
    for (double w : r.alpha_weights) {
      EXPECT_GE(w, -1e-9);
      wsum += w;
    }
    EXPECT_NEAR(wsum, 1.0, 1e-6);
  }
}

TEST(Optimizer, AsymmetricCapacitiesPropFair) {
  // One link of capacity 4 shared by two flows plus a private link of
  // capacity 1 for flow 1.
  OptimizerInput in;
  in.routing = {
      {1.0, 1.0},  // shared link
      {0.0, 1.0},  // flow 1 also crosses a weak private link
  };
  in.extreme_points = {{4.0, 1.0}};  // links do not interfere
  const auto r =
      optimize_rates(in, {.objective = Objective::kProportionalFair});
  ASSERT_TRUE(r.ok);
  // Flow 1 is capped at 1 by its private link; flow 0 takes the rest.
  EXPECT_NEAR(r.y[1], 1.0, 0.03);
  EXPECT_NEAR(r.y[0], 3.0, 0.05);
}

TEST(Optimizer, EmptyInputsRejected) {
  OptimizerInput in;
  const auto r = optimize_rates(in, {});
  EXPECT_FALSE(r.ok);
}

TEST(Optimizer, RaggedRoutingThrows) {
  // Ragged rows can no longer reach the optimizer: the DenseMatrix
  // builder rejects them at construction.
  EXPECT_THROW((DenseMatrix{{1.0, 1.0}, {1.0}}), std::invalid_argument);
}

TEST(Optimizer, ExtremePointLinkMismatchThrows) {
  OptimizerInput in;
  in.routing = {{1.0, 1.0}};          // 1 link
  in.extreme_points = {{1.0, 1.0}};   // but 2-link extreme points
  EXPECT_THROW(optimize_rates(in, {}), std::invalid_argument);
}

TEST(Optimizer, SingleExtremePointSingleFlow) {
  // Degenerate-but-valid smallest problem: K = 1, S = 1, L = 1.
  OptimizerInput in;
  in.routing = {{1.0}};
  in.extreme_points = {{2.0}};
  for (Objective obj : {Objective::kMaxThroughput, Objective::kMaxMin,
                        Objective::kProportionalFair}) {
    const auto r = optimize_rates(in, {.objective = obj});
    ASSERT_TRUE(r.ok);
    ASSERT_EQ(r.y.size(), 1u);
    EXPECT_NEAR(r.y[0], 2.0, 1e-3);
    ASSERT_EQ(r.alpha_weights.size(), 1u);
    EXPECT_NEAR(r.alpha_weights[0], 1.0, 1e-6);
  }
}

TEST(Optimizer, NoExtremePointsReturnsNotOk) {
  OptimizerInput in;
  in.routing = {{1.0, 1.0}};
  // extreme_points left empty: K = 0 is degenerate, not an error.
  const auto r = optimize_rates(in, {});
  EXPECT_FALSE(r.ok);
}

TEST(Optimizer, ReusedInstanceMatchesFreshSolves) {
  // A NetworkOptimizer reused across rounds (the controller pattern) must
  // return exactly what one-shot solves return, shape changes included.
  NetworkOptimizer reused({.objective = Objective::kMaxThroughput});
  const std::vector<OptimizerInput> inputs = {
      shared_link_two_flows(), parking_lot(), shared_link_two_flows()};
  for (const OptimizerInput& in : inputs) {
    const auto a = reused.solve(in);
    const auto b =
        optimize_rates(in, {.objective = Objective::kMaxThroughput});
    ASSERT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.y, b.y);
    EXPECT_EQ(a.alpha_weights, b.alpha_weights);
    EXPECT_EQ(a.objective_value, b.objective_value);
  }
}

TEST(Optimizer, TcpAckFactorMatchesPaperFormula) {
  // (1 - (A+H)/(A+H+D)) with A=40, H=40, D=1460.
  EXPECT_NEAR(tcp_ack_airtime_factor(1460, 40, 40), 1460.0 / 1540.0, 1e-12);
  EXPECT_GT(tcp_ack_airtime_factor(), 0.9);
  EXPECT_LT(tcp_ack_airtime_factor(), 1.0);
}

TEST(Optimizer, BitsPerSecondScaleRobustness) {
  // Same problem expressed in bits/s (1e6 scale): results scale linearly.
  OptimizerInput in = parking_lot();
  for (int k = 0; k < in.extreme_points.rows(); ++k)
    for (int l = 0; l < in.extreme_points.cols(); ++l)
      in.extreme_points(k, l) *= 1e6;
  const auto r =
      optimize_rates(in, {.objective = Objective::kProportionalFair});
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.y[1], r.y[2], 0.05e6);
  EXPECT_GT(r.y[0], 1e5);
}

}  // namespace
}  // namespace meshopt
