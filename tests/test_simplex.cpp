#include "opt/simplex.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace meshopt {
namespace {

TEST(Simplex, SimpleTwoVariableMax) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj=12.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {3, 2};
  lp.add_constraint({1, 1}, Relation::kLe, 4);
  lp.add_constraint({1, 3}, Relation::kLe, 6);
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 12.0, 1e-7);
  EXPECT_NEAR(sol.x[0], 4.0, 1e-7);
  EXPECT_NEAR(sol.x[1], 0.0, 1e-7);
}

TEST(Simplex, ClassicProductMix) {
  // max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6 -> x=3, y=1.5, obj=21.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {5, 4};
  lp.add_constraint({6, 4}, Relation::kLe, 24);
  lp.add_constraint({1, 2}, Relation::kLe, 6);
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 21.0, 1e-7);
  EXPECT_NEAR(sol.x[0], 3.0, 1e-7);
  EXPECT_NEAR(sol.x[1], 1.5, 1e-7);
}

TEST(Simplex, EqualityConstraint) {
  // max x + y s.t. x + y = 5, x <= 3 -> obj = 5.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1, 1};
  lp.add_constraint({1, 1}, Relation::kEq, 5);
  lp.add_constraint({1, 0}, Relation::kLe, 3);
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 5.0, 1e-7);
  EXPECT_NEAR(sol.x[0] + sol.x[1], 5.0, 1e-7);
}

TEST(Simplex, GreaterEqualConstraints) {
  // min x + 2y s.t. x + y >= 3, y >= 1  (as max of negative).
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {-1, -2};
  lp.add_constraint({1, 1}, Relation::kGe, 3);
  lp.add_constraint({0, 1}, Relation::kGe, 1);
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  // Optimum: y=1, x=2, cost 4.
  EXPECT_NEAR(sol.objective, -4.0, 1e-7);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-7);
  EXPECT_NEAR(sol.x[1], 1.0, 1e-7);
}

TEST(Simplex, DetectsInfeasible) {
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {1};
  lp.add_constraint({1}, Relation::kLe, 1);
  lp.add_constraint({1}, Relation::kGe, 2);
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1, 0};
  lp.add_constraint({0, 1}, Relation::kLe, 1);
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // x - y <= -1 with x,y >= 0: y >= x + 1. max x + y bounded by y <= 5.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1, 1};
  lp.add_constraint({1, -1}, Relation::kLe, -1);
  lp.add_constraint({0, 1}, Relation::kLe, 5);
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 9.0, 1e-7);  // x=4, y=5
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1, 1};
  lp.add_constraint({1, 0}, Relation::kLe, 1);
  lp.add_constraint({0, 1}, Relation::kLe, 1);
  lp.add_constraint({1, 1}, Relation::kLe, 2);
  lp.add_constraint({2, 2}, Relation::kLe, 4);
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-7);
}

TEST(Simplex, RedundantEqualityRows) {
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1, 0};
  lp.add_constraint({1, 1}, Relation::kEq, 2);
  lp.add_constraint({2, 2}, Relation::kEq, 4);  // same plane
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-7);
}

TEST(Simplex, ZeroVariableProblem) {
  LpProblem lp;
  lp.num_vars = 0;
  const auto sol = solve_lp(lp);
  EXPECT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_EQ(sol.objective, 0.0);
}

TEST(Simplex, SimplexConstraintProjection) {
  // max c.x over the probability simplex picks the best coordinate.
  LpProblem lp;
  lp.num_vars = 4;
  lp.objective = {0.3, 0.9, 0.1, 0.5};
  lp.add_constraint({1, 1, 1, 1}, Relation::kEq, 1);
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 0.9, 1e-9);
  EXPECT_NEAR(sol.x[1], 1.0, 1e-9);
}

// Property test: random bounded LPs in 2-3 vars; verify the simplex
// solution against a fine grid search of the feasible region.
class RandomLp : public ::testing::TestWithParam<int> {};

TEST_P(RandomLp, MatchesGridSearch) {
  RngStream rng(static_cast<std::uint64_t>(GetParam()), "lp");
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {rng.uniform(0.1, 2.0), rng.uniform(0.1, 2.0)};
  // Box plus two random cutting planes (always feasible at origin).
  lp.add_constraint({1, 0}, Relation::kLe, 10);
  lp.add_constraint({0, 1}, Relation::kLe, 10);
  lp.add_constraint({rng.uniform(0.1, 1.0), rng.uniform(0.1, 1.0)},
                    Relation::kLe, rng.uniform(2.0, 12.0));
  lp.add_constraint({rng.uniform(0.1, 1.0), rng.uniform(0.1, 1.0)},
                    Relation::kLe, rng.uniform(2.0, 12.0));
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);

  double best = 0.0;
  const int grid = 400;
  for (int i = 0; i <= grid; ++i) {
    for (int j = 0; j <= grid; ++j) {
      const double x = 10.0 * i / grid;
      const double y = 10.0 * j / grid;
      bool ok = true;
      for (const auto& c : lp.constraints) {
        if (c.coeffs[0] * x + c.coeffs[1] * y > c.rhs + 1e-9) ok = false;
      }
      if (ok) best = std::max(best, lp.objective[0] * x + lp.objective[1] * y);
    }
  }
  EXPECT_GE(sol.objective, best - 0.05);
  EXPECT_LE(sol.objective, best + 0.2);  // grid undershoots the optimum
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLp, ::testing::Range(1, 13));

}  // namespace
}  // namespace meshopt
