#include "opt/simplex.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "util/rng.h"

namespace meshopt {
namespace {

TEST(Simplex, SimpleTwoVariableMax) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> x=4, y=0, obj=12.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {3, 2};
  lp.add_constraint({1, 1}, Relation::kLe, 4);
  lp.add_constraint({1, 3}, Relation::kLe, 6);
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 12.0, 1e-7);
  EXPECT_NEAR(sol.x[0], 4.0, 1e-7);
  EXPECT_NEAR(sol.x[1], 0.0, 1e-7);
}

TEST(Simplex, ClassicProductMix) {
  // max 5x + 4y s.t. 6x + 4y <= 24, x + 2y <= 6 -> x=3, y=1.5, obj=21.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {5, 4};
  lp.add_constraint({6, 4}, Relation::kLe, 24);
  lp.add_constraint({1, 2}, Relation::kLe, 6);
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 21.0, 1e-7);
  EXPECT_NEAR(sol.x[0], 3.0, 1e-7);
  EXPECT_NEAR(sol.x[1], 1.5, 1e-7);
}

TEST(Simplex, EqualityConstraint) {
  // max x + y s.t. x + y = 5, x <= 3 -> obj = 5.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1, 1};
  lp.add_constraint({1, 1}, Relation::kEq, 5);
  lp.add_constraint({1, 0}, Relation::kLe, 3);
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 5.0, 1e-7);
  EXPECT_NEAR(sol.x[0] + sol.x[1], 5.0, 1e-7);
}

TEST(Simplex, GreaterEqualConstraints) {
  // min x + 2y s.t. x + y >= 3, y >= 1  (as max of negative).
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {-1, -2};
  lp.add_constraint({1, 1}, Relation::kGe, 3);
  lp.add_constraint({0, 1}, Relation::kGe, 1);
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  // Optimum: y=1, x=2, cost 4.
  EXPECT_NEAR(sol.objective, -4.0, 1e-7);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-7);
  EXPECT_NEAR(sol.x[1], 1.0, 1e-7);
}

TEST(Simplex, DetectsInfeasible) {
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {1};
  lp.add_constraint({1}, Relation::kLe, 1);
  lp.add_constraint({1}, Relation::kGe, 2);
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1, 0};
  lp.add_constraint({0, 1}, Relation::kLe, 1);
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // x - y <= -1 with x,y >= 0: y >= x + 1. max x + y bounded by y <= 5.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1, 1};
  lp.add_constraint({1, -1}, Relation::kLe, -1);
  lp.add_constraint({0, 1}, Relation::kLe, 5);
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 9.0, 1e-7);  // x=4, y=5
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1, 1};
  lp.add_constraint({1, 0}, Relation::kLe, 1);
  lp.add_constraint({0, 1}, Relation::kLe, 1);
  lp.add_constraint({1, 1}, Relation::kLe, 2);
  lp.add_constraint({2, 2}, Relation::kLe, 4);
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-7);
}

TEST(Simplex, RedundantEqualityRows) {
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1, 0};
  lp.add_constraint({1, 1}, Relation::kEq, 2);
  lp.add_constraint({2, 2}, Relation::kEq, 4);  // same plane
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-7);
}

TEST(Simplex, ZeroVariableProblem) {
  LpProblem lp;
  lp.num_vars = 0;
  const auto sol = solve_lp(lp);
  EXPECT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_EQ(sol.objective, 0.0);
}

TEST(Simplex, SimplexConstraintProjection) {
  // max c.x over the probability simplex picks the best coordinate.
  LpProblem lp;
  lp.num_vars = 4;
  lp.objective = {0.3, 0.9, 0.1, 0.5};
  lp.add_constraint({1, 1, 1, 1}, Relation::kEq, 1);
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 0.9, 1e-9);
  EXPECT_NEAR(sol.x[1], 1.0, 1e-9);
}

// Property test: random bounded LPs in 2-3 vars; verify the simplex
// solution against a fine grid search of the feasible region.
class RandomLp : public ::testing::TestWithParam<int> {};

TEST_P(RandomLp, MatchesGridSearch) {
  RngStream rng(static_cast<std::uint64_t>(GetParam()), "lp");
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {rng.uniform(0.1, 2.0), rng.uniform(0.1, 2.0)};
  // Box plus two random cutting planes (always feasible at origin).
  lp.add_constraint({1, 0}, Relation::kLe, 10);
  lp.add_constraint({0, 1}, Relation::kLe, 10);
  lp.add_constraint({rng.uniform(0.1, 1.0), rng.uniform(0.1, 1.0)},
                    Relation::kLe, rng.uniform(2.0, 12.0));
  lp.add_constraint({rng.uniform(0.1, 1.0), rng.uniform(0.1, 1.0)},
                    Relation::kLe, rng.uniform(2.0, 12.0));
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);

  double best = 0.0;
  const int grid = 400;
  for (int i = 0; i <= grid; ++i) {
    for (int j = 0; j <= grid; ++j) {
      const double x = 10.0 * i / grid;
      const double y = 10.0 * j / grid;
      bool ok = true;
      for (int ci = 0; ci < lp.num_constraints(); ++ci) {
        const double* c = lp.coeffs.row(ci);
        if (c[0] * x + c[1] * y > lp.rhs[static_cast<std::size_t>(ci)] + 1e-9)
          ok = false;
      }
      if (ok) best = std::max(best, lp.objective[0] * x + lp.objective[1] * y);
    }
  }
  EXPECT_GE(sol.objective, best - 0.05);
  EXPECT_LE(sol.objective, best + 0.2);  // grid undershoots the optimum
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLp, ::testing::Range(1, 13));

TEST(Simplex, BealeCyclingExampleTerminatesAtOptimum) {
  // Beale's classic degenerate LP: Dantzig pricing cycles forever without
  // an anti-cycling rule. The solver must fall back to Bland's rule and
  // land on the optimum 1/20.
  LpProblem lp;
  lp.num_vars = 4;
  lp.objective = {0.75, -150.0, 0.02, -6.0};
  lp.add_constraint({0.25, -60.0, -0.04, 9.0}, Relation::kLe, 0.0);
  lp.add_constraint({0.5, -90.0, -0.02, 3.0}, Relation::kLe, 0.0);
  lp.add_constraint({0.0, 0.0, 1.0, 0.0}, Relation::kLe, 1.0);
  const auto sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 0.05, 1e-9);
}

TEST(Simplex, SolverWorkspaceReuseMatchesFreshSolver) {
  // An LpSolver re-used across differently-shaped problems must return
  // exactly what a fresh solver returns for each of them.
  LpSolver reused;
  RngStream rng(7, "lp-reuse");
  for (int round = 0; round < 20; ++round) {
    LpProblem lp;
    lp.num_vars = rng.uniform_int(1, 5);
    lp.objective.clear();
    for (int j = 0; j < lp.num_vars; ++j)
      lp.objective.push_back(rng.uniform(0.1, 2.0));
    const int rows = rng.uniform_int(1, 6);
    for (int i = 0; i < rows; ++i) {
      std::vector<double> c;
      for (int j = 0; j < lp.num_vars; ++j) c.push_back(rng.uniform(0.1, 1.0));
      lp.add_constraint(c, Relation::kLe, rng.uniform(1.0, 10.0));
    }
    const auto a = reused.solve(lp);
    const auto b = solve_lp(lp);
    ASSERT_EQ(a.status, b.status) << "round " << round;
    EXPECT_EQ(a.objective, b.objective) << "round " << round;
    EXPECT_EQ(a.x, b.x) << "round " << round;
  }
}

// ------------------------------------------------------------------------
// Bit-identical regression against the historical nested-vector tableau.
//
// ReferenceTableau below is a verbatim copy of the seed implementation
// (vector<vector<double>> rows, -inf artificial sentinels). The flat
// DenseMatrix rewrite must reproduce its pivot sequence exactly, so
// status, objective and every solution coordinate compare EQ — not NEAR —
// on randomized problems shaped like the optimizer's (fig03/fig04-scale
// rate-region LPs included).

namespace reference {

constexpr double kEps = 1e-9;

class ReferenceTableau {
 public:
  ReferenceTableau(const LpProblem& p) {
    m_ = p.num_constraints();
    n_orig_ = p.num_vars;
    int slack = 0, artificial = 0;
    for (int i = 0; i < m_; ++i) {
      const Relation rel =
          p.rhs[std::size_t(i)] < 0.0 ? flip(p.rels[std::size_t(i)])
                                      : p.rels[std::size_t(i)];
      if (rel == Relation::kLe) {
        ++slack;
      } else if (rel == Relation::kGe) {
        ++slack;
        ++artificial;
      } else {
        ++artificial;
      }
    }
    n_ = n_orig_ + slack + artificial;
    first_artificial_ = n_ - artificial;
    rows_.assign(std::size_t(m_), std::vector<double>(std::size_t(n_) + 1, 0.0));
    basis_.assign(std::size_t(m_), -1);
    int next_slack = n_orig_;
    int next_art = first_artificial_;
    for (int i = 0; i < m_; ++i) {
      const double sign = p.rhs[std::size_t(i)] < 0.0 ? -1.0 : 1.0;
      const Relation rel =
          p.rhs[std::size_t(i)] < 0.0 ? flip(p.rels[std::size_t(i)])
                                      : p.rels[std::size_t(i)];
      auto& row = rows_[std::size_t(i)];
      for (int j = 0; j < n_orig_; ++j)
        row[std::size_t(j)] = sign * p.coeffs(i, j);
      row[std::size_t(n_)] = sign * p.rhs[std::size_t(i)];
      if (rel == Relation::kLe) {
        row[std::size_t(next_slack)] = 1.0;
        basis_[std::size_t(i)] = next_slack++;
      } else if (rel == Relation::kGe) {
        row[std::size_t(next_slack++)] = -1.0;
        row[std::size_t(next_art)] = 1.0;
        basis_[std::size_t(i)] = next_art++;
      } else {
        row[std::size_t(next_art)] = 1.0;
        basis_[std::size_t(i)] = next_art++;
      }
    }
  }

  [[nodiscard]] bool phase1() {
    if (first_artificial_ == n_) return true;
    obj_.assign(std::size_t(n_) + 1, 0.0);
    for (int j = first_artificial_; j < n_; ++j) obj_[std::size_t(j)] = -1.0;
    make_reduced_costs_consistent();
    if (!optimize()) return false;
    if (obj_[std::size_t(n_)] > 1e-7) return false;
    drive_out_artificials();
    return true;
  }

  [[nodiscard]] LpStatus phase2(const std::vector<double>& c) {
    obj_.assign(std::size_t(n_) + 1, 0.0);
    for (int j = 0; j < n_orig_ && j < static_cast<int>(c.size()); ++j)
      obj_[std::size_t(j)] = c[std::size_t(j)];
    for (int j = first_artificial_; j < n_; ++j)
      obj_[std::size_t(j)] = -std::numeric_limits<double>::infinity();
    make_reduced_costs_consistent();
    return optimize() ? LpStatus::kOptimal : LpStatus::kUnbounded;
  }

  [[nodiscard]] std::vector<double> solution() const {
    std::vector<double> x(std::size_t(n_orig_), 0.0);
    for (int i = 0; i < m_; ++i) {
      const int b = basis_[std::size_t(i)];
      if (b >= 0 && b < n_orig_)
        x[std::size_t(b)] = rows_[std::size_t(i)][std::size_t(n_)];
    }
    return x;
  }

 private:
  static Relation flip(Relation r) {
    if (r == Relation::kLe) return Relation::kGe;
    if (r == Relation::kGe) return Relation::kLe;
    return Relation::kEq;
  }

  void make_reduced_costs_consistent() {
    for (int i = 0; i < m_; ++i) {
      const int b = basis_[std::size_t(i)];
      const double coef = obj_[std::size_t(b)];
      if (std::abs(coef) < kEps || std::isinf(coef)) {
        if (std::isinf(coef)) obj_[std::size_t(b)] = 0.0;
        continue;
      }
      const auto& row = rows_[std::size_t(i)];
      for (int j = 0; j <= n_; ++j)
        obj_[std::size_t(j)] -= coef * row[std::size_t(j)];
    }
  }

  void pivot(int row, int col) {
    auto& prow = rows_[std::size_t(row)];
    const double pv = prow[std::size_t(col)];
    for (double& v : prow) v /= pv;
    for (int i = 0; i < m_; ++i) {
      if (i == row) continue;
      auto& r = rows_[std::size_t(i)];
      const double f = r[std::size_t(col)];
      if (std::abs(f) < kEps) continue;
      for (int j = 0; j <= n_; ++j)
        r[std::size_t(j)] -= f * prow[std::size_t(j)];
    }
    const double f = obj_[std::size_t(col)];
    if (std::abs(f) > kEps && !std::isinf(f)) {
      for (int j = 0; j <= n_; ++j)
        obj_[std::size_t(j)] -= f * prow[std::size_t(j)];
    }
    basis_[std::size_t(row)] = col;
  }

  [[nodiscard]] bool optimize() {
    const int max_iters = 200 * (m_ + n_ + 10);
    int iters = 0;
    bool bland = false;
    while (true) {
      if (++iters > max_iters) bland = true;
      int col = -1;
      double best = kEps;
      for (int j = 0; j < n_; ++j) {
        const double rc = obj_[std::size_t(j)];
        if (std::isinf(rc)) continue;
        if (bland) {
          if (rc > kEps) {
            col = j;
            break;
          }
        } else if (rc > best) {
          best = rc;
          col = j;
        }
      }
      if (col < 0) return true;
      int row = -1;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (int i = 0; i < m_; ++i) {
        const double a = rows_[std::size_t(i)][std::size_t(col)];
        if (a > kEps) {
          const double ratio = rows_[std::size_t(i)][std::size_t(n_)] / a;
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps && row >= 0 &&
               basis_[std::size_t(i)] < basis_[std::size_t(row)])) {
            best_ratio = ratio;
            row = i;
          }
        }
      }
      if (row < 0) return false;
      pivot(row, col);
    }
  }

  void drive_out_artificials() {
    for (int i = 0; i < m_; ++i) {
      if (basis_[std::size_t(i)] < first_artificial_) continue;
      int col = -1;
      for (int j = 0; j < first_artificial_; ++j) {
        if (std::abs(rows_[std::size_t(i)][std::size_t(j)]) > 1e-7) {
          col = j;
          break;
        }
      }
      if (col >= 0) pivot(i, col);
    }
  }

  int m_ = 0, n_orig_ = 0, n_ = 0, first_artificial_ = 0;
  std::vector<std::vector<double>> rows_;
  std::vector<double> obj_;
  std::vector<int> basis_;
};

LpSolution solve_lp_reference(const LpProblem& problem) {
  LpSolution sol;
  if (problem.num_vars <= 0) {
    sol.status = LpStatus::kOptimal;
    sol.objective = 0.0;
    return sol;
  }
  ReferenceTableau t(problem);
  if (!t.phase1()) {
    sol.status = LpStatus::kInfeasible;
    return sol;
  }
  const LpStatus st = t.phase2(problem.objective);
  sol.status = st;
  if (st == LpStatus::kOptimal) {
    sol.x = t.solution();
    sol.objective = 0.0;
    for (int j = 0;
         j < problem.num_vars && j < static_cast<int>(problem.objective.size());
         ++j)
      sol.objective +=
          problem.objective[std::size_t(j)] * sol.x[std::size_t(j)];
  }
  return sol;
}

}  // namespace reference

void expect_bit_identical(const LpProblem& lp, const char* what) {
  const LpSolution now = solve_lp(lp);
  const LpSolution ref = reference::solve_lp_reference(lp);
  ASSERT_EQ(now.status, ref.status) << what;
  // EQ, not NEAR: the flat rewrite must preserve the pivot sequence and
  // the per-element arithmetic order exactly.
  EXPECT_EQ(now.objective, ref.objective) << what;
  ASSERT_EQ(now.x.size(), ref.x.size()) << what;
  for (std::size_t j = 0; j < now.x.size(); ++j)
    EXPECT_EQ(now.x[j], ref.x[j]) << what << " x[" << j << "]";
}

class BitIdentical : public ::testing::TestWithParam<int> {};

TEST_P(BitIdentical, RandomMixedRelationLps) {
  RngStream rng(static_cast<std::uint64_t>(GetParam()), "lp-bits");
  LpProblem lp;
  lp.num_vars = rng.uniform_int(2, 6);
  for (int j = 0; j < lp.num_vars; ++j)
    lp.objective.push_back(rng.uniform(-1.0, 2.0));
  const int rows = rng.uniform_int(2, 8);
  for (int i = 0; i < rows; ++i) {
    std::vector<double> c;
    for (int j = 0; j < lp.num_vars; ++j) c.push_back(rng.uniform(-1.0, 1.0));
    const int kind = rng.uniform_int(0, 5);
    const Relation rel = kind == 0   ? Relation::kEq
                         : kind == 1 ? Relation::kGe
                                     : Relation::kLe;
    lp.add_constraint(c, rel, rng.uniform(-2.0, 8.0));
  }
  // Box to keep most problems bounded (unbounded is a valid shared result).
  for (int j = 0; j < lp.num_vars; ++j) {
    std::vector<double> c(static_cast<std::size_t>(lp.num_vars), 0.0);
    c[static_cast<std::size_t>(j)] = 1.0;
    lp.add_constraint(c, Relation::kLe, 20.0);
  }
  expect_bit_identical(lp, "random mixed LP");
}

TEST_P(BitIdentical, RateRegionShapedLps) {
  // The optimizer's base problem at fig03/fig04 scale: L link rows over
  // (flows + K extreme points) variables plus the convex-weight equality.
  RngStream rng(static_cast<std::uint64_t>(GetParam()) + 100, "lp-region");
  const int links = rng.uniform_int(4, 10);
  const int flows = rng.uniform_int(2, 5);
  const int points = rng.uniform_int(8, 60);
  LpProblem lp;
  lp.num_vars = flows + points;
  lp.objective.assign(static_cast<std::size_t>(lp.num_vars), 0.0);
  for (int f = 0; f < flows; ++f)
    lp.objective[static_cast<std::size_t>(f)] = rng.uniform(0.1, 1.0);
  for (int l = 0; l < links; ++l) {
    std::vector<double> row(static_cast<std::size_t>(lp.num_vars), 0.0);
    for (int f = 0; f < flows; ++f)
      row[static_cast<std::size_t>(f)] = rng.bernoulli(0.5) ? 1.0 : 0.0;
    for (int k = 0; k < points; ++k)
      row[static_cast<std::size_t>(flows + k)] =
          rng.bernoulli(0.4) ? -rng.uniform(0.1, 1.0) : 0.0;
    lp.add_constraint(row, Relation::kLe, 0.0);
  }
  std::vector<double> simplex_row(static_cast<std::size_t>(lp.num_vars), 0.0);
  for (int k = 0; k < points; ++k)
    simplex_row[static_cast<std::size_t>(flows + k)] = 1.0;
  lp.add_constraint(simplex_row, Relation::kEq, 1.0);
  for (int f = 0; f < flows; ++f) {
    std::vector<double> row(static_cast<std::size_t>(lp.num_vars), 0.0);
    row[static_cast<std::size_t>(f)] = 1.0;
    lp.add_constraint(row, Relation::kLe, 1.0);
  }
  expect_bit_identical(lp, "rate-region LP");
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitIdentical, ::testing::Range(1, 25));

}  // namespace
}  // namespace meshopt
