#include "model/feasibility.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "model/two_link_analysis.h"
#include "util/rng.h"

namespace meshopt {
namespace {

FeasibilityRegion two_link_time_sharing() {
  // Primary points only: (1,0) and (0,2) — a time sharing region.
  return FeasibilityRegion{{{1.0, 0.0}, {0.0, 2.0}}};
}

TEST(Feasibility, ExtremePointsAreMembers) {
  const auto r = two_link_time_sharing();
  EXPECT_TRUE(r.contains({1.0, 0.0}));
  EXPECT_TRUE(r.contains({0.0, 2.0}));
}

TEST(Feasibility, ConvexCombinationsAreMembers) {
  const auto r = two_link_time_sharing();
  EXPECT_TRUE(r.contains({0.5, 1.0}));   // midpoint
  EXPECT_TRUE(r.contains({0.25, 1.5}));  // 1/4 : 3/4
}

TEST(Feasibility, DominatedPointsAreMembers) {
  const auto r = two_link_time_sharing();
  EXPECT_TRUE(r.contains({0.2, 0.2}));
  EXPECT_TRUE(r.contains({0.0, 0.0}));
}

TEST(Feasibility, BeyondHullRejected) {
  const auto r = two_link_time_sharing();
  EXPECT_FALSE(r.contains({0.6, 1.0}));  // above the time-sharing line
  EXPECT_FALSE(r.contains({1.01, 0.0}));
  EXPECT_FALSE(r.contains({0.0, 2.5}));
}

TEST(Feasibility, MaxScalingOnBoundaryIsOne) {
  const auto r = two_link_time_sharing();
  EXPECT_NEAR(r.max_scaling({0.5, 1.0}), 1.0, 1e-6);
  EXPECT_NEAR(r.max_scaling({0.25, 0.5}), 2.0, 1e-6);
  EXPECT_NEAR(r.max_scaling({1.0, 2.0}), 0.5, 1e-6);
}

TEST(Feasibility, ZeroLoadScalesInfinitely) {
  const auto r = two_link_time_sharing();
  EXPECT_TRUE(std::isinf(r.max_scaling({0.0, 0.0})));
}

TEST(Feasibility, IndependentRegionContainsCorner) {
  // Adding the (1,2) secondary point turns the region rectangular.
  FeasibilityRegion r{{{1.0, 0.0}, {0.0, 2.0}, {1.0, 2.0}}};
  EXPECT_TRUE(r.contains({1.0, 2.0}));
  EXPECT_TRUE(r.contains({0.9, 1.9}));
  EXPECT_FALSE(r.contains({1.1, 0.0}));
}

TEST(ExtremePoints, Eq4MapsIndependentSetsToCapacities) {
  // Path conflict graph 0-1-2 over three links with capacities 1,2,3.
  ConflictGraph g(3);
  g.add_conflict(0, 1);
  g.add_conflict(1, 2);
  const auto points = build_extreme_points({1.0, 2.0, 3.0}, g);
  // Maximal independent sets: {0,2} and {1}.
  ASSERT_EQ(points.size(), 2u);
  // Sorted enumeration: {0,2} first.
  EXPECT_EQ(points[0], (std::vector<double>{1.0, 0.0, 3.0}));
  EXPECT_EQ(points[1], (std::vector<double>{0.0, 2.0, 0.0}));
}

TEST(ExtremePoints, NoConflictsYieldsFullVector) {
  ConflictGraph g(3);
  const auto points = build_extreme_points({5.0, 6.0, 7.0}, g);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0], (std::vector<double>{5.0, 6.0, 7.0}));
}

TEST(ExtremePoints, RegionFromCliqueIsTimeSharing) {
  // Complete conflict graph: secondary points are the primaries, and the
  // region is exactly time sharing: sum of normalized rates <= 1.
  ConflictGraph g(3);
  for (int i = 0; i < 3; ++i)
    for (int j = i + 1; j < 3; ++j) g.add_conflict(i, j);
  const std::vector<double> caps{1.0, 2.0, 4.0};
  FeasibilityRegion r{build_extreme_point_matrix(caps, g)};
  EXPECT_TRUE(r.contains({0.5, 0.5, 1.0}));   // 0.5+0.25+0.25 = 1
  EXPECT_FALSE(r.contains({0.5, 0.5, 1.3}));  // > 1
}

TEST(ExtremePoints, MatrixBridgeMatchesNestedPathAsSets) {
  // The DenseMatrix bridge emits rows in enumeration order; the legacy
  // nested path emits sorted sets. Same rows, possibly permuted.
  RngStream rng(11, "bridge");
  ConflictGraph g(10);
  for (int i = 0; i < 10; ++i)
    for (int j = i + 1; j < 10; ++j)
      if (rng.bernoulli(0.4)) g.add_conflict(i, j);
  std::vector<double> caps;
  for (int i = 0; i < 10; ++i) caps.push_back(rng.uniform(0.5, 5.0));

  const DenseMatrix m = build_extreme_point_matrix(caps, g);
  auto nested = build_extreme_points(caps, g);
  ASSERT_EQ(m.rows(), static_cast<int>(nested.size()));
  ASSERT_EQ(m.cols(), 10);
  auto from_matrix = m.to_nested();
  std::sort(from_matrix.begin(), from_matrix.end());
  std::sort(nested.begin(), nested.end());
  EXPECT_EQ(from_matrix, nested);
}

TEST(ExtremePoints, MatrixBridgeRespectsCap) {
  ConflictGraph g(8);  // no conflicts: exactly one MIS
  const DenseMatrix all = build_extreme_point_matrix(
      std::vector<double>(8, 1.0), g);
  EXPECT_EQ(all.rows(), 1);
  // 4 disjoint conflicting pairs: 2^4 = 16 maximal independent sets.
  ConflictGraph pairs(8);
  for (int i = 0; i < 8; i += 2) pairs.add_conflict(i, i + 1);
  const DenseMatrix capped = build_extreme_point_matrix(
      std::vector<double>(8, 1.0), pairs, /*cap=*/5);
  EXPECT_EQ(capped.rows(), 5);
}

TEST(ExtremePoints, MatrixBridgeCapacitySizeMismatchThrows) {
  ConflictGraph g(3);
  EXPECT_THROW(build_extreme_point_matrix({1.0, 2.0}, g),
               std::invalid_argument);
}

// Property: scaling any member by max_scaling lands on the boundary.
class ScalingProperty : public ::testing::TestWithParam<int> {};

TEST_P(ScalingProperty, ScaledLoadIsBoundary) {
  RngStream rng(static_cast<std::uint64_t>(GetParam()), "feas");
  const int links = rng.uniform_int(2, 5);
  const int pts = rng.uniform_int(2, 6);
  DenseMatrix extreme(pts, links);
  for (int p = 0; p < pts; ++p)
    for (int l = 0; l < links; ++l) extreme(p, l) = rng.uniform(0.0, 10.0);
  FeasibilityRegion r{extreme};

  std::vector<double> load(static_cast<std::size_t>(links));
  for (auto& v : load) v = rng.uniform(0.1, 5.0);
  const double lambda = r.max_scaling(load);
  ASSERT_GT(lambda, 0.0);
  ASSERT_TRUE(std::isfinite(lambda));
  std::vector<double> scaled = load;
  for (auto& v : scaled) v *= lambda;
  EXPECT_TRUE(r.contains(scaled, 1e-5));
  for (auto& v : scaled) v *= 1.02;
  EXPECT_FALSE(r.contains(scaled, 1e-7));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScalingProperty, ::testing::Range(1, 16));

TEST(TwoLinkAnalysis, TimeSharingPointHasNoExtraArea) {
  // Secondary point exactly on the time-sharing line: A2 = 0.
  TwoLinkGeometry g{1.0, 1.0, 0.5, 0.5};
  EXPECT_NEAR(g.a1(), 0.5, 1e-12);
  EXPECT_NEAR(g.a2(), 0.0, 1e-12);
  EXPECT_NEAR(g.fn_error_if_interfering(), 0.0, 1e-12);
}

TEST(TwoLinkAnalysis, IndependentCornerMaximizesA2) {
  TwoLinkGeometry g{1.0, 1.0, 1.0, 1.0};
  EXPECT_NEAR(g.a1() + g.a2(), 1.0, 1e-12);  // full rectangle
  EXPECT_NEAR(g.fp_error_if_independent(), 0.0, 1e-12);
  EXPECT_NEAR(g.fn_error_if_interfering(), 0.5, 1e-12);
}

TEST(TwoLinkAnalysis, Figure5StyleCase) {
  // LIR ~0.7 with symmetric realization: substantial FN if classified
  // interfering, matching the paper's extreme-example discussion.
  const TwoLinkGeometry g = proportional_realization(1.0, 1.0, 0.7);
  EXPECT_LT(g.lir(), 0.95);
  const double fn = g.fn_error(0.95);
  EXPECT_GT(fn, 0.2);
  EXPECT_LT(fn, 0.5);
  EXPECT_EQ(g.fp_error(0.95), 0.0);
}

TEST(TwoLinkAnalysis, HighLirClassifiedIndependentHasSmallFp) {
  const TwoLinkGeometry g = proportional_realization(1.0, 1.0, 0.97);
  EXPECT_GT(g.lir(), 0.95);
  EXPECT_EQ(g.fn_error(0.95), 0.0);
  const double fp = g.fp_error(0.95);
  EXPECT_GT(fp, 0.0);
  EXPECT_LT(fp, 0.05);
}

TEST(TwoLinkAnalysis, ExpectedErrorsOverBimodalDistribution) {
  // Bimodal LIR population like the paper's Fig. 3: FP stays tiny, FN
  // moderate at threshold 0.95.
  std::vector<double> lirs;
  for (int i = 0; i < 60; ++i) lirs.push_back(0.5 + 0.003 * i);   // low mode
  for (int i = 0; i < 40; ++i) lirs.push_back(0.96 + 0.001 * i);  // high mode
  const ExpectedErrors e = expected_errors(lirs, 0.95);
  EXPECT_LT(e.fp, 0.05);
  EXPECT_GT(e.fn, 0.05);
  EXPECT_LT(e.fn, 0.35);
}

TEST(TwoLinkAnalysis, ThresholdTradeoffMonotonicity) {
  std::vector<double> lirs;
  for (int i = 0; i <= 100; ++i) lirs.push_back(0.4 + 0.006 * i);
  const ExpectedErrors lo = expected_errors(lirs, 0.7);
  const ExpectedErrors hi = expected_errors(lirs, 0.99);
  // Raising the threshold converts FPs into FNs.
  EXPECT_GT(lo.fp, hi.fp);
  EXPECT_LT(lo.fn, hi.fn);
}

}  // namespace
}  // namespace meshopt
