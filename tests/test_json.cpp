// util/json error-path coverage: the parser backs both wire formats'
// text side (snapshot JSON submits, plan responses, metrics dumps), so a
// malformed document must fail with the documented std::invalid_argument
// — never UB, stack overflow, or silent acceptance. Happy paths are
// covered incidentally all over the suite; this file pins the edges:
// truncation, unterminated strings, the recursion depth bound, trailing
// garbage, malformed numbers/literals/escapes, accessor type errors, and
// the writer's non-finite-double policy.

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "util/json.h"

namespace meshopt {
namespace {

// ------------------------------------------------------------- truncation

TEST(JsonErrors, TruncatedDocumentsThrow) {
  for (const char* text : {"", "   ", "{", "[", "[1,", "[1", "{\"a\"",
                           "{\"a\":", "{\"a\":1", "{\"a\":1,", "tru", "-"}) {
    EXPECT_THROW((void)JsonValue::parse(text), std::invalid_argument)
        << "accepted truncated document: " << text;
  }
}

TEST(JsonErrors, UnterminatedStringsThrow) {
  for (const char* text : {"\"abc", "\"abc\\", "\"abc\\u12", "{\"key",
                           "[\"a\", \"b"}) {
    EXPECT_THROW((void)JsonValue::parse(text), std::invalid_argument)
        << "accepted unterminated string: " << text;
  }
}

// ------------------------------------------------------------ depth bound

/// Depth kMaxDepth (64) parses; beyond it the parser must fail with the
/// exception, not recurse toward a stack overflow.
TEST(JsonErrors, NestingDepthIsBounded) {
  auto nested = [](int depth) {
    std::string text(static_cast<std::size_t>(depth), '[');
    text.append(static_cast<std::size_t>(depth), ']');
    return text;
  };
  EXPECT_NO_THROW((void)JsonValue::parse(nested(64)));
  EXPECT_THROW((void)JsonValue::parse(nested(65)), std::invalid_argument);
  // Far past the bound: still the exception, still no overflow.
  EXPECT_THROW((void)JsonValue::parse(nested(100000)),
               std::invalid_argument);
  // Mixed object/array nesting counts against the same budget.
  std::string mixed;
  for (int i = 0; i < 40; ++i) mixed += "{\"k\":[";
  EXPECT_THROW((void)JsonValue::parse(mixed), std::invalid_argument);
}

// ------------------------------------------------------- trailing garbage

TEST(JsonErrors, TrailingGarbageThrows) {
  for (const char* text : {"1 2", "{} {}", "[1] x", "null,", "\"a\"\"b\"",
                           "true false"}) {
    EXPECT_THROW((void)JsonValue::parse(text), std::invalid_argument)
        << "accepted trailing garbage: " << text;
  }
  // Trailing whitespace is NOT garbage.
  EXPECT_NO_THROW((void)JsonValue::parse(" [1, 2] \n\t"));
}

// ------------------------------------------- malformed tokens and escapes

TEST(JsonErrors, MalformedNumbersAndLiteralsThrow) {
  for (const char* text : {"1.2.3", "1e", "--1", "+1", "nul", "truE",
                           "falsehood", "None", "0x10", "1e+309junk"}) {
    EXPECT_THROW((void)JsonValue::parse(text), std::invalid_argument)
        << "accepted malformed token: " << text;
  }
}

TEST(JsonErrors, BadEscapesThrow) {
  for (const char* text : {"\"\\q\"", "\"\\u12g4\"", "\"\\u12\"",
                           "\"\\ud800\""}) {
    EXPECT_THROW((void)JsonValue::parse(text), std::invalid_argument)
        << "accepted bad escape: " << text;
  }
  // The supported escapes round-trip through the writer.
  std::string out;
  json_append_string(out, "a\"b\\c\nd\te\x01");
  const JsonValue v = JsonValue::parse(out);
  EXPECT_EQ(v.as_string(), "a\"b\\c\nd\te\x01");
}

// -------------------------------------------------------------- accessors

TEST(JsonErrors, AccessorTypeMismatchesThrow) {
  const JsonValue doc = JsonValue::parse("{\"n\":1,\"s\":\"x\",\"a\":[]}");
  EXPECT_THROW((void)doc.at("n").as_bool(), std::invalid_argument);
  EXPECT_THROW((void)doc.at("n").as_string(), std::invalid_argument);
  EXPECT_THROW((void)doc.at("s").as_number(), std::invalid_argument);
  EXPECT_THROW((void)doc.at("n").items(), std::invalid_argument);
  EXPECT_THROW((void)doc.at("a").members(), std::invalid_argument);
  EXPECT_THROW((void)doc.at("missing"), std::invalid_argument);
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_EQ(doc.at("n").find("anything"), nullptr);  // non-object find
  // as_int bounds: truncation in range, exception out of range.
  EXPECT_EQ(JsonValue::parse("2147483647.9").as_int(), 2147483647);
  EXPECT_THROW((void)JsonValue::parse("2147483648").as_int(),
               std::invalid_argument);
  EXPECT_THROW((void)JsonValue::parse("-2147483649").as_int(),
               std::invalid_argument);
  EXPECT_THROW((void)JsonValue::parse("1e300").as_int(),
               std::invalid_argument);
}

// ------------------------------------------------------------- non-finite

/// JSON has no inf/nan: the writer's documented policy is to emit null.
/// The round trip therefore yields a null value, which then fails number
/// accessors loudly instead of smuggling a poisoned double through.
TEST(JsonErrors, NonFiniteDoublesWriteAsNull) {
  for (const double v : {std::numeric_limits<double>::infinity(),
                         -std::numeric_limits<double>::infinity(),
                         std::numeric_limits<double>::quiet_NaN()}) {
    std::string out;
    json_append_double(out, v);
    EXPECT_EQ(out, "null");
    EXPECT_TRUE(JsonValue::parse(out).is_null());
    EXPECT_THROW((void)JsonValue::parse(out).as_number(),
                 std::invalid_argument);
  }
  // Finite extremes still round-trip bit-exactly at %.17g.
  for (const double v : {std::numeric_limits<double>::max(),
                         std::numeric_limits<double>::denorm_min(), -0.0,
                         0.1 + 0.2}) {
    std::string out;
    json_append_double(out, v);
    const double back = JsonValue::parse(out).as_number();
    EXPECT_EQ(std::signbit(back), std::signbit(v));
    EXPECT_EQ(back, v);
  }
}

}  // namespace
}  // namespace meshopt
