// Plan-serving subsystem tests (ARCHITECTURE.md, "Serving plane").
//
// Pins the serving determinism contract — for a fixed ServeScript, every
// submit result, every served plan, and the whole deterministic metrics
// plane are bit-identical across pool thread counts — plus the admission
// policy (auto/stale sequencing, coalescing, per-tenant and global queue
// bounds, unknown tenants), guarded tenants (repair and reject verdicts
// surfacing in plans and counters), the wire framing (round trips in both
// snapshot formats, malformed-frame rejection, incremental decode), and
// the metrics JSON document.

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/guard.h"
#include "core/rate_plan.h"
#include "core/snapshot.h"
#include "serve/plan_service.h"
#include "serve/wire.h"
#include "util/json.h"
#include "util/rng.h"

namespace meshopt {
namespace {

// ---------------------------------------------------------------- fixtures

/// A small hand-built two-hop snapshot: 3 links of a chain + cross link.
MeasurementSnapshot chain_snapshot() {
  MeasurementSnapshot snap;
  const NodeId hops[][2] = {{0, 1}, {1, 2}, {3, 2}};
  for (const auto& h : hops) {
    SnapshotLink l;
    l.src = h[0];
    l.dst = h[1];
    l.rate = Rate::kR11Mbps;
    l.estimate.p_link = 0.02;
    l.estimate.capacity_bps = 4.2e6;
    snap.links.push_back(l);
  }
  snap.neighbors = {{0, 1}, {1, 2}, {1, 3}, {2, 3}};
  return snap;
}

std::vector<FlowSpec> chain_flows() {
  std::vector<FlowSpec> flows(2);
  flows[0].flow_id = 0;
  flows[0].path = {0, 1, 2};
  flows[1].flow_id = 1;
  flows[1].path = {3, 2};
  return flows;
}

/// A capacity-perturbed copy (same topology, different round measurement).
MeasurementSnapshot perturbed_snapshot(double scale) {
  MeasurementSnapshot snap = chain_snapshot();
  for (SnapshotLink& l : snap.links) l.estimate.capacity_bps *= scale;
  return snap;
}

TenantConfig chain_tenant(PlanTier tier, bool guarded = false) {
  TenantConfig cfg;
  cfg.flows = chain_flows();
  cfg.plan.tier = tier;
  cfg.guarded = guarded;
  return cfg;
}

/// A snapshot the guard's repair tier fixes by DROPPING a poisoned link
/// (NaN capacity) that no flow path uses — the surviving links still plan.
MeasurementSnapshot repairable_snapshot() {
  MeasurementSnapshot snap = chain_snapshot();
  SnapshotLink extra;
  extra.src = 1;
  extra.dst = 3;
  extra.rate = Rate::kR11Mbps;
  extra.estimate.p_link = 0.02;
  extra.estimate.capacity_bps = std::numeric_limits<double>::quiet_NaN();
  snap.links.push_back(extra);
  return snap;
}

/// A snapshot the guard must reject (no links at all).
MeasurementSnapshot rejected_snapshot() { return MeasurementSnapshot{}; }

// ------------------------------------------------------------ determinism

/// The headline pin: identical tenants + identical script => bit-identical
/// submit results, served plans, and deterministic metrics JSON across
/// pool thread counts (1 vs 4), mixed tiers and guard modes included.
TEST(ServeDeterminism, BitIdenticalAcrossPoolThreads) {
  const std::vector<MeasurementSnapshot> pool = {
      chain_snapshot(), perturbed_snapshot(0.8), repairable_snapshot()};
  const std::uint32_t kTenants = 8;
  const ServeScript script = staggered_replay_script(
      kTenants, /*rounds_per_tenant=*/4, /*pool_rounds=*/3,
      /*ticks_per_round=*/2, /*seed=*/42, /*burst_every=*/3);

  auto build = [&](int threads) {
    ServeConfig cfg;
    cfg.threads = threads;
    auto svc = std::make_unique<PlanService>(cfg);
    for (std::uint32_t t = 0; t < kTenants; ++t) {
      TenantConfig tc = chain_tenant(
          t % 2 == 0 ? PlanTier::kExact : PlanTier::kFast,
          /*guarded=*/t % 3 == 0);
      tc.coalesce = t % 4 != 1;  // some tenants queue, some coalesce
      svc->add_tenant(std::move(tc));
    }
    return svc;
  };

  auto svc1 = build(1);
  auto svc4 = build(4);
  const ServeReport r1 = svc1->run_script(script, pool);
  const ServeReport r4 = svc4->run_script(script, pool);

  ASSERT_EQ(r1.submit_results.size(), script.events.size());
  EXPECT_EQ(r1.submit_results, r4.submit_results);
  ASSERT_FALSE(r1.served.empty());
  EXPECT_EQ(r1.served, r4.served);  // RatePlan bit-equality included
  EXPECT_EQ(r1.final_tick, r4.final_tick);
  // The deterministic metrics plane is byte-stable; wall-clock sketches
  // are the one surface deliberately outside the contract.
  EXPECT_EQ(svc1->metrics_json(/*include_wall=*/false),
            svc4->metrics_json(/*include_wall=*/false));
}

/// Served order within a batch is ascending tenant id, and per tenant the
/// rounds come out in sequence order.
TEST(ServeDeterminism, ServedOrderIsBatchThenTenant) {
  const std::vector<MeasurementSnapshot> pool = {chain_snapshot()};
  PlanService svc;
  for (int t = 0; t < 3; ++t) svc.add_tenant(chain_tenant(PlanTier::kExact));
  ServeScript script;
  for (int r = 0; r < 2; ++r)
    for (std::uint32_t t = 0; t < 3; ++t)
      script.events.push_back({/*tick=*/r, t, /*snapshot_ref=*/0});
  const ServeReport rep = svc.run_script(script, pool);
  ASSERT_EQ(rep.served.size(), 6u);
  for (std::size_t i = 0; i < rep.served.size(); ++i) {
    EXPECT_EQ(rep.served[i].tenant, i % 3);
    EXPECT_EQ(rep.served[i].round_seq, i / 3 + 1);
  }
}

// -------------------------------------------------------------- admission

TEST(ServeAdmission, AutoSequenceIncrementsAndStaleSheds) {
  PlanService svc;
  const std::uint32_t t = svc.add_tenant(chain_tenant(PlanTier::kExact));
  const MeasurementSnapshot snap = chain_snapshot();

  EXPECT_EQ(svc.submit(t, snap, 0), (SubmitResult{SubmitStatus::kAccepted, 1}));
  svc.run_batch(0);
  EXPECT_EQ(svc.last_served_seq(t), 1u);

  // Wire path: an explicitly stale (or equal) sequence sheds.
  EXPECT_EQ(svc.submit_seq(t, snap, 1, 1).status,
            SubmitStatus::kShedStaleRound);
  EXPECT_EQ(svc.submit_seq(t, snap, 7, 1).status, SubmitStatus::kAccepted);
  // Auto-sequencing continues above the declared one.
  EXPECT_EQ(svc.submit(t, snap, 1).round_seq, 8u);
  EXPECT_EQ(svc.metrics().tenant(t).shed_stale_round, 1u);
}

TEST(ServeAdmission, CoalesceSupersedesQueuedRound) {
  PlanService svc;
  const std::uint32_t t = svc.add_tenant(chain_tenant(PlanTier::kExact));

  EXPECT_EQ(svc.submit(t, perturbed_snapshot(0.5), 0).status,
            SubmitStatus::kAccepted);
  const SubmitResult second = svc.submit(t, chain_snapshot(), 1);
  EXPECT_EQ(second, (SubmitResult{SubmitStatus::kCoalesced, 2}));
  EXPECT_EQ(svc.pending(), 1u);  // superseded in place, backlog unchanged

  const ServeBatchReport batch = svc.run_batch(2);
  ASSERT_EQ(batch.served.size(), 1u);
  // The served round is the SECOND submission: its sequence, its
  // snapshot's capacities, and the coalesced submission's enqueue tick.
  EXPECT_EQ(batch.served[0].round_seq, 2u);
  EXPECT_EQ(batch.served[0].submit_tick, 1);
  EXPECT_TRUE(batch.served[0].plan.ok);
  EXPECT_EQ(svc.metrics().tenant(t).coalesced, 1u);
  EXPECT_EQ(svc.metrics().tenant(t).plans_served, 1u);
  EXPECT_EQ(svc.pending(), 0u);
}

TEST(ServeAdmission, TenantQueueBoundShedsWhenCoalesceOff) {
  PlanService svc;
  TenantConfig cfg = chain_tenant(PlanTier::kExact);
  cfg.coalesce = false;
  cfg.queue_limit = 2;
  const std::uint32_t t = svc.add_tenant(std::move(cfg));
  const MeasurementSnapshot snap = chain_snapshot();

  EXPECT_EQ(svc.submit(t, snap, 0).status, SubmitStatus::kAccepted);
  EXPECT_EQ(svc.submit(t, snap, 0).status, SubmitStatus::kAccepted);
  EXPECT_EQ(svc.submit(t, snap, 0).status,
            SubmitStatus::kShedTenantQueueFull);
  EXPECT_EQ(svc.pending(), 2u);
  EXPECT_EQ(svc.metrics().tenant(t).shed_queue_full, 1u);

  // FIFO tenants drain one round per batch, oldest first.
  EXPECT_EQ(svc.run_batch(1).served.at(0).round_seq, 1u);
  EXPECT_EQ(svc.run_batch(2).served.at(0).round_seq, 2u);
}

TEST(ServeAdmission, GlobalBoundShedsButCoalescingStaysAdmitted) {
  ServeConfig cfg;
  cfg.global_queue_limit = 1;
  PlanService svc(cfg);
  const std::uint32_t a = svc.add_tenant(chain_tenant(PlanTier::kExact));
  TenantConfig fifo = chain_tenant(PlanTier::kExact);
  fifo.coalesce = false;
  const std::uint32_t b = svc.add_tenant(std::move(fifo));
  const MeasurementSnapshot snap = chain_snapshot();

  EXPECT_EQ(svc.submit(a, snap, 0).status, SubmitStatus::kAccepted);
  EXPECT_EQ(svc.submit(b, snap, 0).status,
            SubmitStatus::kShedGlobalQueueFull);
  // A coalescing replacement never grows the backlog, so it is admitted
  // even at the global bound.
  EXPECT_EQ(svc.submit(a, snap, 0).status, SubmitStatus::kCoalesced);
  EXPECT_EQ(svc.pending(), 1u);
  EXPECT_EQ(svc.metrics().tenant(b).shed_global_full, 1u);
}

TEST(ServeAdmission, UnknownTenantSheds) {
  PlanService svc;
  svc.add_tenant(chain_tenant(PlanTier::kExact));
  EXPECT_EQ(svc.submit(99, chain_snapshot(), 0).status,
            SubmitStatus::kShedUnknownTenant);
  EXPECT_EQ(svc.metrics().global().shed_unknown_tenant, 1u);
  EXPECT_THROW((void)svc.tenant_config(99), std::invalid_argument);
  EXPECT_THROW((void)svc.last_plan(99), std::invalid_argument);
}

// ------------------------------------------------------------------ guard

TEST(ServeGuard, VerdictsFlowIntoPlansAndCounters) {
  PlanService svc;
  TenantConfig cfg = chain_tenant(PlanTier::kExact, /*guarded=*/true);
  cfg.coalesce = false;  // queue all three rounds instead of superseding
  cfg.queue_limit = 3;
  const std::uint32_t t = svc.add_tenant(std::move(cfg));

  // Repaired FIRST, while the tenant's planner cache is still empty: the
  // repaired round must plan through the uncacheable path and must NOT
  // seed the cache with its repaired topology.
  svc.submit(t, repairable_snapshot(), 0);
  svc.submit(t, chain_snapshot(), 1);
  svc.submit(t, rejected_snapshot(), 2);
  std::vector<ServedPlan> served;
  for (long long tick = 1; svc.pending() > 0; ++tick)
    for (ServedPlan& p : svc.run_batch(tick).served)
      served.push_back(std::move(p));

  ASSERT_EQ(served.size(), 3u);
  EXPECT_EQ(served[0].verdict, SnapshotVerdict::kRepaired);
  EXPECT_TRUE(served[0].plan.ok);
  EXPECT_EQ(served[1].verdict, SnapshotVerdict::kClean);
  EXPECT_TRUE(served[1].plan.ok);
  EXPECT_EQ(served[2].verdict, SnapshotVerdict::kRejected);
  EXPECT_FALSE(served[2].plan.ok);

  const TenantCounters& c = svc.metrics().tenant(t);
  EXPECT_EQ(c.snapshots_clean, 1u);
  EXPECT_EQ(c.snapshots_repaired, 1u);
  EXPECT_EQ(c.snapshots_rejected, 1u);
  EXPECT_EQ(c.plans_served, 2u);
  EXPECT_EQ(c.plans_failed, 1u);
  // Round 1 planned uncacheably (no stored entry), so the clean round 2
  // was still a cold MISS — the cache never held the repaired topology.
  EXPECT_EQ(c.uncacheable_plans, 1u);
  EXPECT_EQ(c.cache_misses, 1u);
  EXPECT_EQ(c.cache_hits, 0u);
}

/// Constant-topology rounds after the first hit the tenant's planner
/// cache, and the cache metering shows it.
TEST(ServeGuard, PlannerCacheMeteredPerTenant) {
  PlanService svc;
  const std::uint32_t t = svc.add_tenant(chain_tenant(PlanTier::kExact));
  for (int r = 0; r < 3; ++r) {
    svc.submit(t, perturbed_snapshot(1.0 - 0.1 * r), r);
    svc.run_batch(r);
  }
  const TenantCounters& c = svc.metrics().tenant(t);
  EXPECT_EQ(c.cache_misses, 1u);
  EXPECT_EQ(c.cache_hits, 2u);
  EXPECT_EQ(svc.metrics().global().totals.cache_hits, 2u);
}

// ------------------------------------------------------------------- wire

TEST(ServeWire, SubmitRoundTripsBothFormats) {
  const MeasurementSnapshot snap = chain_snapshot();
  for (const WireFormat format : {WireFormat::kBinary, WireFormat::kJson}) {
    SubmitRequest req;
    req.tenant = 7;
    req.round_seq = 11;
    req.format = format;
    req.snapshot = snap;
    std::string buf;
    wire_append_submit(buf, req);

    WireFrame frame;
    const std::size_t used = wire_decode_frame(buf, frame);
    EXPECT_EQ(used, buf.size());
    EXPECT_EQ(frame.kind, WireKind::kSubmit);
    EXPECT_EQ(frame.format, format);
    EXPECT_EQ(frame.tenant, 7u);
    EXPECT_EQ(frame.round_seq, 11u);
    EXPECT_EQ(frame.snapshot, snap);  // bit-exact, both codecs
  }
}

TEST(ServeWire, PlanAndRejectRoundTrip) {
  RatePlan plan;
  plan.ok = true;
  plan.tier = PlanTier::kFast;
  plan.objective_value = 0.1 + 0.2;  // not representable: exercises %.17g
  plan.extreme_points = 5;
  plan.optimizer_iterations = 17;
  plan.columns_generated = 9;
  plan.pricing_rounds = 3;
  plan.y = {1.25e6, std::nextafter(2.5e6, 3e6)};
  plan.x = {1.5e6, 2.75e6};
  plan.shapers.push_back({0, 1.5e6});
  plan.shapers.push_back({1, 2.75e6});

  std::string buf;
  wire_append_plan(buf, 3, 21, plan);
  wire_append_reject(buf, 4, 22, "snapshot rejected");

  WireFrame frame;
  std::size_t used = wire_decode_frame(buf, frame);
  ASSERT_GT(used, 0u);
  EXPECT_EQ(frame.kind, WireKind::kPlan);
  EXPECT_EQ(frame.tenant, 3u);
  EXPECT_EQ(frame.plan, plan);  // doubles bit-exact through JSON

  // Streamed decode: the second frame starts right where the first ended.
  WireFrame frame2;
  const std::size_t used2 =
      wire_decode_frame(std::string_view(buf).substr(used), frame2);
  EXPECT_EQ(used + used2, buf.size());
  EXPECT_EQ(frame2.kind, WireKind::kReject);
  EXPECT_EQ(frame2.round_seq, 22u);
  EXPECT_EQ(frame2.reject_reason, "snapshot rejected");
}

TEST(ServeWire, SubmitFrameDrivesTheService) {
  PlanService svc;
  const std::uint32_t t = svc.add_tenant(chain_tenant(PlanTier::kExact));

  SubmitRequest req;
  req.tenant = t;
  req.round_seq = 5;
  req.format = WireFormat::kBinary;
  req.snapshot = chain_snapshot();
  std::string buf;
  wire_append_submit(buf, req);
  EXPECT_EQ(svc.submit_frame(buf, 0),
            (SubmitResult{SubmitStatus::kAccepted, 5}));

  const ServeBatchReport batch = svc.run_batch(1);
  ASSERT_EQ(batch.served.size(), 1u);
  std::string out;
  svc.append_response_frame(out, batch.served[0]);
  WireFrame reply;
  ASSERT_EQ(wire_decode_frame(out, reply), out.size());
  EXPECT_EQ(reply.kind, WireKind::kPlan);
  EXPECT_EQ(reply.round_seq, 5u);
  EXPECT_EQ(reply.plan, batch.served[0].plan);

  // A non-submit frame must not be accepted by the submit path.
  EXPECT_THROW((void)svc.submit_frame(out, 2), std::invalid_argument);
}

TEST(ServeWire, MalformedFramesRejectedIncompleteFramesWait) {
  SubmitRequest req;
  req.tenant = 1;
  req.round_seq = 2;
  req.format = WireFormat::kJson;
  req.snapshot = chain_snapshot();
  std::string good;
  wire_append_submit(good, req);

  WireFrame out;
  // Incomplete input (header or payload) is "wait for more", not an error.
  EXPECT_EQ(wire_decode_frame(std::string_view(good).substr(0, 10), out), 0u);
  EXPECT_EQ(
      wire_decode_frame(std::string_view(good).substr(0, good.size() - 1),
                        out),
      0u);

  auto corrupt = [&](std::size_t at, char c) {
    std::string bad = good;
    bad[at] = c;
    return bad;
  };
  EXPECT_THROW((void)wire_decode_frame(corrupt(0, 'X'), out),
               std::invalid_argument);  // magic
  EXPECT_THROW((void)wire_decode_frame(corrupt(4, '\x07'), out),
               std::invalid_argument);  // kind
  EXPECT_THROW((void)wire_decode_frame(corrupt(5, '\x02'), out),
               std::invalid_argument);  // format
  EXPECT_THROW((void)wire_decode_frame(corrupt(6, '\x01'), out),
               std::invalid_argument);  // reserved bits
  // A hostile declared length fails fast instead of demanding a 4 GiB
  // buffer, and a truncated JSON payload fails in the snapshot parser.
  std::string hostile = good;
  hostile[20] = hostile[21] = hostile[22] = hostile[23] = '\xff';
  EXPECT_THROW((void)wire_decode_frame(hostile, out), std::invalid_argument);
  std::string truncated_payload = good;
  truncated_payload[20] = '\x05';  // shrink declared payload: bad JSON
  EXPECT_THROW((void)wire_decode_frame(truncated_payload, out),
               std::invalid_argument);
}

// ----------------------------------------------------------------- script

TEST(ServeScript, GeneratorAndRunnerValidate) {
  EXPECT_THROW((void)staggered_replay_script(0, 1, 1, 1, 1),
               std::invalid_argument);
  EXPECT_THROW((void)staggered_replay_script(1, 0, 1, 1, 1),
               std::invalid_argument);

  const ServeScript script = staggered_replay_script(4, 3, 2, 5, 7);
  ASSERT_EQ(script.events.size(), 12u);
  for (std::size_t i = 1; i < script.events.size(); ++i)
    EXPECT_LE(script.events[i - 1].tick, script.events[i].tick);
  // Same seed, same schedule; different seed, different offsets.
  EXPECT_EQ(staggered_replay_script(4, 3, 2, 5, 7).events, script.events);

  PlanService svc;
  svc.add_tenant(chain_tenant(PlanTier::kExact));
  const std::vector<MeasurementSnapshot> pool = {chain_snapshot()};
  ServeScript unsorted;
  unsorted.events = {{2, 0, 0}, {1, 0, 0}};
  EXPECT_THROW((void)svc.run_script(unsorted, pool), std::invalid_argument);
  ServeScript out_of_pool;
  out_of_pool.events = {{0, 0, 3}};
  EXPECT_THROW((void)svc.run_script(out_of_pool, pool),
               std::invalid_argument);
}

// ---------------------------------------------------------------- metrics

TEST(ServeMetrics, JsonDocumentParsesAndAccounts) {
  const std::vector<MeasurementSnapshot> pool = {chain_snapshot(),
                                                 perturbed_snapshot(0.9)};
  PlanService svc;
  for (int t = 0; t < 2; ++t) svc.add_tenant(chain_tenant(PlanTier::kExact));
  const ServeScript script = staggered_replay_script(2, 3, 2, 2, 3);
  const ServeReport rep = svc.run_script(script, pool);

  const JsonValue doc = JsonValue::parse(svc.metrics_json());
  const JsonValue& global = doc.at("global");
  EXPECT_EQ(global.at("submitted").as_int(),
            static_cast<int>(script.events.size()));
  EXPECT_EQ(global.at("plans_served").as_int(),
            static_cast<int>(rep.served.size()));
  EXPECT_EQ(global.at("tick_latency").at("count").as_int(),
            static_cast<int>(rep.served.size()));
  EXPECT_GE(global.at("tick_latency").at("p99").as_number(),
            global.at("tick_latency").at("p50").as_number());
  EXPECT_EQ(global.at("wall_latency_s").at("count").as_int(),
            static_cast<int>(rep.served.size()));
  ASSERT_EQ(doc.at("tenants").items().size(), 2u);
  EXPECT_EQ(doc.at("tenants").items()[1].at("tenant").as_int(), 1);

  // The deterministic surface omits the wall sketch — and only it.
  const JsonValue det = JsonValue::parse(svc.metrics_json(false));
  EXPECT_EQ(det.at("global").find("wall_latency_s"), nullptr);
  EXPECT_NE(det.at("global").find("tick_latency"), nullptr);
}

/// Parse a Prometheus text exposition into "name{labels}" -> value.
std::map<std::string, double> parse_prometheus(const std::string& text) {
  std::map<std::string, double> samples;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto sp = line.rfind(' ');
    if (sp == std::string::npos) {
      ADD_FAILURE() << "malformed sample line: " << line;
      continue;
    }
    samples[line.substr(0, sp)] = std::stod(line.substr(sp + 1));
  }
  return samples;
}

/// Both export formats are built from ONE counter walk (metrics.cpp), so
/// parsing both documents must yield identical values for every counter —
/// the pin that keeps the JSON and Prometheus planes from drifting.
TEST(ServeMetrics, PrometheusTextAgreesWithJson) {
  const std::vector<MeasurementSnapshot> pool = {
      chain_snapshot(), perturbed_snapshot(0.9), repairable_snapshot()};
  PlanService svc;
  svc.add_tenant(chain_tenant(PlanTier::kExact, /*guarded=*/true));
  svc.add_tenant(chain_tenant(PlanTier::kFast));
  const ServeScript script =
      staggered_replay_script(2, 4, 3, 2, /*seed=*/7, /*burst_every=*/1);
  (void)svc.run_script(script, pool);

  const JsonValue doc = JsonValue::parse(svc.metrics_json());
  const std::map<std::string, double> samples =
      parse_prometheus(svc.metrics().metrics_text());

  int checked = 0;
  for (const auto& [key, value] : doc.at("global").members()) {
    if (value.type() != JsonValue::Type::kNumber) continue;  // sketches
    const std::string name = "meshopt_serve_" + key + "{scope=\"global\"}";
    ASSERT_EQ(samples.count(name), 1u) << name;
    EXPECT_EQ(samples.at(name), value.as_number()) << name;
    ++checked;
  }
  EXPECT_EQ(checked, 20);  // 16 tenant-scoped + 4 global-only counters
  for (const JsonValue& tenant : doc.at("tenants").items()) {
    const std::string labels =
        "{tenant=\"" + std::to_string(tenant.at("tenant").as_int()) + "\"}";
    for (const auto& [key, value] : tenant.members()) {
      if (key == "tenant" || value.type() != JsonValue::Type::kNumber)
        continue;
      const std::string name = "meshopt_serve_" + key + labels;
      ASSERT_EQ(samples.count(name), 1u) << name;
      EXPECT_EQ(samples.at(name), value.as_number()) << name;
    }
  }

  // Histogram exposition: the +Inf bucket and _count both equal the JSON
  // sketch's count (cumulative buckets, shared QuantileSketch::buckets()).
  const double count =
      doc.at("global").at("tick_latency").at("count").as_number();
  EXPECT_GT(count, 0.0);
  EXPECT_EQ(samples.at("meshopt_serve_tick_latency_bucket{scope=\"global\","
                       "le=\"+Inf\"}"),
            count);
  EXPECT_EQ(samples.at("meshopt_serve_tick_latency_count{scope=\"global\"}"),
            count);

  // include_wall=false drops the wall-latency histogram — and only it —
  // mirroring metrics_json(false)'s deterministic surface.
  const std::string det = svc.metrics().metrics_text(false);
  EXPECT_EQ(det.find("wall_latency_s"), std::string::npos);
  EXPECT_NE(det.find("tick_latency"), std::string::npos);
}

}  // namespace
}  // namespace meshopt
