#include <gtest/gtest.h>

#include "net/shaper.h"
#include "scenario/workbench.h"
#include "transport/udp.h"

namespace meshopt {
namespace {

TEST(TokenBucket, ConformsToRate) {
  Simulator sim;
  int forwarded = 0;
  TokenBucketShaper shaper(sim, /*rate=*/80e3, /*bucket=*/1500,
                           [&](const Packet&) { ++forwarded; });
  // Offer 100 x 1000B packets at t=0: 10 kB/s -> 10 pkts/s.
  for (int i = 0; i < 100; ++i) {
    Packet p;
    p.bytes = 1000;
    shaper.offer(p, 1000);
  }
  sim.run_until(seconds(5.0));
  // ~1 burst + 10/s * 5s.
  EXPECT_GE(forwarded, 48);
  EXPECT_LE(forwarded, 55);
}

TEST(TokenBucket, BurstAllowance) {
  Simulator sim;
  int forwarded = 0;
  TokenBucketShaper shaper(sim, 8e3, /*bucket=*/5000,
                           [&](const Packet&) { ++forwarded; });
  for (int i = 0; i < 10; ++i) {
    Packet p;
    p.bytes = 1000;
    shaper.offer(p, 1000);
  }
  // Five packets pass immediately on the initial bucket.
  EXPECT_EQ(forwarded, 5);
  sim.run_until(seconds(1.001));  // refill boundary + scheduling epsilon
  EXPECT_EQ(forwarded, 6);        // 1 kB/s refill
}

TEST(TokenBucket, RateChangeTakesEffect) {
  Simulator sim;
  int forwarded = 0;
  TokenBucketShaper shaper(sim, 8e3, 1000,
                           [&](const Packet&) { ++forwarded; });
  for (int i = 0; i < 50; ++i) {
    Packet p;
    p.bytes = 1000;
    shaper.offer(p, 1000);
  }
  sim.run_until(seconds(2.0));
  const int before = forwarded;
  shaper.set_rate_bps(80e3);
  sim.run_until(seconds(4.0));
  EXPECT_GT(forwarded - before, 15);  // 10/s after the change
}

TEST(TokenBucket, DropsWhenQueueFull) {
  Simulator sim;
  TokenBucketShaper shaper(sim, 1.0, 10, [](const Packet&) {});
  shaper.set_queue_capacity(5);
  for (int i = 0; i < 20; ++i) {
    Packet p;
    p.bytes = 1000;
    shaper.offer(p, 1000);
  }
  EXPECT_EQ(shaper.backlog(), 5u);
  EXPECT_EQ(shaper.drops(), 15u);
}

TEST(TokenBucket, ZeroRateStarves) {
  Simulator sim;
  int forwarded = 0;
  TokenBucketShaper shaper(sim, 0.0, 100,
                           [&](const Packet&) { ++forwarded; });
  Packet p;
  p.bytes = 1000;
  shaper.offer(p, 1000);
  sim.run_until(seconds(10.0));
  EXPECT_EQ(forwarded, 0);
  shaper.set_rate_bps(800e3);
  sim.run_until(seconds(11.0));
  EXPECT_EQ(forwarded, 1);
}

TEST(UdpSourceTest, CbrHitsConfiguredRate) {
  Workbench wb(21);
  wb.add_nodes(2);
  wb.channel().set_rss_symmetric_dbm(0, 1, -55.0);
  wb.net().node(0).set_route(1, 1);
  wb.net().node(0).set_link_rate(1, Rate::kR11Mbps);
  const int flow = wb.net().open_flow(0, 1, Protocol::kUdp, 1470);
  UdpSource src(wb.net(), flow, UdpMode::kCbr, 1e6, RngStream(21, "cbr"));
  src.start();
  wb.run_for(1.0);
  wb.net().reset_flow_counters();
  wb.run_for(10.0);
  EXPECT_NEAR(wb.net().flow(flow).throughput_bps(10.0), 1e6, 0.05e6);
}

TEST(UdpSourceTest, PoissonHitsMeanRate) {
  Workbench wb(23);
  wb.add_nodes(2);
  wb.channel().set_rss_symmetric_dbm(0, 1, -55.0);
  wb.net().node(0).set_route(1, 1);
  wb.net().node(0).set_link_rate(1, Rate::kR11Mbps);
  const int flow = wb.net().open_flow(0, 1, Protocol::kUdp, 1470);
  UdpSource src(wb.net(), flow, UdpMode::kPoisson, 0.8e6,
                RngStream(23, "poisson"));
  src.start();
  wb.run_for(1.0);
  wb.net().reset_flow_counters();
  wb.run_for(20.0);
  EXPECT_NEAR(wb.net().flow(flow).throughput_bps(20.0), 0.8e6, 0.08e6);
}

TEST(UdpSourceTest, RestartAfterStopStillBacklogged) {
  // Regression: a restarted backlogged source must keep feeding the MAC
  // (stale outstanding counters used to freeze it).
  Workbench wb(27);
  wb.add_nodes(2);
  wb.channel().set_rss_symmetric_dbm(0, 1, -55.0);
  wb.net().node(0).set_route(1, 1);
  wb.net().node(0).set_link_rate(1, Rate::kR11Mbps);
  const int flow = wb.net().open_flow(0, 1, Protocol::kUdp, 1470);
  UdpSource src(wb.net(), flow, UdpMode::kBacklogged, 0.0,
                RngStream(27, "bl"));
  src.start();
  wb.run_for(2.0);
  src.stop();
  wb.run_for(1.0);
  src.start();
  wb.net().reset_flow_counters();
  wb.run_for(5.0);
  EXPECT_GT(wb.net().flow(flow).throughput_bps(5.0), 3e6);
}

TEST(UdpSourceTest, RateAdjustableWhileRunning) {
  Workbench wb(29);
  wb.add_nodes(2);
  wb.channel().set_rss_symmetric_dbm(0, 1, -55.0);
  wb.net().node(0).set_route(1, 1);
  wb.net().node(0).set_link_rate(1, Rate::kR11Mbps);
  const int flow = wb.net().open_flow(0, 1, Protocol::kUdp, 1470);
  UdpSource src(wb.net(), flow, UdpMode::kCbr, 0.2e6, RngStream(29, "adj"));
  src.start();
  wb.run_for(5.0);
  src.set_rate_bps(2e6);
  wb.run_for(1.0);
  wb.net().reset_flow_counters();
  wb.run_for(10.0);
  EXPECT_NEAR(wb.net().flow(flow).throughput_bps(10.0), 2e6, 0.2e6);
}

}  // namespace
}  // namespace meshopt
