#include "model/conflict_graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <set>
#include <vector>

#include "util/rng.h"

namespace meshopt {
namespace {

TEST(ConflictGraph, EmptyGraphSingleMis) {
  // No conflicts: the only maximal independent set is "all links".
  ConflictGraph g(4);
  const auto sets = g.maximal_independent_sets();
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0], (std::vector<int>{0, 1, 2, 3}));
}

TEST(ConflictGraph, CompleteGraphSingletons) {
  ConflictGraph g(4);
  for (int i = 0; i < 4; ++i)
    for (int j = i + 1; j < 4; ++j) g.add_conflict(i, j);
  const auto sets = g.maximal_independent_sets();
  ASSERT_EQ(sets.size(), 4u);
  for (const auto& s : sets) EXPECT_EQ(s.size(), 1u);
}

TEST(ConflictGraph, BitsetRowConsumerMatchesNestedSets) {
  // The packed-row streaming API must emit exactly the sets the legacy
  // nested API reports (order may differ: enumeration vs sorted).
  RngStream rng(21, "rows");
  ConflictGraph g(70);  // > 64 links: exercises the multi-word path
  for (int i = 0; i < 70; ++i)
    for (int j = i + 1; j < 70; ++j)
      if (rng.bernoulli(0.7)) g.add_conflict(i, j);

  std::vector<std::vector<int>> from_rows;
  g.for_each_independent_set_row([&](const std::uint64_t* bits) {
    std::vector<int> s;
    for (int w = 0; w < g.row_words(); ++w) {
      std::uint64_t word = bits[w];
      while (word != 0) {
        s.push_back(w * 64 + std::countr_zero(word));
        word &= word - 1;
      }
    }
    from_rows.push_back(std::move(s));
  });
  std::sort(from_rows.begin(), from_rows.end());
  EXPECT_EQ(from_rows, g.maximal_independent_sets());
}

TEST(ConflictGraph, BitsetRowConsumerHonorsCap) {
  ConflictGraph g(10);
  for (int i = 0; i < 10; i += 2) g.add_conflict(i, i + 1);  // 2^5 sets
  std::size_t seen = 0;
  g.for_each_independent_set_row([&](const std::uint64_t*) { ++seen; },
                                 /*cap=*/7);
  EXPECT_EQ(seen, 7u);
}

TEST(ConflictGraph, PathGraphMis) {
  // Path 0-1-2-3: maximal independent sets {0,2},{0,3},{1,3}.
  ConflictGraph g(4);
  g.add_conflict(0, 1);
  g.add_conflict(1, 2);
  g.add_conflict(2, 3);
  const auto sets = g.maximal_independent_sets();
  const std::set<std::vector<int>> got(sets.begin(), sets.end());
  const std::set<std::vector<int>> want{{0, 2}, {0, 3}, {1, 3}};
  EXPECT_EQ(got, want);
}

TEST(ConflictGraph, SelfConflictIgnored) {
  ConflictGraph g(2);
  g.add_conflict(0, 0);
  EXPECT_FALSE(g.conflicts(0, 0));
  EXPECT_EQ(g.edge_count(), 0);
}

TEST(ConflictGraph, SymmetricEdges) {
  ConflictGraph g(3);
  g.add_conflict(0, 2);
  EXPECT_TRUE(g.conflicts(2, 0));
  EXPECT_TRUE(g.conflicts(0, 2));
  EXPECT_FALSE(g.conflicts(0, 1));
}

// Brute-force reference: enumerate all subsets, keep independent ones that
// are maximal.
std::set<std::vector<int>> brute_force_mis(const ConflictGraph& g) {
  const int n = g.size();
  std::vector<std::vector<int>> independents;
  for (int mask = 1; mask < (1 << n); ++mask) {
    std::vector<int> s;
    for (int v = 0; v < n; ++v)
      if (mask & (1 << v)) s.push_back(v);
    bool indep = true;
    for (std::size_t a = 0; a < s.size() && indep; ++a)
      for (std::size_t b = a + 1; b < s.size() && indep; ++b)
        if (g.conflicts(s[a], s[b])) indep = false;
    if (indep) independents.push_back(s);
  }
  std::set<std::vector<int>> maximal;
  for (const auto& s : independents) {
    bool is_max = true;
    for (const auto& t : independents) {
      if (t.size() > s.size() &&
          std::includes(t.begin(), t.end(), s.begin(), s.end()))
        is_max = false;
    }
    if (is_max) maximal.insert(s);
  }
  return maximal;
}

class RandomGraphMis : public ::testing::TestWithParam<int> {};

TEST_P(RandomGraphMis, MatchesBruteForce) {
  RngStream rng(static_cast<std::uint64_t>(GetParam()), "graph");
  const int n = rng.uniform_int(3, 11);
  ConflictGraph g(n);
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      if (rng.bernoulli(0.4)) g.add_conflict(i, j);

  const auto fast = g.maximal_independent_sets();
  const std::set<std::vector<int>> got(fast.begin(), fast.end());
  EXPECT_EQ(got, brute_force_mis(g)) << "n=" << n;
  EXPECT_EQ(got.size(), fast.size()) << "duplicates emitted";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphMis, ::testing::Range(1, 21));

TEST(ConflictGraph, MisPropertiesOnLargerGraph) {
  RngStream rng(99, "big");
  const int n = 30;
  ConflictGraph g(n);
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      if (rng.bernoulli(0.3)) g.add_conflict(i, j);
  const auto sets = g.maximal_independent_sets();
  ASSERT_FALSE(sets.empty());
  for (const auto& s : sets) {
    // Independent.
    for (std::size_t a = 0; a < s.size(); ++a)
      for (std::size_t b = a + 1; b < s.size(); ++b)
        EXPECT_FALSE(g.conflicts(s[a], s[b]));
    // Maximal: no vertex outside is compatible with all members.
    for (int v = 0; v < n; ++v) {
      if (std::find(s.begin(), s.end(), v) != s.end()) continue;
      bool compatible = true;
      for (int u : s)
        if (g.conflicts(u, v)) compatible = false;
      EXPECT_FALSE(compatible) << "set not maximal";
    }
  }
}

TEST(ConnectedComponents, EmptyGraph) {
  const ConflictGraph g(0);
  const ComponentPartition part = g.connected_components();
  EXPECT_EQ(part.count(), 0);
  EXPECT_TRUE(part.members.empty());
  EXPECT_TRUE(part.component_of.empty());
}

TEST(ConnectedComponents, SingleClique) {
  ConflictGraph g(5);
  for (int i = 0; i < 5; ++i)
    for (int j = i + 1; j < 5; ++j) g.add_conflict(i, j);
  const ComponentPartition part = g.connected_components();
  ASSERT_EQ(part.count(), 1);
  EXPECT_EQ(part.members[0], (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(part.component_of, (std::vector<int>(5, 0)));
}

TEST(ConnectedComponents, DisjointCliquesAndIsolatedVertices) {
  // Clique {0,1,2}, clique {4,5}, isolated 3 and 6: four components,
  // canonically ordered by smallest member.
  ConflictGraph g(7);
  g.add_conflict(0, 1);
  g.add_conflict(0, 2);
  g.add_conflict(1, 2);
  g.add_conflict(4, 5);
  const ComponentPartition part = g.connected_components();
  ASSERT_EQ(part.count(), 4);
  EXPECT_EQ(part.members[0], (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(part.members[1], (std::vector<int>{3}));
  EXPECT_EQ(part.members[2], (std::vector<int>{4, 5}));
  EXPECT_EQ(part.members[3], (std::vector<int>{6}));
  EXPECT_EQ(part.component_of, (std::vector<int>{0, 0, 0, 1, 2, 2, 3}));
}

TEST(ConnectedComponents, ChainBridgedByOneEdge) {
  // Two chains 0-1-2 and 3-4-5; adding the bridge 2-3 fuses them.
  ConflictGraph g(6);
  g.add_conflict(0, 1);
  g.add_conflict(1, 2);
  g.add_conflict(3, 4);
  g.add_conflict(4, 5);
  EXPECT_EQ(g.connected_components().count(), 2);
  g.add_conflict(2, 3);
  const ComponentPartition part = g.connected_components();
  ASSERT_EQ(part.count(), 1);
  EXPECT_EQ(part.members[0], (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(ConnectedComponents, MultiWordBitsetRows) {
  // > 64 vertices so rows span multiple words, with components straddling
  // the word boundary: pairs (2k, 2k+1) conflict — 70 vertices, 35
  // two-vertex components; component 31 is {62, 63}, 32 is {64, 65}.
  ConflictGraph g(140);
  for (int k = 0; k < 70; ++k) g.add_conflict(2 * k, 2 * k + 1);
  const ComponentPartition part = g.connected_components();
  ASSERT_EQ(part.count(), 70);
  for (int k = 0; k < 70; ++k) {
    EXPECT_EQ(part.members[static_cast<std::size_t>(k)],
              (std::vector<int>{2 * k, 2 * k + 1}));
    EXPECT_EQ(part.component_of[static_cast<std::size_t>(2 * k)], k);
    EXPECT_EQ(part.component_of[static_cast<std::size_t>(2 * k + 1)], k);
  }
}

TEST(ConnectedComponents, ChainAcrossWordBoundary) {
  // A path 0-64-130 forces the BFS to discover word-1 and word-2 vertices
  // from a word-0 frontier and then keep expanding them: discoveries in
  // higher words must survive into the component, not just their echoes.
  ConflictGraph g(131);
  g.add_conflict(0, 64);
  g.add_conflict(64, 130);
  const ComponentPartition part = g.connected_components();
  ASSERT_EQ(part.count(), 129);
  EXPECT_EQ(part.members[0], (std::vector<int>{0, 64, 130}));
  EXPECT_EQ(part.component_of[0], 0);
  EXPECT_EQ(part.component_of[64], 0);
  EXPECT_EQ(part.component_of[130], 0);
  // Every other vertex is its own singleton component, each claimed by
  // exactly one component (no overlap with component 0).
  for (int v = 1; v < 131; ++v)
    if (v != 64 && v != 130)
      EXPECT_EQ(part.members[static_cast<std::size_t>(
                    part.component_of[static_cast<std::size_t>(v)])],
                std::vector<int>{v});
}

TEST(ConnectedComponents, MatchesUnionFindOnRandomGraphs) {
  for (int seed = 1; seed <= 12; ++seed) {
    RngStream rng(static_cast<std::uint64_t>(seed), "components");
    const int n = rng.uniform_int(1, 130);
    ConflictGraph g(n);
    // Sparse graphs so multi-component outcomes are common.
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j)
        if (rng.bernoulli(1.5 / static_cast<double>(n)))
          g.add_conflict(i, j);

    // Union-find reference.
    std::vector<int> parent(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) parent[static_cast<std::size_t>(v)] = v;
    const auto find = [&](int v) {
      while (parent[static_cast<std::size_t>(v)] != v)
        v = parent[static_cast<std::size_t>(v)];
      return v;
    };
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j)
        if (g.conflicts(i, j)) parent[static_cast<std::size_t>(find(i))] =
            find(j);

    const ComponentPartition part = g.connected_components();
    std::set<int> roots;
    for (int v = 0; v < n; ++v) roots.insert(find(v));
    ASSERT_EQ(part.count(), static_cast<int>(roots.size())) << "n=" << n;
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j)
        EXPECT_EQ(part.component_of[static_cast<std::size_t>(i)] ==
                      part.component_of[static_cast<std::size_t>(j)],
                  find(i) == find(j))
            << "n=" << n << " i=" << i << " j=" << j;
    // Canonical form: members ascending within and across components.
    for (int c = 0; c < part.count(); ++c) {
      const auto& m = part.members[static_cast<std::size_t>(c)];
      EXPECT_TRUE(std::is_sorted(m.begin(), m.end()));
      if (c > 0)
        EXPECT_LT(part.members[static_cast<std::size_t>(c - 1)][0], m[0]);
    }
  }
}

TEST(TwoHopConflicts, SharedEndpointAlwaysConflicts) {
  const std::vector<LinkRef> links = {{0, 1}, {1, 2}, {3, 4}};
  const auto no_neighbors = [](NodeId, NodeId) { return false; };
  const ConflictGraph g = build_two_hop_conflict_graph(links, no_neighbors);
  EXPECT_TRUE(g.conflicts(0, 1));   // share node 1
  EXPECT_FALSE(g.conflicts(0, 2));  // disjoint, no neighbors
}

TEST(TwoHopConflicts, OneHopNeighborhoodConflicts) {
  const std::vector<LinkRef> links = {{0, 1}, {2, 3}, {4, 5}};
  // 1 and 2 are neighbors; 3..5 isolated from 0..1.
  const auto neighbors = [](NodeId a, NodeId b) {
    return (a == 1 && b == 2) || (a == 2 && b == 1);
  };
  const ConflictGraph g = build_two_hop_conflict_graph(links, neighbors);
  EXPECT_TRUE(g.conflicts(0, 1));
  EXPECT_FALSE(g.conflicts(0, 2));
  EXPECT_FALSE(g.conflicts(1, 2));
}

TEST(LirConflicts, ThresholdClassification) {
  const DenseMatrix lir = {
      {1.0, 0.5, 0.97},
      {0.5, 1.0, 0.94},
      {0.97, 0.94, 1.0},
  };
  const ConflictGraph g = build_lir_conflict_graph(lir, 0.95);
  EXPECT_TRUE(g.conflicts(0, 1));
  EXPECT_FALSE(g.conflicts(0, 2));
  EXPECT_TRUE(g.conflicts(1, 2));
}

}  // namespace
}  // namespace meshopt
