#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/mathfit.h"
#include "util/rng.h"
#include "util/stats.h"

namespace meshopt {
namespace {

TEST(OnlineStatsTest, MeanAndVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(CdfTest, QuantilesAndFractions) {
  Cdf c({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_DOUBLE_EQ(c.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(c.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(c.fraction_below(3.0), 0.6);  // <= 3
  EXPECT_DOUBLE_EQ(c.fraction_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(c.fraction_below(10.0), 1.0);
}

TEST(CdfTest, IncrementalAddKeepsOrder) {
  Cdf c;
  c.add(5.0);
  c.add(1.0);
  c.add(3.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.5), 3.0);
  c.add(0.0);
  EXPECT_DOUBLE_EQ(c.quantile(0.0), 0.0);
}

TEST(CdfTest, EmptyQuantileThrows) {
  Cdf c;
  EXPECT_THROW(c.quantile(0.5), std::domain_error);
}

TEST(CdfTest, CurveIsMonotone) {
  RngStream rng(3, "cdf");
  Cdf c;
  for (int i = 0; i < 200; ++i) c.add(rng.normal(0.0, 1.0));
  double prev = -1.0;
  for (const auto& [x, f] : c.curve(15)) {
    EXPECT_GE(f, prev);
    prev = f;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);
}

TEST(RmseTest, KnownValues) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(rmse(a, b), 0.0);
  const std::vector<double> c{2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(rmse(a, c), 1.0);
  EXPECT_THROW(rmse(a, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(JainTest, BoundsAndKnownCases) {
  EXPECT_DOUBLE_EQ(jain_fairness_index(std::vector<double>{5, 5, 5, 5}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness_index(std::vector<double>{1, 0, 0, 0}),
                   0.25);
  EXPECT_DOUBLE_EQ(jain_fairness_index(std::vector<double>{}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness_index(std::vector<double>{0, 0}), 1.0);
  // Scale invariance.
  const std::vector<double> x{1, 2, 3};
  std::vector<double> y{10, 20, 30};
  EXPECT_NEAR(jain_fairness_index(x), jain_fairness_index(y), 1e-12);
}

TEST(LogFitTest, ExactRecovery) {
  // y = 2.5 ln w - 1.
  std::vector<double> w, y;
  for (double v : {1.0, 2.0, 5.0, 10.0, 50.0, 100.0}) {
    w.push_back(v);
    y.push_back(2.5 * std::log(v) - 1.0);
  }
  const LogFit fit = fit_log_curve(w, y);
  EXPECT_NEAR(fit.a, 2.5, 1e-9);
  EXPECT_NEAR(fit.b, -1.0, 1e-9);
  EXPECT_NEAR(fit.eval(20.0), 2.5 * std::log(20.0) - 1.0, 1e-9);
}

TEST(LogFitTest, RejectsBadInput) {
  EXPECT_THROW(fit_log_curve(std::vector<double>{1.0},
                             std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(fit_log_curve(std::vector<double>{1.0, -1.0},
                             std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(MaxCurvatureTest, AnalyticLocation) {
  // kappa max of a*ln(w)+b at w = |a|/sqrt(2).
  const LogFit fit{4.0, 0.0};
  EXPECT_NEAR(max_curvature_point(fit, 0.1, 100.0), 4.0 / std::sqrt(2.0),
              1e-9);
  // Clamping.
  EXPECT_DOUBLE_EQ(max_curvature_point(fit, 5.0, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(max_curvature_point(fit, 0.1, 1.0), 1.0);
  // Flat curve returns the lower bound.
  EXPECT_DOUBLE_EQ(max_curvature_point(LogFit{0.0, 1.0}, 2.0, 9.0), 2.0);
}

TEST(PolygonAreaTest, KnownShapes) {
  const Point2 tri[] = {{0, 0}, {1, 0}, {0, 1}};
  EXPECT_DOUBLE_EQ(polygon_area(tri), 0.5);
  const Point2 rect[] = {{0, 0}, {2, 0}, {2, 3}, {0, 3}};
  EXPECT_DOUBLE_EQ(polygon_area(rect), 6.0);
  // Orientation independence.
  const Point2 rect_cw[] = {{0, 0}, {0, 3}, {2, 3}, {2, 0}};
  EXPECT_DOUBLE_EQ(polygon_area(rect_cw), 6.0);
  const Point2 degenerate[] = {{0, 0}, {1, 1}};
  EXPECT_DOUBLE_EQ(polygon_area(degenerate), 0.0);
}

TEST(RngTest, DeterministicStreams) {
  RngStream a(7, "alpha");
  RngStream b(7, "alpha");
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  RngStream c(7, "beta");
  RngStream d(8, "alpha");
  EXPECT_NE(RngStream(7, "alpha").next_u64(), c.next_u64());
  EXPECT_NE(RngStream(7, "alpha").next_u64(), d.next_u64());
}

TEST(RngTest, UniformIntBounds) {
  RngStream r(11, "ints");
  for (int i = 0; i < 1000; ++i) {
    const int v = r.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  RngStream r(13, "bern");
  EXPECT_FALSE(r.bernoulli(0.0));
  EXPECT_TRUE(r.bernoulli(1.0));
  EXPECT_FALSE(r.bernoulli(-1.0));
  int heads = 0;
  for (int i = 0; i < 4000; ++i) heads += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 4000.0, 0.3, 0.03);
}

TEST(RngTest, ExponentialMean) {
  RngStream r(17, "exp");
  double acc = 0.0;
  for (int i = 0; i < 5000; ++i) acc += r.exponential(2.0);
  EXPECT_NEAR(acc / 5000.0, 2.0, 0.12);
}

// QuantileSketch (the serving plane's latency histogram): exact while
// small, bounded-error log bins at volume, exact merges, order-blind.

TEST(QuantileSketchTest, ExactModeMatchesCdf) {
  QuantileSketch s;
  Cdf cdf;
  RngStream r(23, "sketch-exact");
  for (int i = 0; i < 50; ++i) {  // below the default exact limit of 64
    const double x = r.uniform(0.1, 100.0);
    s.add(x);
    cdf.add(x);
  }
  ASSERT_TRUE(s.exact());
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0})
    EXPECT_DOUBLE_EQ(s.quantile(q), cdf.quantile(q)) << "q=" << q;
  EXPECT_DOUBLE_EQ(s.min(), cdf.quantile(0.0));
  EXPECT_DOUBLE_EQ(s.max(), cdf.quantile(1.0));
}

TEST(QuantileSketchTest, EmptyAndEdgeBehavior) {
  QuantileSketch s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
  s.add(std::nan(""));  // ignored, not poisoning
  EXPECT_EQ(s.count(), 0u);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.quantile(-1.0), 3.0);  // q clamps into [0,1]
  EXPECT_DOUBLE_EQ(s.quantile(2.0), 3.0);
  EXPECT_THROW(QuantileSketch(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(QuantileSketch(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(QuantileSketch(1.0, 2.0, 0), std::invalid_argument);
}

TEST(QuantileSketchTest, BinnedQuantilesMonotoneAndBounded) {
  QuantileSketch s(1e-3, 1e4, 8, /*exact_limit=*/16);
  Cdf cdf;
  RngStream r(29, "sketch-binned");
  for (int i = 0; i < 5000; ++i) {
    const double x = std::exp(r.uniform(std::log(1e-2), std::log(1e3)));
    s.add(x);
    cdf.add(x);
  }
  ASSERT_FALSE(s.exact());
  double prev = 0.0;
  for (int i = 0; i <= 100; ++i) {
    const double q = i / 100.0;
    const double v = s.quantile(q);
    EXPECT_GE(v, prev) << "quantiles must be monotone in q";
    prev = v;
    // Half-bin relative error bound: 2^(1/16)-1 ~ 4.4%, with slack for
    // interpolation differences against the exact CDF at rank edges.
    if (q >= 0.05 && q <= 0.95)
      EXPECT_NEAR(v, cdf.quantile(q), 0.1 * cdf.quantile(q)) << "q=" << q;
  }
  EXPECT_GE(s.quantile(0.0), s.min());
  EXPECT_LE(s.quantile(1.0), s.max());
}

TEST(QuantileSketchTest, OutOfRangeSamplesClampIntoEdgeBins) {
  QuantileSketch s(1.0, 100.0, 4, /*exact_limit=*/0);
  s.add(1e-9);  // underflow bin, reported no lower than observed min
  s.add(1e9);   // overflow bin, reported no higher than observed max
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1e-9);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 1e9);
}

TEST(QuantileSketchTest, MergeEqualsConcatenationInEveryPhase) {
  RngStream r(31, "sketch-merge");
  std::vector<double> a, b;
  for (int i = 0; i < 40; ++i) a.push_back(r.uniform(0.5, 50.0));
  for (int i = 0; i < 200; ++i) b.push_back(r.uniform(0.5, 50.0));

  // exact+exact (stays exact), exact+binned, binned+exact, binned+binned.
  const std::size_t limits[][2] = {{64, 64}, {64, 16}, {16, 64}, {16, 16}};
  for (const auto& lim : limits) {
    QuantileSketch lhs(1e-3, 1e4, 8, lim[0]);
    QuantileSketch rhs(1e-3, 1e4, 8, lim[1]);
    QuantileSketch ref(1e-3, 1e4, 8, std::min(lim[0], lim[1]));
    for (double x : a) lhs.add(x);
    for (double x : b) rhs.add(x);
    for (double x : a) ref.add(x);
    for (double x : b) ref.add(x);
    lhs.merge(rhs);
    EXPECT_EQ(lhs.count(), a.size() + b.size());
    EXPECT_DOUBLE_EQ(lhs.min(), ref.min());
    EXPECT_DOUBLE_EQ(lhs.max(), ref.max());
    EXPECT_DOUBLE_EQ(lhs.sum(), ref.sum());
    if (lhs.exact() && ref.exact())
      for (double q : {0.05, 0.5, 0.95})
        EXPECT_DOUBLE_EQ(lhs.quantile(q), ref.quantile(q));
    else if (!lhs.exact() && !ref.exact())
      for (double q : {0.05, 0.5, 0.95})
        EXPECT_NEAR(lhs.quantile(q), ref.quantile(q),
                    0.1 * ref.quantile(q) + 1e-12);
  }
}

TEST(QuantileSketchTest, MergeRejectsConfigMismatch) {
  QuantileSketch a(1e-3, 1e3, 8);
  QuantileSketch b(1e-3, 1e3, 4);
  QuantileSketch c(1e-2, 1e3, 8);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(QuantileSketchTest, ExactBucketsAreALosslessDump) {
  QuantileSketch s;  // default exact limit of 64
  const double xs[] = {5.0, 1.0, 5.0, 3.0, 1.0, 5.0};
  for (double x : xs) s.add(x);
  ASSERT_TRUE(s.exact());

  const std::vector<SketchBucket> b = s.buckets();
  ASSERT_EQ(b.size(), 3u);  // one bucket per distinct value, ascending
  EXPECT_DOUBLE_EQ(b[0].upper_bound, 1.0);
  EXPECT_EQ(b[0].count, 2u);
  EXPECT_DOUBLE_EQ(b[1].upper_bound, 3.0);
  EXPECT_EQ(b[1].count, 1u);
  EXPECT_DOUBLE_EQ(b[2].upper_bound, 5.0);
  EXPECT_EQ(b[2].count, 3u);

  EXPECT_TRUE(QuantileSketch().buckets().empty());
}

TEST(QuantileSketchTest, BinnedBucketsPartitionEverySample) {
  QuantileSketch s(1.0, 100.0, 4, /*exact_limit=*/0);
  RngStream r(41, "sketch-buckets");
  std::vector<double> xs;
  for (int i = 0; i < 300; ++i) xs.push_back(r.uniform(2.0, 80.0));
  xs.push_back(0.25);   // underflow bin
  xs.push_back(500.0);  // overflow bin
  for (double x : xs) s.add(x);
  ASSERT_FALSE(s.exact());

  const std::vector<SketchBucket> b = s.buckets();
  ASSERT_FALSE(b.empty());
  // Empty bins are omitted, bounds ascend, and the counts partition n.
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_GT(b[i].count, 0u);
    if (i > 0) EXPECT_GT(b[i].upper_bound, b[i - 1].upper_bound);
    total += b[i].count;
  }
  EXPECT_EQ(total, s.count());
  // The underflow bucket's bound is the binned range's floor; the
  // overflow bucket is unbounded above.
  EXPECT_DOUBLE_EQ(b.front().upper_bound, 1.0);
  EXPECT_TRUE(std::isinf(b.back().upper_bound));
  // Cumulative-le property: every bucket's bound dominates at least as
  // many samples as the walk has seen (the invariant the Prometheus
  // exposition's cumulative counts rest on).
  std::sort(xs.begin(), xs.end());
  std::uint64_t cumulative = 0;
  for (const SketchBucket& bucket : b) {
    cumulative += bucket.count;
    const auto below = static_cast<std::uint64_t>(
        std::upper_bound(xs.begin(), xs.end(), bucket.upper_bound) -
        xs.begin());
    EXPECT_GE(below, cumulative);
  }
}

TEST(QuantileSketchTest, OrderIndependent) {
  RngStream r(37, "sketch-order");
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(r.uniform(1e-2, 1e2));
  QuantileSketch fwd(1e-3, 1e3, 8, 16), rev(1e-3, 1e3, 8, 16);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    fwd.add(xs[i]);
    rev.add(xs[xs.size() - 1 - i]);
  }
  for (double q : {0.01, 0.25, 0.5, 0.75, 0.99})
    EXPECT_DOUBLE_EQ(fwd.quantile(q), rev.quantile(q));
}

}  // namespace
}  // namespace meshopt
