// Physics validation on the canonical two-link topology classes (paper
// Section 4.3): mutual carrier sense must time-share, hidden-terminal
// topologies must show collision losses and capture asymmetry, and
// independent links must not disturb each other.

#include <gtest/gtest.h>

#include "mac/airtime.h"
#include "scenario/topologies.h"
#include "scenario/workbench.h"

namespace meshopt {
namespace {

struct PairResult {
  double c11, c22;  // alone
  double c31, c32;  // simultaneous
  double lir() const { return (c31 + c32) / (c11 + c22); }
};

PairResult run_pair(TopologyClass cls, Rate rate, std::uint64_t seed = 5,
                    double dur = 10.0, double interference_dbm = -62.0) {
  TwoLinkParams params;
  params.cls = cls;
  params.interference_dbm = interference_dbm;
  PairResult r{};
  {
    Workbench wb(seed);
    wb.add_nodes(4);
    auto [a, b] = build_two_link(wb, params, rate, rate);
    r.c11 = wb.measure_backlogged({a}, dur)[0];
    r.c22 = wb.measure_backlogged({b}, dur)[0];
    auto both = wb.measure_backlogged({a, b}, dur);
    r.c31 = both[0];
    r.c32 = both[1];
  }
  return r;
}

TEST(TwoLink, SensingRelationsByConstruction) {
  Workbench wb(1);
  wb.add_nodes(4);
  TwoLinkParams p;
  p.cls = TopologyClass::kIA;
  build_two_link(wb, p, Rate::kR1Mbps, Rate::kR1Mbps);
  Channel& ch = wb.channel();
  EXPECT_FALSE(ch.senses(0, 2));  // hidden transmitters
  EXPECT_FALSE(ch.senses(2, 0));
  EXPECT_TRUE(ch.senses(2, 1));   // B's tx heard at A's rx
  EXPECT_FALSE(ch.senses(0, 3));  // A's tx NOT heard at B's rx
  EXPECT_TRUE(ch.decodable(0, 1, Rate::kR11Mbps));
  EXPECT_TRUE(ch.decodable(2, 3, Rate::kR11Mbps));
}

TEST(TwoLink, CsPairTimeShares1Mbps) {
  const PairResult r = run_pair(TopologyClass::kCS, Rate::kR1Mbps);
  // Normalized sum close to 1 (time sharing), and roughly fair.
  const double norm = r.c31 / r.c11 + r.c32 / r.c22;
  EXPECT_GT(norm, 0.88);
  EXPECT_LT(norm, 1.12);
  EXPECT_NEAR(r.c31, r.c32, 0.25 * r.c31);
  // LIR must flag interference (well below the 0.95 threshold).
  EXPECT_LT(r.lir(), 0.8);
}

TEST(TwoLink, CsPairTimeShares11Mbps) {
  const PairResult r = run_pair(TopologyClass::kCS, Rate::kR11Mbps);
  const double norm = r.c31 / r.c11 + r.c32 / r.c22;
  EXPECT_GT(norm, 0.88);
  EXPECT_LT(norm, 1.12);
}

TEST(TwoLink, IndependentPairUnaffected) {
  const PairResult r = run_pair(TopologyClass::kIndependent, Rate::kR11Mbps);
  EXPECT_NEAR(r.c31, r.c11, 0.05 * r.c11);
  EXPECT_NEAR(r.c32, r.c22, 0.05 * r.c22);
  EXPECT_GT(r.lir(), 0.95);
}

TEST(TwoLink, IaPenalizesTheExposedReceiver) {
  // Strong interferer at A's receiver: A starves, B is untouched.
  const PairResult r =
      run_pair(TopologyClass::kIA, Rate::kR1Mbps, 5, 10.0, -58.0);
  EXPECT_NEAR(r.c32, r.c22, 0.08 * r.c22);
  EXPECT_LT(r.c31, 0.5 * r.c11);
  EXPECT_LT(r.lir(), 0.95);
}

TEST(TwoLink, IaGradedCaptureWithBorderlineSinr) {
  // SINR around the decode threshold plus per-frame fading: some of A's
  // overlapped frames survive — the partial-capture regime behind the
  // paper's three-point model discussion (Fig. 5).
  const PairResult r =
      run_pair(TopologyClass::kIA, Rate::kR1Mbps, 5, 10.0, -63.0);
  EXPECT_GT(r.c31, 0.05 * r.c11);
  EXPECT_LT(r.c31, 0.9 * r.c11);
  EXPECT_NEAR(r.c32, r.c22, 0.08 * r.c22);
}

TEST(TwoLink, IaAggregateCanExceedTimeSharing) {
  // Capture lets both links make progress simultaneously: the measured
  // point (c31, c32) must land strictly above the time-sharing line —
  // exactly the inefficiency Fig. 5 of the paper shows the 2-point model
  // missing.
  TwoLinkParams p;
  p.cls = TopologyClass::kIA;
  p.interference_dbm = -80.0;  // weak interferer: strong capture at rx A
  Workbench wb(5);
  wb.add_nodes(4);
  auto [a, b] = build_two_link(wb, p, Rate::kR1Mbps, Rate::kR1Mbps);
  const double c11 = wb.measure_backlogged({a}, 10.0)[0];
  const double c22 = wb.measure_backlogged({b}, 10.0)[0];
  auto both = wb.measure_backlogged({a, b}, 10.0);
  const double norm = both[0] / c11 + both[1] / c22;
  EXPECT_GT(norm, 1.15) << "capture should beat pure time sharing";
}

TEST(TwoLink, NfBothLinksDegradedAt11Mbps) {
  // At 11 Mb/s the SINR threshold is high: hidden-terminal overlap kills
  // frames on both links.
  const PairResult r =
      run_pair(TopologyClass::kNF, Rate::kR11Mbps, 5, 10.0, -62.0);
  EXPECT_LT(r.lir(), 0.8);
  EXPECT_LT(r.c31, 0.6 * r.c11);
  EXPECT_LT(r.c32, 0.6 * r.c22);
}

TEST(TwoLink, NfCaptureSavesLowRate) {
  // Same layout with a weak interferer at 1 Mb/s: capture decodes through
  // the overlap and the pair behaves near-independent (high LIR) — the
  // rate-dependent LIR structure of the paper's Fig. 3.
  const PairResult r =
      run_pair(TopologyClass::kNF, Rate::kR1Mbps, 5, 10.0, -75.0);
  EXPECT_GT(r.lir(), 0.9);
}

TEST(TwoLink, HiddenTerminalCausesCollisionCorruption) {
  TwoLinkParams p;
  p.cls = TopologyClass::kNF;
  Workbench wb(7);
  wb.add_nodes(4);
  auto [a, b] = build_two_link(wb, p, Rate::kR1Mbps, Rate::kR1Mbps);
  wb.measure_backlogged({a, b}, 5.0);
  EXPECT_GT(wb.channel().corrupted_count(), 0u);
}

TEST(TwoLink, CsPairFairnessAcrossSeeds) {
  // Property over seeds: CS time sharing is stable, not a seed artifact.
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    const PairResult r = run_pair(TopologyClass::kCS, Rate::kR11Mbps, seed, 6.0);
    const double norm = r.c31 / r.c11 + r.c32 / r.c22;
    EXPECT_GT(norm, 0.85) << "seed=" << seed;
    EXPECT_LT(norm, 1.15) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace meshopt
